package mcdvfs_test

import (
	"fmt"
	"log"

	"mcdvfs"
	"mcdvfs/internal/trace"
)

// exampleGrid builds a tiny hand-written grid: two samples over a 2x2
// setting space with exact numbers, so the examples below have stable
// output. Real use collects grids with mcdvfs.Collect.
func exampleGrid() *mcdvfs.Grid {
	settings := []mcdvfs.Setting{
		{CPU: 500, Mem: 400}, {CPU: 500, Mem: 800},
		{CPU: 1000, Mem: 400}, {CPU: 1000, Mem: 800},
	}
	mk := func(t, e float64) trace.Measurement {
		return trace.Measurement{TimeNS: t, CPUEnergyJ: e}
	}
	return &mcdvfs.Grid{
		Benchmark:   "example",
		SampleInstr: 10_000_000,
		Settings:    settings,
		Data: [][]trace.Measurement{
			// A CPU-bound sample: memory frequency barely matters.
			{mk(200, 2.0), mk(199, 2.4), mk(99, 3.0), mk(100, 3.4)},
			// A memory-bound sample: memory frequency dominates.
			{mk(200, 2.0), mk(150, 2.2), mk(180, 3.0), mk(120, 3.2)},
		},
	}
}

// ExampleAnalyze shows the inefficiency metric: I = E/Emin per sample and
// setting.
func ExampleAnalyze() {
	a, err := mcdvfs.Analyze(exampleGrid())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample 0 Emin: %.1f J\n", a.Emin(0))
	fmt.Printf("inefficiency at 1000/800: %.2f\n", a.Inefficiency(0, 3))
	fmt.Printf("speedup at 1000/800: %.2fx\n", a.Speedup(0, 3))
	// Output:
	// sample 0 Emin: 2.0 J
	// inefficiency at 1000/800: 1.70
	// speedup at 1000/800: 2.00x
}

// ExampleAnalysis_ClusterAt shows the performance cluster: every setting
// whose performance sits within the threshold band around the
// budget-optimal.
func ExampleAnalysis_ClusterAt() {
	a, err := mcdvfs.Analyze(exampleGrid())
	if err != nil {
		log.Fatal(err)
	}
	c, err := a.ClusterAt(0, mcdvfs.Unconstrained, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal: %v\n", a.Grid().Setting(c.Optimal))
	for _, k := range c.Members {
		fmt.Printf("member:  %v\n", a.Grid().Setting(k))
	}
	// Output:
	// optimal: 1000MHz/400MHz
	// member:  1000MHz/400MHz
	// member:  1000MHz/800MHz
}

// ExampleAnalysis_OptimalSetting shows budget-constrained selection: the
// best performer whose energy stays within budget x Emin.
func ExampleAnalysis_OptimalSetting() {
	a, err := mcdvfs.Analyze(exampleGrid())
	if err != nil {
		log.Fatal(err)
	}
	for _, budget := range []float64{1.0, 1.5, mcdvfs.Unconstrained} {
		k, err := a.OptimalSetting(0, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("budget %-4v -> %v\n", budget, a.Grid().Setting(k))
	}
	// Output:
	// budget 1    -> 500MHz/400MHz
	// budget 1.5  -> 1000MHz/400MHz
	// budget +Inf -> 1000MHz/400MHz
}

// ExampleAnalysis_StableRegions shows the region segmentation: consecutive
// samples that share a common near-optimal setting collapse into one
// region with a single setting choice.
func ExampleAnalysis_StableRegions() {
	a, err := mcdvfs.Analyze(exampleGrid())
	if err != nil {
		log.Fatal(err)
	}
	regions, err := a.StableRegions(mcdvfs.Unconstrained, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range regions {
		fmt.Printf("region %d: samples [%d,%d] at %v\n", i, r.Start, r.End, a.Grid().Setting(r.Choice))
	}
	// Both samples share 1000/800 inside their 5% bands, so one region
	// covers the run: zero transitions instead of per-sample re-tuning.
	// Output:
	// region 0: samples [0,1] at 1000MHz/800MHz
}

// ExampleAnalysis_ParetoFrontier shows the whole-run energy-performance
// frontier: the non-dominated settings a smart algorithm searches.
func ExampleAnalysis_ParetoFrontier() {
	a, err := mcdvfs.Analyze(exampleGrid())
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range a.ParetoFrontier() {
		fmt.Printf("%v: speedup %.2fx, inefficiency %.2f\n",
			a.Grid().Setting(p.Setting), p.Speedup, p.Inefficiency)
	}
	// Output:
	// 1000MHz/800MHz: speedup 1.82x, inefficiency 1.65
	// 1000MHz/400MHz: speedup 1.43x, inefficiency 1.50
	// 500MHz/800MHz: speedup 1.15x, inefficiency 1.15
	// 500MHz/400MHz: speedup 1.00x, inefficiency 1.00
}

// ExampleAnalysis_Execute shows trade-off evaluation with the paper's
// tuning overhead: every setting change costs 500 µs and 30 µJ.
func ExampleAnalysis_Execute() {
	a, err := mcdvfs.Analyze(exampleGrid())
	if err != nil {
		log.Fatal(err)
	}
	sch, err := a.OptimalSchedule(mcdvfs.Unconstrained)
	if err != nil {
		log.Fatal(err)
	}
	free, err := a.Execute(sch, mcdvfs.Overhead{})
	if err != nil {
		log.Fatal(err)
	}
	with, err := a.Execute(sch, mcdvfs.DefaultOverhead())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transitions: %d\n", free.Transitions)
	fmt.Printf("time without overhead: %.1f ns\n", free.TimeNS)
	fmt.Printf("time with overhead:    %.1f ns\n", with.TimeNS)
	// Output:
	// transitions: 1
	// time without overhead: 219.0 ns
	// time with overhead:    500219.0 ns
}
