// Package model implements the predictive cross-component performance and
// energy models the paper leaves as future work (Sections II-B and VIII):
// estimating how a workload interval would behave at *other* settings from
// counters observed at the settings actually visited, so a governor can
// search without a cycle-accurate reference.
//
// The model is physical, not black-box. Per-interval execution time is
//
//	t(fc, fm) = N·α/fc + A·β·L(fm, load)
//
// where N is instructions, A is DRAM accesses (from the MPKI counter), L
// is the controller's average access latency (known analytically from
// internal/memctrl), α is the workload's compute cycles per instruction,
// and β its stall-exposure factor (the reciprocal of memory-level
// parallelism). α and β are not directly observable; the model estimates
// them by recursive least squares over observed (setting, time) pairs —
// cross-component interaction is captured because L couples the memory
// clock and the offered load.
//
// Energy is then derived from the component power models (which a real
// platform knows from its power tables): CPU energy from the three-
// component model with the predicted activity, memory energy from event
// counts plus background over the predicted time.
package model

import (
	"fmt"
	"math"

	"mcdvfs/internal/cpupower"
	"mcdvfs/internal/dram"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/memctrl"
	"mcdvfs/internal/workload"
)

// Counters is what the platform's PMU reports about one completed
// interval: everything here is observable on real hardware.
type Counters struct {
	Setting      freq.Setting
	Instructions uint64
	TimeNS       float64
	MPKI         float64 // DRAM accesses per kilo-instruction
	RowHitRate   float64 // from the memory controller's hit counters
	WriteFrac    float64
}

// Validate reports the first non-physical counter value.
func (c Counters) Validate() error {
	switch {
	case c.Instructions == 0:
		return fmt.Errorf("model: zero instructions")
	case c.TimeNS <= 0:
		return fmt.Errorf("model: non-positive time %v", c.TimeNS)
	case c.MPKI < 0:
		return fmt.Errorf("model: negative MPKI %v", c.MPKI)
	case c.RowHitRate < 0 || c.RowHitRate > 1:
		return fmt.Errorf("model: row hit rate %v outside [0,1]", c.RowHitRate)
	case c.WriteFrac < 0 || c.WriteFrac > 1:
		return fmt.Errorf("model: write fraction %v outside [0,1]", c.WriteFrac)
	}
	return nil
}

// CrossComponent is the online-learned predictor. It is not safe for
// concurrent use; each governor owns one.
//
//vet:invariant forget > 0.8 && forget <= 1
type CrossComponent struct {
	cpu  *cpupower.Model
	mem  *dram.EnergyModel
	ctrl *memctrl.Model

	// Recursive least squares state for θ = (α, β) with the regressors
	// x = (N/fc, A·L)/N: we fit time-per-instruction to stay scale-free.
	// P is the 2x2 inverse covariance; theta the estimate.
	theta  [2]float64
	p      [2][2]float64
	nObs   int
	forget float64
}

// Config assembles a predictor from the platform's known component models.
type Config struct {
	CPUPower cpupower.Params
	Device   dram.Device
	// Forget is the RLS forgetting factor in (0.8, 1]; values below 1 let
	// the estimate track phase changes. Zero selects the default 0.95.
	Forget float64
}

// New builds a predictor.
func New(cfg Config) (*CrossComponent, error) {
	cpu, err := cpupower.New(cfg.CPUPower)
	if err != nil {
		return nil, err
	}
	mem, err := dram.NewEnergyModel(cfg.Device)
	if err != nil {
		return nil, err
	}
	ctrl, err := memctrl.New(cfg.Device)
	if err != nil {
		return nil, err
	}
	forget := cfg.Forget
	if forget == 0 { //lint:allow floateq zero is the exact unset sentinel for the default
		forget = 0.95
	}
	if forget <= 0.8 || forget > 1 {
		return nil, fmt.Errorf("model: forgetting factor %v outside (0.8, 1]", forget)
	}
	m := &CrossComponent{cpu: cpu, mem: mem, ctrl: ctrl, forget: forget}
	m.reset()
	return m, nil
}

// reset initializes the RLS state with a weak physical prior: α ≈ 1 cycle
// per instruction, β ≈ 0.5 exposed fraction.
func (m *CrossComponent) reset() {
	m.theta = [2]float64{1.0, 0.5}
	m.p = [2][2]float64{{100, 0}, {0, 100}}
	m.nObs = 0
}

// Ready reports whether the model has absorbed enough observations to
// predict with learned coefficients (two, to pin both α and β).
func (m *CrossComponent) Ready() bool { return m.nObs >= 2 }

// Alpha returns the current compute-cycles-per-instruction estimate.
//
//vet:ensures ret >= 0.05
func (m *CrossComponent) Alpha() float64 { return m.theta[0] } //lint:allow contract the 0.05 floor is enforced by Observe's clamp on theta[0], an array slot the interval domain does not track across methods

// Beta returns the current stall-exposure estimate (≈ 1/MLP).
func (m *CrossComponent) Beta() float64 { return m.theta[1] }

// Observe folds one completed interval into the estimate.
func (m *CrossComponent) Observe(c Counters) error {
	if err := c.Validate(); err != nil {
		return err
	}
	n := float64(c.Instructions)
	accesses := n * c.MPKI / 1000
	lat, err := m.latency(c.Setting.Mem, c, accesses, c.TimeNS)
	if err != nil {
		return err
	}
	// Regressors for time-per-instruction:
	// t/N = α·(1/fc in ns) + β·(A·L/N)
	x := [2]float64{
		1 / c.Setting.CPU.GHz(),
		accesses * lat / n,
	}
	y := c.TimeNS / n

	// RLS update with forgetting.
	px := [2]float64{
		m.p[0][0]*x[0] + m.p[0][1]*x[1],
		m.p[1][0]*x[0] + m.p[1][1]*x[1],
	}
	denom := m.forget + x[0]*px[0] + x[1]*px[1]
	gain := [2]float64{px[0] / denom, px[1] / denom}
	residual := y - (x[0]*m.theta[0] + x[1]*m.theta[1])
	m.theta[0] += gain[0] * residual
	m.theta[1] += gain[1] * residual
	// Keep the coefficients physical.
	if m.theta[0] < 0.05 {
		m.theta[0] = 0.05
	}
	if m.theta[1] < 0 {
		m.theta[1] = 0
	}
	if m.theta[1] > 1.5 {
		m.theta[1] = 1.5
	}
	// P = (P - gain·pxᵀ)/forget
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m.p[i][j] = (m.p[i][j] - gain[i]*px[j]) / m.forget
		}
	}
	m.nObs++
	return nil
}

// latency returns the average access latency at memory clock fm for the
// interval's traffic, using the offered load implied by timeNS.
func (m *CrossComponent) latency(fm freq.MHz, c Counters, accesses, timeNS float64) (float64, error) {
	load := memctrl.Load{RowHitRate: c.RowHitRate, WriteFrac: c.WriteFrac}
	if timeNS > 0 {
		load.AccessPerNS = accesses / timeNS
	}
	return m.ctrl.AvgLatencyNS(fm, load)
}

// PredictCounters predicts the interval's behaviour at a candidate setting
// from the last observed counters, solving the same load fixed point the
// platform exhibits.
func (m *CrossComponent) PredictCounters(c Counters, st freq.Setting) (timeNS, energyJ float64, err error) {
	if err := c.Validate(); err != nil {
		return 0, 0, err
	}
	n := float64(c.Instructions)
	accesses := n * c.MPKI / 1000
	computeNS := n * m.theta[0] / st.CPU.GHz()

	bwBound, err := m.ctrl.MinServiceTimeNS(st.Mem, accesses)
	if err != nil {
		return 0, 0, err
	}
	t := computeNS
	for i := 0; i < 30; i++ {
		lat, err := m.latency(st.Mem, c, accesses, t)
		if err != nil {
			return 0, 0, err
		}
		next := computeNS + m.theta[1]*accesses*lat
		if next < bwBound {
			next = bwBound
		}
		next = (next + t) / 2
		if math.Abs(next-t) < 1e-9*t {
			t = next
			break
		}
		t = next
	}

	activity := 1.0
	if t > 0 {
		activity = computeNS / t
	}
	if activity > 1 {
		activity = 1
	}
	cpuE, err := m.cpu.Energy(st.CPU, activity, t)
	if err != nil {
		return 0, 0, err
	}
	lineBursts := float64(m.mem.Device().LineBursts())
	counts := dram.Counts{
		Reads:     dram.RoundCount(accesses * (1 - c.WriteFrac) * lineBursts),
		Writes:    dram.RoundCount(accesses * c.WriteFrac * lineBursts),
		Activates: dram.RoundCount(accesses * (1 - c.RowHitRate)),
	}
	memE, err := m.mem.Energy(st.Mem, counts, t)
	if err != nil {
		return 0, 0, err
	}
	return t, cpuE + memE, nil
}

// ObserveCounters implements the governor package's Observer interface,
// letting the Budget governor feed completed intervals into the estimate.
func (m *CrossComponent) ObserveCounters(st freq.Setting, instructions uint64, timeNS, mpki, rowHitRate, writeFrac float64) error {
	return m.Observe(Counters{
		Setting:      st,
		Instructions: instructions,
		TimeNS:       timeNS,
		MPKI:         mpki,
		RowHitRate:   rowHitRate,
		WriteFrac:    writeFrac,
	})
}

// Predict implements governor.Model using only observable counters: the
// profile's MPKI, row-hit rate, and write fraction are PMU-visible, while
// BaseCPI and MLP — which the perfect model consumes — are replaced by the
// learned α and β. This makes the learned model a drop-in replacement for
// the oracle in governor.BudgetConfig.
func (m *CrossComponent) Predict(profile workload.SampleSpec, st freq.Setting) (float64, float64, error) {
	c := Counters{
		Setting:      st,
		Instructions: profile.Instructions,
		TimeNS:       1, // unused by prediction; Validate needs positive
		MPKI:         profile.MPKI,
		RowHitRate:   profile.RowHitRate,
		WriteFrac:    profile.WriteFrac,
	}
	return m.PredictCounters(c, st)
}
