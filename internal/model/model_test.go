package model

import (
	"math"
	"testing"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/workload"
)

func newModel(t *testing.T) *CrossComponent {
	t.Helper()
	cfg := sim.NoiselessConfig()
	m, err := New(Config{CPUPower: cfg.CPUPower, Device: cfg.Device})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// observeAt runs the noiseless simulator for spec at st and feeds the
// resulting counters to the model, returning the simulated sample.
func observeAt(t *testing.T, m *CrossComponent, sys *sim.System, spec workload.SampleSpec, st freq.Setting) sim.Sample {
	t.Helper()
	s, err := sys.SimulateSample(spec, st)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Observe(Counters{
		Setting:      st,
		Instructions: spec.Instructions,
		TimeNS:       s.TimeNS,
		MPKI:         spec.MPKI,
		RowHitRate:   spec.RowHitRate,
		WriteFrac:    spec.WriteFrac,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testSpec(mpki, mlp float64) workload.SampleSpec {
	return workload.SampleSpec{
		Instructions: workload.SampleLen,
		BaseCPI:      1.1, MPKI: mpki, RowHitRate: 0.6, MLP: mlp, WriteFrac: 0.3,
	}
}

func TestLearnsCoefficientsFromObservations(t *testing.T) {
	m := newModel(t)
	sys, err := sim.New(sim.NoiselessConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(12, 2.0)
	// Observe the same interval behaviour at several distinct settings so
	// the two regressors decorrelate.
	for _, st := range []freq.Setting{
		{CPU: 1000, Mem: 800}, {CPU: 400, Mem: 800}, {CPU: 1000, Mem: 200},
		{CPU: 600, Mem: 400}, {CPU: 800, Mem: 600},
	} {
		observeAt(t, m, sys, spec, st)
	}
	if !m.Ready() {
		t.Fatal("model not ready after 5 observations")
	}
	// α should approach the true base CPI and β the true 1/MLP.
	if math.Abs(m.Alpha()-spec.BaseCPI)/spec.BaseCPI > 0.25 {
		t.Errorf("alpha = %.3f, true base CPI %.3f", m.Alpha(), spec.BaseCPI)
	}
	if math.Abs(m.Beta()-1/spec.MLP)/(1/spec.MLP) > 0.35 {
		t.Errorf("beta = %.3f, true 1/MLP %.3f", m.Beta(), 1/spec.MLP)
	}
}

func TestPredictionAccuracyAcrossGrid(t *testing.T) {
	m := newModel(t)
	sys, err := sim.New(sim.NoiselessConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(18, 2.5)
	for _, st := range []freq.Setting{
		{CPU: 1000, Mem: 800}, {CPU: 300, Mem: 800}, {CPU: 1000, Mem: 200},
		{CPU: 500, Mem: 500}, {CPU: 700, Mem: 300},
	} {
		observeAt(t, m, sys, spec, st)
	}
	// Predict every coarse setting and compare against ground truth.
	var worstTime, worstEnergy float64
	for _, st := range freq.CoarseSpace().Settings() {
		truth, err := sys.SimulateSample(spec, st)
		if err != nil {
			t.Fatal(err)
		}
		tns, ej, err := m.PredictCounters(Counters{
			Setting: st, Instructions: spec.Instructions, TimeNS: 1,
			MPKI: spec.MPKI, RowHitRate: spec.RowHitRate, WriteFrac: spec.WriteFrac,
		}, st)
		if err != nil {
			t.Fatalf("PredictCounters(%v): %v", st, err)
		}
		timeErr := math.Abs(tns-truth.TimeNS) / truth.TimeNS
		energyErr := math.Abs(ej-truth.EnergyJ()) / truth.EnergyJ()
		if timeErr > worstTime {
			worstTime = timeErr
		}
		if energyErr > worstEnergy {
			worstEnergy = energyErr
		}
	}
	if worstTime > 0.15 {
		t.Errorf("worst time prediction error %.1f%%, want <= 15%%", worstTime*100)
	}
	if worstEnergy > 0.15 {
		t.Errorf("worst energy prediction error %.1f%%, want <= 15%%", worstEnergy*100)
	}
}

func TestTracksPhaseChanges(t *testing.T) {
	m := newModel(t)
	sys, err := sim.New(sim.NoiselessConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Learn a CPU phase, then switch to a memory-heavy phase with lower
	// MLP; the forgetting factor must move β toward the new truth.
	cpuPhase := testSpec(1, 2.0)
	for _, st := range []freq.Setting{{CPU: 1000, Mem: 800}, {CPU: 400, Mem: 400}, {CPU: 700, Mem: 200}} {
		observeAt(t, m, sys, cpuPhase, st)
	}
	memPhase := testSpec(30, 1.2)
	for i := 0; i < 15; i++ {
		sts := []freq.Setting{{CPU: 1000, Mem: 800}, {CPU: 500, Mem: 300}, {CPU: 800, Mem: 600}}
		observeAt(t, m, sys, memPhase, sts[i%len(sts)])
	}
	wantBeta := 1 / memPhase.MLP
	if math.Abs(m.Beta()-wantBeta)/wantBeta > 0.4 {
		t.Errorf("beta after phase change = %.3f, want near %.3f", m.Beta(), wantBeta)
	}
}

func TestObserveValidation(t *testing.T) {
	m := newModel(t)
	bad := []Counters{
		{Setting: freq.Setting{CPU: 500, Mem: 400}, Instructions: 0, TimeNS: 1},
		{Setting: freq.Setting{CPU: 500, Mem: 400}, Instructions: 1, TimeNS: 0},
		{Setting: freq.Setting{CPU: 500, Mem: 400}, Instructions: 1, TimeNS: 1, MPKI: -1},
		{Setting: freq.Setting{CPU: 500, Mem: 400}, Instructions: 1, TimeNS: 1, RowHitRate: 2},
		{Setting: freq.Setting{CPU: 500, Mem: 400}, Instructions: 1, TimeNS: 1, WriteFrac: -0.5},
	}
	for i, c := range bad {
		if err := m.Observe(c); err == nil {
			t.Errorf("bad counters %d accepted", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cfg := sim.NoiselessConfig()
	if _, err := New(Config{CPUPower: cfg.CPUPower, Device: cfg.Device, Forget: 0.5}); err == nil {
		t.Error("tiny forgetting factor accepted")
	}
	if _, err := New(Config{CPUPower: cfg.CPUPower, Device: cfg.Device, Forget: 1.1}); err == nil {
		t.Error("forgetting factor > 1 accepted")
	}
	bad := cfg.Device
	bad.Banks = 0
	if _, err := New(Config{CPUPower: cfg.CPUPower, Device: bad}); err == nil {
		t.Error("invalid device accepted")
	}
}

func TestColdModelPredictsWithPrior(t *testing.T) {
	m := newModel(t)
	// Even unobserved, the physical prior must produce finite predictions.
	tns, ej, err := m.Predict(testSpec(10, 2), freq.Setting{CPU: 800, Mem: 600})
	if err != nil {
		t.Fatal(err)
	}
	if tns <= 0 || ej <= 0 || math.IsInf(tns, 0) || math.IsNaN(ej) {
		t.Errorf("cold prediction %v ns, %v J", tns, ej)
	}
}

func TestPredictRejectsOutOfRangeSettings(t *testing.T) {
	m := newModel(t)
	if _, _, err := m.Predict(testSpec(10, 2), freq.Setting{CPU: 5000, Mem: 600}); err == nil {
		t.Error("out-of-range CPU accepted")
	}
	if _, _, err := m.Predict(testSpec(10, 2), freq.Setting{CPU: 800, Mem: 100}); err == nil {
		t.Error("out-of-range memory accepted")
	}
}
