// Package cache models the platform's on-chip cache hierarchy — the 64 KB
// L1 and 2 MB unified L2 of the paper's gem5 Cortex-A15 configuration —
// using an analytic reuse-distance model.
//
// The characterization pipeline consumes per-phase MPKI (DRAM accesses per
// thousand instructions) and base CPI. On the real platform those numbers
// come from the cache hierarchy filtering the core's memory references;
// this package closes that loop: a phase's memory behaviour is described
// by a Locality profile (streaming fraction plus an exponential
// reuse-distance population around a working-set size), and the hierarchy
// turns it into per-level hit rates, DRAM MPKI, and the CPI contribution of
// L2 hits. The workload package uses it to derive phase descriptors from
// first principles, and the cachesens experiment studies how cache sizing
// shifts the energy-performance trade-off space.
//
// The model is the classic single-parameter stack-distance approximation:
// an access with exponential reuse-distance scale W hits a cache of
// effective capacity C with probability 1 - exp(-C/W). Streaming accesses
// (infinite reuse distance) always miss every level.
package cache

import (
	"fmt"
	"math"
)

// Level describes one cache level.
type Level struct {
	Name string
	// SizeBytes is the capacity.
	SizeBytes int
	// LineBytes is the block size.
	LineBytes int
	// Assoc is the set associativity; lower associativity wastes part of
	// the capacity to conflicts, modeled as an effectiveness factor.
	Assoc int
	// HitLatency is the access latency in core cycles.
	HitLatency int
}

// Validate reports the first non-physical parameter.
func (l Level) Validate() error {
	switch {
	case l.SizeBytes <= 0:
		return fmt.Errorf("cache: %s size %d", l.Name, l.SizeBytes)
	case l.LineBytes <= 0 || l.SizeBytes%l.LineBytes != 0:
		return fmt.Errorf("cache: %s line size %d incompatible with capacity", l.Name, l.LineBytes)
	case l.Assoc <= 0:
		return fmt.Errorf("cache: %s associativity %d", l.Name, l.Assoc)
	case l.HitLatency <= 0:
		return fmt.Errorf("cache: %s hit latency %d", l.Name, l.HitLatency)
	}
	return nil
}

// effectiveBytes derates capacity for conflict misses: direct-mapped
// caches behave like ~70% of their size under random interference, and the
// penalty shrinks with associativity.
func (l Level) effectiveBytes() float64 {
	derate := 1 - 0.3/float64(l.Assoc)
	return float64(l.SizeBytes) * derate
}

// Hierarchy is a two-level cache (the paper's platform: L1D backed by a
// unified L2, both in the CPU clock domain).
type Hierarchy struct {
	L1 Level
	L2 Level
}

// Default returns the paper's configuration: 64 KB L1 (2 cycles), 2 MB L2
// (12 cycles), 64 B lines.
func Default() Hierarchy {
	return Hierarchy{
		L1: Level{Name: "L1", SizeBytes: 64 << 10, LineBytes: 64, Assoc: 2, HitLatency: 2},
		L2: Level{Name: "L2", SizeBytes: 2 << 20, LineBytes: 64, Assoc: 8, HitLatency: 12},
	}
}

// Validate reports the first invalid level, and enforces inclusive sizing.
func (h Hierarchy) Validate() error {
	if err := h.L1.Validate(); err != nil {
		return err
	}
	if err := h.L2.Validate(); err != nil {
		return err
	}
	if h.L2.SizeBytes <= h.L1.SizeBytes {
		return fmt.Errorf("cache: L2 (%d) not larger than L1 (%d)", h.L2.SizeBytes, h.L1.SizeBytes)
	}
	return nil
}

// Locality is a phase's memory-reuse profile.
type Locality struct {
	// APKI is memory accesses (loads+stores reaching the cache hierarchy)
	// per thousand instructions.
	APKI float64
	// StreamFrac is the fraction of accesses with no temporal reuse
	// (streaming); they miss every cache level.
	StreamFrac float64
	// WorkingSetBytes is the exponential reuse-distance scale of the
	// non-streaming population.
	WorkingSetBytes float64
}

// Validate reports the first invalid field.
func (loc Locality) Validate() error {
	switch {
	case loc.APKI < 0:
		return fmt.Errorf("cache: negative APKI %v", loc.APKI)
	case loc.StreamFrac < 0 || loc.StreamFrac > 1:
		return fmt.Errorf("cache: stream fraction %v outside [0,1]", loc.StreamFrac)
	case loc.WorkingSetBytes <= 0:
		return fmt.Errorf("cache: non-positive working set %v", loc.WorkingSetBytes)
	}
	return nil
}

// missRatio returns the global miss ratio of a cache of effective capacity
// c under the locality profile.
func (loc Locality) missRatio(c float64) float64 {
	reuseMiss := math.Exp(-c / loc.WorkingSetBytes)
	return loc.StreamFrac + (1-loc.StreamFrac)*reuseMiss
}

// Behaviour is the hierarchy's response to a locality profile.
type Behaviour struct {
	// L1HitRate and L2HitRate are global hit rates (of all accesses).
	L1HitRate float64
	L2HitRate float64
	// DRAMMPKI is DRAM accesses (L2 misses) per thousand instructions.
	DRAMMPKI float64
	// CPIContribution is the extra cycles per instruction spent in L1/L2
	// hit latency beyond the first-level access folded into core CPI.
	CPIContribution float64
}

// Evaluate runs the locality profile through the hierarchy.
func (h Hierarchy) Evaluate(loc Locality) (Behaviour, error) {
	if err := h.Validate(); err != nil {
		return Behaviour{}, err
	}
	if err := loc.Validate(); err != nil {
		return Behaviour{}, err
	}
	l1Miss := loc.missRatio(h.L1.effectiveBytes())
	l2Miss := loc.missRatio(h.L2.effectiveBytes())
	// Inclusive filtering: an access misses DRAM-ward only if it misses
	// both levels; the stack-distance model gives global miss ratios
	// directly (l2Miss <= l1Miss by monotonicity in capacity).
	if l2Miss > l1Miss {
		l2Miss = l1Miss
	}
	b := Behaviour{
		L1HitRate: 1 - l1Miss,
		L2HitRate: l1Miss - l2Miss,
		DRAMMPKI:  loc.APKI * l2Miss,
	}
	// L2 hits cost the L2 latency on top of the pipeline; L1 hits are
	// assumed folded into the core CPI (the paper's 2-cycle L1).
	b.CPIContribution = loc.APKI / 1000 * (l1Miss - l2Miss) * float64(h.L2.HitLatency)
	return b, nil
}

// MPKIAt is a convenience: the DRAM MPKI for a locality profile, used by
// sensitivity sweeps.
func (h Hierarchy) MPKIAt(loc Locality) (float64, error) {
	b, err := h.Evaluate(loc)
	if err != nil {
		return 0, err
	}
	return b.DRAMMPKI, nil
}

// WithL2Size returns a copy of the hierarchy with the L2 capacity
// replaced, for sensitivity studies.
func (h Hierarchy) WithL2Size(bytes int) Hierarchy {
	h.L2.SizeBytes = bytes
	return h
}
