// Package lru provides a mutex-guarded, size-bounded least-recently-used
// map. The serve layer uses it to bound how many benchmarks the daemon
// keeps characterized at once (evicting back into the Lab via its Forget
// hook) and to memoize rendered /v1/optimal responses; it is generic so
// both uses share one audited eviction path.
package lru

import (
	"container/list"
	"fmt"
	"sync"
)

// Cache is a fixed-capacity LRU map, safe for concurrent use. Eviction
// callbacks run outside the cache lock, so they may re-enter the cache.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; Value is *entry[K, V]
	items   map[K]*list.Element
	onEvict func(K, V)
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New builds a cache holding at most max entries. onEvict, if non-nil, is
// called for each entry displaced by capacity (not for Remove), after the
// cache lock is released.
func New[K comparable, V any](max int, onEvict func(K, V)) (*Cache[K, V], error) {
	if max < 1 {
		return nil, fmt.Errorf("lru: capacity %d < 1", max)
	}
	return &Cache[K, V]{
		max:     max,
		order:   list.New(),
		items:   make(map[K]*list.Element),
		onEvict: onEvict,
	}, nil
}

// Get returns the value for key and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Add inserts or updates key, marking it most recently used, and evicts
// the least recently used entries while the cache is over capacity. It
// reports whether key was already present.
func (c *Cache[K, V]) Add(key K, val V) bool {
	var evicted []entry[K, V]
	c.mu.Lock()
	el, existed := c.items[key]
	if existed {
		c.order.MoveToFront(el)
		el.Value.(*entry[K, V]).val = val
	} else {
		c.items[key] = c.order.PushFront(&entry[K, V]{key: key, val: val})
		for c.order.Len() > c.max {
			oldest := c.order.Back()
			e := oldest.Value.(*entry[K, V])
			c.order.Remove(oldest)
			delete(c.items, e.key)
			evicted = append(evicted, *e)
		}
	}
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, e := range evicted {
			c.onEvict(e.key, e.val)
		}
	}
	return existed
}

// Remove deletes key without invoking the eviction callback, reporting
// whether it was present.
func (c *Cache[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, key)
	return true
}

// Len returns the number of entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Keys returns the keys from most to least recently used — the eviction
// order reversed — for tests and introspection endpoints.
func (c *Cache[K, V]) Keys() []K {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]K, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry[K, V]).key)
	}
	return keys
}
