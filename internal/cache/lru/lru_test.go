package lru

import (
	"fmt"
	"sync"
	"testing"
)

func mustNew[K comparable, V any](t *testing.T, max int, onEvict func(K, V)) *Cache[K, V] {
	t.Helper()
	c, err := New[K, V](max, onEvict)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsNonPositiveCapacity(t *testing.T) {
	for _, max := range []int{0, -1} {
		if _, err := New[string, int](max, nil); err == nil {
			t.Errorf("capacity %d accepted", max)
		}
	}
}

func TestEvictionOrderIsLeastRecentlyUsed(t *testing.T) {
	var evicted []string
	c := mustNew[string, int](t, 3, func(k string, _ int) { evicted = append(evicted, k) })

	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("c", 3)
	// Touch a: order (MRU->LRU) is now a, c, b.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Add("d", 4) // displaces b, the least recently used
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b still present after eviction")
	}

	// Updating an existing key is a touch, not an insert: no eviction, and
	// c moves ahead of a.
	c.Add("c", 30)
	c.Add("e", 5) // displaces a (order before insert: c, d, a)
	if len(evicted) != 2 || evicted[1] != "a" {
		t.Fatalf("evicted %v, want [b a]", evicted)
	}
	if v, ok := c.Get("c"); !ok || v != 30 {
		t.Errorf("c = %d,%v after update, want 30,true", v, ok)
	}

	got := c.Keys()
	want := []string{"c", "e", "d"}
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}

func TestRemoveSkipsEvictionCallback(t *testing.T) {
	evictions := 0
	c := mustNew[string, int](t, 2, func(string, int) { evictions++ })
	c.Add("a", 1)
	if !c.Remove("a") {
		t.Error("Remove(a) = false, want true")
	}
	if c.Remove("a") {
		t.Error("second Remove(a) = true, want false")
	}
	if evictions != 0 {
		t.Errorf("%d eviction callbacks from Remove, want 0", evictions)
	}
	if c.Len() != 0 {
		t.Errorf("Len() = %d, want 0", c.Len())
	}
}

func TestEvictionCallbackMayReenter(t *testing.T) {
	// The Lab-eviction use re-enters the serve layer, which may consult
	// another cache; the callback must therefore run unlocked.
	var c *Cache[string, int]
	c = mustNew[string, int](t, 1, func(k string, _ int) {
		_ = c.Len() // deadlocks if the callback held the lock
	})
	c.Add("a", 1)
	c.Add("b", 2)
	if c.Len() != 1 {
		t.Errorf("Len() = %d, want 1", c.Len())
	}
}

// TestConcurrentAccess hammers one cache from many goroutines; run under
// -race (the Makefile race tier does) to certify the locking.
func TestConcurrentAccess(t *testing.T) {
	var mu sync.Mutex
	evicted := 0
	c := mustNew[string, int](t, 32, func(string, int) {
		mu.Lock()
		evicted++
		mu.Unlock()
	})

	const goroutines = 16
	const opsPer = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("k%d", (g*opsPer+i)%64)
				switch i % 3 {
				case 0:
					c.Add(key, i)
				case 1:
					c.Get(key)
				case 2:
					if i%30 == 2 {
						c.Remove(key)
					} else {
						c.Get(key)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if n := c.Len(); n > 32 {
		t.Errorf("Len() = %d after churn, want <= capacity 32", n)
	}
	// Every key listed must still resolve: Keys and Get agree.
	for _, k := range c.Keys() {
		if _, ok := c.Get(k); !ok {
			t.Errorf("key %q listed but not gettable", k)
		}
	}
}
