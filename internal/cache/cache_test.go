package cache

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default hierarchy invalid: %v", err)
	}
	d := Default()
	if d.L1.SizeBytes != 64<<10 || d.L2.SizeBytes != 2<<20 {
		t.Errorf("default sizes %d/%d", d.L1.SizeBytes, d.L2.SizeBytes)
	}
	if d.L1.HitLatency != 2 || d.L2.HitLatency != 12 {
		t.Errorf("default latencies %d/%d, want the paper's 2/12 cycles", d.L1.HitLatency, d.L2.HitLatency)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mk := func(mut func(*Hierarchy)) Hierarchy {
		h := Default()
		mut(&h)
		return h
	}
	cases := []Hierarchy{
		mk(func(h *Hierarchy) { h.L1.SizeBytes = 0 }),
		mk(func(h *Hierarchy) { h.L1.LineBytes = 100 }), // not dividing capacity
		mk(func(h *Hierarchy) { h.L2.Assoc = 0 }),
		mk(func(h *Hierarchy) { h.L2.HitLatency = 0 }),
		mk(func(h *Hierarchy) { h.L2.SizeBytes = h.L1.SizeBytes }), // inclusion violated
	}
	for i, h := range cases {
		if err := h.Validate(); err == nil {
			t.Errorf("bad hierarchy %d accepted", i)
		}
	}
}

func TestLocalityValidation(t *testing.T) {
	bad := []Locality{
		{APKI: -1, WorkingSetBytes: 1},
		{APKI: 1, StreamFrac: -0.1, WorkingSetBytes: 1},
		{APKI: 1, StreamFrac: 1.5, WorkingSetBytes: 1},
		{APKI: 1, WorkingSetBytes: 0},
	}
	h := Default()
	for i, loc := range bad {
		if _, err := h.Evaluate(loc); err == nil {
			t.Errorf("bad locality %d accepted", i)
		}
	}
}

func TestSmallWorkingSetFitsInL1(t *testing.T) {
	h := Default()
	b, err := h.Evaluate(Locality{APKI: 350, StreamFrac: 0, WorkingSetBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if b.L1HitRate < 0.98 {
		t.Errorf("4KB working set L1 hit rate %.3f, want ~1", b.L1HitRate)
	}
	if b.DRAMMPKI > 0.1 {
		t.Errorf("4KB working set DRAM MPKI %.3f, want ~0", b.DRAMMPKI)
	}
}

func TestStreamingMissesEverything(t *testing.T) {
	h := Default()
	b, err := h.Evaluate(Locality{APKI: 100, StreamFrac: 1, WorkingSetBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.DRAMMPKI-100) > 1e-9 {
		t.Errorf("pure streaming DRAM MPKI %.3f, want 100 (= APKI)", b.DRAMMPKI)
	}
	if b.L1HitRate > 1e-9 {
		t.Errorf("pure streaming L1 hit rate %v, want 0", b.L1HitRate)
	}
}

func TestMidWorkingSetCaughtByL2(t *testing.T) {
	// A working set between L1 and L2 sizes should mostly hit in L2.
	h := Default()
	b, err := h.Evaluate(Locality{APKI: 350, StreamFrac: 0, WorkingSetBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if b.L2HitRate < 0.5 {
		t.Errorf("256KB working set L2 hit rate %.3f, want majority", b.L2HitRate)
	}
	if b.DRAMMPKI > 0.02*350 {
		t.Errorf("256KB working set DRAM MPKI %.1f, want small", b.DRAMMPKI)
	}
	if b.CPIContribution <= 0 {
		t.Errorf("L2-resident working set should cost CPI, got %v", b.CPIContribution)
	}
}

func TestMPKIMonotoneInWorkingSet(t *testing.T) {
	h := Default()
	prev := -1.0
	for _, wss := range []float64{16 << 10, 128 << 10, 1 << 20, 8 << 20, 64 << 20} {
		mpki, err := h.MPKIAt(Locality{APKI: 300, StreamFrac: 0.02, WorkingSetBytes: wss})
		if err != nil {
			t.Fatal(err)
		}
		if mpki < prev {
			t.Errorf("MPKI decreased at working set %v", wss)
		}
		prev = mpki
	}
}

func TestMPKIDecreasesWithL2Size(t *testing.T) {
	loc := Locality{APKI: 300, StreamFrac: 0.02, WorkingSetBytes: 3 << 20}
	prev := math.Inf(1)
	for _, size := range []int{512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20} {
		h := Default().WithL2Size(size)
		mpki, err := h.MPKIAt(loc)
		if err != nil {
			t.Fatal(err)
		}
		if mpki >= prev {
			t.Errorf("MPKI not decreasing at L2 size %d: %v >= %v", size, mpki, prev)
		}
		prev = mpki
	}
}

func TestHitRatesFormDistribution(t *testing.T) {
	// L1 hits + L2 hits + DRAM misses must account for every access.
	h := Default()
	f := func(apkiRaw, streamRaw, wssRaw uint16) bool {
		loc := Locality{
			APKI:            float64(apkiRaw%500) + 1,
			StreamFrac:      float64(streamRaw%100) / 100,
			WorkingSetBytes: float64(wssRaw%((64<<10)-1))*1024 + 1024,
		}
		b, err := h.Evaluate(loc)
		if err != nil {
			return false
		}
		dramRate := b.DRAMMPKI / loc.APKI
		total := b.L1HitRate + b.L2HitRate + dramRate
		return math.Abs(total-1) < 1e-9 &&
			b.L1HitRate >= 0 && b.L2HitRate >= 0 && dramRate >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssociativityHelps(t *testing.T) {
	// Higher associativity -> larger effective capacity -> fewer misses.
	loc := Locality{APKI: 300, StreamFrac: 0, WorkingSetBytes: 2 << 20}
	lowAssoc := Default()
	lowAssoc.L2.Assoc = 1
	highAssoc := Default()
	highAssoc.L2.Assoc = 16
	lo, err := lowAssoc.MPKIAt(loc)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := highAssoc.MPKIAt(loc)
	if err != nil {
		t.Fatal(err)
	}
	if hi >= lo {
		t.Errorf("16-way MPKI %.2f not below direct-mapped %.2f", hi, lo)
	}
}

func TestPaperBenchmarkMPKIsReachable(t *testing.T) {
	// The suite's configured phase MPKIs must be reproducible from
	// plausible locality profiles on the default hierarchy: CPU-bound ~1,
	// balanced ~10-25, streaming ~18-28.
	h := Default()
	cases := []struct {
		name     string
		loc      Locality
		min, max float64
	}{
		{"bzip2-like", Locality{APKI: 320, StreamFrac: 0.001, WorkingSetBytes: 350 << 10}, 0.3, 3},
		{"gobmk-pattern-like", Locality{APKI: 380, StreamFrac: 0.03, WorkingSetBytes: 580 << 10}, 15, 35},
		{"lbm-like", Locality{APKI: 300, StreamFrac: 0.085, WorkingSetBytes: 400 << 10}, 20, 35},
	}
	for _, c := range cases {
		mpki, err := h.MPKIAt(c.loc)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if mpki < c.min || mpki > c.max {
			t.Errorf("%s: derived MPKI %.1f outside [%v, %v]", c.name, mpki, c.min, c.max)
		}
	}
}
