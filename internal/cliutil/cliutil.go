// Package cliutil holds the flag and lifecycle plumbing shared by the
// repo's commands: a common -timeout flag and a root context that ends on
// SIGINT/SIGTERM, so every CLI cancels cleanly mid-collection instead of
// dying with work half-done.
package cliutil

import (
	"context"
	"flag"
	"os/signal"
	"syscall"
	"time"
)

// TimeoutFlag registers the conventional -timeout flag on fs (the default
// flag.CommandLine when fs is nil) and returns its destination. Zero means
// no deadline.
func TimeoutFlag(fs *flag.FlagSet) *time.Duration {
	if fs == nil {
		fs = flag.CommandLine
	}
	return fs.Duration("timeout", 0, "abort after this long (0 = no deadline)")
}

// Context returns the root context for a command: cancelled on SIGINT or
// SIGTERM, and additionally deadline-bounded when timeout is positive.
// Callers must call stop to release the signal handler.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}
