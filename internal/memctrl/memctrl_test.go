package memctrl

import (
	"math"
	"testing"
	"testing/quick"

	"mcdvfs/internal/dram"
	"mcdvfs/internal/freq"
)

func model(t *testing.T) *Model {
	t.Helper()
	m, err := New(dram.DefaultDevice())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestCoreServiceMixesHitAndMiss(t *testing.T) {
	m := model(t)
	d := dram.DefaultDevice()
	f := freq.MHz(800)
	allHit, err := m.CoreServiceNS(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	allMiss, err := m.CoreServiceNS(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantHit := d.RowHitNS(f) / (1 - d.RefreshOverhead())
	wantMiss := d.RowMissNS(f) / (1 - d.RefreshOverhead())
	if math.Abs(allHit-wantHit) > 1e-9 || math.Abs(allMiss-wantMiss) > 1e-9 {
		t.Errorf("core service = %v/%v, want %v/%v", allHit, allMiss, wantHit, wantMiss)
	}
	mid, _ := m.CoreServiceNS(f, 0.5)
	if mid <= allHit || mid >= allMiss {
		t.Errorf("mixed service %v not between %v and %v", mid, allHit, allMiss)
	}
}

func TestLatencyIncreasesWithLoad(t *testing.T) {
	m := model(t)
	f := freq.MHz(400)
	prev := 0.0
	// Stay below the utilization cap (0.95): at 400 MHz one line transfer
	// is 20 ns, so the cap sits at 0.0475 accesses/ns.
	for _, rate := range []float64{0, 0.005, 0.01, 0.02, 0.04} {
		lat, err := m.AvgLatencyNS(f, Load{AccessPerNS: rate, RowHitRate: 0.6})
		if err != nil {
			t.Fatalf("AvgLatencyNS(rate=%v): %v", rate, err)
		}
		if lat <= prev {
			t.Errorf("latency not increasing with load at rate %v: %v <= %v", rate, lat, prev)
		}
		prev = lat
	}
}

func TestLatencyDecreasesWithClockAtFixedLoad(t *testing.T) {
	m := model(t)
	l := Load{AccessPerNS: 0.02, RowHitRate: 0.6}
	prev := math.Inf(1)
	for _, f := range freq.Ladder(200, 800, 100) {
		lat, err := m.AvgLatencyNS(f, l)
		if err != nil {
			t.Fatalf("AvgLatencyNS(%v): %v", f, err)
		}
		if lat >= prev {
			t.Errorf("latency not decreasing at %v: %v >= %v", f, lat, prev)
		}
		prev = lat
	}
}

func TestUnloadedLatencyEqualsCoreService(t *testing.T) {
	m := model(t)
	f := freq.MHz(600)
	lat, err := m.AvgLatencyNS(f, Load{AccessPerNS: 0, RowHitRate: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	core, _ := m.CoreServiceNS(f, 0.7)
	if math.Abs(lat-core) > 1e-12 {
		t.Errorf("unloaded latency = %v, want core service %v", lat, core)
	}
}

func TestBusUtilization(t *testing.T) {
	m := model(t)
	d := dram.DefaultDevice()
	f := freq.MHz(800)
	// One line access every line-transfer-time is utilization 1.
	rate := 1 / d.LineTransferNS(f)
	u, err := m.BusUtilization(f, Load{AccessPerNS: rate, RowHitRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-1) > 1e-9 {
		t.Errorf("utilization = %v, want 1", u)
	}
}

func TestLatencyFiniteAtSaturation(t *testing.T) {
	m := model(t)
	lat, err := m.AvgLatencyNS(200, Load{AccessPerNS: 10, RowHitRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(lat, 0) || math.IsNaN(lat) || lat <= 0 {
		t.Errorf("saturated latency = %v, want finite positive", lat)
	}
}

func TestMinServiceTime(t *testing.T) {
	m := model(t)
	d := dram.DefaultDevice()
	n := 1000.0
	got, err := m.MinServiceTimeNS(800, n)
	if err != nil {
		t.Fatal(err)
	}
	want := n * d.LineTransferNS(800) / (1 - d.RefreshOverhead())
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("MinServiceTimeNS = %v, want %v", got, want)
	}
	// Halving the clock doubles the bound.
	got400, _ := m.MinServiceTimeNS(400, n)
	if math.Abs(got400/got-2) > 1e-9 {
		t.Errorf("bound ratio = %v, want 2", got400/got)
	}
}

func TestLoadValidation(t *testing.T) {
	m := model(t)
	bad := []Load{
		{AccessPerNS: -1},
		{AccessPerNS: math.NaN()},
		{RowHitRate: 1.5},
		{RowHitRate: -0.1},
		{WriteFrac: 2},
	}
	for _, l := range bad {
		if _, err := m.AvgLatencyNS(400, l); err == nil {
			t.Errorf("load %+v accepted", l)
		}
	}
}

func TestClockRangeEnforced(t *testing.T) {
	m := model(t)
	if _, err := m.AvgLatencyNS(100, Load{}); err == nil {
		t.Error("clock below range accepted")
	}
	if _, err := m.MinServiceTimeNS(1000, 1); err == nil {
		t.Error("clock above range accepted")
	}
}

func TestWritesAddQueueingCost(t *testing.T) {
	m := model(t)
	l := Load{AccessPerNS: 0.05, RowHitRate: 0.6}
	rd, _ := m.AvgLatencyNS(400, l)
	l.WriteFrac = 0.5
	wr, _ := m.AvgLatencyNS(400, l)
	if wr <= rd {
		t.Errorf("write-heavy latency %v not above read-only %v", wr, rd)
	}
}

// Property: latency is monotone in row-miss fraction for any valid load.
func TestLatencyMonotoneInMissRate(t *testing.T) {
	m := model(t)
	f := func(hitRaw, rateRaw uint16) bool {
		hit := float64(hitRaw%1000) / 1000
		rate := float64(rateRaw%100) / 2000
		l1 := Load{AccessPerNS: rate, RowHitRate: hit}
		l2 := Load{AccessPerNS: rate, RowHitRate: hit * 0.5} // fewer hits
		a, err1 := m.AvgLatencyNS(400, l1)
		b, err2 := m.AvgLatencyNS(400, l2)
		return err1 == nil && err2 == nil && b >= a-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
