package memctrl

import (
	"math"
	"testing"

	"mcdvfs/internal/dram"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/rng"
)

// genStream builds a synthetic open-page request stream with approximately
// the target row-hit rate and Poisson arrivals at the given rate.
func genStream(src *rng.Source, n int, ratePerNS, rowHitRate float64, banks int) []dram.Request {
	reqs := make([]dram.Request, 0, n)
	now := 0.0
	lastRow := make([]int, banks)
	nextRow := 1
	for i := 0; i < n; i++ {
		now += src.Exp(1 / ratePerNS)
		bank := src.Intn(banks)
		row := lastRow[bank]
		if row == 0 || src.Float64() > rowHitRate {
			row = nextRow
			nextRow++
			lastRow[bank] = row
		}
		reqs = append(reqs, dram.Request{ArrivalNS: now, Bank: bank, Row: row})
	}
	return reqs
}

// TestAnalyticMatchesEngine drives the command-level engine and the
// closed-form model with the same traffic and requires broad agreement.
// The analytic model is an average-behaviour approximation, so the
// tolerance is generous (35%), but it must hold across clocks, loads, and
// localities — that is what the simulator's fidelity rests on.
func TestAnalyticMatchesEngine(t *testing.T) {
	m := model(t)
	dev := dram.DefaultDevice()
	cases := []struct {
		clock  freq.MHz
		rate   float64 // accesses per ns
		rowHit float64
	}{
		{800, 0.005, 0.8},
		{800, 0.02, 0.5},
		{400, 0.005, 0.8},
		{400, 0.015, 0.3},
		{200, 0.004, 0.6},
		{600, 0.01, 0.9},
	}
	for _, c := range cases {
		src := rng.New(1234)
		reqs := genStream(src, 4000, c.rate, c.rowHit, dev.Banks)
		eng, err := dram.NewEngine(dev, c.clock)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		st, err := eng.ServiceAll(reqs)
		if err != nil {
			t.Fatalf("ServiceAll: %v", err)
		}
		// Feed the engine's *achieved* row-hit rate to the analytic model so
		// the comparison isolates latency modeling, not locality generation.
		lat, err := m.AvgLatencyNS(c.clock, Load{AccessPerNS: c.rate, RowHitRate: st.RowHitRate()})
		if err != nil {
			t.Fatalf("AvgLatencyNS: %v", err)
		}
		got := st.AvgLatencyNS()
		relErr := math.Abs(lat-got) / got
		if relErr > 0.35 {
			t.Errorf("clock %v rate %v hit %.2f: analytic %.1f ns vs engine %.1f ns (rel err %.0f%%)",
				c.clock, c.rate, c.rowHit, lat, got, relErr*100)
		}
	}
}

// TestAnalyticOrderingMatchesEngine checks that the model ranks
// configurations the same way the engine does: lower clock -> higher
// latency, higher load -> higher latency.
func TestAnalyticOrderingMatchesEngine(t *testing.T) {
	dev := dram.DefaultDevice()
	run := func(clock freq.MHz, rate float64) float64 {
		src := rng.New(99)
		reqs := genStream(src, 3000, rate, 0.6, dev.Banks)
		eng, err := dram.NewEngine(dev, clock)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		st, err := eng.ServiceAll(reqs)
		if err != nil {
			t.Fatalf("ServiceAll: %v", err)
		}
		return st.AvgLatencyNS()
	}
	if run(200, 0.01) <= run(800, 0.01) {
		t.Error("engine: 200MHz not slower than 800MHz")
	}
	if run(400, 0.02) <= run(400, 0.002) {
		t.Error("engine: loaded not slower than unloaded")
	}
}
