package memctrl

// Equivalence suite pinning the hoisted Coeffs evaluation to the Model
// methods bit-for-bit: the batch simulator's correctness rests on CoeffsAt
// + the Coeffs methods being a pure reassociation-free hoisting of
// AvgLatencyNS / MinServiceTimeNS.

import (
	"testing"

	"mcdvfs/internal/dram"
	"mcdvfs/internal/freq"
)

func TestCoeffsMatchModel(t *testing.T) {
	m := MustNew(dram.DefaultDevice())
	loads := []Load{
		{},
		{AccessPerNS: 0.001, RowHitRate: 0.9, WriteFrac: 0.1},
		{AccessPerNS: 0.02, RowHitRate: 0.6, WriteFrac: 0.3},
		{AccessPerNS: 0.2, RowHitRate: 0, WriteFrac: 1}, // beyond the util cap
		{AccessPerNS: 0.05, RowHitRate: 1, WriteFrac: 0.5},
	}
	for _, f := range freq.FineSpace().MemLadder() {
		c, err := m.CoeffsAt(f)
		if err != nil {
			t.Fatalf("CoeffsAt(%v): %v", f, err)
		}
		for _, l := range loads {
			want, err := m.AvgLatencyNS(f, l)
			if err != nil {
				t.Fatalf("AvgLatencyNS(%v, %+v): %v", f, l, err)
			}
			got := c.CoreServiceNS(l.RowHitRate) + c.QueueNS(l.AccessPerNS, c.ServiceNS(l.WriteFrac))
			if got != want {
				t.Errorf("f=%v load=%+v: coeffs latency %v != model %v", f, l, got, want)
			}
			core, err := m.CoreServiceNS(f, l.RowHitRate)
			if err != nil {
				t.Fatal(err)
			}
			if c.CoreServiceNS(l.RowHitRate) != core {
				t.Errorf("f=%v: coeffs core %v != model %v", f, c.CoreServiceNS(l.RowHitRate), core)
			}
		}
		for _, n := range []float64{0, 1, 1500.5, 6e5} {
			want, err := m.MinServiceTimeNS(f, n)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.MinServiceTimeNS(n); got != want {
				t.Errorf("f=%v n=%v: coeffs bound %v != model %v", f, n, got, want)
			}
		}
	}
}

func TestCoeffsAtRejectsBadClock(t *testing.T) {
	m := MustNew(dram.DefaultDevice())
	if _, err := m.CoeffsAt(100); err == nil {
		t.Error("under-range clock accepted")
	}
	if _, err := m.CoeffsAt(5000); err == nil {
		t.Error("over-range clock accepted")
	}
}
