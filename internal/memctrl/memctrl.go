// Package memctrl models the memory controller's average behaviour: the
// expected DRAM access latency as a function of memory clock, row-buffer
// locality, and offered load.
//
// The paper's characterization consumes per-sample aggregate measurements,
// so the simulator needs the controller's *average* latency, not per-request
// timing. This package provides a closed-form model:
//
//	latency = coreService/(1-refreshOverhead) + queueDelay
//
// where coreService mixes row-hit and row-miss device latencies by the
// workload's row-hit rate, the refresh term accounts for periodic tRFC
// blackouts, and queueDelay is an M/M/1-style waiting time driven by data
// bus utilization. The model is validated against the command-level
// dram.Engine in integration tests (see validate_test.go).
package memctrl

import (
	"fmt"
	"math"

	"mcdvfs/internal/dram"
	"mcdvfs/internal/freq"
)

// Load describes the average memory traffic presented to the controller.
type Load struct {
	// AccessPerNS is the request arrival rate in accesses per nanosecond.
	AccessPerNS float64
	// RowHitRate is the fraction of accesses hitting an open row, in [0,1].
	RowHitRate float64
	// WriteFrac is the fraction of accesses that are writes, in [0,1].
	WriteFrac float64
}

// Validate reports the first invalid field of the load.
func (l Load) Validate() error {
	switch {
	case l.AccessPerNS < 0 || math.IsNaN(l.AccessPerNS) || math.IsInf(l.AccessPerNS, 0):
		return fmt.Errorf("memctrl: invalid access rate %v", l.AccessPerNS)
	case l.RowHitRate < 0 || l.RowHitRate > 1:
		return fmt.Errorf("memctrl: row hit rate %v outside [0,1]", l.RowHitRate)
	case l.WriteFrac < 0 || l.WriteFrac > 1:
		return fmt.Errorf("memctrl: write fraction %v outside [0,1]", l.WriteFrac)
	}
	return nil
}

// Model is the analytic controller model for one device.
//
//vet:invariant utilCap > 0 && utilCap <= 0.95
type Model struct {
	dev dram.Device
	// utilCap bounds data-bus utilization in the queueing term so the
	// closed form stays finite; beyond the cap, saturation is expressed
	// through the bandwidth bound (MinServiceTimeNS) instead.
	utilCap float64
}

// New builds a controller model for dev.
func New(dev dram.Device) (*Model, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	return &Model{dev: dev, utilCap: 0.95}, nil
}

// MustNew is New for static configuration; it panics on an invalid device.
func MustNew(dev dram.Device) *Model {
	m, err := New(dev)
	if err != nil {
		panic(err)
	}
	return m
}

// Device returns the modeled device.
func (m *Model) Device() dram.Device { return m.dev }

// CoreServiceNS returns the load-independent device service time at clock f:
// the row-hit/row-miss mix inflated by refresh unavailability.
func (m *Model) CoreServiceNS(f freq.MHz, rowHitRate float64) (float64, error) {
	if err := m.dev.CheckClock(f); err != nil {
		return 0, err
	}
	if rowHitRate < 0 || rowHitRate > 1 {
		return 0, fmt.Errorf("memctrl: row hit rate %v outside [0,1]", rowHitRate)
	}
	mix := rowHitRate*m.dev.RowHitNS(f) + (1-rowHitRate)*m.dev.RowMissNS(f)
	return mix / (1 - m.dev.RefreshOverhead()), nil
}

// BusUtilization returns the data-bus utilization implied by the load at
// clock f (1.0 = the bus is fully occupied by bursts).
func (m *Model) BusUtilization(f freq.MHz, l Load) (float64, error) {
	if err := m.dev.CheckClock(f); err != nil {
		return 0, err
	}
	if err := l.Validate(); err != nil {
		return 0, err
	}
	return l.AccessPerNS * m.dev.LineTransferNS(f), nil
}

// AvgLatencyNS returns the expected per-access latency at clock f under the
// given load, including queueing.
//
//vet:ensures ret >= 0
func (m *Model) AvgLatencyNS(f freq.MHz, l Load) (float64, error) {
	core, err := m.CoreServiceNS(f, l.RowHitRate)
	if err != nil {
		return 0, err
	}
	if err := l.Validate(); err != nil {
		return 0, err
	}
	util, err := m.BusUtilization(f, l)
	if err != nil {
		return 0, err
	}
	if util > m.utilCap {
		util = m.utilCap
	}
	// M/M/1 waiting time with the line transfer as the contended resource.
	// Writes hold the bank slightly longer (tWR), folded in as extra
	// service.
	service := m.dev.LineTransferNS(f) + l.WriteFrac*m.dev.TWRns*0.5
	queue := util / (1 - util) * service
	return core + queue, nil //lint:allow contract core's sign rests on dev.RefreshOverhead() < 1, a Device.Validate fact behind an interface call the interval walk cannot summarize; the hoisted Coeffs path proves the same bound via the RefreshDenom invariant
}

// MinServiceTimeNS returns the bandwidth-bound lower limit on the time to
// move n cache-line accesses at clock f: the bus must carry every line,
// degraded by refresh blackouts. Execution time can never be below this
// bound no matter how latency-tolerant the core is.
func (m *Model) MinServiceTimeNS(f freq.MHz, n float64) (float64, error) {
	if err := m.dev.CheckClock(f); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("memctrl: negative access count %v", n)
	}
	return n * m.dev.LineTransferNS(f) / (1 - m.dev.RefreshOverhead()), nil
}

// Coeffs packs every clock-dependent invariant of the latency model, hoisted
// once per operating point so a fixed-point solver can evaluate the model in
// a handful of floating-point operations per iteration instead of
// re-deriving (and re-validating) device timings on every call.
//
// The evaluation methods mirror Model.AvgLatencyNS and Model.MinServiceTimeNS
// operation-for-operation — same terms, same association order — so for
// inputs the Model methods would accept, the results are bit-identical. The
// equivalence is pinned by TestCoeffsMatchModel. Inputs are NOT validated
// here; callers hoist validation alongside the coefficients.
//
//vet:invariant RefreshDenom > 0 && RefreshDenom <= 1 && UtilCap > 0 && UtilCap <= 0.95
type Coeffs struct {
	RowHitNS       float64 // device row-hit latency at the clock
	RowMissNS      float64 // device row-miss (conflict) latency at the clock
	RefreshDenom   float64 // 1 - refresh overhead, the availability fraction
	LineTransferNS float64 // data-bus time per cache line at the clock
	TWRns          float64 // write recovery, folded into write service time
	UtilCap        float64 // queueing-term utilization cap
}

// CoeffsAt hoists the latency-model invariants for clock f.
//
//vet:hotpath
//vet:requires f > 0
func (m *Model) CoeffsAt(f freq.MHz) (Coeffs, error) {
	if err := m.dev.CheckClock(f); err != nil {
		return Coeffs{}, err
	}
	return Coeffs{
		RowHitNS:       m.dev.RowHitNS(f),
		RowMissNS:      m.dev.RowMissNS(f),
		RefreshDenom:   1 - m.dev.RefreshOverhead(),
		LineTransferNS: m.dev.LineTransferNS(f),
		TWRns:          m.dev.TWRns,
		UtilCap:        m.utilCap,
	}, nil
}

// CoreServiceNS is the hoisted Model.CoreServiceNS: the load-independent
// row-hit/row-miss latency mix inflated by refresh unavailability.
//
//vet:requires rowHitRate >= 0 && rowHitRate <= 1
//vet:ensures ret >= 0
func (c Coeffs) CoreServiceNS(rowHitRate float64) float64 {
	mix := rowHitRate*c.RowHitNS + (1-rowHitRate)*c.RowMissNS
	return mix / c.RefreshDenom
}

// ServiceNS is the contended service time of the queueing term: the line
// transfer plus the write-recovery share for the workload's write mix.
//
//vet:requires writeFrac >= 0 && writeFrac <= 1
//vet:ensures ret >= 0
func (c Coeffs) ServiceNS(writeFrac float64) float64 {
	return c.LineTransferNS + writeFrac*c.TWRns*0.5
}

// QueueNS is the M/M/1-style waiting time at the given arrival rate, with
// serviceNS precomputed by ServiceNS. CoreServiceNS(h) + QueueNS(r, s)
// equals Model.AvgLatencyNS bit-for-bit.
//
//vet:requires accessPerNS >= 0 && serviceNS >= 0
//vet:ensures ret >= 0
func (c Coeffs) QueueNS(accessPerNS, serviceNS float64) float64 {
	util := accessPerNS * c.LineTransferNS
	if util > c.UtilCap {
		util = c.UtilCap
	}
	return util / (1 - util) * serviceNS
}

// MinServiceTimeNS is the hoisted Model.MinServiceTimeNS bandwidth bound for
// n cache-line accesses.
//
//vet:requires n >= 0
//vet:ensures ret >= 0
func (c Coeffs) MinServiceTimeNS(n float64) float64 {
	return n * c.LineTransferNS / c.RefreshDenom
}
