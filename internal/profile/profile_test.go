package profile

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/governor"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/trace"
	"mcdvfs/internal/workload"
)

var (
	gridOnce sync.Once
	lbmGrid  *trace.Grid
	gridErr  error
)

func grid(t *testing.T) *trace.Grid {
	t.Helper()
	gridOnce.Do(func() {
		sys, err := sim.New(sim.DefaultConfig())
		if err != nil {
			gridErr = err
			return
		}
		lbmGrid, gridErr = trace.Collect(sys, workload.MustByName("lbm"), freq.CoarseSpace())
	})
	if gridErr != nil {
		t.Fatal(gridErr)
	}
	return lbmGrid
}

func buildProfile(t *testing.T) *Profile {
	t.Helper()
	p, err := Build(grid(t), 1.3, 0.05)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuildProducesValidProfile(t *testing.T) {
	p := buildProfile(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Benchmark != "lbm" || p.Budget != 1.3 || p.Threshold != 0.05 {
		t.Errorf("metadata: %+v", p)
	}
	if p.NumSamples() != grid(t).NumSamples() {
		t.Errorf("profile covers %d samples, grid has %d", p.NumSamples(), grid(t).NumSamples())
	}
	for i, r := range p.Regions {
		if r.ExpectedCPI <= 0 || r.ExpectedMPKI < 0 {
			t.Errorf("region %d expectations: %+v", i, r)
		}
		if len(r.SampleCPI) != r.End-r.Start+1 || len(r.SampleMPKI) != r.End-r.Start+1 {
			t.Errorf("region %d per-sample traces incomplete: %d/%d entries for %d samples",
				i, len(r.SampleCPI), len(r.SampleMPKI), r.End-r.Start+1)
		}
	}
}

func TestSettingAt(t *testing.T) {
	p := buildProfile(t)
	for _, r := range p.Regions {
		st, err := p.SettingAt(r.Start)
		if err != nil {
			t.Fatal(err)
		}
		if st != r.Setting {
			t.Errorf("SettingAt(%d) = %v, want %v", r.Start, st, r.Setting)
		}
	}
	// Past the end: last region's setting.
	last := p.Regions[len(p.Regions)-1]
	st, err := p.SettingAt(p.NumSamples() + 100)
	if err != nil {
		t.Fatal(err)
	}
	if st != last.Setting {
		t.Errorf("past-end setting %v, want %v", st, last.Setting)
	}
	if _, err := p.SettingAt(-1); err == nil {
		t.Error("negative sample accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := buildProfile(t)
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Regions, p.Regions) {
		t.Fatal("regions changed in round trip")
	}
}

func TestReadJSONRejectsBadProfiles(t *testing.T) {
	cases := []string{
		`{`,
		`{"benchmark":"","budget":1.3,"threshold":0.05,"sample_instructions":1,"regions":[{"start":0,"end":1}]}`,
		`{"benchmark":"x","budget":0.5,"threshold":0.05,"sample_instructions":1,"regions":[{"start":0,"end":1}]}`,
		`{"benchmark":"x","budget":1.3,"threshold":2,"sample_instructions":1,"regions":[{"start":0,"end":1}]}`,
		`{"benchmark":"x","budget":1.3,"threshold":0.05,"sample_instructions":1,"regions":[]}`,
		// gap between regions
		`{"benchmark":"x","budget":1.3,"threshold":0.05,"sample_instructions":1,"regions":[{"start":0,"end":1},{"start":3,"end":4}]}`,
		// inverted region
		`{"benchmark":"x","budget":1.3,"threshold":0.05,"sample_instructions":1,"regions":[{"start":0,"end":-1}]}`,
		// not starting at zero
		`{"benchmark":"x","budget":1.3,"threshold":0.05,"sample_instructions":1,"regions":[{"start":1,"end":2}]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(bytes.NewBufferString(c)); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestProfileGovernorReplaysSchedule(t *testing.T) {
	p := buildProfile(t)
	gov, err := NewGovernor(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	specs := workload.MustByName("lbm").MustRealize()
	res, err := governor.Run(sys, specs, gov, governor.DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	// Replay must make exactly the profiled transitions, with zero search
	// cost.
	if res.Transitions != len(p.Regions)-1 {
		t.Errorf("transitions = %d, want %d", res.Transitions, len(p.Regions)-1)
	}
	if res.Tunes != 0 || res.SettingsSearched != 0 {
		t.Errorf("profile replay searched: %d tunes, %d settings", res.Tunes, res.SettingsSearched)
	}
	// And the schedule must match the profile exactly.
	for s, st := range res.Schedule {
		want, _ := p.SettingAt(s)
		if st != want {
			t.Fatalf("sample %d ran at %v, profile says %v", s, st, want)
		}
	}
}

func TestProfileGovernorBeatsSearchOnOverhead(t *testing.T) {
	p := buildProfile(t)
	profGov, err := NewGovernor(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	model, err := governor.NewSimModel()
	if err != nil {
		t.Fatal(err)
	}
	searchGov, err := governor.NewBudget(governor.BudgetConfig{
		Budget: 1.3, Threshold: 0.05, Space: freq.CoarseSpace(),
		Model: model, Search: governor.FromMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	specs := workload.MustByName("lbm").MustRealize()
	rProf, err := governor.Run(sys, specs, profGov, governor.DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	rSearch, err := governor.Run(sys, specs, searchGov, governor.DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	if rProf.OverheadNS >= rSearch.OverheadNS {
		t.Errorf("profile overhead %.2fms not below search overhead %.2fms",
			rProf.OverheadNS/1e6, rSearch.OverheadNS/1e6)
	}
}

func TestProfileGovernorNoFalseFallbacksOnSameApp(t *testing.T) {
	// Replaying a profile against the application it was built from must
	// not trigger drift fallbacks: intra-region phase variation is in the
	// per-sample traces, not drift.
	p := buildProfile(t)
	fallback, err := governor.NewBudget(governor.BudgetConfig{
		Budget: 1.3, Threshold: 0.05, Space: freq.CoarseSpace(),
		Model: mustModel(t), Search: governor.FromMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	gov, err := NewGovernor(p, fallback, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	specs := workload.MustByName("lbm").MustRealize()
	if _, err := governor.Run(sys, specs, gov, governor.DefaultOverhead()); err != nil {
		t.Fatal(err)
	}
	if got := gov.FallbackIntervals(); got != 0 {
		t.Errorf("same-application replay fell back %d times", got)
	}
}

func TestProfileGovernorFallsBackOnDrift(t *testing.T) {
	// Replay an lbm profile against gobmk: counters diverge wildly, so a
	// drift-aware profile governor must hand control to its fallback.
	p := buildProfile(t)
	fallback, err := governor.NewBudget(governor.BudgetConfig{
		Budget: 1.3, Threshold: 0.05, Space: freq.CoarseSpace(),
		Model: mustModel(t), Search: governor.FromMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	gov, err := NewGovernor(p, fallback, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	specs := workload.MustByName("gobmk").MustRealize()
	if _, err := governor.Run(sys, specs, gov, governor.DefaultOverhead()); err != nil {
		t.Fatal(err)
	}
	if gov.FallbackIntervals() == 0 {
		t.Error("wrong-application profile never triggered the fallback")
	}
}

func TestNewGovernorValidation(t *testing.T) {
	if _, err := NewGovernor(nil, nil, 0); err == nil {
		t.Error("nil profile accepted")
	}
	p := buildProfile(t)
	if _, err := NewGovernor(p, nil, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
	bad := *p
	bad.Regions = nil
	if _, err := NewGovernor(&bad, nil, 0); err == nil {
		t.Error("invalid profile accepted")
	}
}

func mustModel(t *testing.T) governor.Model {
	t.Helper()
	m, err := governor.NewSimModel()
	if err != nil {
		t.Fatal(err)
	}
	return m
}
