package profile

import (
	"fmt"
	"math"

	"mcdvfs/internal/governor"
	"mcdvfs/internal/workload"
)

// Governor replays an offline profile at runtime: each interval uses the
// profiled region's setting, with zero search cost. When the observed
// counters drift beyond the tolerance from the profile's expectations, it
// falls back to a delegate governor (typically a budget governor) until
// the counters re-converge — the paper's proposal of extending profiled
// knowledge to runtime with a safety net.
type Governor struct {
	profile   *Profile
	fallback  governor.Governor
	tolerance float64

	sample     int
	fellBack   int
	lastInSync bool
}

// NewGovernor builds a profile-replay governor. fallback may be nil, in
// which case drifted intervals keep the profiled setting anyway.
// tolerance is the relative counter deviation that triggers the fallback
// (e.g. 0.3 = 30%); zero disables drift detection.
func NewGovernor(p *Profile, fallback governor.Governor, tolerance float64) (*Governor, error) {
	if p == nil {
		return nil, fmt.Errorf("profile: nil profile")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if tolerance < 0 {
		return nil, fmt.Errorf("profile: negative tolerance")
	}
	return &Governor{profile: p, fallback: fallback, tolerance: tolerance, lastInSync: true}, nil
}

// Name implements governor.Governor.
func (g *Governor) Name() string {
	return fmt.Sprintf("profile(%s,I=%.2f,th=%.0f%%)", g.profile.Benchmark, g.profile.Budget, g.profile.Threshold*100)
}

// FallbackIntervals reports how many intervals ran on the fallback.
func (g *Governor) FallbackIntervals() int { return g.fellBack }

// Decide implements governor.Governor.
func (g *Governor) Decide(prev *governor.Observation, prevProfile *workload.SampleSpec) (governor.Decision, error) {
	idx := g.sample
	g.sample++

	inSync := true
	if prev != nil && g.tolerance > 0 {
		// Compare the previous interval's counters with the profile's
		// per-sample expectations for that interval. MPKI drift is judged
		// on an absolute floor as well: tiny traffic numbers (0.5 vs 1.5
		// MPKI) are both "memory-idle" and must not read as drift.
		region := g.profile.RegionAt(prev.Sample)
		expCPI, expMPKI := region.ExpectedAt(prev.Sample)
		cpiDrift := rel(prev.CPI, expCPI) > g.tolerance
		mpkiDrift := rel(prev.MPKI, expMPKI) > g.tolerance && math.Abs(prev.MPKI-expMPKI) > 2
		if cpiDrift || mpkiDrift {
			inSync = false
		}
	}
	g.lastInSync = inSync

	if !inSync && g.fallback != nil {
		g.fellBack++
		return g.fallback.Decide(prev, prevProfile)
	}
	st, err := g.profile.SettingAt(idx)
	if err != nil {
		return governor.Decision{}, err
	}
	return governor.Decision{Setting: st}, nil
}

// rel returns |a-b| / max(|b|, eps).
func rel(a, b float64) float64 {
	denom := math.Abs(b)
	if denom < 1e-9 {
		denom = 1e-9
	}
	return math.Abs(a-b) / denom
}
