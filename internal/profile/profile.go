// Package profile implements the paper's Section VII "offline analysis"
// proposal: profile an application's stable regions offline, ship the
// profile, and let the runtime tune only at profiled region boundaries —
// no per-interval searching at all.
//
// A Profile records, for one (application, budget, threshold) triple, the
// stable-region schedule: region boundaries, the setting to hold in each
// region, and the expected counters (CPI, MPKI) that let the runtime
// detect when reality diverges from the profile.
package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"mcdvfs/internal/core"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/trace"
)

// RegionEntry is one profiled stable region.
type RegionEntry struct {
	Start   int          `json:"start"`
	End     int          `json:"end"`
	Setting freq.Setting `json:"setting"`
	// ExpectedCPI and ExpectedMPKI are the mean counters over the region
	// at the profiled setting.
	ExpectedCPI  float64 `json:"expected_cpi"`
	ExpectedMPKI float64 `json:"expected_mpki"`
	// SampleCPI and SampleMPKI are the per-sample expected counters
	// (index 0 = Start), used for precise drift detection at runtime —
	// intra-region phase variation would otherwise read as drift.
	SampleCPI  []float64 `json:"sample_cpi"`
	SampleMPKI []float64 `json:"sample_mpki"`
}

// ExpectedAt returns the per-sample expectations for an absolute sample
// index inside the region, falling back to the region means when the
// per-sample traces are absent (hand-written or truncated profiles).
func (r RegionEntry) ExpectedAt(sample int) (cpi, mpki float64) {
	i := sample - r.Start
	if i >= 0 && i < len(r.SampleCPI) && i < len(r.SampleMPKI) {
		return r.SampleCPI[i], r.SampleMPKI[i]
	}
	return r.ExpectedCPI, r.ExpectedMPKI
}

// Profile is a complete offline profile.
type Profile struct {
	Benchmark   string        `json:"benchmark"`
	Budget      float64       `json:"budget"`
	Threshold   float64       `json:"threshold"`
	SampleInstr uint64        `json:"sample_instructions"`
	Regions     []RegionEntry `json:"regions"`
}

// Build profiles a characterized grid: it computes the stable regions for
// the budget/threshold and records each region's setting and expected
// counters.
func Build(g *trace.Grid, budget, threshold float64) (*Profile, error) {
	a, err := core.NewAnalysis(g)
	if err != nil {
		return nil, err
	}
	regions, err := a.StableRegions(budget, threshold)
	if err != nil {
		return nil, err
	}
	p := &Profile{
		Benchmark:   g.Benchmark,
		Budget:      budget,
		Threshold:   threshold,
		SampleInstr: g.SampleInstr,
	}
	for _, r := range regions {
		entry := RegionEntry{
			Start:   r.Start,
			End:     r.End,
			Setting: g.Setting(r.Choice),
		}
		for s := r.Start; s <= r.End; s++ {
			m := g.At(s, r.Choice)
			entry.ExpectedCPI += m.CPI
			entry.ExpectedMPKI += m.MPKI
			entry.SampleCPI = append(entry.SampleCPI, m.CPI)
			entry.SampleMPKI = append(entry.SampleMPKI, m.MPKI)
		}
		n := float64(r.Len())
		entry.ExpectedCPI /= n
		entry.ExpectedMPKI /= n
		p.Regions = append(p.Regions, entry)
	}
	return p, nil
}

// Validate checks structural consistency: contiguous, ordered, non-empty
// coverage starting at sample 0.
func (p *Profile) Validate() error {
	if p.Benchmark == "" {
		return fmt.Errorf("profile: missing benchmark name")
	}
	if p.Budget < 1 {
		return fmt.Errorf("profile: budget %v below 1", p.Budget)
	}
	if p.Threshold < 0 || p.Threshold >= 1 {
		return fmt.Errorf("profile: threshold %v outside [0,1)", p.Threshold)
	}
	if p.SampleInstr == 0 {
		return fmt.Errorf("profile: missing sample length")
	}
	if len(p.Regions) == 0 {
		return fmt.Errorf("profile: no regions")
	}
	next := 0
	for i, r := range p.Regions {
		if r.Start != next {
			return fmt.Errorf("profile: region %d starts at %d, want %d", i, r.Start, next)
		}
		if r.End < r.Start {
			return fmt.Errorf("profile: region %d inverted [%d,%d]", i, r.Start, r.End)
		}
		next = r.End + 1
	}
	return nil
}

// NumSamples returns the profiled run length.
func (p *Profile) NumSamples() int {
	if len(p.Regions) == 0 {
		return 0
	}
	return p.Regions[len(p.Regions)-1].End + 1
}

// SettingAt returns the profiled setting for a sample index. Samples past
// the profiled run reuse the last region (applications often loop).
func (p *Profile) SettingAt(sample int) (freq.Setting, error) {
	if len(p.Regions) == 0 {
		return freq.Setting{}, fmt.Errorf("profile: empty profile")
	}
	if sample < 0 {
		return freq.Setting{}, fmt.Errorf("profile: negative sample %d", sample)
	}
	for _, r := range p.Regions {
		if sample >= r.Start && sample <= r.End {
			return r.Setting, nil
		}
	}
	return p.Regions[len(p.Regions)-1].Setting, nil
}

// RegionAt returns the region covering the sample, clamping past the end.
func (p *Profile) RegionAt(sample int) RegionEntry {
	for _, r := range p.Regions {
		if sample >= r.Start && sample <= r.End {
			return r
		}
	}
	return p.Regions[len(p.Regions)-1]
}

// WriteJSON serializes the profile.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadJSON deserializes and validates a profile.
func ReadJSON(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: decoding: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
