package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// benchmarkJSON is the serialized form of a Benchmark. The wire names are
// stable API: user-defined workloads reference them.
type benchmarkJSON struct {
	Name   string      `json:"name"`
	Class  string      `json:"class"`
	Seed   uint64      `json:"seed"`
	Repeat int         `json:"repeat"`
	Phases []phaseJSON `json:"phases"`
}

type phaseJSON struct {
	Name       string  `json:"name"`
	Samples    int     `json:"samples"`
	BaseCPI    float64 `json:"base_cpi"`
	MPKI       float64 `json:"mpki"`
	RowHitRate float64 `json:"row_hit_rate"`
	MLP        float64 `json:"mlp"`
	WriteFrac  float64 `json:"write_frac"`
	CPIJitter  float64 `json:"cpi_jitter"`
	MPKIJitter float64 `json:"mpki_jitter"`
}

// WriteJSON serializes the benchmark definition, letting users store and
// share custom workloads (cmd/sweep -workload consumes them).
func (b Benchmark) WriteJSON(w io.Writer) error {
	if err := b.Validate(); err != nil {
		return err
	}
	out := benchmarkJSON{Name: b.Name, Class: b.Class, Seed: b.Seed, Repeat: b.Repeat}
	for _, p := range b.Phases {
		out.Phases = append(out.Phases, phaseJSON{
			Name: p.Name, Samples: p.Samples, BaseCPI: p.BaseCPI, MPKI: p.MPKI,
			RowHitRate: p.RowHitRate, MLP: p.MLP, WriteFrac: p.WriteFrac,
			CPIJitter: p.CPIJitter, MPKIJitter: p.MPKIJitter,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes and validates a benchmark definition.
func ReadJSON(r io.Reader) (Benchmark, error) {
	var in benchmarkJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return Benchmark{}, fmt.Errorf("workload: decoding benchmark: %w", err)
	}
	b := Benchmark{Name: in.Name, Class: in.Class, Seed: in.Seed, Repeat: in.Repeat}
	for _, p := range in.Phases {
		b.Phases = append(b.Phases, Phase{
			Name: p.Name, Samples: p.Samples, BaseCPI: p.BaseCPI, MPKI: p.MPKI,
			RowHitRate: p.RowHitRate, MLP: p.MLP, WriteFrac: p.WriteFrac,
			CPIJitter: p.CPIJitter, MPKIJitter: p.MPKIJitter,
		})
	}
	if err := b.Validate(); err != nil {
		return Benchmark{}, err
	}
	return b, nil
}
