package workload

import (
	"fmt"
	"sort"
)

// Suite returns the full benchmark registry keyed by name.
//
// The six headline benchmarks carry the phase structure the paper's figures
// depend on; the rest fill out the population to resemble the paper's 12
// integer + 9 floating-point SPEC CPU2006 selection.
func Suite() map[string]Benchmark {
	m := make(map[string]Benchmark)
	for _, b := range benchmarks {
		m[b.Name] = b
	}
	return m
}

// Names returns all benchmark names in sorted order.
func Names() []string {
	out := make([]string, 0, len(benchmarks))
	for _, b := range benchmarks {
		out = append(out, b.Name)
	}
	sort.Strings(out)
	return out
}

// HeadlineNames returns the six benchmarks used throughout the paper's
// figures, in the paper's display order.
func HeadlineNames() []string {
	return []string{"bzip2", "gcc", "gobmk", "lbm", "libquantum", "milc"}
}

// ByName returns the named benchmark or an error listing valid names.
func ByName(name string) (Benchmark, error) {
	for _, b := range benchmarks {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q (valid: %v)", name, Names())
}

// MustByName is ByName for static callers; it panics on unknown names.
func MustByName(name string) Benchmark {
	b, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

var benchmarks = []Benchmark{
	{
		// bzip2: CPU-bound compressor. Speedup depends almost entirely on
		// CPU frequency (Fig 2); at high inefficiency budgets a single
		// stable region covers the whole run (Fig 9b).
		Name: "bzip2", Class: "int", Seed: 0xb21b2, Repeat: 10,
		Phases: []Phase{
			{Name: "compress", Samples: 12, BaseCPI: 0.85, MPKI: 1.3, RowHitRate: 0.75, MLP: 1.8, WriteFrac: 0.35, CPIJitter: 0.03, MPKIJitter: 0.12},
			{Name: "decompress", Samples: 8, BaseCPI: 1.00, MPKI: 0.5, RowHitRate: 0.70, MLP: 1.6, WriteFrac: 0.40, CPIJitter: 0.03, MPKIJitter: 0.12},
		},
	},
	{
		// gcc: long irregular phases mixing compute-heavy optimization
		// passes with pointer-chasing IR walks; many transitions at low
		// thresholds that collapse when the threshold rises (Fig 7a/b).
		Name: "gcc", Class: "int", Seed: 0x9cc, Repeat: 5,
		Phases: []Phase{
			{Name: "parse", Samples: 8, BaseCPI: 1.05, MPKI: 6.0, RowHitRate: 0.55, MLP: 1.7, WriteFrac: 0.30, CPIJitter: 0.06, MPKIJitter: 0.15},
			{Name: "opt-cpu", Samples: 12, BaseCPI: 0.92, MPKI: 2.0, RowHitRate: 0.60, MLP: 1.8, WriteFrac: 0.25, CPIJitter: 0.05, MPKIJitter: 0.12},
			{Name: "ir-walk", Samples: 6, BaseCPI: 1.20, MPKI: 16.0, RowHitRate: 0.40, MLP: 1.4, WriteFrac: 0.30, CPIJitter: 0.07, MPKIJitter: 0.18},
			{Name: "regalloc", Samples: 9, BaseCPI: 1.00, MPKI: 4.0, RowHitRate: 0.55, MLP: 1.7, WriteFrac: 0.30, CPIJitter: 0.06, MPKIJitter: 0.15},
			{Name: "emit", Samples: 5, BaseCPI: 0.95, MPKI: 9.0, RowHitRate: 0.65, MLP: 2.0, WriteFrac: 0.45, CPIJitter: 0.06, MPKIJitter: 0.15},
		},
	},
	{
		// gobmk: Go-playing search with rapidly alternating balanced
		// phases, the paper's canonical hard case: optimal settings move
		// every sample at moderate budgets (Fig 3) and stable regions stay
		// short even at high thresholds (Fig 9a).
		Name: "gobmk", Class: "int", Seed: 0x90b3c, Repeat: 8,
		Phases: []Phase{
			{Name: "search-a", Samples: 2, BaseCPI: 0.90, MPKI: 1.5, RowHitRate: 0.60, MLP: 1.8, WriteFrac: 0.25, CPIJitter: 0.07, MPKIJitter: 0.25},
			{Name: "pattern", Samples: 1, BaseCPI: 1.30, MPKI: 24.0, RowHitRate: 0.35, MLP: 1.3, WriteFrac: 0.30, CPIJitter: 0.08, MPKIJitter: 0.25},
			{Name: "search-b", Samples: 1, BaseCPI: 0.95, MPKI: 6.0, RowHitRate: 0.55, MLP: 1.6, WriteFrac: 0.25, CPIJitter: 0.07, MPKIJitter: 0.25},
			{Name: "eval", Samples: 2, BaseCPI: 1.15, MPKI: 14.0, RowHitRate: 0.45, MLP: 1.4, WriteFrac: 0.30, CPIJitter: 0.08, MPKIJitter: 0.25},
			{Name: "search-c", Samples: 1, BaseCPI: 0.85, MPKI: 0.8, RowHitRate: 0.62, MLP: 1.9, WriteFrac: 0.25, CPIJitter: 0.07, MPKIJitter: 0.25},
		},
	},
	{
		// lbm: fluid-dynamics stencil streaming through memory. Steady,
		// strongly memory-bound, high row locality; few transitions even at
		// tight thresholds (Fig 6, Fig 7c/d).
		Name: "lbm", Class: "fp", Seed: 0x1b3, Repeat: 8,
		Phases: []Phase{
			{Name: "stream", Samples: 14, BaseCPI: 0.75, MPKI: 28.0, RowHitRate: 0.88, MLP: 3.5, WriteFrac: 0.45, CPIJitter: 0.02, MPKIJitter: 0.04},
			{Name: "collide", Samples: 6, BaseCPI: 1.00, MPKI: 16.0, RowHitRate: 0.82, MLP: 2.8, WriteFrac: 0.40, CPIJitter: 0.025, MPKIJitter: 0.05},
		},
	},
	{
		// libquantum: quantum simulation with a single long streaming loop;
		// extremely regular.
		Name: "libquantum", Class: "int", Seed: 0x11b9, Repeat: 1,
		Phases: []Phase{
			{Name: "toffoli", Samples: 110, BaseCPI: 0.85, MPKI: 18.0, RowHitRate: 0.92, MLP: 4.0, WriteFrac: 0.30, CPIJitter: 0.02, MPKIJitter: 0.05},
			{Name: "measure", Samples: 40, BaseCPI: 0.95, MPKI: 12.0, RowHitRate: 0.90, MLP: 3.4, WriteFrac: 0.25, CPIJitter: 0.025, MPKIJitter: 0.06},
			{Name: "toffoli2", Samples: 50, BaseCPI: 0.85, MPKI: 18.0, RowHitRate: 0.92, MLP: 4.0, WriteFrac: 0.30, CPIJitter: 0.02, MPKIJitter: 0.05},
		},
	},
	{
		// milc: lattice QCD — CPU-intensive on the whole but with periodic
		// memory-intensive bursts (Fig 5); performance tracks CPU frequency
		// more than memory frequency (Fig 2).
		Name: "milc", Class: "fp", Seed: 0x311c, Repeat: 5,
		Phases: []Phase{
			{Name: "su3-compute", Samples: 18, BaseCPI: 1.05, MPKI: 3.0, RowHitRate: 0.65, MLP: 2.0, WriteFrac: 0.25, CPIJitter: 0.04, MPKIJitter: 0.12},
			{Name: "gather", Samples: 6, BaseCPI: 1.15, MPKI: 22.0, RowHitRate: 0.60, MLP: 2.0, WriteFrac: 0.35, CPIJitter: 0.05, MPKIJitter: 0.12},
			{Name: "su3-compute2", Samples: 10, BaseCPI: 1.00, MPKI: 4.5, RowHitRate: 0.65, MLP: 2.0, WriteFrac: 0.25, CPIJitter: 0.04, MPKIJitter: 0.12},
		},
	},

	// ----- Supporting population (paper: 12 int + 9 fp total). -----
	{
		Name: "mcf", Class: "int", Seed: 0x3cf, Repeat: 6,
		Phases: []Phase{
			{Name: "simplex", Samples: 20, BaseCPI: 1.35, MPKI: 34.0, RowHitRate: 0.30, MLP: 1.3, WriteFrac: 0.20, CPIJitter: 0.03, MPKIJitter: 0.06},
			{Name: "refresh-tree", Samples: 8, BaseCPI: 1.10, MPKI: 18.0, RowHitRate: 0.40, MLP: 1.5, WriteFrac: 0.25, CPIJitter: 0.03, MPKIJitter: 0.06},
		},
	},
	{
		Name: "hmmer", Class: "int", Seed: 0x4a33e4, Repeat: 1,
		Phases: []Phase{
			{Name: "viterbi", Samples: 180, BaseCPI: 0.72, MPKI: 0.4, RowHitRate: 0.80, MLP: 2.0, WriteFrac: 0.30, CPIJitter: 0.01, MPKIJitter: 0.05},
		},
	},
	{
		Name: "sjeng", Class: "int", Seed: 0x53e7, Repeat: 9,
		Phases: []Phase{
			{Name: "search", Samples: 14, BaseCPI: 1.02, MPKI: 1.2, RowHitRate: 0.55, MLP: 1.6, WriteFrac: 0.25, CPIJitter: 0.03, MPKIJitter: 0.10},
			{Name: "hash-probe", Samples: 6, BaseCPI: 1.18, MPKI: 5.0, RowHitRate: 0.35, MLP: 1.4, WriteFrac: 0.30, CPIJitter: 0.04, MPKIJitter: 0.10},
		},
	},
	{
		Name: "omnetpp", Class: "int", Seed: 0x03e7, Repeat: 7,
		Phases: []Phase{
			{Name: "event-loop", Samples: 16, BaseCPI: 1.25, MPKI: 15.0, RowHitRate: 0.42, MLP: 1.5, WriteFrac: 0.35, CPIJitter: 0.03, MPKIJitter: 0.07},
			{Name: "stats", Samples: 6, BaseCPI: 1.05, MPKI: 7.0, RowHitRate: 0.55, MLP: 1.7, WriteFrac: 0.30, CPIJitter: 0.03, MPKIJitter: 0.07},
		},
	},
	{
		Name: "astar", Class: "int", Seed: 0xa57a6, Repeat: 8,
		Phases: []Phase{
			{Name: "pathfind", Samples: 12, BaseCPI: 1.10, MPKI: 8.0, RowHitRate: 0.50, MLP: 1.6, WriteFrac: 0.30, CPIJitter: 0.04, MPKIJitter: 0.09},
			{Name: "expand", Samples: 8, BaseCPI: 0.95, MPKI: 3.5, RowHitRate: 0.58, MLP: 1.8, WriteFrac: 0.25, CPIJitter: 0.03, MPKIJitter: 0.08},
		},
	},
	{
		Name: "h264ref", Class: "int", Seed: 0x264, Repeat: 10,
		Phases: []Phase{
			{Name: "me-search", Samples: 10, BaseCPI: 0.80, MPKI: 1.5, RowHitRate: 0.75, MLP: 2.2, WriteFrac: 0.30, CPIJitter: 0.02, MPKIJitter: 0.06},
			{Name: "deblock", Samples: 5, BaseCPI: 0.92, MPKI: 6.0, RowHitRate: 0.80, MLP: 2.5, WriteFrac: 0.45, CPIJitter: 0.02, MPKIJitter: 0.06},
		},
	},
	{
		Name: "namd", Class: "fp", Seed: 0x9a3d, Repeat: 1,
		Phases: []Phase{
			{Name: "force-compute", Samples: 170, BaseCPI: 0.78, MPKI: 0.9, RowHitRate: 0.78, MLP: 2.4, WriteFrac: 0.25, CPIJitter: 0.012, MPKIJitter: 0.04},
		},
	},
	{
		Name: "povray", Class: "fp", Seed: 0x90f7a1, Repeat: 1,
		Phases: []Phase{
			{Name: "trace", Samples: 160, BaseCPI: 0.95, MPKI: 0.2, RowHitRate: 0.70, MLP: 1.8, WriteFrac: 0.20, CPIJitter: 0.025, MPKIJitter: 0.10},
		},
	},
	{
		Name: "soplex", Class: "fp", Seed: 0x50f1e8, Repeat: 6,
		Phases: []Phase{
			{Name: "factorize", Samples: 12, BaseCPI: 1.05, MPKI: 16.0, RowHitRate: 0.60, MLP: 2.2, WriteFrac: 0.30, CPIJitter: 0.03, MPKIJitter: 0.06},
			{Name: "price", Samples: 10, BaseCPI: 0.90, MPKI: 6.0, RowHitRate: 0.68, MLP: 2.4, WriteFrac: 0.25, CPIJitter: 0.025, MPKIJitter: 0.06},
		},
	},
	{
		Name: "leslie3d", Class: "fp", Seed: 0x1e511e, Repeat: 5,
		Phases: []Phase{
			{Name: "fluxes", Samples: 18, BaseCPI: 0.85, MPKI: 20.0, RowHitRate: 0.86, MLP: 3.2, WriteFrac: 0.40, CPIJitter: 0.012, MPKIJitter: 0.03},
			{Name: "update", Samples: 10, BaseCPI: 0.92, MPKI: 12.0, RowHitRate: 0.82, MLP: 2.8, WriteFrac: 0.45, CPIJitter: 0.015, MPKIJitter: 0.04},
		},
	},
	{
		Name: "gemsfdtd", Class: "fp", Seed: 0x93a5, Repeat: 4,
		Phases: []Phase{
			{Name: "stencil", Samples: 25, BaseCPI: 0.88, MPKI: 24.0, RowHitRate: 0.84, MLP: 3.0, WriteFrac: 0.45, CPIJitter: 0.015, MPKIJitter: 0.03},
			{Name: "boundary", Samples: 10, BaseCPI: 1.00, MPKI: 9.0, RowHitRate: 0.70, MLP: 2.2, WriteFrac: 0.35, CPIJitter: 0.02, MPKIJitter: 0.05},
		},
	},
	{
		Name: "calculix", Class: "fp", Seed: 0xca1c, Repeat: 1,
		Phases: []Phase{
			{Name: "solve", Samples: 150, BaseCPI: 0.82, MPKI: 2.5, RowHitRate: 0.72, MLP: 2.3, WriteFrac: 0.30, CPIJitter: 0.02, MPKIJitter: 0.06},
		},
	},
}
