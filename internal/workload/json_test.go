package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestBenchmarkJSONRoundTrip(t *testing.T) {
	orig := MustByName("gobmk")
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("round trip changed benchmark:\norig %+v\nback %+v", orig, back)
	}
	// The realization must also be identical.
	a, b := orig.MustRealize(), back.MustRealize()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs after round trip", i)
		}
	}
}

func TestWriteJSONRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	bad := Benchmark{Name: "", Repeat: 1}
	if err := bad.WriteJSON(&buf); err == nil {
		t.Error("invalid benchmark serialized")
	}
}

func TestReadJSONRejectsBadDefinitions(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"","class":"int","repeat":1,"phases":[{"name":"p","samples":1,"base_cpi":1,"mlp":1}]}`,
		`{"name":"x","class":"int","repeat":0,"phases":[{"name":"p","samples":1,"base_cpi":1,"mlp":1}]}`,
		`{"name":"x","class":"int","repeat":1,"phases":[]}`,
		`{"name":"x","class":"int","repeat":1,"phases":[{"name":"p","samples":1,"base_cpi":0,"mlp":1}]}`,
		`{"name":"x","class":"int","repeat":1,"phases":[{"name":"p","samples":1,"base_cpi":1,"mlp":0.5}]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("bad definition %d accepted", i)
		}
	}
}

func TestReadJSONMinimalCustomWorkload(t *testing.T) {
	def := `{
	  "name": "my-app",
	  "class": "int",
	  "seed": 7,
	  "repeat": 2,
	  "phases": [
	    {"name": "busy", "samples": 5, "base_cpi": 0.9, "mpki": 2, "row_hit_rate": 0.6, "mlp": 1.8, "write_frac": 0.3},
	    {"name": "stream", "samples": 3, "base_cpi": 1.1, "mpki": 20, "row_hit_rate": 0.85, "mlp": 3, "write_frac": 0.4}
	  ]
	}`
	b, err := ReadJSON(strings.NewReader(def))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if b.NumSamples() != 16 {
		t.Errorf("samples = %d, want 16", b.NumSamples())
	}
	specs := b.MustRealize()
	if specs[0].PhaseName != "busy" || specs[5].PhaseName != "stream" {
		t.Errorf("phase layout wrong: %s/%s", specs[0].PhaseName, specs[5].PhaseName)
	}
}
