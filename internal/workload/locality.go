package workload

import (
	"fmt"

	"mcdvfs/internal/cache"
)

// LocalityPhase describes a phase from first principles: the core's CPI
// with all memory references hitting L1, plus a memory locality profile.
// The cache hierarchy turns it into the (BaseCPI, MPKI) descriptor the
// simulator consumes, closing the loop between cache configuration and the
// energy-performance trade-off space.
type LocalityPhase struct {
	Name    string
	Samples int
	// CoreCPI is cycles per instruction when every access hits L1.
	CoreCPI  float64
	Locality cache.Locality
	// DRAM behaviour of the misses, as in Phase.
	RowHitRate float64
	MLP        float64
	WriteFrac  float64
	CPIJitter  float64
	MPKIJitter float64
}

// DerivePhase evaluates the locality profile through a cache hierarchy and
// returns the equivalent Phase.
func DerivePhase(p LocalityPhase, h cache.Hierarchy) (Phase, error) {
	if p.CoreCPI <= 0 {
		return Phase{}, fmt.Errorf("workload: phase %q non-positive core CPI", p.Name)
	}
	b, err := h.Evaluate(p.Locality)
	if err != nil {
		return Phase{}, fmt.Errorf("workload: phase %q: %w", p.Name, err)
	}
	return Phase{
		Name:       p.Name,
		Samples:    p.Samples,
		BaseCPI:    p.CoreCPI + b.CPIContribution,
		MPKI:       b.DRAMMPKI,
		RowHitRate: p.RowHitRate,
		MLP:        p.MLP,
		WriteFrac:  p.WriteFrac,
		CPIJitter:  p.CPIJitter,
		MPKIJitter: p.MPKIJitter,
	}, nil
}

// DeriveBenchmark builds a Benchmark whose phases are derived from
// locality profiles under the given cache hierarchy.
func DeriveBenchmark(name, class string, seed uint64, repeat int, phases []LocalityPhase, h cache.Hierarchy) (Benchmark, error) {
	derived := make([]Phase, 0, len(phases))
	for _, p := range phases {
		ph, err := DerivePhase(p, h)
		if err != nil {
			return Benchmark{}, err
		}
		derived = append(derived, ph)
	}
	b := Benchmark{Name: name, Class: class, Seed: seed, Repeat: repeat, Phases: derived}
	if err := b.Validate(); err != nil {
		return Benchmark{}, err
	}
	return b, nil
}
