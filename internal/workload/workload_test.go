package workload

import (
	"math"
	"testing"
)

func TestSuiteAllValid(t *testing.T) {
	for name, b := range Suite() {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if b.Name != name {
			t.Errorf("registry key %q != benchmark name %q", name, b.Name)
		}
	}
}

func TestHeadlinePresent(t *testing.T) {
	suite := Suite()
	for _, name := range HeadlineNames() {
		if _, ok := suite[name]; !ok {
			t.Errorf("headline benchmark %q missing from suite", name)
		}
	}
}

func TestSuitePopulationSize(t *testing.T) {
	// The paper simulates 12 integer and 9 floating-point benchmarks; our
	// suite must be a comparable population with both classes represented.
	nInt, nFP := 0, 0
	for _, b := range Suite() {
		switch b.Class {
		case "int":
			nInt++
		case "fp":
			nFP++
		default:
			t.Errorf("%s: unknown class %q", b.Name, b.Class)
		}
	}
	if nInt < 8 || nFP < 6 {
		t.Errorf("suite population %d int + %d fp too small", nInt, nFP)
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("gobmk")
	if err != nil {
		t.Fatalf("ByName(gobmk): %v", err)
	}
	if b.Name != "gobmk" {
		t.Errorf("got %q", b.Name)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName(unknown) did not panic")
		}
	}()
	MustByName("nonesuch")
}

func TestRealizeDeterministic(t *testing.T) {
	b := MustByName("gobmk")
	a1 := b.MustRealize()
	a2 := b.MustRealize()
	if len(a1) != len(a2) {
		t.Fatalf("lengths differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("sample %d differs between realizations", i)
		}
	}
}

func TestRealizeLengthMatchesNumSamples(t *testing.T) {
	for name, b := range Suite() {
		specs := b.MustRealize()
		if len(specs) != b.NumSamples() {
			t.Errorf("%s: realized %d samples, NumSamples %d", name, len(specs), b.NumSamples())
		}
		if b.Instructions() != uint64(len(specs))*SampleLen {
			t.Errorf("%s: Instructions inconsistent", name)
		}
	}
}

func TestRealizeIndicesAndInstructionCounts(t *testing.T) {
	specs := MustByName("gcc").MustRealize()
	for i, s := range specs {
		if s.Index != i {
			t.Fatalf("sample %d has index %d", i, s.Index)
		}
		if s.Instructions != SampleLen {
			t.Fatalf("sample %d has %d instructions", i, s.Instructions)
		}
		if s.PhaseName == "" {
			t.Fatalf("sample %d missing phase name", i)
		}
	}
}

func TestJitterCenteredOnPhaseMeans(t *testing.T) {
	// Across a long phase the geometric mean of realized CPI must sit close
	// to the phase's BaseCPI (log-normal jitter has median 1).
	b := MustByName("hmmer") // single 180-sample phase
	specs := b.MustRealize()
	logSum := 0.0
	for _, s := range specs {
		logSum += math.Log(s.BaseCPI)
	}
	geoMean := math.Exp(logSum / float64(len(specs)))
	want := b.Phases[0].BaseCPI
	if math.Abs(geoMean-want)/want > 0.02 {
		t.Errorf("geometric mean CPI = %v, want ~%v", geoMean, want)
	}
}

func TestRealizedValuesPhysical(t *testing.T) {
	for name, b := range Suite() {
		for _, s := range b.MustRealize() {
			if s.BaseCPI <= 0 || s.MPKI < 0 || s.MLP < 1 ||
				s.RowHitRate < 0 || s.RowHitRate > 1 ||
				s.WriteFrac < 0 || s.WriteFrac > 1 {
				t.Fatalf("%s sample %d non-physical: %+v", name, s.Index, s)
			}
		}
	}
}

func TestGobmkAlternatesRapidly(t *testing.T) {
	// The paper's gobmk changes phase every 1-2 samples; require that the
	// realized MPKI trajectory oscillates with high frequency.
	specs := MustByName("gobmk").MustRealize()
	changes := 0
	for i := 1; i < len(specs); i++ {
		if specs[i].PhaseName != specs[i-1].PhaseName {
			changes++
		}
	}
	if float64(changes) < 0.4*float64(len(specs)) {
		t.Errorf("gobmk phase changes = %d over %d samples; want rapid alternation", changes, len(specs))
	}
}

func TestBzip2IsCPUBound(t *testing.T) {
	for _, s := range MustByName("bzip2").MustRealize() {
		if s.MPKI > 2 {
			t.Fatalf("bzip2 sample %d MPKI %v; benchmark must stay CPU-bound", s.Index, s.MPKI)
		}
	}
}

func TestLbmIsMemoryBound(t *testing.T) {
	for _, s := range MustByName("lbm").MustRealize() {
		if s.MPKI < 10 {
			t.Fatalf("lbm sample %d MPKI %v; benchmark must stay memory-bound", s.Index, s.MPKI)
		}
	}
}

func TestBenchmarkLengthsInPaperRange(t *testing.T) {
	// Paper: benchmarks run to completion or 2 B instructions (200 samples).
	for name, b := range Suite() {
		n := b.NumSamples()
		if n < 40 || n > 220 {
			t.Errorf("%s: %d samples outside the paper-like range [40, 220]", name, n)
		}
	}
}

func TestValidateCatchesBadPhases(t *testing.T) {
	bad := []Phase{
		{Name: "p", Samples: 0, BaseCPI: 1, MLP: 1},
		{Name: "p", Samples: 1, BaseCPI: 0, MLP: 1},
		{Name: "p", Samples: 1, BaseCPI: 1, MPKI: -1, MLP: 1},
		{Name: "p", Samples: 1, BaseCPI: 1, MLP: 0.5},
		{Name: "p", Samples: 1, BaseCPI: 1, MLP: 1, RowHitRate: 1.5},
		{Name: "p", Samples: 1, BaseCPI: 1, MLP: 1, WriteFrac: -0.1},
		{Name: "p", Samples: 1, BaseCPI: 1, MLP: 1, CPIJitter: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad phase %d accepted: %+v", i, p)
		}
	}
}

func TestValidateCatchesBadBenchmarks(t *testing.T) {
	ok := Phase{Name: "p", Samples: 1, BaseCPI: 1, MLP: 1}
	bad := []Benchmark{
		{Name: "", Repeat: 1, Phases: []Phase{ok}},
		{Name: "x", Repeat: 0, Phases: []Phase{ok}},
		{Name: "x", Repeat: 1, Phases: nil},
		{Name: "x", Repeat: 1, Phases: []Phase{{Name: "bad", Samples: 0, BaseCPI: 1, MLP: 1}}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad benchmark %d accepted", i)
		}
		if _, err := b.Realize(); err == nil {
			t.Errorf("bad benchmark %d realized", i)
		}
	}
}
