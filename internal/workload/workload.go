// Package workload provides the synthetic benchmark suite that stands in
// for the SPEC CPU2006 subset used by the paper.
//
// Every result in the paper is a function of each benchmark's per-sample
// trajectory of CPU intensity (base CPI) and memory intensity (MPKI — DRAM
// accesses per thousand instructions), sampled every 10 million user-mode
// instructions. This package models benchmarks as sequences of phases with
// those characteristics plus row-buffer locality, memory-level parallelism,
// and write mix, then realizes them into deterministic per-sample
// specifications with seeded jitter.
//
// The suite reproduces the qualitative phase structure the paper describes
// for its six headline benchmarks (bzip2, gcc, gobmk, lbm, libquantum,
// milc) and adds further integer and floating-point workloads so the suite
// size resembles the paper's 21-benchmark population.
package workload

import (
	"fmt"

	"mcdvfs/internal/rng"
)

// SampleLen is the number of instructions per measurement sample,
// matching the paper's 10-million-user-instruction sampling interval.
const SampleLen uint64 = 10_000_000

// Phase describes a contiguous region of execution with homogeneous
// average behaviour.
type Phase struct {
	// Name labels the phase for diagnostics.
	Name string
	// Samples is the phase length in measurement samples.
	Samples int
	// BaseCPI is the cycles-per-instruction the core achieves when every
	// memory access hits on-chip caches (the compute-bound floor).
	BaseCPI float64
	// MPKI is DRAM accesses (L2 misses) per thousand instructions.
	MPKI float64
	// RowHitRate is the fraction of DRAM accesses hitting an open row.
	RowHitRate float64
	// MLP is the memory-level parallelism: the average number of
	// outstanding misses a stalled core overlaps, i.e. the divisor applied
	// to exposed miss latency. Must be >= 1.
	MLP float64
	// WriteFrac is the fraction of DRAM accesses that are writes.
	WriteFrac float64
	// CPIJitter and MPKIJitter are the log-scale sigmas of per-sample
	// multiplicative jitter, modeling intra-phase variation.
	CPIJitter  float64
	MPKIJitter float64
}

// Validate reports the first non-physical field.
func (p Phase) Validate() error {
	switch {
	case p.Samples <= 0:
		return fmt.Errorf("workload: phase %q has %d samples", p.Name, p.Samples)
	case p.BaseCPI <= 0:
		return fmt.Errorf("workload: phase %q has non-positive BaseCPI", p.Name)
	case p.MPKI < 0:
		return fmt.Errorf("workload: phase %q has negative MPKI", p.Name)
	case p.RowHitRate < 0 || p.RowHitRate > 1:
		return fmt.Errorf("workload: phase %q RowHitRate outside [0,1]", p.Name)
	case p.MLP < 1:
		return fmt.Errorf("workload: phase %q MLP below 1", p.Name)
	case p.WriteFrac < 0 || p.WriteFrac > 1:
		return fmt.Errorf("workload: phase %q WriteFrac outside [0,1]", p.Name)
	case p.CPIJitter < 0 || p.MPKIJitter < 0:
		return fmt.Errorf("workload: phase %q negative jitter", p.Name)
	}
	return nil
}

// Benchmark is a named workload: a phase sequence optionally repeated.
type Benchmark struct {
	Name string
	// Class is "int" or "fp", mirroring the paper's SPEC split.
	Class string
	// Seed drives the deterministic per-sample jitter realization.
	Seed uint64
	// Phases is one iteration of the benchmark's phase structure.
	Phases []Phase
	// Repeat replays the phase sequence this many times (>= 1).
	Repeat int
}

// Validate reports the first invalid field.
func (b Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("workload: benchmark with empty name")
	}
	if b.Repeat < 1 {
		return fmt.Errorf("workload: benchmark %q Repeat %d < 1", b.Name, b.Repeat)
	}
	if len(b.Phases) == 0 {
		return fmt.Errorf("workload: benchmark %q has no phases", b.Name)
	}
	for _, p := range b.Phases {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("benchmark %q: %w", b.Name, err)
		}
	}
	return nil
}

// NumSamples returns the benchmark's total length in samples.
func (b Benchmark) NumSamples() int {
	per := 0
	for _, p := range b.Phases {
		per += p.Samples
	}
	return per * b.Repeat
}

// Instructions returns the total instruction count.
func (b Benchmark) Instructions() uint64 {
	return uint64(b.NumSamples()) * SampleLen
}

// SampleSpec is the realized behaviour of one measurement sample: the
// ground truth the simulator turns into time and energy at each setting.
type SampleSpec struct {
	Index        int
	PhaseName    string
	Instructions uint64
	BaseCPI      float64
	MPKI         float64
	RowHitRate   float64
	MLP          float64
	WriteFrac    float64
}

// Realize expands the benchmark into its per-sample specifications.
// Realization is deterministic: the jitter stream for sample i depends only
// on (Seed, i), never on evaluation order.
func (b Benchmark) Realize() ([]SampleSpec, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(b.Seed)
	specs := make([]SampleSpec, 0, b.NumSamples())
	idx := 0
	for r := 0; r < b.Repeat; r++ {
		for _, p := range b.Phases {
			for s := 0; s < p.Samples; s++ {
				src := root.Derive(uint64(idx))
				specs = append(specs, SampleSpec{
					Index:        idx,
					PhaseName:    p.Name,
					Instructions: SampleLen,
					BaseCPI:      p.BaseCPI * src.LogNormFactor(p.CPIJitter),
					MPKI:         p.MPKI * src.LogNormFactor(p.MPKIJitter),
					RowHitRate:   p.RowHitRate,
					MLP:          p.MLP,
					WriteFrac:    p.WriteFrac,
				})
				idx++
			}
		}
	}
	return specs, nil
}

// MustRealize is Realize for registry benchmarks; it panics on error.
func (b Benchmark) MustRealize() []SampleSpec {
	specs, err := b.Realize()
	if err != nil {
		panic(err)
	}
	return specs
}
