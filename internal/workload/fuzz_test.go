package workload

import (
	"bytes"
	"testing"
)

// FuzzReadJSON hardens workload-definition parsing: arbitrary input must
// produce a valid benchmark or an error, and every accepted benchmark must
// realize without panicking.
func FuzzReadJSON(f *testing.F) {
	valid := `{"name":"x","class":"int","seed":1,"repeat":1,"phases":[{"name":"p","samples":2,"base_cpi":1,"mpki":5,"row_hit_rate":0.5,"mlp":1.5,"write_frac":0.3}]}`
	f.Add([]byte(valid))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"name":"x","repeat":-1}`))
	f.Add([]byte(`{"name":"x","repeat":1,"phases":[{"samples":1,"base_cpi":-1,"mlp":1}]}`))
	f.Add([]byte(`{"name":"x","repeat":1000000,"phases":[{"name":"p","samples":1000000,"base_cpi":1,"mlp":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if vErr := b.Validate(); vErr != nil {
			t.Fatalf("ReadJSON returned invalid benchmark: %v", vErr)
		}
		// Guard against pathological sizes before realizing.
		if b.NumSamples() > 100_000 {
			return
		}
		specs, rErr := b.Realize()
		if rErr != nil {
			t.Fatalf("valid benchmark failed to realize: %v", rErr)
		}
		if len(specs) != b.NumSamples() {
			t.Fatalf("realized %d, want %d", len(specs), b.NumSamples())
		}
	})
}

// FuzzPhaseValidate checks Validate never panics on arbitrary field
// combinations assembled from fuzz scalars.
func FuzzPhaseValidate(f *testing.F) {
	f.Add(1, 1.0, 1.0, 0.5, 1.5, 0.3, 0.01, 0.01)
	f.Add(0, -1.0, -5.0, 2.0, 0.0, -1.0, -0.5, 100.0)
	f.Fuzz(func(t *testing.T, samples int, cpi, mpki, rowHit, mlp, wf, cj, mj float64) {
		p := Phase{
			Name: "fuzz", Samples: samples, BaseCPI: cpi, MPKI: mpki,
			RowHitRate: rowHit, MLP: mlp, WriteFrac: wf, CPIJitter: cj, MPKIJitter: mj,
		}
		err := p.Validate()
		// If it validates, a 1-repeat benchmark around it must realize.
		if err == nil && samples <= 10_000 {
			b := Benchmark{Name: "f", Class: "int", Repeat: 1, Phases: []Phase{p}}
			if _, rErr := b.Realize(); rErr != nil {
				t.Fatalf("validated phase failed to realize: %v", rErr)
			}
		}
	})
}
