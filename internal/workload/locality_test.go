package workload

import (
	"testing"

	"mcdvfs/internal/cache"
)

func soplexLikePhases() []LocalityPhase {
	return []LocalityPhase{
		{
			Name: "factorize", Samples: 12, CoreCPI: 0.95,
			Locality:   cache.Locality{APKI: 340, StreamFrac: 0.04, WorkingSetBytes: 900 << 10},
			RowHitRate: 0.60, MLP: 2.2, WriteFrac: 0.30, CPIJitter: 0.03, MPKIJitter: 0.06,
		},
		{
			Name: "price", Samples: 10, CoreCPI: 0.85,
			Locality:   cache.Locality{APKI: 300, StreamFrac: 0.01, WorkingSetBytes: 500 << 10},
			RowHitRate: 0.68, MLP: 2.4, WriteFrac: 0.25, CPIJitter: 0.025, MPKIJitter: 0.06,
		},
	}
}

func TestDerivePhase(t *testing.T) {
	h := cache.Default()
	p, err := DerivePhase(soplexLikePhases()[0], h)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("derived phase invalid: %v", err)
	}
	if p.MPKI <= 0 {
		t.Error("derived MPKI should be positive for a 900KB working set")
	}
	if p.BaseCPI <= 0.95 {
		t.Error("L2 hit latency should add to the core CPI")
	}
}

func TestDerivePhaseValidation(t *testing.T) {
	h := cache.Default()
	bad := soplexLikePhases()[0]
	bad.CoreCPI = 0
	if _, err := DerivePhase(bad, h); err == nil {
		t.Error("zero core CPI accepted")
	}
	bad = soplexLikePhases()[0]
	bad.Locality.WorkingSetBytes = 0
	if _, err := DerivePhase(bad, h); err == nil {
		t.Error("invalid locality accepted")
	}
}

func TestDeriveBenchmark(t *testing.T) {
	b, err := DeriveBenchmark("soplex-like", "fp", 42, 6, soplexLikePhases(), cache.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("derived benchmark invalid: %v", err)
	}
	specs := b.MustRealize()
	if len(specs) != 6*22 {
		t.Errorf("realized %d samples, want 132", len(specs))
	}
}

func TestSmallerL2RaisesDerivedMPKI(t *testing.T) {
	// The cache-size -> traffic coupling the cachesens experiment studies.
	big, err := DeriveBenchmark("x", "fp", 1, 1, soplexLikePhases(), cache.Default())
	if err != nil {
		t.Fatal(err)
	}
	small, err := DeriveBenchmark("x", "fp", 1, 1, soplexLikePhases(), cache.Default().WithL2Size(512<<10))
	if err != nil {
		t.Fatal(err)
	}
	for i := range big.Phases {
		if small.Phases[i].MPKI <= big.Phases[i].MPKI {
			t.Errorf("phase %d: halved L2 MPKI %v not above default %v",
				i, small.Phases[i].MPKI, big.Phases[i].MPKI)
		}
	}
}

func TestDeriveBenchmarkRejectsBadPhases(t *testing.T) {
	bad := soplexLikePhases()
	bad[0].Samples = 0
	if _, err := DeriveBenchmark("x", "fp", 1, 1, bad, cache.Default()); err == nil {
		t.Error("zero-sample phase accepted")
	}
}
