package governor

import (
	"fmt"
	"math"
	"testing"

	"mcdvfs/internal/dvfsm"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/workload"
)

func testSystem(t *testing.T) *sim.System {
	t.Helper()
	sys, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func testSpecs(t *testing.T, name string, n int) []workload.SampleSpec {
	t.Helper()
	specs := workload.MustByName(name).MustRealize()
	if n > 0 && n < len(specs) {
		specs = specs[:n]
	}
	return specs
}

func budgetGov(t *testing.T, budget, threshold float64, search SearchStart, stability bool) *Budget {
	t.Helper()
	model, err := NewSimModel()
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewBudget(BudgetConfig{
		Budget:         budget,
		Threshold:      threshold,
		Space:          freq.CoarseSpace(),
		Model:          model,
		Search:         search,
		UseStability:   stability,
		DriftTolerance: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStaticGovernors(t *testing.T) {
	sp := freq.CoarseSpace()
	sys := testSystem(t)
	specs := testSpecs(t, "gobmk", 10)

	perf, err := Run(sys, specs, NewPerformance(sp), DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	save, err := Run(sys, specs, NewPowersave(sp), DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	if perf.TimeNS >= save.TimeNS {
		t.Errorf("performance governor (%v) not faster than powersave (%v)", perf.TimeNS, save.TimeNS)
	}
	if perf.Transitions != 0 || save.Transitions != 0 {
		t.Errorf("static governors transitioned: %d, %d", perf.Transitions, save.Transitions)
	}
	for _, st := range perf.Schedule {
		if st != sp.Max() {
			t.Fatalf("performance governor ran at %v", st)
		}
	}
	user, err := Run(sys, specs, NewUserspace(freq.Setting{CPU: 500, Mem: 400}), DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	if user.Schedule[0] != (freq.Setting{CPU: 500, Mem: 400}) {
		t.Errorf("userspace governor ran at %v", user.Schedule[0])
	}
}

func TestBudgetGovernorStaysWithinBudget(t *testing.T) {
	// Verify the paper's Figure 10 check: the governor keeps whole-run
	// inefficiency within the budget. Whole-run Emin is approximated by
	// the minimum pinned-setting energy, which upper-bounds true Emin, so
	// the check is conservative with a small tolerance for noise and
	// tuning energy.
	sys := testSystem(t)
	specs := testSpecs(t, "gobmk", 0)
	sp := freq.CoarseSpace()

	eminRun := math.Inf(1)
	for _, st := range sp.Settings() {
		total := 0.0
		for _, spec := range specs {
			m, err := sys.SimulateSample(spec, st)
			if err != nil {
				t.Fatal(err)
			}
			total += m.EnergyJ()
		}
		if total < eminRun {
			eminRun = total
		}
	}

	for _, budget := range []float64{1.1, 1.3, 1.6} {
		gov := budgetGov(t, budget, 0.03, FromMax, false)
		res, err := Run(sys, specs, gov, DefaultOverhead())
		if err != nil {
			t.Fatal(err)
		}
		ineff := res.EnergyJ / eminRun
		if ineff > budget*1.05 {
			t.Errorf("budget %v: achieved whole-run inefficiency %.3f", budget, ineff)
		}
	}
}

func TestBudgetGovernorPerformanceImprovesWithBudget(t *testing.T) {
	sys := testSystem(t)
	specs := testSpecs(t, "gobmk", 0)
	prev := 0.0
	for i, budget := range []float64{1.0, 1.3, 1.6} {
		gov := budgetGov(t, budget, 0.03, FromMax, false)
		res, err := Run(sys, specs, gov, DefaultOverhead())
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.TimeNS > prev*1.02 {
			t.Errorf("budget %v slower (%v) than smaller budget (%v)", budget, res.TimeNS, prev)
		}
		prev = res.TimeNS
	}
}

func TestHigherThresholdFewerTransitions(t *testing.T) {
	sys := testSystem(t)
	specs := testSpecs(t, "gobmk", 0)
	g1 := budgetGov(t, 1.3, 0.01, FromMax, false)
	r1, err := Run(sys, specs, g1, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	g5 := budgetGov(t, 1.3, 0.05, FromMax, false)
	r5, err := Run(sys, specs, g5, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	if r5.Transitions > r1.Transitions {
		t.Errorf("5%% threshold made more transitions (%d) than 1%% (%d)", r5.Transitions, r1.Transitions)
	}
}

func TestLocalSearchEvaluatesFewerSettings(t *testing.T) {
	sys := testSystem(t)
	specs := testSpecs(t, "milc", 60)
	full := budgetGov(t, 1.3, 0.03, FromMax, false)
	rFull, err := Run(sys, specs, full, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	local := budgetGov(t, 1.3, 0.03, FromPrevious, false)
	rLocal, err := Run(sys, specs, local, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	if rLocal.AvgSearchedPerTune() >= rFull.AvgSearchedPerTune() {
		t.Errorf("local search evaluated %.1f settings/tune, full %.1f",
			rLocal.AvgSearchedPerTune(), rFull.AvgSearchedPerTune())
	}
	// The local search must not sacrifice much performance.
	if rLocal.TimeNS > rFull.TimeNS*1.10 {
		t.Errorf("local search %.3gns much slower than full %.3gns", rLocal.TimeNS, rFull.TimeNS)
	}
}

func TestStabilitySkipReducesSearches(t *testing.T) {
	sys := testSystem(t)
	specs := testSpecs(t, "libquantum", 120) // long stable phases
	noSkip := budgetGov(t, 1.3, 0.05, FromMax, false)
	rNo, err := Run(sys, specs, noSkip, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	skip := budgetGov(t, 1.3, 0.05, FromMax, true)
	rSkip, err := Run(sys, specs, skip, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	if rSkip.Tunes >= rNo.Tunes {
		t.Errorf("stability prediction did not reduce tunes: %d vs %d", rSkip.Tunes, rNo.Tunes)
	}
	if rSkip.SettingsSearched >= rNo.SettingsSearched {
		t.Errorf("stability prediction did not reduce search work: %d vs %d",
			rSkip.SettingsSearched, rNo.SettingsSearched)
	}
}

func TestBudgetConfigValidation(t *testing.T) {
	model, _ := NewSimModel()
	base := BudgetConfig{Budget: 1.3, Threshold: 0.03, Space: freq.CoarseSpace(), Model: model}
	bad := []func(BudgetConfig) BudgetConfig{
		func(c BudgetConfig) BudgetConfig { c.Budget = 0.9; return c },
		func(c BudgetConfig) BudgetConfig { c.Budget = math.NaN(); return c },
		func(c BudgetConfig) BudgetConfig { c.Threshold = 1; return c },
		func(c BudgetConfig) BudgetConfig { c.Threshold = -0.1; return c },
		func(c BudgetConfig) BudgetConfig { c.Space = nil; return c },
		func(c BudgetConfig) BudgetConfig { c.Model = nil; return c },
		func(c BudgetConfig) BudgetConfig { c.DriftTolerance = -1; return c },
	}
	for i, mut := range bad {
		if _, err := NewBudget(mut(base)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewBudget(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRunChargesOverheads(t *testing.T) {
	sys := testSystem(t)
	specs := testSpecs(t, "gobmk", 12)
	gov := budgetGov(t, 1.3, 0.01, FromMax, false)
	oh := DefaultOverhead()
	res, err := Run(sys, specs, gov, oh)
	if err != nil {
		t.Fatal(err)
	}
	wantNS := float64(res.SettingsSearched)*oh.PerSettingNS + float64(res.Transitions)*oh.TransitionNS
	if math.Abs(res.OverheadNS-wantNS) > 1e-6 {
		t.Errorf("overhead ns = %v, want %v", res.OverheadNS, wantNS)
	}
	if res.Tunes == 0 || res.SettingsSearched == 0 {
		t.Error("budget governor never searched")
	}
	// Default overhead reproduces the paper's full-tune totals.
	if got := 70*oh.PerSettingNS + oh.TransitionNS; got != 500_000 {
		t.Errorf("70-setting tune = %v ns, want 500µs", got)
	}
	if got := 70*oh.PerSettingJ + oh.TransitionJ; math.Abs(got-30e-6) > 1e-12 {
		t.Errorf("70-setting tune = %v J, want 30µJ", got)
	}
}

// errCoster always fails, exercising RunWith's error path.
type errCoster struct{}

func (errCoster) Cost(_, _ freq.Setting) (float64, float64, error) {
	return 0, 0, errForced
}

var errForced = fmt.Errorf("forced transition error")

func TestRunWithTransitionCoster(t *testing.T) {
	sys := testSystem(t)
	specs := testSpecs(t, "gobmk", 16)
	gov := budgetGov(t, 1.3, 0.01, FromMax, false)
	seq := dvfsm.MustNew(dvfsm.DefaultParams())
	res, err := RunWith(sys, specs, gov, DefaultOverhead(), seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transitions == 0 {
		t.Fatal("fixture made no transitions")
	}
	// Overhead must include the physical transition costs, not the fixed
	// Overhead numbers: with per-transition costs varying by voltage
	// delta, the total will differ from transitions x fixed cost unless
	// by coincidence; just require positive and sane.
	searchNS := float64(res.SettingsSearched) * DefaultOverhead().PerSettingNS
	transNS := res.OverheadNS - searchNS
	if transNS <= 0 {
		t.Errorf("physical transition overhead %v, want positive", transNS)
	}
	perTrans := transNS / float64(res.Transitions)
	if perTrans < 1_000 || perTrans > 500_000 {
		t.Errorf("per-transition cost %v ns implausible", perTrans)
	}
}

func TestRunWithCosterErrorPropagates(t *testing.T) {
	sys := testSystem(t)
	specs := testSpecs(t, "gobmk", 16)
	gov := budgetGov(t, 1.3, 0.01, FromMax, false)
	if _, err := RunWith(sys, specs, gov, DefaultOverhead(), errCoster{}); err == nil {
		t.Error("coster error swallowed")
	}
}

func TestRunEmptyWorkload(t *testing.T) {
	sys := testSystem(t)
	if _, err := Run(sys, nil, NewPerformance(freq.CoarseSpace()), DefaultOverhead()); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestRunScheduleLength(t *testing.T) {
	sys := testSystem(t)
	specs := testSpecs(t, "bzip2", 20)
	res, err := Run(sys, specs, budgetGov(t, 1.3, 0.03, FromMax, false), DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule) != 20 || len(res.PerSample) != 20 {
		t.Errorf("schedule/persample lengths %d/%d, want 20", len(res.Schedule), len(res.PerSample))
	}
}
