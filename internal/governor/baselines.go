package governor

import (
	"fmt"
	"math"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/workload"
)

// RateLimiter is the absolute-energy rate-limiting baseline the paper
// argues against (Section II, citing Cinder and ECOSystem): the system is
// granted a fixed energy allowance per interval; when the last interval
// overspent, the governor throttles to the minimum setting, and when it
// underspent, it races at the maximum. The policy needs an absolute budget
// chosen per device and per workload — exactly the calibration problem the
// inefficiency metric removes — and wastes energy because the allowance is
// attached to time, not to completed work.
type RateLimiter struct {
	space *freq.Space
	// AllowanceJ is the energy allowed per interval.
	allowanceJ float64
	current    freq.Setting
	have       bool
}

// NewRateLimiter builds the baseline with a per-interval energy allowance.
func NewRateLimiter(space *freq.Space, allowanceJ float64) (*RateLimiter, error) {
	if space == nil {
		return nil, fmt.Errorf("governor: nil space")
	}
	if allowanceJ <= 0 || math.IsNaN(allowanceJ) || math.IsInf(allowanceJ, 0) {
		return nil, fmt.Errorf("governor: non-positive energy allowance %v", allowanceJ)
	}
	return &RateLimiter{space: space, allowanceJ: allowanceJ}, nil
}

// Name implements Governor.
func (r *RateLimiter) Name() string {
	return fmt.Sprintf("ratelimit(%.1fmJ)", r.allowanceJ*1e3)
}

// Decide implements Governor: bang-bang control on the energy allowance.
func (r *RateLimiter) Decide(prev *Observation, _ *workload.SampleSpec) (Decision, error) {
	if prev == nil {
		// Start conservatively at the minimum.
		r.current = r.space.Min()
		r.have = true
		return Decision{Setting: r.current}, nil
	}
	if prev.EnergyJ > r.allowanceJ {
		r.current = r.space.Min()
	} else {
		r.current = r.space.Max()
	}
	return Decision{Setting: r.current}, nil
}

// EDP is the energy-delay-product baseline: each interval it picks the
// setting minimizing predicted E·Dⁿ for the previous interval's profile.
// The paper argues EDP "is not a suitable constraint to specify how much
// energy can be used to improve performance": it has no tunable budget —
// one point on the trade-off curve per workload, wherever it lands.
type EDP struct {
	space    *freq.Space
	model    Model
	exponent float64
}

// NewEDP builds the baseline. exponent is the delay power n in E·Dⁿ
// (1 = EDP, 2 = ED²P).
func NewEDP(space *freq.Space, model Model, exponent float64) (*EDP, error) {
	if space == nil || model == nil {
		return nil, fmt.Errorf("governor: missing space or model")
	}
	if exponent < 0 || exponent > 4 {
		return nil, fmt.Errorf("governor: delay exponent %v outside [0,4]", exponent)
	}
	return &EDP{space: space, model: model, exponent: exponent}, nil
}

// Name implements Governor.
func (e *EDP) Name() string { return fmt.Sprintf("edp(n=%.0f)", e.exponent) }

// Decide implements Governor.
func (e *EDP) Decide(prev *Observation, prevProfile *workload.SampleSpec) (Decision, error) { //lint:allow ctx bounded argmin over at most 496 settings per decision; Governor.Decide is synchronous
	if prev == nil || prevProfile == nil {
		return Decision{Setting: e.space.Min()}, nil
	}
	best := e.space.Min()
	bestScore := math.Inf(1)
	searched := 0
	for _, st := range e.space.Settings() {
		tns, ej, err := e.model.Predict(*prevProfile, st)
		if err != nil {
			return Decision{}, fmt.Errorf("governor: edp predict %v: %w", st, err)
		}
		searched++
		score := ej * math.Pow(tns, e.exponent)
		if score < bestScore {
			bestScore, best = score, st
		}
	}
	return Decision{Setting: best, Searched: searched}, nil
}
