package governor

import (
	"testing"

	"mcdvfs/internal/freq"
)

func TestRateLimiterValidation(t *testing.T) {
	if _, err := NewRateLimiter(nil, 1); err == nil {
		t.Error("nil space accepted")
	}
	if _, err := NewRateLimiter(freq.CoarseSpace(), 0); err == nil {
		t.Error("zero allowance accepted")
	}
	if _, err := NewRateLimiter(freq.CoarseSpace(), -1); err == nil {
		t.Error("negative allowance accepted")
	}
}

func TestRateLimiterBangBang(t *testing.T) {
	sp := freq.CoarseSpace()
	rl, err := NewRateLimiter(sp, 0.010) // 10 mJ per interval
	if err != nil {
		t.Fatal(err)
	}
	// First decision: minimum.
	d, err := rl.Decide(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Setting != sp.Min() {
		t.Errorf("first setting %v, want min", d.Setting)
	}
	// Underspend -> race to max.
	d, _ = rl.Decide(&Observation{EnergyJ: 0.005}, nil)
	if d.Setting != sp.Max() {
		t.Errorf("underspend setting %v, want max", d.Setting)
	}
	// Overspend -> throttle to min.
	d, _ = rl.Decide(&Observation{EnergyJ: 0.020}, nil)
	if d.Setting != sp.Min() {
		t.Errorf("overspend setting %v, want min", d.Setting)
	}
}

func TestRateLimiterWastesEnergyVsBudgetGovernor(t *testing.T) {
	// The paper's argument: an absolute per-interval energy allowance is
	// workload-blind. Pick the allowance as the average interval energy of
	// the budget governor's run, then show the rate limiter delivers worse
	// performance for comparable (or more) energy.
	sys := testSystem(t)
	specs := testSpecs(t, "gobmk", 0)

	budget := budgetGov(t, 1.3, 0.03, FromMax, false)
	rBudget, err := Run(sys, specs, budget, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	allowance := rBudget.EnergyJ / float64(len(specs))
	rl, err := NewRateLimiter(freq.CoarseSpace(), allowance)
	if err != nil {
		t.Fatal(err)
	}
	rRL, err := Run(sys, specs, rl, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	if rRL.TimeNS <= rBudget.TimeNS {
		t.Errorf("rate limiter (%.0f ms) beat the budget governor (%.0f ms); the paper's critique should hold",
			rRL.TimeNS/1e6, rBudget.TimeNS/1e6)
	}
	// Bang-bang control also thrashes settings.
	if rRL.Transitions <= rBudget.Transitions {
		t.Errorf("rate limiter transitions %d <= budget governor %d", rRL.Transitions, rBudget.Transitions)
	}
}

func TestEDPValidation(t *testing.T) {
	model, _ := NewSimModel()
	if _, err := NewEDP(nil, model, 1); err == nil {
		t.Error("nil space accepted")
	}
	if _, err := NewEDP(freq.CoarseSpace(), nil, 1); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewEDP(freq.CoarseSpace(), model, -1); err == nil {
		t.Error("negative exponent accepted")
	}
	if _, err := NewEDP(freq.CoarseSpace(), model, 5); err == nil {
		t.Error("huge exponent accepted")
	}
}

func TestEDPHasNoBudgetKnob(t *testing.T) {
	// The paper: EDP gives one operating point per workload; it cannot be
	// asked to spend less. Verify that EDP lands at a fixed inefficiency
	// regardless of any desired budget, while the budget governor moves.
	sys := testSystem(t)
	specs := testSpecs(t, "gobmk", 0)
	model, err := NewSimModel()
	if err != nil {
		t.Fatal(err)
	}
	edp, err := NewEDP(freq.CoarseSpace(), model, 1)
	if err != nil {
		t.Fatal(err)
	}
	rEDP, err := Run(sys, specs, edp, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}

	gTight := budgetGov(t, 1.05, 0.03, FromMax, false)
	rTight, err := Run(sys, specs, gTight, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	gLoose := budgetGov(t, 1.6, 0.03, FromMax, false)
	rLoose, err := Run(sys, specs, gLoose, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	// The budget governor spans a range of energies around EDP's single
	// point; EDP itself cannot reach the tight end.
	if !(rTight.EnergyJ < rEDP.EnergyJ) {
		t.Errorf("tight budget (%.0f mJ) not below EDP (%.0f mJ)", rTight.EnergyJ*1e3, rEDP.EnergyJ*1e3)
	}
	if !(rLoose.TimeNS < rEDP.TimeNS) {
		t.Errorf("loose budget (%.0f ms) not faster than EDP (%.0f ms)", rLoose.TimeNS/1e6, rEDP.TimeNS/1e6)
	}
}

func TestED2PFavorsPerformanceOverEDP(t *testing.T) {
	sys := testSystem(t)
	specs := testSpecs(t, "milc", 60)
	model, err := NewSimModel()
	if err != nil {
		t.Fatal(err)
	}
	edp, _ := NewEDP(freq.CoarseSpace(), model, 1)
	ed2p, _ := NewEDP(freq.CoarseSpace(), model, 2)
	r1, err := Run(sys, specs, edp, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sys, specs, ed2p, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	if r2.TimeNS >= r1.TimeNS {
		t.Errorf("ED²P (%.0f ms) not faster than EDP (%.0f ms)", r2.TimeNS/1e6, r1.TimeNS/1e6)
	}
	if r2.EnergyJ <= r1.EnergyJ {
		t.Errorf("ED²P (%.0f mJ) not more energy-hungry than EDP (%.0f mJ)", r2.EnergyJ*1e3, r1.EnergyJ*1e3)
	}
}
