// Package governor implements online frequency governors over the mcdvfs
// simulator: the loop a real system would run, deciding each interval's
// (CPU, memory) setting from past observations only.
//
// The paper characterizes offline what an ideal algorithm could do and
// sketches how real governors should behave (Sections II-C, VI, VII):
// filter settings by an inefficiency budget, pick the best performer,
// exploit performance clusters to tune less often, start searches from the
// previous setting instead of from the maximum (unlike CoScale), and
// predict stable-region lengths to skip tuning entirely. This package makes
// those sketches runnable and measurable.
//
// Governors see two inputs per interval: the previous interval's hardware
// counters (time, energy, CPI, MPKI — exact in simulation) and a component
// power/performance model for candidate settings, mirroring the paper's
// assumption that Emin and candidate energies come from "power models (or
// tools)". They never see the future.
package governor

import (
	"fmt"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/workload"
)

// Observation is what the platform reports about one completed interval.
type Observation struct {
	Sample  int
	Setting freq.Setting
	TimeNS  float64
	EnergyJ float64
	CPI     float64
	MPKI    float64
}

// Model predicts the behaviour of a workload interval at a candidate
// setting. It is the governor-facing stand-in for the paper's component
// power models.
type Model interface {
	// Predict returns predicted execution time and energy for a sample
	// with the given profile at the candidate setting.
	Predict(profile workload.SampleSpec, st freq.Setting) (timeNS, energyJ float64, err error)
}

// SimModel implements Model with the noiseless simulator: a "perfect
// model" baseline, isolating governor policy quality from model error.
type SimModel struct {
	sys *sim.System
}

// NewSimModel builds the perfect-model predictor.
func NewSimModel() (*SimModel, error) {
	sys, err := sim.New(sim.NoiselessConfig())
	if err != nil {
		return nil, err
	}
	return &SimModel{sys: sys}, nil
}

// Predict implements Model.
func (m *SimModel) Predict(profile workload.SampleSpec, st freq.Setting) (float64, float64, error) {
	s, err := m.sys.SimulateSample(profile, st)
	if err != nil {
		return 0, 0, err
	}
	return s.TimeNS, s.EnergyJ(), nil
}

// Observer is an optional interface a Model can implement to learn from
// the intervals the governor actually ran. The Budget governor feeds every
// completed interval's counters to an observing model before deciding —
// this is how the learned cross-component model (internal/model) replaces
// the oracle.
type Observer interface {
	ObserveCounters(st freq.Setting, instructions uint64, timeNS, mpki, rowHitRate, writeFrac float64) error
}

// Decision is a governor's choice for the next interval.
type Decision struct {
	Setting freq.Setting
	// Searched counts candidate settings the governor evaluated to reach
	// this decision; 0 means it skipped tuning.
	Searched int
}

// Governor decides the setting for each interval.
//
// Decide receives the previous interval's observation and profile counters
// (nil before the first interval) and returns the setting for the next
// interval.
type Governor interface {
	Name() string
	Decide(prev *Observation, prevProfile *workload.SampleSpec) (Decision, error)
}

// Static always returns a fixed setting: the performance, powersave, and
// userspace governors of the Linux cpufreq framework.
type Static struct {
	name string
	st   freq.Setting
}

// NewPerformance pins the space's maximum setting.
func NewPerformance(space *freq.Space) *Static {
	return &Static{name: "performance", st: space.Max()}
}

// NewPowersave pins the space's minimum setting.
func NewPowersave(space *freq.Space) *Static {
	return &Static{name: "powersave", st: space.Min()}
}

// NewUserspace pins an arbitrary fixed setting.
func NewUserspace(st freq.Setting) *Static {
	return &Static{name: fmt.Sprintf("userspace(%v)", st), st: st}
}

// Name implements Governor.
func (s *Static) Name() string { return s.name }

// Decide implements Governor.
func (s *Static) Decide(*Observation, *workload.SampleSpec) (Decision, error) {
	return Decision{Setting: s.st}, nil
}
