package governor

import (
	"testing"

	"mcdvfs/internal/freq"
)

func TestOnDemandValidation(t *testing.T) {
	if _, err := NewOnDemand(nil); err == nil {
		t.Error("nil space accepted")
	}
}

func TestOnDemandBootsMidLadder(t *testing.T) {
	sp := freq.CoarseSpace()
	od, err := NewOnDemand(sp)
	if err != nil {
		t.Fatal(err)
	}
	d, err := od.Decide(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Setting.CPU <= sp.Min().CPU || d.Setting.CPU >= sp.Max().CPU {
		t.Errorf("boot CPU %v not mid-ladder", d.Setting.CPU)
	}
}

func TestOnDemandRampsUpUnderLoad(t *testing.T) {
	sp := freq.CoarseSpace()
	od, _ := NewOnDemand(sp)
	od.Decide(nil, nil)
	// A busy core (CPI ~1) jumps the CPU straight to maximum.
	d, err := od.Decide(&Observation{CPI: 1.0, MPKI: 25}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Setting.CPU != sp.Max().CPU {
		t.Errorf("busy core CPU %v, want max", d.Setting.CPU)
	}
	if d.Setting.Mem != sp.Max().Mem {
		t.Errorf("heavy traffic memory %v, want max", d.Setting.Mem)
	}
}

func TestOnDemandStepsDownWhenIdle(t *testing.T) {
	sp := freq.CoarseSpace()
	od, _ := NewOnDemand(sp)
	od.Decide(nil, nil)
	first, _ := od.Decide(&Observation{CPI: 5.0, MPKI: 0.5}, nil) // stalled + quiet memory
	second, _ := od.Decide(&Observation{CPI: 5.0, MPKI: 0.5}, nil)
	if second.Setting.CPU >= first.Setting.CPU {
		t.Errorf("idle core did not step down: %v then %v", first.Setting.CPU, second.Setting.CPU)
	}
	if second.Setting.Mem >= first.Setting.Mem {
		t.Errorf("quiet memory did not step down: %v then %v", first.Setting.Mem, second.Setting.Mem)
	}
}

func TestOnDemandNeverLeavesLadder(t *testing.T) {
	sp := freq.CoarseSpace()
	od, _ := NewOnDemand(sp)
	od.Decide(nil, nil)
	// Drive it down for many intervals; it must clamp at the minimum.
	var d Decision
	for i := 0; i < 30; i++ {
		d, _ = od.Decide(&Observation{CPI: 10, MPKI: 0}, nil)
	}
	if d.Setting != sp.Min() {
		t.Errorf("after sustained idle: %v, want %v", d.Setting, sp.Min())
	}
}

func TestConservativeValidation(t *testing.T) {
	if _, err := NewConservative(nil); err == nil {
		t.Error("nil space accepted")
	}
}

func TestConservativeStepsOneRungAtATime(t *testing.T) {
	sp := freq.CoarseSpace()
	cons, err := NewConservative(sp)
	if err != nil {
		t.Fatal(err)
	}
	boot, _ := cons.Decide(nil, nil)
	// A busy core steps up exactly one rung per interval, unlike
	// ondemand's jump to max.
	d1, _ := cons.Decide(&Observation{CPI: 1.0, MPKI: 1}, nil)
	if d1.Setting.CPU != boot.Setting.CPU+100 {
		t.Errorf("first step %v from %v, want one rung", d1.Setting.CPU, boot.Setting.CPU)
	}
	d2, _ := cons.Decide(&Observation{CPI: 1.0, MPKI: 1}, nil)
	if d2.Setting.CPU != d1.Setting.CPU+100 {
		t.Errorf("second step %v, want one more rung", d2.Setting.CPU)
	}
	// And clamps at the top.
	var d Decision
	for i := 0; i < 20; i++ {
		d, _ = cons.Decide(&Observation{CPI: 1.0, MPKI: 25}, nil)
	}
	if d.Setting != sp.Max() {
		t.Errorf("sustained load setting %v, want max", d.Setting)
	}
}

func TestConservativeSmootherThanOnDemand(t *testing.T) {
	// On a phase-heavy workload, conservative must transition through
	// smaller frequency deltas than ondemand's max-jumps.
	sys := testSystem(t)
	specs := testSpecs(t, "gobmk", 0)
	od, _ := NewOnDemand(freq.CoarseSpace())
	cons, _ := NewConservative(freq.CoarseSpace())
	rOD, err := Run(sys, specs, od, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	rC, err := Run(sys, specs, cons, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	maxDelta := func(r Result) float64 {
		worst := 0.0
		for i := 1; i < len(r.Schedule); i++ {
			d := float64(r.Schedule[i].CPU - r.Schedule[i-1].CPU)
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		return worst
	}
	if maxDelta(rC) > 100 {
		t.Errorf("conservative jumped %v MHz in one step", maxDelta(rC))
	}
	if maxDelta(rOD) <= 100 {
		t.Errorf("ondemand never jumped; fixture too tame (max delta %v)", maxDelta(rOD))
	}
}

func TestOnDemandIgnoresEnergyBudget(t *testing.T) {
	// The point of the baseline: a busy workload pins ondemand at max —
	// inefficiency lands wherever it lands (compare the budget governor,
	// which respects I).
	sys := testSystem(t)
	specs := testSpecs(t, "gobmk", 0)
	od, err := NewOnDemand(freq.CoarseSpace())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, specs, od, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeNS <= 0 {
		t.Fatal("no execution")
	}
	// gobmk keeps the core busy, so ondemand should spend most samples at
	// max CPU.
	atMax := 0
	for _, st := range res.Schedule {
		if st.CPU == 1000 {
			atMax++
		}
	}
	if atMax < len(res.Schedule)/2 {
		t.Errorf("ondemand at max CPU for only %d/%d samples", atMax, len(res.Schedule))
	}
}
