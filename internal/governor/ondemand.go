package governor

import (
	"fmt"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/workload"
)

// OnDemand is a Linux-ondemand-style utilization governor extended to two
// components: it raises the CPU clock to maximum when the core's activity
// exceeds the up-threshold and steps it down when activity falls below the
// down-threshold, and drives the memory clock the same way from memory
// traffic intensity. It knows nothing about energy budgets — it is the
// load-following baseline the paper's inefficiency governors replace.
type OnDemand struct {
	space *freq.Space
	// UpThreshold and DownThreshold act on the estimated core activity.
	up, down float64
	// memUp/memDown act on memory traffic (accesses per ns, normalized to
	// the peak the current memory clock can serve).
	memUp, memDown float64

	cpuIdx, memIdx int
	have           bool
}

// NewOnDemand builds the governor with classic 80%/30% thresholds.
func NewOnDemand(space *freq.Space) (*OnDemand, error) {
	if space == nil {
		return nil, fmt.Errorf("governor: nil space")
	}
	return &OnDemand{
		space: space,
		up:    0.80, down: 0.30,
		memUp: 0.60, memDown: 0.20,
	}, nil
}

// Name implements Governor.
func (o *OnDemand) Name() string { return "ondemand" }

// Decide implements Governor.
func (o *OnDemand) Decide(prev *Observation, prevProfile *workload.SampleSpec) (Decision, error) {
	cpuLadder := o.space.CPULadder()
	memLadder := o.space.MemLadder()
	if prev == nil {
		// Boot at the middle of each ladder, like a freshly initialized
		// ondemand instance after its first sampling period.
		o.cpuIdx = len(cpuLadder) / 2
		o.memIdx = len(memLadder) / 2
		o.have = true
		return Decision{Setting: freq.Setting{CPU: cpuLadder[o.cpuIdx], Mem: memLadder[o.memIdx]}}, nil
	}

	// Core activity estimate: achieved CPI relative to an assumed compute
	// CPI of 1 — when stalls dominate, the core looks idle to ondemand.
	activity := 1.0
	if prev.CPI > 0 {
		activity = 1 / prev.CPI
	}
	if activity > 1 {
		activity = 1
	}
	switch {
	case activity >= o.up:
		o.cpuIdx = len(cpuLadder) - 1 // ondemand jumps straight to max
	case activity <= o.down && o.cpuIdx > 0:
		o.cpuIdx--
	}

	// Memory intensity: MPKI-derived traffic normalized to a nominal
	// heavy-traffic level.
	const heavyMPKI = 20.0
	memLoad := prev.MPKI / heavyMPKI
	switch {
	case memLoad >= o.memUp:
		o.memIdx = len(memLadder) - 1
	case memLoad <= o.memDown && o.memIdx > 0:
		o.memIdx--
	}

	return Decision{Setting: freq.Setting{CPU: cpuLadder[o.cpuIdx], Mem: memLadder[o.memIdx]}}, nil
}

// Conservative is the Linux-conservative-style variant of OnDemand: it
// steps one ladder rung at a time in both directions instead of jumping to
// maximum, trading responsiveness for fewer dramatic swings.
type Conservative struct {
	space          *freq.Space
	up, down       float64
	memUp, memDown float64
	cpuIdx, memIdx int
}

// NewConservative builds the governor with the same thresholds as
// NewOnDemand.
func NewConservative(space *freq.Space) (*Conservative, error) {
	if space == nil {
		return nil, fmt.Errorf("governor: nil space")
	}
	return &Conservative{
		space: space,
		up:    0.80, down: 0.30,
		memUp: 0.60, memDown: 0.20,
	}, nil
}

// Name implements Governor.
func (c *Conservative) Name() string { return "conservative" }

// Decide implements Governor.
func (c *Conservative) Decide(prev *Observation, _ *workload.SampleSpec) (Decision, error) {
	cpuLadder := c.space.CPULadder()
	memLadder := c.space.MemLadder()
	if prev == nil {
		c.cpuIdx = len(cpuLadder) / 2
		c.memIdx = len(memLadder) / 2
		return Decision{Setting: freq.Setting{CPU: cpuLadder[c.cpuIdx], Mem: memLadder[c.memIdx]}}, nil
	}
	activity := 1.0
	if prev.CPI > 0 {
		activity = 1 / prev.CPI
	}
	if activity > 1 {
		activity = 1
	}
	switch {
	case activity >= c.up && c.cpuIdx < len(cpuLadder)-1:
		c.cpuIdx++
	case activity <= c.down && c.cpuIdx > 0:
		c.cpuIdx--
	}
	const heavyMPKI = 20.0
	memLoad := prev.MPKI / heavyMPKI
	switch {
	case memLoad >= c.memUp && c.memIdx < len(memLadder)-1:
		c.memIdx++
	case memLoad <= c.memDown && c.memIdx > 0:
		c.memIdx--
	}
	return Decision{Setting: freq.Setting{CPU: cpuLadder[c.cpuIdx], Mem: memLadder[c.memIdx]}}, nil
}
