package governor

import (
	"fmt"
	"math"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/predict"
	"mcdvfs/internal/workload"
)

// SearchStart selects where a tuning search begins.
type SearchStart int

const (
	// FromMax restarts every search from the full setting space, the
	// CoScale-style baseline the paper calls "not efficient".
	FromMax SearchStart = iota
	// FromPrevious searches outward from the current setting, exploiting
	// the paper's observation that phases are often stable across
	// intervals.
	FromPrevious
)

// String names the search strategy.
func (s SearchStart) String() string {
	if s == FromPrevious {
		return "from-previous"
	}
	return "from-max"
}

// BudgetConfig configures the inefficiency-budget cluster governor.
type BudgetConfig struct {
	// Budget is the inefficiency budget I >= 1 (use math.Inf(1) for the
	// unconstrained case).
	Budget float64
	// Threshold is the cluster threshold (0.01 = 1%): the governor keeps
	// its current setting whenever that setting stays within Threshold of
	// the predicted optimal, avoiding a transition.
	Threshold float64
	// Space enumerates candidate settings.
	Space *freq.Space
	// Model predicts candidate behaviour.
	Model Model
	// Search selects the search strategy.
	Search SearchStart
	// UseStability enables the region-length predictor: after learning
	// typical stable-region lengths the governor skips whole searches
	// inside predicted-stable intervals (Section VII).
	UseStability bool
	// DriftTolerance aborts a stability skip when the workload's counters
	// move more than this relative amount from the profile the current
	// setting was chosen on (e.g. 0.2 = 20%). Zero disables drift checks.
	DriftTolerance float64
	// RecalibrateEvery forces a FromPrevious governor to run one full
	// sweep every N local searches, refreshing the exact Emin the budget
	// filter depends on. Zero selects the default (8).
	RecalibrateEvery int
}

// Budget is the paper-inspired online governor. See BudgetConfig.
type Budget struct {
	cfg       BudgetConfig
	emin      predict.EminPredictor
	stability *predict.StabilityPredictor

	current        freq.Setting
	haveSet        bool
	chosenOn       workload.SampleSpec // profile the current setting was chosen on
	skipBudget     int                 // samples the stability predictor said to skip
	sinceFullSweep int                 // local searches since the last full sweep
}

// NewBudget validates cfg and builds the governor.
func NewBudget(cfg BudgetConfig) (*Budget, error) {
	if math.IsNaN(cfg.Budget) || cfg.Budget < 1 {
		return nil, fmt.Errorf("governor: budget %v below 1", cfg.Budget)
	}
	if cfg.Threshold < 0 || cfg.Threshold >= 1 {
		return nil, fmt.Errorf("governor: threshold %v outside [0,1)", cfg.Threshold)
	}
	if cfg.Space == nil || cfg.Model == nil {
		return nil, fmt.Errorf("governor: missing space or model")
	}
	if cfg.DriftTolerance < 0 {
		return nil, fmt.Errorf("governor: negative drift tolerance")
	}
	if cfg.RecalibrateEvery < 0 {
		return nil, fmt.Errorf("governor: negative recalibration interval")
	}
	if cfg.RecalibrateEvery == 0 {
		cfg.RecalibrateEvery = 8
	}
	stab, err := predict.NewStabilityPredictor(8)
	if err != nil {
		return nil, err
	}
	return &Budget{cfg: cfg, emin: predict.NewLastValue(), stability: stab}, nil
}

// Name implements Governor.
func (b *Budget) Name() string {
	suffix := ""
	if b.cfg.UseStability {
		suffix = ",stability"
	}
	return fmt.Sprintf("budget(I=%.2f,th=%.0f%%,%v%s)", b.cfg.Budget, b.cfg.Threshold*100, b.cfg.Search, suffix)
}

// Decide implements Governor.
func (b *Budget) Decide(prev *Observation, prevProfile *workload.SampleSpec) (Decision, error) {
	// First interval: no history. Start at the space minimum — the safe
	// choice under an energy constraint — and search at the next boundary.
	if prev == nil || prevProfile == nil {
		b.current = b.cfg.Space.Min()
		b.haveSet = true
		b.chosenOn = workload.SampleSpec{}
		return Decision{Setting: b.current}, nil
	}

	// Feed the completed interval to a learning model before using it.
	if obs, ok := b.cfg.Model.(Observer); ok {
		err := obs.ObserveCounters(prev.Setting, prevProfile.Instructions,
			prev.TimeNS, prev.MPKI, prevProfile.RowHitRate, prevProfile.WriteFrac)
		if err != nil {
			return Decision{}, fmt.Errorf("governor: model observation: %w", err)
		}
	}

	// Stability skip: if the predictor expects the region to continue and
	// the workload has not drifted, keep the setting without searching.
	if b.cfg.UseStability && b.skipBudget > 0 && !b.drifted(*prevProfile) {
		b.skipBudget--
		b.stability.ObserveStable()
		return Decision{Setting: b.current}, nil
	}

	dec, err := b.search(*prevProfile)
	if err != nil {
		return Decision{}, err
	}
	if b.cfg.UseStability {
		if dec.Setting == b.current { //lint:allow floateq setting identity over exact ladder values
			b.stability.ObserveStable()
			b.skipBudget = b.stability.PredictRemaining()
		} else {
			b.stability.ObserveBreak()
			b.skipBudget = 0
		}
	}
	b.current = dec.Setting
	b.chosenOn = *prevProfile
	return dec, nil
}

// drifted reports whether the profile moved beyond the drift tolerance
// since the current setting was chosen.
func (b *Budget) drifted(p workload.SampleSpec) bool {
	if b.cfg.DriftTolerance == 0 { //lint:allow floateq zero is the exact disabled sentinel
		return false
	}
	rel := func(a, c float64) float64 {
		if c == 0 { //lint:allow floateq exact zero guard before division
			return math.Abs(a)
		}
		return math.Abs(a-c) / c
	}
	return rel(p.BaseCPI, b.chosenOn.BaseCPI) > b.cfg.DriftTolerance ||
		rel(p.MPKI, b.chosenOn.MPKI) > b.cfg.DriftTolerance
}

// candidate is one evaluated setting during a search.
type candidate struct {
	st      freq.Setting
	timeNS  float64
	energyJ float64
}

// search runs the tuning algorithm on the previous interval's profile.
func (b *Budget) search(profile workload.SampleSpec) (Decision, error) {
	switch b.cfg.Search {
	case FromPrevious:
		return b.searchLocal(profile)
	default:
		return b.searchFull(profile)
	}
}

// searchFull is the brute-force pass the paper describes for Emin: predict
// every setting, derive Emin and inefficiency exactly, filter by budget,
// and apply the cluster rule.
func (b *Budget) searchFull(profile workload.SampleSpec) (Decision, error) {
	settings := b.cfg.Space.Settings()
	cands := make([]candidate, 0, len(settings))
	emin := math.Inf(1)
	for _, st := range settings {
		tns, ej, err := b.cfg.Model.Predict(profile, st)
		if err != nil {
			return Decision{}, fmt.Errorf("governor: predicting %v: %w", st, err)
		}
		cands = append(cands, candidate{st: st, timeNS: tns, energyJ: ej})
		if ej < emin {
			emin = ej
		}
	}
	b.emin.Observe(emin)
	return b.pick(cands, emin, len(cands))
}

// searchLocal expands outward from the current setting, using the learned
// Emin estimate for the budget filter so it does not need a full sweep. It
// stops when a whole ring fails to improve the best admissible time, and
// periodically falls back to a full sweep to recalibrate Emin.
func (b *Budget) searchLocal(profile workload.SampleSpec) (Decision, error) {
	eminEst, ok := b.emin.Predict()
	if !ok || !b.haveSet || b.sinceFullSweep >= b.cfg.RecalibrateEvery {
		b.sinceFullSweep = 0
		return b.searchFull(profile)
	}
	b.sinceFullSweep++
	cpuLadder := b.cfg.Space.CPULadder()
	memLadder := b.cfg.Space.MemLadder()
	ci := ladderIndex(cpuLadder, b.current.CPU)
	mi := ladderIndex(memLadder, b.current.Mem)

	var cands []candidate
	searched := 0
	bestTime := math.Inf(1)
	localEmin := math.Inf(1)
	maxRadius := len(cpuLadder) + len(memLadder)
	for radius := 0; radius <= maxRadius; radius++ {
		improved := false
		for dc := -radius; dc <= radius; dc++ {
			for dm := -radius; dm <= radius; dm++ {
				if maxAbs(dc, dm) != radius {
					continue // ring only
				}
				c, m := ci+dc, mi+dm
				if c < 0 || c >= len(cpuLadder) || m < 0 || m >= len(memLadder) {
					continue
				}
				st := freq.Setting{CPU: cpuLadder[c], Mem: memLadder[m]}
				tns, ej, err := b.cfg.Model.Predict(profile, st)
				if err != nil {
					return Decision{}, fmt.Errorf("governor: predicting %v: %w", st, err)
				}
				searched++
				cands = append(cands, candidate{st: st, timeNS: tns, energyJ: ej})
				if ej < localEmin {
					localEmin = ej
				}
				if ej <= b.cfg.Budget*eminEst && tns < bestTime {
					bestTime = tns
					improved = true
				}
			}
		}
		// Stop once a ring beyond the immediate neighborhood brings no
		// admissible improvement.
		if radius >= 1 && !improved && !math.IsInf(bestTime, 1) {
			break
		}
	}
	// Keep the last full-sweep Emin; the local minimum only replaces it
	// when it is lower (a local ring can never see below the global
	// minimum, so this only improves the estimate).
	if localEmin < eminEst {
		b.emin.Observe(localEmin)
	}
	return b.pickWithEmin(cands, eminEst, searched)
}

// pick applies budget filtering and the cluster-keep rule with an exact
// Emin.
func (b *Budget) pick(cands []candidate, emin float64, searched int) (Decision, error) {
	return b.pickWithEmin(cands, emin, searched)
}

// pickWithEmin selects the next setting from evaluated candidates:
// admissible = within budget (relative to emin); optimal = min predicted
// time with the paper's highest-CPU-then-memory tie-break; and if the
// current setting is admissible and within the cluster threshold of the
// optimal, keep it to avoid a transition.
func (b *Budget) pickWithEmin(cands []candidate, emin float64, searched int) (Decision, error) {
	var admissible []candidate
	for _, c := range cands {
		if c.energyJ <= b.cfg.Budget*emin {
			admissible = append(admissible, c)
		}
	}
	if len(admissible) == 0 {
		// A mispredicted Emin can make the budget infeasible; fall back to
		// the minimum-energy candidate, the most conservative admissible
		// approximation.
		best := cands[0]
		for _, c := range cands[1:] {
			if c.energyJ < best.energyJ {
				best = c
			}
		}
		admissible = []candidate{best}
	}
	bestTime := math.Inf(1)
	for _, c := range admissible {
		if c.timeNS < bestTime {
			bestTime = c.timeNS
		}
	}
	var opt *candidate
	var currentOK *candidate
	for i := range admissible {
		c := &admissible[i]
		// The paper's 0.5% tie band, then highest CPU/mem.
		if c.timeNS <= bestTime*(1+0.005) {
			if opt == nil || preferHigher(c.st, opt.st) {
				opt = c
			}
		}
		if b.haveSet && c.st == b.current && c.timeNS <= bestTime*(1+b.cfg.Threshold) { //lint:allow floateq setting identity over exact ladder values
			currentOK = c
		}
	}
	if currentOK != nil {
		return Decision{Setting: currentOK.st, Searched: searched}, nil
	}
	return Decision{Setting: opt.st, Searched: searched}, nil //lint:allow nilflow admissible is never empty (fallback above) and its minimum-time candidate always sits inside its own tie band, so opt is assigned
}

// preferHigher mirrors the core package's tie-break rule.
func preferHigher(a, b freq.Setting) bool {
	if a.CPU != b.CPU { //lint:allow floateq ladder frequencies are exact discrete values
		return a.CPU > b.CPU
	}
	return a.Mem > b.Mem
}

// ladderIndex returns the index of the ladder entry nearest to f.
func ladderIndex(ladder []freq.MHz, f freq.MHz) int {
	best, bestDiff := 0, math.Inf(1)
	for i, l := range ladder {
		d := math.Abs(float64(l - f))
		if d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return best
}

// maxAbs returns max(|a|, |b|).
func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}
