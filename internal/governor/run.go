package governor

import (
	"fmt"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/workload"
)

// Overhead models governor costs. The paper measures ~500 µs and ~30 µJ
// for a full 70-setting tune (inefficiency computation + search +
// hardware transition); we split that into a per-evaluated-setting search
// cost and a fixed per-transition hardware cost so partial searches and
// kept settings are charged fairly.
type Overhead struct {
	PerSettingNS float64
	PerSettingJ  float64
	TransitionNS float64
	TransitionJ  float64
}

// DefaultOverhead reproduces the paper's totals for a 70-setting search:
// 70 × 6 µs + 80 µs = 500 µs and 70 × 0.35 µJ + 5.5 µJ = 30 µJ.
func DefaultOverhead() Overhead {
	return Overhead{
		PerSettingNS: 6_000,
		PerSettingJ:  0.35e-6,
		TransitionNS: 80_000,
		TransitionJ:  5.5e-6,
	}
}

// Result summarizes an online run.
type Result struct {
	Governor string
	// Workload execution cost.
	TimeNS  float64
	EnergyJ float64
	// Governor overhead cost, already included in TimeNS/EnergyJ.
	OverheadNS       float64
	OverheadJ        float64
	Transitions      int
	Tunes            int // decisions that searched at least one setting
	SettingsSearched int
	Schedule         []freq.Setting
	PerSample        []Observation
}

// AvgSearchedPerTune returns the mean settings evaluated per search.
func (r Result) AvgSearchedPerTune() float64 {
	if r.Tunes == 0 {
		return 0
	}
	return float64(r.SettingsSearched) / float64(r.Tunes)
}

// TransitionCoster computes the stall time and energy of one hardware
// transition; internal/dvfsm provides physical implementations. When
// present it replaces Overhead's fixed per-transition numbers.
type TransitionCoster interface {
	Cost(from, to freq.Setting) (ns, joules float64, err error)
}

// Run drives a governor through a realized workload on the given system,
// charging overheads per evaluated setting and per hardware transition.
func Run(sys *sim.System, specs []workload.SampleSpec, gov Governor, oh Overhead) (Result, error) {
	return RunWith(sys, specs, gov, oh, nil)
}

// RunWith is Run with an optional physical transition-cost model.
func RunWith(sys *sim.System, specs []workload.SampleSpec, gov Governor, oh Overhead, tc TransitionCoster) (Result, error) {
	if len(specs) == 0 {
		return Result{}, fmt.Errorf("governor: empty workload")
	}
	res := Result{
		Governor:  gov.Name(),
		Schedule:  make([]freq.Setting, 0, len(specs)),
		PerSample: make([]Observation, 0, len(specs)),
	}
	var prevObs *Observation
	var prevSpec *workload.SampleSpec
	var current freq.Setting
	haveCurrent := false
	for i, spec := range specs {
		dec, err := gov.Decide(prevObs, prevSpec)
		if err != nil {
			return Result{}, fmt.Errorf("governor: sample %d: %w", i, err)
		}
		if dec.Searched > 0 {
			res.Tunes++
			res.SettingsSearched += dec.Searched
			res.OverheadNS += float64(dec.Searched) * oh.PerSettingNS
			res.OverheadJ += float64(dec.Searched) * oh.PerSettingJ
		}
		if haveCurrent && dec.Setting != current { //lint:allow floateq setting identity over exact ladder values
			res.Transitions++
			if tc != nil {
				ns, j, err := tc.Cost(current, dec.Setting)
				if err != nil {
					return Result{}, fmt.Errorf("governor: transition cost %v->%v: %w", current, dec.Setting, err)
				}
				res.OverheadNS += ns
				res.OverheadJ += j
			} else {
				res.OverheadNS += oh.TransitionNS
				res.OverheadJ += oh.TransitionJ
			}
		}
		current = dec.Setting
		haveCurrent = true

		m, err := sys.SimulateSample(spec, current)
		if err != nil {
			return Result{}, fmt.Errorf("governor: sample %d at %v: %w", i, current, err)
		}
		obs := Observation{
			Sample:  i,
			Setting: current,
			TimeNS:  m.TimeNS,
			EnergyJ: m.EnergyJ(),
			CPI:     m.CPI,
			MPKI:    m.MPKI,
		}
		res.TimeNS += m.TimeNS
		res.EnergyJ += m.EnergyJ()
		res.Schedule = append(res.Schedule, current)
		res.PerSample = append(res.PerSample, obs)

		prevObs = &res.PerSample[len(res.PerSample)-1]
		specCopy := spec
		prevSpec = &specCopy
	}
	res.TimeNS += res.OverheadNS
	res.EnergyJ += res.OverheadJ
	return res, nil
}
