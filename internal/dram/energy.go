package dram

import (
	"fmt"

	"mcdvfs/internal/freq"
)

// Counts tallies the command events issued over an interval, the inputs to
// DRAMPower-style energy accounting.
type Counts struct {
	Activates int // activate+precharge pairs (row misses)
	Reads     int // read bursts
	Writes    int // write bursts
	Refreshes int // all-bank refresh commands
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Activates += other.Activates
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.Refreshes += other.Refreshes
}

// Accesses returns the total data bursts.
func (c Counts) Accesses() int { return c.Reads + c.Writes }

// EnergyModel computes DRAM energy from event counts and elapsed time,
// following the structure of the DRAMPower tool the paper integrates into
// gem5: per-event energies plus background power integrated over time.
type EnergyModel struct {
	dev Device
}

// NewEnergyModel validates the device and builds an energy model.
func NewEnergyModel(dev Device) (*EnergyModel, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	return &EnergyModel{dev: dev}, nil
}

// Device returns the modeled device.
func (m *EnergyModel) Device() Device { return m.dev }

// BackgroundPowerW returns the background power at clock f: the static
// floor plus clocked standby scaling linearly with frequency, plus the
// amortized refresh power (refresh energy is charged continuously because
// refresh must run regardless of traffic).
func (m *EnergyModel) BackgroundPowerW(f freq.MHz) (float64, error) {
	if err := m.dev.CheckClock(f); err != nil {
		return 0, err
	}
	clocked := m.dev.PBgClockedW * float64(f/m.dev.FMax)
	refresh := m.dev.ERefJ / (m.dev.TREFIns * 1e-9)
	return m.dev.PBgStaticW + clocked + refresh, nil
}

// Energy returns the joules consumed over an interval of durationNS at
// clock f given the event counts.
func (m *EnergyModel) Energy(f freq.MHz, counts Counts, durationNS float64) (float64, error) {
	if durationNS < 0 {
		return 0, fmt.Errorf("dram: negative duration %v", durationNS)
	}
	bg, err := m.BackgroundPowerW(f)
	if err != nil {
		return 0, err
	}
	e := bg * durationNS * 1e-9
	e += float64(counts.Activates) * m.dev.EActPreJ
	e += float64(counts.Reads) * m.dev.ERdBurstJ
	e += float64(counts.Writes) * m.dev.EWrBurstJ
	// Refresh commands actually issued are already covered by the amortized
	// background term; counting them again would double-charge, so explicit
	// refresh counts carry only the delta between actual and amortized
	// issue rate, which is zero in steady state. We therefore ignore
	// counts.Refreshes here and expose them for validation only.
	return e, nil
}

// AccessEnergyJ returns the incremental energy of one access: the burst
// energy plus, for row misses, the activate/precharge pair.
func (m *EnergyModel) AccessEnergyJ(write, rowHit bool) float64 {
	e := m.dev.ERdBurstJ
	if write {
		e = m.dev.EWrBurstJ
	}
	if !rowHit {
		e += m.dev.EActPreJ
	}
	return e
}
