package dram

import (
	"fmt"
	"math"

	"mcdvfs/internal/freq"
)

// RoundCount converts a fractional expected event count (accesses scaled by
// a rate or mix fraction) to the nearest integer event count. This is the
// single rounding rule for all count derivation: the previous inline
// `int(x + 0.5)` idiom mis-rounds whenever x + 0.5 is not exactly
// representable — for counts at or above 2^52 the addition itself rounds to
// nearest-even and can push an exact integer count up by one — so large
// grids accumulated inconsistent totals. math.Round has no intermediate
// addition and is exact for every representable non-negative count.
//
//vet:requires x >= 0
//vet:ensures ret >= 0
func RoundCount(x float64) int { return int(math.Round(x)) }

// Counts tallies the command events issued over an interval, the inputs to
// DRAMPower-style energy accounting.
//
//vet:invariant Activates >= 0 && Reads >= 0 && Writes >= 0 && Refreshes >= 0
type Counts struct {
	Activates int // activate+precharge pairs (row misses)
	Reads     int // read bursts
	Writes    int // write bursts
	Refreshes int // all-bank refresh commands
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Activates += other.Activates
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.Refreshes += other.Refreshes
}

// Accesses returns the total data bursts.
func (c Counts) Accesses() int { return c.Reads + c.Writes }

// EnergyModel computes DRAM energy from event counts and elapsed time,
// following the structure of the DRAMPower tool the paper integrates into
// gem5: per-event energies plus background power integrated over time.
type EnergyModel struct {
	dev Device
}

// NewEnergyModel validates the device and builds an energy model.
func NewEnergyModel(dev Device) (*EnergyModel, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	return &EnergyModel{dev: dev}, nil
}

// Device returns the modeled device.
func (m *EnergyModel) Device() Device { return m.dev }

// BackgroundPowerW returns the background power at clock f: the static
// floor plus clocked standby scaling linearly with frequency, plus the
// amortized refresh power (refresh energy is charged continuously because
// refresh must run regardless of traffic).
func (m *EnergyModel) BackgroundPowerW(f freq.MHz) (float64, error) {
	if err := m.dev.CheckClock(f); err != nil {
		return 0, err
	}
	clocked := m.dev.PBgClockedW * float64(f/m.dev.FMax)
	refresh := m.dev.ERefJ / (m.dev.TREFIns * 1e-9)
	return m.dev.PBgStaticW + clocked + refresh, nil
}

// Energy returns the joules consumed over an interval of durationNS at
// clock f given the event counts.
func (m *EnergyModel) Energy(f freq.MHz, counts Counts, durationNS float64) (float64, error) {
	if durationNS < 0 {
		return 0, fmt.Errorf("dram: negative duration %v", durationNS)
	}
	bg, err := m.BackgroundPowerW(f)
	if err != nil {
		return 0, err
	}
	e := bg * durationNS * 1e-9
	e += float64(counts.Activates) * m.dev.EActPreJ
	e += float64(counts.Reads) * m.dev.ERdBurstJ
	e += float64(counts.Writes) * m.dev.EWrBurstJ
	// Refresh commands actually issued are already covered by the amortized
	// background term; counting them again would double-charge, so explicit
	// refresh counts carry only the delta between actual and amortized
	// issue rate, which is zero in steady state. We therefore ignore
	// counts.Refreshes here and expose them for validation only.
	return e, nil
}

// EnergyCoeffs packs the per-clock invariants of the energy model — the
// background power at the clock plus the (clock-invariant) per-event
// energies — hoisted once per operating point for batch accounting.
//
// EnergyJ mirrors EnergyModel.Energy operation-for-operation (same term
// order and association), so results are bit-identical for non-negative
// durations; TestEnergyCoeffsMatchModel pins the equivalence. Inputs are
// not validated here.
type EnergyCoeffs struct {
	BackgroundW float64 // background power at the clock, incl. amortized refresh
	EActPreJ    float64
	ERdBurstJ   float64
	EWrBurstJ   float64
}

// CoeffsAt hoists the energy-model invariants for clock f.
//
//vet:hotpath
//vet:requires f > 0
func (m *EnergyModel) CoeffsAt(f freq.MHz) (EnergyCoeffs, error) {
	bg, err := m.BackgroundPowerW(f)
	if err != nil {
		return EnergyCoeffs{}, err
	}
	return EnergyCoeffs{
		BackgroundW: bg,
		EActPreJ:    m.dev.EActPreJ,
		ERdBurstJ:   m.dev.ERdBurstJ,
		EWrBurstJ:   m.dev.EWrBurstJ,
	}, nil
}

// EnergyJ is the hoisted EnergyModel.Energy: joules over durationNS at the
// hoisted clock given the event counts.
//
//vet:requires durationNS >= 0
//vet:ensures ret >= 0
func (c EnergyCoeffs) EnergyJ(counts Counts, durationNS float64) float64 {
	e := c.BackgroundW * durationNS * 1e-9
	e += float64(counts.Activates) * c.EActPreJ
	e += float64(counts.Reads) * c.ERdBurstJ
	e += float64(counts.Writes) * c.EWrBurstJ
	return e
}

// AccessEnergyJ returns the incremental energy of one access: the burst
// energy plus, for row misses, the activate/precharge pair.
func (m *EnergyModel) AccessEnergyJ(write, rowHit bool) float64 {
	e := m.dev.ERdBurstJ
	if write {
		e = m.dev.EWrBurstJ
	}
	if !rowHit {
		e += m.dev.EActPreJ
	}
	return e
}
