package dram

import (
	"math"
	"testing"

	"mcdvfs/internal/freq"
)

func newEngine(t *testing.T, clock float64) *Engine {
	t.Helper()
	e, err := NewEngine(DefaultDevice(), mhz(clock))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func TestEngineSingleColdAccess(t *testing.T) {
	e := newEngine(t, 800)
	res, err := e.Service(Request{ArrivalNS: 0, Bank: 0, Row: 1})
	if err != nil {
		t.Fatalf("Service: %v", err)
	}
	if res.RowHit {
		t.Error("cold access reported as row hit")
	}
	// Cold bank: tRCD + tCAS + full line transfer, in cycles at 800 MHz.
	d := DefaultDevice()
	tm, _ := d.TimingAt(800)
	period := mhz(800).PeriodNS()
	want := float64(tm.TRCD+tm.TCAS+tm.Burst*d.LineBursts()) * period
	if math.Abs(res.FinishNS-want) > 1e-9 {
		t.Errorf("cold latency = %v, want %v", res.FinishNS, want)
	}
}

func TestEngineRowHitFasterThanMiss(t *testing.T) {
	e := newEngine(t, 800)
	// First access opens row 5 in bank 0.
	first, err := e.Service(Request{ArrivalNS: 0, Bank: 0, Row: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Second access to the same row, issued well after the bank settles.
	hit, err := e.Service(Request{ArrivalNS: first.FinishNS + 100, Bank: 0, Row: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.RowHit {
		t.Fatal("same-row access not a row hit")
	}
	// Third access to a different row in the same bank: conflict.
	miss, err := e.Service(Request{ArrivalNS: hit.FinishNS + 100, Bank: 0, Row: 6})
	if err != nil {
		t.Fatal(err)
	}
	if miss.RowHit {
		t.Fatal("different-row access reported as hit")
	}
	hitLat := hit.FinishNS - (first.FinishNS + 100)
	missLat := miss.FinishNS - (hit.FinishNS + 100)
	if hitLat >= missLat {
		t.Errorf("hit latency %v not below miss latency %v", hitLat, missLat)
	}
}

func TestEngineBankParallelism(t *testing.T) {
	// Two simultaneous requests to different banks overlap their row
	// activations; the second should finish sooner than 2x a serial pair to
	// the same bank's different rows.
	eDiff := newEngine(t, 800)
	r1, _ := eDiff.Service(Request{ArrivalNS: 0, Bank: 0, Row: 1})
	r2, _ := eDiff.Service(Request{ArrivalNS: 0, Bank: 1, Row: 1})
	_ = r1

	eSame := newEngine(t, 800)
	s1, _ := eSame.Service(Request{ArrivalNS: 0, Bank: 0, Row: 1})
	s2, _ := eSame.Service(Request{ArrivalNS: 0, Bank: 0, Row: 2})
	_ = s1

	if r2.FinishNS >= s2.FinishNS {
		t.Errorf("bank-parallel finish %v not earlier than serial same-bank %v", r2.FinishNS, s2.FinishNS)
	}
}

func TestEngineDataBusSerializesBursts(t *testing.T) {
	e := newEngine(t, 800)
	r1, _ := e.Service(Request{ArrivalNS: 0, Bank: 0, Row: 1})
	r2, _ := e.Service(Request{ArrivalNS: 0, Bank: 1, Row: 1})
	line := DefaultDevice().LineTransferNS(800)
	if r2.FinishNS < r1.FinishNS+line-1e-9 {
		t.Errorf("line transfers overlapped on the data bus: %v then %v (line %v)", r1.FinishNS, r2.FinishNS, line)
	}
}

func TestEngineRefreshIntervenes(t *testing.T) {
	e := newEngine(t, 800)
	d := DefaultDevice()
	// Service an access, then one far in the future beyond several tREFI.
	if _, err := e.Service(Request{ArrivalNS: 0, Bank: 0, Row: 1}); err != nil {
		t.Fatal(err)
	}
	late := d.TREFIns*3 + 10
	if _, err := e.Service(Request{ArrivalNS: late, Bank: 0, Row: 1}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Counts.Refreshes < 3 {
		t.Errorf("refreshes = %d, want >= 3 after %v ns", st.Counts.Refreshes, late)
	}
	// Refresh closes rows, so the late same-row access must be a miss.
	if st.RowHits != 0 {
		t.Errorf("row hits = %d, want 0 (refresh closes rows)", st.RowHits)
	}
}

func TestEngineWriteRecoveryDelaysBank(t *testing.T) {
	e := newEngine(t, 800)
	w, _ := e.Service(Request{ArrivalNS: 0, Bank: 0, Row: 1, Write: true})
	// A row hit immediately after a write waits out tWR.
	h, _ := e.Service(Request{ArrivalNS: w.FinishNS, Bank: 0, Row: 1})
	tm, _ := DefaultDevice().TimingAt(800)
	period := mhz(800).PeriodNS()
	minStart := w.FinishNS + float64(tm.TWR)*period
	if h.StartNS < minStart-1e-9 {
		t.Errorf("post-write command at %v, want >= %v", h.StartNS, minStart)
	}
}

func TestEngineStatsAccounting(t *testing.T) {
	e := newEngine(t, 400)
	reqs := []Request{
		{ArrivalNS: 0, Bank: 0, Row: 1},
		{ArrivalNS: 200, Bank: 0, Row: 1},              // hit
		{ArrivalNS: 400, Bank: 0, Row: 2},              // miss
		{ArrivalNS: 600, Bank: 1, Row: 1, Write: true}, // cold miss
	}
	st, err := e.ServiceAll(reqs)
	if err != nil {
		t.Fatalf("ServiceAll: %v", err)
	}
	lb := DefaultDevice().LineBursts()
	if st.Counts.Reads != 3*lb || st.Counts.Writes != 1*lb {
		t.Errorf("read/write bursts = %d/%d, want %d/%d", st.Counts.Reads, st.Counts.Writes, 3*lb, lb)
	}
	if st.RowHits != 1 || st.RowMisses != 3 {
		t.Errorf("hits/misses = %d/%d, want 1/3", st.RowHits, st.RowMisses)
	}
	if st.Counts.Activates != 3 {
		t.Errorf("activates = %d, want 3", st.Counts.Activates)
	}
	if got := st.RowHitRate(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("row hit rate = %v, want 0.25", got)
	}
	if st.AvgLatencyNS() <= 0 || st.MaxLatencyNS < st.AvgLatencyNS() {
		t.Errorf("latency stats inconsistent: avg %v max %v", st.AvgLatencyNS(), st.MaxLatencyNS)
	}
}

func TestEngineRejectsBadRequests(t *testing.T) {
	e := newEngine(t, 800)
	if _, err := e.Service(Request{Bank: -1, Row: 0}); err == nil {
		t.Error("negative bank accepted")
	}
	if _, err := e.Service(Request{Bank: 99, Row: 0}); err == nil {
		t.Error("out-of-range bank accepted")
	}
	if _, err := e.Service(Request{Bank: 0, Row: -2}); err == nil {
		t.Error("negative row accepted")
	}
	if _, err := e.ServiceAll([]Request{{ArrivalNS: 10, Bank: 0, Row: 0}, {ArrivalNS: 5, Bank: 0, Row: 0}}); err == nil {
		t.Error("out-of-order arrivals accepted")
	}
}

func TestEngineLowerClockHigherLatency(t *testing.T) {
	// The same sparse row-miss stream should take longer per request at
	// 200 MHz than at 800 MHz (burst and rounding effects dominate).
	stream := func() []Request {
		var reqs []Request
		for i := 0; i < 64; i++ {
			reqs = append(reqs, Request{ArrivalNS: float64(i) * 500, Bank: i % 8, Row: i})
		}
		return reqs
	}
	e800 := newEngine(t, 800)
	st800, err := e800.ServiceAll(stream())
	if err != nil {
		t.Fatal(err)
	}
	e200 := newEngine(t, 200)
	st200, err := e200.ServiceAll(stream())
	if err != nil {
		t.Fatal(err)
	}
	if st200.AvgLatencyNS() <= st800.AvgLatencyNS() {
		t.Errorf("avg latency at 200MHz (%v) not above 800MHz (%v)",
			st200.AvgLatencyNS(), st800.AvgLatencyNS())
	}
}

// mhz converts a float to freq.MHz for test brevity.
func mhz(f float64) freq.MHz { return freq.MHz(f) }
