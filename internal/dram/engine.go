package dram

import (
	"fmt"

	"mcdvfs/internal/freq"
)

// Request is one memory access presented to the command engine.
type Request struct {
	ArrivalNS float64 // time the request reaches the controller
	Bank      int
	Row       int
	Write     bool
}

// RequestResult describes how the engine serviced one request.
type RequestResult struct {
	StartNS  float64 // when the first command for the request issued
	FinishNS float64 // when the data burst completed
	RowHit   bool
}

// LatencyNS returns the request's total service latency including queueing.
func (r RequestResult) LatencyNS(req Request) float64 { return r.FinishNS - req.ArrivalNS }

// EngineStats summarizes one engine run.
type EngineStats struct {
	Counts        Counts
	Requests      int // cache-line requests serviced
	RowHits       int
	RowMisses     int
	TotalNS       float64 // time from first arrival to last burst completion
	SumLatencyNS  float64
	MaxLatencyNS  float64
	BusBusyNS     float64 // time the data bus carried bursts
	RefreshStalls int
}

// AvgLatencyNS returns the mean request latency.
func (s EngineStats) AvgLatencyNS() float64 {
	if s.Requests == 0 {
		return 0
	}
	return s.SumLatencyNS / float64(s.Requests)
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (s EngineStats) RowHitRate() float64 {
	n := s.RowHits + s.RowMisses
	if n == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(n)
}

// Engine is a command-level model of the device: per-bank open-row state,
// fixed-ns core timing constraints, a shared data bus, open-page policy, and
// periodic all-bank refresh. Requests are serviced in arrival order (FCFS),
// which matches the paper's single-core traffic where the controller queue
// rarely reorders.
//
// The engine exists to validate the closed-form latency model used by
// internal/memctrl: integration tests drive both with the same synthetic
// streams and require agreement on average latency within tolerance.
type Engine struct {
	dev    Device
	clock  freq.MHz
	timing Timing

	bankOpenRow  []int     // -1 = closed
	bankReadyNS  []float64 // earliest next command per bank
	bankOpenedNS []float64 // time the open row was activated (for tRAS)
	busFreeNS    float64
	nextRefresh  float64
	stats        EngineStats
	started      bool
	firstArrival float64
	lastFinish   float64
}

// NewEngine builds an engine for dev at the given clock.
func NewEngine(dev Device, clock freq.MHz) (*Engine, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if err := dev.CheckClock(clock); err != nil {
		return nil, err
	}
	timing, err := dev.TimingAt(clock)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		dev:          dev,
		clock:        clock,
		timing:       timing,
		bankOpenRow:  make([]int, dev.Banks),
		bankReadyNS:  make([]float64, dev.Banks),
		bankOpenedNS: make([]float64, dev.Banks),
		nextRefresh:  dev.TREFIns,
	}
	for i := range e.bankOpenRow {
		e.bankOpenRow[i] = -1
	}
	return e, nil
}

// Clock returns the engine's clock frequency.
func (e *Engine) Clock() freq.MHz { return e.clock }

// cycles converts a cycle count to nanoseconds at the engine clock.
func (e *Engine) cycles(n int) float64 { return float64(n) * e.clock.PeriodNS() }

// Service processes one request and returns its result. Requests must be
// presented in non-decreasing arrival order.
func (e *Engine) Service(req Request) (RequestResult, error) {
	if req.Bank < 0 || req.Bank >= e.dev.Banks {
		return RequestResult{}, fmt.Errorf("dram: bank %d out of range [0,%d)", req.Bank, e.dev.Banks)
	}
	if req.Row < 0 {
		return RequestResult{}, fmt.Errorf("dram: negative row %d", req.Row)
	}
	if !e.started {
		e.started = true
		e.firstArrival = req.ArrivalNS
	}

	start := req.ArrivalNS
	if e.bankReadyNS[req.Bank] > start {
		start = e.bankReadyNS[req.Bank]
	}

	// Periodic all-bank refresh: if a refresh deadline passed before this
	// command could issue, the whole device stalls for tRFC.
	for e.nextRefresh <= start {
		refreshEnd := e.nextRefresh + float64(e.timing.TRFC)*e.clock.PeriodNS()
		if start < refreshEnd {
			start = refreshEnd
		}
		for b := range e.bankOpenRow {
			e.bankOpenRow[b] = -1 // all-bank refresh closes rows
			if e.bankReadyNS[b] < refreshEnd {
				e.bankReadyNS[b] = refreshEnd
			}
		}
		e.stats.Counts.Refreshes++
		e.stats.RefreshStalls++
		e.nextRefresh += e.dev.TREFIns
	}

	rowHit := e.bankOpenRow[req.Bank] == req.Row
	var cmdNS float64
	switch {
	case rowHit:
		cmdNS = e.cycles(e.timing.TCAS)
		e.stats.RowHits++
	case e.bankOpenRow[req.Bank] >= 0:
		// Conflict: precharge (respecting tRAS of the open row), activate,
		// then column access.
		openFor := start - e.bankOpenedNS[req.Bank]
		minOpen := e.cycles(e.timing.TRAS)
		if openFor < minOpen {
			start += minOpen - openFor
		}
		cmdNS = e.cycles(e.timing.TRP + e.timing.TRCD + e.timing.TCAS)
		e.stats.Counts.Activates++
		e.stats.RowMisses++
		e.bankOpenedNS[req.Bank] = start + e.cycles(e.timing.TRP)
	default:
		// Bank closed (cold or post-refresh): activate then column access.
		cmdNS = e.cycles(e.timing.TRCD + e.timing.TCAS)
		e.stats.Counts.Activates++
		e.stats.RowMisses++
		e.bankOpenedNS[req.Bank] = start
	}
	e.bankOpenRow[req.Bank] = req.Row

	// The data transfer needs the shared bus for one full cache line
	// (LineBursts bursts); transfers are serialized on the bus.
	burstStart := start + cmdNS
	if e.busFreeNS > burstStart {
		burstStart = e.busFreeNS
	}
	burstNS := e.cycles(e.timing.Burst * e.dev.LineBursts())
	finish := burstStart + burstNS
	e.busFreeNS = finish
	e.stats.BusBusyNS += burstNS

	ready := finish
	if req.Write {
		ready += e.cycles(e.timing.TWR)
		e.stats.Counts.Writes += e.dev.LineBursts()
	} else {
		e.stats.Counts.Reads += e.dev.LineBursts()
	}
	e.bankReadyNS[req.Bank] = ready

	e.stats.Requests++
	lat := finish - req.ArrivalNS
	e.stats.SumLatencyNS += lat
	if lat > e.stats.MaxLatencyNS {
		e.stats.MaxLatencyNS = lat
	}
	if finish > e.lastFinish {
		e.lastFinish = finish
	}
	e.stats.TotalNS = e.lastFinish - e.firstArrival
	return RequestResult{StartNS: start, FinishNS: finish, RowHit: rowHit}, nil
}

// ServiceAll runs a whole request stream and returns the final stats.
func (e *Engine) ServiceAll(reqs []Request) (EngineStats, error) {
	for i, r := range reqs {
		if i > 0 && r.ArrivalNS < reqs[i-1].ArrivalNS {
			return EngineStats{}, fmt.Errorf("dram: request %d arrives before its predecessor", i)
		}
		if _, err := e.Service(r); err != nil {
			return EngineStats{}, fmt.Errorf("dram: request %d: %w", i, err)
		}
	}
	return e.stats, nil
}

// Stats returns the statistics accumulated so far.
func (e *Engine) Stats() EngineStats { return e.stats }
