package dram

import (
	"math"
	"testing"

	"mcdvfs/internal/freq"
)

func newModel(t *testing.T) *EnergyModel {
	t.Helper()
	m, err := NewEnergyModel(DefaultDevice())
	if err != nil {
		t.Fatalf("NewEnergyModel: %v", err)
	}
	return m
}

func TestBackgroundPowerScalesWithClock(t *testing.T) {
	m := newModel(t)
	p200, err := m.BackgroundPowerW(200)
	if err != nil {
		t.Fatalf("BackgroundPowerW(200): %v", err)
	}
	p800, err := m.BackgroundPowerW(800)
	if err != nil {
		t.Fatalf("BackgroundPowerW(800): %v", err)
	}
	if p800 <= p200 {
		t.Errorf("background power not increasing with clock: %v vs %v", p200, p800)
	}
	// The clocked component at 200 MHz must be exactly 1/4 of that at 800.
	d := DefaultDevice()
	refresh := d.ERefJ / (d.TREFIns * 1e-9)
	clocked200 := p200 - d.PBgStaticW - refresh
	clocked800 := p800 - d.PBgStaticW - refresh
	if math.Abs(clocked800/clocked200-4) > 1e-9 {
		t.Errorf("clocked background ratio = %v, want 4", clocked800/clocked200)
	}
}

func TestBackgroundIncludesRefresh(t *testing.T) {
	m := newModel(t)
	d := DefaultDevice()
	p, err := m.BackgroundPowerW(d.FMin)
	if err != nil {
		t.Fatal(err)
	}
	refresh := d.ERefJ / (d.TREFIns * 1e-9)
	if p < d.PBgStaticW+refresh {
		t.Errorf("background %v below static+refresh floor %v", p, d.PBgStaticW+refresh)
	}
}

func TestEnergyEventAccounting(t *testing.T) {
	m := newModel(t)
	d := DefaultDevice()
	counts := Counts{Activates: 10, Reads: 100, Writes: 50}
	e, err := m.Energy(400, counts, 0)
	if err != nil {
		t.Fatalf("Energy: %v", err)
	}
	want := 10*d.EActPreJ + 100*d.ERdBurstJ + 50*d.EWrBurstJ
	if math.Abs(e-want) > 1e-15 {
		t.Errorf("event energy = %v, want %v", e, want)
	}
}

func TestEnergyTimeIntegration(t *testing.T) {
	m := newModel(t)
	bg, _ := m.BackgroundPowerW(800)
	e, err := m.Energy(800, Counts{}, 1e9) // one second idle
	if err != nil {
		t.Fatalf("Energy: %v", err)
	}
	if math.Abs(e-bg) > 1e-12 {
		t.Errorf("idle 1s energy = %v, want %v", e, bg)
	}
}

func TestEnergyRejectsBadInput(t *testing.T) {
	m := newModel(t)
	if _, err := m.Energy(800, Counts{}, -1); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := m.Energy(1600, Counts{}, 1); err == nil {
		t.Error("out-of-range clock accepted")
	}
}

func TestAccessEnergy(t *testing.T) {
	m := newModel(t)
	d := DefaultDevice()
	if got := m.AccessEnergyJ(false, true); got != d.ERdBurstJ {
		t.Errorf("read hit = %v, want %v", got, d.ERdBurstJ)
	}
	if got := m.AccessEnergyJ(true, false); got != d.EWrBurstJ+d.EActPreJ {
		t.Errorf("write miss = %v, want %v", got, d.EWrBurstJ+d.EActPreJ)
	}
	if m.AccessEnergyJ(false, false) <= m.AccessEnergyJ(false, true) {
		t.Error("row miss should cost more than row hit")
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{Activates: 1, Reads: 2, Writes: 3, Refreshes: 4}
	a.Add(Counts{Activates: 10, Reads: 20, Writes: 30, Refreshes: 40})
	want := Counts{Activates: 11, Reads: 22, Writes: 33, Refreshes: 44}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
	if a.Accesses() != 55 {
		t.Errorf("Accesses = %d, want 55", a.Accesses())
	}
}

func TestNewEnergyModelRejectsInvalidDevice(t *testing.T) {
	d := DefaultDevice()
	d.Banks = 0
	if _, err := NewEnergyModel(d); err == nil {
		t.Error("invalid device accepted")
	}
}

// Background power must be monotone in clock across the whole ladder.
func TestBackgroundMonotone(t *testing.T) {
	m := newModel(t)
	prev := 0.0
	for _, f := range freq.Ladder(200, 800, 50) {
		p, err := m.BackgroundPowerW(f)
		if err != nil {
			t.Fatalf("BackgroundPowerW(%v): %v", f, err)
		}
		if p < prev {
			t.Errorf("background power decreased at %v", f)
		}
		prev = p
	}
}
