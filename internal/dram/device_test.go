package dram

import (
	"math"
	"testing"

	"mcdvfs/internal/freq"
)

func TestDefaultDeviceValid(t *testing.T) {
	if err := DefaultDevice().Validate(); err != nil {
		t.Fatalf("default device invalid: %v", err)
	}
}

func TestValidateCatchesBadDevices(t *testing.T) {
	mk := func(mut func(*Device)) Device {
		d := DefaultDevice()
		mut(&d)
		return d
	}
	cases := []struct {
		name string
		dev  Device
	}{
		{"zero banks", mk(func(d *Device) { d.Banks = 0 })},
		{"zero tRCD", mk(func(d *Device) { d.TRCDns = 0 })},
		{"refresh interval below tRFC", mk(func(d *Device) { d.TREFIns = d.TRFCns })},
		{"inverted clock range", mk(func(d *Device) { d.FMax = d.FMin - 1 })},
		{"negative activate energy", mk(func(d *Device) { d.EActPreJ = -1 })},
		{"negative background", mk(func(d *Device) { d.PBgStaticW = -0.1 })},
	}
	for _, c := range cases {
		if err := c.dev.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad device", c.name)
		}
	}
}

func TestBurstScalesInverselyWithClock(t *testing.T) {
	d := DefaultDevice()
	b800 := d.BurstNS(800)
	b200 := d.BurstNS(200)
	if math.Abs(b200/b800-4) > 1e-9 {
		t.Errorf("burst(200)/burst(800) = %v, want 4", b200/b800)
	}
	// BL8 DDR at 800 MHz: 4 clocks of 1.25 ns = 5 ns.
	if math.Abs(b800-5) > 1e-9 {
		t.Errorf("burst at 800MHz = %v ns, want 5", b800)
	}
}

func TestPeakBandwidthProportionalToClock(t *testing.T) {
	d := DefaultDevice()
	bw800 := d.PeakBandwidthBps(800)
	bw400 := d.PeakBandwidthBps(400)
	if math.Abs(bw800/bw400-2) > 1e-12 {
		t.Errorf("bandwidth not proportional to clock: %v vs %v", bw800, bw400)
	}
	// x32 DDR at 800 MHz = 6.4 GB/s.
	if math.Abs(bw800-6.4e9) > 1 {
		t.Errorf("peak bandwidth at 800MHz = %v, want 6.4e9", bw800)
	}
}

func TestRowMissSlowerThanRowHit(t *testing.T) {
	d := DefaultDevice()
	for _, f := range freq.Ladder(200, 800, 100) {
		if d.RowMissNS(f) <= d.RowHitNS(f) {
			t.Errorf("row miss not slower than hit at %v", f)
		}
	}
}

func TestLatencyDecreasesWithClock(t *testing.T) {
	d := DefaultDevice()
	prevHit, prevMiss := math.Inf(1), math.Inf(1)
	for _, f := range freq.Ladder(200, 800, 100) {
		hit, miss := d.RowHitNS(f), d.RowMissNS(f)
		if hit >= prevHit || miss >= prevMiss {
			t.Errorf("latency not strictly decreasing at %v: hit %v (prev %v), miss %v (prev %v)",
				f, hit, prevHit, miss, prevMiss)
		}
		prevHit, prevMiss = hit, miss
	}
}

func TestTimingAtRoundsUp(t *testing.T) {
	d := DefaultDevice()
	tm, err := d.TimingAt(800) // period 1.25 ns
	if err != nil {
		t.Fatalf("TimingAt: %v", err)
	}
	// tRCD = 18 ns / 1.25 = 14.4 -> 15 cycles.
	if tm.TRCD != 15 {
		t.Errorf("tRCD cycles at 800MHz = %d, want 15", tm.TRCD)
	}
	// tCAS = 15 ns / 1.25 = 12 exactly.
	if tm.TCAS != 12 {
		t.Errorf("tCAS cycles at 800MHz = %d, want 12", tm.TCAS)
	}
	if tm.Burst != 4 {
		t.Errorf("burst cycles = %d, want 4", tm.Burst)
	}
}

func TestTimingAtPreservesNSWithinOneCycle(t *testing.T) {
	d := DefaultDevice()
	for _, f := range freq.Ladder(200, 800, 100) {
		tm, err := d.TimingAt(f)
		if err != nil {
			t.Fatalf("TimingAt(%v): %v", f, err)
		}
		period := f.PeriodNS()
		checks := []struct {
			name   string
			cycles int
			ns     float64
		}{
			{"tRCD", tm.TRCD, d.TRCDns},
			{"tRP", tm.TRP, d.TRPns},
			{"tCAS", tm.TCAS, d.TCASns},
			{"tRAS", tm.TRAS, d.TRASns},
			{"tRFC", tm.TRFC, d.TRFCns},
		}
		for _, c := range checks {
			got := float64(c.cycles) * period
			if got < c.ns-1e-9 || got > c.ns+period+1e-9 {
				t.Errorf("%v at %v: %v ns not in [%v, %v+period]", c.name, f, got, c.ns, c.ns)
			}
		}
	}
}

func TestCheckClock(t *testing.T) {
	d := DefaultDevice()
	if err := d.CheckClock(500); err != nil {
		t.Errorf("CheckClock(500): %v", err)
	}
	if err := d.CheckClock(100); err == nil {
		t.Error("CheckClock(100) should fail below FMin")
	}
	if err := d.CheckClock(900); err == nil {
		t.Error("CheckClock(900) should fail above FMax")
	}
}

func TestRefreshOverheadSmall(t *testing.T) {
	d := DefaultDevice()
	oh := d.RefreshOverhead()
	if oh <= 0 || oh > 0.1 {
		t.Errorf("refresh overhead = %v, want small positive fraction", oh)
	}
}
