package dram

import (
	"fmt"
	"sort"

	"mcdvfs/internal/freq"
)

// SchedulerPolicy selects how the command engine orders waiting requests.
type SchedulerPolicy int

const (
	// FCFS services requests strictly in arrival order.
	FCFS SchedulerPolicy = iota
	// FRFCFS (first-ready, first-come-first-served) prefers row hits over
	// older row misses within a bounded reorder window — the standard
	// open-page controller optimization.
	FRFCFS
)

// String names the policy.
func (p SchedulerPolicy) String() string {
	if p == FRFCFS {
		return "fr-fcfs"
	}
	return "fcfs"
}

// ScheduledEngine wraps the command-level Engine with a request queue and
// a scheduling policy. Requests are enqueued in arrival order; Drain
// services them respecting the policy: FR-FCFS may promote a request that
// hits the currently open row of its bank ahead of older conflicting
// requests, as long as both are already waiting (a request can never be
// serviced before it arrives).
type ScheduledEngine struct {
	eng    *Engine
	policy SchedulerPolicy
	window int
	queue  []Request
}

// NewScheduledEngine builds a scheduled engine. window bounds how far
// FR-FCFS may look past the oldest request (typical controllers: 8-32
// entries); it is ignored for FCFS.
func NewScheduledEngine(dev Device, clock freq.MHz, policy SchedulerPolicy, window int) (*ScheduledEngine, error) {
	if policy != FCFS && policy != FRFCFS {
		return nil, fmt.Errorf("dram: unknown scheduler policy %d", policy)
	}
	if policy == FRFCFS && window < 1 {
		return nil, fmt.Errorf("dram: FR-FCFS window %d < 1", window)
	}
	eng, err := NewEngine(dev, clock)
	if err != nil {
		return nil, err
	}
	return &ScheduledEngine{eng: eng, policy: policy, window: window}, nil
}

// Enqueue adds requests to the queue. Arrival order within the queue is
// preserved; arrivals must be non-decreasing.
func (s *ScheduledEngine) Enqueue(reqs ...Request) error {
	for _, r := range reqs {
		if n := len(s.queue); n > 0 && r.ArrivalNS < s.queue[n-1].ArrivalNS {
			return fmt.Errorf("dram: enqueue out of arrival order")
		}
		s.queue = append(s.queue, r)
	}
	return nil
}

// Drain services every queued request under the policy and returns the
// engine statistics.
func (s *ScheduledEngine) Drain() (EngineStats, error) {
	for len(s.queue) > 0 {
		idx := s.pickNext()
		req := s.queue[idx]
		if _, err := s.eng.Service(req); err != nil {
			return EngineStats{}, err
		}
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
	}
	return s.eng.Stats(), nil
}

// pickNext returns the queue index to service next. A request may only be
// promoted if it has already arrived by the time the controller makes the
// decision (no time travel): the decision time is when the previous
// command stream frees up, or the oldest request's arrival, whichever is
// later.
func (s *ScheduledEngine) pickNext() int {
	if s.policy == FCFS || len(s.queue) == 1 {
		return 0
	}
	decisionNS := s.queue[0].ArrivalNS
	if s.eng.lastFinish > decisionNS {
		decisionNS = s.eng.lastFinish
	}
	limit := s.window
	if limit > len(s.queue) {
		limit = len(s.queue)
	}
	// First-ready: the oldest waiting request within the window whose
	// bank has its row open. Fall back to the oldest request.
	for i := 0; i < limit; i++ {
		r := s.queue[i]
		if r.ArrivalNS > decisionNS {
			break // later entries have not arrived yet either
		}
		if s.eng.bankOpenRow[r.Bank] == r.Row {
			return i
		}
	}
	return 0
}

// Stats exposes the underlying engine statistics.
func (s *ScheduledEngine) Stats() EngineStats { return s.eng.Stats() }

// Pending returns the queued request count.
func (s *ScheduledEngine) Pending() int { return len(s.queue) }

// SortRequestsByArrival is a helper for building test streams.
func SortRequestsByArrival(reqs []Request) {
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].ArrivalNS < reqs[j].ArrivalNS })
}
