package dram

import (
	"fmt"
	"math"

	"mcdvfs/internal/freq"
)

// PowerDown describes the device's low-power state machine, after the
// active low-power modes of MemScale (the paper's reference [11]): between
// accesses the controller can move the DRAM into a power-down state whose
// background power is a fraction of active standby, paying an entry/exit
// latency each round trip.
type PowerDown struct {
	// BackgroundFrac is the power-down background power as a fraction of
	// the clocked standby power (static power is unaffected).
	BackgroundFrac float64
	// EntryNS and ExitNS are the state-change latencies.
	EntryNS float64
	ExitNS  float64
}

// DefaultPowerDown returns LPDDR3-representative fast power-down
// parameters.
func DefaultPowerDown() PowerDown {
	return PowerDown{BackgroundFrac: 0.3, EntryNS: 15, ExitNS: 15}
}

// Validate reports the first non-physical parameter.
func (p PowerDown) Validate() error {
	switch {
	case p.BackgroundFrac < 0 || p.BackgroundFrac > 1:
		return fmt.Errorf("dram: power-down background fraction %v outside [0,1]", p.BackgroundFrac)
	case p.EntryNS < 0 || p.ExitNS < 0:
		return fmt.Errorf("dram: negative power-down latency")
	}
	return nil
}

// IdleSavings estimates the fraction of *clocked background* energy a
// power-down policy recovers under Poisson access arrivals with the given
// rate (accesses per ns) at clock f.
//
// The controller enters power-down whenever a gap exceeds the round-trip
// cost; under exponential gaps of mean 1/rate, the probability that a gap
// exceeds the break-even threshold is exp(-rate·threshold), and within
// such gaps the expected usable fraction accounts for the entry/exit time.
// The return value is in [0, 1 - BackgroundFrac].
func (m *EnergyModel) IdleSavings(pd PowerDown, accessPerNS float64) (float64, error) {
	if err := pd.Validate(); err != nil {
		return 0, err
	}
	if accessPerNS < 0 || math.IsNaN(accessPerNS) || math.IsInf(accessPerNS, 0) {
		return 0, fmt.Errorf("dram: invalid access rate %v", accessPerNS)
	}
	maxSave := 1 - pd.BackgroundFrac
	if accessPerNS == 0 { //lint:allow floateq zero is the exact fully-idle sentinel
		return maxSave, nil // fully idle: always powered down
	}
	roundTrip := pd.EntryNS + pd.ExitNS
	// Fraction of total time spent in gaps longer than the round trip,
	// minus the round-trip overhead paid once per such gap. For an
	// exponential gap G with rate λ: E[(G - rt)·1{G > rt}] = e^{-λ·rt}/λ,
	// and total time per access ≈ 1/λ (+ service, ignored: service time is
	// active anyway).
	usableFrac := math.Exp(-accessPerNS * roundTrip)
	savings := maxSave * usableFrac
	if savings < 0 {
		savings = 0
	}
	return savings, nil
}

// EnergyWithPowerDown is Energy with the clocked background reduced by the
// power-down policy under the interval's average access rate.
func (m *EnergyModel) EnergyWithPowerDown(f freq.MHz, counts Counts, durationNS float64, pd PowerDown) (float64, error) {
	base, err := m.Energy(f, counts, durationNS)
	if err != nil {
		return 0, err
	}
	rate := 0.0
	if durationNS > 0 {
		// Counts are in bursts; accesses are line transfers.
		rate = float64(counts.Accesses()) / float64(m.dev.LineBursts()) / durationNS
	}
	savingsFrac, err := m.IdleSavings(pd, rate)
	if err != nil {
		return 0, err
	}
	clocked := m.dev.PBgClockedW * float64(f/m.dev.FMax)
	saved := clocked * savingsFrac * durationNS * 1e-9
	return base - saved, nil
}
