package dram

// Equivalence suite pinning EnergyCoeffs to EnergyModel.Energy bit-for-bit,
// plus the boundary behaviour of the centralized count rounding rule.

import (
	"math"
	"testing"

	"mcdvfs/internal/freq"
)

func TestEnergyCoeffsMatchModel(t *testing.T) {
	m, err := NewEnergyModel(DefaultDevice())
	if err != nil {
		t.Fatal(err)
	}
	countCases := []Counts{
		{},
		{Activates: 120, Reads: 900, Writes: 300},
		{Activates: 1, Reads: 0, Writes: 1, Refreshes: 7},
		{Activates: 1 << 20, Reads: 1 << 22, Writes: 1 << 21},
	}
	for _, f := range freq.FineSpace().MemLadder() {
		c, err := m.CoeffsAt(f)
		if err != nil {
			t.Fatalf("CoeffsAt(%v): %v", f, err)
		}
		for _, counts := range countCases {
			for _, durNS := range []float64{0, 1, 2.5e6, 8e9} {
				want, err := m.Energy(f, counts, durNS)
				if err != nil {
					t.Fatalf("Energy(%v, %+v, %v): %v", f, counts, durNS, err)
				}
				if got := c.EnergyJ(counts, durNS); got != want {
					t.Errorf("f=%v counts=%+v dur=%v: coeffs energy %v != model %v",
						f, counts, durNS, got, want)
				}
			}
		}
	}
}

func TestEnergyCoeffsAtRejectsBadClock(t *testing.T) {
	m, err := NewEnergyModel(DefaultDevice())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CoeffsAt(50); err == nil {
		t.Error("under-range clock accepted")
	}
}

func TestRoundCount(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0},
		{0.4999999, 0},
		{0.5, 1}, // half away from zero, matching the old int(x+0.5) here
		{1.5, 2},
		{2.4999999999, 2},
		{2.5000000001, 3},
		{1e9 + 0.5, 1e9 + 1},
		// The case the old idiom got wrong: 2^52+1 is exactly representable,
		// but (2^52+1)+0.5 rounds to nearest-even = 2^52+2, so int(x+0.5)
		// returned 2^52+2 for an exact integer input. math.Round is exact.
		{1 << 52, 1 << 52},
		{(1 << 52) + 1, (1 << 52) + 1},
	}
	for _, c := range cases {
		if got := RoundCount(c.x); got != c.want {
			t.Errorf("RoundCount(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	// Pin the divergence itself so the rationale stays true: the old idiom
	// really does mis-round this input. Go constant arithmetic is exact, so
	// the addition must happen in a runtime float64.
	x := float64((1 << 52) + 1)
	if old := int(x + 0.5); old == (1<<52)+1 {
		t.Error("int(x+0.5) no longer mis-rounds 2^52+1; RoundCount's rationale comment is stale")
	}
	if math.Round(x) != x {
		t.Error("math.Round not exact at 2^52+1")
	}
}
