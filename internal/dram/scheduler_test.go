package dram

import (
	"testing"

	"mcdvfs/internal/rng"
)

func TestScheduledEngineValidation(t *testing.T) {
	dev := DefaultDevice()
	if _, err := NewScheduledEngine(dev, 800, SchedulerPolicy(9), 8); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewScheduledEngine(dev, 800, FRFCFS, 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewScheduledEngine(dev, 1600, FCFS, 8); err == nil {
		t.Error("out-of-range clock accepted")
	}
}

func TestEnqueueOrdering(t *testing.T) {
	s, err := NewScheduledEngine(DefaultDevice(), 800, FCFS, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(Request{ArrivalNS: 10, Bank: 0, Row: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(Request{ArrivalNS: 5, Bank: 0, Row: 1}); err == nil {
		t.Error("out-of-order enqueue accepted")
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
}

func TestFCFSMatchesPlainEngine(t *testing.T) {
	dev := DefaultDevice()
	reqs := []Request{
		{ArrivalNS: 0, Bank: 0, Row: 1},
		{ArrivalNS: 5, Bank: 0, Row: 2},
		{ArrivalNS: 10, Bank: 1, Row: 1},
		{ArrivalNS: 15, Bank: 0, Row: 1},
	}
	plain, err := NewEngine(dev, 800)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.ServiceAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewScheduledEngine(dev, 800, FCFS, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Enqueue(reqs...); err != nil {
		t.Fatal(err)
	}
	got, err := sched.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if got.SumLatencyNS != want.SumLatencyNS || got.RowHits != want.RowHits {
		t.Errorf("FCFS scheduled engine diverged: %+v vs %+v", got, want)
	}
}

// frfcfsStream builds a bursty stream with interleaved rows in one bank so
// reordering has row hits to harvest: row A, row B, row A, row B... all
// arriving together.
func frfcfsStream(n int) []Request {
	var reqs []Request
	for i := 0; i < n; i++ {
		reqs = append(reqs, Request{ArrivalNS: float64(i), Bank: 0, Row: 1 + i%2})
	}
	return reqs
}

func TestFRFCFSImprovesRowHits(t *testing.T) {
	dev := DefaultDevice()
	run := func(policy SchedulerPolicy) EngineStats {
		s, err := NewScheduledEngine(dev, 800, policy, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Enqueue(frfcfsStream(32)...); err != nil {
			t.Fatal(err)
		}
		st, err := s.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	fcfs := run(FCFS)
	frfcfs := run(FRFCFS)
	if frfcfs.RowHits <= fcfs.RowHits {
		t.Errorf("FR-FCFS row hits %d not above FCFS %d", frfcfs.RowHits, fcfs.RowHits)
	}
	if frfcfs.AvgLatencyNS() >= fcfs.AvgLatencyNS() {
		t.Errorf("FR-FCFS avg latency %.1f not below FCFS %.1f",
			frfcfs.AvgLatencyNS(), fcfs.AvgLatencyNS())
	}
	// Both service every request.
	if frfcfs.Requests != fcfs.Requests || frfcfs.Requests != 32 {
		t.Errorf("request counts: %d vs %d", frfcfs.Requests, fcfs.Requests)
	}
}

func TestFRFCFSNeverServicesFutureRequests(t *testing.T) {
	// A row-hit candidate that has not arrived yet must not be promoted:
	// with widely spaced arrivals FR-FCFS degenerates to FCFS.
	dev := DefaultDevice()
	var reqs []Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, Request{ArrivalNS: float64(i) * 10_000, Bank: 0, Row: 1 + i%2})
	}
	run := func(policy SchedulerPolicy) EngineStats {
		s, err := NewScheduledEngine(dev, 800, policy, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Enqueue(reqs...); err != nil {
			t.Fatal(err)
		}
		st, err := s.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	fcfs := run(FCFS)
	frfcfs := run(FRFCFS)
	if frfcfs.SumLatencyNS != fcfs.SumLatencyNS {
		t.Errorf("sparse stream: FR-FCFS (%.1f) diverged from FCFS (%.1f) — promoted a future request",
			frfcfs.SumLatencyNS, fcfs.SumLatencyNS)
	}
}

func TestFRFCFSWindowBoundsReordering(t *testing.T) {
	// With window 1, FR-FCFS can only ever pick the oldest request.
	dev := DefaultDevice()
	s, err := NewScheduledEngine(dev, 800, FRFCFS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(frfcfsStream(16)...); err != nil {
		t.Fatal(err)
	}
	got, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := NewEngine(dev, 800)
	want, _ := plain.ServiceAll(frfcfsStream(16))
	if got.SumLatencyNS != want.SumLatencyNS {
		t.Errorf("window-1 FR-FCFS diverged from FCFS")
	}
}

func TestSortRequestsByArrival(t *testing.T) {
	src := rng.New(3)
	var reqs []Request
	for i := 0; i < 50; i++ {
		reqs = append(reqs, Request{ArrivalNS: src.Float64() * 1000, Bank: src.Intn(8), Row: src.Intn(100)})
	}
	SortRequestsByArrival(reqs)
	for i := 1; i < len(reqs); i++ {
		if reqs[i].ArrivalNS < reqs[i-1].ArrivalNS {
			t.Fatal("not sorted")
		}
	}
}
