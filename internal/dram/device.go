// Package dram models the LPDDR3 memory device used by the paper's system:
// a single-channel, one-rank part driven with an open-page policy, whose
// clock can be scaled between 200 and 800 MHz while the supply rails stay
// fixed (VDD1 = 1.8 V, VDD2 = 1.2 V).
//
// The package provides three layers:
//
//   - Device: datasheet-style parameters — timing constraints in
//     nanoseconds, burst geometry, and energy coefficients derived from
//     IDD-style currents. Timing and current parameters scale with clock
//     frequency following the approach of Micron's technical notes, which
//     the paper adopts: core timings are fixed in nanoseconds (so their
//     cycle counts change with clock), burst duration is fixed in cycles
//     (so it shrinks in nanoseconds as the clock rises), and clocked
//     standby current scales with frequency.
//   - EnergyModel: DRAMPower-style event accounting (activate/precharge
//     pairs, read/write bursts, refresh, clocked + static background).
//   - Engine (engine.go): a command-level eight-bank state machine used to
//     validate the analytic latency model in internal/memctrl.
package dram

import (
	"fmt"

	"mcdvfs/internal/freq"
)

// Device holds datasheet-style parameters for one LPDDR3 part.
type Device struct {
	Name string

	// Geometry.
	BusBytes  int // data bus width in bytes (x32 part = 4)
	Banks     int // number of banks
	RowBytes  int // page (row) size in bytes
	BurstLen  int // beats per burst (BL8)
	LineBytes int // cache-line fill granularity per access (L2 line size)

	// Core timing constraints, fixed in nanoseconds across clock scaling.
	TRCDns  float64 // activate to column command
	TRPns   float64 // precharge period
	TCASns  float64 // column access (read latency portion fixed in ns)
	TRASns  float64 // minimum row open time
	TWRns   float64 // write recovery
	TRFCns  float64 // refresh cycle time
	TREFIns float64 // average refresh interval

	// Clock range.
	FMin, FMax freq.MHz

	// Supply rails (fixed; LPDDR3 scales frequency only).
	VDD1, VDD2 freq.Volts

	// Energy coefficients (joules per event), derived from IDD currents at
	// the rated clock. Per the Micron scaling notes these are approximately
	// clock-invariant: burst current rises with clock while burst time
	// shrinks, and activate energy is set by fixed-ns core timings.
	EActPreJ  float64 // one activate+precharge pair
	ERdBurstJ float64 // one read burst (BurstLen beats)
	EWrBurstJ float64 // one write burst
	ERefJ     float64 // one all-bank refresh command

	// Background power: PBgStaticW is the clock-independent floor
	// (self-refresh-exit standby, peripheral leakage); PBgClockedW is the
	// additional clocked standby power at FMax, scaling linearly with clock.
	PBgStaticW  float64
	PBgClockedW float64
}

// DefaultDevice returns the LPDDR3 single-channel, single-rank x32 part
// emulated throughout the reproduction, with magnitudes representative of
// Micron LPDDR3 datasheets (see DESIGN.md for the calibration notes).
func DefaultDevice() Device {
	return Device{
		Name:        "LPDDR3-1600-x32-1rank",
		BusBytes:    4,
		Banks:       8,
		RowBytes:    4096,
		BurstLen:    8,
		LineBytes:   64,
		TRCDns:      18,
		TRPns:       18,
		TCASns:      15,
		TRASns:      42,
		TWRns:       15,
		TRFCns:      130,
		TREFIns:     3900,
		FMin:        freq.MemMinMHz,
		FMax:        freq.MemMaxMHz,
		VDD1:        1.8,
		VDD2:        1.2,
		EActPreJ:    8.0e-9,
		ERdBurstJ:   2.0e-9,
		EWrBurstJ:   2.2e-9,
		ERefJ:       5.0e-9,
		PBgStaticW:  0.060,
		PBgClockedW: 0.160,
	}
}

// Validate reports the first non-physical parameter, if any.
func (d Device) Validate() error {
	switch {
	case d.BusBytes <= 0 || d.Banks <= 0 || d.RowBytes <= 0 || d.BurstLen <= 0:
		return fmt.Errorf("dram: non-positive geometry in %q", d.Name)
	case d.LineBytes <= 0 || d.LineBytes%(d.BusBytes*d.BurstLen) != 0:
		return fmt.Errorf("dram: line size %d not a positive multiple of burst bytes %d in %q",
			d.LineBytes, d.BusBytes*d.BurstLen, d.Name)
	case d.TRCDns <= 0 || d.TRPns <= 0 || d.TCASns <= 0 || d.TRASns <= 0:
		return fmt.Errorf("dram: non-positive core timing in %q", d.Name)
	case d.TRFCns <= 0 || d.TREFIns <= d.TRFCns:
		return fmt.Errorf("dram: refresh interval must exceed refresh cycle in %q", d.Name)
	case d.FMin <= 0 || d.FMax < d.FMin:
		return fmt.Errorf("dram: invalid clock range [%v, %v] in %q", d.FMin, d.FMax, d.Name)
	case d.EActPreJ < 0 || d.ERdBurstJ < 0 || d.EWrBurstJ < 0 || d.ERefJ < 0:
		return fmt.Errorf("dram: negative event energy in %q", d.Name)
	case d.PBgStaticW < 0 || d.PBgClockedW < 0:
		return fmt.Errorf("dram: negative background power in %q", d.Name)
	}
	return nil
}

// CheckClock returns an error if f is outside the device's clock range.
func (d Device) CheckClock(f freq.MHz) error {
	if f < d.FMin || f > d.FMax {
		return fmt.Errorf("dram: clock %v outside [%v, %v]", f, d.FMin, d.FMax)
	}
	return nil
}

// BurstNS returns the duration of one data burst at clock f. LPDDR3 is a
// double-data-rate interface: BurstLen beats take BurstLen/2 clocks.
func (d Device) BurstNS(f freq.MHz) float64 {
	return float64(d.BurstLen) / 2 * f.PeriodNS()
}

// BurstBytes returns the bytes transferred by one burst.
func (d Device) BurstBytes() int { return d.BusBytes * d.BurstLen }

// LineBursts returns the bursts needed to move one cache line.
func (d Device) LineBursts() int { return d.LineBytes / d.BurstBytes() }

// LineTransferNS returns the data-bus time to move one cache line at clock f.
func (d Device) LineTransferNS(f freq.MHz) float64 {
	return float64(d.LineBursts()) * d.BurstNS(f)
}

// PeakBandwidthBps returns the theoretical peak data bandwidth at clock f
// in bytes per second (DDR: two beats per clock).
func (d Device) PeakBandwidthBps(f freq.MHz) float64 {
	return 2 * f.Hz() * float64(d.BusBytes)
}

// RowHitNS returns the ns latency of a row-buffer hit at clock f: the
// column access plus the full cache-line transfer.
func (d Device) RowHitNS(f freq.MHz) float64 {
	return d.TCASns + d.LineTransferNS(f)
}

// RowMissNS returns the ns latency of a row-buffer miss (conflict) at clock
// f: precharge the open row, activate the new one, then column access and
// line transfer.
func (d Device) RowMissNS(f freq.MHz) float64 {
	return d.TRPns + d.TRCDns + d.TCASns + d.LineTransferNS(f)
}

// RefreshOverhead returns the fraction of time the device is unavailable
// due to refresh (tRFC every tREFI).
func (d Device) RefreshOverhead() float64 { return d.TRFCns / d.TREFIns }

// Timing holds the device's core timing constraints converted to integer
// cycle counts at one clock, rounding up as a real controller must.
type Timing struct {
	Clock freq.MHz
	TRCD  int
	TRP   int
	TCAS  int
	TRAS  int
	TWR   int
	TRFC  int
	TREFI int
	Burst int // data bus cycles per burst
}

// TimingAt converts the ns constraints to cycles at clock f.
func (d Device) TimingAt(f freq.MHz) (Timing, error) {
	if err := d.CheckClock(f); err != nil {
		return Timing{}, err
	}
	c := func(ns float64) int {
		period := f.PeriodNS()
		n := int(ns / period)
		if float64(n)*period < ns-1e-9 {
			n++
		}
		if n < 1 {
			n = 1
		}
		return n
	}
	return Timing{
		Clock: f,
		TRCD:  c(d.TRCDns),
		TRP:   c(d.TRPns),
		TCAS:  c(d.TCASns),
		TRAS:  c(d.TRASns),
		TWR:   c(d.TWRns),
		TRFC:  c(d.TRFCns),
		TREFI: c(d.TREFIns),
		Burst: d.BurstLen / 2,
	}, nil
}
