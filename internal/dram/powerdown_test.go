package dram

import (
	"math"
	"testing"
)

func TestPowerDownValidate(t *testing.T) {
	if err := DefaultPowerDown().Validate(); err != nil {
		t.Fatalf("default power-down invalid: %v", err)
	}
	bad := []PowerDown{
		{BackgroundFrac: -0.1},
		{BackgroundFrac: 1.5},
		{BackgroundFrac: 0.3, EntryNS: -1},
		{BackgroundFrac: 0.3, ExitNS: -1},
	}
	for i, pd := range bad {
		if err := pd.Validate(); err == nil {
			t.Errorf("bad power-down %d accepted", i)
		}
	}
}

func TestIdleSavingsFullyIdle(t *testing.T) {
	m := newModel(t)
	pd := DefaultPowerDown()
	s, err := m.IdleSavings(pd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-(1-pd.BackgroundFrac)) > 1e-12 {
		t.Errorf("idle savings = %v, want %v", s, 1-pd.BackgroundFrac)
	}
}

func TestIdleSavingsDecreaseWithRate(t *testing.T) {
	m := newModel(t)
	pd := DefaultPowerDown()
	prev := math.Inf(1)
	for _, rate := range []float64{0, 0.001, 0.01, 0.05, 0.2} {
		s, err := m.IdleSavings(pd, rate)
		if err != nil {
			t.Fatal(err)
		}
		if s > prev {
			t.Errorf("savings increased at rate %v", rate)
		}
		if s < 0 || s > 1 {
			t.Errorf("savings %v outside [0,1]", s)
		}
		prev = s
	}
}

func TestIdleSavingsRejectBadInput(t *testing.T) {
	m := newModel(t)
	if _, err := m.IdleSavings(PowerDown{BackgroundFrac: 2}, 0.01); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := m.IdleSavings(DefaultPowerDown(), -1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := m.IdleSavings(DefaultPowerDown(), math.NaN()); err == nil {
		t.Error("NaN rate accepted")
	}
}

func TestEnergyWithPowerDownBounds(t *testing.T) {
	m := newModel(t)
	pd := DefaultPowerDown()
	counts := Counts{Reads: 200, Writes: 100, Activates: 60}
	duration := 1e7 // 10 ms
	base, err := m.Energy(400, counts, duration)
	if err != nil {
		t.Fatal(err)
	}
	withPD, err := m.EnergyWithPowerDown(400, counts, duration, pd)
	if err != nil {
		t.Fatal(err)
	}
	if withPD >= base {
		t.Errorf("power-down energy %v not below base %v", withPD, base)
	}
	// Savings can never exceed the whole clocked background.
	d := m.Device()
	clockedE := d.PBgClockedW * float64(freqRatio(400, d)) * duration * 1e-9
	if base-withPD > clockedE+1e-15 {
		t.Errorf("saved %v exceeds clocked background %v", base-withPD, clockedE)
	}
}

func TestEnergyWithPowerDownBusyStream(t *testing.T) {
	// A saturated stream leaves almost no usable gaps.
	m := newModel(t)
	d := m.Device()
	pd := DefaultPowerDown()
	duration := 1e6
	// One access per line-transfer-time: bus fully busy.
	accesses := duration / d.LineTransferNS(800)
	counts := Counts{Reads: int(accesses) * d.LineBursts()}
	base, _ := m.Energy(800, counts, duration)
	withPD, err := m.EnergyWithPowerDown(800, counts, duration, pd)
	if err != nil {
		t.Fatal(err)
	}
	saveFrac := (base - withPD) / base
	if saveFrac > 0.05 {
		t.Errorf("saturated stream saved %.1f%% energy; should be near zero", saveFrac*100)
	}
}

// freqRatio helps compute the clocked-background scale factor in tests.
func freqRatio(f float64, d Device) float64 { return f / float64(d.FMax) }
