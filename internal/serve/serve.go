// Package serve implements mcdvfsd, the always-on DVFS query daemon: the
// paper's decision procedure — given a workload and an energy budget, pick
// the (CPU, memory) frequency schedule minimizing runtime — exposed as an
// HTTP/JSON service instead of one-shot CLIs.
//
// The service layers on the Lab's sharded singleflight grid cache:
// identical in-flight grid requests coalesce to one collection, completed
// grids stay cached under a size-bounded LRU of benchmarks (evicted
// benchmarks are released back through Lab.Forget), collections run behind
// a bounded admission pool with a finite wait queue (saturation sheds with
// 429 + Retry-After), and /v1/optimal answers are memoized with their own
// singleflight. Every handler threads the request context, so a client
// disconnect cancels the work it owns. See DESIGN.md §8.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"mcdvfs/internal/cache/lru"
	"mcdvfs/internal/experiments"
	"mcdvfs/internal/sim"
)

// Config tunes the daemon. The zero value serves with the defaults below.
type Config struct {
	// SimConfig selects the simulated platform; nil means the default
	// calibrated configuration.
	SimConfig *sim.Config
	// CollectWorkers bounds the worker pool inside one grid collection
	// (trace.CollectOptions.Workers). Zero means GOMAXPROCS.
	CollectWorkers int
	// PoolSize is the number of grid collections allowed to run
	// concurrently. Default 2.
	PoolSize int
	// QueueDepth is how many collection admissions may wait behind a full
	// pool before requests are shed with 429. Default 8.
	QueueDepth int
	// MaxBenchmarks bounds how many benchmarks the daemon keeps
	// characterized; the least recently requested is forgotten first.
	// Default 16.
	MaxBenchmarks int
	// MemoSize bounds the /v1/optimal response memo. Default 256.
	MemoSize int
	// GridCacheDir enables the Lab's persistent grid cache.
	GridCacheDir string
	// RequestTimeout caps each request's context. Zero disables.
	RequestTimeout time.Duration
	// RetryAfter is the hint attached to 429 responses. Default 1s.
	RetryAfter time.Duration
	// CollectSpan, when set, brackets every grid-cache flight the daemon's
	// Lab owns (experiments.WithCollectSpan): called when a flight starts,
	// the returned func when it finishes. The cluster router publishes
	// in-flight keys through it so peers can wait on this node's
	// collections instead of re-collecting.
	CollectSpan func(bench, space string) (done func())
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	} else if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.MaxBenchmarks <= 0 {
		c.MaxBenchmarks = 16
	}
	if c.MemoSize <= 0 {
		c.MemoSize = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the mcdvfsd daemon: a Lab wrapped in admission control,
// eviction, memoization, and metrics, exposed over HTTP.
type Server struct {
	cfg      Config
	lab      *experiments.Lab
	pool     *pool
	met      *metrics
	benches  *lru.Cache[string, struct{}]
	optMemo  *memo[*OptimalResponse]
	mux      *http.ServeMux
	draining atomic.Bool
}

// New builds a server. The Lab is constructed here so the cache hooks
// (observer, gate, progress) and the eviction LRU are wired consistently.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		pool: newPool(cfg.PoolSize, cfg.QueueDepth),
		met:  &metrics{},
		mux:  http.NewServeMux(),
	}
	var err error
	s.benches, err = lru.New[string, struct{}](cfg.MaxBenchmarks, func(bench string, _ struct{}) {
		s.lab.Forget(bench)
		s.met.benchEvictions.Add(1)
	})
	if err != nil {
		return nil, err
	}
	s.optMemo, err = newMemo[*OptimalResponse](cfg.MemoSize)
	if err != nil {
		return nil, err
	}

	simCfg := sim.DefaultConfig()
	if cfg.SimConfig != nil {
		simCfg = *cfg.SimConfig
	}
	opts := []experiments.Option{
		experiments.WithWorkers(cfg.CollectWorkers),
		experiments.WithGridObserver(s.met.gridEvent),
		experiments.WithCollectGate(s.pool.acquire),
		experiments.WithCollectProgress(s.met.collectProgress),
	}
	if cfg.GridCacheDir != "" {
		opts = append(opts, experiments.WithGridCacheDir(cfg.GridCacheDir))
	}
	if cfg.CollectSpan != nil {
		opts = append(opts, experiments.WithCollectSpan(cfg.CollectSpan))
	}
	s.lab, err = experiments.NewLabWithConfig(simCfg, opts...)
	if err != nil {
		return nil, err
	}
	s.routes()
	return s, nil
}

// touch marks a benchmark recently used, evicting the coldest one (through
// Lab.Forget) if the LRU is over capacity.
func (s *Server) touch(bench string) { s.benches.Add(bench, struct{}{}) }

// requestCtx derives the handler context: the request's own context (so a
// client disconnect cancels work the request owns) bounded by the
// configured per-request deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return context.WithCancel(r.Context())
}

// Handler returns the instrumented root handler: every request is counted,
// the in-flight gauge tracks it, and its response class is tallied.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.requests.Add(1)
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w}
		s.mux.ServeHTTP(rec, r)
		if rec.code == 0 {
			rec.code = http.StatusOK
		}
		s.met.countResponse(rec.code)
	})
}

// Run serves on addr until ctx is cancelled, then drains: the health check
// flips to 503 for load balancers, listeners close, and in-flight requests
// get up to drain to finish. A nil error means a clean drain.
func (s *Server) Run(ctx context.Context, addr string, drain time.Duration) error {
	// No BaseContext tied to ctx: a graceful drain must let in-flight
	// requests finish, not cancel them the moment shutdown begins.
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	//lint:allow spawnescape http.Server is internally synchronized; Shutdown after ListenAndServe is its documented protocol
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	s.beginDrain()
	// The drain deadline must survive the cancellation that triggered it.
	shutCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), drain)
	defer cancel()
	return srv.Shutdown(shutCtx)
}

// beginDrain flips the server into draining mode: /healthz starts
// reporting 503 so load balancers stop routing here.
func (s *Server) beginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.met.draining.Store(1)
	}
}

// BeginDrain is the exported drain trigger for layers that own the
// server's lifecycle themselves (the cluster node flips the embedded
// server into draining as phase one of its two-phase drain, before its
// listener closes).
func (s *Server) BeginDrain() { s.beginDrain() }

// Lab exposes the daemon's Lab to layered subsystems: the cluster router
// peeks for warm replica copies, seeds grids replicated from peers, and
// shares the Lab's grid-key hash so every node in a cluster routes by an
// identical key.
func (s *Server) Lab() *experiments.Lab { return s.lab }

// AcquireCollectSlot takes one slot of the collection admission pool,
// exactly as a collecting request would: it blocks in the bounded queue
// when the pool is full, sheds with ErrSaturated when the queue is full
// too, and returns a release func on admission. Harnesses and saturation
// tests use it to occupy collection capacity deterministically — forced
// 429s without racing a real collection.
func (s *Server) AcquireCollectSlot(ctx context.Context) (func(), error) {
	return s.pool.acquire(ctx)
}
