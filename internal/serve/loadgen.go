package serve

// The closed-loop load generator behind cmd/mcdvfsload and the smoke tier:
// N clients issue requests back-to-back against a running daemon, each
// drawing its benchmark from a zipfian popularity distribution (a few hot
// benchmarks, a long cold tail — the shape that makes the coalescing and
// LRU layers earn their keep) and its endpoint from a weighted mix. All
// randomness is seeded per client, so a (seed, clients, requests) triple
// replays the identical request sequence.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mcdvfs/internal/stats"
	"mcdvfs/internal/workload"
)

// LoadMix weights the request types. Zero-valued mixes default to
// DefaultLoadMix; a weight of 0 disables that endpoint.
type LoadMix struct {
	Grid       int
	Optimal    int
	Stability  int
	Emin       int
	Benchmarks int
}

// DefaultLoadMix approximates a production query mix: mostly schedule
// decisions, some raw grids, a sprinkle of predictor and registry calls.
func DefaultLoadMix() LoadMix {
	return LoadMix{Grid: 10, Optimal: 70, Stability: 10, Emin: 5, Benchmarks: 5}
}

func (m LoadMix) total() int { return m.Grid + m.Optimal + m.Stability + m.Emin + m.Benchmarks }

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the closed-loop concurrency. Default 8.
	Clients int
	// Requests, when positive, is the total request budget split across
	// clients — the deterministic mode. When zero, clients run until
	// Duration elapses (or ctx is cancelled).
	Requests int
	// Duration bounds a Requests==0 run. Default 5s.
	Duration time.Duration
	// Seed feeds every client's generator (client i uses Seed+i).
	Seed int64
	// Mix weights the endpoints; zero value means DefaultLoadMix.
	Mix LoadMix
	// ZipfS is the zipf skew (>1; larger = hotter head). Default 1.4.
	ZipfS float64
	// Benchmarks is the popularity-ranked pool; empty means the headline
	// six.
	Benchmarks []string
	// Space and Budget parameterize grid/optimal requests.
	Space  string
	Budget float64
	// Client overrides the HTTP client (tests inject the in-process one).
	Client *http.Client
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Mix.total() == 0 {
		c.Mix = DefaultLoadMix()
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.4
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = workload.HeadlineNames()
	}
	if c.Space == "" {
		c.Space = "coarse"
	}
	if c.Budget <= 0 {
		c.Budget = 1.3
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// EndpointStats summarizes one endpoint's latencies in milliseconds.
type EndpointStats struct {
	Count  int
	Errors int // non-2xx responses
	P50    float64
	P95    float64
	P99    float64
	Max    float64
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Requests        int
	Status2xx       int
	Status4xx       int
	Status5xx       int
	Shed            int // 429 responses (coalesced into Status4xx too)
	TransportErrors int
	Endpoints       map[string]EndpointStats

	// Deltas of the daemon's own counters across the run, scraped from
	// /metrics; zero when scraping failed.
	GridRequests    int64
	GridCollections int64
	GridCacheHits   int64
	GridDiskLoads   int64
	OptimalRequests int64
	OptimalMemoHits int64
	// CoalesceHitRate is GridCacheHits / GridRequests over the run, the
	// fraction of grid demands absorbed without collecting. -1 when no
	// grid requests were observed.
	CoalesceHitRate float64
}

// sample is one completed request.
type sample struct {
	endpoint string
	status   int // 0 = transport error
	ms       float64
}

// RunLoad drives the configured load until the request budget or duration
// is exhausted, then aggregates latencies and scrapes counter deltas.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	// The scrapes use the caller's context: the run context below expires
	// with the duration, which must not kill the after-run scrape.
	scrapeCtx := ctx
	before, _ := scrapeMetrics(scrapeCtx, cfg)
	if cfg.Requests == 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	perClient := make([]int, cfg.Clients)
	if cfg.Requests > 0 {
		for i := 0; i < cfg.Requests; i++ {
			perClient[i%cfg.Clients]++
		}
	}

	results := make([][]sample, cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = runClient(ctx, cfg, id, perClient[id])
		}(i)
	}
	wg.Wait()

	report := aggregate(results)
	if after, err := scrapeMetrics(scrapeCtx, cfg); err == nil && before != nil {
		report.GridRequests = after["mcdvfsd_grid_requests_total"] - before["mcdvfsd_grid_requests_total"]
		report.GridCollections = after["mcdvfsd_grid_collections_total"] - before["mcdvfsd_grid_collections_total"]
		report.GridCacheHits = after["mcdvfsd_grid_cache_hits_total"] - before["mcdvfsd_grid_cache_hits_total"]
		report.GridDiskLoads = after["mcdvfsd_grid_disk_loads_total"] - before["mcdvfsd_grid_disk_loads_total"]
		report.OptimalRequests = after["mcdvfsd_optimal_requests_total"] - before["mcdvfsd_optimal_requests_total"]
		report.OptimalMemoHits = after["mcdvfsd_optimal_memo_hits_total"] - before["mcdvfsd_optimal_memo_hits_total"]
	}
	if report.GridRequests > 0 {
		report.CoalesceHitRate = float64(report.GridCacheHits) / float64(report.GridRequests)
	} else {
		report.CoalesceHitRate = -1
	}
	return report, nil
}

// runClient is one closed loop: pick, send, record, repeat.
func runClient(ctx context.Context, cfg LoadConfig, id, budget int) []sample {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
	var zipf *rand.Zipf
	if len(cfg.Benchmarks) > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Benchmarks)-1))
	}
	pickBench := func() string {
		if zipf == nil {
			return cfg.Benchmarks[0]
		}
		return cfg.Benchmarks[zipf.Uint64()]
	}

	var samples []sample
	for n := 0; budget == 0 || n < budget; n++ {
		if ctx.Err() != nil {
			break
		}
		endpoint, method, path, body := nextRequest(cfg, rng, pickBench)
		start := time.Now()
		status := issue(ctx, cfg, method, path, body)
		elapsed := time.Since(start)
		if status == 0 && ctx.Err() != nil {
			break // shutdown race, not a transport failure
		}
		samples = append(samples, sample{
			endpoint: endpoint,
			status:   status,
			ms:       float64(elapsed.Nanoseconds()) / 1e6,
		})
	}
	return samples
}

// nextRequest draws one request from the mix.
func nextRequest(cfg LoadConfig, rng *rand.Rand, pickBench func() string) (endpoint, method, path string, body []byte) {
	marshal := func(v any) []byte {
		b, _ := json.Marshal(v)
		return b
	}
	roll := rng.Intn(cfg.Mix.total())
	switch m := cfg.Mix; {
	case roll < m.Grid:
		return "grid", http.MethodPost, "/v1/grid",
			marshal(GridRequest{Benchmark: pickBench(), Space: cfg.Space})
	case roll < m.Grid+m.Optimal:
		return "optimal", http.MethodPost, "/v1/optimal",
			marshal(OptimalRequest{Benchmark: pickBench(), Space: cfg.Space, Budget: cfg.Budget})
	case roll < m.Grid+m.Optimal+m.Stability:
		return "stability", http.MethodPost, "/v1/stability",
			marshal(StabilityRequest{History: []int{4, 6, 5}, Current: rng.Intn(4)})
	case roll < m.Grid+m.Optimal+m.Stability+m.Emin:
		return "emin", http.MethodPost, "/v1/emin",
			marshal(EminRequest{Predictor: "ewma", Alpha: 0.3, Observations: []float64{1.1, 1.05, 1.2}})
	default:
		return "benchmarks", http.MethodGet, "/v1/benchmarks", nil
	}
}

// issue sends one request and returns the status code, 0 on transport
// failure. Response bodies are drained so connections are reused.
func issue(ctx context.Context, cfg LoadConfig, method, path string, body []byte) int {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, cfg.BaseURL+path, rd)
	if err != nil {
		return 0
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close() // best effort: the status code was already read
	return resp.StatusCode
}

// aggregate merges per-client samples into the report.
func aggregate(results [][]sample) *LoadReport {
	r := &LoadReport{Endpoints: make(map[string]EndpointStats)}
	lat := make(map[string][]float64)
	for _, clientSamples := range results {
		for _, s := range clientSamples {
			r.Requests++
			switch {
			case s.status == 0:
				r.TransportErrors++
			case s.status >= 500:
				r.Status5xx++
			case s.status >= 400:
				r.Status4xx++
			default:
				r.Status2xx++
			}
			if s.status == http.StatusTooManyRequests {
				r.Shed++
			}
			es := r.Endpoints[s.endpoint]
			es.Count++
			if s.status == 0 || s.status >= 300 {
				es.Errors++
			}
			r.Endpoints[s.endpoint] = es
			lat[s.endpoint] = append(lat[s.endpoint], s.ms)
		}
	}
	for ep, xs := range lat {
		es := r.Endpoints[ep]
		es.P50 = quantileOrZero(xs, 0.50)
		es.P95 = quantileOrZero(xs, 0.95)
		es.P99 = quantileOrZero(xs, 0.99)
		for _, x := range xs {
			if x > es.Max {
				es.Max = x
			}
		}
		r.Endpoints[ep] = es
	}
	return r
}

func quantileOrZero(xs []float64, q float64) float64 {
	v, err := stats.Quantile(xs, q)
	if err != nil {
		return 0
	}
	return v
}

// scrapeMetrics fetches and parses the daemon's /metrics counters.
func scrapeMetrics(ctx context.Context, cfg LoadConfig) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	//lint:allow errflow read-only response body; scan errors surface through the Scanner below
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: /metrics returned %d", resp.StatusCode)
	}
	out := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, sc.Err()
}

// String renders the report as the table mcdvfsload prints.
func (r *LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests           %d  (2xx %d, 4xx %d, 5xx %d, shed %d, transport-err %d)\n",
		r.Requests, r.Status2xx, r.Status4xx, r.Status5xx, r.Shed, r.TransportErrors)
	eps := make([]string, 0, len(r.Endpoints))
	for ep := range r.Endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	fmt.Fprintf(&b, "%-12s %8s %8s %9s %9s %9s %9s\n", "endpoint", "count", "errors", "p50 ms", "p95 ms", "p99 ms", "max ms")
	for _, ep := range eps {
		es := r.Endpoints[ep]
		fmt.Fprintf(&b, "%-12s %8d %8d %9.2f %9.2f %9.2f %9.2f\n",
			ep, es.Count, es.Errors, es.P50, es.P95, es.P99, es.Max)
	}
	if r.GridRequests > 0 {
		fmt.Fprintf(&b, "grid cache         %d requests: %d collections, %d coalesced/cached hits, %d disk loads (hit rate %.1f%%)\n",
			r.GridRequests, r.GridCollections, r.GridCacheHits, r.GridDiskLoads, 100*r.CoalesceHitRate)
	}
	if r.OptimalRequests > 0 {
		fmt.Fprintf(&b, "optimal memo       %d requests, %d memo hits (%.1f%%)\n",
			r.OptimalRequests, r.OptimalMemoHits, 100*float64(r.OptimalMemoHits)/float64(r.OptimalRequests))
	}
	return b.String()
}
