package serve

// The closed-loop load generator behind cmd/mcdvfsload and the smoke tier:
// N clients issue requests back-to-back against a running daemon, each
// drawing its benchmark from a zipfian popularity distribution (a few hot
// benchmarks, a long cold tail — the shape that makes the coalescing and
// LRU layers earn their keep) and its endpoint from a weighted mix. All
// randomness is seeded per client, so a (seed, clients, requests) triple
// replays the identical request sequence.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mcdvfs/internal/stats"
	"mcdvfs/internal/workload"
)

// LoadMix weights the request types. Zero-valued mixes default to
// DefaultLoadMix; a weight of 0 disables that endpoint.
type LoadMix struct {
	Grid       int
	Optimal    int
	Stability  int
	Emin       int
	Benchmarks int
}

// DefaultLoadMix approximates a production query mix: mostly schedule
// decisions, some raw grids, a sprinkle of predictor and registry calls.
func DefaultLoadMix() LoadMix {
	return LoadMix{Grid: 10, Optimal: 70, Stability: 10, Emin: 5, Benchmarks: 5}
}

func (m LoadMix) total() int { return m.Grid + m.Optimal + m.Stability + m.Emin + m.Benchmarks }

// Target-selection policies for multi-node runs.
const (
	// PolicyRoundRobin rotates each client through the target list
	// (client i starts at target i, so clients spread immediately).
	PolicyRoundRobin = "round-robin"
	// PolicyRandom picks a uniformly random target per request from the
	// client's seeded generator — the "users hit a random node" shape.
	PolicyRandom = "random"
)

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Targets, when non-empty, is the multi-node target list: each request
	// picks one node according to Policy, and the report's cache counters
	// are cluster-wide sums of per-node /metrics deltas. BaseURL is
	// ignored then.
	Targets []string
	// Policy selects the per-request target for multi-target runs:
	// PolicyRoundRobin (default) or PolicyRandom.
	Policy string
	// Clients is the closed-loop concurrency. Default 8.
	Clients int
	// Requests, when positive, is the total request budget split across
	// clients — the deterministic mode. When zero, clients run until
	// Duration elapses (or ctx is cancelled).
	Requests int
	// Duration bounds a Requests==0 run. Default 5s.
	Duration time.Duration
	// Seed feeds every client's generator (client i uses Seed+i).
	Seed int64
	// Mix weights the endpoints; zero value means DefaultLoadMix.
	Mix LoadMix
	// ZipfS is the zipf skew (>1; larger = hotter head). Default 1.4.
	ZipfS float64
	// Benchmarks is the popularity-ranked pool; empty means the headline
	// six.
	Benchmarks []string
	// Space and Budget parameterize grid/optimal requests.
	Space  string
	Budget float64
	// RetryAfterMax caps how long a shed (429) response's Retry-After hint
	// is honored before the client's next request; the actual backoff is
	// jittered within the cap so a shed cohort does not re-arrive in
	// lockstep. Default 2s; negative disables the backoff entirely
	// (the pre-PR-8 hammer behavior).
	RetryAfterMax time.Duration
	// Client overrides the HTTP client (tests inject the in-process one).
	Client *http.Client
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Mix.total() == 0 {
		c.Mix = DefaultLoadMix()
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.4
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = workload.HeadlineNames()
	}
	if c.Space == "" {
		c.Space = "coarse"
	}
	if c.Budget <= 0 {
		c.Budget = 1.3
	}
	if len(c.Targets) == 0 {
		c.Targets = []string{c.BaseURL}
	}
	if c.Policy == "" {
		c.Policy = PolicyRoundRobin
	}
	if c.RetryAfterMax == 0 {
		c.RetryAfterMax = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// EndpointStats summarizes one endpoint's latencies in milliseconds.
type EndpointStats struct {
	Count  int
	Errors int // non-2xx responses
	P50    float64
	P95    float64
	P99    float64
	Max    float64
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Requests        int
	Status2xx       int
	Status4xx       int
	Status5xx       int
	Shed            int // 429 responses (coalesced into Status4xx too)
	TransportErrors int
	Endpoints       map[string]EndpointStats

	// Deltas of the daemons' own counters across the run, scraped from
	// each target's /metrics and summed; zero when every scrape failed.
	// Against a cluster these are cluster-wide totals.
	GridRequests    int64
	GridCollections int64
	GridCacheHits   int64
	GridDiskLoads   int64
	OptimalRequests int64
	OptimalMemoHits int64
	// CoalesceHitRate is GridCacheHits / GridRequests over the run, the
	// fraction of grid demands absorbed without collecting. -1 when no
	// grid requests were observed.
	CoalesceHitRate float64
	// NodeGridCollections breaks GridCollections down per target, the
	// sharding-balance view of a multi-target run. Only targets whose
	// scrapes succeeded appear.
	NodeGridCollections map[string]int64
	// ScrapeWarnings records /metrics scrape failures, one entry per
	// affected target and phase. A dead /metrics endpoint must read as
	// "counters unavailable", never as a 0% coalescing hit rate — and in
	// a multi-target run the warning names WHICH node was dark.
	ScrapeWarnings []ScrapeWarning
}

// ScrapeWarning is one failed /metrics scrape, attributed to the target
// URL and the run phase so a dark node is identifiable from the summary.
type ScrapeWarning struct {
	// Target is the node base URL whose scrape failed.
	Target string
	// Phase is "before" or "after": which end of the run lost counters.
	Phase string
	// Err is the scrape failure.
	Err string
}

func (w ScrapeWarning) String() string {
	return fmt.Sprintf("%s-run /metrics scrape of %s failed: %s (cache counters for this node unavailable)",
		w.Phase, w.Target, w.Err)
}

// sample is one completed request.
type sample struct {
	endpoint string
	status   int // 0 = transport error
	ms       float64
}

// RunLoad drives the configured load until the request budget or duration
// is exhausted, then aggregates latencies and scrapes counter deltas from
// every target.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	switch cfg.Policy {
	case PolicyRoundRobin, PolicyRandom:
	default:
		return nil, fmt.Errorf("serve: unknown target policy %q (use %s or %s)",
			cfg.Policy, PolicyRoundRobin, PolicyRandom)
	}
	// The scrapes use the caller's context: the run context below expires
	// with the duration, which must not kill the after-run scrape.
	scrapeCtx := ctx
	before, warns := scrapeTargets(scrapeCtx, cfg, "before")
	if cfg.Requests == 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	perClient := make([]int, cfg.Clients)
	if cfg.Requests > 0 {
		for i := 0; i < cfg.Requests; i++ {
			perClient[i%cfg.Clients]++
		}
	}

	results := make([][]sample, cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		//lint:allow spawnescape each client writes only its own results slot; wg.Wait orders the reads
		go func(id int) {
			defer wg.Done()
			results[id] = runClient(ctx, cfg, id, perClient[id])
		}(i)
	}
	wg.Wait()

	report := aggregate(results)
	after, afterWarns := scrapeTargets(scrapeCtx, cfg, "after")
	report.ScrapeWarnings = append(warns, afterWarns...)
	report.NodeGridCollections = make(map[string]int64)
	for _, target := range cfg.Targets {
		b, okB := before[target]
		a, okA := after[target]
		if !okB || !okA {
			continue // already warned; counters for this node are unknown
		}
		delta := func(name string) int64 { return a[name] - b[name] }
		report.GridRequests += delta("mcdvfsd_grid_requests_total")
		report.GridCacheHits += delta("mcdvfsd_grid_cache_hits_total")
		report.GridDiskLoads += delta("mcdvfsd_grid_disk_loads_total")
		report.OptimalRequests += delta("mcdvfsd_optimal_requests_total")
		report.OptimalMemoHits += delta("mcdvfsd_optimal_memo_hits_total")
		collections := delta("mcdvfsd_grid_collections_total")
		report.GridCollections += collections
		report.NodeGridCollections[target] = collections
	}
	if report.GridRequests > 0 {
		report.CoalesceHitRate = float64(report.GridCacheHits) / float64(report.GridRequests)
	} else {
		report.CoalesceHitRate = -1
	}
	return report, nil
}

// scrapeTargets scrapes every target's /metrics, returning per-target
// counters plus one attributed warning per failed scrape — a dead
// endpoint must be reported against its URL, not silently folded into
// zero deltas or an anonymous aggregate.
func scrapeTargets(ctx context.Context, cfg LoadConfig, phase string) (map[string]map[string]int64, []ScrapeWarning) {
	out := make(map[string]map[string]int64, len(cfg.Targets))
	var warns []ScrapeWarning
	for _, target := range cfg.Targets {
		m, err := scrapeMetrics(ctx, cfg.Client, target)
		if err != nil {
			warns = append(warns, ScrapeWarning{Target: target, Phase: phase, Err: err.Error()})
			continue
		}
		out[target] = m
	}
	return out, warns
}

// runClient is one closed loop: pick, send, record, repeat. The request
// sequence draws from rng; 429 backoff jitter draws from a separate
// generator so honoring Retry-After never perturbs which requests a
// (seed, clients, requests) triple replays.
func runClient(ctx context.Context, cfg LoadConfig, id, budget int) []sample {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
	jitter := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed1e55 + int64(id)))
	var zipf *rand.Zipf
	if len(cfg.Benchmarks) > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Benchmarks)-1))
	}
	pickBench := func() string {
		if zipf == nil {
			return cfg.Benchmarks[0]
		}
		return cfg.Benchmarks[zipf.Uint64()]
	}
	pickTarget := func(n int) string {
		if len(cfg.Targets) == 1 {
			return cfg.Targets[0]
		}
		if cfg.Policy == PolicyRandom {
			return cfg.Targets[rng.Intn(len(cfg.Targets))]
		}
		return cfg.Targets[(id+n)%len(cfg.Targets)]
	}

	var samples []sample
	for n := 0; budget == 0 || n < budget; n++ {
		if ctx.Err() != nil {
			break
		}
		endpoint, method, path, body := nextRequest(cfg, rng, pickBench)
		start := time.Now()
		status, retryAfter := issue(ctx, cfg, pickTarget(n), method, path, body)
		elapsed := time.Since(start)
		if status == 0 && ctx.Err() != nil {
			break // shutdown race, not a transport failure
		}
		samples = append(samples, sample{
			endpoint: endpoint,
			status:   status,
			ms:       float64(elapsed.Nanoseconds()) / 1e6,
		})
		if status == http.StatusTooManyRequests {
			backoff(ctx, jitter, retryAfter, cfg.RetryAfterMax)
		}
	}
	return samples
}

// backoff honors a 429's Retry-After hint: sleep at least half the hinted
// delay with the rest jittered, capped at max, so a shed cohort neither
// hammers the server immediately nor re-arrives in lockstep. A zero hint
// still backs off briefly; a negative max disables the wait.
func backoff(ctx context.Context, jitter *rand.Rand, hint, max time.Duration) {
	if max < 0 {
		return
	}
	d := hint
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	if d > max {
		d = max
	}
	d = d/2 + time.Duration(jitter.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// nextRequest draws one request from the mix.
func nextRequest(cfg LoadConfig, rng *rand.Rand, pickBench func() string) (endpoint, method, path string, body []byte) {
	marshal := func(v any) []byte {
		b, _ := json.Marshal(v)
		return b
	}
	roll := rng.Intn(cfg.Mix.total())
	switch m := cfg.Mix; {
	case roll < m.Grid:
		return "grid", http.MethodPost, "/v1/grid",
			marshal(GridRequest{Benchmark: pickBench(), Space: cfg.Space})
	case roll < m.Grid+m.Optimal:
		return "optimal", http.MethodPost, "/v1/optimal",
			marshal(OptimalRequest{Benchmark: pickBench(), Space: cfg.Space, Budget: cfg.Budget})
	case roll < m.Grid+m.Optimal+m.Stability:
		return "stability", http.MethodPost, "/v1/stability",
			marshal(StabilityRequest{History: []int{4, 6, 5}, Current: rng.Intn(4)})
	case roll < m.Grid+m.Optimal+m.Stability+m.Emin:
		return "emin", http.MethodPost, "/v1/emin",
			marshal(EminRequest{Predictor: "ewma", Alpha: 0.3, Observations: []float64{1.1, 1.05, 1.2}})
	default:
		return "benchmarks", http.MethodGet, "/v1/benchmarks", nil
	}
}

// issue sends one request to target and returns the status code (0 on
// transport failure) plus any Retry-After hint on a shed response.
// Response bodies are drained so connections are reused.
func issue(ctx context.Context, cfg LoadConfig, target, method, path string, body []byte) (int, time.Duration) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, target+path, rd)
	if err != nil {
		return 0, 0
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, 0
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close() // best effort: the status code was already read
	var retryAfter time.Duration
	if resp.StatusCode == http.StatusTooManyRequests {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter
}

// aggregate merges per-client samples into the report.
func aggregate(results [][]sample) *LoadReport {
	r := &LoadReport{Endpoints: make(map[string]EndpointStats)}
	lat := make(map[string][]float64)
	for _, clientSamples := range results {
		for _, s := range clientSamples {
			r.Requests++
			switch {
			case s.status == 0:
				r.TransportErrors++
			case s.status >= 500:
				r.Status5xx++
			case s.status >= 400:
				r.Status4xx++
			default:
				r.Status2xx++
			}
			if s.status == http.StatusTooManyRequests {
				r.Shed++
			}
			es := r.Endpoints[s.endpoint]
			es.Count++
			if s.status == 0 || s.status >= 300 {
				es.Errors++
			}
			r.Endpoints[s.endpoint] = es
			lat[s.endpoint] = append(lat[s.endpoint], s.ms)
		}
	}
	for ep, xs := range lat {
		es := r.Endpoints[ep]
		es.P50 = quantileOrZero(xs, 0.50)
		es.P95 = quantileOrZero(xs, 0.95)
		es.P99 = quantileOrZero(xs, 0.99)
		for _, x := range xs {
			if x > es.Max {
				es.Max = x
			}
		}
		r.Endpoints[ep] = es
	}
	return r
}

func quantileOrZero(xs []float64, q float64) float64 {
	v, err := stats.Quantile(xs, q)
	if err != nil {
		return 0
	}
	return v
}

// scrapeMetrics fetches and parses one daemon's /metrics counters.
func scrapeMetrics(ctx context.Context, client *http.Client, baseURL string) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	//lint:allow errflow read-only response body; scan errors surface through the Scanner below
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: /metrics returned %d", resp.StatusCode)
	}
	return ParseMetrics(resp.Body)
}

// ParseMetrics reads a Prometheus text exposition and returns the
// integer-valued series by name. Comment, blank, and non-integer lines
// are skipped. The cluster metrics aggregator and the load harness share
// this parser, so both read exactly what monitoring would.
func ParseMetrics(r io.Reader) (map[string]int64, error) {
	out := make(map[string]int64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, sc.Err()
}

// String renders the report as the table mcdvfsload prints.
func (r *LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests           %d  (2xx %d, 4xx %d, 5xx %d, shed %d, transport-err %d)\n",
		r.Requests, r.Status2xx, r.Status4xx, r.Status5xx, r.Shed, r.TransportErrors)
	eps := make([]string, 0, len(r.Endpoints))
	for ep := range r.Endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	fmt.Fprintf(&b, "%-12s %8s %8s %9s %9s %9s %9s\n", "endpoint", "count", "errors", "p50 ms", "p95 ms", "p99 ms", "max ms")
	for _, ep := range eps {
		es := r.Endpoints[ep]
		fmt.Fprintf(&b, "%-12s %8d %8d %9.2f %9.2f %9.2f %9.2f\n",
			ep, es.Count, es.Errors, es.P50, es.P95, es.P99, es.Max)
	}
	if r.GridRequests > 0 {
		fmt.Fprintf(&b, "grid cache         %d requests: %d collections, %d coalesced/cached hits, %d disk loads (hit rate %.1f%%)\n",
			r.GridRequests, r.GridCollections, r.GridCacheHits, r.GridDiskLoads, 100*r.CoalesceHitRate)
	}
	if r.OptimalRequests > 0 {
		fmt.Fprintf(&b, "optimal memo       %d requests, %d memo hits (%.1f%%)\n",
			r.OptimalRequests, r.OptimalMemoHits, 100*float64(r.OptimalMemoHits)/float64(r.OptimalRequests))
	}
	if len(r.NodeGridCollections) > 1 {
		nodes := make([]string, 0, len(r.NodeGridCollections))
		for n := range r.NodeGridCollections {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		for _, n := range nodes {
			fmt.Fprintf(&b, "node %-30s %d collections\n", n, r.NodeGridCollections[n])
		}
	}
	for _, w := range r.ScrapeWarnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	return b.String()
}
