package serve

// Daemon benchmarks, captured as BENCH_serve.json by `make bench-serve`.
// Three tiers of the request path: a memoized /v1/optimal answer (pure
// cache hit), a cached /v1/grid (serialization of a kept grid), and a
// forced recollection (the columnar engine behind admission control) — so
// the record tracks both the serving overhead and the collection hot path
// as seen through the daemon.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func newBenchServer(b *testing.B) (*Server, *httptest.Server) {
	b.Helper()
	s, err := New(Config{})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return s, ts
}

// post issues one POST and fails the benchmark on a non-200 answer.
func post(b *testing.B, ts *httptest.Server, path string, body []byte) {
	b.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatalf("POST %s: %v", path, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, data)
	}
}

func marshal(b *testing.B, v any) []byte {
	b.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkServeOptimalMemoized measures the memoized /v1/optimal path:
// the steady-state cost of the daemon's most common request once the
// benchmark is characterized and the answer is in the memo.
func BenchmarkServeOptimalMemoized(b *testing.B) {
	_, ts := newBenchServer(b)
	body := marshal(b, OptimalRequest{Benchmark: "gobmk", Budget: 1.3})
	post(b, ts, "/v1/optimal", body) // warm: collect the grid, fill the memo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(b, ts, "/v1/optimal", body)
	}
}

// BenchmarkServeGridCached measures /v1/grid for an already-characterized
// benchmark: Lab cache hit plus full grid serialization.
func BenchmarkServeGridCached(b *testing.B) {
	_, ts := newBenchServer(b)
	body := marshal(b, GridRequest{Benchmark: "gobmk"})
	post(b, ts, "/v1/grid", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(b, ts, "/v1/grid", body)
	}
}

// BenchmarkServeGridCollect measures /v1/grid when every request must
// recollect: the columnar collection engine behind the daemon's admission
// pool. Forgetting the benchmark between iterations forces the miss.
func BenchmarkServeGridCollect(b *testing.B) {
	s, ts := newBenchServer(b)
	body := marshal(b, GridRequest{Benchmark: "gobmk"})
	post(b, ts, "/v1/grid", body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.lab.Forget("gobmk")
		b.StartTimer()
		post(b, ts, "/v1/grid", body)
	}
}
