package serve

// The endpoint handlers. Conventions: POST bodies are strict JSON (unknown
// fields rejected, 1 MiB cap), every response is JSON except /metrics,
// errors come back as {"error": "..."}, and each handler threads
// r.Context() into the work it owns so a client disconnect cancels exactly
// that client's share.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"

	"mcdvfs/internal/core"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/predict"
	"mcdvfs/internal/trace"
	"mcdvfs/internal/workload"
)

const maxBodyBytes = 1 << 20

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/grid", s.handleGrid)
	s.mux.HandleFunc("POST /v1/optimal", s.handleOptimal)
	s.mux.HandleFunc("POST /v1/stability", s.handleStability)
	s.mux.HandleFunc("POST /v1/emin", s.handleEmin)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// decode parses a strict JSON body into dst.
func decode(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// fail maps a work error onto a response: saturation sheds with 429 +
// Retry-After, deadline overruns are 504, a cancelled client gets 408
// (nobody is reading, but the metrics class should not be a 5xx), and
// everything else is a 500.
func (s *Server) fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
		writeError(w, http.StatusTooManyRequests, "collection capacity saturated; retry later")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusRequestTimeout, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// spaceByName resolves the two published setting spaces; "" means coarse.
func (s *Server) spaceByName(name string) (*freq.Space, string, error) {
	switch name {
	case "", "coarse":
		return s.lab.CoarseSpace(), "coarse", nil
	case "fine":
		return s.lab.FineSpace(), "fine", nil
	default:
		return nil, "", fmt.Errorf("unknown space %q (use coarse or fine)", name)
	}
}

// GridRequest asks for a characterization grid: either a named built-in
// benchmark (cached, coalesced) or an inline workload definition
// (collected per request, never cached).
type GridRequest struct {
	Benchmark string          `json:"benchmark,omitempty"`
	Space     string          `json:"space,omitempty"`
	Workload  json.RawMessage `json:"workload,omitempty"`
}

func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req GridRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	space, spaceName, err := s.spaceByName(req.Space)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	var g *trace.Grid
	switch {
	case len(req.Workload) > 0 && req.Benchmark != "":
		writeError(w, http.StatusBadRequest, "benchmark and workload are mutually exclusive")
		return
	case len(req.Workload) > 0:
		b, err := workload.ReadJSON(bytes.NewReader(req.Workload))
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		// Inline workloads bypass the Lab cache but not admission control:
		// they are always a full collection, so they always take a slot.
		release, err := s.pool.acquire(ctx)
		if err != nil {
			s.fail(w, err)
			return
		}
		g, err = trace.CollectContext(ctx, s.lab.System(), b, space, trace.CollectOptions{
			Workers:    s.cfg.CollectWorkers,
			OnProgress: s.met.collectProgress,
		})
		release()
		if err != nil {
			s.fail(w, err)
			return
		}
		s.met.workloadCollects.Add(1)
	case req.Benchmark != "":
		if _, err := workload.ByName(req.Benchmark); err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		s.met.gridRequests.Add(1)
		s.touch(req.Benchmark)
		if spaceName == "fine" {
			g, err = s.lab.FineGridContext(ctx, req.Benchmark)
		} else {
			g, err = s.lab.GridContext(ctx, req.Benchmark)
		}
		if err != nil {
			s.fail(w, err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "missing benchmark or workload")
		return
	}
	writeJSON(w, http.StatusOK, g)
}

// OptimalRequest asks for the budget-constrained optimal schedule.
type OptimalRequest struct {
	Benchmark string  `json:"benchmark"`
	Space     string  `json:"space,omitempty"`
	Budget    float64 `json:"budget"`
}

// OptimalSettingJSON is one schedule entry's resolved frequencies.
type OptimalSettingJSON struct {
	ID     int     `json:"id"`
	CPUMHz float64 `json:"cpu_mhz"`
	MemMHz float64 `json:"mem_mhz"`
}

// OptimalResponse is the paper's decision-procedure output: the per-sample
// optimal settings under the inefficiency budget, plus the transition
// statistics of Figure 8.
type OptimalResponse struct {
	Benchmark                  string               `json:"benchmark"`
	Space                      string               `json:"space"`
	Budget                     float64              `json:"budget"`
	NumSamples                 int                  `json:"num_samples"`
	Transitions                int                  `json:"transitions"`
	TransitionsPerBillionInstr float64              `json:"transitions_per_billion_instr"`
	Schedule                   []int                `json:"schedule"`
	Settings                   []OptimalSettingJSON `json:"settings"`
}

func (s *Server) handleOptimal(w http.ResponseWriter, r *http.Request) {
	var req OptimalRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := workload.ByName(req.Benchmark); err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	_, spaceName, err := s.spaceByName(req.Space)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Budget < 1 || math.IsNaN(req.Budget) || math.IsInf(req.Budget, 0) {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("budget %v invalid: inefficiency is relative to Emin, so budgets are finite and >= 1", req.Budget))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	s.met.optimalRequests.Add(1)
	key := fmt.Sprintf("%s|%s|%x", req.Benchmark, spaceName, math.Float64bits(req.Budget))
	resp, hit, err := s.optMemo.do(ctx, key, func() (*OptimalResponse, error) {
		return s.computeOptimal(ctx, req.Benchmark, spaceName, req.Budget)
	})
	if hit {
		s.met.optimalMemoHits.Add(1)
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) computeOptimal(ctx context.Context, bench, spaceName string, budget float64) (*OptimalResponse, error) {
	s.met.gridRequests.Add(1)
	s.touch(bench)
	var (
		a   *core.Analysis
		err error
	)
	if spaceName == "fine" {
		a, err = s.lab.FineAnalysisContext(ctx, bench)
	} else {
		a, err = s.lab.AnalysisContext(ctx, bench)
	}
	if err != nil {
		return nil, err
	}
	sch, err := a.OptimalSchedule(budget)
	if err != nil {
		return nil, err
	}
	resp := &OptimalResponse{
		Benchmark:                  bench,
		Space:                      spaceName,
		Budget:                     budget,
		NumSamples:                 a.NumSamples(),
		Transitions:                sch.Transitions(),
		TransitionsPerBillionInstr: a.TransitionsPerBillion(sch.Transitions()),
		Schedule:                   make([]int, len(sch)),
	}
	used := make(map[int]bool)
	for i, id := range sch {
		resp.Schedule[i] = int(id)
		used[int(id)] = true
	}
	ids := make([]int, 0, len(used))
	for id := range used {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	grid := a.Grid()
	for _, id := range ids {
		st := grid.Setting(freq.SettingID(id))
		resp.Settings = append(resp.Settings, OptimalSettingJSON{
			ID:     id,
			CPUMHz: float64(st.CPU),
			MemMHz: float64(st.Mem),
		})
	}
	return resp, nil
}

// StabilityRequest replays a stable-region history into the predictor of
// the paper's Section VII: history holds completed region lengths (oldest
// first), current the samples the in-progress region has already survived.
type StabilityRequest struct {
	History    []int `json:"history"`
	Current    int   `json:"current"`
	MaxHistory int   `json:"max_history,omitempty"`
}

// StabilityResponse carries the predicted remaining stable samples.
type StabilityResponse struct {
	PredictedRemaining int `json:"predicted_remaining"`
	HistoryLen         int `json:"history_len"`
	Current            int `json:"current"`
}

func (s *Server) handleStability(w http.ResponseWriter, r *http.Request) {
	var req StabilityRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	maxHist := req.MaxHistory
	if maxHist == 0 {
		maxHist = 16
	}
	p, err := predict.NewStabilityPredictor(maxHist)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, l := range req.History {
		if l <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("region length %d must be positive", l))
			return
		}
		for i := 0; i < l; i++ {
			p.ObserveStable()
		}
		p.ObserveBreak()
	}
	if req.Current < 0 {
		writeError(w, http.StatusBadRequest, "current must be non-negative")
		return
	}
	for i := 0; i < req.Current; i++ {
		p.ObserveStable()
	}
	writeJSON(w, http.StatusOK, StabilityResponse{
		PredictedRemaining: p.PredictRemaining(),
		HistoryLen:         len(req.History),
		Current:            p.Current(),
	})
}

// EminRequest drives one of the Emin predictors over an observation
// history and returns the next-sample estimate. Phase-table prediction
// additionally takes per-observation phase signatures and a query
// signature to classify the upcoming sample.
type EminRequest struct {
	Predictor    string        `json:"predictor"`
	Alpha        float64       `json:"alpha,omitempty"`
	Observations []float64     `json:"observations,omitempty"`
	CPIBin       float64       `json:"cpi_bin,omitempty"`
	MPKIBin      float64       `json:"mpki_bin,omitempty"`
	Samples      []EminSample  `json:"samples,omitempty"`
	Query        *PhaseSigJSON `json:"query,omitempty"`
}

// EminSample is one phase-attributed Emin observation.
type EminSample struct {
	CPI   float64 `json:"cpi"`
	MPKI  float64 `json:"mpki"`
	EminJ float64 `json:"emin_j"`
}

// PhaseSigJSON is a (CPI, MPKI) phase signature.
type PhaseSigJSON struct {
	CPI  float64 `json:"cpi"`
	MPKI float64 `json:"mpki"`
}

// EminResponse is the predictor's estimate for the next sample.
type EminResponse struct {
	Predictor      string  `json:"predictor"`
	PredictedEminJ float64 `json:"predicted_emin_j"`
	Known          bool    `json:"known"`
}

func (s *Server) handleEmin(w http.ResponseWriter, r *http.Request) {
	var req EminRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var p predict.EminPredictor
	switch req.Predictor {
	case "", "last-value":
		p = predict.NewLastValue()
	case "ewma":
		alpha := req.Alpha
		if alpha <= 0 {
			alpha = 0.25
		}
		ew, err := predict.NewEWMA(alpha)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		p = ew
	case "phase-table":
		cpiBin, mpkiBin := req.CPIBin, req.MPKIBin
		if cpiBin <= 0 {
			cpiBin = 0.25
		}
		if mpkiBin <= 0 {
			mpkiBin = 4
		}
		pt, err := predict.NewPhaseTable(cpiBin, mpkiBin)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		for _, obs := range req.Samples {
			pt.Classify(obs.CPI, obs.MPKI)
			pt.Observe(obs.EminJ)
		}
		if req.Query == nil {
			writeError(w, http.StatusBadRequest, "phase-table prediction requires a query signature")
			return
		}
		pt.Classify(req.Query.CPI, req.Query.MPKI)
		p = pt
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown predictor %q (use last-value, ewma, or phase-table)", req.Predictor))
		return
	}
	if req.Predictor != "phase-table" {
		for _, v := range req.Observations {
			p.Observe(v)
		}
	}
	v, known := p.Predict()
	writeJSON(w, http.StatusOK, EminResponse{Predictor: p.Name(), PredictedEminJ: v, Known: known})
}

// BenchmarkJSON is one registry entry of GET /v1/benchmarks.
type BenchmarkJSON struct {
	Name         string `json:"name"`
	Headline     bool   `json:"headline"`
	Samples      int    `json:"samples"`
	Instructions uint64 `json:"instructions"`
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	headline := make(map[string]bool)
	for _, n := range workload.HeadlineNames() {
		headline[n] = true
	}
	var out []BenchmarkJSON
	for _, name := range workload.Names() {
		b := workload.MustByName(name)
		out = append(out, BenchmarkJSON{
			Name:         name,
			Headline:     headline[name],
			Samples:      b.NumSamples(),
			Instructions: b.Instructions(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": out})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, s.pool.running(), s.pool.queued(), s.benches.Len())
}
