package serve

import (
	"context"
	"errors"
)

// ErrSaturated is returned when a request would start a grid collection
// but every execution slot is busy and the wait queue is full. Handlers
// translate it into 429 Too Many Requests with a Retry-After hint.
var ErrSaturated = errors.New("serve: collection capacity saturated")

// pool is the admission controller for grid collections: at most `workers`
// collections run concurrently, at most `depth` admission requests wait in
// line behind them, and everything beyond that is shed immediately. Only
// requests that actually need to collect pass through the pool — cache
// hits and coalesced joins bypass it entirely (see experiments.CollectGate).
type pool struct {
	exec  chan struct{} // one token per running collection
	queue chan struct{} // one token per waiting admission request
}

func newPool(workers, depth int) *pool {
	return &pool{
		exec:  make(chan struct{}, workers),
		queue: make(chan struct{}, depth),
	}
}

// acquire admits one collection, blocking in the bounded queue when all
// execution slots are busy. It returns a release func on admission,
// ErrSaturated when the queue is full, or ctx's error if the caller's
// deadline lands while queued. The signature matches
// experiments.CollectGate.
func (p *pool) acquire(ctx context.Context) (func(), error) {
	release := func() { <-p.exec }
	// Fast path: a free execution slot.
	select {
	case p.exec <- struct{}{}:
		return release, nil
	default:
	}
	// Full pool: take a queue slot or shed.
	select {
	case p.queue <- struct{}{}:
	default:
		return nil, ErrSaturated
	}
	defer func() { <-p.queue }()
	select {
	case p.exec <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// running and queued are gauge reads for /metrics.
func (p *pool) running() int { return len(p.exec) }
func (p *pool) queued() int  { return len(p.queue) }
