package serve

// Handler and lifecycle suite for mcdvfsd, driven entirely in-process
// through httptest. The contention-sensitive cases (64-way coalescing,
// shedding, eviction) are deterministic: shedding fills the admission pool
// by hand instead of racing a collection, and coalescing counts are read
// from the same /metrics counters production monitoring would use.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer builds a server plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts v and returns the response with its decoded body.
func postJSON(t *testing.T, ts *httptest.Server, path string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getBody(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// metricValue scrapes one counter from /metrics.
func metricValue(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, data := getBody(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v int64
			fmt.Sscanf(fields[1], "%d", &v)
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

func TestBenchmarksEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := getBody(t, ts, "/v1/benchmarks")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Benchmarks []BenchmarkJSON `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) < 6 {
		t.Fatalf("%d benchmarks listed, want the full registry", len(out.Benchmarks))
	}
	headline := 0
	for _, b := range out.Benchmarks {
		if b.Headline {
			headline++
		}
		if b.Samples <= 0 || b.Instructions == 0 {
			t.Errorf("%s: empty shape (%d samples, %d instr)", b.Name, b.Samples, b.Instructions)
		}
	}
	if headline != 6 {
		t.Errorf("%d headline benchmarks, want 6", headline)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if resp, _ := getBody(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", resp.StatusCode)
	}
	s.beginDrain()
	if resp, _ := getBody(t, ts, "/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
	if got := metricValue(t, ts, "mcdvfsd_draining"); got != 1 {
		t.Errorf("mcdvfsd_draining = %d, want 1", got)
	}
}

func TestGridEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts, "/v1/grid", GridRequest{Benchmark: "gobmk"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var g struct {
		Benchmark string            `json:"benchmark"`
		Settings  []json.RawMessage `json:"settings"`
	}
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	if g.Benchmark != "gobmk" {
		t.Errorf("grid benchmark %q", g.Benchmark)
	}
	if len(g.Settings) != 70 {
		t.Errorf("%d settings, want the 70-setting coarse space", len(g.Settings))
	}

	// The same request again is a pure cache hit.
	collections := metricValue(t, ts, "mcdvfsd_grid_collections_total")
	if resp, data := postJSON(t, ts, "/v1/grid", GridRequest{Benchmark: "gobmk"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("second request status %d: %s", resp.StatusCode, data)
	}
	if got := metricValue(t, ts, "mcdvfsd_grid_collections_total"); got != collections {
		t.Errorf("warm request collected again (%d -> %d)", collections, got)
	}
}

func TestGridValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  any
		want int
	}{
		{"unknown benchmark", GridRequest{Benchmark: "no-such"}, http.StatusNotFound},
		{"bad space", GridRequest{Benchmark: "gobmk", Space: "medium"}, http.StatusBadRequest},
		{"empty", GridRequest{}, http.StatusBadRequest},
		{"unknown field", map[string]any{"bench": "gobmk"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, data := postJSON(t, ts, "/v1/grid", c.req)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.want, data)
		}
	}
	if resp, _ := getBody(t, ts, "/v1/grid"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/grid status %d, want 405", resp.StatusCode)
	}
}

func TestGridInlineWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wl := map[string]any{
		"name":   "user-app",
		"repeat": 1,
		"phases": []map[string]any{
			{"name": "p0", "base_cpi": 1.1, "mpki": 2.0, "samples": 3, "mlp": 1.5, "row_hit_rate": 0.6},
			{"name": "p1", "base_cpi": 0.9, "mpki": 22.0, "samples": 2, "mlp": 2.0, "row_hit_rate": 0.6},
		},
	}
	raw, err := json.Marshal(wl)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts, "/v1/grid", GridRequest{Workload: raw})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if got := metricValue(t, ts, "mcdvfsd_workload_collections_total"); got != 1 {
		t.Errorf("workload collections = %d, want 1", got)
	}
	// Both a benchmark and a workload is ambiguous.
	resp, _ = postJSON(t, ts, "/v1/grid", GridRequest{Benchmark: "gobmk", Workload: raw})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ambiguous request status %d, want 400", resp.StatusCode)
	}
}

// TestGridCoalescing64 is the tentpole acceptance check: 64 concurrent
// clients asking for the same grid must trigger exactly one collection,
// verified through the same /metrics counters production would watch.
func TestGridCoalescing64(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const clients = 64
	var wg sync.WaitGroup
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts, "/v1/grid", GridRequest{Benchmark: "milc"})
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("client %d: status %d", i, code)
		}
	}
	if got := metricValue(t, ts, "mcdvfsd_grid_collections_total"); got != 1 {
		t.Errorf("collections = %d, want exactly 1 for 64 identical requests", got)
	}
	if got := metricValue(t, ts, "mcdvfsd_grid_requests_total"); got != clients {
		t.Errorf("grid requests = %d, want %d", got, clients)
	}
	if got := metricValue(t, ts, "mcdvfsd_grid_cache_hits_total"); got != clients-1 {
		t.Errorf("cache hits = %d, want %d coalesced", got, clients-1)
	}
}

// TestSheddingWhenSaturated fills the admission pool by hand — no timing
// races — and verifies the 429 + Retry-After contract, then that capacity
// freed means service restored.
func TestSheddingWhenSaturated(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolSize: 1, QueueDepth: -1, RetryAfter: 7 * time.Second})
	release, err := s.pool.acquire(context.Background())
	if err != nil {
		t.Fatalf("priming acquire: %v", err)
	}
	resp, data := postJSON(t, ts, "/v1/grid", GridRequest{Benchmark: "gobmk"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status %d, want 429 (%s)", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After %q, want 7", got)
	}
	if got := metricValue(t, ts, "mcdvfsd_shed_total"); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}
	release()
	if resp, data := postJSON(t, ts, "/v1/grid", GridRequest{Benchmark: "gobmk"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status %d: %s", resp.StatusCode, data)
	}
}

func TestOptimalEndpointAndMemo(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := OptimalRequest{Benchmark: "gobmk", Budget: 1.3}
	resp, data := postJSON(t, ts, "/v1/optimal", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out OptimalResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.NumSamples == 0 || len(out.Schedule) != out.NumSamples {
		t.Errorf("schedule length %d vs %d samples", len(out.Schedule), out.NumSamples)
	}
	if len(out.Settings) == 0 {
		t.Error("no settings resolved")
	}
	used := make(map[int]bool)
	for _, st := range out.Settings {
		used[st.ID] = true
	}
	for i, id := range out.Schedule {
		if !used[id] {
			t.Fatalf("schedule[%d] = %d not in the settings table", i, id)
		}
	}

	// Identical request: memoized, no second schedule search or grid work.
	resp, data2 := postJSON(t, ts, "/v1/optimal", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second status %d", resp.StatusCode)
	}
	if !bytes.Equal(data, data2) {
		t.Error("memoized response differs from the computed one")
	}
	if got := metricValue(t, ts, "mcdvfsd_optimal_memo_hits_total"); got != 1 {
		t.Errorf("memo hits = %d, want 1", got)
	}

	// A different budget is a different decision.
	resp, data3 := postJSON(t, ts, "/v1/optimal", OptimalRequest{Benchmark: "gobmk", Budget: 2.0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budget 2.0 status %d", resp.StatusCode)
	}
	if bytes.Equal(data, data3) {
		t.Error("budget 1.3 and 2.0 returned identical schedules — memo key ignores budget?")
	}
}

func TestOptimalValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  OptimalRequest
		want int
	}{
		{"unknown benchmark", OptimalRequest{Benchmark: "no-such", Budget: 1.3}, http.StatusNotFound},
		{"budget below 1", OptimalRequest{Benchmark: "gobmk", Budget: 0.5}, http.StatusBadRequest},
		{"zero budget", OptimalRequest{Benchmark: "gobmk"}, http.StatusBadRequest},
		{"bad space", OptimalRequest{Benchmark: "gobmk", Space: "ultra", Budget: 1.3}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, data := postJSON(t, ts, "/v1/optimal", c.req)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.want, data)
		}
	}
}

func TestStabilityEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts, "/v1/stability", StabilityRequest{History: []int{4, 6, 5}, Current: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out StabilityResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	// Mean completed length 5, 2 spent: 3 remaining.
	if out.PredictedRemaining != 3 {
		t.Errorf("predicted %d, want 3", out.PredictedRemaining)
	}
	if resp, _ := postJSON(t, ts, "/v1/stability", StabilityRequest{History: []int{-1}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative region length accepted: %d", resp.StatusCode)
	}
}

func TestEminEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts, "/v1/emin", EminRequest{
		Predictor: "ewma", Alpha: 0.5, Observations: []float64{2, 4},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out EminResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Known || out.PredictedEminJ < 2.9 || out.PredictedEminJ > 3.1 {
		t.Errorf("ewma(0.5) over [2 4] = %v known=%v, want 3", out.PredictedEminJ, out.Known)
	}

	resp, data = postJSON(t, ts, "/v1/emin", EminRequest{
		Predictor: "phase-table",
		Samples:   []EminSample{{CPI: 1.0, MPKI: 2, EminJ: 7}, {CPI: 3.0, MPKI: 30, EminJ: 11}},
		Query:     &PhaseSigJSON{CPI: 1.1, MPKI: 2.5},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("phase-table status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Known || out.PredictedEminJ < 6.9 || out.PredictedEminJ > 7.1 {
		t.Errorf("phase-table query = %v known=%v, want 7 (same bin as first sample)", out.PredictedEminJ, out.Known)
	}

	if resp, _ := postJSON(t, ts, "/v1/emin", EminRequest{Predictor: "oracle"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown predictor accepted: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts, "/v1/emin", EminRequest{Predictor: "phase-table"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("phase-table without query accepted: %d", resp.StatusCode)
	}
}

// TestBenchmarkEviction bounds the LRU at one benchmark: requesting a
// second must forget the first (Lab.Forget via the eviction callback), so
// re-requesting the first recollects.
func TestBenchmarkEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBenchmarks: 1})
	for _, bench := range []string{"gobmk", "milc", "gobmk"} {
		if resp, data := postJSON(t, ts, "/v1/grid", GridRequest{Benchmark: bench}); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", bench, resp.StatusCode, data)
		}
	}
	if got := metricValue(t, ts, "mcdvfsd_grid_collections_total"); got != 3 {
		t.Errorf("collections = %d, want 3 (gobmk evicted and recollected)", got)
	}
	if got := metricValue(t, ts, "mcdvfsd_bench_evictions_total"); got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
	if got := metricValue(t, ts, "mcdvfsd_cached_benchmarks"); got != 1 {
		t.Errorf("cached benchmarks gauge = %d, want 1", got)
	}
}

// TestRunGracefulDrain exercises the full lifecycle: serve on a real
// listener, overlap a request, cancel, and verify the drain completes and
// the listener refuses new work.
func TestRunGracefulDrain(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, "127.0.0.1:0", 2*time.Second) }()
	// The listener address is not exposed; drive lifecycle only. Give the
	// goroutine a moment to bind, then shut down.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v, want clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not drain within 5s")
	}
	if !s.draining.Load() {
		t.Error("server not marked draining after shutdown")
	}
}
