package serve

// Load-harness integration tests, all in-process against httptest so CI
// needs no network or daemon. TestLoadSmoke is the `make loadtest` tier:
// `go test ./internal/serve -run TestLoadSmoke -args -loadsmoke=5s` runs
// the full-length smoke; the default duration keeps tier-1 fast.

import (
	"context"
	"flag"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcdvfs/internal/workload"
)

var loadsmoke = flag.Duration("loadsmoke", 800*time.Millisecond, "duration of the load smoke test")

// TestLoadDeterministic replays the same (seed, clients, requests) run
// twice and requires the identical request mix — the property that makes
// load results comparable across branches.
func TestLoadDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cfg := LoadConfig{
		BaseURL:  ts.URL,
		Clients:  4,
		Requests: 120,
		Seed:     42,
		Client:   ts.Client(),
	}
	first, err := RunLoad(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	second, err := RunLoad(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunLoad (replay): %v", err)
	}
	for _, r := range []*LoadReport{first, second} {
		if r.Requests != cfg.Requests {
			t.Fatalf("%d requests issued, want %d", r.Requests, cfg.Requests)
		}
		if r.Status5xx != 0 || r.TransportErrors != 0 {
			t.Fatalf("unhealthy run: %s", r)
		}
	}
	if len(first.Endpoints) == 0 {
		t.Fatal("no endpoints exercised")
	}
	for ep, es := range first.Endpoints {
		if second.Endpoints[ep].Count != es.Count {
			t.Errorf("endpoint %s: %d requests vs %d on replay — load is not deterministic",
				ep, es.Count, second.Endpoints[ep].Count)
		}
	}
	// The second run hits only warm caches: zero new collections.
	if second.GridCollections != 0 {
		t.Errorf("replay collected %d grids, want 0 (all cached)", second.GridCollections)
	}
	if second.GridRequests > 0 && second.GridCacheHits != second.GridRequests {
		t.Errorf("replay: %d/%d grid requests were cache hits, want all",
			second.GridCacheHits, second.GridRequests)
	}
}

// TestLoadSmoke is the acceptance smoke: a zipfian mixed load must finish
// with zero 5xx and zero transport errors, the coalescing layer must
// absorb most grid demand, and — on runs long enough to be past warmup
// (>= 3s, i.e. the `make loadtest` tier) — cached /v1/optimal p99 must
// stay under 10ms.
func TestLoadSmoke(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	report, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:  ts.URL,
		Clients:  8,
		Duration: *loadsmoke,
		Seed:     7,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("smoke (%v):\n%s", *loadsmoke, report)

	if report.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if report.Status5xx != 0 {
		t.Fatalf("%d 5xx responses, want 0", report.Status5xx)
	}
	if report.TransportErrors != 0 {
		t.Fatalf("%d transport errors, want 0", report.TransportErrors)
	}
	// Traffic-shape assertions only make sense once the run is long enough
	// to be past warmup — the `make loadtest` tier. (Short or -race runs
	// complete too few requests; deterministic coalescing is proven by
	// TestGridCoalescing64 regardless.)
	if *loadsmoke < 3*time.Second {
		return
	}
	if report.GridRequests == 0 {
		t.Fatal("no grid demand observed; mix broken")
	}
	// Nearly all grid demand is absorbed without collecting: at most one
	// collection per benchmark in the zipfian pool.
	benches := len(workload.HeadlineNames())
	if report.GridCollections > int64(benches) {
		t.Errorf("%d collections for %d benchmarks — coalescing not absorbing",
			report.GridCollections, benches)
	}
	if report.CoalesceHitRate < 0.5 {
		t.Errorf("coalesce hit rate %.2f, want >= 0.5 under zipfian load", report.CoalesceHitRate)
	}
	if opt, ok := report.Endpoints["optimal"]; !ok || opt.Count == 0 {
		t.Fatal("no /v1/optimal traffic in smoke run")
	}

	// Latency acceptance: with every grid warm from the pass above, a
	// dedicated optimal-only measurement pass (low concurrency, so client
	// queueing doesn't pollute the numbers on small CI machines) must serve
	// cached /v1/optimal with p99 under 10ms.
	measured, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:  ts.URL,
		Clients:  2,
		Requests: 400,
		Seed:     7,
		Mix:      LoadMix{Optimal: 1},
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatalf("RunLoad (measurement): %v", err)
	}
	opt := measured.Endpoints["optimal"]
	t.Logf("cached optimal: %d requests, %d memo hits, p50 %.2fms p99 %.2fms",
		opt.Count, measured.OptimalMemoHits, opt.P50, opt.P99)
	if measured.OptimalMemoHits < int64(opt.Count)*9/10 {
		t.Errorf("only %d/%d optimal requests were memo hits; measurement pass not cached",
			measured.OptimalMemoHits, opt.Count)
	}
	if opt.P99 >= 10 {
		t.Errorf("cached /v1/optimal p99 = %.2fms, want < 10ms", opt.P99)
	}
}

// TestLoadScrapeWarningsAttributed pins the multi-target warning contract:
// a dark node's failed /metrics scrapes are attributed to its URL and run
// phase, and the live node's counters still aggregate — never an anonymous
// warning, never a silent zero delta.
func TestLoadScrapeWarningsAttributed(t *testing.T) {
	_, live := newTestServer(t, Config{})
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close() // traffic and scrapes to this URL now fail at the transport

	report, err := RunLoad(context.Background(), LoadConfig{
		Targets:  []string{live.URL, deadURL},
		Clients:  2,
		Requests: 16,
		Seed:     3,
		Client:   live.Client(),
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if len(report.ScrapeWarnings) != 2 {
		t.Fatalf("got %d scrape warnings, want 2 (before+after for the dead target): %v",
			len(report.ScrapeWarnings), report.ScrapeWarnings)
	}
	phases := map[string]bool{}
	for _, w := range report.ScrapeWarnings {
		if w.Target != deadURL {
			t.Errorf("warning attributed to %q, want the dead target %q", w.Target, deadURL)
		}
		if w.Err == "" {
			t.Errorf("warning for %s has an empty error", w.Target)
		}
		phases[w.Phase] = true
	}
	if !phases["before"] || !phases["after"] {
		t.Errorf("warning phases = %v, want both before and after", phases)
	}
	if _, ok := report.NodeGridCollections[deadURL]; ok {
		t.Error("dead target has a per-node collection delta; unknown counters must stay absent")
	}
	rendered := report.String()
	if !strings.Contains(rendered, deadURL) {
		t.Errorf("rendered report does not name the dark node %s:\n%s", deadURL, rendered)
	}
}
