package serve

// The serve-level coalescer: /v1/optimal answers are pure functions of
// (benchmark, space, budget), so concurrent identical requests collapse to
// one computation (singleflight) and completed answers are memoized in a
// size-bounded LRU. This mirrors the Lab's grid singleflight one layer up:
// the grid cache dedups the expensive characterization, the memo dedups
// the schedule search on top of it.

import (
	"context"
	"sync"

	"mcdvfs/internal/cache/lru"
)

// memo is a keyed singleflight in front of an LRU of computed values.
type memo[V any] struct {
	store *lru.Cache[string, V]

	mu      sync.Mutex
	flights map[string]*flight[V]
}

type flight[V any] struct {
	done chan struct{} // closed when val and err are final
	val  V
	err  error
}

func newMemo[V any](capacity int) (*memo[V], error) {
	store, err := lru.New[string, V](capacity, nil)
	if err != nil {
		return nil, err
	}
	return &memo[V]{store: store, flights: make(map[string]*flight[V])}, nil
}

// do returns the memoized value for key, computing it at most once no
// matter how many goroutines ask concurrently. hit reports whether the
// value came from the memo or an in-flight computation rather than this
// caller's own compute. Failed computations are not cached; a waiter whose
// ctx expires abandons the flight without killing it.
func (m *memo[V]) do(ctx context.Context, key string, compute func() (V, error)) (val V, hit bool, err error) {
	if v, ok := m.cached(key); ok {
		return v, true, nil
	}
	m.mu.Lock()
	if f, ok := m.flights[key]; ok {
		m.mu.Unlock()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			var zero V
			return zero, true, ctx.Err()
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	m.flights[key] = f
	m.mu.Unlock()

	f.val, f.err = compute()
	if f.err == nil {
		m.store.Add(key, f.val)
	}
	m.mu.Lock()
	delete(m.flights, key)
	m.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// cached is do's fast path — the LRU probe every request pays before any
// flight bookkeeping. Kept separate so the steady-state read path (memo
// warm, no concurrent misses) is provably allocation-free.
//
//vet:hotpath
func (m *memo[V]) cached(key string) (V, bool) {
	return m.store.Get(key)
}
