package serve

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"mcdvfs/internal/experiments"
)

// metrics is the daemon's counter set, exported in Prometheus text format
// by GET /metrics. Everything is a monotonic counter except the gauges
// noted; all fields are updated with atomics so the hot path never locks.
type metrics struct {
	requests atomic.Int64 // every HTTP request received
	inflight atomic.Int64 // gauge: requests currently being handled
	resp2xx  atomic.Int64
	resp4xx  atomic.Int64
	resp5xx  atomic.Int64
	shed     atomic.Int64 // 429 responses (subset of resp4xx)
	draining atomic.Int64 // gauge: 1 once shutdown has begun

	gridRequests     atomic.Int64 // /v1/grid and analysis-backed requests that asked the Lab for a grid
	gridCacheHits    atomic.Int64 // served from memory, incl. coalesced joins of in-flight collections
	gridCollections  atomic.Int64 // full collections executed
	gridDiskLoads    atomic.Int64 // grids reloaded from the persistent cache
	gridColumns      atomic.Int64 // setting columns collected (progress hook)
	workloadCollects atomic.Int64 // uncached collections for inline user workloads

	optimalRequests atomic.Int64
	optimalMemoHits atomic.Int64
	benchEvictions  atomic.Int64 // benchmarks evicted from the LRU back into Lab.Forget
}

// gridEvent is the experiments.WithGridObserver hook.
func (m *metrics) gridEvent(ev experiments.GridEvent) {
	switch ev.Kind {
	case experiments.GridHit:
		m.gridCacheHits.Add(1)
	case experiments.GridDiskLoad:
		m.gridDiskLoads.Add(1)
	case experiments.GridCollect:
		m.gridCollections.Add(1)
	}
}

// collectProgress is the experiments.WithCollectProgress hook.
func (m *metrics) collectProgress(done, total int) { m.gridColumns.Add(1) }

// countResponse classifies a written status code.
func (m *metrics) countResponse(code int) {
	switch {
	case code >= 500:
		m.resp5xx.Add(1)
	case code >= 400:
		m.resp4xx.Add(1)
	default:
		m.resp2xx.Add(1)
	}
	if code == http.StatusTooManyRequests {
		m.shed.Add(1)
	}
}

// write renders the exposition text. Gauges that live outside the struct
// (pool occupancy, LRU size) are passed in.
func (m *metrics) write(w io.Writer, collectRunning, collectQueued, cachedBenchmarks int) {
	counter := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	gauge := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
	}
	counter("mcdvfsd_requests_total", m.requests.Load())
	counter("mcdvfsd_responses_2xx_total", m.resp2xx.Load())
	counter("mcdvfsd_responses_4xx_total", m.resp4xx.Load())
	counter("mcdvfsd_responses_5xx_total", m.resp5xx.Load())
	counter("mcdvfsd_shed_total", m.shed.Load())
	counter("mcdvfsd_grid_requests_total", m.gridRequests.Load())
	counter("mcdvfsd_grid_cache_hits_total", m.gridCacheHits.Load())
	counter("mcdvfsd_grid_collections_total", m.gridCollections.Load())
	counter("mcdvfsd_grid_disk_loads_total", m.gridDiskLoads.Load())
	counter("mcdvfsd_grid_columns_collected_total", m.gridColumns.Load())
	counter("mcdvfsd_workload_collections_total", m.workloadCollects.Load())
	counter("mcdvfsd_optimal_requests_total", m.optimalRequests.Load())
	counter("mcdvfsd_optimal_memo_hits_total", m.optimalMemoHits.Load())
	counter("mcdvfsd_bench_evictions_total", m.benchEvictions.Load())
	gauge("mcdvfsd_inflight_requests", m.inflight.Load())
	gauge("mcdvfsd_draining", m.draining.Load())
	gauge("mcdvfsd_collections_running", int64(collectRunning))
	gauge("mcdvfsd_collections_queued", int64(collectQueued))
	gauge("mcdvfsd_cached_benchmarks", int64(cachedBenchmarks))
}

// statusRecorder captures the status code written by a handler so the
// instrumentation middleware can classify it.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}
