package experiments

import (
	"fmt"

	"mcdvfs/internal/core"
	"mcdvfs/internal/report"
)

// Fig10Cell is one benchmark's execution time at one budget, normalized to
// its budget-1.0 execution time.
type Fig10Cell struct {
	Benchmark      string
	Budget         float64
	TimeNS         float64
	NormalizedTime float64
}

// Fig10Result reproduces Figure 10: performance variation with the
// inefficiency budget, using the per-sample optimal schedule at each
// budget.
type Fig10Result struct {
	Benchmarks []string
	Budgets    []float64
	Cells      []Fig10Cell
}

// Fig10Budgets returns the budgets of the paper's Figure 10.
func Fig10Budgets() []float64 { return []float64{1.0, 1.1, 1.2, 1.3, 1.6} }

// Fig10 computes the budget-performance sweep.
func (l *Lab) Fig10(benches []string, budgets []float64) (*Fig10Result, error) {
	if len(budgets) == 0 || budgets[0] != 1.0 { //lint:allow floateq 1.0 is the exact normalization anchor callers must pass
		return nil, fmt.Errorf("experiments: Fig10 budgets must start at 1.0 for normalization")
	}
	res := &Fig10Result{Benchmarks: benches, Budgets: budgets}
	for _, bench := range benches {
		a, err := l.Analysis(bench)
		if err != nil {
			return nil, err
		}
		base := 0.0
		for i, b := range budgets {
			sch, err := a.OptimalSchedule(b)
			if err != nil {
				return nil, err
			}
			r, err := a.Execute(sch, core.Overhead{})
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = r.TimeNS
			}
			res.Cells = append(res.Cells, Fig10Cell{
				Benchmark:      bench,
				Budget:         b,
				TimeNS:         r.TimeNS,
				NormalizedTime: r.TimeNS / base,
			})
		}
	}
	return res, nil
}

// Cell returns the entry for (benchmark, budget).
func (r *Fig10Result) Cell(bench string, budget float64) (Fig10Cell, error) {
	for _, c := range r.Cells {
		if c.Benchmark == bench && c.Budget == budget { //lint:allow floateq cells are keyed by the exact budget they were built with
			return c, nil
		}
	}
	return Fig10Cell{}, fmt.Errorf("experiments: no Fig10 cell for %s I=%v", bench, budget)
}

// Table renders the normalized execution times.
func (r *Fig10Result) Table() *report.Table {
	cols := []string{"benchmark"}
	for _, b := range r.Budgets {
		cols = append(cols, "I="+BudgetLabel(b))
	}
	t := report.NewTable("Figure 10 — execution time normalized to I=1.0", cols...)
	for _, bench := range r.Benchmarks {
		cells := []string{bench}
		for _, b := range r.Budgets {
			c, err := r.Cell(bench, b)
			if err != nil {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf("%.3f", c.NormalizedTime))
		}
		t.AddRow(cells...)
	}
	return t
}

// Fig11Result reproduces Figure 11: energy-performance trade-offs of the
// stable-region schedule relative to optimal tracking at I=1.3, with and
// without tuning overhead.
type Fig11Result struct {
	Budget     float64
	Thresholds []float64
	Tradeoffs  []core.Tradeoff
	Benchmarks []string
}

// Fig11Thresholds returns the thresholds of the paper's Figure 11.
func Fig11Thresholds() []float64 { return []float64{0.01, 0.03, 0.05} }

// Fig11 computes the trade-off comparison.
func (l *Lab) Fig11(benches []string, budget float64, thresholds []float64, oh core.Overhead) (*Fig11Result, error) {
	res := &Fig11Result{Budget: budget, Thresholds: thresholds, Benchmarks: benches}
	for _, bench := range benches {
		a, err := l.Analysis(bench)
		if err != nil {
			return nil, err
		}
		for _, th := range thresholds {
			tr, err := a.EvaluateTradeoff(budget, th, oh)
			if err != nil {
				return nil, err
			}
			res.Tradeoffs = append(res.Tradeoffs, tr)
		}
	}
	return res, nil
}

// Table renders the trade-offs. Signs follow the paper's plots: negative
// performance = degradation, negative energy = savings.
func (r *Fig11Result) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 11 — energy-performance trade-offs at I=%s (relative to optimal tracking)", BudgetLabel(r.Budget)),
		"benchmark", "threshold",
		"perf % (no oh)", "energy % (no oh)",
		"perf % (with oh)", "energy % (with oh)",
		"transitions opt->region")
	i := 0
	for _, bench := range r.Benchmarks {
		for range r.Thresholds {
			tr := r.Tradeoffs[i]
			i++
			t.AddRow(bench,
				fmt.Sprintf("%.0f%%", tr.Threshold*100),
				fmt.Sprintf("%+.2f", -tr.PerfDegradationPct),
				fmt.Sprintf("%+.2f", tr.EnergyDeltaPct),
				fmt.Sprintf("%+.2f", -tr.PerfDegradationWithOverheadPct),
				fmt.Sprintf("%+.2f", tr.EnergyDeltaWithOverheadPct),
				fmt.Sprintf("%d -> %d", tr.OptimalTransitions, tr.RegionTransitions))
		}
	}
	return t
}
