package experiments

// shapes_test pins the reproduction to the paper's qualitative results:
// every assertion here encodes a sentence from the paper's evaluation
// (Sections IV-VI, Figures 2-12). Absolute numbers are not expected to
// match the authors' testbed — the shapes are.

import (
	"math"
	"testing"

	"mcdvfs/internal/core"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/workload"
)

func TestFig02Shapes(t *testing.T) {
	l := testLab(t)
	for _, bench := range Fig02Benchmarks() {
		r, err := l.Fig02(bench)
		if err != nil {
			t.Fatalf("Fig02(%s): %v", bench, err)
		}
		// Paper: maximum achievable inefficiency is 1.5 to 2 (we allow a
		// little slack above).
		if r.Imax < 1.5 || r.Imax > 2.3 {
			t.Errorf("%s: Imax = %.2f outside [1.5, 2.3]", bench, r.Imax)
		}
		// "Running slower doesn't mean the system is running efficiently":
		// the slowest setting must be clearly inefficient.
		if r.MinSettingIneff < 1.2 {
			t.Errorf("%s: slowest-setting inefficiency %.2f, want >= 1.2", bench, r.MinSettingIneff)
		}
		// The fastest setting burns well above Emin too (gobmk: 1.65 in
		// the paper).
		if r.MaxSettingIneff < 1.3 {
			t.Errorf("%s: fastest-setting inefficiency %.2f, want >= 1.3", bench, r.MaxSettingIneff)
		}
	}
}

func TestFig02HigherInefficiencyNotAlwaysFaster(t *testing.T) {
	// Paper: gobmk forced to I=2.2 at 1000/200 runs ~1.5x slower than its
	// best. Generalized: some setting has higher inefficiency than the
	// fastest setting yet much lower speedup.
	l := testLab(t)
	r, err := l.Fig02("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	var fastest Fig02Point
	for _, p := range r.Points {
		if p.Speedup > fastest.Speedup {
			fastest = p
		}
	}
	found := false
	for _, p := range r.Points {
		if p.Inefficiency > fastest.Inefficiency && p.Speedup < fastest.Speedup*0.8 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no setting wastes energy while degrading performance; Figure 2's headline observation missing")
	}
}

func TestFig02Bzip2MemoryInsensitive(t *testing.T) {
	// Paper: bzip2's performance at 200 MHz memory is within 3% of
	// 800 MHz while the CPU runs at 1000 MHz.
	l := testLab(t)
	a, err := l.Analysis("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	sp := l.CoarseSpace()
	lo, _ := sp.ID(mkSetting(1000, 200))
	hi, _ := sp.ID(mkSetting(1000, 800))
	slow := a.PinnedResult(lo).TimeNS / a.PinnedResult(hi).TimeNS
	if slow > 1.04 {
		t.Errorf("bzip2 slowed %.3fx by memory frequency, paper says within ~3%%", slow)
	}
}

func TestFig03Shapes(t *testing.T) {
	l := testLab(t)
	r, err := l.Fig03("gobmk", Fig03Budgets())
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained budget pins the CPU at its maximum; the memory choice
	// can wobble within the 0.5% tie band under measurement noise, but
	// stays high and lands on the true maximum most of the time.
	atMax := 0
	for _, row := range r.Rows {
		st := row.Optimal["inf"]
		if st.CPU != 1000 {
			t.Fatalf("sample %d: unconstrained optimal CPU %v, want 1000", row.Sample, st.CPU)
		}
		if st.Mem < 300 {
			t.Fatalf("sample %d: unconstrained optimal memory %v implausibly low", row.Sample, st.Mem)
		}
		if st == mkSetting(1000, 800) {
			atMax++
		}
	}
	if atMax < len(r.Rows)/2 {
		t.Errorf("unconstrained optimal at 1000/800 for only %d/%d samples", atMax, len(r.Rows))
	}
	// Constrained budgets move with the workload's phases.
	if r.TransitionsPerBudget["1.3"] == 0 {
		t.Error("optimal settings never move at I=1.3; paper's Figure 3 shows per-sample tracking")
	}
	// Memory-intensive samples (high MPKI) get at least as much memory
	// frequency on average as CPU-intensive ones at I=1.3.
	var memSum, cpuSum float64
	var memN, cpuN int
	for _, row := range r.Rows {
		st := row.Optimal["1.3"]
		if row.MPKI > 10 {
			memSum += float64(st.Mem)
			memN++
		} else if row.MPKI < 4 {
			cpuSum += float64(st.Mem)
			cpuN++
		}
	}
	if memN == 0 || cpuN == 0 {
		t.Fatal("gobmk lost its phase mix")
	}
	if memSum/float64(memN) <= cpuSum/float64(cpuN) {
		t.Errorf("memory phases got %.0f MHz memory on average vs %.0f for CPU phases; want more",
			memSum/float64(memN), cpuSum/float64(cpuN))
	}
}

func TestFig04ClusterShapes(t *testing.T) {
	l := testLab(t)
	for _, bench := range []string{"gobmk", "milc"} {
		r, err := l.FigClusters(bench, Fig04Cases())
		if err != nil {
			t.Fatal(err)
		}
		// Cases: {1.0,1%}, {1.0,5%}, {1.3,1%}, {1.3,5%}.
		sizeAt := func(i int) float64 { return r.Cases[i].MeanSize }
		if sizeAt(1) <= sizeAt(0) {
			t.Errorf("%s: 5%% cluster (%.1f) not larger than 1%% (%.1f) at I=1.0", bench, sizeAt(1), sizeAt(0))
		}
		if sizeAt(3) <= sizeAt(2) {
			t.Errorf("%s: 5%% cluster not larger than 1%% at I=1.3", bench)
		}
		// More settings -> fewer regions (longer stable runs).
		if r.Cases[1].Regions > r.Cases[0].Regions {
			t.Errorf("%s: higher threshold produced more regions", bench)
		}
	}
}

func TestFig06LbmRegionShape(t *testing.T) {
	l := testLab(t)
	r, err := l.Fig06("lbm", 1.3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 6: lbm at 5%/1.3 makes a modest number of transitions
	// over 160 samples — neither one giant region nor per-sample churn.
	if r.Transitions() < 1 || r.Transitions() > 40 {
		t.Errorf("lbm transitions = %d, want a modest count", r.Transitions())
	}
	// Every sample covered exactly once, in order.
	next := 0
	for _, reg := range r.Regions {
		if reg.Start != next {
			t.Fatalf("region starts at %d, want %d", reg.Start, next)
		}
		next = reg.End + 1
	}
}

func TestFig08TransitionShapes(t *testing.T) {
	l := testLab(t)
	r, err := l.Fig08(workload.HeadlineNames(), Fig08Budgets(), Fig08Thresholds())
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range workload.HeadlineNames() {
		for _, b := range Fig08Budgets() {
			opt, err := r.Rate(bench, b, OptimalTracking)
			if err != nil {
				t.Fatal(err)
			}
			prev := opt
			for _, th := range []float64{0.01, 0.03, 0.05} {
				rate, err := r.Rate(bench, b, th)
				if err != nil {
					t.Fatal(err)
				}
				// Paper: transitions decrease with increasing threshold,
				// and optimal tracking has the most.
				if rate > prev+1e-9 {
					t.Errorf("%s I=%v: rate at %.0f%% (%.1f) above previous (%.1f)",
						bench, b, th*100, rate, prev)
				}
				prev = rate
			}
		}
	}
	// Optimal tracking at I=1.0 must show real movement for every
	// benchmark (paper Figure 8a: tens of transitions per B instructions).
	for _, bench := range workload.HeadlineNames() {
		opt, _ := r.Rate(bench, 1.0, OptimalTracking)
		if opt <= 0 {
			t.Errorf("%s: optimal tracking never transitions at I=1.0", bench)
		}
	}
}

func TestFig09RegionLengthShapes(t *testing.T) {
	l := testLab(t)
	budgets := []float64{1.0, 1.2, 1.3, 1.6}
	ths := []float64{0.01, 0.03, 0.05}
	r, err := l.Fig09([]string{"gobmk", "bzip2"}, budgets, ths)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig 9b: bzip2's average stable-region length grows strongly
	// with budget; at I=1.6 with >=3% threshold one region covers nearly
	// everything.
	lo, err := r.Box("bzip2", 1.0, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := r.Box("bzip2", 1.6, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Mean < lo.Mean {
		t.Errorf("bzip2 region length decreased with budget: %.1f -> %.1f", lo.Mean, hi.Mean)
	}
	if hi.Max < 100 {
		t.Errorf("bzip2 at I=1.6/3%%: longest region %.0f samples, want near-full coverage", hi.Max)
	}
	// Paper Fig 9a: gobmk's rapidly changing phases keep regions short
	// while the budget binds. Our calibration saturates gobmk's budget
	// slightly below the paper's (~1.5 vs 1.65, see EXPERIMENTS.md), so
	// the short-region claim is checked at I=1.3 where both agree.
	gb, err := r.Box("gobmk", 1.3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if gb.Median > 30 {
		t.Errorf("gobmk median region length %.0f at I=1.3/5%%; paper keeps gobmk regions short", gb.Median)
	}
	// And gobmk grows far less with budget than bzip2 does: the paper's
	// workload-dependence observation.
	gb10, err := r.Box("gobmk", 1.0, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	gb13, err := r.Box("gobmk", 1.3, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if gb13.Mean < gb10.Mean*0.5 {
		t.Errorf("gobmk region length collapsed with budget: %.1f -> %.1f", gb10.Mean, gb13.Mean)
	}
}

func TestFig10TimeNonIncreasingInBudget(t *testing.T) {
	l := testLab(t)
	r, err := l.Fig10(workload.HeadlineNames(), Fig10Budgets())
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range workload.HeadlineNames() {
		prev := math.Inf(1)
		for _, b := range Fig10Budgets() {
			c, err := r.Cell(bench, b)
			if err != nil {
				t.Fatal(err)
			}
			if c.TimeNS > prev*1.001 {
				t.Errorf("%s: time increased from budget step to I=%v", bench, b)
			}
			prev = c.TimeNS
			if b == 1.0 && math.Abs(c.NormalizedTime-1) > 1e-9 {
				t.Errorf("%s: normalization broken at I=1.0", bench)
			}
		}
		// Performance must improve overall from I=1.0 to I=1.6.
		last, _ := r.Cell(bench, 1.6)
		if last.NormalizedTime > 0.95 {
			t.Errorf("%s: only %.1f%% improvement at I=1.6; paper shows smooth trade-offs",
				bench, (1-last.NormalizedTime)*100)
		}
	}
}

func TestFig11TradeoffShapes(t *testing.T) {
	l := testLab(t)
	r, err := l.Fig11(workload.HeadlineNames(), 1.3, Fig11Thresholds(), core.DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	improvedSomewhere := false
	for _, tr := range r.Tradeoffs {
		// Paper: "performance degradation is always within the cluster
		// threshold" (without overhead). The band is two-sided, so small
		// improvements are also legitimate.
		bound := tr.Threshold * 100 / (1 - tr.Threshold)
		if tr.PerfDegradationPct < -(bound+0.7) || tr.PerfDegradationPct > bound+0.1 {
			t.Errorf("th %.0f%%: degradation %.2f%% outside ±%.2f%%",
				tr.Threshold*100, tr.PerfDegradationPct, bound)
		}
		// Region schedules transition no more than optimal tracking.
		if tr.RegionTransitions > tr.OptimalTransitions {
			t.Errorf("region schedule transitions %d > optimal %d",
				tr.RegionTransitions, tr.OptimalTransitions)
		}
		if tr.PerfDegradationWithOverheadPct < tr.PerfDegradationPct-1e-9 {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Error("tuning overhead never favored the region schedule; paper's Fig 11b shows it should")
	}
}

func TestFig12StepSensitivityShapes(t *testing.T) {
	l := testLab(t)
	r, err := l.Fig12("gobmk", 1.3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if r.Coarse.Settings != 70 || r.Fine.Settings != 496 {
		t.Fatalf("space sizes %d/%d", r.Coarse.Settings, r.Fine.Settings)
	}
	// Paper: average region length stays the same or decreases with more
	// steps (more, better choices -> clusters move more). Measurement
	// noise makes the comparison fuzzy at short region lengths, so allow
	// a small margin.
	if r.Fine.MeanRegionLen > r.Coarse.MeanRegionLen*1.3 {
		t.Errorf("fine-grid regions much longer (%.1f) than coarse (%.1f)",
			r.Fine.MeanRegionLen, r.Coarse.MeanRegionLen)
	}
	// Paper: only a small performance improvement from finer steps when
	// tuning is free (they observe <1%; our budget frontier sits between
	// coarse rungs, so we allow a few percent — see EXPERIMENTS.md).
	if r.PerfGainPct < -1 || r.PerfGainPct > 5 {
		t.Errorf("fine-grid perf gain %.2f%%, want small", r.PerfGainPct)
	}
}

func TestGovCompareShapes(t *testing.T) {
	l := testLab(t)
	r, err := l.GovCompare("gobmk", 1.3, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	perf, err := r.Row("performance")
	if err != nil {
		t.Fatal(err)
	}
	save, err := r.Row("powersave")
	if err != nil {
		t.Fatal(err)
	}
	fromMax, err := r.Row("from-max")
	if err != nil {
		t.Fatal(err)
	}
	fromPrev, err := r.Row("from-previous")
	if err != nil {
		t.Fatal(err)
	}
	if perf.TimeNS >= save.TimeNS {
		t.Error("performance governor not faster than powersave")
	}
	// Budget governors respect the budget; performance does not.
	if fromMax.Inefficiency > 1.3*1.06 {
		t.Errorf("from-max governor inefficiency %.2f exceeds budget", fromMax.Inefficiency)
	}
	if perf.Inefficiency < 1.3 {
		t.Error("performance governor unexpectedly within budget; calibration drifted")
	}
	// The paper's Section VII claim: starting the search from the previous
	// setting is cheaper than restarting from scratch (CoScale-style).
	if fromPrev.SettingsPerTune >= fromMax.SettingsPerTune {
		t.Errorf("from-previous searched %.1f settings/tune, from-max %.1f",
			fromPrev.SettingsPerTune, fromMax.SettingsPerTune)
	}
	// Budget governors sit between powersave and performance on speed.
	if fromMax.TimeNS >= save.TimeNS {
		t.Error("budget governor not faster than powersave")
	}
}

func mkSetting(cpu, mem freq.MHz) freq.Setting {
	return freq.Setting{CPU: cpu, Mem: mem}
}

func TestHeteroCrossover(t *testing.T) {
	// Under tight budgets only the LITTLE core is admissible; with loose
	// budgets the big core wins on performance. The crossover must exist
	// for every benchmark.
	l := testLab(t)
	budgets := []float64{1.0, 1.1, 1.2, 1.3, 1.6, 2.0}
	r, err := l.Hetero([]string{"bzip2", "gobmk"}, budgets)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range []string{"bzip2", "gobmk"} {
		tight, err := r.Cell(bench, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if tight.Winner != "little" {
			t.Errorf("%s at I=1.0: winner %s, want little", bench, tight.Winner)
		}
		loose, err := r.Cell(bench, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		if loose.Winner != "big" {
			t.Errorf("%s at I=2.0: winner %s, want big", bench, loose.Winner)
		}
		cross := r.CrossoverBudget[bench]
		if cross <= 1.0 || cross > 2.0 {
			t.Errorf("%s: crossover budget %v outside (1.0, 2.0]", bench, cross)
		}
	}
}

func TestLowPowerShapes(t *testing.T) {
	// Power-down savings must be a small positive system fraction, and a
	// bandwidth-saturated workload must save less per unit background
	// than an idle-memory one in savings-fraction terms.
	l := testLab(t)
	r, err := l.LowPower([]string{"bzip2", "lbm"}, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range []string{"bzip2", "lbm"} {
		row, err := r.Row(bench)
		if err != nil {
			t.Fatal(err)
		}
		if row.SystemSavingsPct <= 0 || row.SystemSavingsPct > 15 {
			t.Errorf("%s: power-down savings %.2f%% implausible", bench, row.SystemSavingsPct)
		}
	}
	bz, _ := r.Row("bzip2")
	lb, _ := r.Row("lbm")
	if lb.AccessPerNS <= bz.AccessPerNS {
		t.Error("lbm should present far more memory traffic than bzip2")
	}
}

func TestImaxSurveyShapes(t *testing.T) {
	l := testLab(t)
	r, err := l.ImaxSurvey()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 14 {
		t.Fatalf("survey covered %d benchmarks", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Imax < 1.5 || row.Imax > 2.5 {
			t.Errorf("%s: Imax %.2f outside the paper-like band", row.Benchmark, row.Imax)
		}
		if row.FastestIneff <= 1 || row.SlowestIneff <= 1 {
			t.Errorf("%s: extremes not inefficient: %v / %v", row.Benchmark, row.FastestIneff, row.SlowestIneff)
		}
		// The worst setting should be a mismatched corner (slow CPU, fast
		// memory), never the Emin setting itself.
		if row.ImaxSetting == row.EminSetting {
			t.Errorf("%s: Imax at the Emin setting is impossible", row.Benchmark)
		}
	}
}

func TestBaselinesShapes(t *testing.T) {
	// Section II quantified: the rate limiter (even with a best-case
	// allowance) is slower AND over budget; EDP lands at a fixed
	// inefficiency it cannot be steered away from.
	l := testLab(t)
	r, err := l.Baselines("gobmk", 1.3)
	if err != nil {
		t.Fatal(err)
	}
	budget, err := r.Row("budget")
	if err != nil {
		t.Fatal(err)
	}
	rate, err := r.Row("ratelimit")
	if err != nil {
		t.Fatal(err)
	}
	edp, err := r.Row("edp(n=1)")
	if err != nil {
		t.Fatal(err)
	}
	if budget.Inefficiency > 1.3*1.06 {
		t.Errorf("budget governor inefficiency %.2f over budget", budget.Inefficiency)
	}
	if rate.TimeNS <= budget.TimeNS {
		t.Error("rate limiter not slower than the budget governor")
	}
	if rate.Inefficiency <= budget.Inefficiency {
		t.Error("rate limiter not less efficient than the budget governor")
	}
	if edp.Inefficiency <= 1.3 {
		t.Errorf("EDP inefficiency %.2f within budget; it should be unsteerable above it", edp.Inefficiency)
	}
}

func TestParetoShapes(t *testing.T) {
	l := testLab(t)
	for _, bench := range []string{"bzip2", "gobmk"} {
		r, err := l.Pareto(bench)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Frontier) < 5 || len(r.Frontier) > r.Total {
			t.Errorf("%s: frontier size %d of %d implausible", bench, len(r.Frontier), r.Total)
		}
		// Sorted by ascending time with descending-or-equal energy.
		for i := 1; i < len(r.Frontier); i++ {
			if r.Frontier[i].TimeNS < r.Frontier[i-1].TimeNS {
				t.Fatalf("%s: frontier not time-sorted", bench)
			}
			if r.Frontier[i].EnergyJ > r.Frontier[i-1].EnergyJ {
				t.Fatalf("%s: frontier energy not non-increasing", bench)
			}
		}
	}
}

func TestFastDVFSShapes(t *testing.T) {
	// Nanosecond-scale regulators must make per-transition overhead
	// negligible compared with commercial PLLs, at identical schedules.
	l := testLab(t)
	r, err := l.FastDVFS("gobmk", 1.3, []float64{0.01, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range []float64{0.01, 0.05} {
		slow, err := r.Cell("commercial", th)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := r.Cell("on-chip-regulator", th)
		if err != nil {
			t.Fatal(err)
		}
		if fast.TransitionNS >= slow.TransitionNS/10 {
			t.Errorf("th %v: fast hardware transition overhead %.3f ms not <10%% of commercial %.3f ms",
				th, fast.TransitionNS/1e6, slow.TransitionNS/1e6)
		}
		if fast.Transitions != slow.Transitions {
			t.Errorf("th %v: schedules diverged (%d vs %d transitions); hardware must not change policy",
				th, fast.Transitions, slow.Transitions)
		}
	}
	// Commercial hardware transition cost must fall as the threshold
	// loosens (fewer transitions) — the paper's core motivation.
	c1, _ := r.Cell("commercial", 0.01)
	c5, _ := r.Cell("commercial", 0.05)
	if c5.TransitionNS >= c1.TransitionNS {
		t.Errorf("commercial transition overhead did not fall with threshold: %.3f -> %.3f ms",
			c1.TransitionNS/1e6, c5.TransitionNS/1e6)
	}
}

func TestModelCompareShapes(t *testing.T) {
	// The online-learned cross-component model must be a usable stand-in
	// for the oracle: budget respected, performance within 10%.
	l := testLab(t)
	r, err := l.ModelCompare([]string{"gobmk", "lbm"}, 1.3, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range []string{"gobmk", "lbm"} {
		oracle, err := r.Row(bench, "oracle")
		if err != nil {
			t.Fatal(err)
		}
		learned, err := r.Row(bench, "learned")
		if err != nil {
			t.Fatal(err)
		}
		if learned.Inefficiency > 1.3*1.08 {
			t.Errorf("%s: learned-model governor inefficiency %.3f exceeds budget", bench, learned.Inefficiency)
		}
		if learned.TimeNS > oracle.TimeNS*1.10 {
			t.Errorf("%s: learned-model governor %.0f ms vs oracle %.0f ms",
				bench, learned.TimeNS/1e6, oracle.TimeNS/1e6)
		}
	}
}
