package experiments

// The grid cache behind Lab: a sharded, mutex-guarded map with
// singleflight semantics (N concurrent requests for one benchmark trigger
// exactly one collection) and an optional persistent JSON layer keyed by
// (benchmark, space, platform-config hash).

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/trace"
)

// gridShardCount spreads keys over independent locks so concurrent
// collections of different benchmarks never contend on one mutex.
const gridShardCount = 16

// gridCache is the in-memory layer. Each shard owns its key range; an
// entry's done channel closes once its grid (or error) is final, which is
// what waiters block on — never a lock held across a collection.
type gridCache struct {
	shards [gridShardCount]gridShard
}

type gridShard struct {
	mu      sync.Mutex
	entries map[string]*gridEntry
}

type gridEntry struct {
	done chan struct{} // closed when g and err are final
	g    *trace.Grid
	err  error
}

func newGridCache() *gridCache {
	c := &gridCache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*gridEntry)
	}
	return c
}

func (c *gridCache) shard(key string) *gridShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%gridShardCount]
}

// do returns the grid for key, invoking collect at most once per key no
// matter how many goroutines ask concurrently. Late callers join the
// in-flight collection and wait on it; a waiter whose ctx is cancelled
// abandons the flight immediately while the owner keeps collecting, so
// the grid still lands in the cache for everyone after it.
//
// A flight that fails (including owner cancellation) deletes its entry
// before publishing the error: no partial or poisoned grid stays cached,
// and the next request simply retries.
//
// The joined result reports whether the caller found an existing entry —
// either a completed grid or an in-flight collection it waited on — as
// opposed to owning the collect call itself. Cache observers use it to
// count coalesced requests.
func (c *gridCache) do(ctx context.Context, key string, collect func() (*trace.Grid, error)) (g *trace.Grid, joined bool, err error) {
	sh := c.shard(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.mu.Unlock()
		select {
		case <-e.done:
			return e.g, true, e.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	e := &gridEntry{done: make(chan struct{})}
	sh.entries[key] = e
	sh.mu.Unlock()

	g, err = collect()
	if err != nil {
		sh.mu.Lock()
		// The entry may already be gone if forget ran mid-flight; delete is
		// a no-op then.
		delete(sh.entries, key)
		sh.mu.Unlock()
	}
	e.g, e.err = g, err
	close(e.done)
	return g, false, err
}

// peek returns key's completed grid, if any, without joining or starting
// a flight. An in-flight collection reads as absent: peek never blocks,
// which is what lets a cluster replica answer "do you have a warm copy"
// without being dragged into a collection.
func (c *gridCache) peek(key string) (*trace.Grid, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return nil, false
		}
		return e.g, true
	default:
		return nil, false
	}
}

// put installs an externally obtained completed grid under key if no
// entry — completed or in flight — exists. It reports whether the grid
// was stored; losing to an existing entry is not an error, the resident
// entry simply wins (matching the cache's exactly-once result identity).
func (c *gridCache) put(key string, g *trace.Grid) bool {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[key]; ok {
		return false
	}
	e := &gridEntry{done: make(chan struct{}), g: g}
	close(e.done)
	sh.entries[key] = e
	return true
}

// forget drops key's entry. An in-flight collection is unaffected — its
// waiters hold the entry pointer and still receive the result — but no new
// request will find it, so the next lookup recollects. It reports whether
// an entry was present.
func (c *gridCache) forget(key string) bool {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.entries[key]
	delete(sh.entries, key)
	return ok
}

// gridKeyHash fingerprints everything a stored grid depends on: the full
// platform configuration (power model, DRAM device, noise, CPI factor) and
// the exact setting list of the space. Two labs share a disk entry iff the
// hash matches, so a recalibrated platform or a reshaped space can never
// serve stale grids.
func gridKeyHash(cfg sim.Config, space *freq.Space) string {
	h := sha256.New()
	fingerprint(h, reflect.ValueOf(cfg))
	for _, st := range space.Settings() {
		fmt.Fprintf(h, "%v %v\n", st.CPU, st.Mem)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// fingerprint writes a canonical deep rendering of v: pointers are
// dereferenced (fmt would print their addresses, which differ between
// otherwise-identical configurations), struct fields — exported or not —
// are walked in declaration order, and map entries are emitted in sorted
// order, so identical configurations always produce identical bytes.
func fingerprint(w io.Writer, v reflect.Value) {
	// Fingerprints only ever target hash.Hash and strings.Builder, neither
	// of which can fail a write; the discard is explicit so the intent is.
	emit := func(s string) { _, _ = io.WriteString(w, s) }
	switch v.Kind() {
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			emit("nil")
			return
		}
		emit("&")
		fingerprint(w, v.Elem())
	case reflect.Struct:
		fmt.Fprintf(w, "%s{", v.Type().Name())
		for i := 0; i < v.NumField(); i++ {
			fingerprint(w, v.Field(i))
			emit(";")
		}
		emit("}")
	case reflect.Slice, reflect.Array:
		emit("[")
		for i := 0; i < v.Len(); i++ {
			fingerprint(w, v.Index(i))
			emit(";")
		}
		emit("]")
	case reflect.Map:
		entries := make([]string, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			var b strings.Builder
			fingerprint(&b, iter.Key())
			b.WriteString("=>")
			fingerprint(&b, iter.Value())
			entries = append(entries, b.String())
		}
		sort.Strings(entries)
		fmt.Fprintf(w, "map%q", entries)
	case reflect.Float32, reflect.Float64:
		fmt.Fprintf(w, "%x", v.Float()) // hex float: exact, locale-free
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(w, "%d", v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		fmt.Fprintf(w, "%d", v.Uint())
	case reflect.String:
		fmt.Fprintf(w, "%q", v.String())
	case reflect.Bool:
		fmt.Fprintf(w, "%t", v.Bool())
	default:
		// Channels, funcs, complex numbers: not configuration data. Render
		// the type name so at worst distinct configs collide, never the
		// reverse.
		fmt.Fprintf(w, "<%s>", v.Type())
	}
}

// diskCache is the optional persistent layer under a Lab.
type diskCache struct {
	dir string
}

// path derives the cache filename for one (benchmark, space, config) key.
func (d diskCache) path(bench, spaceName, cfgHash string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			return r
		}
		return '_'
	}, bench)
	return filepath.Join(d.dir, fmt.Sprintf("%s-%s-%s.grid.json", safe, spaceName, cfgHash))
}

// load returns the stored grid, or nil if it is absent, unreadable, or no
// longer matches the requested benchmark and space (then it is simply
// recollected and rewritten).
func (d diskCache) load(path, bench string, space *freq.Space) *trace.Grid {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	//lint:allow errflow read-only file; a close error after a successful read carries no data loss
	defer f.Close()
	g, err := trace.ReadJSON(f)
	if err != nil {
		return nil
	}
	if g.Benchmark != bench || g.NumSettings() != space.Len() {
		return nil
	}
	for k, st := range space.Settings() {
		if g.Settings[k] != st { //lint:allow floateq a stored grid is valid only under a bit-exact setting match
			return nil
		}
	}
	return g
}

// store persists a grid atomically: written to a temp file and renamed
// into place, so a concurrent load never observes partial JSON.
func (d diskCache) store(path string, g *trace.Grid) error {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, ".grid-*.tmp")
	if err != nil {
		return err
	}
	//lint:allow errflow best-effort cleanup; after the rename succeeds the temp file is already gone
	defer os.Remove(tmp.Name())
	if err := g.WriteJSON(tmp); err != nil {
		_ = tmp.Close() // the write error takes precedence
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
