// Package experiments reproduces every figure of the paper's evaluation
// (Figures 2-12 — the paper has no numbered tables) as a runnable
// experiment over the mcdvfs simulator, plus the governor comparison the
// paper's Section VII implies. Each experiment returns structured results
// and a rendered text table; the bench harness at the repository root calls
// the same runners.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"mcdvfs/internal/core"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/trace"
	"mcdvfs/internal/workload"
)

// Lab owns the simulated platform and caches collected grids, since grid
// collection is the expensive step shared by every experiment. It is safe
// for concurrent use: grids live in a sharded singleflight cache, so N
// goroutines requesting the same benchmark trigger exactly one collection
// and requests for different benchmarks proceed independently.
type Lab struct {
	sys    *sim.System
	cfg    sim.Config
	coarse *freq.Space
	fine   *freq.Space

	workers  int    // Collect worker-pool size; 0 means GOMAXPROCS
	cacheDir string // persistent grid cache directory; "" disables

	coarseGrids *gridCache
	fineGrids   *gridCache

	mu           sync.Mutex
	analyses     map[string]*core.Analysis
	fineAnalyses map[string]*core.Analysis

	// collect is the collection entry point; tests swap it to count
	// flights or inject faults.
	collect func(ctx context.Context, sys *sim.System, b workload.Benchmark, space *freq.Space, opts trace.CollectOptions) (*trace.Grid, error)
}

// Option configures a Lab at construction.
type Option func(*Lab)

// WithWorkers bounds the collection worker pool. Zero or negative selects
// the default (GOMAXPROCS).
func WithWorkers(n int) Option { return func(l *Lab) { l.workers = n } }

// WithGridCacheDir enables the persistent grid cache: collected grids are
// written to dir as JSON keyed by (benchmark, space, platform-config hash)
// and reloaded instead of recollected by any later Lab with an identical
// configuration. Store failures are non-fatal; the in-memory result is
// used regardless.
func WithGridCacheDir(dir string) Option { return func(l *Lab) { l.cacheDir = dir } }

// NewLab builds a lab over the default calibrated platform.
func NewLab(opts ...Option) (*Lab, error) {
	return NewLabWithConfig(sim.DefaultConfig(), opts...)
}

// NewLabWithConfig builds a lab over a custom platform configuration.
func NewLabWithConfig(cfg sim.Config, opts ...Option) (*Lab, error) {
	sys, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	l := &Lab{
		sys:          sys,
		cfg:          cfg,
		coarse:       freq.CoarseSpace(),
		fine:         freq.FineSpace(),
		coarseGrids:  newGridCache(),
		fineGrids:    newGridCache(),
		analyses:     make(map[string]*core.Analysis),
		fineAnalyses: make(map[string]*core.Analysis),
		collect:      trace.CollectContext,
	}
	for _, opt := range opts {
		opt(l)
	}
	return l, nil
}

// System returns the lab's simulator.
func (l *Lab) System() *sim.System { return l.sys }

// CoarseSpace returns the 70-setting space.
func (l *Lab) CoarseSpace() *freq.Space { return l.coarse }

// FineSpace returns the 496-setting space.
func (l *Lab) FineSpace() *freq.Space { return l.fine }

// Grid returns the coarse grid for a benchmark, collecting it on first use.
func (l *Lab) Grid(bench string) (*trace.Grid, error) {
	return l.GridContext(context.Background(), bench)
}

// GridContext is Grid with cancellation: a caller that joins an in-flight
// collection and is cancelled returns promptly with ctx's error while the
// collection itself completes for the remaining waiters; if the collecting
// caller is cancelled, the flight is abandoned and no partial grid stays
// cached.
func (l *Lab) GridContext(ctx context.Context, bench string) (*trace.Grid, error) {
	return l.gridFor(ctx, l.coarseGrids, bench, l.coarse, "coarse")
}

// FineGrid returns the fine-step grid for a benchmark.
func (l *Lab) FineGrid(bench string) (*trace.Grid, error) {
	return l.FineGridContext(context.Background(), bench)
}

// FineGridContext is FineGrid with cancellation (see GridContext).
func (l *Lab) FineGridContext(ctx context.Context, bench string) (*trace.Grid, error) {
	return l.gridFor(ctx, l.fineGrids, bench, l.fine, "fine")
}

func (l *Lab) gridFor(ctx context.Context, cache *gridCache, bench string, space *freq.Space, spaceName string) (*trace.Grid, error) {
	b, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	return cache.do(ctx, bench, func() (*trace.Grid, error) {
		var path string
		if l.cacheDir != "" {
			disk := diskCache{dir: l.cacheDir}
			path = disk.path(bench, spaceName, gridKeyHash(l.cfg, space))
			if g := disk.load(path, bench, space); g != nil {
				return g, nil
			}
		}
		g, err := l.collect(ctx, l.sys, b, space, trace.CollectOptions{Workers: l.workers})
		if err != nil {
			return nil, fmt.Errorf("experiments: collecting %s %s: %w", spaceName, bench, err)
		}
		if path != "" {
			_ = diskCache{dir: l.cacheDir}.store(path, g) // best-effort
		}
		return g, nil
	})
}

// Analysis returns the cached coarse-grid analysis for a benchmark.
func (l *Lab) Analysis(bench string) (*core.Analysis, error) {
	return l.AnalysisContext(context.Background(), bench)
}

// AnalysisContext is Analysis with cancellation of the underlying
// collection.
func (l *Lab) AnalysisContext(ctx context.Context, bench string) (*core.Analysis, error) {
	return l.analysisFor(ctx, l.analyses, bench, l.GridContext)
}

// FineAnalysis returns the cached fine-grid analysis for a benchmark.
func (l *Lab) FineAnalysis(bench string) (*core.Analysis, error) {
	return l.FineAnalysisContext(context.Background(), bench)
}

// FineAnalysisContext is FineAnalysis with cancellation of the underlying
// collection.
func (l *Lab) FineAnalysisContext(ctx context.Context, bench string) (*core.Analysis, error) {
	return l.analysisFor(ctx, l.fineAnalyses, bench, l.FineGridContext)
}

func (l *Lab) analysisFor(ctx context.Context, m map[string]*core.Analysis, bench string,
	grid func(context.Context, string) (*trace.Grid, error)) (*core.Analysis, error) {
	l.mu.Lock()
	a, ok := m[bench]
	l.mu.Unlock()
	if ok {
		return a, nil
	}
	g, err := grid(ctx, bench)
	if err != nil {
		return nil, err
	}
	a, err = core.NewAnalysis(g)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	// Keep the first stored analysis so concurrent builders agree on one
	// pointer, matching the grid cache's exactly-once result identity.
	if prev, ok := m[bench]; ok {
		a = prev
	} else {
		m[bench] = a
	}
	l.mu.Unlock()
	return a, nil
}
