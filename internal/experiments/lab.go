// Package experiments reproduces every figure of the paper's evaluation
// (Figures 2-12 — the paper has no numbered tables) as a runnable
// experiment over the mcdvfs simulator, plus the governor comparison the
// paper's Section VII implies. Each experiment returns structured results
// and a rendered text table; the bench harness at the repository root calls
// the same runners.
package experiments

import (
	"fmt"
	"sync"

	"mcdvfs/internal/core"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/trace"
	"mcdvfs/internal/workload"
)

// Lab owns the simulated platform and caches collected grids, since grid
// collection is the expensive step shared by every experiment.
type Lab struct {
	sys    *sim.System
	coarse *freq.Space
	fine   *freq.Space

	mu           sync.Mutex
	grids        map[string]*trace.Grid
	fineGrids    map[string]*trace.Grid
	analyses     map[string]*core.Analysis
	fineAnalyses map[string]*core.Analysis
}

// NewLab builds a lab over the default calibrated platform.
func NewLab() (*Lab, error) {
	return NewLabWithConfig(sim.DefaultConfig())
}

// NewLabWithConfig builds a lab over a custom platform configuration.
func NewLabWithConfig(cfg sim.Config) (*Lab, error) {
	sys, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Lab{
		sys:          sys,
		coarse:       freq.CoarseSpace(),
		fine:         freq.FineSpace(),
		grids:        make(map[string]*trace.Grid),
		fineGrids:    make(map[string]*trace.Grid),
		analyses:     make(map[string]*core.Analysis),
		fineAnalyses: make(map[string]*core.Analysis),
	}, nil
}

// System returns the lab's simulator.
func (l *Lab) System() *sim.System { return l.sys }

// CoarseSpace returns the 70-setting space.
func (l *Lab) CoarseSpace() *freq.Space { return l.coarse }

// FineSpace returns the 496-setting space.
func (l *Lab) FineSpace() *freq.Space { return l.fine }

// Grid returns the coarse grid for a benchmark, collecting it on first use.
func (l *Lab) Grid(bench string) (*trace.Grid, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if g, ok := l.grids[bench]; ok {
		return g, nil
	}
	b, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	g, err := trace.Collect(l.sys, b, l.coarse)
	if err != nil {
		return nil, fmt.Errorf("experiments: collecting %s: %w", bench, err)
	}
	l.grids[bench] = g
	return g, nil
}

// FineGrid returns the fine-step grid for a benchmark.
func (l *Lab) FineGrid(bench string) (*trace.Grid, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if g, ok := l.fineGrids[bench]; ok {
		return g, nil
	}
	b, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	g, err := trace.Collect(l.sys, b, l.fine)
	if err != nil {
		return nil, fmt.Errorf("experiments: collecting fine %s: %w", bench, err)
	}
	l.fineGrids[bench] = g
	return g, nil
}

// Analysis returns the cached coarse-grid analysis for a benchmark.
func (l *Lab) Analysis(bench string) (*core.Analysis, error) {
	l.mu.Lock()
	a, ok := l.analyses[bench]
	l.mu.Unlock()
	if ok {
		return a, nil
	}
	g, err := l.Grid(bench)
	if err != nil {
		return nil, err
	}
	a, err = core.NewAnalysis(g)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.analyses[bench] = a
	l.mu.Unlock()
	return a, nil
}

// FineAnalysis returns the cached fine-grid analysis for a benchmark.
func (l *Lab) FineAnalysis(bench string) (*core.Analysis, error) {
	l.mu.Lock()
	a, ok := l.fineAnalyses[bench]
	l.mu.Unlock()
	if ok {
		return a, nil
	}
	g, err := l.FineGrid(bench)
	if err != nil {
		return nil, err
	}
	a, err = core.NewAnalysis(g)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.fineAnalyses[bench] = a
	l.mu.Unlock()
	return a, nil
}
