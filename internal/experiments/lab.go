// Package experiments reproduces every figure of the paper's evaluation
// (Figures 2-12 — the paper has no numbered tables) as a runnable
// experiment over the mcdvfs simulator, plus the governor comparison the
// paper's Section VII implies. Each experiment returns structured results
// and a rendered text table; the bench harness at the repository root calls
// the same runners.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"mcdvfs/internal/core"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/trace"
	"mcdvfs/internal/workload"
)

// Lab owns the simulated platform and caches collected grids, since grid
// collection is the expensive step shared by every experiment. It is safe
// for concurrent use: grids live in a sharded singleflight cache, so N
// goroutines requesting the same benchmark trigger exactly one collection
// and requests for different benchmarks proceed independently.
type Lab struct {
	sys    *sim.System
	cfg    sim.Config
	coarse *freq.Space
	fine   *freq.Space

	workers  int    // Collect worker-pool size; 0 means GOMAXPROCS
	cacheDir string // persistent grid cache directory; "" disables

	observer func(GridEvent)                  // grid-cache outcome hook; nil disables
	gate     CollectGate                      // admission control around collections; nil admits all
	progress func(done, total int)            // per-column collection progress; nil disables
	span     func(bench, space string) func() // brackets every owned grid flight; nil disables

	coarseGrids *gridCache
	fineGrids   *gridCache

	mu           sync.Mutex
	analyses     map[string]*core.Analysis
	fineAnalyses map[string]*core.Analysis

	// collect is the collection entry point; tests swap it to count
	// flights or inject faults.
	collect func(ctx context.Context, sys *sim.System, b workload.Benchmark, space *freq.Space, opts trace.CollectOptions) (*trace.Grid, error)
}

// Option configures a Lab at construction.
type Option func(*Lab)

// WithWorkers bounds the collection worker pool. Zero or negative selects
// the default (GOMAXPROCS).
func WithWorkers(n int) Option { return func(l *Lab) { l.workers = n } }

// WithGridCacheDir enables the persistent grid cache: collected grids are
// written to dir as JSON keyed by (benchmark, space, platform-config hash)
// and reloaded instead of recollected by any later Lab with an identical
// configuration. Store failures are non-fatal; the in-memory result is
// used regardless.
func WithGridCacheDir(dir string) Option { return func(l *Lab) { l.cacheDir = dir } }

// GridEventKind classifies how one grid request was satisfied.
type GridEventKind int

const (
	// GridHit: the request joined an existing cache entry — a completed
	// grid, or an in-flight collection it coalesced onto.
	GridHit GridEventKind = iota
	// GridDiskLoad: the grid was reloaded from the persistent cache.
	GridDiskLoad
	// GridCollect: a full collection ran.
	GridCollect
)

// GridEvent describes one successfully satisfied grid request.
type GridEvent struct {
	Benchmark string
	Space     string // "coarse" or "fine"
	Kind      GridEventKind
}

// WithGridObserver registers fn to be called once per successful grid
// request with how it was satisfied. fn runs on the requesting goroutine
// (or the collecting one, for GridCollect/GridDiskLoad) and must be safe
// for concurrent use and fast — it sits on the grid hot path. The serve
// layer uses it to export cache and coalescing counters.
func WithGridObserver(fn func(GridEvent)) Option { return func(l *Lab) { l.observer = fn } }

// CollectGate admits one grid collection. Implementations return a release
// func to call when the collection finishes, or an error (e.g. a
// saturation sentinel) to fail the flight without collecting — the error
// propagates to every request coalesced onto the flight. A nil gate admits
// everything.
type CollectGate func(ctx context.Context) (release func(), err error)

// WithCollectGate bounds collections with an admission gate: the lab
// acquires the gate after the persistent cache misses and before the sweep
// starts, so cache hits and coalesced joins never consume a slot. The
// serve layer supplies its bounded worker pool here.
func WithCollectGate(g CollectGate) Option { return func(l *Lab) { l.gate = g } }

// WithCollectProgress registers a per-column progress hook forwarded to
// trace.CollectOptions.OnProgress for every collection this lab runs; fn
// must be safe for concurrent use.
func WithCollectProgress(fn func(done, total int)) Option {
	return func(l *Lab) { l.progress = fn }
}

// WithCollectSpan registers fn to bracket every grid-cache flight this
// lab owns: fn is called on the flight-owning goroutine when the flight
// starts (before the persistent-cache probe, the admission gate, and the
// collection itself) and the returned done func when the flight finishes,
// success or failure. Coalesced joiners never trigger fn — exactly one
// span per flight. The cluster router uses it to publish in-flight keys
// to peers, so a collection running anywhere in the cluster is
// discoverable while it runs.
func WithCollectSpan(fn func(bench, space string) (done func())) Option {
	return func(l *Lab) { l.span = fn }
}

// NewLab builds a lab over the default calibrated platform.
func NewLab(opts ...Option) (*Lab, error) {
	return NewLabWithConfig(sim.DefaultConfig(), opts...)
}

// NewLabWithConfig builds a lab over a custom platform configuration.
func NewLabWithConfig(cfg sim.Config, opts ...Option) (*Lab, error) {
	sys, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	l := &Lab{
		sys:          sys,
		cfg:          cfg,
		coarse:       freq.CoarseSpace(),
		fine:         freq.FineSpace(),
		coarseGrids:  newGridCache(),
		fineGrids:    newGridCache(),
		analyses:     make(map[string]*core.Analysis),
		fineAnalyses: make(map[string]*core.Analysis),
		collect:      trace.CollectContext,
	}
	for _, opt := range opts {
		opt(l)
	}
	return l, nil
}

// System returns the lab's simulator.
func (l *Lab) System() *sim.System { return l.sys }

// CoarseSpace returns the 70-setting space.
func (l *Lab) CoarseSpace() *freq.Space { return l.coarse }

// FineSpace returns the 496-setting space.
func (l *Lab) FineSpace() *freq.Space { return l.fine }

// Grid returns the coarse grid for a benchmark, collecting it on first use.
func (l *Lab) Grid(bench string) (*trace.Grid, error) {
	return l.GridContext(context.Background(), bench)
}

// GridContext is Grid with cancellation: a caller that joins an in-flight
// collection and is cancelled returns promptly with ctx's error while the
// collection itself completes for the remaining waiters; if the collecting
// caller is cancelled, the flight is abandoned and no partial grid stays
// cached.
func (l *Lab) GridContext(ctx context.Context, bench string) (*trace.Grid, error) {
	return l.gridFor(ctx, l.coarseGrids, bench, l.coarse, "coarse")
}

// FineGrid returns the fine-step grid for a benchmark.
func (l *Lab) FineGrid(bench string) (*trace.Grid, error) {
	return l.FineGridContext(context.Background(), bench)
}

// FineGridContext is FineGrid with cancellation (see GridContext).
func (l *Lab) FineGridContext(ctx context.Context, bench string) (*trace.Grid, error) {
	return l.gridFor(ctx, l.fineGrids, bench, l.fine, "fine")
}

func (l *Lab) gridFor(ctx context.Context, cache *gridCache, bench string, space *freq.Space, spaceName string) (*trace.Grid, error) {
	b, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	emit := func(kind GridEventKind) {
		if l.observer != nil {
			l.observer(GridEvent{Benchmark: bench, Space: spaceName, Kind: kind})
		}
	}
	g, joined, err := cache.do(ctx, bench, func() (*trace.Grid, error) {
		if l.span != nil {
			done := l.span(bench, spaceName)
			defer done()
		}
		var path string
		if l.cacheDir != "" {
			disk := diskCache{dir: l.cacheDir}
			path = disk.path(bench, spaceName, gridKeyHash(l.cfg, space))
			if g := disk.load(path, bench, space); g != nil {
				emit(GridDiskLoad)
				return g, nil
			}
		}
		if l.gate != nil {
			release, err := l.gate(ctx)
			if err != nil {
				return nil, fmt.Errorf("experiments: collecting %s %s: %w", spaceName, bench, err)
			}
			defer release()
		}
		g, err := l.collect(ctx, l.sys, b, space, trace.CollectOptions{Workers: l.workers, OnProgress: l.progress})
		if err != nil {
			return nil, fmt.Errorf("experiments: collecting %s %s: %w", spaceName, bench, err)
		}
		emit(GridCollect)
		if path != "" {
			_ = diskCache{dir: l.cacheDir}.store(path, g) // best-effort
		}
		return g, nil
	})
	if err == nil && joined {
		emit(GridHit)
	}
	return g, err
}

// spaceFor resolves a published space name. Only "coarse" and "fine"
// exist; the empty string is not accepted here — callers normalize first.
func (l *Lab) spaceFor(spaceName string) (*gridCache, *freq.Space, error) {
	switch spaceName {
	case "coarse":
		return l.coarseGrids, l.coarse, nil
	case "fine":
		return l.fineGrids, l.fine, nil
	default:
		return nil, nil, fmt.Errorf("experiments: unknown space %q (use coarse or fine)", spaceName)
	}
}

// GridKeyHash returns the platform fingerprint a stored or replicated
// grid depends on: the full simulator configuration plus the exact
// setting list of the named space — the same hash that keys the
// persistent disk cache. Two labs (or two cluster nodes) agree on a grid
// key iff this hash matches, so a recalibrated platform can never be
// routed onto a peer's stale shard.
func (l *Lab) GridKeyHash(spaceName string) (string, error) {
	_, space, err := l.spaceFor(spaceName)
	if err != nil {
		return "", err
	}
	return gridKeyHash(l.cfg, space), nil
}

// PeekGrid returns the completed cached grid for a benchmark in the named
// space without collecting, joining an in-flight collection, or touching
// the persistent cache. It is the cluster's warm-replica probe: a node
// answering a cached-only request must never be dragged into a
// collection.
func (l *Lab) PeekGrid(bench, spaceName string) (*trace.Grid, bool) {
	cache, _, err := l.spaceFor(spaceName)
	if err != nil {
		return nil, false
	}
	return cache.peek(bench)
}

// SeedGrid installs an externally obtained grid — typically replicated
// from a cluster peer's response — into the in-memory cache, if no entry
// for the benchmark exists. The grid is validated the same way a
// persistent-cache load is (benchmark name and a bit-exact setting-list
// match against the named space); a mismatched grid is rejected rather
// than poisoning the cache. It reports whether the grid was stored.
func (l *Lab) SeedGrid(bench, spaceName string, g *trace.Grid) bool { //lint:allow ctx validation-only walk over an already collected grid; no sweep is performed
	cache, space, err := l.spaceFor(spaceName)
	if err != nil || g == nil {
		return false
	}
	if g.Benchmark != bench || g.NumSettings() != space.Len() {
		return false
	}
	for k, st := range space.Settings() {
		if g.Settings[k] != st { //lint:allow floateq a replicated grid is valid only under a bit-exact setting match
			return false
		}
	}
	return cache.put(bench, g)
}

// Forget drops every cached artifact for a benchmark — coarse and fine
// grids plus their analyses — so the next request recollects. In-flight
// collections are unaffected: their waiters still get the result, it just
// is not retained. Size-bounding layers (the serve LRU) call this on
// eviction. It reports whether anything was cached.
func (l *Lab) Forget(bench string) bool {
	dropped := l.coarseGrids.forget(bench)
	dropped = l.fineGrids.forget(bench) || dropped
	l.mu.Lock()
	if _, ok := l.analyses[bench]; ok {
		delete(l.analyses, bench)
		dropped = true
	}
	if _, ok := l.fineAnalyses[bench]; ok {
		delete(l.fineAnalyses, bench)
		dropped = true
	}
	l.mu.Unlock()
	return dropped
}

// Analysis returns the cached coarse-grid analysis for a benchmark.
func (l *Lab) Analysis(bench string) (*core.Analysis, error) {
	return l.AnalysisContext(context.Background(), bench)
}

// AnalysisContext is Analysis with cancellation of the underlying
// collection.
func (l *Lab) AnalysisContext(ctx context.Context, bench string) (*core.Analysis, error) {
	return l.analysisFor(ctx, l.analyses, bench, l.GridContext)
}

// FineAnalysis returns the cached fine-grid analysis for a benchmark.
func (l *Lab) FineAnalysis(bench string) (*core.Analysis, error) {
	return l.FineAnalysisContext(context.Background(), bench)
}

// FineAnalysisContext is FineAnalysis with cancellation of the underlying
// collection.
func (l *Lab) FineAnalysisContext(ctx context.Context, bench string) (*core.Analysis, error) {
	return l.analysisFor(ctx, l.fineAnalyses, bench, l.FineGridContext)
}

func (l *Lab) analysisFor(ctx context.Context, m map[string]*core.Analysis, bench string,
	grid func(context.Context, string) (*trace.Grid, error)) (*core.Analysis, error) {
	l.mu.Lock()
	a, ok := m[bench]
	l.mu.Unlock()
	if ok {
		return a, nil
	}
	g, err := grid(ctx, bench)
	if err != nil {
		return nil, err
	}
	a, err = core.NewAnalysis(g)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	// Keep the first stored analysis so concurrent builders agree on one
	// pointer, matching the grid cache's exactly-once result identity.
	if prev, ok := m[bench]; ok {
		a = prev
	} else {
		m[bench] = a
	}
	l.mu.Unlock()
	return a, nil
}
