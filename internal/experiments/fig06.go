package experiments

import (
	"fmt"

	"mcdvfs/internal/core"
	"mcdvfs/internal/report"
	"mcdvfs/internal/stats"
)

// Fig06Result reproduces Figure 6: the stable regions and transition
// points of lbm at inefficiency budget 1.3 and cluster threshold 5%.
type Fig06Result struct {
	Benchmark string
	Budget    float64
	Threshold float64
	Regions   []core.Region
	Settings  []string // chosen setting per region
}

// Fig06 computes the stable-region schedule for a benchmark.
func (l *Lab) Fig06(bench string, budget, threshold float64) (*Fig06Result, error) {
	a, err := l.Analysis(bench)
	if err != nil {
		return nil, err
	}
	regions, err := a.StableRegions(budget, threshold)
	if err != nil {
		return nil, err
	}
	res := &Fig06Result{Benchmark: bench, Budget: budget, Threshold: threshold, Regions: regions}
	for _, r := range regions {
		res.Settings = append(res.Settings, a.Grid().Setting(r.Choice).String())
	}
	return res, nil
}

// Transitions returns the number of transitions the region schedule makes.
func (r *Fig06Result) Transitions() int { return len(r.Regions) - 1 }

// Table renders the region schedule.
func (r *Fig06Result) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 6 — %s stable regions (I=%s, threshold %.0f%%): %d regions, %d transitions",
			r.Benchmark, BudgetLabel(r.Budget), r.Threshold*100, len(r.Regions), r.Transitions()),
		"region", "samples", "length", "setting", "avail")
	for i, reg := range r.Regions {
		t.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("[%d,%d]", reg.Start, reg.End),
			fmt.Sprintf("%d", reg.Len()),
			r.Settings[i],
			fmt.Sprintf("%d", len(reg.Avail)),
		)
	}
	return t
}

// Fig07Case is one (benchmark, budget, threshold) stable-region summary.
type Fig07Case struct {
	Benchmark string
	Budget    float64
	Threshold float64
	Regions   int
	MeanLen   float64
}

// Fig07Result reproduces Figure 7: stable regions of gcc and lbm across
// thresholds and budgets, summarized as region counts and mean lengths.
type Fig07Result struct {
	Cases []Fig07Case
}

// Fig07 computes the stable-region comparison. The paper plots gcc and lbm
// at I=1.3 with thresholds 3% and 5%, noting that higher budgets run
// unconstrained throughout; budgets 1.0 and inf are included to show that.
func (l *Lab) Fig07(benches []string, budgets []float64, thresholds []float64) (*Fig07Result, error) {
	res := &Fig07Result{}
	for _, bench := range benches {
		a, err := l.Analysis(bench)
		if err != nil {
			return nil, err
		}
		for _, b := range budgets {
			for _, th := range thresholds {
				regions, err := a.StableRegions(b, th)
				if err != nil {
					return nil, err
				}
				sum, err := stats.SummarizeInts(core.RegionLengths(regions))
				if err != nil {
					return nil, err
				}
				res.Cases = append(res.Cases, Fig07Case{
					Benchmark: bench,
					Budget:    b,
					Threshold: th,
					Regions:   len(regions),
					MeanLen:   sum.Mean,
				})
			}
		}
	}
	return res, nil
}

// Table renders the comparison.
func (r *Fig07Result) Table() *report.Table {
	t := report.NewTable("Figure 7 — stable regions vs threshold and budget",
		"benchmark", "budget", "threshold", "regions", "mean length")
	for _, c := range r.Cases {
		t.AddRow(c.Benchmark, BudgetLabel(c.Budget),
			fmt.Sprintf("%.0f%%", c.Threshold*100),
			fmt.Sprintf("%d", c.Regions),
			fmt.Sprintf("%.1f", c.MeanLen))
	}
	return t
}
