package experiments

import (
	"fmt"
	"math"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/governor"
	"mcdvfs/internal/report"
	"mcdvfs/internal/workload"
)

// GovRow is one governor's end-to-end outcome on a benchmark.
type GovRow struct {
	Governor        string
	TimeNS          float64
	EnergyJ         float64
	Inefficiency    float64 // achieved whole-run inefficiency vs brute-force Emin
	Transitions     int
	Tunes           int
	SettingsPerTune float64
	OverheadNS      float64
}

// GovCompareResult is the online-governor comparison the paper's Section
// VII motivates: static governors, the CoScale-style restart-from-max
// search, the paper-inspired start-from-previous search, and the
// stability-predicting variant, all under the same inefficiency budget.
type GovCompareResult struct {
	Benchmark string
	Budget    float64
	Threshold float64
	Rows      []GovRow
}

// GovCompare runs the governor suite on one benchmark.
func (l *Lab) GovCompare(bench string, budget, threshold float64) (*GovCompareResult, error) { //lint:allow ctx in-memory loop over an already-collected grid; collection is ctx-bound via Lab.GridContext
	b, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	specs, err := b.Realize()
	if err != nil {
		return nil, err
	}
	// Whole-run Emin reference: cheapest pinned setting from the grid.
	g, err := l.Grid(bench)
	if err != nil {
		return nil, err
	}
	eminRun := math.Inf(1)
	for k := range g.Settings {
		if e := g.TotalEnergyJ(freq.SettingID(k)); e < eminRun {
			eminRun = e
		}
	}

	model, err := governor.NewSimModel()
	if err != nil {
		return nil, err
	}
	mk := func(search governor.SearchStart, stability bool) (*governor.Budget, error) {
		return governor.NewBudget(governor.BudgetConfig{
			Budget:         budget,
			Threshold:      threshold,
			Space:          l.coarse,
			Model:          model,
			Search:         search,
			UseStability:   stability,
			DriftTolerance: 0.25,
		})
	}
	fromMax, err := mk(governor.FromMax, false)
	if err != nil {
		return nil, err
	}
	fromPrev, err := mk(governor.FromPrevious, false)
	if err != nil {
		return nil, err
	}
	stab, err := mk(governor.FromMax, true)
	if err != nil {
		return nil, err
	}
	ondemand, err := governor.NewOnDemand(l.coarse)
	if err != nil {
		return nil, err
	}
	govs := []governor.Governor{
		governor.NewPerformance(l.coarse),
		governor.NewPowersave(l.coarse),
		ondemand,
		fromMax,
		fromPrev,
		stab,
	}
	res := &GovCompareResult{Benchmark: bench, Budget: budget, Threshold: threshold}
	for _, gv := range govs {
		r, err := governor.Run(l.sys, specs, gv, governor.DefaultOverhead())
		if err != nil {
			return nil, fmt.Errorf("experiments: governor %s: %w", gv.Name(), err)
		}
		res.Rows = append(res.Rows, GovRow{
			Governor:        r.Governor,
			TimeNS:          r.TimeNS,
			EnergyJ:         r.EnergyJ,
			Inefficiency:    r.EnergyJ / eminRun,
			Transitions:     r.Transitions,
			Tunes:           r.Tunes,
			SettingsPerTune: r.AvgSearchedPerTune(),
			OverheadNS:      r.OverheadNS,
		})
	}
	return res, nil
}

// Row returns the entry whose governor name contains the given substring.
func (r *GovCompareResult) Row(nameContains string) (GovRow, error) {
	for _, row := range r.Rows {
		if contains(row.Governor, nameContains) {
			return row, nil
		}
	}
	return GovRow{}, fmt.Errorf("experiments: no governor row matching %q", nameContains)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Table renders the comparison.
func (r *GovCompareResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Governor comparison — %s (I=%s, threshold %.0f%%)", r.Benchmark, BudgetLabel(r.Budget), r.Threshold*100),
		"governor", "time (ms)", "energy (mJ)", "ineff", "transitions", "tunes", "settings/tune", "overhead (ms)")
	for _, row := range r.Rows {
		t.AddRow(row.Governor,
			fmt.Sprintf("%.1f", row.TimeNS/1e6),
			fmt.Sprintf("%.1f", row.EnergyJ*1e3),
			fmt.Sprintf("%.2f", row.Inefficiency),
			fmt.Sprintf("%d", row.Transitions),
			fmt.Sprintf("%d", row.Tunes),
			fmt.Sprintf("%.1f", row.SettingsPerTune),
			fmt.Sprintf("%.2f", row.OverheadNS/1e6))
	}
	return t
}
