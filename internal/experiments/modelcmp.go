package experiments

import (
	"fmt"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/governor"
	"mcdvfs/internal/model"
	"mcdvfs/internal/report"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/workload"
)

// ModelCmpRow is one (model, benchmark) outcome.
type ModelCmpRow struct {
	Benchmark    string
	Model        string
	TimeNS       float64
	EnergyJ      float64
	Inefficiency float64
	Transitions  int
}

// ModelCmpResult compares the budget governor driven by the perfect
// (oracle) component model against the online-learned cross-component
// model — the predictive models the paper defers to future work, made
// runnable and measured.
type ModelCmpResult struct {
	Budget    float64
	Threshold float64
	Rows      []ModelCmpRow
}

// ModelCompare runs the comparison on the given benchmarks.
func (l *Lab) ModelCompare(benches []string, budget, threshold float64) (*ModelCmpResult, error) { //lint:allow ctx in-memory loop over an already-collected grid; collection is ctx-bound via Lab.GridContext
	res := &ModelCmpResult{Budget: budget, Threshold: threshold}
	for _, bench := range benches {
		b, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		specs, err := b.Realize()
		if err != nil {
			return nil, err
		}
		g, err := l.Grid(bench)
		if err != nil {
			return nil, err
		}
		eminRun := -1.0
		for k := range g.Settings {
			if e := g.TotalEnergyJ(freq.SettingID(k)); eminRun < 0 || e < eminRun {
				eminRun = e
			}
		}

		oracle, err := governor.NewSimModel()
		if err != nil {
			return nil, err
		}
		platform := sim.NoiselessConfig()
		learned, err := model.New(model.Config{CPUPower: platform.CPUPower, Device: platform.Device})
		if err != nil {
			return nil, err
		}
		for _, m := range []struct {
			name string
			mdl  governor.Model
		}{
			{"oracle", oracle},
			{"learned", learned},
		} {
			gov, err := governor.NewBudget(governor.BudgetConfig{
				Budget:    budget,
				Threshold: threshold,
				Space:     l.coarse,
				Model:     m.mdl,
				Search:    governor.FromMax,
			})
			if err != nil {
				return nil, err
			}
			r, err := governor.Run(l.sys, specs, gov, governor.DefaultOverhead())
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", bench, m.name, err)
			}
			res.Rows = append(res.Rows, ModelCmpRow{
				Benchmark:    bench,
				Model:        m.name,
				TimeNS:       r.TimeNS,
				EnergyJ:      r.EnergyJ,
				Inefficiency: r.EnergyJ / eminRun,
				Transitions:  r.Transitions,
			})
		}
	}
	return res, nil
}

// Row returns the entry for (benchmark, model).
func (r *ModelCmpResult) Row(bench, mdl string) (ModelCmpRow, error) {
	for _, row := range r.Rows {
		if row.Benchmark == bench && row.Model == mdl {
			return row, nil
		}
	}
	return ModelCmpRow{}, fmt.Errorf("experiments: no modelcmp row for %s/%s", bench, mdl)
}

// Table renders the comparison.
func (r *ModelCmpResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Predictive-model comparison — budget governor at I=%s, threshold %.0f%% (paper future work §VIII)",
			BudgetLabel(r.Budget), r.Threshold*100),
		"benchmark", "model", "time (ms)", "energy (mJ)", "ineff", "transitions")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.Model,
			fmt.Sprintf("%.1f", row.TimeNS/1e6),
			fmt.Sprintf("%.1f", row.EnergyJ*1e3),
			fmt.Sprintf("%.2f", row.Inefficiency),
			fmt.Sprintf("%d", row.Transitions))
	}
	return t
}
