package experiments

// Concurrency suite for the Lab's sharded singleflight grid cache: N
// goroutines per key must trigger exactly one collection, losing waiters
// must unblock on their own cancellation without killing the flight, an
// owner's cancellation must leave no partial grid cached, and the optional
// disk layer must satisfy a second lab without recollecting.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/trace"
	"mcdvfs/internal/workload"
)

// countingLab wraps a fresh Lab's collect hook with a per-key flight
// counter, optionally delaying each flight to widen the race window.
func countingLab(t *testing.T, delay time.Duration, opts ...Option) (*Lab, *sync.Map) {
	t.Helper()
	l, err := NewLab(opts...)
	if err != nil {
		t.Fatalf("NewLab: %v", err)
	}
	var counts sync.Map // key string -> *atomic.Int64
	inner := l.collect
	l.collect = func(ctx context.Context, sys *sim.System, b workload.Benchmark, space *freq.Space, o trace.CollectOptions) (*trace.Grid, error) {
		c, _ := counts.LoadOrStore(b.Name+"/"+spaceKind(space), new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return inner(ctx, sys, b, space, o)
	}
	return l, &counts
}

func spaceKind(space *freq.Space) string {
	if space.Len() == freq.FineSpace().Len() {
		return "fine"
	}
	return "coarse"
}

func flightCount(counts *sync.Map, key string) int64 {
	c, ok := counts.Load(key)
	if !ok {
		return 0
	}
	return c.(*atomic.Int64).Load()
}

func TestLabSingleflightUnderContention(t *testing.T) {
	l, counts := countingLab(t, 2*time.Millisecond)
	benches := []string{"gobmk", "milc", "lbm", "bzip2"}
	const perBench = 8 // 32 goroutines over 4 overlapping keys

	var wg sync.WaitGroup
	grids := make([][]*trace.Grid, len(benches))
	for i := range grids {
		grids[i] = make([]*trace.Grid, perBench)
	}
	errs := make(chan error, len(benches)*perBench+perBench)
	for i, name := range benches {
		for j := 0; j < perBench; j++ {
			wg.Add(1)
			go func(i, j int, name string) {
				defer wg.Done()
				g, err := l.Grid(name)
				if err != nil {
					errs <- err
					return
				}
				grids[i][j] = g
			}(i, j, name)
		}
	}
	// Overlap a fine-grid flight for one of the same benchmarks: distinct
	// key space, same lab, same contention window.
	fineGrids := make([]*trace.Grid, perBench)
	for j := 0; j < perBench; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			g, err := l.FineGrid("gobmk")
			if err != nil {
				errs <- err
				return
			}
			fineGrids[j] = g
		}(j)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i, name := range benches {
		if n := flightCount(counts, name+"/coarse"); n != 1 {
			t.Errorf("%s: %d coarse collections, want exactly 1", name, n)
		}
		for j := 1; j < perBench; j++ {
			if grids[i][j] != grids[i][0] {
				t.Errorf("%s: goroutine %d saw a different grid pointer", name, j)
			}
		}
	}
	if n := flightCount(counts, "gobmk/fine"); n != 1 {
		t.Errorf("gobmk fine: %d collections, want exactly 1", n)
	}
	for j := 1; j < perBench; j++ {
		if fineGrids[j] != fineGrids[0] {
			t.Errorf("fine goroutine %d saw a different grid pointer", j)
		}
	}
}

func TestLabLosingWaiterCancellation(t *testing.T) {
	l, counts := countingLab(t, 50*time.Millisecond)

	// Owner: uncancellable flight.
	ownerDone := make(chan error, 1)
	go func() {
		_, err := l.GridContext(context.Background(), "gobmk")
		ownerDone <- err
	}()
	// Give the owner the flight, then join as a cancellable waiter.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := l.GridContext(ctx, "gobmk")
		waiterDone <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()

	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-ownerDone:
		t.Fatal("owner finished before the cancelled waiter unblocked")
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not unblock")
	}
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner err = %v", err)
	}

	// The abandoned waiter must not have hurt the cache: the grid is in,
	// and a fresh request is a pure hit.
	if _, err := l.Grid("gobmk"); err != nil {
		t.Fatalf("post-cancellation Grid: %v", err)
	}
	if n := flightCount(counts, "gobmk/coarse"); n != 1 {
		t.Errorf("%d collections after waiter cancellation, want exactly 1", n)
	}
}

func TestLabOwnerCancellationLeavesNoPartialGrid(t *testing.T) {
	l, counts := countingLab(t, 0)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// The fine sweep is long enough that cancellation lands mid-flight.
		_, err := l.FineGridContext(ctx, "milc")
		done <- err
	}()
	time.Sleep(3 * time.Millisecond)
	cancel()
	// Bound cancellation latency with a channel timeout rather than a
	// time.Now/Since measurement: the determinism check bans wall-clock
	// reads in this suite so timing jitter cannot mask ordering bugs.
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("owner err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled owner did not return within 2s, want far below one full sweep")
	}

	// No partial grid may linger: the next request collects from scratch
	// and succeeds.
	g, err := l.FineGrid("milc")
	if err != nil {
		t.Fatalf("FineGrid after cancelled flight: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("recollected grid invalid: %v", err)
	}
	if n := flightCount(counts, "milc/fine"); n != 2 {
		t.Errorf("%d collections, want 2 (cancelled flight + clean retry)", n)
	}
}

func TestLabDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l1, counts1 := countingLab(t, 0, WithGridCacheDir(dir))
	g1, err := l1.Grid("gobmk")
	if err != nil {
		t.Fatalf("first lab Grid: %v", err)
	}
	if n := flightCount(counts1, "gobmk/coarse"); n != 1 {
		t.Fatalf("first lab ran %d collections, want 1", n)
	}

	// A second lab over the same configuration and directory must load the
	// stored grid without collecting at all.
	l2, counts2 := countingLab(t, 0, WithGridCacheDir(dir))
	g2, err := l2.Grid("gobmk")
	if err != nil {
		t.Fatalf("second lab Grid: %v", err)
	}
	if n := flightCount(counts2, "gobmk/coarse"); n != 0 {
		t.Errorf("second lab ran %d collections, want 0 (disk hit)", n)
	}
	var b1, b2 bytes.Buffer
	if err := g1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := g2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("disk-loaded grid differs from the collected one")
	}

	// A different platform configuration hashes to a different key and
	// must not be served the stored grid.
	cfg := sim.DefaultConfig()
	cfg.MeasurementNoise = 0
	l3, err := NewLabWithConfig(cfg, WithGridCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	g3, err := l3.Grid("gobmk")
	if err != nil {
		t.Fatalf("third lab Grid: %v", err)
	}
	var b3 bytes.Buffer
	if err := g3.WriteJSON(&b3); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Error("noiseless lab was served the noisy lab's stored grid")
	}
}
