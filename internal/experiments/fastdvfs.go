package experiments

import (
	"fmt"

	"mcdvfs/internal/dvfsm"
	"mcdvfs/internal/governor"
	"mcdvfs/internal/report"
	"mcdvfs/internal/workload"
)

// FastDVFSCell is one (hardware, threshold) outcome.
type FastDVFSCell struct {
	Hardware  string
	Threshold float64
	TimeNS    float64
	// OverheadNS is the total governor overhead (search + transitions);
	// TransitionNS isolates the hardware-transition part.
	OverheadNS   float64
	TransitionNS float64
	Transitions  int
}

// FastDVFSResult studies how transition hardware changes the cluster
// trade-off: with commercial PLLs and regulators ("10s of microseconds"
// per transition, per the paper) a governor must tolerate performance
// slack to tune rarely, but with nanosecond-scale integrated regulators
// (the paper's Kim et al. reference) transitions become nearly free and
// tight tracking becomes affordable.
type FastDVFSResult struct {
	Benchmark string
	Budget    float64
	Cells     []FastDVFSCell
}

// FastDVFS runs the comparison.
func (l *Lab) FastDVFS(bench string, budget float64, thresholds []float64) (*FastDVFSResult, error) {
	b, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	specs, err := b.Realize()
	if err != nil {
		return nil, err
	}
	model, err := governor.NewSimModel()
	if err != nil {
		return nil, err
	}
	hardware := []struct {
		name string
		seq  *dvfsm.Sequencer
	}{
		{"commercial", dvfsm.MustNew(dvfsm.DefaultParams())},
		{"on-chip-regulator", dvfsm.MustNew(dvfsm.FastParams())},
	}
	res := &FastDVFSResult{Benchmark: bench, Budget: budget}
	for _, hw := range hardware {
		for _, th := range thresholds {
			gov, err := governor.NewBudget(governor.BudgetConfig{
				Budget: budget, Threshold: th, Space: l.coarse,
				Model: model, Search: governor.FromMax,
			})
			if err != nil {
				return nil, err
			}
			r, err := governor.RunWith(l.sys, specs, gov, governor.DefaultOverhead(), hw.seq)
			if err != nil {
				return nil, fmt.Errorf("experiments: fastdvfs %s th=%v: %w", hw.name, th, err)
			}
			searchNS := float64(r.SettingsSearched) * governor.DefaultOverhead().PerSettingNS
			res.Cells = append(res.Cells, FastDVFSCell{
				Hardware:     hw.name,
				Threshold:    th,
				TimeNS:       r.TimeNS,
				OverheadNS:   r.OverheadNS,
				TransitionNS: r.OverheadNS - searchNS,
				Transitions:  r.Transitions,
			})
		}
	}
	return res, nil
}

// Cell returns the entry for (hardware, threshold).
func (r *FastDVFSResult) Cell(hardware string, threshold float64) (FastDVFSCell, error) {
	for _, c := range r.Cells {
		if c.Hardware == hardware && c.Threshold == threshold { //lint:allow floateq cells are keyed by the exact threshold they were built with
			return c, nil
		}
	}
	return FastDVFSCell{}, fmt.Errorf("experiments: no fastdvfs cell for %s/%v", hardware, threshold)
}

// Table renders the comparison.
func (r *FastDVFSResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Transition hardware study — %s at I=%s (commercial PLL vs nanosecond on-chip regulator)",
			r.Benchmark, BudgetLabel(r.Budget)),
		"hardware", "threshold", "time (ms)", "transition oh (ms)", "transitions")
	for _, c := range r.Cells {
		t.AddRow(c.Hardware,
			fmt.Sprintf("%.0f%%", c.Threshold*100),
			fmt.Sprintf("%.1f", c.TimeNS/1e6),
			fmt.Sprintf("%.3f", c.TransitionNS/1e6),
			fmt.Sprintf("%d", c.Transitions))
	}
	return t
}
