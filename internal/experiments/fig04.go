package experiments

import (
	"fmt"

	"mcdvfs/internal/core"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/report"
)

// ClusterRow summarizes one sample's performance cluster: the frequency
// envelope the cluster spans on each domain, matching how Figures 4 and 5
// plot clusters as vertical extents.
type ClusterRow struct {
	Sample         int
	Size           int
	Optimal        freq.Setting
	CPUMin, CPUMax freq.MHz
	MemMin, MemMax freq.MHz
}

// ClusterCase is the cluster trajectory for one (budget, threshold) pair.
type ClusterCase struct {
	Budget    float64
	Threshold float64
	Rows      []ClusterRow
	MeanSize  float64
	// Regions is the resulting stable-region count, the quantity the
	// cluster width ultimately controls.
	Regions int
}

// Fig04Result reproduces Figures 4 (gobmk) and 5 (milc): performance
// clusters across budget and threshold combinations.
type Fig04Result struct {
	Benchmark string
	Cases     []ClusterCase
}

// Fig04Cases returns the (budget, threshold) grid of Figures 4 and 5.
func Fig04Cases() [][2]float64 {
	return [][2]float64{{1.0, 0.01}, {1.0, 0.05}, {1.3, 0.01}, {1.3, 0.05}}
}

// FigClusters computes the cluster characterization for one benchmark over
// the given (budget, threshold) cases.
func (l *Lab) FigClusters(bench string, cases [][2]float64) (*Fig04Result, error) {
	a, err := l.Analysis(bench)
	if err != nil {
		return nil, err
	}
	res := &Fig04Result{Benchmark: bench}
	for _, c := range cases {
		budget, th := c[0], c[1]
		clusters, err := a.Clusters(budget, th)
		if err != nil {
			return nil, err
		}
		regions, err := a.StableRegions(budget, th)
		if err != nil {
			return nil, err
		}
		cc := ClusterCase{
			Budget:    budget,
			Threshold: th,
			MeanSize:  core.MeanClusterSize(clusters),
			Regions:   len(regions),
		}
		for _, cl := range clusters {
			row := ClusterRow{
				Sample:  cl.Sample,
				Size:    len(cl.Members),
				Optimal: a.Grid().Setting(cl.Optimal),
			}
			first := true
			for _, k := range cl.Members {
				st := a.Grid().Setting(k)
				if first {
					row.CPUMin, row.CPUMax = st.CPU, st.CPU
					row.MemMin, row.MemMax = st.Mem, st.Mem
					first = false
					continue
				}
				if st.CPU < row.CPUMin {
					row.CPUMin = st.CPU
				}
				if st.CPU > row.CPUMax {
					row.CPUMax = st.CPU
				}
				if st.Mem < row.MemMin {
					row.MemMin = st.Mem
				}
				if st.Mem > row.MemMax {
					row.MemMax = st.Mem
				}
			}
			cc.Rows = append(cc.Rows, row)
		}
		res.Cases = append(res.Cases, cc)
	}
	return res, nil
}

// Table renders the cluster summary per case.
func (r *Fig04Result) Table(figure string) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("%s — %s: performance clusters", figure, r.Benchmark),
		"budget", "threshold", "mean cluster size", "stable regions")
	for _, c := range r.Cases {
		t.AddRow(
			BudgetLabel(c.Budget),
			fmt.Sprintf("%.0f%%", c.Threshold*100),
			fmt.Sprintf("%.1f", c.MeanSize),
			fmt.Sprintf("%d", c.Regions),
		)
	}
	return t
}

// TrajectoryTable renders the per-sample cluster envelopes for one case.
func (r *Fig04Result) TrajectoryTable(caseIdx int) *report.Table {
	c := r.Cases[caseIdx]
	t := report.NewTable(
		fmt.Sprintf("%s clusters at I=%s threshold %.0f%%", r.Benchmark, BudgetLabel(c.Budget), c.Threshold*100),
		"sample", "size", "optimal", "cpu range", "mem range")
	for _, row := range c.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.Sample),
			fmt.Sprintf("%d", row.Size),
			row.Optimal.String(),
			fmt.Sprintf("%v-%v", row.CPUMin, row.CPUMax),
			fmt.Sprintf("%v-%v", row.MemMin, row.MemMax),
		)
	}
	return t
}
