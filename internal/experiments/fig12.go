package experiments

import (
	"fmt"

	"mcdvfs/internal/core"
	"mcdvfs/internal/report"
	"mcdvfs/internal/stats"
)

// Fig12Side summarizes one setting-space granularity in the step-size
// sensitivity study.
type Fig12Side struct {
	Settings        int
	MeanClusterSize float64
	Regions         int
	MeanRegionLen   float64
	// OptimalTimeNS is the end-to-end time of per-sample optimal tracking
	// with free tuning.
	OptimalTimeNS float64
}

// Fig12Result reproduces Figure 12: sensitivity of performance clusters to
// the frequency step size (70 coarse settings vs 496 fine settings).
type Fig12Result struct {
	Benchmark string
	Budget    float64
	Threshold float64
	Coarse    Fig12Side
	Fine      Fig12Side
	// PerfGainPct is the optimal-tracking speed improvement of the fine
	// space over the coarse space when tuning is free; the paper observes
	// under 1%.
	PerfGainPct float64
}

// Fig12 computes the step-size sensitivity study.
func (l *Lab) Fig12(bench string, budget, threshold float64) (*Fig12Result, error) {
	coarse, err := l.Analysis(bench)
	if err != nil {
		return nil, err
	}
	fine, err := l.FineAnalysis(bench)
	if err != nil {
		return nil, err
	}
	side := func(a *core.Analysis) (Fig12Side, error) {
		clusters, err := a.Clusters(budget, threshold)
		if err != nil {
			return Fig12Side{}, err
		}
		regions, err := a.StableRegions(budget, threshold)
		if err != nil {
			return Fig12Side{}, err
		}
		sum, err := stats.SummarizeInts(core.RegionLengths(regions))
		if err != nil {
			return Fig12Side{}, err
		}
		sch, err := a.OptimalSchedule(budget)
		if err != nil {
			return Fig12Side{}, err
		}
		exec, err := a.Execute(sch, core.Overhead{})
		if err != nil {
			return Fig12Side{}, err
		}
		return Fig12Side{
			Settings:        a.NumSettings(),
			MeanClusterSize: core.MeanClusterSize(clusters),
			Regions:         len(regions),
			MeanRegionLen:   sum.Mean,
			OptimalTimeNS:   exec.TimeNS,
		}, nil
	}
	res := &Fig12Result{Benchmark: bench, Budget: budget, Threshold: threshold}
	if res.Coarse, err = side(coarse); err != nil {
		return nil, err
	}
	if res.Fine, err = side(fine); err != nil {
		return nil, err
	}
	res.PerfGainPct = (res.Coarse.OptimalTimeNS - res.Fine.OptimalTimeNS) / res.Coarse.OptimalTimeNS * 100
	return res, nil
}

// Table renders the comparison.
func (r *Fig12Result) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 12 — %s: cluster sensitivity to frequency step size (I=%s, threshold %.0f%%); fine-grid perf gain %.2f%%",
			r.Benchmark, BudgetLabel(r.Budget), r.Threshold*100, r.PerfGainPct),
		"space", "settings", "mean cluster size", "regions", "mean region len")
	row := func(name string, s Fig12Side) {
		t.AddRow(name,
			fmt.Sprintf("%d", s.Settings),
			fmt.Sprintf("%.1f", s.MeanClusterSize),
			fmt.Sprintf("%d", s.Regions),
			fmt.Sprintf("%.1f", s.MeanRegionLen))
	}
	row("coarse(100MHz)", r.Coarse)
	row("fine(30/40MHz)", r.Fine)
	return t
}
