package experiments

import (
	"fmt"

	"mcdvfs/internal/dram"
	"mcdvfs/internal/report"
)

// LowPowerRow is one benchmark's memory power-down opportunity.
type LowPowerRow struct {
	Benchmark string
	// BusUtil is the mean memory access rate (accesses/ns) at the optimal
	// I=1.3 schedule.
	AccessPerNS float64
	// SavingsFrac is the fraction of clocked memory background energy a
	// power-down policy recovers.
	SavingsFrac float64
	// SystemSavingsPct is the resulting whole-system energy saving.
	SystemSavingsPct float64
}

// LowPowerResult quantifies MemScale-style memory power-down (the paper's
// reference [11]) on top of the budgeted schedules: how much background
// energy the gaps between DRAM accesses can recover per workload.
type LowPowerResult struct {
	Budget float64
	Policy dram.PowerDown
	Rows   []LowPowerRow
}

// LowPower runs the study at the given budget.
func (l *Lab) LowPower(benches []string, budget float64) (*LowPowerResult, error) {
	pd := dram.DefaultPowerDown()
	em, err := dram.NewEnergyModel(dram.DefaultDevice())
	if err != nil {
		return nil, err
	}
	res := &LowPowerResult{Budget: budget, Policy: pd}
	for _, bench := range benches {
		a, err := l.Analysis(bench)
		if err != nil {
			return nil, err
		}
		sch, err := a.OptimalSchedule(budget)
		if err != nil {
			return nil, err
		}
		g := a.Grid()
		var totalTime, totalEnergy, totalAccesses, savedJ float64
		for s, k := range sch {
			m := g.At(s, k)
			accesses := float64(g.SampleInstr) * m.MPKI / 1000
			rate := 0.0
			if m.TimeNS > 0 {
				rate = accesses / m.TimeNS
			}
			frac, err := em.IdleSavings(pd, rate)
			if err != nil {
				return nil, err
			}
			clockedW := dram.DefaultDevice().PBgClockedW * float64(g.Setting(k).Mem/dram.DefaultDevice().FMax)
			savedJ += clockedW * frac * m.TimeNS * 1e-9
			totalTime += m.TimeNS
			totalEnergy += m.EnergyJ()
			totalAccesses += accesses
		}
		res.Rows = append(res.Rows, LowPowerRow{
			Benchmark:        bench,
			AccessPerNS:      totalAccesses / totalTime,
			SavingsFrac:      savedJ / totalEnergy, // vs system energy below
			SystemSavingsPct: savedJ / totalEnergy * 100,
		})
	}
	return res, nil
}

// Row returns the entry for a benchmark.
func (r *LowPowerResult) Row(bench string) (LowPowerRow, error) {
	for _, row := range r.Rows {
		if row.Benchmark == bench {
			return row, nil
		}
	}
	return LowPowerRow{}, fmt.Errorf("experiments: no lowpower row for %s", bench)
}

// Table renders the study.
func (r *LowPowerResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Memory power-down opportunity at I=%s (MemScale-style fast power-down)", BudgetLabel(r.Budget)),
		"benchmark", "accesses/µs", "system energy saving")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark,
			fmt.Sprintf("%.1f", row.AccessPerNS*1e3),
			fmt.Sprintf("%.2f%%", row.SystemSavingsPct))
	}
	return t
}
