package experiments

import (
	"fmt"
	"io"

	"mcdvfs/internal/core"
	"mcdvfs/internal/workload"
)

// Runner regenerates one paper figure, writing its tables to w.
type Runner struct {
	ID          string
	Description string
	Run         func(l *Lab, w io.Writer) error
}

// Runners returns the experiment registry in figure order.
func Runners() []Runner {
	rs := []Runner{
		{
			ID:          "fig2",
			Description: "Inefficiency vs speedup for bzip2, gobmk, milc (70 settings)",
			Run: func(l *Lab, w io.Writer) error {
				for _, bench := range Fig02Benchmarks() {
					r, err := l.Fig02(bench)
					if err != nil {
						return err
					}
					if err := r.Table(l.CoarseSpace()).Render(w); err != nil {
						return err
					}
					fmt.Fprintln(w)
					if _, err := io.WriteString(w, r.Heatmap(l.CoarseSpace())); err != nil {
						return err
					}
					fmt.Fprintln(w)
				}
				return nil
			},
		},
		{
			ID:          "fig3",
			Description: "Optimal performance point per sample for gobmk across inefficiency budgets",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.Fig03("gobmk", Fig03Budgets())
				if err != nil {
					return err
				}
				if err := r.Table().Render(w); err != nil {
					return err
				}
				fmt.Fprintln(w)
				_, err = io.WriteString(w, r.Plot())
				return err
			},
		},
		{
			ID:          "fig4",
			Description: "Performance clusters for gobmk (I in {1.0, 1.3} x threshold in {1%, 5%})",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.FigClusters("gobmk", Fig04Cases())
				if err != nil {
					return err
				}
				return r.Table("Figure 4").Render(w)
			},
		},
		{
			ID:          "fig5",
			Description: "Performance clusters for milc (I in {1.0, 1.3} x threshold in {1%, 5%})",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.FigClusters("milc", Fig04Cases())
				if err != nil {
					return err
				}
				return r.Table("Figure 5").Render(w)
			},
		},
		{
			ID:          "fig6",
			Description: "Stable regions and transitions for lbm (I=1.3, threshold 5%)",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.Fig06("lbm", 1.3, 0.05)
				if err != nil {
					return err
				}
				return r.Table().Render(w)
			},
		},
		{
			ID:          "fig7",
			Description: "Stable regions of gcc and lbm across thresholds and budgets",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.Fig07([]string{"gcc", "lbm"},
					[]float64{1.0, 1.3, core.Unconstrained}, []float64{0.03, 0.05})
				if err != nil {
					return err
				}
				return r.Table().Render(w)
			},
		},
		{
			ID:          "fig8",
			Description: "Transitions per billion instructions across benchmarks, budgets, thresholds",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.Fig08(workload.HeadlineNames(), Fig08Budgets(), Fig08Thresholds())
				if err != nil {
					return err
				}
				for _, b := range Fig08Budgets() {
					if err := r.Table(b).Render(w); err != nil {
						return err
					}
					fmt.Fprintln(w)
				}
				return nil
			},
		},
		{
			ID:          "fig9",
			Description: "Distribution of stable-region lengths (gobmk, bzip2 across budgets; all at I=1.3)",
			Run: func(l *Lab, w io.Writer) error {
				budgets := []float64{1.0, 1.2, 1.3, 1.6}
				ths := []float64{0.01, 0.03, 0.05}
				ga, err := l.Fig09([]string{"gobmk"}, budgets, ths)
				if err != nil {
					return err
				}
				if err := ga.Table("Figure 9a — gobmk stable-region lengths").Render(w); err != nil {
					return err
				}
				fmt.Fprintln(w)
				gb, err := l.Fig09([]string{"bzip2"}, budgets, ths)
				if err != nil {
					return err
				}
				if err := gb.Table("Figure 9b — bzip2 stable-region lengths").Render(w); err != nil {
					return err
				}
				fmt.Fprintln(w)
				gc, err := l.Fig09(workload.HeadlineNames(), []float64{1.3}, ths)
				if err != nil {
					return err
				}
				return gc.Table("Figure 9c — stable-region lengths at I=1.3").Render(w)
			},
		},
		{
			ID:          "fig10",
			Description: "Execution time vs inefficiency budget, normalized to I=1.0",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.Fig10(workload.HeadlineNames(), Fig10Budgets())
				if err != nil {
					return err
				}
				return r.Table().Render(w)
			},
		},
		{
			ID:          "fig11",
			Description: "Energy-performance trade-offs at I=1.3 with and without tuning overhead",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.Fig11(workload.HeadlineNames(), 1.3, Fig11Thresholds(), core.DefaultOverhead())
				if err != nil {
					return err
				}
				return r.Table().Render(w)
			},
		},
		{
			ID:          "fig12",
			Description: "Cluster sensitivity to frequency step size (70 vs 496 settings, gobmk)",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.Fig12("gobmk", 1.3, 0.01)
				if err != nil {
					return err
				}
				return r.Table().Render(w)
			},
		},
		{
			ID:          "governors",
			Description: "Online governor comparison on gobmk (extension of Section VII)",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.GovCompare("gobmk", 1.3, 0.03)
				if err != nil {
					return err
				}
				return r.Table().Render(w)
			},
		},
		{
			ID:          "baselines",
			Description: "Inefficiency budget vs rate-limiting and EDP baselines (paper Section II)",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.Baselines("gobmk", 1.3)
				if err != nil {
					return err
				}
				return r.Table().Render(w)
			},
		},
		{
			ID:          "cachesens",
			Description: "L2 size sensitivity of the energy-performance space (cache substrate study)",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.CacheSensitivity(1.3, []int{512 << 10, 1 << 20, 2 << 20, 4 << 20})
				if err != nil {
					return err
				}
				return r.Table().Render(w)
			},
		},
		{
			ID:          "lowpower",
			Description: "Memory power-down savings on budgeted schedules (MemScale-style, paper ref [11])",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.LowPower(workload.HeadlineNames(), 1.3)
				if err != nil {
					return err
				}
				return r.Table().Render(w)
			},
		},
		{
			ID:          "imax",
			Description: "Inefficiency bounds (Imax) across the full benchmark suite (paper Section II-A)",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.ImaxSurvey()
				if err != nil {
					return err
				}
				return r.Table().Render(w)
			},
		},
		{
			ID:          "hetero",
			Description: "big.LITTLE core choice under shared inefficiency budgets (intro's next trade-off)",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.Hetero([]string{"bzip2", "gobmk", "lbm"},
					[]float64{1.0, 1.1, 1.2, 1.3, 1.6, 2.0})
				if err != nil {
					return err
				}
				return r.Table().Render(w)
			},
		},
		{
			ID:          "pareto",
			Description: "Whole-run energy-performance Pareto frontiers (the set smart algorithms search)",
			Run: func(l *Lab, w io.Writer) error {
				for _, bench := range []string{"bzip2", "gobmk", "lbm"} {
					r, err := l.Pareto(bench)
					if err != nil {
						return err
					}
					if err := r.Table().Render(w); err != nil {
						return err
					}
					fmt.Fprintln(w)
				}
				return nil
			},
		},
		{
			ID:          "fastdvfs",
			Description: "Commercial vs nanosecond-scale transition hardware (paper's Kim et al. reference)",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.FastDVFS("gobmk", 1.3, []float64{0.01, 0.03, 0.05})
				if err != nil {
					return err
				}
				return r.Table().Render(w)
			},
		},
		{
			ID:          "modelcmp",
			Description: "Oracle vs online-learned predictive model driving the budget governor (paper future work)",
			Run: func(l *Lab, w io.Writer) error {
				r, err := l.ModelCompare([]string{"gobmk", "lbm", "bzip2"}, 1.3, 0.03)
				if err != nil {
					return err
				}
				return r.Table().Render(w)
			},
		},
	}
	return rs
}

// RunnerByID returns the runner with the given ID.
func RunnerByID(id string) (Runner, error) {
	for _, r := range Runners() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
