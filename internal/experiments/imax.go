package experiments

import (
	"fmt"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/report"
	"mcdvfs/internal/workload"
)

// ImaxRow is one benchmark's inefficiency bounds (paper Section II-A).
type ImaxRow struct {
	Benchmark string
	Class     string
	// Imax is the unbounded-budget inefficiency ceiling.
	Imax float64
	// ImaxSetting is the setting where the worst inefficiency occurs.
	ImaxSetting freq.Setting
	// FastestIneff is the inefficiency of the max/max setting.
	FastestIneff float64
	// SlowestIneff is the inefficiency of the min/min setting.
	SlowestIneff float64
	// EminSetting is where the whole-run energy minimum sits.
	EminSetting freq.Setting
}

// ImaxResult surveys the inefficiency bounds across the entire benchmark
// suite — the paper reports the 1.5–2 range for its SPEC selection and
// argues the absolute value of Imax is irrelevant to budget setting; this
// experiment makes the population visible.
type ImaxResult struct {
	Rows []ImaxRow
}

// ImaxSurvey characterizes every registered benchmark.
func (l *Lab) ImaxSurvey() (*ImaxResult, error) {
	res := &ImaxResult{}
	minID, ok := l.coarse.ID(l.coarse.Min())
	if !ok {
		return nil, fmt.Errorf("experiments: min setting missing")
	}
	maxID, ok := l.coarse.ID(l.coarse.Max())
	if !ok {
		return nil, fmt.Errorf("experiments: max setting missing")
	}
	for _, name := range workload.Names() {
		b, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		a, err := l.Analysis(name)
		if err != nil {
			return nil, err
		}
		row := ImaxRow{Benchmark: name, Class: b.Class}
		var eminJ float64 = -1
		for k := 0; k < a.NumSettings(); k++ {
			id := freq.SettingID(k)
			if i := a.RunInefficiency(id); i > row.Imax {
				row.Imax = i
				row.ImaxSetting = a.Grid().Setting(id)
			}
			if e := a.PinnedResult(id).EnergyJ; eminJ < 0 || e < eminJ {
				eminJ = e
				row.EminSetting = a.Grid().Setting(id)
			}
		}
		row.FastestIneff = a.RunInefficiency(maxID)
		row.SlowestIneff = a.RunInefficiency(minID)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row returns the entry for a benchmark.
func (r *ImaxResult) Row(bench string) (ImaxRow, error) {
	for _, row := range r.Rows {
		if row.Benchmark == bench {
			return row, nil
		}
	}
	return ImaxRow{}, fmt.Errorf("experiments: no imax row for %s", bench)
}

// Table renders the survey.
func (r *ImaxResult) Table() *report.Table {
	t := report.NewTable("Inefficiency bounds across the suite (paper Section II-A)",
		"benchmark", "class", "Imax", "at", "I(fastest)", "I(slowest)", "Emin setting")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark, row.Class,
			fmt.Sprintf("%.2f", row.Imax),
			row.ImaxSetting.String(),
			fmt.Sprintf("%.2f", row.FastestIneff),
			fmt.Sprintf("%.2f", row.SlowestIneff),
			row.EminSetting.String())
	}
	return t
}
