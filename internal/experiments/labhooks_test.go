package experiments

// Tests for the exported Lab cache hooks the serve layer builds on: the
// grid observer (hit/disk/collect accounting), the collect admission gate,
// eviction via Forget, and the per-column progress hook.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mcdvfs/internal/freq"
)

// eventTally counts observer events by kind, concurrency-safe.
type eventTally struct {
	hits, disk, collects atomic.Int64
}

func (e *eventTally) observe(ev GridEvent) {
	switch ev.Kind {
	case GridHit:
		e.hits.Add(1)
	case GridDiskLoad:
		e.disk.Add(1)
	case GridCollect:
		e.collects.Add(1)
	}
}

func TestGridObserverCountsOutcomes(t *testing.T) {
	var tally eventTally
	l, err := NewLab(WithGridObserver(tally.observe))
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 16
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := l.Grid("gobmk"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	if n := tally.collects.Load(); n != 1 {
		t.Errorf("collect events = %d, want 1", n)
	}
	if n := tally.hits.Load(); n != waiters-1 {
		t.Errorf("hit events = %d, want %d", n, waiters-1)
	}
	if n := tally.disk.Load(); n != 0 {
		t.Errorf("disk events = %d, want 0 (no cache dir)", n)
	}

	// A later request over the completed entry is also a hit.
	if _, err := l.Grid("gobmk"); err != nil {
		t.Fatal(err)
	}
	if n := tally.hits.Load(); n != waiters {
		t.Errorf("hit events after warm request = %d, want %d", n, waiters)
	}
}

func TestGridObserverSeesDiskLoads(t *testing.T) {
	dir := t.TempDir()
	l1, err := NewLab(WithGridCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l1.Grid("gobmk"); err != nil {
		t.Fatal(err)
	}

	var tally eventTally
	l2, err := NewLab(WithGridCacheDir(dir), WithGridObserver(tally.observe))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Grid("gobmk"); err != nil {
		t.Fatal(err)
	}
	if n := tally.disk.Load(); n != 1 {
		t.Errorf("disk events = %d, want 1", n)
	}
	if n := tally.collects.Load(); n != 0 {
		t.Errorf("collect events = %d, want 0 (disk hit)", n)
	}
}

func TestCollectGateSaturationFailsFlight(t *testing.T) {
	sentinel := errors.New("saturated")
	gate := func(ctx context.Context) (func(), error) { return nil, sentinel }
	l, err := NewLab(WithCollectGate(gate))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Grid("gobmk"); !errors.Is(err, sentinel) {
		t.Fatalf("Grid err = %v, want the gate sentinel", err)
	}
	// A failed flight must not be cached: once the gate admits, the grid
	// collects cleanly.
	var admitted atomic.Int64
	l.gate = func(ctx context.Context) (func(), error) {
		admitted.Add(1)
		return func() {}, nil
	}
	if _, err := l.Grid("gobmk"); err != nil {
		t.Fatalf("Grid after gate opened: %v", err)
	}
	if n := admitted.Load(); n != 1 {
		t.Errorf("gate admissions = %d, want 1", n)
	}
	// Warm entry: no further admission needed.
	if _, err := l.Grid("gobmk"); err != nil {
		t.Fatal(err)
	}
	if n := admitted.Load(); n != 1 {
		t.Errorf("gate admissions after warm hit = %d, want still 1", n)
	}
}

func TestForgetForcesRecollection(t *testing.T) {
	l, counts := countingLab(t, 0)
	if _, err := l.Grid("gobmk"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Analysis("gobmk"); err != nil {
		t.Fatal(err)
	}
	if !l.Forget("gobmk") {
		t.Fatal("Forget reported nothing cached")
	}
	if l.Forget("gobmk") {
		t.Error("second Forget reported a cached entry")
	}
	if _, err := l.Grid("gobmk"); err != nil {
		t.Fatal(err)
	}
	if n := flightCount(counts, "gobmk/coarse"); n != 2 {
		t.Errorf("%d collections across a Forget, want 2", n)
	}
}

func TestCollectProgressCoversEveryColumn(t *testing.T) {
	var calls atomic.Int64
	var sawTotal atomic.Int64
	l, err := NewLab(WithCollectProgress(func(done, total int) {
		calls.Add(1)
		if done == total {
			sawTotal.Add(1)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Grid("gobmk"); err != nil {
		t.Fatal(err)
	}
	want := int64(freq.CoarseSpace().Len())
	if n := calls.Load(); n != want {
		t.Errorf("progress calls = %d, want %d (one per setting column)", n, want)
	}
	if n := sawTotal.Load(); n != 1 {
		t.Errorf("done==total observed %d times, want exactly once", n)
	}
}
