package experiments

import (
	"fmt"
	"math"

	"mcdvfs/internal/cpupower"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/report"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/trace"
	"mcdvfs/internal/workload"
)

// HeteroCell is one (benchmark, budget) comparison between core types.
type HeteroCell struct {
	Benchmark string
	Budget    float64
	// BigTimeNS and LittleTimeNS are the best pinned-setting execution
	// times each core achieves within the budget (relative to the global
	// Emin across both cores); +Inf when a core has no admissible setting.
	BigTimeNS    float64
	LittleTimeNS float64
	Winner       string
}

// HeteroResult compares a big (A15-class) and a LITTLE (A7-class) core
// under shared inefficiency budgets — the heterogeneous-core trade-off the
// paper's introduction names as the next energy-performance knob. The
// comparison uses pinned-setting frontiers with inefficiency measured
// against the global (both-cores) minimum energy, so a budget of 1.0 can
// only be met by the genuinely most efficient core.
type HeteroResult struct {
	Benchmarks []string
	Budgets    []float64
	Cells      []HeteroCell
	// CrossoverBudget per benchmark: the smallest budget at which the big
	// core overtakes the LITTLE core (0 if the big core always wins, +Inf
	// if it never does).
	CrossoverBudget map[string]float64
}

// littleCPIFactor models the LITTLE core's weaker microarchitecture.
const littleCPIFactor = 1.6

// Hetero runs the comparison.
func (l *Lab) Hetero(benches []string, budgets []float64) (*HeteroResult, error) { //lint:allow ctx in-memory loop over an already-collected grid; collection is ctx-bound via Lab.GridContext
	littleCfg := sim.DefaultConfig()
	littleCfg.CPUPower = cpupower.LittleParams()
	littleCfg.CPIFactor = littleCPIFactor
	littleSys, err := sim.New(littleCfg)
	if err != nil {
		return nil, err
	}
	littleSpace := freq.NewSpace(freq.Ladder(100, 600, 100), freq.Ladder(freq.MemMinMHz, freq.MemMaxMHz, 100))

	res := &HeteroResult{Benchmarks: benches, Budgets: budgets, CrossoverBudget: make(map[string]float64)}
	for _, bench := range benches {
		bigGrid, err := l.Grid(bench)
		if err != nil {
			return nil, err
		}
		b, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		littleGrid, err := trace.Collect(littleSys, b, littleSpace)
		if err != nil {
			return nil, err
		}

		// Global Emin across both cores' pinned settings.
		eminGlobal := math.Inf(1)
		for k := range bigGrid.Settings {
			if e := bigGrid.TotalEnergyJ(freq.SettingID(k)); e < eminGlobal {
				eminGlobal = e
			}
		}
		for k := range littleGrid.Settings {
			if e := littleGrid.TotalEnergyJ(freq.SettingID(k)); e < eminGlobal {
				eminGlobal = e
			}
		}

		bestWithin := func(g *trace.Grid, budget float64) float64 {
			best := math.Inf(1)
			for k := range g.Settings {
				id := freq.SettingID(k)
				if g.TotalEnergyJ(id) <= budget*eminGlobal {
					if t := g.TotalTimeNS(id); t < best {
						best = t
					}
				}
			}
			return best
		}

		crossover := math.Inf(1)
		for _, budget := range budgets {
			cell := HeteroCell{
				Benchmark:    bench,
				Budget:       budget,
				BigTimeNS:    bestWithin(bigGrid, budget),
				LittleTimeNS: bestWithin(littleGrid, budget),
			}
			switch {
			case math.IsInf(cell.BigTimeNS, 1) && math.IsInf(cell.LittleTimeNS, 1):
				cell.Winner = "none"
			case cell.BigTimeNS < cell.LittleTimeNS:
				cell.Winner = "big"
				if budget < crossover {
					crossover = budget
				}
			default:
				cell.Winner = "little"
			}
			res.Cells = append(res.Cells, cell)
		}
		res.CrossoverBudget[bench] = crossover
	}
	return res, nil
}

// Cell returns the entry for (benchmark, budget).
func (r *HeteroResult) Cell(bench string, budget float64) (HeteroCell, error) {
	for _, c := range r.Cells {
		if c.Benchmark == bench && c.Budget == budget { //lint:allow floateq cells are keyed by the exact budget they were built with
			return c, nil
		}
	}
	return HeteroCell{}, fmt.Errorf("experiments: no hetero cell for %s I=%v", bench, budget)
}

// Table renders the comparison.
func (r *HeteroResult) Table() *report.Table {
	t := report.NewTable(
		"big.LITTLE under shared inefficiency budgets (best pinned setting; global Emin)",
		"benchmark", "budget", "big (ms)", "LITTLE (ms)", "winner")
	fmtTime := func(ns float64) string {
		if math.IsInf(ns, 1) {
			return "over budget"
		}
		return fmt.Sprintf("%.1f", ns/1e6)
	}
	for _, c := range r.Cells {
		t.AddRow(c.Benchmark, BudgetLabel(c.Budget), fmtTime(c.BigTimeNS), fmtTime(c.LittleTimeNS), c.Winner)
	}
	return t
}
