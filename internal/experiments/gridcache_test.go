package experiments

import (
	"path/filepath"
	"strings"
	"testing"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
)

func TestGridKeyHashStability(t *testing.T) {
	// Two independently constructed identical configurations must hash
	// identically — in particular across the pointer-typed OPP table, which
	// naive printf-based fingerprints would render as an address.
	a := gridKeyHash(sim.DefaultConfig(), freq.CoarseSpace())
	b := gridKeyHash(sim.DefaultConfig(), freq.CoarseSpace())
	if a != b {
		t.Errorf("identical configs hash %q vs %q", a, b)
	}
	if len(a) != 16 {
		t.Errorf("hash length %d, want 16", len(a))
	}
}

func TestGridKeyHashSeparation(t *testing.T) {
	base := gridKeyHash(sim.DefaultConfig(), freq.CoarseSpace())

	noiseless := sim.DefaultConfig()
	noiseless.MeasurementNoise = 0
	if gridKeyHash(noiseless, freq.CoarseSpace()) == base {
		t.Error("noise change did not change the hash")
	}

	little := sim.DefaultConfig()
	little.CPIFactor = 1.8
	if gridKeyHash(little, freq.CoarseSpace()) == base {
		t.Error("CPI-factor change did not change the hash")
	}

	if gridKeyHash(sim.DefaultConfig(), freq.FineSpace()) == base {
		t.Error("space change did not change the hash")
	}

	weak := sim.DefaultConfig()
	weak.CPUPower.PeakDynamicW *= 2
	if gridKeyHash(weak, freq.CoarseSpace()) == base {
		t.Error("power-model change did not change the hash")
	}
}

func TestDiskCachePathSanitizesBenchmarkNames(t *testing.T) {
	d := diskCache{dir: t.TempDir()}
	p := d.path("../evil/bench name", "coarse", "abc123")
	// Separators and spaces are replaced, so the file always lands
	// directly inside the cache directory.
	if filepath.Dir(p) != d.dir {
		t.Errorf("cache path %q escapes directory %q", p, d.dir)
	}
	if strings.ContainsAny(filepath.Base(p), " /") {
		t.Errorf("unsanitized cache filename %q", filepath.Base(p))
	}
}
