package experiments

import (
	"sync"
	"testing"

	"mcdvfs/internal/core"
)

// sharedLab caches collected grids across all tests in this package;
// collection is the expensive step and the Lab is safe for concurrent use.
var (
	labOnce sync.Once
	lab     *Lab
	labErr  error
)

func testLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		lab, labErr = NewLab()
	})
	if labErr != nil {
		t.Fatalf("NewLab: %v", labErr)
	}
	return lab
}

func TestLabGridCaching(t *testing.T) {
	l := testLab(t)
	g1, err := l.Grid("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := l.Grid("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("grid not cached")
	}
	a1, err := l.Analysis("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := l.Analysis("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("analysis not cached")
	}
}

func TestLabRejectsUnknownBenchmark(t *testing.T) {
	l := testLab(t)
	if _, err := l.Grid("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := l.Analysis("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted by Analysis")
	}
}

func TestRunnerRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range Runners() {
		if r.ID == "" || r.Description == "" || r.Run == nil {
			t.Errorf("incomplete runner %+v", r)
		}
		if ids[r.ID] {
			t.Errorf("duplicate runner ID %q", r.ID)
		}
		ids[r.ID] = true
	}
	// One runner per paper figure (2..12) plus the governor comparison.
	for _, want := range []string{"fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "governors",
		"modelcmp", "baselines", "cachesens", "lowpower", "imax", "hetero",
		"fastdvfs", "pareto"} {
		if !ids[want] {
			t.Errorf("missing runner %q", want)
		}
	}
	if _, err := RunnerByID("fig8"); err != nil {
		t.Errorf("RunnerByID(fig8): %v", err)
	}
	if _, err := RunnerByID("nonesuch"); err == nil {
		t.Error("unknown runner ID accepted")
	}
}

func TestBudgetLabel(t *testing.T) {
	if got := BudgetLabel(1.3); got != "1.3" {
		t.Errorf("BudgetLabel(1.3) = %q", got)
	}
	if got := BudgetLabel(core.Unconstrained); got != "inf" {
		t.Errorf("BudgetLabel(inf) = %q", got)
	}
}
