package experiments

import (
	"fmt"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/governor"
	"mcdvfs/internal/report"
	"mcdvfs/internal/workload"
)

// BaselineRow is one policy's end-to-end outcome.
type BaselineRow struct {
	Policy       string
	TimeNS       float64
	EnergyJ      float64
	Inefficiency float64
	Transitions  int
}

// BaselinesResult compares the inefficiency-budget governor against the
// energy-management baselines the paper's Section II argues are unsuitable
// for energy-constrained mobile devices: absolute-energy rate limiting
// (Cinder/ECOSystem style) and energy-delay-product minimization.
type BaselinesResult struct {
	Benchmark string
	Budget    float64
	Rows      []BaselineRow
}

// Baselines runs the comparison. The rate limiter's per-interval allowance
// is set to the budget governor's average interval energy — the most
// favorable calibration it could hope for — and still loses.
func (l *Lab) Baselines(bench string, budget float64) (*BaselinesResult, error) { //lint:allow ctx in-memory loop over an already-collected grid; collection is ctx-bound via Lab.GridContext
	b, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	specs, err := b.Realize()
	if err != nil {
		return nil, err
	}
	g, err := l.Grid(bench)
	if err != nil {
		return nil, err
	}
	eminRun := -1.0
	for k := range g.Settings {
		if e := g.TotalEnergyJ(freq.SettingID(k)); eminRun < 0 || e < eminRun {
			eminRun = e
		}
	}
	model, err := governor.NewSimModel()
	if err != nil {
		return nil, err
	}

	budgetGov, err := governor.NewBudget(governor.BudgetConfig{
		Budget: budget, Threshold: 0.03, Space: l.coarse, Model: model,
		Search: governor.FromMax,
	})
	if err != nil {
		return nil, err
	}
	rBudget, err := governor.Run(l.sys, specs, budgetGov, governor.DefaultOverhead())
	if err != nil {
		return nil, err
	}

	rateLimiter, err := governor.NewRateLimiter(l.coarse, rBudget.EnergyJ/float64(len(specs)))
	if err != nil {
		return nil, err
	}
	edp, err := governor.NewEDP(l.coarse, model, 1)
	if err != nil {
		return nil, err
	}
	ed2p, err := governor.NewEDP(l.coarse, model, 2)
	if err != nil {
		return nil, err
	}

	res := &BaselinesResult{Benchmark: bench, Budget: budget}
	add := func(r governor.Result) {
		res.Rows = append(res.Rows, BaselineRow{
			Policy:       r.Governor,
			TimeNS:       r.TimeNS,
			EnergyJ:      r.EnergyJ,
			Inefficiency: r.EnergyJ / eminRun,
			Transitions:  r.Transitions,
		})
	}
	add(rBudget)
	for _, gv := range []governor.Governor{rateLimiter, edp, ed2p} {
		r, err := governor.Run(l.sys, specs, gv, governor.DefaultOverhead())
		if err != nil {
			return nil, fmt.Errorf("experiments: baseline %s: %w", gv.Name(), err)
		}
		add(r)
	}
	return res, nil
}

// Row returns the entry whose policy name contains the substring.
func (r *BaselinesResult) Row(nameContains string) (BaselineRow, error) {
	for _, row := range r.Rows {
		if contains(row.Policy, nameContains) {
			return row, nil
		}
	}
	return BaselineRow{}, fmt.Errorf("experiments: no baseline row matching %q", nameContains)
}

// Table renders the comparison.
func (r *BaselinesResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Energy-management baselines — %s (budget governor at I=%s)", r.Benchmark, BudgetLabel(r.Budget)),
		"policy", "time (ms)", "energy (mJ)", "ineff", "transitions")
	for _, row := range r.Rows {
		t.AddRow(row.Policy,
			fmt.Sprintf("%.1f", row.TimeNS/1e6),
			fmt.Sprintf("%.1f", row.EnergyJ*1e3),
			fmt.Sprintf("%.2f", row.Inefficiency),
			fmt.Sprintf("%d", row.Transitions))
	}
	return t
}
