package experiments

import (
	"fmt"

	"mcdvfs/internal/cache"
	"mcdvfs/internal/core"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/report"
	"mcdvfs/internal/trace"
	"mcdvfs/internal/workload"
)

// CacheSensRow is one L2 configuration's characterization summary.
type CacheSensRow struct {
	L2Bytes int
	// AvgMPKI is the mean derived DRAM traffic across phases.
	AvgMPKI float64
	// EminJ is the whole-run minimum energy across settings.
	EminJ float64
	// EminSetting is where the minimum sits.
	EminSetting freq.Setting
	// OptimalTimeNS is end-to-end time tracking the optimal at I=1.3.
	OptimalTimeNS float64
	// OptimalMeanMemMHz is the mean memory frequency of that schedule —
	// the knob a shrinking cache pushes upward.
	OptimalMeanMemMHz float64
}

// CacheSensResult studies how on-chip cache sizing reshapes the
// energy-performance trade-off space: a smaller L2 sends more traffic to
// DRAM, raising both Emin and the memory frequency the optimal schedule
// needs. This extends the paper's platform study (its L2 is fixed at 2 MB)
// using the cache substrate.
type CacheSensResult struct {
	Benchmark string
	Budget    float64
	Rows      []CacheSensRow
}

// cacheSensPhases is the locality-specified workload used by the study.
func cacheSensPhases() []workload.LocalityPhase {
	return []workload.LocalityPhase{
		{
			Name: "factorize", Samples: 12, CoreCPI: 0.95,
			Locality:   cache.Locality{APKI: 340, StreamFrac: 0.04, WorkingSetBytes: 900 << 10},
			RowHitRate: 0.60, MLP: 2.2, WriteFrac: 0.30, CPIJitter: 0.03, MPKIJitter: 0.06,
		},
		{
			Name: "price", Samples: 10, CoreCPI: 0.85,
			Locality:   cache.Locality{APKI: 300, StreamFrac: 0.01, WorkingSetBytes: 500 << 10},
			RowHitRate: 0.68, MLP: 2.4, WriteFrac: 0.25, CPIJitter: 0.025, MPKIJitter: 0.06,
		},
	}
}

// CacheSensitivity runs the study across L2 sizes.
func (l *Lab) CacheSensitivity(budget float64, l2Sizes []int) (*CacheSensResult, error) { //lint:allow ctx in-memory loop over an already-collected grid; collection is ctx-bound via Lab.GridContext
	res := &CacheSensResult{Benchmark: "soplex-like", Budget: budget}
	for _, size := range l2Sizes {
		h := cache.Default().WithL2Size(size)
		bench, err := workload.DeriveBenchmark("soplex-like", "fp", 0x50f1e8, 6, cacheSensPhases(), h)
		if err != nil {
			return nil, err
		}
		g, err := trace.Collect(l.sys, bench, l.coarse)
		if err != nil {
			return nil, err
		}
		a, err := core.NewAnalysis(g)
		if err != nil {
			return nil, err
		}
		row := CacheSensRow{L2Bytes: size}
		for _, p := range bench.Phases {
			row.AvgMPKI += p.MPKI * float64(p.Samples)
		}
		row.AvgMPKI /= float64(bench.NumSamples() / bench.Repeat)

		row.EminJ = -1
		for k := range g.Settings {
			if e := g.TotalEnergyJ(freq.SettingID(k)); row.EminJ < 0 || e < row.EminJ {
				row.EminJ = e
				row.EminSetting = g.Settings[k]
			}
		}
		sch, err := a.OptimalSchedule(budget)
		if err != nil {
			return nil, err
		}
		exec, err := a.Execute(sch, core.Overhead{})
		if err != nil {
			return nil, err
		}
		row.OptimalTimeNS = exec.TimeNS
		for _, k := range sch {
			row.OptimalMeanMemMHz += float64(g.Setting(k).Mem)
		}
		row.OptimalMeanMemMHz /= float64(len(sch))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the study.
func (r *CacheSensResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Cache sensitivity — %s under I=%s across L2 sizes", r.Benchmark, BudgetLabel(r.Budget)),
		"L2", "avg MPKI", "Emin (mJ)", "Emin setting", "optimal time (ms)", "mean mem MHz")
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%dKB", row.L2Bytes>>10),
			fmt.Sprintf("%.1f", row.AvgMPKI),
			fmt.Sprintf("%.1f", row.EminJ*1e3),
			row.EminSetting.String(),
			fmt.Sprintf("%.1f", row.OptimalTimeNS/1e6),
			fmt.Sprintf("%.0f", row.OptimalMeanMemMHz),
		)
	}
	return t
}
