package experiments

import (
	"fmt"

	"mcdvfs/internal/core"
	"mcdvfs/internal/report"
	"mcdvfs/internal/stats"
)

// Fig08Cell is the transition rate for one (benchmark, budget, threshold).
type Fig08Cell struct {
	Benchmark string
	Budget    float64
	// Threshold < 0 encodes the "optimal tracking" column.
	Threshold             float64
	TransitionsPerBillion float64
}

// OptimalTracking marks the Figure 8 column where the system follows the
// per-sample optimal settings instead of a cluster schedule.
const OptimalTracking = -1.0

// Fig08Result reproduces Figure 8: transitions per billion instructions
// across benchmarks, budgets, and cluster thresholds.
type Fig08Result struct {
	Benchmarks []string
	Budgets    []float64
	Thresholds []float64 // includes OptimalTracking
	Cells      []Fig08Cell
}

// Fig08Budgets returns the budgets of the paper's Figure 8.
func Fig08Budgets() []float64 { return []float64{1.0, 1.3, 1.6} }

// Fig08Thresholds returns the threshold columns of Figure 8.
func Fig08Thresholds() []float64 { return []float64{OptimalTracking, 0.01, 0.03, 0.05} }

// Fig08 computes the transition-rate matrix.
func (l *Lab) Fig08(benches []string, budgets, thresholds []float64) (*Fig08Result, error) {
	res := &Fig08Result{Benchmarks: benches, Budgets: budgets, Thresholds: thresholds}
	for _, bench := range benches {
		a, err := l.Analysis(bench)
		if err != nil {
			return nil, err
		}
		for _, b := range budgets {
			for _, th := range thresholds {
				var transitions int
				if th == OptimalTracking { //lint:allow floateq OptimalTracking is an exact sentinel threshold
					sch, err := a.OptimalSchedule(b)
					if err != nil {
						return nil, err
					}
					transitions = sch.Transitions()
				} else {
					regions, err := a.StableRegions(b, th)
					if err != nil {
						return nil, err
					}
					transitions = len(regions) - 1
				}
				res.Cells = append(res.Cells, Fig08Cell{
					Benchmark:             bench,
					Budget:                b,
					Threshold:             th,
					TransitionsPerBillion: a.TransitionsPerBillion(transitions),
				})
			}
		}
	}
	return res, nil
}

// Rate returns the cell value for a (benchmark, budget, threshold), or an
// error if the combination was not computed.
func (r *Fig08Result) Rate(bench string, budget, threshold float64) (float64, error) {
	for _, c := range r.Cells {
		if c.Benchmark == bench && c.Budget == budget && c.Threshold == threshold { //lint:allow floateq cells are keyed by the exact budget/threshold they were built with
			return c.TransitionsPerBillion, nil
		}
	}
	return 0, fmt.Errorf("experiments: no Fig08 cell for %s I=%v th=%v", bench, budget, threshold)
}

// Table renders one sub-figure (one budget) of Figure 8.
func (r *Fig08Result) Table(budget float64) *report.Table {
	cols := []string{"benchmark"}
	for _, th := range r.Thresholds {
		if th == OptimalTracking { //lint:allow floateq OptimalTracking is an exact sentinel threshold
			cols = append(cols, "optimal")
		} else {
			cols = append(cols, fmt.Sprintf("%.0f%%", th*100))
		}
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 8 — transitions per billion instructions (I=%s)", BudgetLabel(budget)),
		cols...)
	for _, bench := range r.Benchmarks {
		cells := []string{bench}
		for _, th := range r.Thresholds {
			rate, err := r.Rate(bench, budget, th)
			if err != nil {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf("%.1f", rate))
		}
		t.AddRow(cells...)
	}
	return t
}

// Fig09Box is one box of Figure 9: the distribution of stable-region
// lengths for one (benchmark, budget, threshold).
type Fig09Box struct {
	Benchmark string
	Budget    float64
	Threshold float64
	Summary   stats.Summary
}

// Fig09Result reproduces Figure 9: distributions of stable-region lengths.
type Fig09Result struct {
	Boxes []Fig09Box
}

// Fig09 computes region-length distributions for the cross product of the
// given benchmarks, budgets, and thresholds.
func (l *Lab) Fig09(benches []string, budgets, thresholds []float64) (*Fig09Result, error) {
	res := &Fig09Result{}
	for _, bench := range benches {
		a, err := l.Analysis(bench)
		if err != nil {
			return nil, err
		}
		for _, b := range budgets {
			for _, th := range thresholds {
				regions, err := a.StableRegions(b, th)
				if err != nil {
					return nil, err
				}
				sum, err := stats.SummarizeInts(core.RegionLengths(regions))
				if err != nil {
					return nil, err
				}
				res.Boxes = append(res.Boxes, Fig09Box{
					Benchmark: bench, Budget: b, Threshold: th, Summary: sum,
				})
			}
		}
	}
	return res, nil
}

// Box returns the summary for a (benchmark, budget, threshold).
func (r *Fig09Result) Box(bench string, budget, threshold float64) (stats.Summary, error) {
	for _, b := range r.Boxes {
		if b.Benchmark == bench && b.Budget == budget && b.Threshold == threshold { //lint:allow floateq boxes are keyed by the exact budget/threshold they were built with
			return b.Summary, nil
		}
	}
	return stats.Summary{}, fmt.Errorf("experiments: no Fig09 box for %s I=%v th=%v", bench, budget, threshold)
}

// Table renders the distributions.
func (r *Fig09Result) Table(title string) *report.Table {
	t := report.NewTable(title,
		"benchmark", "budget", "threshold", "min", "q1", "median", "q3", "max", "mean", "n")
	for _, b := range r.Boxes {
		s := b.Summary
		t.AddRow(b.Benchmark, BudgetLabel(b.Budget),
			fmt.Sprintf("%.0f%%", b.Threshold*100),
			fmt.Sprintf("%.0f", s.Min), fmt.Sprintf("%.1f", s.Q1),
			fmt.Sprintf("%.1f", s.Median), fmt.Sprintf("%.1f", s.Q3),
			fmt.Sprintf("%.0f", s.Max), fmt.Sprintf("%.1f", s.Mean),
			fmt.Sprintf("%d", s.N))
	}
	return t
}
