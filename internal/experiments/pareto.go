package experiments

import (
	"fmt"

	"mcdvfs/internal/core"
	"mcdvfs/internal/report"
)

// ParetoResult lists each benchmark's whole-run energy-performance
// frontier: the set of settings a smart algorithm should confine its
// search to (Section IV: "smart algorithms should search for optimal
// points under the inefficiency constraint and not just at the
// constraint").
type ParetoResult struct {
	Benchmark string
	Frontier  []core.ParetoPoint
	Total     int // settings in the space
	Labels    []string
}

// Pareto computes the frontier for one benchmark.
func (l *Lab) Pareto(bench string) (*ParetoResult, error) {
	a, err := l.Analysis(bench)
	if err != nil {
		return nil, err
	}
	res := &ParetoResult{
		Benchmark: bench,
		Frontier:  a.ParetoFrontier(),
		Total:     a.NumSettings(),
	}
	for _, p := range res.Frontier {
		res.Labels = append(res.Labels, a.Grid().Setting(p.Setting).String())
	}
	return res, nil
}

// Table renders the frontier.
func (r *ParetoResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Energy-performance Pareto frontier — %s (%d of %d settings non-dominated)",
			r.Benchmark, len(r.Frontier), r.Total),
		"setting", "speedup", "inefficiency", "time (ms)", "energy (mJ)")
	for i, p := range r.Frontier {
		t.AddRow(r.Labels[i],
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%.2f", p.Inefficiency),
			fmt.Sprintf("%.1f", p.TimeNS/1e6),
			fmt.Sprintf("%.1f", p.EnergyJ*1e3))
	}
	return t
}
