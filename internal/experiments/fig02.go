package experiments

import (
	"fmt"

	"mcdvfs/internal/core"
	"mcdvfs/internal/freq"
	"mcdvfs/internal/report"
)

// Fig02Point is one setting's whole-run position in the
// inefficiency-speedup plane.
type Fig02Point struct {
	Setting      freq.Setting
	Inefficiency float64
	Speedup      float64
}

// Fig02Result reproduces Figure 2 for one benchmark: the whole-run
// inefficiency and speedup of every (CPU, memory) setting.
type Fig02Result struct {
	Benchmark string
	Points    []Fig02Point
	// Imax is the largest inefficiency over all settings.
	Imax float64
	// MinSettingIneff and MaxSettingIneff are the inefficiencies of the
	// slowest (min/min) and fastest (max/max) settings, the paper's two
	// headline observations.
	MinSettingIneff float64
	MaxSettingIneff float64
	// BestSpeedup is the highest speedup across settings.
	BestSpeedup float64
}

// Fig02Benchmarks lists the benchmarks shown in the paper's Figure 2.
func Fig02Benchmarks() []string { return []string{"bzip2", "gobmk", "milc"} }

// Fig02 computes the inefficiency-vs-speedup characterization for one
// benchmark.
func (l *Lab) Fig02(bench string) (*Fig02Result, error) {
	a, err := l.Analysis(bench)
	if err != nil {
		return nil, err
	}
	res := &Fig02Result{Benchmark: bench}
	for k := 0; k < a.NumSettings(); k++ {
		id := freq.SettingID(k)
		p := Fig02Point{
			Setting:      a.Grid().Setting(id),
			Inefficiency: a.RunInefficiency(id),
			Speedup:      a.RunSpeedup(id),
		}
		res.Points = append(res.Points, p)
		if p.Speedup > res.BestSpeedup {
			res.BestSpeedup = p.Speedup
		}
	}
	res.Imax = a.MaxInefficiency()
	minID, ok := spaceID(l.coarse, l.coarse.Min())
	if !ok {
		return nil, fmt.Errorf("experiments: min setting missing from space")
	}
	maxID, ok := spaceID(l.coarse, l.coarse.Max())
	if !ok {
		return nil, fmt.Errorf("experiments: max setting missing from space")
	}
	res.MinSettingIneff = a.RunInefficiency(minID)
	res.MaxSettingIneff = a.RunInefficiency(maxID)
	return res, nil
}

// Table renders the characterization as an aligned table, one row per CPU
// frequency with inefficiency/speedup cells per memory frequency.
func (r *Fig02Result) Table(space *freq.Space) *report.Table {
	cols := []string{"cpu"}
	for _, fm := range space.MemLadder() {
		cols = append(cols, fm.String())
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 2 — %s: inefficiency (speedup) per setting; Imax=%.2f", r.Benchmark, r.Imax),
		cols...)
	byCPU := make(map[freq.MHz][]Fig02Point)
	for _, p := range r.Points {
		byCPU[p.Setting.CPU] = append(byCPU[p.Setting.CPU], p)
	}
	for _, fc := range space.CPULadder() {
		cells := []string{fc.String()}
		for _, fm := range space.MemLadder() {
			for _, p := range byCPU[fc] {
				if p.Setting.Mem == fm { //lint:allow floateq ladder frequencies are exact discrete values
					cells = append(cells, fmt.Sprintf("%.2f (%.2fx)", p.Inefficiency, p.Speedup))
					break
				}
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// Heatmap renders the inefficiency surface as a terminal heatmap: one row
// per CPU frequency (ascending), one column per memory frequency — darker
// is more inefficient, visually matching the paper's Figure 2 panels.
func (r *Fig02Result) Heatmap(space *freq.Space) string {
	var labels []string
	var rows [][]float64
	for _, fc := range space.CPULadder() {
		labels = append(labels, fc.String())
		var row []float64
		for _, fm := range space.MemLadder() {
			for _, p := range r.Points {
				if p.Setting.CPU == fc && p.Setting.Mem == fm { //lint:allow floateq ladder frequencies are exact discrete values
					row = append(row, p.Inefficiency)
					break
				}
			}
		}
		rows = append(rows, row)
	}
	return report.Heatmap(
		fmt.Sprintf("%s inefficiency heatmap (dark = inefficient; columns = memory %v..%v)",
			r.Benchmark, space.MemLadder()[0], space.MemLadder()[len(space.MemLadder())-1]),
		labels, rows)
}

// spaceID adapts Space.ID to the experiment code's error handling.
func spaceID(space *freq.Space, st freq.Setting) (freq.SettingID, bool) {
	return space.ID(st)
}

// Fig03Row is one sample's optimal settings across budgets, with the
// workload's CPI and MPKI at the reference setting.
type Fig03Row struct {
	Sample  int
	CPI     float64
	MPKI    float64
	Optimal map[string]freq.Setting // keyed by budget label
}

// Fig03Result reproduces Figure 3: the per-sample optimal performance
// point across inefficiency budgets for gobmk.
type Fig03Result struct {
	Benchmark string
	Budgets   []float64
	Labels    []string
	Rows      []Fig03Row
	// TransitionsPerBudget counts optimal-schedule transitions per budget
	// label.
	TransitionsPerBudget map[string]int
}

// Fig03Budgets returns the budgets shown in the paper's Figure 3.
func Fig03Budgets() []float64 { return []float64{1, 1.3, 1.6, core.Unconstrained} }

// BudgetLabel formats a budget the way the paper's figures do.
func BudgetLabel(b float64) string {
	if b == core.Unconstrained { //lint:allow floateq core.Unconstrained is an exact sentinel
		return "inf"
	}
	return fmt.Sprintf("%.1f", b)
}

// Fig03 computes the optimal trajectory for a benchmark across budgets.
func (l *Lab) Fig03(bench string, budgets []float64) (*Fig03Result, error) {
	a, err := l.Analysis(bench)
	if err != nil {
		return nil, err
	}
	res := &Fig03Result{
		Benchmark:            bench,
		Budgets:              budgets,
		TransitionsPerBudget: make(map[string]int),
	}
	for _, b := range budgets {
		res.Labels = append(res.Labels, BudgetLabel(b))
	}
	// Reference setting for the CPI/MPKI traces: the maximum setting, as
	// the paper's CPI plot comes from the unconstrained run.
	refID, ok := spaceID(l.coarse, l.coarse.Max())
	if !ok {
		return nil, fmt.Errorf("experiments: max setting missing from space")
	}
	schedules := make(map[string]core.Schedule)
	for i, b := range budgets {
		sch, err := a.OptimalSchedule(b)
		if err != nil {
			return nil, err
		}
		schedules[res.Labels[i]] = sch
		res.TransitionsPerBudget[res.Labels[i]] = sch.Transitions()
	}
	for s := 0; s < a.NumSamples(); s++ {
		m := a.Grid().At(s, refID)
		row := Fig03Row{Sample: s, CPI: m.CPI, MPKI: m.MPKI, Optimal: make(map[string]freq.Setting)}
		for _, label := range res.Labels {
			row.Optimal[label] = a.Grid().Setting(schedules[label][s])
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Plot renders the Figure 3 trajectories as sparklines: the workload's
// CPI/MPKI traces and, per budget, the chosen CPU and memory frequencies —
// the same four stacked series the paper plots.
func (r *Fig03Result) Plot() string {
	var b []byte
	appendLine := func(label, spark string) {
		b = append(b, fmt.Sprintf("%-12s %s\n", label, spark)...)
	}
	series := func(f func(Fig03Row) float64) []float64 {
		out := make([]float64, len(r.Rows))
		for i, row := range r.Rows {
			out[i] = f(row)
		}
		return out
	}
	appendLine("cpi", report.Sparkline(series(func(row Fig03Row) float64 { return row.CPI })))
	appendLine("mpki", report.Sparkline(series(func(row Fig03Row) float64 { return row.MPKI })))
	for _, label := range r.Labels {
		l := label
		appendLine("cpu@I="+l, report.Sparkline(series(func(row Fig03Row) float64 { return float64(row.Optimal[l].CPU) })))
		appendLine("mem@I="+l, report.Sparkline(series(func(row Fig03Row) float64 { return float64(row.Optimal[l].Mem) })))
	}
	return string(b)
}

// Table renders the optimal trajectory.
func (r *Fig03Result) Table() *report.Table {
	cols := []string{"sample", "cpi", "mpki"}
	for _, l := range r.Labels {
		cols = append(cols, "I="+l)
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 3 — %s: optimal setting per sample across inefficiency budgets", r.Benchmark),
		cols...)
	for _, row := range r.Rows {
		cells := []string{
			fmt.Sprintf("%d", row.Sample),
			fmt.Sprintf("%.2f", row.CPI),
			fmt.Sprintf("%.1f", row.MPKI),
		}
		for _, l := range r.Labels {
			cells = append(cells, row.Optimal[l].String())
		}
		t.AddRow(cells...)
	}
	return t
}
