package cpupower

import (
	"math"
	"testing"
	"testing/quick"

	"mcdvfs/internal/freq"
)

func defaultModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(DefaultParams())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestPeakPowerAnchors(t *testing.T) {
	m := defaultModel(t)
	b, err := m.Power(freq.CPUMaxMHz, 1)
	if err != nil {
		t.Fatalf("Power: %v", err)
	}
	p := DefaultParams()
	if math.Abs(b.DynamicW-p.PeakDynamicW) > 1e-12 {
		t.Errorf("dynamic at peak = %v, want %v", b.DynamicW, p.PeakDynamicW)
	}
	if math.Abs(b.BackgroundW-p.BackgroundW) > 1e-12 {
		t.Errorf("background at peak = %v, want %v", b.BackgroundW, p.BackgroundW)
	}
	if math.Abs(b.LeakageW-p.LeakageW) > 1e-12 {
		t.Errorf("leakage at peak = %v, want %v", b.LeakageW, p.LeakageW)
	}
}

func TestDynamicScalesV2F(t *testing.T) {
	m := defaultModel(t)
	v, err := DefaultParams().OPPs.VoltageAt(500)
	if err != nil {
		t.Fatalf("VoltageAt: %v", err)
	}
	b, err := m.Power(500, 1)
	if err != nil {
		t.Fatalf("Power: %v", err)
	}
	want := DefaultParams().PeakDynamicW * 0.5 * math.Pow(float64(v)/1.25, 2)
	if math.Abs(b.DynamicW-want) > 1e-9 {
		t.Errorf("dynamic at 500MHz = %v, want %v", b.DynamicW, want)
	}
}

func TestBackgroundScalesLikeDynamic(t *testing.T) {
	m := defaultModel(t)
	for _, f := range []freq.MHz{100, 300, 700, 1000} {
		b, err := m.Power(f, 1)
		if err != nil {
			t.Fatalf("Power(%v): %v", f, err)
		}
		ratio := b.BackgroundW / b.DynamicW
		wantRatio := DefaultParams().BackgroundW / DefaultParams().PeakDynamicW
		if math.Abs(ratio-wantRatio) > 1e-9 {
			t.Errorf("background/dynamic ratio at %v = %v, want %v", f, ratio, wantRatio)
		}
	}
}

func TestLeakageLinearInVoltage(t *testing.T) {
	m := defaultModel(t)
	p := DefaultParams()
	b100, _ := m.Power(100, 0)
	v100, _ := p.OPPs.VoltageAt(100)
	want := p.LeakageW * float64(v100/p.VMax)
	if math.Abs(b100.LeakageW-want) > 1e-9 {
		t.Errorf("leakage at 100MHz = %v, want %v", b100.LeakageW, want)
	}
	// Leakage must not depend on activity.
	b100a, _ := m.Power(100, 1)
	if b100a.LeakageW != b100.LeakageW {
		t.Errorf("leakage depends on activity: %v vs %v", b100a.LeakageW, b100.LeakageW)
	}
}

func TestZeroActivityKillsOnlyDynamic(t *testing.T) {
	m := defaultModel(t)
	b, err := m.Power(800, 0)
	if err != nil {
		t.Fatalf("Power: %v", err)
	}
	if b.DynamicW != 0 {
		t.Errorf("dynamic at activity 0 = %v, want 0", b.DynamicW)
	}
	if b.BackgroundW <= 0 || b.LeakageW <= 0 {
		t.Errorf("background/leakage should persist at idle: %+v", b)
	}
}

func TestEnergyIntegration(t *testing.T) {
	m := defaultModel(t)
	b, _ := m.Power(1000, 1)
	e, err := m.Energy(1000, 1, 1e9) // one second
	if err != nil {
		t.Fatalf("Energy: %v", err)
	}
	if math.Abs(e-b.TotalW()) > 1e-12 {
		t.Errorf("1s energy = %v J, want %v", e, b.TotalW())
	}
}

func TestEnergyErrors(t *testing.T) {
	m := defaultModel(t)
	if _, err := m.Energy(1000, 1, -1); err == nil {
		t.Error("negative duration should error")
	}
	if _, err := m.Energy(1000, 2, 1); err == nil {
		t.Error("activity > 1 should error")
	}
	if _, err := m.Energy(5000, 1, 1); err == nil {
		t.Error("frequency outside OPP range should error")
	}
}

func TestNewValidation(t *testing.T) {
	p := DefaultParams()
	p.PeakDynamicW = 0
	if _, err := New(p); err == nil {
		t.Error("zero peak dynamic should be rejected")
	}
	p = DefaultParams()
	p.OPPs = nil
	if _, err := New(p); err == nil {
		t.Error("nil OPP table should be rejected")
	}
	p = DefaultParams()
	p.FMax = 0
	if _, err := New(p); err == nil {
		t.Error("zero FMax should be rejected")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid params did not panic")
		}
	}()
	MustNew(Params{})
}

// Property: total power is monotone non-decreasing in frequency at fixed
// activity, because every component is non-decreasing in f (via V(f)).
func TestPowerMonotoneInFrequency(t *testing.T) {
	m := defaultModel(t)
	prev := 0.0
	for _, f := range freq.Ladder(100, 1000, 50) {
		b, err := m.Power(f, 0.7)
		if err != nil {
			t.Fatalf("Power(%v): %v", f, err)
		}
		if b.TotalW() < prev {
			t.Errorf("total power decreased at %v", f)
		}
		prev = b.TotalW()
	}
}

// Property: energy-per-work (per cycle at full activity) has a single
// interior minimum: decreasing then increasing across the ladder. This is
// the race-to-idle vs voltage-scaling tension that makes Emin nontrivial.
func TestEnergyPerCycleConvexShape(t *testing.T) {
	m := defaultModel(t)
	var vals []float64
	for _, f := range freq.Ladder(100, 1000, 100) {
		e, err := m.EnergyPerCycle(f)
		if err != nil {
			t.Fatalf("EnergyPerCycle(%v): %v", f, err)
		}
		vals = append(vals, e)
	}
	// Find the argmin and require strictly decreasing before it and
	// strictly increasing after it.
	argmin := 0
	for i, v := range vals {
		if v < vals[argmin] {
			argmin = i
		}
	}
	if argmin == 0 || argmin == len(vals)-1 {
		t.Fatalf("energy/cycle minimum at ladder edge (idx %d): %v", argmin, vals)
	}
	for i := 1; i <= argmin; i++ {
		if vals[i] >= vals[i-1] {
			t.Errorf("not decreasing before min at idx %d: %v", i, vals)
		}
	}
	for i := argmin + 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Errorf("not increasing after min at idx %d: %v", i, vals)
		}
	}
}

// Property-based: power components are non-negative and finite for any
// in-range frequency/activity.
func TestPowerAlwaysPhysical(t *testing.T) {
	m := defaultModel(t)
	f := func(fRaw, aRaw uint16) bool {
		fr := freq.MHz(100 + float64(fRaw%901))
		act := float64(aRaw%1001) / 1000
		b, err := m.Power(fr, act)
		if err != nil {
			return false
		}
		for _, w := range []float64{b.DynamicW, b.BackgroundW, b.LeakageW} {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
