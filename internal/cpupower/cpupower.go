// Package cpupower implements the paper's empirical CPU power model.
//
// The paper measured a PandaBoard (OMAP4430, Cortex-A9) with a bench
// multimeter and reduced the measurements to a three-component analytic
// model (Section III-B):
//
//   - Dynamic power: consumed only while the core is computing. Scales
//     quadratically with supply voltage and linearly with clock frequency
//     (P ∝ V²f), anchored at a measured peak at the maximum operating point.
//   - Background power: consumed by idle clocked units whenever the core is
//     powered and clocked but not computing (and also under computation).
//     Because it is clocked, it scales like dynamic power (∝ V²f).
//   - Leakage power: up to ~30% of peak power, linearly proportional to
//     supply voltage, and independent of frequency. It is burned for the
//     whole time the core is powered.
//
// This package implements exactly that model. The defaults are calibrated
// so that the full-system characterization reproduces the paper's reported
// shapes (e.g. gobmk inefficiency ≈1.5 at the slowest settings and ≈1.65 at
// the fastest); see DESIGN.md for the calibration notes.
package cpupower

import (
	"fmt"

	"mcdvfs/internal/freq"
)

// Params configures the CPU power model. All powers are the component's
// value at the maximum operating point (FMax, VMax).
type Params struct {
	// PeakDynamicW is dynamic power at (FMax, VMax) with activity 1.0.
	PeakDynamicW float64
	// BackgroundW is clocked idle power at (FMax, VMax).
	BackgroundW float64
	// LeakageW is leakage power at VMax.
	LeakageW float64
	// FMax and VMax anchor the scaling laws.
	FMax freq.MHz
	VMax freq.Volts
	// OPPs maps a frequency to its supply voltage.
	OPPs *freq.OPPTable
}

// DefaultParams returns the calibrated model for the emulated A15-class
// mobile core with the paper's 100–1000 MHz, 0.85–1.25 V OPP range.
func DefaultParams() Params {
	return Params{
		PeakDynamicW: 2.2,
		BackgroundW:  0.15,
		LeakageW:     0.10,
		FMax:         freq.CPUMaxMHz,
		VMax:         1.25,
		OPPs:         freq.DefaultCPUOPPs(),
	}
}

// LittleParams returns a LITTLE (A7-class) companion-core model for
// big.LITTLE-style studies: a quarter of the big core's peak dynamic power
// at a 600 MHz ceiling with a lower voltage range. The paper's
// introduction names ARM big.LITTLE as one of the energy-performance
// trade-offs next-generation devices expose; the heterocmp experiment uses
// this model to study when the LITTLE core wins under an inefficiency
// budget.
func LittleParams() Params {
	return Params{
		PeakDynamicW: 0.45,
		BackgroundW:  0.05,
		LeakageW:     0.03,
		FMax:         600,
		VMax:         1.05,
		OPPs:         freq.LinearOPPTable(freq.Ladder(100, 600, 100), 0.70, 1.05),
	}
}

// Model evaluates CPU power and energy at arbitrary operating points.
type Model struct {
	p Params
}

// New validates params and builds a model.
func New(p Params) (*Model, error) {
	if p.PeakDynamicW <= 0 || p.BackgroundW < 0 || p.LeakageW < 0 {
		return nil, fmt.Errorf("cpupower: non-physical power parameters %+v", p)
	}
	if p.FMax <= 0 || p.VMax <= 0 {
		return nil, fmt.Errorf("cpupower: missing FMax/VMax anchors")
	}
	if p.OPPs == nil {
		return nil, fmt.Errorf("cpupower: missing OPP table")
	}
	return &Model{p: p}, nil
}

// MustNew is New for static configuration; it panics on invalid params.
func MustNew(p Params) *Model {
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the model's configuration.
func (m *Model) Params() Params { return m.p }

// Breakdown is instantaneous CPU power split into the model's components.
type Breakdown struct {
	DynamicW    float64
	BackgroundW float64
	LeakageW    float64
}

// TotalW is the sum of all components.
func (b Breakdown) TotalW() float64 { return b.DynamicW + b.BackgroundW + b.LeakageW }

// Power returns the power breakdown at frequency f with the given activity
// factor (fraction of cycles doing useful work, in [0,1]). The voltage is
// looked up from the OPP table; frequencies outside the table are an error.
func (m *Model) Power(f freq.MHz, activity float64) (Breakdown, error) {
	if activity < 0 || activity > 1 {
		return Breakdown{}, fmt.Errorf("cpupower: activity %v outside [0,1]", activity)
	}
	v, err := m.p.OPPs.VoltageAt(f)
	if err != nil {
		return Breakdown{}, err
	}
	fr := float64(f / m.p.FMax)
	vr := float64(v / m.p.VMax)
	clocked := fr * vr * vr // the V²f scaling shared by dynamic and background
	return Breakdown{
		DynamicW:    m.p.PeakDynamicW * clocked * activity,
		BackgroundW: m.p.BackgroundW * clocked,
		LeakageW:    m.p.LeakageW * vr,
	}, nil
}

// Energy integrates the model over an interval of durationNS nanoseconds at
// frequency f and the given average activity, returning joules.
func (m *Model) Energy(f freq.MHz, activity, durationNS float64) (float64, error) {
	if durationNS < 0 {
		return 0, fmt.Errorf("cpupower: negative duration %v", durationNS)
	}
	b, err := m.Power(f, activity)
	if err != nil {
		return 0, err
	}
	return b.TotalW() * durationNS * 1e-9, nil
}

// Coeffs packs the per-frequency invariants of the power model — the
// component powers with the V²f scaling already applied — hoisted once per
// operating point so energy can be evaluated per sample without repeating
// the OPP voltage lookup and scaling-law arithmetic.
//
// EnergyJ mirrors Model.Energy operation-for-operation (same association
// order), so for activities in [0,1] and non-negative durations the results
// are bit-identical; TestCoeffsMatchModel pins the equivalence. Inputs are
// not validated here.
type Coeffs struct {
	PeakClockedW float64 // PeakDynamicW · (f/FMax)(v/VMax)²; scale by activity
	BackgroundW  float64 // clocked idle power at the operating point
	LeakageW     float64 // leakage power at the operating point's voltage
}

// CoeffsAt hoists the power-model invariants for frequency f.
//
//vet:hotpath
//vet:requires f > 0
func (m *Model) CoeffsAt(f freq.MHz) (Coeffs, error) {
	v, err := m.p.OPPs.VoltageAt(f)
	if err != nil {
		return Coeffs{}, err
	}
	fr := float64(f / m.p.FMax)
	vr := float64(v / m.p.VMax)
	clocked := fr * vr * vr
	return Coeffs{
		PeakClockedW: m.p.PeakDynamicW * clocked,
		BackgroundW:  m.p.BackgroundW * clocked,
		LeakageW:     m.p.LeakageW * vr,
	}, nil
}

// EnergyJ is the hoisted Model.Energy: joules over durationNS at the
// hoisted operating point with the given average activity.
//
//vet:requires activity >= 0 && activity <= 1 && durationNS >= 0
//vet:ensures ret >= 0
func (c Coeffs) EnergyJ(activity, durationNS float64) float64 {
	dyn := c.PeakClockedW * activity
	return (dyn + c.BackgroundW + c.LeakageW) * durationNS * 1e-9
}

// EnergyPerCycle returns the active-execution energy cost of one cycle at
// frequency f (dynamic at full activity plus background plus leakage,
// divided by the clock rate). Useful for quick analytic comparisons.
func (m *Model) EnergyPerCycle(f freq.MHz) (float64, error) {
	b, err := m.Power(f, 1)
	if err != nil {
		return 0, err
	}
	return b.TotalW() / f.Hz(), nil
}
