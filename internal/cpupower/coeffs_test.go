package cpupower

// Equivalence suite pinning the hoisted Coeffs energy evaluation to
// Model.Energy bit-for-bit across the OPP ladders and activity range.

import (
	"testing"

	"mcdvfs/internal/freq"
)

func TestCoeffsMatchModel(t *testing.T) {
	for name, p := range map[string]Params{
		"default": DefaultParams(),
		"little":  LittleParams(),
	} {
		m := MustNew(p)
		var ladder []freq.MHz
		if name == "little" {
			ladder = freq.Ladder(100, 600, 100)
		} else {
			ladder = freq.FineSpace().CPULadder()
		}
		for _, f := range ladder {
			c, err := m.CoeffsAt(f)
			if err != nil {
				t.Fatalf("%s: CoeffsAt(%v): %v", name, f, err)
			}
			for _, activity := range []float64{0, 0.25, 0.5, 0.999, 1} {
				for _, durNS := range []float64{0, 1, 1e6, 3.7e9} {
					want, err := m.Energy(f, activity, durNS)
					if err != nil {
						t.Fatalf("%s: Energy(%v, %v, %v): %v", name, f, activity, durNS, err)
					}
					if got := c.EnergyJ(activity, durNS); got != want {
						t.Errorf("%s: f=%v a=%v dur=%v: coeffs energy %v != model %v",
							name, f, activity, durNS, got, want)
					}
				}
			}
		}
	}
}

func TestCoeffsAtRejectsUnknownOPP(t *testing.T) {
	m := MustNew(DefaultParams())
	if _, err := m.CoeffsAt(5000); err == nil {
		t.Error("frequency outside the OPP table accepted")
	}
}
