package core

import (
	"fmt"

	"mcdvfs/internal/freq"
)

// preferHigher reports whether setting a should be preferred over b under
// the paper's tie-break rule: highest CPU frequency first, then highest
// memory frequency. Among similar-speedup settings this choice is "bound to
// have highest performance among the other possibilities".
func preferHigher(a, b freq.Setting) bool {
	if a.CPU != b.CPU { //lint:allow floateq ladder frequencies are exact discrete values; identity, not arithmetic
		return a.CPU > b.CPU
	}
	return a.Mem > b.Mem
}

// OptimalSetting returns the best-performing setting for the sample under
// the inefficiency budget, applying the paper's selection algorithm: filter
// settings by budget, find the highest speedup, and among settings within
// SpeedupTieBand of it pick the one with the highest CPU then memory
// frequency.
func (a *Analysis) OptimalSetting(sample int, budget float64) (freq.SettingID, error) {
	ids, err := a.WithinBudget(sample, budget)
	if err != nil {
		return 0, err
	}
	return a.bestAmong(sample, ids)
}

// bestAmong applies the max-speedup + tie-break rule over a candidate set.
func (a *Analysis) bestAmong(sample int, ids []freq.SettingID) (freq.SettingID, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("core: empty candidate set for sample %d", sample)
	}
	best := 0.0
	for _, k := range ids {
		if sp := a.speedup[sample][int(k)]; sp > best {
			best = sp
		}
	}
	chosen := freq.SettingID(-1)
	for _, k := range ids {
		if a.speedup[sample][int(k)] < best*(1-SpeedupTieBand) {
			continue
		}
		if chosen < 0 || preferHigher(a.grid.Setting(k), a.grid.Setting(chosen)) {
			chosen = k
		}
	}
	return chosen, nil
}

// Schedule assigns one setting to every sample of a run.
type Schedule []freq.SettingID

// Transitions returns the number of setting changes along the schedule.
func (s Schedule) Transitions() int {
	n := 0
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			n++
		}
	}
	return n
}

// OptimalSchedule returns the per-sample optimal settings under the budget
// — the expensive "track the optimal every sample" policy the paper uses
// as its reference (Figure 3).
func (a *Analysis) OptimalSchedule(budget float64) (Schedule, error) {
	sch := make(Schedule, a.NumSamples())
	for s := range sch {
		k, err := a.OptimalSetting(s, budget)
		if err != nil {
			return nil, err
		}
		sch[s] = k
	}
	return sch, nil
}

// TransitionsPerBillion converts a transition count into the paper's
// transitions-per-billion-instructions unit (Figure 8).
func (a *Analysis) TransitionsPerBillion(transitions int) float64 {
	return float64(transitions) / (float64(a.TotalInstructions()) / 1e9)
}
