package core

import (
	"math"
	"testing"
	"testing/quick"

	"mcdvfs/internal/freq"
)

func TestParetoFrontierHandComputed(t *testing.T) {
	// Settings: 0 slow/cheap, 1 dominated (slower AND costlier than 2),
	// 2 mid, 3 fast/expensive.
	a := analysisFor(t,
		[][]float64{{200, 160, 150, 100}},
		[][]float64{{2.0, 3.5, 3.0, 4.0}},
	)
	fr := a.ParetoFrontier()
	if len(fr) != 3 {
		t.Fatalf("frontier size %d, want 3: %+v", len(fr), fr)
	}
	// Sorted by ascending time: 3 (100), 2 (150), 0 (200).
	wantOrder := []freq.SettingID{3, 2, 0}
	for i, w := range wantOrder {
		if fr[i].Setting != w {
			t.Errorf("frontier[%d] = %d, want %d", i, fr[i].Setting, w)
		}
	}
	for _, p := range fr {
		if p.Setting == 1 {
			t.Error("dominated setting on frontier")
		}
	}
}

func TestParetoExtremesOnFrontier(t *testing.T) {
	// The fastest setting and the Emin setting are never dominated.
	f := func(seed uint64) bool {
		a := quickAnalysis(t, seed)
		fr := a.ParetoFrontier()
		if len(fr) == 0 {
			return false
		}
		fastest, cheapest := fr[0], fr[0]
		for k := 0; k < a.NumSettings(); k++ {
			id := freq.SettingID(k)
			r := a.PinnedResult(id)
			if r.TimeNS < a.PinnedResult(fastest.Setting).TimeNS {
				return false // someone faster than the frontier's head
			}
			_ = id
		}
		// Frontier contains a point with inefficiency 1 (the Emin
		// setting) — scan for it.
		foundEmin := false
		for _, p := range fr {
			if math.Abs(p.Inefficiency-1) < 1e-12 {
				foundEmin = true
			}
			if p.EnergyJ < cheapest.EnergyJ {
				cheapest = p
			}
		}
		return foundEmin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParetoNoMutualDomination(t *testing.T) {
	f := func(seed uint64) bool {
		a := quickAnalysis(t, seed)
		fr := a.ParetoFrontier()
		for i := range fr {
			for j := range fr {
				if i == j {
					continue
				}
				if fr[j].TimeNS <= fr[i].TimeNS && fr[j].EnergyJ <= fr[i].EnergyJ &&
					(fr[j].TimeNS < fr[i].TimeNS || fr[j].EnergyJ < fr[i].EnergyJ) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBestUnderBudget(t *testing.T) {
	a := analysisFor(t,
		[][]float64{{200, 160, 150, 100}},
		[][]float64{{2.0, 3.5, 3.0, 4.0}},
	)
	// Budget 1: only the Emin setting (0).
	p, ok := a.BestUnderBudget(1)
	if !ok || p.Setting != 0 {
		t.Errorf("budget 1 -> %+v, %v; want setting 0", p, ok)
	}
	// Budget 1.5: settings with ineff <= 1.5: {0 (1.0), 2 (1.5)} -> 2 is faster.
	p, ok = a.BestUnderBudget(1.5)
	if !ok || p.Setting != 2 {
		t.Errorf("budget 1.5 -> %+v, %v; want setting 2", p, ok)
	}
	// Unconstrained: the fastest (3).
	p, ok = a.BestUnderBudget(Unconstrained)
	if !ok || p.Setting != 3 {
		t.Errorf("unconstrained -> %+v, %v; want setting 3", p, ok)
	}
}

func TestBestUnderBudgetMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		a := quickAnalysis(t, seed)
		prevTime := math.Inf(1)
		for _, b := range []float64{1.0, 1.2, 1.5, 2.0, 5.0} {
			p, ok := a.BestUnderBudget(b)
			if !ok {
				return false // budget >= 1 always admits the Emin point
			}
			if p.TimeNS > prevTime+1e-9 {
				return false
			}
			prevTime = p.TimeNS
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
