package core

import (
	"testing"
)

// regionFixture builds a 4-sample grid engineered so that with a 1%
// threshold the clusters are:
//
//	s0: {1,3}   s1: {1,2}   s2: {1,2}   s3: {0}
//
// giving stable regions [0,2] (common setting 1) and [3,3].
func regionFixture(t *testing.T) *Analysis {
	t.Helper()
	return analysisFor(t,
		[][]float64{
			{200, 100.5, 200, 100}, // cluster {1,3}, opt 3
			{200, 100.5, 100, 200}, // cluster {1,2}, opt 2
			{200, 100.2, 100, 200}, // cluster {1,2}, opt 2
			{100, 200, 200, 200},   // cluster {0}, opt 0
		},
		[][]float64{
			{2, 2, 2, 2},
			{2, 2, 2, 2},
			{2, 2, 2, 2},
			{2, 2, 2, 2},
		},
	)
}

func TestStableRegionsSegmentation(t *testing.T) {
	a := regionFixture(t)
	regions, err := a.StableRegions(Unconstrained, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 {
		t.Fatalf("regions = %+v, want 2", regions)
	}
	r0, r1 := regions[0], regions[1]
	if r0.Start != 0 || r0.End != 2 {
		t.Errorf("region 0 = [%d,%d], want [0,2]", r0.Start, r0.End)
	}
	if r0.Choice != 1 {
		t.Errorf("region 0 choice = %d, want 1 (only common setting)", r0.Choice)
	}
	if r0.Len() != 3 {
		t.Errorf("region 0 len = %d, want 3", r0.Len())
	}
	if r1.Start != 3 || r1.End != 3 || r1.Choice != 0 {
		t.Errorf("region 1 = %+v, want [3,3] choice 0", r1)
	}
}

func TestRegionsCoverEverySampleOnce(t *testing.T) {
	a := regionFixture(t)
	regions, err := a.StableRegions(Unconstrained, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]bool, a.NumSamples())
	for _, r := range regions {
		for s := r.Start; s <= r.End; s++ {
			if covered[s] {
				t.Fatalf("sample %d covered twice", s)
			}
			covered[s] = true
		}
	}
	for s, ok := range covered {
		if !ok {
			t.Fatalf("sample %d not covered", s)
		}
	}
}

func TestRegionChoiceInEverySamplesCluster(t *testing.T) {
	a := regionFixture(t)
	for _, th := range []float64{0.01, 0.05} {
		regions, err := a.StableRegions(Unconstrained, th)
		if err != nil {
			t.Fatal(err)
		}
		clusters, _ := a.Clusters(Unconstrained, th)
		for _, r := range regions {
			for s := r.Start; s <= r.End; s++ {
				if !clusters[s].Contains(r.Choice) {
					t.Errorf("th %v: region choice %d not in cluster of sample %d", th, r.Choice, s)
				}
			}
		}
	}
}

func TestRegionChoicePicksCheapestMember(t *testing.T) {
	// Two samples whose common set is {1 (500/800), 2 (1000/400)}: the
	// region must choose the member with the lowest total energy.
	a := analysisFor(t,
		[][]float64{
			{200, 100.5, 100, 200},
			{200, 100.5, 100, 200},
		},
		[][]float64{
			{2, 1.8, 2.1, 2},
			{2, 1.8, 2.1, 2},
		},
	)
	regions, err := a.StableRegions(Unconstrained, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 || regions[0].Choice != 1 {
		t.Fatalf("regions = %+v, want single region choosing cheapest member 1", regions)
	}
}

func TestRegionChoiceEqualEnergyTieBreak(t *testing.T) {
	// Equal-energy members fall back to highest CPU, then lowest memory.
	a := analysisFor(t,
		[][]float64{
			{200, 100.5, 100, 100.4},
			{200, 100.5, 100, 100.4},
		},
		[][]float64{
			{2, 2, 2, 2},
			{2, 2, 2, 2},
		},
	)
	regions, err := a.StableRegions(Unconstrained, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 {
		t.Fatalf("regions = %+v", regions)
	}
	// Common set {1 (500/800), 2 (1000/400), 3 (1000/800)}: equal energy,
	// so highest CPU (1000) then lowest memory (400) wins.
	if regions[0].Choice != 2 {
		t.Errorf("choice = %d (%v), want 2 (1000/400)",
			regions[0].Choice, a.Grid().Setting(regions[0].Choice))
	}
}

func TestRegionChoicePrefersLowMemoryAtEqualCPU(t *testing.T) {
	// Common set {2 (1000/400), 3 (1000/800)}: performance- and
	// energy-equivalent, so the tie-break picks the low-memory member.
	a := analysisFor(t,
		[][]float64{
			{200, 200, 100, 100.5},
			{200, 200, 100, 100.5},
		},
		[][]float64{
			{2, 2, 2, 2},
			{2, 2, 2, 2},
		},
	)
	regions, err := a.StableRegions(Unconstrained, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 {
		t.Fatalf("regions = %+v", regions)
	}
	if len(regions[0].Avail) != 2 {
		t.Fatalf("avail = %v, want {2,3}", regions[0].Avail)
	}
	if regions[0].Choice != 2 {
		t.Errorf("choice = %d (%v), want 2 (1000/400)", regions[0].Choice, a.Grid().Setting(regions[0].Choice))
	}
}

func TestRegionScheduleTransitionsEqualRegionBoundaries(t *testing.T) {
	a := regionFixture(t)
	regions, err := a.StableRegions(Unconstrained, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	sch := RegionSchedule(a.NumSamples(), regions)
	if got, want := sch.Transitions(), len(regions)-1; got != want {
		t.Errorf("schedule transitions = %d, want %d", got, want)
	}
}

func TestRegionLengths(t *testing.T) {
	a := regionFixture(t)
	regions, _ := a.StableRegions(Unconstrained, 0.01)
	lens := RegionLengths(regions)
	if len(lens) != 2 || lens[0] != 3 || lens[1] != 1 {
		t.Errorf("lengths = %v, want [3 1]", lens)
	}
}

func TestHigherThresholdNeverMoreRegions(t *testing.T) {
	// Monotonicity: widening the threshold can only keep or merge regions.
	a := regionFixture(t)
	prev := int(^uint(0) >> 1)
	for _, th := range []float64{0.001, 0.01, 0.03, 0.05, 0.10} {
		regions, err := a.StableRegions(Unconstrained, th)
		if err != nil {
			t.Fatal(err)
		}
		if len(regions) > prev {
			t.Errorf("threshold %v produced more regions (%d) than tighter threshold (%d)",
				th, len(regions), prev)
		}
		prev = len(regions)
	}
}

func TestSingleSampleRun(t *testing.T) {
	a := analysisFor(t,
		[][]float64{{200, 180, 110, 100}},
		[][]float64{{2.0, 2.5, 3.0, 4.0}},
	)
	regions, err := a.StableRegions(1.3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 || regions[0].Start != 0 || regions[0].End != 0 {
		t.Fatalf("regions = %+v", regions)
	}
}
