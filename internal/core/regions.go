package core

import "mcdvfs/internal/freq"

// Region is a stable region (Section VI-B): a maximal run of consecutive
// samples sharing at least one common setting across all their performance
// clusters. The system can sit at one setting for the whole region and stay
// within the cluster threshold of optimal at every sample.
type Region struct {
	// Start and End are the inclusive sample bounds.
	Start, End int
	// Choice is the setting selected for the region: the highest-CPU-then-
	// memory member of the surviving common set, per the paper's rule.
	Choice freq.SettingID
	// Avail is the full set of settings common to every sample in the
	// region, ascending by ID.
	Avail []freq.SettingID
}

// Len returns the region length in samples.
func (r Region) Len() int { return r.End - r.Start + 1 }

// StableRegions segments the run into stable regions for the given budget
// and cluster threshold using the paper's greedy algorithm: starting from a
// sample's cluster, intersect with each subsequent sample's cluster until
// the common set would become empty, then close the region and start a new
// one.
//
// As the paper notes, this construction "knows the future": it is an
// offline profiling tool, not an online governor. The online counterpart
// lives in internal/governor.
func (a *Analysis) StableRegions(budget, threshold float64) ([]Region, error) {
	clusters, err := a.Clusters(budget, threshold)
	if err != nil {
		return nil, err
	}
	return regionsFromClusters(a, clusters), nil
}

// regionsFromClusters runs the segmentation over precomputed clusters.
func regionsFromClusters(a *Analysis, clusters []Cluster) []Region {
	var regions []Region
	if len(clusters) == 0 {
		return regions
	}
	start := 0
	avail := clusters[0].Members
	for s := 1; s < len(clusters); s++ {
		next := intersect(avail, clusters[s].Members)
		if len(next) == 0 {
			regions = append(regions, closeRegion(a, start, s-1, avail))
			start = s
			avail = clusters[s].Members
			continue
		}
		avail = next
	}
	regions = append(regions, closeRegion(a, start, len(clusters)-1, avail))
	return regions
}

// closeRegion picks the region's setting from the surviving common set:
// the member with the lowest total energy across the region's samples,
// breaking exact ties toward higher CPU then lower memory frequency.
//
// Every member is performance-equivalent within the cluster threshold, so
// the cheapest member trades the allowed sliver of performance for energy
// — the paper's own motivating example (Section V: bzip2 giving up 3%
// performance for 1/4 of the memory background energy) and the choice that
// reproduces Figure 11, where degradation scales with the threshold and
// energy *savings* grow with it. (The paper's prose tie-break — highest
// CPU, then memory — would instead pin degradation at ~0 and spend extra
// energy, contradicting its own figure; see EXPERIMENTS.md.)
func closeRegion(a *Analysis, start, end int, avail []freq.SettingID) Region {
	energyOver := func(k freq.SettingID) float64 {
		sum := 0.0
		for s := start; s <= end; s++ {
			sum += a.grid.At(s, k).EnergyJ()
		}
		return sum
	}
	choice := avail[0]
	bestE := energyOver(choice)
	for _, k := range avail[1:] {
		e := energyOver(k)
		switch {
		case e < bestE:
			choice, bestE = k, e
		case e == bestE: //lint:allow floateq exact tie between deterministically replayed energies
			cand, cur := a.grid.Setting(k), a.grid.Setting(choice)
			if cand.CPU > cur.CPU || (cand.CPU == cur.CPU && cand.Mem < cur.Mem) { //lint:allow floateq ladder frequencies are exact discrete values
				choice = k
			}
		}
	}
	return Region{Start: start, End: end, Choice: choice, Avail: append([]freq.SettingID(nil), avail...)}
}

// RegionSchedule expands stable regions into a per-sample schedule: every
// sample in a region runs at the region's choice. The schedule makes
// exactly len(regions)-1 transitions.
func RegionSchedule(numSamples int, regions []Region) Schedule {
	sch := make(Schedule, numSamples)
	for _, r := range regions {
		for s := r.Start; s <= r.End; s++ {
			sch[s] = r.Choice
		}
	}
	return sch
}

// RegionLengths returns each region's length in samples, in order.
func RegionLengths(regions []Region) []int {
	out := make([]int, len(regions))
	for i, r := range regions {
		out[i] = r.Len()
	}
	return out
}
