package core

import (
	"math"
	"testing"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/trace"
)

// mkGrid builds a synthetic grid with explicit per-sample, per-setting
// times (ns) and energies (J). settings[k] pairs with times[s][k].
func mkGrid(t *testing.T, settings []freq.Setting, times, energies [][]float64) *trace.Grid {
	t.Helper()
	if len(times) != len(energies) {
		t.Fatal("mkGrid: times/energies mismatch")
	}
	g := &trace.Grid{
		Benchmark:   "synthetic",
		SampleInstr: 10_000_000,
		Settings:    settings,
		Data:        make([][]trace.Measurement, len(times)),
	}
	for s := range times {
		if len(times[s]) != len(settings) || len(energies[s]) != len(settings) {
			t.Fatal("mkGrid: row width mismatch")
		}
		g.Data[s] = make([]trace.Measurement, len(settings))
		for k := range settings {
			g.Data[s][k] = trace.Measurement{
				TimeNS:     times[s][k],
				CPUEnergyJ: energies[s][k],
			}
		}
	}
	return g
}

// fourSettings is a 2x2 space: (CPU, Mem) in {500,1000} x {400,800}.
// ID order is CPU-major: 0=(500,400) 1=(500,800) 2=(1000,400) 3=(1000,800).
func fourSettings() []freq.Setting {
	return []freq.Setting{
		{CPU: 500, Mem: 400}, {CPU: 500, Mem: 800},
		{CPU: 1000, Mem: 400}, {CPU: 1000, Mem: 800},
	}
}

func analysisFor(t *testing.T, times, energies [][]float64) *Analysis {
	t.Helper()
	a, err := NewAnalysis(mkGrid(t, fourSettings(), times, energies))
	if err != nil {
		t.Fatalf("NewAnalysis: %v", err)
	}
	return a
}

func TestInefficiencyDefinition(t *testing.T) {
	a := analysisFor(t,
		[][]float64{{200, 180, 110, 100}},
		[][]float64{{2.0, 2.5, 3.0, 4.0}},
	)
	// Emin = 2.0 at setting 0.
	if got := a.Emin(0); got != 2.0 {
		t.Errorf("Emin = %v, want 2.0", got)
	}
	wants := []float64{1.0, 1.25, 1.5, 2.0}
	for k, w := range wants {
		if got := a.Inefficiency(0, freq.SettingID(k)); math.Abs(got-w) > 1e-12 {
			t.Errorf("inefficiency[%d] = %v, want %v", k, got, w)
		}
	}
}

func TestSpeedupDefinition(t *testing.T) {
	a := analysisFor(t,
		[][]float64{{200, 180, 110, 100}},
		[][]float64{{2.0, 2.5, 3.0, 4.0}},
	)
	// Speedup is longest time / time: setting 0 (slowest) has speedup 1.
	if got := a.Speedup(0, 0); got != 1.0 {
		t.Errorf("slowest speedup = %v, want 1", got)
	}
	if got := a.Speedup(0, 3); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("fastest speedup = %v, want 2", got)
	}
}

func TestWithinBudget(t *testing.T) {
	a := analysisFor(t,
		[][]float64{{200, 180, 110, 100}},
		[][]float64{{2.0, 2.5, 3.0, 4.0}},
	)
	ids, err := a.WithinBudget(0, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	// Inefficiencies: 1.0, 1.25, 1.5, 2.0 -> budget 1.3 admits {0, 1}.
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("WithinBudget(1.3) = %v, want [0 1]", ids)
	}
	// Budget 1 admits only the Emin setting.
	ids, _ = a.WithinBudget(0, 1)
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("WithinBudget(1) = %v, want [0]", ids)
	}
	// Unconstrained admits everything.
	ids, _ = a.WithinBudget(0, Unconstrained)
	if len(ids) != 4 {
		t.Errorf("WithinBudget(inf) = %v, want all 4", ids)
	}
}

func TestWithinBudgetNeverEmpty(t *testing.T) {
	a := analysisFor(t,
		[][]float64{{200, 180, 110, 100}, {150, 140, 90, 80}},
		[][]float64{{2.0, 2.5, 3.0, 4.0}, {3.0, 2.8, 2.6, 2.9}},
	)
	for s := 0; s < a.NumSamples(); s++ {
		ids, err := a.WithinBudget(s, 1)
		if err != nil || len(ids) == 0 {
			t.Errorf("sample %d: budget-1 set empty (err %v)", s, err)
		}
	}
}

func TestBudgetValidation(t *testing.T) {
	a := analysisFor(t,
		[][]float64{{200, 180, 110, 100}},
		[][]float64{{2.0, 2.5, 3.0, 4.0}},
	)
	for _, b := range []float64{0.5, 0, -1, math.NaN()} {
		if _, err := a.WithinBudget(0, b); err == nil {
			t.Errorf("budget %v accepted", b)
		}
	}
}

func TestRunAggregates(t *testing.T) {
	a := analysisFor(t,
		[][]float64{
			{200, 180, 110, 100},
			{100, 90, 60, 50},
		},
		[][]float64{
			{2.0, 2.5, 3.0, 4.0},
			{1.0, 1.5, 2.0, 2.0},
		},
	)
	// Totals: times {300, 270, 170, 150}, energies {3.0, 4.0, 5.0, 6.0}.
	if got := a.RunInefficiency(0); got != 1.0 {
		t.Errorf("run inefficiency[0] = %v, want 1", got)
	}
	if got := a.RunInefficiency(3); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("run inefficiency[3] = %v, want 2", got)
	}
	if got := a.RunSpeedup(3); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("run speedup[3] = %v, want 2", got)
	}
	if got := a.MaxInefficiency(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Imax = %v, want 2", got)
	}
	if got := a.TotalInstructions(); got != 20_000_000 {
		t.Errorf("TotalInstructions = %d", got)
	}
}

func TestNewAnalysisRejectsBadGrids(t *testing.T) {
	if _, err := NewAnalysis(nil); err == nil {
		t.Error("nil grid accepted")
	}
	g := mkGrid(t, fourSettings(),
		[][]float64{{1, 1, 1, 1}},
		[][]float64{{0, 0, 0, 0}},
	)
	// All-zero energy means Emin = 0, which breaks the metric.
	if _, err := NewAnalysis(g); err == nil {
		t.Error("zero-energy grid accepted")
	}
}

func TestCheckSamplePanics(t *testing.T) {
	a := analysisFor(t,
		[][]float64{{200, 180, 110, 100}},
		[][]float64{{2.0, 2.5, 3.0, 4.0}},
	)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range sample did not panic")
		}
	}()
	_, _ = a.WithinBudget(5, 1.3)
}
