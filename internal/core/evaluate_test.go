package core

import (
	"math"
	"testing"
)

func TestExecuteAccounting(t *testing.T) {
	a := analysisFor(t,
		[][]float64{
			{200, 180, 110, 100},
			{200, 180, 110, 100},
			{100, 180, 110, 200},
		},
		[][]float64{
			{2.0, 2.5, 3.0, 4.0},
			{2.0, 2.5, 3.0, 4.0},
			{2.0, 2.5, 3.0, 4.0},
		},
	)
	sch := Schedule{1, 1, 0}
	free, err := a.Execute(sch, Overhead{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(free.TimeNS-(180+180+100)) > 1e-9 {
		t.Errorf("time = %v, want 460", free.TimeNS)
	}
	if math.Abs(free.EnergyJ-(2.5+2.5+2.0)) > 1e-9 {
		t.Errorf("energy = %v, want 7", free.EnergyJ)
	}
	if free.Transitions != 1 {
		t.Errorf("transitions = %d, want 1", free.Transitions)
	}

	oh := Overhead{TimeNS: 10, EnergyJ: 0.5}
	withOH, err := a.Execute(sch, oh)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withOH.TimeNS-free.TimeNS-10) > 1e-9 {
		t.Errorf("overhead time not charged once: %v vs %v", withOH.TimeNS, free.TimeNS)
	}
	if math.Abs(withOH.EnergyJ-free.EnergyJ-0.5) > 1e-9 {
		t.Errorf("overhead energy not charged once")
	}
}

func TestExecuteValidation(t *testing.T) {
	a := analysisFor(t,
		[][]float64{{200, 180, 110, 100}},
		[][]float64{{2.0, 2.5, 3.0, 4.0}},
	)
	if _, err := a.Execute(Schedule{1, 2}, Overhead{}); err == nil {
		t.Error("wrong-length schedule accepted")
	}
	if _, err := a.Execute(Schedule{9}, Overhead{}); err == nil {
		t.Error("invalid setting ID accepted")
	}
}

func TestDefaultOverheadMatchesPaper(t *testing.T) {
	oh := DefaultOverhead()
	if oh.TimeNS != 500_000 {
		t.Errorf("overhead time = %v ns, want 500µs", oh.TimeNS)
	}
	if oh.EnergyJ != 30e-6 {
		t.Errorf("overhead energy = %v J, want 30µJ", oh.EnergyJ)
	}
	half := oh.Scale(0.5)
	if half.TimeNS != 250_000 || half.EnergyJ != 15e-6 {
		t.Errorf("Scale(0.5) = %+v", half)
	}
}

func TestTradeoffDegradationBoundedByThreshold(t *testing.T) {
	// The region schedule can only pick settings within the cluster
	// threshold of per-sample optimal, so end-to-end degradation without
	// overhead must stay within the threshold.
	a := regionFixture(t)
	for _, th := range []float64{0.01, 0.05} {
		tr, err := a.EvaluateTradeoff(Unconstrained, th, DefaultOverhead())
		if err != nil {
			t.Fatal(err)
		}
		maxPct := th * 100 / (1 - th) // speedup bound translated to time
		// The band is two-sided, and the 0.5% tie band can make the
		// nominal optimal slightly slower than the true fastest, so small
		// negative degradation is legitimate.
		if tr.PerfDegradationPct < -(maxPct + 0.6) {
			t.Errorf("th %v: improvement %v%% beyond band", th, tr.PerfDegradationPct)
		}
		if tr.PerfDegradationPct > maxPct+1e-9 {
			t.Errorf("th %v: degradation %v%% exceeds threshold bound %v%%", th, tr.PerfDegradationPct, maxPct)
		}
	}
}

func TestTradeoffFewerTransitionsThanOptimal(t *testing.T) {
	a := regionFixture(t)
	tr, err := a.EvaluateTradeoff(Unconstrained, 0.05, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	if tr.RegionTransitions > tr.OptimalTransitions {
		t.Errorf("region transitions %d exceed optimal tracking %d",
			tr.RegionTransitions, tr.OptimalTransitions)
	}
}

func TestTradeoffOverheadHelpsWhenTransitionsDrop(t *testing.T) {
	// Build a run where optimal tracking transitions every sample but one
	// setting is within 5% everywhere: with overhead the region schedule
	// must beat optimal tracking (the paper's Fig 11b observation).
	times := make([][]float64, 10)
	energies := make([][]float64, 10)
	for s := range times {
		if s%2 == 0 {
			times[s] = []float64{1e6, 1.02e6, 1.04e6, 1.01e6}
		} else {
			times[s] = []float64{1.02e6, 1e6, 1.04e6, 1.01e6}
		}
		energies[s] = []float64{2, 2, 2, 2}
	}
	a, err := NewAnalysis(mkGrid(t, fourSettings(), times, energies))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := a.EvaluateTradeoff(Unconstrained, 0.05, DefaultOverhead())
	if err != nil {
		t.Fatal(err)
	}
	if tr.OptimalTransitions == 0 {
		t.Fatal("fixture broken: optimal tracking should oscillate")
	}
	if tr.RegionTransitions != 0 {
		t.Fatalf("fixture broken: one setting should cover all samples, got %d transitions", tr.RegionTransitions)
	}
	if tr.PerfDegradationWithOverheadPct >= 0 {
		t.Errorf("with overhead, region schedule should beat optimal tracking: %+v", tr)
	}
}

func TestPinnedResult(t *testing.T) {
	a := analysisFor(t,
		[][]float64{
			{200, 180, 110, 100},
			{100, 90, 60, 50},
		},
		[][]float64{
			{2.0, 2.5, 3.0, 4.0},
			{1.0, 1.5, 2.0, 2.0},
		},
	)
	r := a.PinnedResult(2)
	if r.TimeNS != 170 || r.EnergyJ != 5.0 || r.Transitions != 0 {
		t.Errorf("PinnedResult = %+v", r)
	}
}
