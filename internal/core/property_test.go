package core

// Property-based tests: the paper's algorithms must satisfy their
// invariants on arbitrary (random but physical) grids, not just on the
// calibrated platform.

import (
	"context"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/rng"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/trace"
	"mcdvfs/internal/workload"
)

// randomGrid builds a random physical grid: positive times and energies
// with mild structure (faster settings cost more energy on average).
func randomGrid(seed uint64, samples, nCPU, nMem int) *trace.Grid {
	src := rng.New(seed)
	var settings []freq.Setting
	for c := 0; c < nCPU; c++ {
		for m := 0; m < nMem; m++ {
			settings = append(settings, freq.Setting{
				CPU: freq.MHz(100 * (c + 1)),
				Mem: freq.MHz(200 + 100*m),
			})
		}
	}
	g := &trace.Grid{
		Benchmark:   "random",
		SampleInstr: 10_000_000,
		Settings:    settings,
		Data:        make([][]trace.Measurement, samples),
	}
	for s := 0; s < samples; s++ {
		g.Data[s] = make([]trace.Measurement, len(settings))
		for k, st := range settings {
			speed := float64(st.CPU) * (0.5 + src.Float64())
			t := 1e9 / speed
			e := (0.5 + src.Float64()) * (1 + float64(st.CPU)/1000)
			g.Data[s][k] = trace.Measurement{TimeNS: t, CPUEnergyJ: e, MemEnergyJ: 0.1 * src.Float64()}
		}
	}
	return g
}

func quickAnalysis(t *testing.T, seed uint64) *Analysis {
	t.Helper()
	src := rng.New(seed)
	samples := 2 + src.Intn(12)
	nCPU := 2 + src.Intn(4)
	nMem := 1 + src.Intn(4)
	a, err := NewAnalysis(randomGrid(seed, samples, nCPU, nMem))
	if err != nil {
		t.Fatalf("NewAnalysis(seed %d): %v", seed, err)
	}
	return a
}

func TestPropertyOptimalWithinBudget(t *testing.T) {
	f := func(seed uint64, budgetRaw uint8) bool {
		a := quickAnalysis(t, seed)
		budget := 1 + float64(budgetRaw)/64 // [1, ~5]
		for s := 0; s < a.NumSamples(); s++ {
			k, err := a.OptimalSetting(s, budget)
			if err != nil {
				return false
			}
			if a.Inefficiency(s, k) > budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOptimalSpeedupDominates(t *testing.T) {
	// No in-budget setting may beat the chosen optimal by more than the
	// tie band.
	f := func(seed uint64) bool {
		a := quickAnalysis(t, seed)
		const budget = 1.5
		for s := 0; s < a.NumSamples(); s++ {
			k, err := a.OptimalSetting(s, budget)
			if err != nil {
				return false
			}
			ids, err := a.WithinBudget(s, budget)
			if err != nil {
				return false
			}
			for _, other := range ids {
				if a.Speedup(s, other) > a.Speedup(s, k)/(1-SpeedupTieBand)+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyClusterContainsOptimalAndRespectsBand(t *testing.T) {
	f := func(seed uint64, thRaw uint8) bool {
		a := quickAnalysis(t, seed)
		th := float64(thRaw%90) / 1000 // [0, 0.09)
		for s := 0; s < a.NumSamples(); s++ {
			c, err := a.ClusterAt(s, 1.4, th)
			if err != nil {
				return false
			}
			if !c.Contains(c.Optimal) {
				return false
			}
			opt := a.Speedup(s, c.Optimal)
			for _, k := range c.Members {
				sp := a.Speedup(s, k)
				if sp < opt*(1-th)-1e-12 || sp > opt*(1+th)+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRegionsPartitionRun(t *testing.T) {
	f := func(seed uint64) bool {
		a := quickAnalysis(t, seed)
		regions, err := a.StableRegions(1.4, 0.03)
		if err != nil {
			return false
		}
		next := 0
		for _, r := range regions {
			if r.Start != next || r.End < r.Start {
				return false
			}
			next = r.End + 1
		}
		return next == a.NumSamples()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRegionChoiceInEveryCluster(t *testing.T) {
	f := func(seed uint64) bool {
		a := quickAnalysis(t, seed)
		const budget, th = 1.4, 0.05
		regions, err := a.StableRegions(budget, th)
		if err != nil {
			return false
		}
		clusters, err := a.Clusters(budget, th)
		if err != nil {
			return false
		}
		for _, r := range regions {
			for s := r.Start; s <= r.End; s++ {
				if !clusters[s].Contains(r.Choice) {
					return false
				}
			}
			// The choice must also be a member of the stored avail set.
			found := false
			for _, k := range r.Avail {
				if k == r.Choice {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExecuteAdditive(t *testing.T) {
	// Executing a schedule with overhead equals the free execution plus
	// transitions x overhead, exactly.
	f := func(seed uint64) bool {
		a := quickAnalysis(t, seed)
		sch, err := a.OptimalSchedule(1.4)
		if err != nil {
			return false
		}
		free, err := a.Execute(sch, Overhead{})
		if err != nil {
			return false
		}
		oh := Overhead{TimeNS: 123, EnergyJ: 0.456}
		with, err := a.Execute(sch, oh)
		if err != nil {
			return false
		}
		n := float64(free.Transitions)
		return math.Abs(with.TimeNS-free.TimeNS-n*oh.TimeNS) < 1e-6 &&
			math.Abs(with.EnergyJ-free.EnergyJ-n*oh.EnergyJ) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBudgetMonotonicity(t *testing.T) {
	// A looser budget can never produce a slower optimal schedule (modulo
	// the tie band, which can cost at most the band itself per sample).
	f := func(seed uint64) bool {
		a := quickAnalysis(t, seed)
		tight, err := a.OptimalSchedule(1.2)
		if err != nil {
			return false
		}
		loose, err := a.OptimalSchedule(2.5)
		if err != nil {
			return false
		}
		rTight, err := a.Execute(tight, Overhead{})
		if err != nil {
			return false
		}
		rLoose, err := a.Execute(loose, Overhead{})
		if err != nil {
			return false
		}
		return rLoose.TimeNS <= rTight.TimeNS*(1+SpeedupTieBand)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyParallelCollectionAnalysisEquivalence(t *testing.T) {
	// Every analysis artifact the paper's algorithms derive — optimal
	// settings, clusters, stable regions — must be identical whether the
	// grid was collected serially or by the parallel engine: parallelism
	// is an implementation detail the analysis layer can never observe.
	sys := sim.MustNew(sim.DefaultConfig())
	space := freq.CoarseSpace()
	for _, name := range []string{"gobmk", "lbm"} {
		b := workload.MustByName(name)
		serialGrid, err := trace.CollectContext(context.Background(), sys, b, space, trace.CollectOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		parGrid, err := trace.CollectContext(context.Background(), sys, b, space, trace.CollectOptions{Workers: 8})
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		serial, err := NewAnalysis(serialGrid)
		if err != nil {
			t.Fatalf("%s serial analysis: %v", name, err)
		}
		par, err := NewAnalysis(parGrid)
		if err != nil {
			t.Fatalf("%s parallel analysis: %v", name, err)
		}

		const budget, th = 1.3, 0.05
		for s := 0; s < serial.NumSamples(); s++ {
			ks, err := serial.OptimalSetting(s, budget)
			if err != nil {
				t.Fatal(err)
			}
			kp, err := par.OptimalSetting(s, budget)
			if err != nil {
				t.Fatal(err)
			}
			if ks != kp {
				t.Fatalf("%s sample %d: optimal %v (serial) vs %v (parallel)", name, s, ks, kp)
			}
		}
		cs, err := serial.Clusters(budget, th)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := par.Clusters(budget, th)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cs, cp) {
			t.Errorf("%s: clusters differ between serial and parallel grids", name)
		}
		rs, err := serial.StableRegions(budget, th)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := par.StableRegions(budget, th)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rs, rp) {
			t.Errorf("%s: stable regions differ between serial and parallel grids", name)
		}
	}
}

func TestPropertyImaxAtLeastOne(t *testing.T) {
	f := func(seed uint64) bool {
		a := quickAnalysis(t, seed)
		if a.MaxInefficiency() < 1 {
			return false
		}
		for s := 0; s < a.NumSamples(); s++ {
			// Every sample has at least one setting at inefficiency 1.
			found := false
			for k := 0; k < a.NumSettings(); k++ {
				if math.Abs(a.Inefficiency(s, freq.SettingID(k))-1) < 1e-12 {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
