package core

import (
	"fmt"

	"mcdvfs/internal/freq"
)

// Cluster is the performance cluster of one sample (Section VI-A): every
// setting whose performance lies within the cluster threshold of the
// optimal setting chosen under the inefficiency budget.
//
// Note the membership rule follows the paper's definition literally: the
// *optimal* is found under the budget, but members are any settings with
// performance inside the band |speedup/optimal - 1| <= threshold. The band
// is two-sided — a much faster setting is not "within a performance
// degradation threshold" of the optimal — which is what makes the paper's
// Figure 4(a) clusters non-trivial at a budget of exactly 1.0, where only
// the Emin setting itself is admissible.
type Cluster struct {
	Sample  int
	Optimal freq.SettingID
	// Members holds the cluster's setting IDs in ascending ID order; the
	// optimal setting is always a member.
	Members []freq.SettingID
}

// Contains reports whether k is in the cluster.
func (c Cluster) Contains(k freq.SettingID) bool {
	for _, m := range c.Members {
		if m == k {
			return true
		}
	}
	return false
}

// checkThreshold validates a cluster threshold (a fraction, e.g. 0.05 for
// the paper's 5%).
func checkThreshold(threshold float64) error {
	if threshold < 0 || threshold >= 1 {
		return fmt.Errorf("core: cluster threshold %v outside [0,1)", threshold)
	}
	return nil
}

// ClusterAt computes the performance cluster for one sample using the
// paper's two-pass algorithm: first filter by budget and find the optimal
// setting, then collect every setting whose speedup lies within the
// two-sided threshold band around the optimal's speedup.
func (a *Analysis) ClusterAt(sample int, budget, threshold float64) (Cluster, error) {
	if err := checkThreshold(threshold); err != nil {
		return Cluster{}, err
	}
	ids, err := a.WithinBudget(sample, budget)
	if err != nil {
		return Cluster{}, err
	}
	opt, err := a.bestAmong(sample, ids)
	if err != nil {
		return Cluster{}, err
	}
	optSpeedup := a.speedup[sample][int(opt)]
	c := Cluster{Sample: sample, Optimal: opt}
	for k := range a.speedup[sample] {
		sp := a.speedup[sample][k]
		if sp >= optSpeedup*(1-threshold) && sp <= optSpeedup*(1+threshold) {
			c.Members = append(c.Members, freq.SettingID(k))
		}
	}
	return c, nil
}

// Clusters computes the performance cluster of every sample.
func (a *Analysis) Clusters(budget, threshold float64) ([]Cluster, error) {
	out := make([]Cluster, a.NumSamples())
	for s := range out {
		c, err := a.ClusterAt(s, budget, threshold)
		if err != nil {
			return nil, err
		}
		out[s] = c
	}
	return out, nil
}

// MeanClusterSize returns the average cluster cardinality, a measure of how
// much choice a threshold opens up.
func MeanClusterSize(cs []Cluster) float64 {
	if len(cs) == 0 {
		return 0
	}
	total := 0
	for _, c := range cs {
		total += len(c.Members)
	}
	return float64(total) / float64(len(cs))
}

// intersect returns the settings present in both sorted-by-ID slices,
// preserving ascending order.
func intersect(a, b []freq.SettingID) []freq.SettingID {
	var out []freq.SettingID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
