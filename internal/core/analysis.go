// Package core implements the paper's contribution: the inefficiency
// metric, optimal frequency-setting selection under inefficiency budgets,
// performance clusters, stable regions, and the energy-performance
// trade-off evaluation with tuning overhead.
//
// # Inefficiency (Section II)
//
// Inefficiency I = E / Emin constrains how much extra energy an application
// may burn to improve performance, relative to the minimum energy the same
// work could have consumed on the same device. I = 1 is the most efficient
// execution; I = 1.5 means 50% more energy than the most efficient
// execution. Unlike absolute energy budgets or energy-delay products, the
// metric is application- and device-independent.
//
// All analyses here operate on a trace.Grid: measured (not predicted) time
// and energy for every sample at every setting, exactly as the paper does
// its offline characterization.
package core

import (
	"fmt"
	"math"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/trace"
)

// Unconstrained is the budget value representing the paper's "∞"
// inefficiency: energy is unbounded and the algorithm may always pick the
// highest-performance settings.
var Unconstrained = math.Inf(1)

// SpeedupTieBand is the relative band within which two settings count as
// "similar speedup"; the paper uses 0.5% to filter simulation noise and
// breaks ties toward the highest CPU, then memory, frequency.
const SpeedupTieBand = 0.005

// Analysis precomputes per-sample inefficiency and speedup for one grid.
// It is immutable after construction and safe for concurrent use.
type Analysis struct {
	grid *trace.Grid

	// Per sample s and setting k.
	ineff   [][]float64
	speedup [][]float64

	// Per sample s.
	eminJ     []float64
	maxTimeNS []float64

	// Whole-run aggregates per setting k.
	runTimeNS  []float64
	runEnergyJ []float64
	runEminJ   float64
	runMaxTime float64
}

// NewAnalysis validates the grid and computes the derived matrices.
func NewAnalysis(g *trace.Grid) (*Analysis, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil grid")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	ns, nk := g.NumSamples(), g.NumSettings()
	a := &Analysis{
		grid:       g,
		ineff:      make([][]float64, ns),
		speedup:    make([][]float64, ns),
		eminJ:      make([]float64, ns),
		maxTimeNS:  make([]float64, ns),
		runTimeNS:  make([]float64, nk),
		runEnergyJ: make([]float64, nk),
	}
	for s := 0; s < ns; s++ {
		emin, tmax := math.Inf(1), 0.0
		for k := 0; k < nk; k++ {
			m := g.At(s, freq.SettingID(k))
			if e := m.EnergyJ(); e < emin {
				emin = e
			}
			if m.TimeNS > tmax {
				tmax = m.TimeNS
			}
			a.runTimeNS[k] += m.TimeNS
			a.runEnergyJ[k] += m.EnergyJ()
		}
		if emin <= 0 {
			return nil, fmt.Errorf("core: sample %d has non-positive Emin", s)
		}
		a.eminJ[s] = emin
		a.maxTimeNS[s] = tmax
		a.ineff[s] = make([]float64, nk)
		a.speedup[s] = make([]float64, nk)
		for k := 0; k < nk; k++ {
			m := g.At(s, freq.SettingID(k))
			a.ineff[s][k] = m.EnergyJ() / emin
			a.speedup[s][k] = tmax / m.TimeNS
		}
	}
	a.runEminJ = math.Inf(1)
	for k := 0; k < nk; k++ {
		if a.runEnergyJ[k] < a.runEminJ {
			a.runEminJ = a.runEnergyJ[k]
		}
		if a.runTimeNS[k] > a.runMaxTime {
			a.runMaxTime = a.runTimeNS[k]
		}
	}
	return a, nil
}

// Grid returns the underlying grid.
func (a *Analysis) Grid() *trace.Grid { return a.grid }

// NumSamples returns the number of samples.
func (a *Analysis) NumSamples() int { return a.grid.NumSamples() }

// NumSettings returns the number of settings.
func (a *Analysis) NumSettings() int { return a.grid.NumSettings() }

// Emin returns the per-sample minimum energy across settings — the
// denominator of inefficiency, found by the paper's brute-force search.
func (a *Analysis) Emin(sample int) float64 { return a.eminJ[sample] }

// Inefficiency returns I = E/Emin for one sample at one setting.
func (a *Analysis) Inefficiency(sample int, k freq.SettingID) float64 {
	return a.ineff[sample][int(k)]
}

// Speedup returns the per-sample speedup at setting k: the ratio of the
// sample's longest execution time (across settings) to its time at k.
func (a *Analysis) Speedup(sample int, k freq.SettingID) float64 {
	return a.speedup[sample][int(k)]
}

// RunInefficiency returns the whole-run inefficiency of executing the
// entire benchmark pinned at setting k (Figure 2's y-axis).
func (a *Analysis) RunInefficiency(k freq.SettingID) float64 {
	return a.runEnergyJ[int(k)] / a.runEminJ
}

// RunSpeedup returns the whole-run speedup of executing pinned at k
// (Figure 2's z-axis): longest total time over total time at k.
func (a *Analysis) RunSpeedup(k freq.SettingID) float64 {
	return a.runMaxTime / a.runTimeNS[int(k)]
}

// MaxInefficiency returns the grid's Imax: the largest whole-run
// inefficiency over all settings. The paper observes values between 1.5
// and 2 for its benchmarks.
func (a *Analysis) MaxInefficiency() float64 {
	imax := 0.0
	for k := range a.runEnergyJ {
		if i := a.RunInefficiency(freq.SettingID(k)); i > imax {
			imax = i
		}
	}
	return imax
}

// TotalInstructions returns the benchmark length in instructions.
func (a *Analysis) TotalInstructions() uint64 {
	return a.grid.SampleInstr * uint64(a.NumSamples())
}

// checkSample panics on an out-of-range sample index; analyses iterate
// sample indices they obtained from the grid, so this is a bug guard.
func (a *Analysis) checkSample(s int) {
	if s < 0 || s >= a.NumSamples() {
		panic(fmt.Sprintf("core: sample %d out of range [0,%d)", s, a.NumSamples()))
	}
}

// checkBudget validates an inefficiency budget: budgets below 1 are
// meaningless (no execution can beat Emin).
func checkBudget(budget float64) error {
	if math.IsNaN(budget) || budget < 1 {
		return fmt.Errorf("core: inefficiency budget %v below 1", budget)
	}
	return nil
}

// WithinBudget returns the IDs of settings whose inefficiency for the
// sample is within the budget. The result is never empty for budget >= 1
// because the Emin setting itself has inefficiency exactly 1.
func (a *Analysis) WithinBudget(sample int, budget float64) ([]freq.SettingID, error) {
	a.checkSample(sample)
	if err := checkBudget(budget); err != nil {
		return nil, err
	}
	var out []freq.SettingID
	for k := range a.ineff[sample] {
		if a.ineff[sample][k] <= budget {
			out = append(out, freq.SettingID(k))
		}
	}
	return out, nil
}
