package core

import (
	"fmt"

	"mcdvfs/internal/freq"
)

// Overhead models the cost of one tuning event: computing inefficiencies,
// searching for the new setting, and transitioning the hardware (PLL
// relock, DRAM retraining). The paper measures 500 µs and 30 µJ for its
// 70-setting search.
type Overhead struct {
	TimeNS  float64
	EnergyJ float64
}

// DefaultOverhead returns the paper's measured tuning overhead.
func DefaultOverhead() Overhead {
	return Overhead{TimeNS: 500_000, EnergyJ: 30e-6}
}

// Scale returns the overhead scaled by a factor, used to model search
// spaces of different sizes.
func (o Overhead) Scale(f float64) Overhead {
	return Overhead{TimeNS: o.TimeNS * f, EnergyJ: o.EnergyJ * f}
}

// ExecResult is the end-to-end outcome of running a schedule.
type ExecResult struct {
	TimeNS      float64
	EnergyJ     float64
	Transitions int
}

// Execute plays a schedule against the grid, optionally charging the
// tuning overhead once per setting transition. (The initial setting is
// free: the system must start somewhere.)
func (a *Analysis) Execute(sch Schedule, oh Overhead) (ExecResult, error) {
	if len(sch) != a.NumSamples() {
		return ExecResult{}, fmt.Errorf("core: schedule length %d != samples %d", len(sch), a.NumSamples())
	}
	var res ExecResult
	for s, k := range sch {
		if int(k) < 0 || int(k) >= a.NumSettings() {
			return ExecResult{}, fmt.Errorf("core: schedule sample %d has invalid setting %d", s, k)
		}
		m := a.grid.At(s, k)
		res.TimeNS += m.TimeNS
		res.EnergyJ += m.EnergyJ()
		if s > 0 && sch[s] != sch[s-1] {
			res.Transitions++
			res.TimeNS += oh.TimeNS
			res.EnergyJ += oh.EnergyJ
		}
	}
	return res, nil
}

// Tradeoff compares a cluster-threshold schedule against optimal tracking
// for one budget (Figure 11): performance degradation and energy delta,
// each relative to the optimal schedule, with and without tuning overhead.
type Tradeoff struct {
	Budget    float64
	Threshold float64

	// Without tuning overhead.
	PerfDegradationPct float64 // positive = slower than optimal tracking
	EnergyDeltaPct     float64 // negative = saves energy vs optimal tracking

	// With tuning overhead charged per transition on both sides.
	PerfDegradationWithOverheadPct float64
	EnergyDeltaWithOverheadPct     float64

	OptimalTransitions int
	RegionTransitions  int
}

// EvaluateTradeoff computes the Figure 11 comparison for one benchmark,
// budget, and threshold.
func (a *Analysis) EvaluateTradeoff(budget, threshold float64, oh Overhead) (Tradeoff, error) {
	optSch, err := a.OptimalSchedule(budget)
	if err != nil {
		return Tradeoff{}, err
	}
	regions, err := a.StableRegions(budget, threshold)
	if err != nil {
		return Tradeoff{}, err
	}
	regSch := RegionSchedule(a.NumSamples(), regions)

	free := Overhead{}
	optFree, err := a.Execute(optSch, free)
	if err != nil {
		return Tradeoff{}, err
	}
	regFree, err := a.Execute(regSch, free)
	if err != nil {
		return Tradeoff{}, err
	}
	optOH, err := a.Execute(optSch, oh)
	if err != nil {
		return Tradeoff{}, err
	}
	regOH, err := a.Execute(regSch, oh)
	if err != nil {
		return Tradeoff{}, err
	}

	pct := func(x, ref float64) float64 { return (x - ref) / ref * 100 }
	return Tradeoff{
		Budget:                         budget,
		Threshold:                      threshold,
		PerfDegradationPct:             pct(regFree.TimeNS, optFree.TimeNS),
		EnergyDeltaPct:                 pct(regFree.EnergyJ, optFree.EnergyJ),
		PerfDegradationWithOverheadPct: pct(regOH.TimeNS, optOH.TimeNS),
		EnergyDeltaWithOverheadPct:     pct(regOH.EnergyJ, optOH.EnergyJ),
		OptimalTransitions:             optFree.Transitions,
		RegionTransitions:              regFree.Transitions,
	}, nil
}

// PinnedResult executes the whole run pinned at one setting (no
// transitions), used for Figure 2 style whole-run comparisons.
func (a *Analysis) PinnedResult(k freq.SettingID) ExecResult {
	return ExecResult{
		TimeNS:  a.runTimeNS[int(k)],
		EnergyJ: a.runEnergyJ[int(k)],
	}
}
