package core

import (
	"testing"

	"mcdvfs/internal/freq"
)

func TestClusterMembership(t *testing.T) {
	// Times: 100 (opt), 104 (within 5%, not 1%), 100.5 (within 1%), 200.
	// All energies equal so every setting is in any budget >= 1.
	a := analysisFor(t,
		[][]float64{{104, 100.5, 200, 100}},
		[][]float64{{2, 2, 2, 2}},
	)
	c1, err := a.ClusterAt(0, Unconstrained, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Optimal != 3 {
		t.Errorf("optimal = %d, want 3", c1.Optimal)
	}
	// 1% cluster: speedup(k) >= 0.99 * speedup(3). times <= 100/0.99 = 101.0.
	if len(c1.Members) != 2 || !c1.Contains(1) || !c1.Contains(3) {
		t.Errorf("1%% cluster = %v, want {1,3}", c1.Members)
	}
	c5, _ := a.ClusterAt(0, Unconstrained, 0.05)
	if len(c5.Members) != 3 || !c5.Contains(0) {
		t.Errorf("5%% cluster = %v, want {0,1,3}", c5.Members)
	}
}

func TestClusterAlwaysContainsOptimal(t *testing.T) {
	a := analysisFor(t,
		[][]float64{{200, 180, 110, 100}},
		[][]float64{{2.0, 2.5, 3.0, 4.0}},
	)
	for _, budget := range []float64{1, 1.3, 1.6, Unconstrained} {
		for _, th := range []float64{0, 0.01, 0.05} {
			c, err := a.ClusterAt(0, budget, th)
			if err != nil {
				t.Fatalf("budget %v th %v: %v", budget, th, err)
			}
			if !c.Contains(c.Optimal) {
				t.Errorf("budget %v th %v: cluster %v missing optimal %d", budget, th, c.Members, c.Optimal)
			}
		}
	}
}

func TestClusterRespectsBudget(t *testing.T) {
	// Setting 3 is fastest but expensive: budget excludes it, and the
	// cluster must not contain it even though its speedup is highest.
	a := analysisFor(t,
		[][]float64{{200, 180, 110, 100}},
		[][]float64{{2.0, 2.2, 2.4, 4.0}},
	)
	c, err := a.ClusterAt(0, 1.3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if c.Contains(3) {
		t.Errorf("cluster %v contains out-of-budget setting 3", c.Members)
	}
	if c.Optimal != 2 {
		t.Errorf("optimal = %d, want 2 (fastest within budget)", c.Optimal)
	}
}

func TestClusterGrowsWithThreshold(t *testing.T) {
	a := analysisFor(t,
		[][]float64{{104, 102, 101, 100}},
		[][]float64{{2, 2, 2, 2}},
	)
	prev := 0
	for _, th := range []float64{0, 0.01, 0.03, 0.05} {
		c, err := a.ClusterAt(0, Unconstrained, th)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Members) < prev {
			t.Errorf("cluster shrank at threshold %v", th)
		}
		prev = len(c.Members)
	}
}

func TestClustersAllSamples(t *testing.T) {
	a := analysisFor(t,
		[][]float64{
			{104, 100.5, 200, 100},
			{200, 180, 110, 100},
		},
		[][]float64{
			{2, 2, 2, 2},
			{2, 2, 2, 2},
		},
	)
	cs, err := a.Clusters(Unconstrained, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("got %d clusters", len(cs))
	}
	for i, c := range cs {
		if c.Sample != i {
			t.Errorf("cluster %d labeled sample %d", i, c.Sample)
		}
	}
	if got := MeanClusterSize(cs); got <= 0 {
		t.Errorf("MeanClusterSize = %v", got)
	}
}

func TestThresholdValidation(t *testing.T) {
	a := analysisFor(t,
		[][]float64{{104, 100.5, 200, 100}},
		[][]float64{{2, 2, 2, 2}},
	)
	for _, th := range []float64{-0.01, 1, 1.5} {
		if _, err := a.ClusterAt(0, Unconstrained, th); err == nil {
			t.Errorf("threshold %v accepted", th)
		}
	}
}

func TestIntersect(t *testing.T) {
	id := func(xs ...int) []freq.SettingID {
		out := make([]freq.SettingID, len(xs))
		for i, x := range xs {
			out[i] = freq.SettingID(x)
		}
		return out
	}
	cases := []struct {
		a, b, want []freq.SettingID
	}{
		{id(1, 2, 3), id(2, 3, 4), id(2, 3)},
		{id(1, 2), id(3, 4), nil},
		{id(), id(1), nil},
		{id(1, 5, 9), id(1, 5, 9), id(1, 5, 9)},
	}
	for _, c := range cases {
		got := intersect(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("intersect(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

func TestMeanClusterSizeEmpty(t *testing.T) {
	if got := MeanClusterSize(nil); got != 0 {
		t.Errorf("MeanClusterSize(nil) = %v", got)
	}
}
