package core

import "mcdvfs/internal/freq"

// ParetoPoint is one non-dominated whole-run operating point.
type ParetoPoint struct {
	Setting      freq.SettingID
	TimeNS       float64
	EnergyJ      float64
	Inefficiency float64
	Speedup      float64
}

// ParetoFrontier returns the whole-run energy-performance frontier: the
// settings not dominated by any other setting (strictly better in one of
// time/energy and at least as good in the other). Points come back sorted
// by ascending time (descending energy).
//
// The frontier is the set a "smart algorithm" (Section IV) should search:
// every optimal-under-budget choice lies on it, for any budget.
func (a *Analysis) ParetoFrontier() []ParetoPoint {
	n := a.NumSettings()
	dominated := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			ti, ei := a.runTimeNS[i], a.runEnergyJ[i]
			tj, ej := a.runTimeNS[j], a.runEnergyJ[j]
			if tj <= ti && ej <= ei && (tj < ti || ej < ei) {
				dominated[i] = true
				break
			}
		}
	}
	var out []ParetoPoint
	for k := 0; k < n; k++ {
		if dominated[k] {
			continue
		}
		id := freq.SettingID(k)
		out = append(out, ParetoPoint{
			Setting:      id,
			TimeNS:       a.runTimeNS[k],
			EnergyJ:      a.runEnergyJ[k],
			Inefficiency: a.RunInefficiency(id),
			Speedup:      a.RunSpeedup(id),
		})
	}
	// Insertion sort by time (frontiers are small).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].TimeNS < out[j-1].TimeNS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// BestUnderBudget returns the frontier point with the lowest time whose
// whole-run inefficiency is within the budget, and false if the budget
// admits nothing (impossible for budget >= 1).
func (a *Analysis) BestUnderBudget(budget float64) (ParetoPoint, bool) {
	var best ParetoPoint
	found := false
	for _, p := range a.ParetoFrontier() {
		if p.Inefficiency > budget {
			continue
		}
		if !found || p.TimeNS < best.TimeNS {
			best = p
			found = true
		}
	}
	return best, found
}
