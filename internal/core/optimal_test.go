package core

import (
	"testing"

	"mcdvfs/internal/freq"
)

func TestOptimalSettingPicksFastestInBudget(t *testing.T) {
	a := analysisFor(t,
		[][]float64{{200, 180, 110, 100}},
		[][]float64{{2.0, 2.5, 3.0, 4.0}},
	)
	// Budget 1.3 admits {0,1}; setting 1 is faster.
	k, err := a.OptimalSetting(0, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("optimal under 1.3 = %d, want 1", k)
	}
	// Unconstrained picks the fastest overall (setting 3).
	k, _ = a.OptimalSetting(0, Unconstrained)
	if k != 3 {
		t.Errorf("optimal under inf = %d, want 3", k)
	}
	// Budget 1 forces the Emin setting.
	k, _ = a.OptimalSetting(0, 1)
	if k != 0 {
		t.Errorf("optimal under 1 = %d, want 0", k)
	}
}

func TestOptimalTieBreakPrefersHighCPUThenMem(t *testing.T) {
	// Settings 2 (1000/400) and 3 (1000/800) and 1 (500/800) all within
	// 0.5% speedup; tie-break should pick ID 3 (highest CPU, then mem).
	a := analysisFor(t,
		[][]float64{{200, 100.4, 100.2, 100}},
		[][]float64{{2.0, 2.0, 2.0, 2.0}},
	)
	k, err := a.OptimalSetting(0, Unconstrained)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("tie-break picked %d (%v), want 3 (1000/800)", k, a.Grid().Setting(k))
	}
}

func TestOptimalTieBreakCPUBeforeMem(t *testing.T) {
	// Only settings 1 (500/800) and 2 (1000/400) tie: the rule prefers
	// higher CPU over higher memory.
	a := analysisFor(t,
		[][]float64{{200, 100.2, 100, 150}},
		[][]float64{{2.0, 2.0, 2.0, 2.0}},
	)
	k, err := a.OptimalSetting(0, Unconstrained)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Errorf("tie-break picked %d (%v), want 2 (1000/400)", k, a.Grid().Setting(k))
	}
}

func TestOptimalScheduleAndTransitions(t *testing.T) {
	a := analysisFor(t,
		[][]float64{
			{200, 180, 110, 100}, // fastest in budget 1.3: setting 1
			{200, 180, 110, 100}, // same
			{100, 180, 110, 200}, // now setting 0 is fastest AND cheapest
		},
		[][]float64{
			{2.0, 2.5, 3.0, 4.0},
			{2.0, 2.5, 3.0, 4.0},
			{2.0, 2.5, 3.0, 4.0},
		},
	)
	sch, err := a.OptimalSchedule(1.3)
	if err != nil {
		t.Fatal(err)
	}
	want := Schedule{1, 1, 0}
	for i := range want {
		if sch[i] != want[i] {
			t.Fatalf("schedule = %v, want %v", sch, want)
		}
	}
	if got := sch.Transitions(); got != 1 {
		t.Errorf("transitions = %d, want 1", got)
	}
}

func TestTransitionsPerBillion(t *testing.T) {
	a := analysisFor(t,
		[][]float64{
			{200, 180, 110, 100},
			{200, 180, 110, 100},
		},
		[][]float64{
			{2.0, 2.5, 3.0, 4.0},
			{2.0, 2.5, 3.0, 4.0},
		},
	)
	// 2 samples x 10M instructions = 0.02 B instructions.
	if got := a.TransitionsPerBillion(1); got != 50 {
		t.Errorf("TransitionsPerBillion(1) = %v, want 50", got)
	}
}

func TestScheduleTransitionsCounting(t *testing.T) {
	cases := []struct {
		sch  Schedule
		want int
	}{
		{Schedule{}, 0},
		{Schedule{1}, 0},
		{Schedule{1, 1, 1}, 0},
		{Schedule{1, 2, 1}, 2},
		{Schedule{1, 2, 2, 3}, 2},
	}
	for _, c := range cases {
		if got := c.sch.Transitions(); got != c.want {
			t.Errorf("Transitions(%v) = %d, want %d", c.sch, got, c.want)
		}
	}
}

func TestPreferHigher(t *testing.T) {
	cases := []struct {
		a, b freq.Setting
		want bool
	}{
		{freq.Setting{CPU: 1000, Mem: 200}, freq.Setting{CPU: 500, Mem: 800}, true},
		{freq.Setting{CPU: 500, Mem: 800}, freq.Setting{CPU: 500, Mem: 400}, true},
		{freq.Setting{CPU: 500, Mem: 400}, freq.Setting{CPU: 500, Mem: 800}, false},
		{freq.Setting{CPU: 500, Mem: 400}, freq.Setting{CPU: 500, Mem: 400}, false},
	}
	for _, c := range cases {
		if got := preferHigher(c.a, c.b); got != c.want {
			t.Errorf("preferHigher(%v, %v) = %v", c.a, c.b, got)
		}
	}
}
