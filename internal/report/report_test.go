package report

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header = %q", lines[1])
	}
	// Value column must start at the same offset in every row.
	idx := strings.Index(lines[1], "value")
	if got := strings.Index(lines[4], "2"); got != idx {
		t.Errorf("misaligned column: %d vs %d\n%s", got, idx, out)
	}
}

func TestAddRowPadsShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	if len(tb.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tb.Rows[0])
	}
}

func TestAddRowPanicsOnTooManyCells(t *testing.T) {
	tb := NewTable("", "a")
	defer func() {
		if recover() == nil {
			t.Error("oversized row did not panic")
		}
	}()
	tb.AddRow("1", "2")
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "s", "f", "i")
	tb.AddRowf("x", 1.23456, 42)
	row := tb.Rows[0]
	if row[0] != "x" || row[1] != "1.235" || row[2] != "42" {
		t.Errorf("row = %v", row)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("plain", `has,comma`)
	tb.AddRow(`has"quote`, "x")
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",x\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if utf8.RuneCountInString(s) != 4 {
		t.Errorf("sparkline length = %d, want 4", utf8.RuneCountInString(s))
	}
	first, _ := utf8.DecodeRuneInString(s)
	if first != '▁' {
		t.Errorf("min value should render lowest bar, got %q", first)
	}
	if !strings.HasSuffix(s, "█") {
		t.Errorf("max value should render highest bar: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty string")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if utf8.RuneCountInString(flat) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestHeatCell(t *testing.T) {
	if got := HeatCell(0, 0, 1); got != " " {
		t.Errorf("min cell = %q", got)
	}
	if got := HeatCell(1, 0, 1); got != "█" {
		t.Errorf("max cell = %q", got)
	}
	if got := HeatCell(-5, 0, 1); got != " " {
		t.Errorf("below-range cell = %q", got)
	}
	if got := HeatCell(9, 0, 1); got != "█" {
		t.Errorf("above-range cell = %q", got)
	}
	if got := HeatCell(0.5, 1, 1); got != "▒" {
		t.Errorf("degenerate range cell = %q", got)
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("demo", []string{"a", "bb"}, [][]float64{{0, 1}, {1, 0}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Errorf("title = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a  ") {
		t.Errorf("row label not padded: %q", lines[1])
	}
	if !strings.Contains(lines[1], "█") || !strings.Contains(lines[1], " ") {
		t.Errorf("row 1 shading wrong: %q", lines[1])
	}
}

func TestEmptyTitleOmitted(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("1")
	out := tb.String()
	if strings.HasPrefix(out, "\n") {
		t.Errorf("leading blank line with empty title:\n%q", out)
	}
	if !strings.HasPrefix(out, "a") {
		t.Errorf("output = %q", out)
	}
}
