// Package report renders experiment results as aligned text tables, CSV,
// and simple ASCII charts, so every figure of the paper can be regenerated
// as terminal output.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table with a title.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Rows shorter than the header are padded; longer
// rows panic, since that is a programming error in the experiment code.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("report: row with %d cells exceeds %d columns", len(cells), len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf formats each cell with its own format/value pair convenience:
// values are rendered with %v.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.3f", x)
		case string:
			cells[i] = x
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	// strings.Builder writes never fail.
	_ = t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as CSV (comma-separated, quotes only when a
// cell contains a comma or quote).
func (t *Table) RenderCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(cell))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// HeatCell maps a value in [lo, hi] to one of five unicode shade blocks,
// used to render grid heatmaps (e.g. inefficiency across the setting
// space). Values outside the range clamp.
func HeatCell(v, lo, hi float64) string {
	shades := []string{" ", "░", "▒", "▓", "█"}
	if hi <= lo {
		return shades[2]
	}
	frac := (v - lo) / (hi - lo)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	idx := int(frac * float64(len(shades)-1))
	return shades[idx]
}

// Heatmap renders a matrix (rows[y][x]) as shade blocks with row labels,
// scaled to the matrix's own min/max.
func Heatmap(title string, rowLabels []string, rows [][]float64) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	lo, hi := 0.0, 0.0
	first := true
	for _, row := range rows {
		for _, v := range row {
			if first {
				lo, hi = v, v
				first = false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	width := 0
	for _, l := range rowLabels {
		if len(l) > width {
			width = len(l)
		}
	}
	for y, row := range rows {
		label := ""
		if y < len(rowLabels) {
			label = rowLabels[y]
		}
		fmt.Fprintf(&b, "%-*s ", width, label)
		for _, v := range row {
			b.WriteString(HeatCell(v, lo, hi))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Sparkline renders a value series as a one-line unicode bar chart, used to
// visualize per-sample trajectories (CPU/memory frequency, CPI) in figure
// output. Values are scaled to [min, max]; a flat series renders mid-level
// bars.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := len(levels) / 2
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
