package predict

import "fmt"

// StabilityPredictor estimates how many more samples the current stable
// region will last, letting a governor skip tuning inside predicted-stable
// intervals (the paper's Section VII learning proposal, after Isci et al.'s
// phase-duration predictors).
type StabilityPredictor struct {
	// history of completed region lengths, most recent last.
	lengths []int
	maxHist int
	// current run length of the in-progress region.
	current int
}

// NewStabilityPredictor builds a predictor remembering up to maxHist
// completed region lengths.
func NewStabilityPredictor(maxHist int) (*StabilityPredictor, error) {
	if maxHist < 1 {
		return nil, fmt.Errorf("predict: history size %d < 1", maxHist)
	}
	return &StabilityPredictor{maxHist: maxHist}, nil
}

// ObserveStable records that the region survived one more sample.
func (p *StabilityPredictor) ObserveStable() { p.current++ }

// ObserveBreak records that the region ended (the cluster moved), closing
// the current run length into history.
func (p *StabilityPredictor) ObserveBreak() {
	if p.current > 0 {
		p.lengths = append(p.lengths, p.current)
		if len(p.lengths) > p.maxHist {
			p.lengths = p.lengths[1:]
		}
	}
	p.current = 0
}

// Current returns the length of the in-progress region.
func (p *StabilityPredictor) Current() int { return p.current }

// PredictRemaining estimates how many more samples the current region will
// stay stable: the historical mean region length minus the samples already
// spent, floored at zero. With no history it predicts zero (always tune),
// the conservative choice.
func (p *StabilityPredictor) PredictRemaining() int {
	if len(p.lengths) == 0 {
		return 0
	}
	sum := 0
	for _, l := range p.lengths {
		sum += l
	}
	mean := sum / len(p.lengths)
	rem := mean - p.current
	if rem < 0 {
		return 0
	}
	return rem
}
