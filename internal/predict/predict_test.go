package predict

import (
	"math"
	"testing"
)

func TestLastValue(t *testing.T) {
	p := NewLastValue()
	if _, ok := p.Predict(); ok {
		t.Error("empty predictor claimed a prediction")
	}
	p.Observe(3.5)
	v, ok := p.Predict()
	if !ok || v != 3.5 {
		t.Errorf("Predict = %v,%v", v, ok)
	}
	p.Observe(4.0)
	if v, _ := p.Predict(); v != 4.0 {
		t.Errorf("Predict after update = %v", v)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestEWMA(t *testing.T) {
	p, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Predict(); ok {
		t.Error("empty EWMA claimed a prediction")
	}
	p.Observe(10)
	if v, _ := p.Predict(); v != 10 {
		t.Errorf("first observation should seed value, got %v", v)
	}
	p.Observe(20)
	if v, _ := p.Predict(); math.Abs(v-15) > 1e-12 {
		t.Errorf("EWMA = %v, want 15", v)
	}
}

func TestEWMAAlphaOneIsLastValue(t *testing.T) {
	p, _ := NewEWMA(1)
	p.Observe(1)
	p.Observe(9)
	if v, _ := p.Predict(); v != 9 {
		t.Errorf("alpha=1 EWMA = %v, want 9", v)
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5} {
		if _, err := NewEWMA(a); err == nil {
			t.Errorf("alpha %v accepted", a)
		}
	}
}

func TestPhaseTable(t *testing.T) {
	p, err := NewPhaseTable(0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Predict(); ok {
		t.Error("unclassified predictor claimed a prediction")
	}
	// CPU phase.
	p.Classify(0.9, 1.0)
	if _, ok := p.Predict(); ok {
		t.Error("unseen phase claimed a prediction")
	}
	p.Observe(2.0)
	if v, ok := p.Predict(); !ok || v != 2.0 {
		t.Errorf("cpu phase = %v,%v", v, ok)
	}
	// Memory phase learns independently.
	p.Classify(1.3, 20)
	if _, ok := p.Predict(); ok {
		t.Error("new phase should be unknown")
	}
	p.Observe(5.0)
	// Back to the CPU phase: remembered value intact.
	p.Classify(0.95, 1.2) // same bins as (0.9, 1.0) with 0.25/4 bins
	if v, ok := p.Predict(); !ok || v != 2.0 {
		t.Errorf("cpu phase after return = %v,%v, want 2", v, ok)
	}
	if p.Len() != 2 {
		t.Errorf("phases learned = %d, want 2", p.Len())
	}
}

func TestPhaseTableValidation(t *testing.T) {
	if _, err := NewPhaseTable(0, 1); err == nil {
		t.Error("zero cpi bin accepted")
	}
	if _, err := NewPhaseTable(1, -1); err == nil {
		t.Error("negative mpki bin accepted")
	}
}

func TestPhaseTableObserveWithoutClassifyIsNoop(t *testing.T) {
	p, _ := NewPhaseTable(1, 1)
	p.Observe(5)
	if p.Len() != 0 {
		t.Error("observation without classification stored")
	}
}

func TestStabilityPredictorColdStart(t *testing.T) {
	p, err := NewStabilityPredictor(8)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PredictRemaining(); got != 0 {
		t.Errorf("cold-start prediction = %d, want 0 (always tune)", got)
	}
}

func TestStabilityPredictorLearnsMeanLength(t *testing.T) {
	p, _ := NewStabilityPredictor(8)
	// Two completed regions of lengths 4 and 6 -> mean 5.
	for i := 0; i < 4; i++ {
		p.ObserveStable()
	}
	p.ObserveBreak()
	for i := 0; i < 6; i++ {
		p.ObserveStable()
	}
	p.ObserveBreak()
	if got := p.PredictRemaining(); got != 5 {
		t.Errorf("prediction at region start = %d, want 5", got)
	}
	// After 3 stable samples the remaining estimate shrinks.
	p.ObserveStable()
	p.ObserveStable()
	p.ObserveStable()
	if got := p.PredictRemaining(); got != 2 {
		t.Errorf("prediction mid-region = %d, want 2", got)
	}
	if p.Current() != 3 {
		t.Errorf("current = %d, want 3", p.Current())
	}
	// Outliving the mean floors at zero.
	for i := 0; i < 10; i++ {
		p.ObserveStable()
	}
	if got := p.PredictRemaining(); got != 0 {
		t.Errorf("prediction past mean = %d, want 0", got)
	}
}

func TestStabilityPredictorHistoryBounded(t *testing.T) {
	p, _ := NewStabilityPredictor(2)
	for _, l := range []int{10, 2, 2} {
		for i := 0; i < l; i++ {
			p.ObserveStable()
		}
		p.ObserveBreak()
	}
	// History holds {2, 2}; the 10 fell off.
	if got := p.PredictRemaining(); got != 2 {
		t.Errorf("prediction = %d, want 2", got)
	}
}

func TestStabilityPredictorEmptyBreakIgnored(t *testing.T) {
	p, _ := NewStabilityPredictor(4)
	p.ObserveBreak() // no stable samples yet
	if got := p.PredictRemaining(); got != 0 {
		t.Errorf("prediction = %d, want 0", got)
	}
}

func TestStabilityPredictorValidation(t *testing.T) {
	if _, err := NewStabilityPredictor(0); err == nil {
		t.Error("zero history accepted")
	}
}
