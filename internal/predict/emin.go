// Package predict implements the prediction approaches the paper sketches
// for real systems: estimating Emin without a full brute-force search every
// interval (Section II-B "predicting and learning"), and predicting how
// long the current stable region will last so governors can tune less
// often (Section VII "learning").
package predict

import (
	"fmt"
	"math"
)

// EminPredictor estimates the minimum energy the next sample could consume,
// the denominator of the inefficiency metric. Implementations learn from
// observed values.
type EminPredictor interface {
	// Predict returns the estimated Emin for the next sample, and false if
	// the predictor has not seen enough history to estimate.
	Predict() (float64, bool)
	// Observe records the measured (or brute-force computed) Emin of the
	// sample that just completed.
	Observe(eminJ float64)
	// Name identifies the predictor in reports.
	Name() string
}

// LastValue predicts that the next sample's Emin equals the last observed
// one — the simplest learner, effective because consecutive samples usually
// share a phase.
type LastValue struct {
	last float64
	seen bool
}

// NewLastValue returns an empty last-value predictor.
func NewLastValue() *LastValue { return &LastValue{} }

// Name implements EminPredictor.
func (p *LastValue) Name() string { return "last-value" }

// Predict implements EminPredictor.
func (p *LastValue) Predict() (float64, bool) { return p.last, p.seen }

// Observe implements EminPredictor.
func (p *LastValue) Observe(eminJ float64) {
	p.last = eminJ
	p.seen = true
}

// EWMA predicts Emin with an exponentially weighted moving average,
// trading responsiveness for noise immunity.
type EWMA struct {
	alpha float64
	value float64
	seen  bool
}

// NewEWMA builds an EWMA predictor with smoothing factor alpha in (0, 1];
// alpha = 1 degenerates to last-value.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("predict: EWMA alpha %v outside (0,1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Name implements EminPredictor.
func (p *EWMA) Name() string { return "ewma" }

// Predict implements EminPredictor.
func (p *EWMA) Predict() (float64, bool) { return p.value, p.seen }

// Observe implements EminPredictor.
func (p *EWMA) Observe(eminJ float64) {
	if !p.seen {
		p.value = eminJ
		p.seen = true
		return
	}
	p.value = p.alpha*eminJ + (1-p.alpha)*p.value
}

// PhaseTable predicts Emin by classifying samples into phases using a
// quantized (CPI, MPKI) signature and remembering the last Emin seen per
// phase — the offline-profile flavor the paper proposes, built online.
type PhaseTable struct {
	cpiBin, mpkiBin float64
	table           map[phaseKey]float64
	lastKey         phaseKey
	haveLast        bool
}

type phaseKey struct {
	cpi, mpki int
}

// NewPhaseTable builds a phase-keyed Emin table. cpiBin and mpkiBin set the
// quantization granularity (e.g. 0.25 CPI, 4 MPKI).
func NewPhaseTable(cpiBin, mpkiBin float64) (*PhaseTable, error) {
	if cpiBin <= 0 || mpkiBin <= 0 {
		return nil, fmt.Errorf("predict: non-positive phase bins %v/%v", cpiBin, mpkiBin)
	}
	return &PhaseTable{cpiBin: cpiBin, mpkiBin: mpkiBin, table: make(map[phaseKey]float64)}, nil
}

// Name implements EminPredictor.
func (p *PhaseTable) Name() string { return "phase-table" }

// Classify records the phase signature of the sample about to run, which
// Predict will use. Call it before Predict when the signature is known
// (e.g. from profiling or the previous sample's counters).
func (p *PhaseTable) Classify(cpi, mpki float64) {
	p.lastKey = phaseKey{
		cpi:  int(math.Floor(cpi / p.cpiBin)),
		mpki: int(math.Floor(mpki / p.mpkiBin)),
	}
	p.haveLast = true
}

// Predict implements EminPredictor: it returns the remembered Emin for the
// current phase signature.
func (p *PhaseTable) Predict() (float64, bool) {
	if !p.haveLast {
		return 0, false
	}
	v, ok := p.table[p.lastKey]
	return v, ok
}

// Observe implements EminPredictor, attributing the observation to the
// current phase signature.
func (p *PhaseTable) Observe(eminJ float64) {
	if !p.haveLast {
		return
	}
	p.table[p.lastKey] = eminJ
}

// Len returns the number of distinct phases learned.
func (p *PhaseTable) Len() int { return len(p.table) }
