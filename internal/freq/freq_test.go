package freq

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLadder(t *testing.T) {
	cases := []struct {
		lo, hi, step MHz
		want         []MHz
	}{
		{100, 1000, 100, []MHz{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}},
		{200, 800, 100, []MHz{200, 300, 400, 500, 600, 700, 800}},
		{100, 100, 50, []MHz{100}},
		{200, 800, 40, Ladder(200, 800, 40)},
	}
	for _, c := range cases {
		got := Ladder(c.lo, c.hi, c.step)
		if len(got) != len(c.want) {
			t.Fatalf("Ladder(%v,%v,%v) len = %d, want %d", c.lo, c.hi, c.step, len(got), len(c.want))
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Ladder(%v,%v,%v)[%d] = %v, want %v", c.lo, c.hi, c.step, i, got[i], c.want[i])
			}
		}
	}
}

func TestLadderFineSizes(t *testing.T) {
	// Paper: 30 MHz CPU steps and 40 MHz memory steps give 496 settings.
	cpu := Ladder(100, 1000, 30)
	mem := Ladder(200, 800, 40)
	if len(cpu) != 31 {
		t.Errorf("fine CPU ladder len = %d, want 31", len(cpu))
	}
	if len(mem) != 16 {
		t.Errorf("fine mem ladder len = %d, want 16", len(mem))
	}
	if len(cpu)*len(mem) != 496 {
		t.Errorf("fine space size = %d, want 496", len(cpu)*len(mem))
	}
}

func TestLadderPanics(t *testing.T) {
	for _, c := range []struct{ lo, hi, step MHz }{
		{100, 50, 10},
		{100, 200, 0},
		{100, 200, -5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Ladder(%v,%v,%v) did not panic", c.lo, c.hi, c.step)
				}
			}()
			Ladder(c.lo, c.hi, c.step)
		}()
	}
}

func TestMHzConversions(t *testing.T) {
	f := MHz(500)
	if got := f.GHz(); got != 0.5 {
		t.Errorf("GHz = %v, want 0.5", got)
	}
	if got := f.Hz(); got != 5e8 {
		t.Errorf("Hz = %v, want 5e8", got)
	}
	if got := f.PeriodNS(); got != 2 {
		t.Errorf("PeriodNS = %v, want 2", got)
	}
}

func TestMHzString(t *testing.T) {
	if got := MHz(800).String(); got != "800MHz" {
		t.Errorf("String = %q", got)
	}
	if got := MHz(333.5).String(); got != "333.5MHz" {
		t.Errorf("String = %q", got)
	}
}

func TestPeriodPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PeriodNS(0) did not panic")
		}
	}()
	MHz(0).PeriodNS()
}

func TestLinearOPPTable(t *testing.T) {
	tab := LinearOPPTable(Ladder(100, 1000, 100), 0.85, 1.25)
	if tab.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tab.Len())
	}
	if v := tab.Min().V; math.Abs(float64(v-0.85)) > 1e-12 {
		t.Errorf("min voltage = %v, want 0.85", v)
	}
	if v := tab.Max().V; math.Abs(float64(v-1.25)) > 1e-12 {
		t.Errorf("max voltage = %v, want 1.25", v)
	}
	// Midpoint of the ladder (550 MHz) interpolates to the midpoint voltage.
	v, err := tab.VoltageAt(550)
	if err != nil {
		t.Fatalf("VoltageAt(550): %v", err)
	}
	if math.Abs(float64(v-1.05)) > 1e-9 {
		t.Errorf("VoltageAt(550) = %v, want 1.05", v)
	}
}

func TestVoltageMonotoneInFrequency(t *testing.T) {
	tab := DefaultCPUOPPs()
	prev := Volts(0)
	for _, f := range tab.Frequencies() {
		v, err := tab.VoltageAt(f)
		if err != nil {
			t.Fatalf("VoltageAt(%v): %v", f, err)
		}
		if v < prev {
			t.Errorf("voltage decreased at %v: %v < %v", f, v, prev)
		}
		prev = v
	}
}

func TestVoltageAtOutOfRange(t *testing.T) {
	tab := DefaultCPUOPPs()
	if _, err := tab.VoltageAt(50); err == nil {
		t.Error("VoltageAt(50) should error below range")
	}
	if _, err := tab.VoltageAt(1500); err == nil {
		t.Error("VoltageAt(1500) should error above range")
	}
}

func TestFixedVoltageTable(t *testing.T) {
	tab := FixedVoltageTable(Ladder(200, 800, 100), 1.2)
	for i := 0; i < tab.Len(); i++ {
		if tab.At(i).V != 1.2 {
			t.Errorf("voltage at %v = %v, want 1.2", tab.At(i).F, tab.At(i).V)
		}
	}
}

func TestNearest(t *testing.T) {
	tab := DefaultCPUOPPs()
	cases := []struct {
		in   MHz
		want MHz
	}{
		{90, 100}, {100, 100}, {149, 100}, {151, 200}, {1200, 1000}, {850, 800},
	}
	for _, c := range cases {
		if got := tab.Nearest(c.in).F; got != c.want {
			t.Errorf("Nearest(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNewOPPTableRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate OPP frequencies did not panic")
		}
	}()
	NewOPPTable([]OPP{{F: 100, V: 1}, {F: 100, V: 1.1}})
}

func TestSpaceEnumeration(t *testing.T) {
	sp := CoarseSpace()
	if sp.Len() != 70 {
		t.Fatalf("coarse space len = %d, want 70", sp.Len())
	}
	// Every setting must round-trip through ID.
	for i, st := range sp.Settings() {
		id, ok := sp.ID(st)
		if !ok || id != SettingID(i) {
			t.Fatalf("ID(%v) = %d,%v; want %d,true", st, id, ok, i)
		}
		if sp.Setting(id) != st {
			t.Fatalf("Setting(ID) round trip failed for %v", st)
		}
	}
	if _, ok := sp.ID(Setting{CPU: 123, Mem: 456}); ok {
		t.Error("ID of non-member setting reported ok")
	}
}

func TestSpaceMinMax(t *testing.T) {
	sp := CoarseSpace()
	if got := sp.Max(); got != (Setting{CPU: 1000, Mem: 800}) {
		t.Errorf("Max = %v", got)
	}
	if got := sp.Min(); got != (Setting{CPU: 100, Mem: 200}) {
		t.Errorf("Min = %v", got)
	}
}

func TestFineSpaceSize(t *testing.T) {
	if got := FineSpace().Len(); got != 496 {
		t.Errorf("fine space len = %d, want 496", got)
	}
}

func TestSpaceOrderingCPUMajor(t *testing.T) {
	sp := NewSpace([]MHz{100, 200}, []MHz{10, 20, 30})
	want := []Setting{{100, 10}, {100, 20}, {100, 30}, {200, 10}, {200, 20}, {200, 30}}
	for i, w := range want {
		if sp.Setting(SettingID(i)) != w {
			t.Errorf("setting %d = %v, want %v", i, sp.Setting(SettingID(i)), w)
		}
	}
}

// Property: for any frequency inside the table range, interpolated voltage
// lies between the table's min and max voltages, and is monotone.
func TestVoltageInterpolationBounds(t *testing.T) {
	tab := DefaultCPUOPPs()
	f := func(x float64) bool {
		fr := MHz(100 + math.Mod(math.Abs(x), 900))
		v, err := tab.VoltageAt(fr)
		if err != nil {
			return false
		}
		return v >= tab.Min().V && v <= tab.Max().V
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Ladder output is strictly increasing and within bounds.
func TestLadderMonotoneProperty(t *testing.T) {
	f := func(loRaw, spanRaw, stepRaw uint16) bool {
		lo := MHz(1 + loRaw%2000)
		hi := lo + MHz(spanRaw%3000)
		step := MHz(1 + stepRaw%97)
		l := Ladder(lo, hi, step)
		if len(l) == 0 || l[0] != lo {
			return false
		}
		for i := 1; i < len(l); i++ {
			if l[i] <= l[i-1] || l[i] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
