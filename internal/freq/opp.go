package freq

import (
	"fmt"
	"sort"
)

// OPP is an operating performance point: a clock frequency paired with the
// minimum stable supply voltage at that frequency.
type OPP struct {
	F MHz
	V Volts
}

// OPPTable is an ordered list of operating points for one clock domain,
// sorted by ascending frequency.
type OPPTable struct {
	points []OPP
}

// NewOPPTable builds a table from the given points. Points are copied and
// sorted by frequency. It panics on an empty table or duplicate frequencies:
// OPP tables are static platform configuration and such inputs are bugs.
func NewOPPTable(points []OPP) *OPPTable {
	if len(points) == 0 {
		panic("freq: empty OPP table")
	}
	cp := make([]OPP, len(points))
	copy(cp, points)
	sort.Slice(cp, func(i, j int) bool { return cp[i].F < cp[j].F })
	for i := 1; i < len(cp); i++ {
		if cp[i].F == cp[i-1].F {
			panic(fmt.Sprintf("freq: duplicate OPP frequency %v", cp[i].F))
		}
	}
	return &OPPTable{points: cp}
}

// LinearOPPTable builds an OPP table over the given frequency ladder with a
// voltage that scales linearly from vMin at the lowest frequency to vMax at
// the highest. This matches the paper's CPU domain, where voltage tracks
// frequency up to 1.25 V at 1000 MHz.
//
//vet:requires vMin > 0 && vMax >= vMin
func LinearOPPTable(ladder []MHz, vMin, vMax Volts) *OPPTable {
	if len(ladder) == 0 {
		panic("freq: empty frequency ladder")
	}
	lo, hi := ladder[0], ladder[len(ladder)-1]
	span := hi - lo
	pts := make([]OPP, 0, len(ladder))
	for _, f := range ladder {
		v := vMin
		if span > 0 {
			v = vMin + Volts(float64(vMax-vMin)*float64((f-lo)/span))
		}
		pts = append(pts, OPP{F: f, V: v})
	}
	return NewOPPTable(pts)
}

// FixedVoltageTable builds an OPP table whose voltage is the same at every
// frequency. This matches the paper's memory domain: LPDDR3 VDD rails are
// fixed and only the clock scales.
//
//vet:requires v > 0
func FixedVoltageTable(ladder []MHz, v Volts) *OPPTable {
	pts := make([]OPP, 0, len(ladder))
	for _, f := range ladder {
		pts = append(pts, OPP{F: f, V: v})
	}
	return NewOPPTable(pts)
}

// Len returns the number of operating points.
func (t *OPPTable) Len() int { return len(t.points) }

// At returns the i-th operating point in ascending frequency order.
func (t *OPPTable) At(i int) OPP { return t.points[i] }

// Frequencies returns the table's frequency ladder in ascending order.
func (t *OPPTable) Frequencies() []MHz {
	out := make([]MHz, len(t.points))
	for i, p := range t.points {
		out[i] = p.F
	}
	return out
}

// Min returns the lowest operating point.
func (t *OPPTable) Min() OPP { return t.points[0] }

// Max returns the highest operating point.
func (t *OPPTable) Max() OPP { return t.points[len(t.points)-1] }

// VoltageAt returns the supply voltage for frequency f. Frequencies between
// table points are interpolated linearly; frequencies outside the table
// range return an error, since running outside the OPP range is invalid.
//
//vet:requires f > 0
func (t *OPPTable) VoltageAt(f MHz) (Volts, error) {
	pts := t.points
	if f < pts[0].F || f > pts[len(pts)-1].F {
		return 0, fmt.Errorf("freq: %v outside OPP range [%v, %v]", f, pts[0].F, pts[len(pts)-1].F)
	}
	i := searchOPP(pts, f)
	if pts[i].F == f { //lint:allow floateq OPP tables hold exact discrete frequencies; lookup is identity
		return pts[i].V, nil
	}
	lo, hi := pts[i-1], pts[i]
	frac := float64((f - lo.F) / (hi.F - lo.F)) //lint:allow rangecheck adjacent OPPs are strictly increasing (NewOPPTable panics on duplicates), so the span is positive
	return lo.V + Volts(frac*float64(hi.V-lo.V)), nil
}

// searchOPP returns the least index i with pts[i].F >= f, or len(pts) if
// every point is below f — sort.Search's contract, open-coded because the
// voltage lookup sits on the hot CoeffsAt path and the stdlib form hands a
// capturing predicate closure to an extern call the allocation prover
// cannot see through.
func searchOPP(pts []OPP, f MHz) int {
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].F < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Nearest returns the operating point whose frequency is closest to f,
// preferring the lower point on ties.
func (t *OPPTable) Nearest(f MHz) OPP {
	pts := t.points
	i := searchOPP(pts, f)
	if i == 0 {
		return pts[0]
	}
	if i == len(pts) {
		return pts[len(pts)-1]
	}
	if pts[i].F-f < f-pts[i-1].F {
		return pts[i]
	}
	return pts[i-1]
}
