// Package freq provides the frequency, voltage, and operating-point types
// shared by every component model in mcdvfs.
//
// The paper's system exposes two independently clocked domains: a CPU domain
// with dynamic voltage and frequency scaling (DVFS) and a memory domain with
// frequency-only scaling (DFS). This package defines the typed units (MHz,
// volts), the operating-performance-point (OPP) tables that map a frequency
// to its supply voltage, and the enumerated spaces of (CPU, memory) setting
// pairs over which all characterization runs.
package freq

import (
	"fmt"
	"math"
)

// MHz is a clock frequency in megahertz.
type MHz float64

// GHz returns the frequency in gigahertz.
func (f MHz) GHz() float64 { return float64(f) / 1e3 }

// Hz returns the frequency in hertz.
func (f MHz) Hz() float64 { return float64(f) * 1e6 }

// CyclesPerNS returns the clock rate as cycles per nanosecond. The value
// equals GHz numerically, but cycle-counting code should say what it means:
// the units check treats frequencies and rates as different dimensions.
func (f MHz) CyclesPerNS() float64 { return float64(f) * 1e-3 }

// PeriodNS returns the clock period in nanoseconds. It panics for
// non-positive frequencies, which are always a programming error.
//
//vet:requires f > 0
//vet:ensures ret > 0
func (f MHz) PeriodNS() float64 {
	if f <= 0 {
		panic(fmt.Sprintf("freq: period of non-positive frequency %v", f))
	}
	return 1e3 / float64(f)
}

// String renders the frequency as an integer MHz count when exact,
// otherwise with one decimal.
func (f MHz) String() string {
	if f == MHz(math.Trunc(float64(f))) { //lint:allow floateq exact integrality probe for display formatting
		return fmt.Sprintf("%dMHz", int64(f))
	}
	return fmt.Sprintf("%.1fMHz", float64(f))
}

// Volts is a supply voltage.
type Volts float64

// String renders the voltage with millivolt precision.
func (v Volts) String() string { return fmt.Sprintf("%.3fV", float64(v)) }

// Ladder returns the inclusive arithmetic sequence lo, lo+step, …, hi.
// It panics if the arguments cannot produce a non-empty ladder, since
// ladders are build-time configuration.
//
//vet:requires step > 0 && hi >= lo
func Ladder(lo, hi, step MHz) []MHz {
	if step <= 0 {
		panic(fmt.Sprintf("freq: non-positive ladder step %v", step))
	}
	if hi < lo {
		panic(fmt.Sprintf("freq: ladder bounds inverted [%v, %v]", lo, hi))
	}
	n := int(math.Floor(float64((hi-lo)/step)+1e-9)) + 1
	out := make([]MHz, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, lo+MHz(i)*step)
	}
	return out
}
