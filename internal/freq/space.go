package freq

import "fmt"

// Setting is one joint operating choice: a CPU frequency and a memory
// frequency. It is the unit over which the paper's entire characterization —
// inefficiency, clusters, stable regions — is defined.
type Setting struct {
	CPU MHz
	Mem MHz
}

// String renders the setting as "cpu/mem".
func (s Setting) String() string { return fmt.Sprintf("%v/%v", s.CPU, s.Mem) }

// Space is an enumerated set of settings, the cross product of a CPU ladder
// and a memory ladder. Settings are indexed by SettingID in a fixed order:
// CPU-major ascending, memory ascending within a CPU step.
type Space struct {
	cpu      []MHz
	mem      []MHz
	settings []Setting
	index    map[Setting]SettingID
}

// SettingID identifies a setting within one Space. IDs are dense [0, Len).
type SettingID int

// NewSpace builds the cross-product space of the two ladders.
func NewSpace(cpu, mem []MHz) *Space {
	if len(cpu) == 0 || len(mem) == 0 {
		panic("freq: empty ladder in setting space")
	}
	s := &Space{
		cpu:      append([]MHz(nil), cpu...),
		mem:      append([]MHz(nil), mem...),
		settings: make([]Setting, 0, len(cpu)*len(mem)),
		index:    make(map[Setting]SettingID, len(cpu)*len(mem)),
	}
	for _, fc := range s.cpu {
		for _, fm := range s.mem {
			st := Setting{CPU: fc, Mem: fm}
			s.index[st] = SettingID(len(s.settings))
			s.settings = append(s.settings, st)
		}
	}
	return s
}

// Len returns the number of settings in the space.
func (s *Space) Len() int { return len(s.settings) }

// Setting returns the setting with the given ID.
func (s *Space) Setting(id SettingID) Setting { return s.settings[id] }

// Settings returns all settings in ID order. The returned slice is shared;
// callers must not modify it.
func (s *Space) Settings() []Setting { return s.settings }

// ID returns the SettingID for st and whether st is a member of the space.
func (s *Space) ID(st Setting) (SettingID, bool) {
	id, ok := s.index[st]
	return id, ok
}

// CPULadder returns the CPU frequency ladder (shared slice; do not modify).
func (s *Space) CPULadder() []MHz { return s.cpu }

// MemLadder returns the memory frequency ladder (shared slice; do not modify).
func (s *Space) MemLadder() []MHz { return s.mem }

// Max returns the setting with the highest CPU and memory frequency.
func (s *Space) Max() Setting {
	return Setting{CPU: s.cpu[len(s.cpu)-1], Mem: s.mem[len(s.mem)-1]}
}

// Min returns the setting with the lowest CPU and memory frequency.
func (s *Space) Min() Setting {
	return Setting{CPU: s.cpu[0], Mem: s.mem[0]}
}

// Platform default ladders, as configured in the paper (Section III):
// CPU 100–1000 MHz and memory 200–800 MHz at 100 MHz steps for the coarse
// 70-setting space; 30 MHz CPU and 40 MHz memory steps for the fine
// 496-setting space used in the step-size sensitivity study.
const (
	CPUMinMHz MHz = 100
	CPUMaxMHz MHz = 1000
	MemMinMHz MHz = 200
	MemMaxMHz MHz = 800
)

// CoarseSpace returns the paper's 10×7 = 70-setting space
// (100 MHz steps on both domains).
func CoarseSpace() *Space {
	return NewSpace(
		Ladder(CPUMinMHz, CPUMaxMHz, 100),
		Ladder(MemMinMHz, MemMaxMHz, 100),
	)
}

// FineSpace returns the paper's 31×16 = 496-setting space
// (30 MHz CPU steps, 40 MHz memory steps).
func FineSpace() *Space {
	return NewSpace(
		Ladder(CPUMinMHz, CPUMaxMHz, 30),
		Ladder(MemMinMHz, MemMaxMHz, 40),
	)
}

// Default CPU voltage endpoints: the calibrated linear V(f) law runs from
// CPUVMin at 100 MHz to the paper's 1.25 V ceiling at 1000 MHz.
const (
	CPUVMin Volts = 0.78
	CPUVMax Volts = 1.25
)

// DefaultCPUOPPs returns the paper's CPU OPP table: 100–1000 MHz with
// voltage rising linearly to 1.25 V at the top frequency.
func DefaultCPUOPPs() *OPPTable {
	return LinearOPPTable(Ladder(CPUMinMHz, CPUMaxMHz, 100), CPUVMin, CPUVMax)
}

// FineCPUOPPs returns the fine-step CPU OPP table with the same linear
// voltage law as DefaultCPUOPPs.
func FineCPUOPPs() *OPPTable {
	return LinearOPPTable(Ladder(CPUMinMHz, CPUMaxMHz, 30), CPUVMin, CPUVMax)
}
