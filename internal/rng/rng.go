// Package rng provides a small deterministic pseudo-random number generator
// used for workload realization and synthetic traffic generation.
//
// The library must be bit-reproducible across runs and platforms — every
// figure regenerated from the same inputs must be identical — so it uses an
// explicit SplitMix64 generator seeded by the caller rather than any global
// or time-seeded source.
package rng

import "math"

// Source is a SplitMix64 generator. The zero value is a valid generator
// seeded with zero; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Value returns a generator seeded with seed as a value, for hot paths that
// keep the source on the stack instead of allocating. A Value-seeded source
// produces the identical stream to New(seed).
func Value(seed uint64) Source { return Source{state: seed} }

// Derive returns a new independent generator deterministically derived from
// this generator's seed and the given stream identifier. It does not
// advance the parent. Use it to give each (benchmark, sample) pair its own
// stream so realizations are order-independent.
func (s *Source) Derive(stream uint64) *Source {
	mix := s.state ^ (stream * 0x9e3779b97f4a7c15)
	d := &Source{state: mix}
	d.Uint64() // decorrelate from the raw seed
	return d
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Norm returns an approximately standard-normal value using the sum of
// uniforms (Irwin–Hall with 12 terms), which is plenty for jitter modeling
// and avoids trig/log edge cases.
func (s *Source) Norm() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += s.Float64()
	}
	return sum - 6
}

// LogNormFactor returns a multiplicative jitter factor with median 1 whose
// log has standard deviation sigma. sigma = 0 returns exactly 1.
func (s *Source) LogNormFactor(sigma float64) float64 {
	if sigma == 0 { //lint:allow floateq zero sigma is an exact no-jitter sentinel
		return 1
	}
	return math.Exp(sigma * s.Norm())
}

// Exp returns an exponentially distributed value with the given mean.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 { //lint:allow floateq rejection-samples the exact zero the generator can emit
		u = s.Float64()
	}
	return -mean * math.Log(u)
}
