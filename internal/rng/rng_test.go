package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestDeriveDeterministicAndNonAdvancing(t *testing.T) {
	p := New(7)
	before := *p
	x := p.Derive(3).Uint64()
	if *p != before {
		t.Error("Derive advanced the parent generator")
	}
	y := New(7).Derive(3).Uint64()
	if x != y {
		t.Error("Derive from identical parent state not deterministic")
	}
}

func TestDeriveStreamsDiffer(t *testing.T) {
	p := New(9)
	a := p.Derive(1)
	b := p.Derive(2)
	if a.Uint64() == b.Uint64() {
		t.Error("different streams produced identical first output")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(17)
	n := 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormFactor(t *testing.T) {
	s := New(23)
	if got := s.LogNormFactor(0); got != 1 {
		t.Errorf("sigma=0 factor = %v, want exactly 1", got)
	}
	for i := 0; i < 1000; i++ {
		f := s.LogNormFactor(0.1)
		if f <= 0 {
			t.Fatalf("non-positive jitter factor %v", f)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(29)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(5)
		if v < 0 {
			t.Fatalf("negative exponential %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.15 {
		t.Errorf("exponential mean = %v, want ~5", mean)
	}
}
