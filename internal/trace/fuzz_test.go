package trace

import (
	"bytes"
	"testing"
)

// FuzzReadJSON hardens grid deserialization: arbitrary input must either
// produce a structurally valid grid or an error — never a panic and never
// an invalid grid.
func FuzzReadJSON(f *testing.F) {
	// Seeds: a valid grid, truncations, and hostile variants.
	valid := `{"benchmark":"x","sample_instructions":1,"settings":[{"CPU":100,"Mem":200}],"data":[[{"time_ns":1,"cpu_energy_j":1,"mem_energy_j":0,"cpi":1,"mpki":0}]]}`
	f.Add([]byte(valid))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"benchmark":"x"}`))
	f.Add([]byte(`{"benchmark":"x","sample_instructions":1,"settings":[],"data":[]}`))
	f.Add([]byte(`{"benchmark":"x","sample_instructions":1,"settings":[{"CPU":1e308,"Mem":-1}],"data":[[{"time_ns":-5}]]}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if vErr := g.Validate(); vErr != nil {
			t.Fatalf("ReadJSON returned invalid grid: %v", vErr)
		}
		// A valid grid must round-trip.
		var buf bytes.Buffer
		if wErr := g.WriteJSON(&buf); wErr != nil {
			t.Fatalf("valid grid failed to serialize: %v", wErr)
		}
		if _, rErr := ReadJSON(&buf); rErr != nil {
			t.Fatalf("round trip failed: %v", rErr)
		}
	})
}
