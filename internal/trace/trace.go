// Package trace collects and stores characterization grids: the per-sample,
// per-setting measurement matrices on which all of the paper's analyses
// operate.
//
// The paper runs each benchmark once per (CPU, memory) frequency pair — 70
// gem5 simulations for the coarse grid, 496 for the fine one — and samples
// performance and energy every 10 million user-mode instructions. Collect
// performs the equivalent sweep against the mcdvfs simulator, producing a
// Grid indexed [sample][setting].
package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/workload"
)

// Measurement is one cell of the grid: what the platform's counters report
// for one sample at one setting.
type Measurement struct {
	TimeNS     float64 `json:"time_ns"`
	CPUEnergyJ float64 `json:"cpu_energy_j"`
	MemEnergyJ float64 `json:"mem_energy_j"`
	CPI        float64 `json:"cpi"`
	MPKI       float64 `json:"mpki"`
}

// EnergyJ returns the total (CPU + memory) energy of the measurement.
func (m Measurement) EnergyJ() float64 { return m.CPUEnergyJ + m.MemEnergyJ }

// Grid is a complete characterization of one benchmark over a setting
// space: Data[s][k] is the measurement for sample s at setting k, with k a
// freq.SettingID into Settings.
type Grid struct {
	Benchmark   string          `json:"benchmark"`
	SampleInstr uint64          `json:"sample_instructions"`
	Settings    []freq.Setting  `json:"settings"`
	Data        [][]Measurement `json:"data"`
}

// NumSamples returns the number of samples in the grid.
func (g *Grid) NumSamples() int { return len(g.Data) }

// NumSettings returns the number of settings in the grid.
func (g *Grid) NumSettings() int { return len(g.Settings) }

// At returns the measurement for sample s at setting k.
func (g *Grid) At(s int, k freq.SettingID) Measurement { return g.Data[s][int(k)] }

// Setting returns the setting with ID k.
func (g *Grid) Setting(k freq.SettingID) freq.Setting { return g.Settings[int(k)] }

// Validate checks structural consistency and physical sanity.
func (g *Grid) Validate() error {
	if g.Benchmark == "" {
		return fmt.Errorf("trace: grid missing benchmark name")
	}
	if g.SampleInstr == 0 {
		return fmt.Errorf("trace: grid missing sample length")
	}
	if len(g.Settings) == 0 {
		return fmt.Errorf("trace: grid has no settings")
	}
	if len(g.Data) == 0 {
		return fmt.Errorf("trace: grid has no samples")
	}
	for s, row := range g.Data {
		if len(row) != len(g.Settings) {
			return fmt.Errorf("trace: sample %d has %d cells, want %d", s, len(row), len(g.Settings))
		}
		for k, m := range row {
			if m.TimeNS <= 0 || m.CPUEnergyJ < 0 || m.MemEnergyJ < 0 {
				return fmt.Errorf("trace: sample %d setting %d non-physical: %+v", s, k, m)
			}
		}
	}
	return nil
}

// TotalTimeNS returns the end-to-end execution time at a fixed setting.
func (g *Grid) TotalTimeNS(k freq.SettingID) float64 {
	sum := 0.0
	for s := range g.Data {
		sum += g.Data[s][int(k)].TimeNS
	}
	return sum
}

// TotalEnergyJ returns the end-to-end energy at a fixed setting.
func (g *Grid) TotalEnergyJ(k freq.SettingID) float64 {
	sum := 0.0
	for s := range g.Data {
		sum += g.Data[s][int(k)].EnergyJ()
	}
	return sum
}

// CollectOptions tunes the collection engine. The zero value selects the
// defaults, so callers can pass CollectOptions{} for the standard sweep.
type CollectOptions struct {
	// Workers bounds the worker pool fanning out per-setting columns.
	// Zero (or negative) means GOMAXPROCS; the pool is additionally capped
	// at the setting count, since a worker's unit of work is one column.
	Workers int
	// OnProgress, when non-nil, is invoked after each setting column
	// completes with the number of finished columns and the space size. It
	// is called from worker goroutines and must be safe for concurrent use;
	// long-running services use it to export collection progress.
	OnProgress func(done, total int)
}

// workers resolves the effective pool size for a space.
func (o CollectOptions) workers(settings int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > settings {
		w = settings
	}
	return w
}

// Collect sweeps the benchmark across every setting in the space,
// simulating each sample at each setting. Settings are simulated in
// parallel across the machine's cores; use CollectContext for
// cancellation or an explicit worker count.
func Collect(sys *sim.System, bench workload.Benchmark, space *freq.Space) (*Grid, error) {
	return CollectContext(context.Background(), sys, bench, space, CollectOptions{})
}

// CollectContext is Collect with cancellation and tuning. It fans the
// space's setting columns out over a bounded worker pool, each worker
// writing into preallocated grid rows, so the result is byte-identical to
// a serial (Workers: 1) sweep regardless of pool size: every cell is
// computed by the same deterministic SimulateSample call and lands in its
// preassigned slot.
//
// The first simulation error cancels the remaining work and is returned.
// If ctx is cancelled mid-sweep, workers stop at the next sample boundary
// and CollectContext returns ctx's error; no partially filled grid is ever
// returned.
func CollectContext(ctx context.Context, sys *sim.System, bench workload.Benchmark, space *freq.Space, opts CollectOptions) (*Grid, error) {
	specs, err := bench.Realize()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	g := &Grid{
		Benchmark:   bench.Name,
		SampleInstr: workload.SampleLen,
		Settings:    append([]freq.Setting(nil), space.Settings()...),
		Data:        make([][]Measurement, len(specs)),
	}
	for s := range g.Data {
		g.Data[s] = make([]Measurement, space.Len())
	}

	// Errgroup-style fan-out: the first failure records itself once and
	// cancels the derived context, which every worker polls at each sample
	// boundary so cancellation latency is one SimulateSample, not one
	// column.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	// Buffered to the full setting count: if workers exit early on error,
	// the feeder below must never block on a channel nobody drains.
	ids := make(chan int, space.Len())
	var columnsDone atomic.Int64
	for w := 0; w < opts.workers(space.Len()); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range ids {
				st := g.Settings[k]
				for s, spec := range specs {
					if ctx.Err() != nil {
						return
					}
					m, err := sys.SimulateSample(spec, st)
					if err != nil {
						fail(fmt.Errorf("trace: setting %v sample %d: %w", st, s, err))
						return
					}
					g.Data[s][k] = Measurement{
						TimeNS:     m.TimeNS,
						CPUEnergyJ: m.CPUEnergyJ,
						MemEnergyJ: m.MemEnergyJ,
						CPI:        m.CPI,
						MPKI:       m.MPKI,
					}
				}
				if opts.OnProgress != nil {
					opts.OnProgress(int(columnsDone.Add(1)), space.Len())
				}
			}
		}()
	}
	for k := range g.Settings {
		ids <- k
	}
	close(ids)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteJSON serializes the grid.
func (g *Grid) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(g)
}

// ReadJSON deserializes a grid and validates it.
func ReadJSON(r io.Reader) (*Grid, error) {
	var g Grid
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("trace: decoding grid: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}
