// Package trace collects and stores characterization grids: the per-sample,
// per-setting measurement matrices on which all of the paper's analyses
// operate.
//
// The paper runs each benchmark once per (CPU, memory) frequency pair — 70
// gem5 simulations for the coarse grid, 496 for the fine one — and samples
// performance and energy every 10 million user-mode instructions. Collect
// performs the equivalent sweep against the mcdvfs simulator, producing a
// Grid indexed [sample][setting].
package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/workload"
)

// Measurement is one cell of the grid: what the platform's counters report
// for one sample at one setting.
type Measurement struct {
	TimeNS     float64 `json:"time_ns"`
	CPUEnergyJ float64 `json:"cpu_energy_j"`
	MemEnergyJ float64 `json:"mem_energy_j"`
	CPI        float64 `json:"cpi"`
	MPKI       float64 `json:"mpki"`
}

// EnergyJ returns the total (CPU + memory) energy of the measurement.
func (m Measurement) EnergyJ() float64 { return m.CPUEnergyJ + m.MemEnergyJ }

// Grid is a complete characterization of one benchmark over a setting
// space: Data[s][k] is the measurement for sample s at setting k, with k a
// freq.SettingID into Settings.
type Grid struct {
	Benchmark   string          `json:"benchmark"`
	SampleInstr uint64          `json:"sample_instructions"`
	Settings    []freq.Setting  `json:"settings"`
	Data        [][]Measurement `json:"data"`
	// ConvergenceFailures counts cells whose fixed-point solve exhausted its
	// iteration budget without meeting tolerance. Those cells carry the last
	// iterate rather than the true fixed point; a non-zero count means the
	// grid should be treated as approximate. Zero is omitted from JSON so
	// grids serialized by earlier versions round-trip unchanged.
	ConvergenceFailures uint64 `json:"convergence_failures,omitempty"`
}

// NumSamples returns the number of samples in the grid.
func (g *Grid) NumSamples() int { return len(g.Data) }

// NumSettings returns the number of settings in the grid.
func (g *Grid) NumSettings() int { return len(g.Settings) }

// At returns the measurement for sample s at setting k.
func (g *Grid) At(s int, k freq.SettingID) Measurement { return g.Data[s][int(k)] }

// Setting returns the setting with ID k.
func (g *Grid) Setting(k freq.SettingID) freq.Setting { return g.Settings[int(k)] }

// Validate checks structural consistency and physical sanity.
func (g *Grid) Validate() error {
	if g.Benchmark == "" {
		return fmt.Errorf("trace: grid missing benchmark name")
	}
	if g.SampleInstr == 0 {
		return fmt.Errorf("trace: grid missing sample length")
	}
	if len(g.Settings) == 0 {
		return fmt.Errorf("trace: grid has no settings")
	}
	if len(g.Data) == 0 {
		return fmt.Errorf("trace: grid has no samples")
	}
	for s, row := range g.Data {
		if len(row) != len(g.Settings) {
			return fmt.Errorf("trace: sample %d has %d cells, want %d", s, len(row), len(g.Settings))
		}
		for k, m := range row {
			if m.TimeNS <= 0 || m.CPUEnergyJ < 0 || m.MemEnergyJ < 0 {
				return fmt.Errorf("trace: sample %d setting %d non-physical: %+v", s, k, m)
			}
		}
	}
	return nil
}

// TotalTimeNS returns the end-to-end execution time at a fixed setting.
func (g *Grid) TotalTimeNS(k freq.SettingID) float64 {
	sum := 0.0
	for s := range g.Data {
		sum += g.Data[s][int(k)].TimeNS
	}
	return sum
}

// TotalEnergyJ returns the end-to-end energy at a fixed setting.
func (g *Grid) TotalEnergyJ(k freq.SettingID) float64 {
	sum := 0.0
	for s := range g.Data {
		sum += g.Data[s][int(k)].EnergyJ()
	}
	return sum
}

// CollectOptions tunes the collection engine. The zero value selects the
// defaults, so callers can pass CollectOptions{} for the standard sweep.
type CollectOptions struct {
	// Workers bounds the worker pool. Zero (or negative) means GOMAXPROCS;
	// the pool is additionally capped at the number of CPU-frequency chains,
	// since a worker's unit of work is one chain (every memory step at one
	// CPU step, solved in order so warm starts flow down the chain).
	Workers int
	// OnProgress, when non-nil, is invoked after each setting column
	// completes with the number of finished columns and the space size. It
	// is called from worker goroutines and must be safe for concurrent use;
	// long-running services use it to export collection progress.
	OnProgress func(done, total int)
}

// workers resolves the effective pool size for a space with the given
// number of schedulable chains.
func (o CollectOptions) workers(chains int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > chains {
		w = chains
	}
	return w
}

// Collect sweeps the benchmark across every setting in the space,
// simulating each sample at each setting. Settings are simulated in
// parallel across the machine's cores; use CollectContext for
// cancellation or an explicit worker count.
func Collect(sys *sim.System, bench workload.Benchmark, space *freq.Space) (*Grid, error) {
	return CollectContext(context.Background(), sys, bench, space, CollectOptions{})
}

// CollectContext is Collect with cancellation and tuning. It runs the sweep
// through the columnar batch engine (sim.Runner): the space is decomposed
// into CPU-frequency chains — one chain is every memory step at one CPU
// step, in ladder order — and chains are fanned out over a bounded worker
// pool, each worker owning one Runner whose arenas are reused across every
// column it solves.
//
// Within a chain, columns are solved in descending memory order and each
// column after the first warm-starts its fixed-point solves from the
// previous (faster) memory step's converged times — seeding from below, so
// bandwidth-clamped cells converge instantly. Because the seed chain
// restarts at every chain boundary and chains never share state, the grid
// is byte-identical to a serial (Workers: 1) sweep at any pool size — and,
// since warm and cold starts converge to the same fixed point within
// solver tolerance, equal to the per-cell scalar reference within that
// tolerance (bit-identical when cold-started; see the simdiff suite).
//
// The first simulation error cancels the remaining work and is returned.
// If ctx is cancelled mid-sweep, workers stop at the next column boundary
// and CollectContext returns ctx's error; no partially filled grid is ever
// returned.
func CollectContext(ctx context.Context, sys *sim.System, bench workload.Benchmark, space *freq.Space, opts CollectOptions) (*Grid, error) {
	specs, err := bench.Realize()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	g := &Grid{
		Benchmark:   bench.Name,
		SampleInstr: workload.SampleLen,
		Settings:    append([]freq.Setting(nil), space.Settings()...),
		Data:        make([][]Measurement, len(specs)),
	}
	for s := range g.Data {
		g.Data[s] = make([]Measurement, space.Len())
	}
	// Settings are CPU-major (freq.NewSpace): setting k = ci*nm + mi.
	nc := len(space.CPULadder())
	nm := len(space.MemLadder())

	// Errgroup-style fan-out: the first failure records itself once and
	// cancels the derived context, which every worker polls at each column
	// boundary so cancellation latency is one batch solve, not one chain.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	// Buffered to the full chain count: if workers exit early on error,
	// the feeder below must never block on a channel nobody drains.
	chains := make(chan int, nc)
	var columnsDone atomic.Int64
	var convergenceFailures atomic.Uint64
	for w := 0; w < opts.workers(nc); w++ {
		wg.Add(1)
		//lint:allow spawnescape workers only read g until wg.Wait; the launcher writes it after the join
		go func() {
			defer wg.Done()
			r, err := sim.NewRunner(sys, specs) //vet:owned each worker's Runner arena is goroutine-private
			if err != nil {
				fail(fmt.Errorf("trace: %w", err))
				return
			}
			defer func() { convergenceFailures.Add(r.Stats().ConvergenceFailures) }()
			for ci := range chains {
				if err := drainChain(ctx, r, g, ci, nm, &columnsDone, space.Len(), opts.OnProgress); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	for ci := 0; ci < nc; ci++ {
		chains <- ci
	}
	close(chains)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g.ConvergenceFailures = convergenceFailures.Load()
	return g, nil
}

// drainChain is one worker's unit of work, and the per-cell cost of the
// whole collection engine: it solves every memory step of one CPU chain in
// descending ladder order — warm-starting each column after the first —
// and scatters the finished columns into the grid. A cancelled ctx stops
// the chain at the next column boundary and returns nil; CollectContext
// surfaces ctx's error itself so cancellation is not mistaken for a solve
// failure.
//
//vet:hotpath
func drainChain(ctx context.Context, r *sim.Runner, g *Grid, ci, nm int, columnsDone *atomic.Int64, total int, onProgress func(done, total int)) error {
	r.ResetSeed()
	for mi := nm - 1; mi >= 0; mi-- {
		if ctx.Err() != nil { //lint:allow hotpath one interface call per column bounds cancellation latency; the per-cell loop below stays check-free
			return nil
		}
		k := ci*nm + mi
		st := g.Settings[k]
		col, err := r.Solve(st, mi < nm-1)
		if err != nil {
			return fmt.Errorf("trace: setting %v: %w", st, err)
		}
		for s := range col {
			g.Data[s][k] = Measurement{
				TimeNS:     col[s].TimeNS,
				CPUEnergyJ: col[s].CPUEnergyJ,
				MemEnergyJ: col[s].MemEnergyJ,
				CPI:        col[s].CPI,
				MPKI:       col[s].MPKI,
			}
		}
		if onProgress != nil {
			onProgress(int(columnsDone.Add(1)), total) //lint:allow hotpath progress hook runs once per column, not per cell; documented concurrent-safe
		}
	}
	return nil
}

// WriteJSON serializes the grid.
func (g *Grid) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(g)
}

// ReadJSON deserializes a grid and validates it.
func ReadJSON(r io.Reader) (*Grid, error) {
	var g Grid
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("trace: decoding grid: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}
