package trace

// The differential suite locking the columnar collection engine to the
// retained scalar reference: for every built-in benchmark, a grid collected
// through sim.Runner (at several pool sizes) must serialize byte-identical
// to a grid built cell-by-cell from sim.System.ReferenceSimulate with the
// same chain seeding. This is the contract that lets the hot path evolve —
// any reassociation, hoisting mistake, or scheduling leak shows up as a
// byte diff here.

import (
	"bytes"
	"context"
	"testing"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/workload"
)

// referenceGrid builds the oracle grid: the same chain decomposition the
// collection engine uses (one CPU step at a time, memory steps descending,
// warm seeds flowing down each chain), evaluated serially through the
// scalar reference.
func referenceGrid(t *testing.T, sys *sim.System, bench workload.Benchmark, space *freq.Space) *Grid {
	t.Helper()
	specs, err := bench.Realize()
	if err != nil {
		t.Fatalf("Realize: %v", err)
	}
	g := &Grid{
		Benchmark:   bench.Name,
		SampleInstr: workload.SampleLen,
		Settings:    append([]freq.Setting(nil), space.Settings()...),
		Data:        make([][]Measurement, len(specs)),
	}
	for s := range g.Data {
		g.Data[s] = make([]Measurement, space.Len())
	}
	nm := len(space.MemLadder())
	seeds := make([]float64, len(specs))
	for ci := range space.CPULadder() {
		for i := range seeds {
			seeds[i] = -1 // chain boundary: cold-start the first column
		}
		for mi := nm - 1; mi >= 0; mi-- {
			k := ci*nm + mi
			st := g.Settings[k]
			for s, spec := range specs {
				m, solved, err := sys.ReferenceSimulate(spec, st, seeds[s])
				if err != nil {
					t.Fatalf("ReferenceSimulate(%v): %v", st, err)
				}
				seeds[s] = solved
				if !m.Converged {
					g.ConvergenceFailures++
				}
				g.Data[s][k] = Measurement{
					TimeNS:     m.TimeNS,
					CPUEnergyJ: m.CPUEnergyJ,
					MemEnergyJ: m.MemEnergyJ,
					CPI:        m.CPI,
					MPKI:       m.MPKI,
				}
			}
		}
	}
	return g
}

// diffCollect collects bench at each pool size and requires byte-identity
// with the reference grid.
func diffCollect(t *testing.T, sys *sim.System, bench workload.Benchmark, space *freq.Space) {
	t.Helper()
	want := gridJSON(t, referenceGrid(t, sys, bench, space))
	for _, workers := range []int{1, 4, 8} {
		got, err := CollectContext(context.Background(), sys, bench, space, CollectOptions{Workers: workers})
		if err != nil {
			t.Fatalf("CollectContext(workers=%d): %v", workers, err)
		}
		if !bytes.Equal(gridJSON(t, got), want) {
			t.Errorf("workers=%d: collected grid differs from scalar reference", workers)
		}
	}
}

func TestCollectMatchesReferenceEveryBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite differential sweep")
	}
	sys := sim.MustNew(sim.DefaultConfig())
	space := freq.CoarseSpace()
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			diffCollect(t, sys, workload.MustByName(name), space)
		})
	}
}

func TestCollectMatchesReferenceConfigVariants(t *testing.T) {
	little := sim.NoiselessConfig()
	little.CPIFactor = 1.7
	for name, cfg := range map[string]sim.Config{
		"noiseless": sim.NoiselessConfig(),
		"littleCPI": little,
	} {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			sys := sim.MustNew(cfg)
			diffCollect(t, sys, workload.MustByName("milc"), freq.CoarseSpace())
		})
	}
}

// oscillator is a synthetic benchmark whose samples defeat the damped
// fixed-point iteration at high CPU / low memory frequency (see
// sim.TestConvergenceFailureReported): the grid must surface the failures
// rather than silently carrying the last iterate.
func oscillator() workload.Benchmark {
	return workload.Benchmark{
		Name:  "oscillator",
		Class: "int",
		Seed:  7,
		Phases: []workload.Phase{{
			Name: "thrash", Samples: 4,
			BaseCPI: 0.5, MPKI: 300, RowHitRate: 0, MLP: 8, WriteFrac: 1,
		}},
		Repeat: 1,
	}
}

func TestCollectSurfacesConvergenceFailures(t *testing.T) {
	sys := sim.MustNew(sim.NoiselessConfig())
	g, err := Collect(sys, oscillator(), freq.CoarseSpace())
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if g.ConvergenceFailures == 0 {
		t.Skip("oscillator benchmark converged everywhere — solver dynamics changed; rebuild the adversarial case")
	}
	// The count must be scheduling-independent and match the reference.
	ref := referenceGrid(t, sys, oscillator(), freq.CoarseSpace())
	if g.ConvergenceFailures != ref.ConvergenceFailures {
		t.Errorf("ConvergenceFailures = %d, reference %d", g.ConvergenceFailures, ref.ConvergenceFailures)
	}
	serial, err := CollectContext(context.Background(), sys, oscillator(), freq.CoarseSpace(), CollectOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.ConvergenceFailures != serial.ConvergenceFailures {
		t.Errorf("parallel count %d != serial count %d", g.ConvergenceFailures, serial.ConvergenceFailures)
	}
	// A clean benchmark keeps the zero value (and the omitempty JSON shape).
	clean, err := Collect(sys, smallBench(), freq.CoarseSpace())
	if err != nil {
		t.Fatal(err)
	}
	if clean.ConvergenceFailures != 0 {
		t.Errorf("clean benchmark reported %d convergence failures", clean.ConvergenceFailures)
	}
}
