package trace

import (
	"bytes"
	"testing"
	"time"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/workload"
)

// smallBench is a short benchmark to keep collection tests fast.
func smallBench() workload.Benchmark {
	return workload.Benchmark{
		Name: "tiny", Class: "int", Seed: 7, Repeat: 2,
		Phases: []workload.Phase{
			{Name: "cpu", Samples: 3, BaseCPI: 0.9, MPKI: 1, RowHitRate: 0.7, MLP: 1.8, WriteFrac: 0.3},
			{Name: "mem", Samples: 2, BaseCPI: 1.2, MPKI: 20, RowHitRate: 0.8, MLP: 2.5, WriteFrac: 0.4},
		},
	}
}

func collectSmall(t *testing.T) *Grid {
	t.Helper()
	sys := sim.MustNew(sim.DefaultConfig())
	g, err := Collect(sys, smallBench(), freq.CoarseSpace())
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return g
}

func TestCollectShape(t *testing.T) {
	g := collectSmall(t)
	if g.NumSamples() != 10 {
		t.Errorf("samples = %d, want 10", g.NumSamples())
	}
	if g.NumSettings() != 70 {
		t.Errorf("settings = %d, want 70", g.NumSettings())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if g.Benchmark != "tiny" || g.SampleInstr != workload.SampleLen {
		t.Errorf("metadata wrong: %q %d", g.Benchmark, g.SampleInstr)
	}
}

func TestCollectDeterministic(t *testing.T) {
	a := collectSmall(t)
	b := collectSmall(t)
	for s := 0; s < a.NumSamples(); s++ {
		for k := 0; k < a.NumSettings(); k++ {
			if a.Data[s][k] != b.Data[s][k] {
				t.Fatalf("grid cell (%d,%d) differs between collections", s, k)
			}
		}
	}
}

func TestGridMaxSettingFastest(t *testing.T) {
	g := collectSmall(t)
	sp := freq.CoarseSpace()
	maxID, _ := sp.ID(sp.Max())
	tMax := g.TotalTimeNS(maxID)
	for k := range g.Settings {
		if tk := g.TotalTimeNS(freq.SettingID(k)); tk < tMax-1e-6 {
			t.Errorf("setting %v faster than max setting: %v < %v", g.Settings[k], tk, tMax)
		}
	}
}

func TestGridEnergyPositive(t *testing.T) {
	g := collectSmall(t)
	for k := range g.Settings {
		if e := g.TotalEnergyJ(freq.SettingID(k)); e <= 0 {
			t.Errorf("setting %v total energy %v", g.Settings[k], e)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := collectSmall(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.Benchmark != g.Benchmark || back.NumSamples() != g.NumSamples() || back.NumSettings() != g.NumSettings() {
		t.Fatal("round trip lost shape")
	}
	for s := range g.Data {
		for k := range g.Data[s] {
			if g.Data[s][k] != back.Data[s][k] {
				t.Fatalf("cell (%d,%d) changed in round trip", s, k)
			}
		}
	}
}

func TestReadJSONRejectsBadGrids(t *testing.T) {
	cases := []string{
		`{`, // truncated
		`{"benchmark":"","sample_instructions":1,"settings":[{"CPU":100,"Mem":200}],"data":[[{"time_ns":1}]]}`,
		`{"benchmark":"x","sample_instructions":0,"settings":[{"CPU":100,"Mem":200}],"data":[[{"time_ns":1}]]}`,
		`{"benchmark":"x","sample_instructions":1,"settings":[],"data":[[]]}`,
		`{"benchmark":"x","sample_instructions":1,"settings":[{"CPU":100,"Mem":200}],"data":[]}`,
		// ragged row
		`{"benchmark":"x","sample_instructions":1,"settings":[{"CPU":100,"Mem":200},{"CPU":200,"Mem":200}],"data":[[{"time_ns":1}]]}`,
		// non-physical time
		`{"benchmark":"x","sample_instructions":1,"settings":[{"CPU":100,"Mem":200}],"data":[[{"time_ns":0}]]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCollectPropagatesSimulationErrors(t *testing.T) {
	sys := sim.MustNew(sim.DefaultConfig())
	// A space outside the device's clock range must surface an error.
	badSpace := freq.NewSpace([]freq.MHz{500}, []freq.MHz{1600})
	if _, err := Collect(sys, smallBench(), badSpace); err == nil {
		t.Error("out-of-range space accepted")
	}
}

func TestCollectAllSettingsFailingDoesNotDeadlock(t *testing.T) {
	// Regression: when every setting errors, every worker exits early;
	// the setting feeder must not block forever on an undrained channel.
	sys := sim.MustNew(sim.DefaultConfig())
	badSpace := freq.NewSpace(
		freq.Ladder(100, 1000, 100),  // valid CPUs...
		[]freq.MHz{1600, 1700, 1800}, // ...but every memory clock invalid
	)
	done := make(chan error, 1)
	go func() {
		_, err := Collect(sys, smallBench(), badSpace)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("all-failing space accepted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Collect deadlocked with all settings failing")
	}
}

func TestCollectRejectsInvalidBenchmark(t *testing.T) {
	sys := sim.MustNew(sim.DefaultConfig())
	bad := workload.Benchmark{Name: "bad", Repeat: 1}
	if _, err := Collect(sys, bad, freq.CoarseSpace()); err == nil {
		t.Error("invalid benchmark accepted")
	}
}
