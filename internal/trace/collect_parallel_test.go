package trace

// Concurrency suite for the collection engine: the parallel sweep must be
// byte-identical to the serial reference at any pool size, and a cancelled
// context must stop the sweep within one sample's worth of work.

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"mcdvfs/internal/freq"
	"mcdvfs/internal/sim"
	"mcdvfs/internal/workload"
)

// gridJSON renders a grid to its canonical JSON bytes, the equality the
// determinism contract is stated in.
func gridJSON(t *testing.T, g *Grid) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

func TestCollectParallelMatchesSerial(t *testing.T) {
	sys := sim.MustNew(sim.DefaultConfig())
	space := freq.CoarseSpace()
	benches := workload.HeadlineNames()
	if len(benches) < 3 {
		t.Fatalf("need ≥3 benchmarks, suite has %d", len(benches))
	}
	for _, name := range benches[:3] {
		b := workload.MustByName(name)
		serial, err := CollectContext(context.Background(), sys, b, space, CollectOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		want := gridJSON(t, serial)
		for _, workers := range []int{4, 16} {
			par, err := CollectContext(context.Background(), sys, b, space, CollectOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if got := gridJSON(t, par); !bytes.Equal(got, want) {
				t.Errorf("%s: workers=%d grid differs from serial reference", name, workers)
			}
		}
		// The default (GOMAXPROCS) path is what Collect callers get.
		def, err := Collect(sys, b, space)
		if err != nil {
			t.Fatalf("%s default: %v", name, err)
		}
		if got := gridJSON(t, def); !bytes.Equal(got, want) {
			t.Errorf("%s: default-worker grid differs from serial reference", name)
		}
	}
}

func TestCollectContextCancelledBeforeStart(t *testing.T) {
	sys := sim.MustNew(sim.DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CollectContext(ctx, sys, smallBench(), freq.CoarseSpace(), CollectOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCollectContextCancelMidSweep(t *testing.T) {
	sys := sim.MustNew(sim.DefaultConfig())
	// The largest sweep available: every setting of the fine space for a
	// full-size benchmark, so cancellation strikes well before completion.
	b := workload.MustByName("gobmk")
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		g   *Grid
		err error
	}
	done := make(chan result, 1)
	go func() {
		g, err := CollectContext(ctx, sys, b, freq.FineSpace(), CollectOptions{Workers: 2})
		done <- result{g, err}
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	// Workers poll the context at every sample boundary, so the engine
	// must stop far inside one collection quantum (a full fine sweep),
	// not run the sweep to completion. The bound is a channel timeout, not
	// a wall-clock measurement: the determinism check bans time.Now/Since
	// here so timing jitter cannot mask race-ordering bugs.
	select {
	case r := <-done:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", r.err)
		}
		if r.g != nil {
			t.Error("cancelled collection returned a grid")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("collection did not return within 2s of cancellation, want far below one full sweep")
	}
}

func TestCollectOptionsWorkerResolution(t *testing.T) {
	cases := []struct {
		workers, settings, want int
	}{
		{0, 70, -1},  // default: GOMAXPROCS, capped below
		{-3, 70, -1}, // negative behaves as default
		{4, 70, 4},
		{16, 5, 5}, // capped at the chain count
		{1, 70, 1},
	}
	for _, c := range cases {
		got := CollectOptions{Workers: c.workers}.workers(c.settings)
		if c.want == -1 {
			if got < 1 || got > c.settings {
				t.Errorf("workers(%d, %d) = %d, want within [1,%d]", c.workers, c.settings, got, c.settings)
			}
			continue
		}
		if got != c.want {
			t.Errorf("workers(%d, %d) = %d, want %d", c.workers, c.settings, got, c.want)
		}
	}
}
