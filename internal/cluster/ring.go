// Package cluster turns mcdvfsd into a multi-node service: a consistent-
// hash ring shards the grid keyspace (benchmark, space, platform-config
// hash) across peers, a thin router in every node serves owned keys
// locally and proxies the rest to their owner, peer-aware singleflight
// coalesces a collection in flight anywhere in the cluster, and warm
// replicas answer with their cached copy (marked stale) when the owner
// sheds or stalls. See DESIGN.md §9.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-node vnode count. 192 points per node
// keeps the expected ownership imbalance across a handful of nodes within
// a few percent of uniform while the ring stays small enough that a
// lookup is one binary search over a few hundred points. (Measured on the
// 18-benchmark registry keyspace, weighting each benchmark by its sample
// count: 192 vnodes put the busiest of three nodes at ~40% of the load —
// a 2.5x ideal speedup — where 128 left it at 53%.)
const DefaultVirtualNodes = 192

// Ring is an immutable consistent-hash ring over opaque node IDs.
// Ownership is deterministic: the same (IDs, vnodes) always produces the
// same ring, so every node in a static cluster computes identical routing
// without any coordination. IDs are typically advertise URLs in
// production and stable logical names in the test harness.
type Ring struct {
	ids    []string
	vnodes int
	points []ringPoint // sorted by hash; ties broken by ID so order is total
}

type ringPoint struct {
	hash uint64
	id   string
}

// NewRing builds a ring over the given node IDs with vnodes virtual
// points per node (<= 0 selects DefaultVirtualNodes). IDs are
// deduplicated; at least one is required.
func NewRing(ids []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(ids))
	uniq := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if !seen[id] {
			seen[id] = true
			uniq = append(uniq, id)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sort.Strings(uniq)
	r := &Ring{ids: uniq, vnodes: vnodes, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for _, id := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", id, v)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// hash64 is fnv64a with a murmur-style 64-bit finalizer. Raw FNV of
// sequential short strings ("node3#0", "node3#1", ...) clusters badly —
// measured on a 4-node ring the last node's arc share came out 8%
// instead of 25% — and the finalizer's avalanche restores a near-uniform
// spread. Changing this function reassigns the whole keyspace; treat it
// as a frozen wire format (TestRingGoldenOwnership pins it).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Nodes returns the ring's member IDs, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}

// Len is the number of member nodes.
func (r *Ring) Len() int { return len(r.ids) }

// Contains reports ring membership.
func (r *Ring) Contains(id string) bool {
	i := sort.SearchStrings(r.ids, id)
	return i < len(r.ids) && r.ids[i] == id
}

// locate returns the index of the first ring point at or clockwise of
// key's hash, wrapping past the top of the hash space.
func (r *Ring) locate(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the node that owns key: the first virtual point clockwise
// of the key's hash.
func (r *Ring) Owner(key string) string {
	return r.points[r.locate(key)].id
}

// Replicas returns key's replica set, owner first, then the next n-1
// distinct nodes walking clockwise. Fewer than n nodes returns them all.
// The order is the warm-fallback preference order: when the owner sheds,
// routers try replicas in this sequence.
func (r *Ring) Replicas(key string, n int) []string {
	if n > len(r.ids) {
		n = len(r.ids)
	}
	if n <= 0 {
		n = 1
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.locate(key); len(out) < n && i < len(r.points); i++ {
		id := r.points[(start+i)%len(r.points)].id
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
