package cluster

// The in-flight key registry behind peer-aware singleflight. The owner of
// a key publishes the key for exactly the lifetime of its grid-cache
// flight (experiments.WithCollectSpan wired through serve.Config), and
// GET /v1/cluster/inflight exposes the snapshot. A proxy whose forward to
// the owner sheds or times out consults this list: a published key means
// the result is coming, so the right move is to wait and re-ask the owner
// — never to re-collect the same grid somewhere else.

import (
	"sort"
	"sync"
)

// inflightRegistry refcounts keys with an owned flight underway.
// Refcounting (rather than a set) keeps coarse and fine flights for the
// same benchmark independent — each key carries its space and config
// hash, but two distinct flights must never cancel each other's
// publication.
type inflightRegistry struct {
	mu   sync.Mutex
	keys map[string]int
}

func newInflightRegistry() *inflightRegistry {
	return &inflightRegistry{keys: make(map[string]int)}
}

// enter publishes key; the returned func withdraws it. Safe for
// concurrent use from every flight-owning goroutine.
func (r *inflightRegistry) enter(key string) (exit func()) {
	r.mu.Lock()
	r.keys[key]++
	r.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			if r.keys[key] <= 1 {
				delete(r.keys, key)
			} else {
				r.keys[key]--
			}
			r.mu.Unlock()
		})
	}
}

// snapshot returns the published keys, sorted for deterministic output.
func (r *inflightRegistry) snapshot() []string {
	r.mu.Lock()
	out := make([]string, 0, len(r.keys))
	for k := range r.keys {
		out = append(out, k)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// len is the gauge read for /metrics.
func (r *inflightRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.keys)
}
