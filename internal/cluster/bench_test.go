package cluster

// BenchmarkClusterGrid measures what the ring buys a steady-state
// deployment: aggregate grid-cache capacity. Every node runs with an LRU
// smaller than the 18-benchmark working set (MaxBenchmarks=8), and each
// iteration sweeps a schedule query (/v1/optimal — the paper's decision
// procedure, whose answer requires the benchmark's characterized grid)
// across the full registry, round-robin over the nodes. A single node
// thrashes: a sequential sweep over a too-small LRU is the adversarial
// case, every request evicts what the next one needs, so every query
// pays a full grid recollection. A 3-node ring shards the keyspace into
// per-node working sets that fit (≤8 keys each), so after warmup every
// query runs against a warm grid; the measured number still pays router
// and proxy costs on every request. The response memo is disabled
// (MemoSize=1) so the benchmark pins the grid path, not memoization; on
// multi-core hosts the ring additionally collects in parallel (one
// admission slot per node), but the capacity win is what is pinned here
// because it holds at any core count.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"mcdvfs/internal/serve"
	"mcdvfs/internal/workload"
)

func BenchmarkClusterGrid(b *testing.B) {
	for _, nodes := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			h, err := NewTestHarness(HarnessConfig{
				Nodes: nodes,
				Serve: serve.Config{
					PoolSize:       1,
					CollectWorkers: 1,
					QueueDepth:     64,
					MaxBenchmarks:  8,
					MemoSize:       1,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()

			benches := workload.Names()
			bodies := make([][]byte, len(benches))
			for i, bench := range benches {
				bodies[i], err = json.Marshal(serve.OptimalRequest{Benchmark: bench, Budget: 1.1})
				if err != nil {
					b.Fatal(err)
				}
			}
			client := &http.Client{}
			sweep := func() error {
				for j := range benches {
					resp, err := client.Post(h.URL(j%h.Len())+"/v1/optimal", "application/json", bytes.NewReader(bodies[j]))
					if err != nil {
						return err
					}
					_, err = io.Copy(io.Discard, resp.Body)
					//lint:allow errflow benchmark drains and closes a read-only body
					resp.Body.Close()
					if err != nil {
						return err
					}
					if resp.StatusCode != http.StatusOK {
						return fmt.Errorf("%s: status %d", benches[j], resp.StatusCode)
					}
				}
				return nil
			}

			// Warmup sweep: owners admit their shard into cache (or, for a
			// single node, establish the thrashing steady state).
			if err := sweep(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sweep(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
