package cluster

// Node is one cluster member: a full mcdvfsd (serve.Server) wrapped in a
// thin router. Requests routable by key — POST /v1/grid and /v1/optimal
// with a named benchmark — are served locally when this node owns the
// key and proxied to the owner otherwise; everything else (inline
// workloads, predictors, registry, health, metrics) is served locally.
//
// The routing invariants:
//
//   - Loop guard: a request carrying X-MCDVFS-Forwarded is never proxied
//     again. Under ring agreement it landed on the owner; under
//     disagreement (mid-rollout mixed peer lists) it is served where it
//     landed rather than bouncing.
//   - Peer-aware singleflight: proxies forward to the owner, whose Lab
//     singleflight coalesces every caller cluster-wide. If the forward
//     sheds or times out while the owner publishes the key in flight,
//     the proxy waits for that flight and re-asks — it never starts a
//     second collection for a key someone is already collecting.
//   - Warm-replica fallback: when the owner sheds (429) or is
//     unreachable and no flight is in sight, the proxy serves a
//     replica's cached copy, marked X-MCDVFS-Stale: maybe. Only cached
//     copies qualify — a fallback must never trigger a collection on a
//     non-owner.
//   - Drain: a draining node refuses newly proxied ring writes with 503
//     + X-MCDVFS-Draining so routers fail over to the next replica,
//     while flights already in progress finish under the normal
//     connection drain.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"mcdvfs/internal/serve"
	"mcdvfs/internal/trace"
)

// readGridJSON decodes a proxied grid body, validation included.
func readGridJSON(body []byte) (*trace.Grid, error) {
	return trace.ReadJSON(bytes.NewReader(body))
}

// Wire headers of the cluster protocol.
const (
	// HeaderForwarded carries the proxying node's ID; its presence is the
	// loop guard.
	HeaderForwarded = "X-MCDVFS-Forwarded"
	// HeaderCachedOnly asks a node to answer a grid request from its
	// completed cache or 404 — never to collect.
	HeaderCachedOnly = "X-MCDVFS-Cached-Only"
	// HeaderStale marks a response served from a warm replica instead of
	// the owner; its value is always "maybe" — the replica's copy was
	// valid when replicated, but the owner was not consulted.
	HeaderStale = "X-MCDVFS-Stale"
	// HeaderDraining marks a refusal from a draining node; routers treat
	// it as "fail over now".
	HeaderDraining = "X-MCDVFS-Draining"
	// HeaderNode names the node that actually served a routed response.
	HeaderNode = "X-MCDVFS-Node"
)

// Config assembles one node.
type Config struct {
	// Self is this node's ring ID. In production it is the advertise URL
	// and must appear in Peers.
	Self string
	// Peers maps every ring member's ID to its base URL, self included.
	Peers map[string]string
	// Replicas is the replica-set size per key, owner included. Each key
	// has Replicas-1 designated warm replicas. Default 2, clamped to the
	// cluster size.
	Replicas int
	// VirtualNodes is the ring's per-node vnode count; <= 0 selects
	// DefaultVirtualNodes.
	VirtualNodes int
	// ProxyTimeout bounds one forward to a peer. On expiry the proxy
	// consults the owner's in-flight list rather than failing outright.
	// Default 15s.
	ProxyTimeout time.Duration
	// InflightPoll is the interval at which a waiting proxy re-reads the
	// owner's in-flight list. Default 25ms.
	InflightPoll time.Duration
	// DrainHint is phase one of the two-phase drain: how long the node
	// keeps answering (refusing ring writes with the draining hint) after
	// shutdown begins, so peers observe the hint and fail over before the
	// listener closes. Default 250ms.
	DrainHint time.Duration
	// Serve configures the embedded daemon.
	Serve serve.Config
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 15 * time.Second
	}
	if c.InflightPoll <= 0 {
		c.InflightPoll = 25 * time.Millisecond
	}
	if c.DrainHint <= 0 {
		c.DrainHint = 250 * time.Millisecond
	}
	return c
}

// Node is one cluster member.
type Node struct {
	cfg      Config
	self     string
	ring     *Ring
	srv      *serve.Server
	inflight *inflightRegistry
	met      *clusterMetrics
	client   *http.Client
	mux      *http.ServeMux
	keyHash  map[string]string // space name -> platform config hash
	draining atomic.Bool
}

// NewNode builds a node and its embedded daemon. The ring is fixed at
// construction (static peer lists for now); every peer must build its
// ring from the same ID set to route identically.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	if _, ok := cfg.Peers[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: self %q missing from peer map", cfg.Self)
	}
	ids := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		ids = append(ids, id)
	}
	ring, err := NewRing(ids, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Replicas > ring.Len() {
		cfg.Replicas = ring.Len()
	}
	n := &Node{
		cfg:      cfg,
		self:     cfg.Self,
		ring:     ring,
		inflight: newInflightRegistry(),
		met:      &clusterMetrics{},
		client:   &http.Client{},
		mux:      http.NewServeMux(),
	}
	// The span publishes this node's flights to peers. It closes over n
	// before the embedded server exists; that is safe because flights only
	// start from HTTP handlers, which cannot run until NewNode returns.
	serveCfg := cfg.Serve
	serveCfg.CollectSpan = func(bench, space string) func() {
		return n.inflight.enter(n.gridKey(bench, space))
	}
	n.srv, err = serve.New(serveCfg)
	if err != nil {
		return nil, err
	}
	n.keyHash = make(map[string]string, 2)
	for _, space := range []string{"coarse", "fine"} {
		h, err := n.srv.Lab().GridKeyHash(space)
		if err != nil {
			return nil, err
		}
		n.keyHash[space] = h
	}
	n.routes()
	return n, nil
}

// Server exposes the embedded daemon (harnesses saturate its admission
// pool and reach its Lab through it).
func (n *Node) Server() *serve.Server { return n.srv }

// Ring exposes the node's routing ring.
func (n *Node) Ring() *Ring { return n.ring }

// ID returns the node's ring ID.
func (n *Node) ID() string { return n.self }

// gridKey is the cluster routing key: benchmark, space, and the platform
// config hash, so nodes simulating different platforms can never be
// conflated into one shard.
func (n *Node) gridKey(bench, space string) string {
	hash := ""
	if n.keyHash != nil {
		hash = n.keyHash[space]
	}
	return bench + "|" + space + "|" + hash
}

func (n *Node) peerURL(id string) string {
	return strings.TrimRight(n.cfg.Peers[id], "/")
}

func (n *Node) routes() {
	n.mux.HandleFunc("POST /v1/grid", func(w http.ResponseWriter, r *http.Request) {
		n.route(w, r, true)
	})
	n.mux.HandleFunc("POST /v1/optimal", func(w http.ResponseWriter, r *http.Request) {
		n.route(w, r, false)
	})
	n.mux.HandleFunc("GET /v1/cluster/ring", n.handleRing)
	n.mux.HandleFunc("GET /v1/cluster/inflight", n.handleInflight)
	n.mux.HandleFunc("GET /v1/cluster/metrics", n.handleClusterMetrics)
	n.mux.HandleFunc("GET /metrics", n.handleMetrics)
	n.mux.Handle("/", n.srv.Handler())
}

// Handler returns the node's root handler: the router in front of the
// embedded daemon.
func (n *Node) Handler() http.Handler { return n.mux }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// serveLocal dispatches to the embedded daemon, stamping which node
// served.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(HeaderNode, n.self)
	n.srv.Handler().ServeHTTP(w, r)
}

// routeProbe is the loose pre-parse of a routable body: only the routing
// fields matter here; the local handler re-decodes strictly.
type routeProbe struct {
	Benchmark string `json:"benchmark"`
	Space     string `json:"space"`
}

// route is the router for key-addressable endpoints. isGrid selects the
// grid-specific behaviors (cached-only serving, replica seeding, stale
// fallback); /v1/optimal shares the routing but never serves stale.
func (n *Node) route(w http.ResponseWriter, r *http.Request, isGrid bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	forwarded := r.Header.Get(HeaderForwarded)
	if forwarded != "" && n.draining.Load() {
		// Phase one of the drain: this node is leaving the ring, so newly
		// proxied writes are refused with the hint; the proxying router
		// fails over to the next replica. Requests from this node's own
		// clients still drain normally.
		n.met.drainRefusals.Add(1)
		w.Header().Set(HeaderDraining, "1")
		writeError(w, http.StatusServiceUnavailable, "node draining; fail over")
		return
	}

	var probe routeProbe
	_ = json.Unmarshal(body, &probe) // malformed bodies route local; the handler 400s
	space, ok := normalizeSpace(probe.Space)
	r.Body = io.NopCloser(bytes.NewReader(body))
	if probe.Benchmark == "" || !ok {
		// Inline workloads and invalid requests are not key-addressable.
		n.serveLocal(w, r)
		return
	}
	key := n.gridKey(probe.Benchmark, space)
	owner := n.ring.Owner(key)

	if owner == n.self || forwarded != "" {
		if forwarded != "" {
			n.met.forwardedServed.Add(1)
		}
		if isGrid && r.Header.Get(HeaderCachedOnly) != "" {
			n.serveCachedOnly(w, probe.Benchmark, space)
			return
		}
		n.serveLocal(w, r)
		return
	}
	n.proxy(w, r, body, key, probe.Benchmark, space, owner, isGrid)
}

// normalizeSpace maps request space names onto the two published spaces.
func normalizeSpace(name string) (string, bool) {
	switch name {
	case "", "coarse":
		return "coarse", true
	case "fine":
		return "fine", true
	default:
		return "", false
	}
}

// serveCachedOnly answers a grid request from the completed cache or
// refuses — the endpoint a proxy probes for warm copies, so it must never
// collect.
func (n *Node) serveCachedOnly(w http.ResponseWriter, bench, space string) {
	g, ok := n.srv.Lab().PeekGrid(bench, space)
	if !ok {
		writeError(w, http.StatusNotFound, "grid not cached on this node")
		return
	}
	w.Header().Set(HeaderNode, n.self)
	writeJSON(w, http.StatusOK, g)
}

// proxy forwards a routable request to its owner and supervises the
// outcome: relay on success (seeding a replica copy when this node is in
// the key's replica set), wait-and-retry when the owner publishes the key
// in flight, fail over past a draining owner, and fall back to a warm
// replica when the owner sheds.
func (n *Node) proxy(w http.ResponseWriter, r *http.Request, body []byte, key, bench, space, owner string, isGrid bool) {
	ctx := r.Context()
	n.met.proxied.Add(1)
	resp, err := n.forward(ctx, owner, r.URL.Path, r.Header.Get("Content-Type"), body)
	if err != nil {
		n.met.proxyErrors.Add(1)
		if ctx.Err() != nil {
			writeError(w, http.StatusGatewayTimeout, fmt.Sprintf("forward to %s: %v", owner, err))
			return
		}
		// The owner stalled or is unreachable. If it is still up and
		// publishes the key in flight, the collection is coming: wait on it
		// instead of re-collecting (peer-aware singleflight). Otherwise a
		// warm replica is the best answer left.
		if n.awaitOwnerFlight(ctx, owner, key) {
			if retry, rerr := n.forward(ctx, owner, r.URL.Path, r.Header.Get("Content-Type"), body); rerr == nil {
				if retry.status < 300 {
					n.relay(w, retry, bench, space, isGrid)
					return
				}
			}
		}
		if isGrid && n.serveStaleFallback(ctx, w, key, bench, space) {
			return
		}
		writeError(w, http.StatusBadGateway, fmt.Sprintf("forward to %s: %v", owner, err))
		return
	}

	switch {
	case resp.status == http.StatusTooManyRequests:
		// Owner saturated. A published in-flight key means a collection is
		// running there — wait for it, then re-ask (the retry lands on the
		// owner's warm cache). No flight in sight: serve a replica's warm
		// copy, marked stale; else pass the shed through, hint intact.
		if n.awaitOwnerFlight(ctx, owner, key) {
			if retry, rerr := n.forward(ctx, owner, r.URL.Path, r.Header.Get("Content-Type"), body); rerr == nil && retry.status < 300 {
				n.relay(w, retry, bench, space, isGrid)
				return
			}
		}
		if isGrid && n.serveStaleFallback(ctx, w, key, bench, space) {
			return
		}
		n.relay(w, resp, bench, space, false)
	case resp.status == http.StatusServiceUnavailable && resp.header.Get(HeaderDraining) != "":
		// The owner is leaving the ring: act as if it were gone and hand
		// the key to the next replica in preference order, forwarded so the
		// target serves it without re-proxying.
		n.met.drainFailovers.Add(1)
		for _, id := range n.ring.Replicas(key, n.ring.Len())[1:] {
			if id == n.self {
				r.Body = io.NopCloser(bytes.NewReader(body))
				n.met.forwardedServed.Add(1)
				n.serveLocal(w, r)
				return
			}
			if fo, ferr := n.forward(ctx, id, r.URL.Path, r.Header.Get("Content-Type"), body); ferr == nil && fo.status < 500 {
				n.relay(w, fo, bench, space, isGrid)
				return
			}
		}
		n.relay(w, resp, bench, space, false)
	default:
		n.relay(w, resp, bench, space, isGrid)
	}
}

// proxyResponse is one fully read peer response.
type proxyResponse struct {
	status int
	header http.Header
	body   []byte
}

// forward sends one request to a peer with the loop-guard header, bounded
// by ProxyTimeout, and reads the full response.
func (n *Node) forward(ctx context.Context, id, path, contentType string, body []byte) (*proxyResponse, error) {
	fctx, cancel := context.WithTimeout(ctx, n.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, n.peerURL(id)+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	req.Header.Set(HeaderForwarded, n.self)
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	//lint:allow errflow read-only response body; a close error after a full read carries no data loss
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &proxyResponse{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// relay writes a peer response through to the client, then — for
// successful grid responses on a designated replica — seeds the local
// cache so this node can serve the key warm if the owner later saturates.
func (n *Node) relay(w http.ResponseWriter, resp *proxyResponse, bench, space string, seed bool) {
	for _, h := range []string{"Content-Type", "Retry-After", HeaderNode, HeaderStale, HeaderDraining} {
		if v := resp.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body) // best effort: the peer response is already final
	if seed && resp.status == http.StatusOK {
		n.seedReplica(bench, space, resp.body)
	}
}

// seedReplica stores a proxied grid locally when this node is in the
// key's designated replica set. Decoding happens after the client already
// has its response, so replication never adds latency to the hot path.
func (n *Node) seedReplica(bench, space string, body []byte) {
	if !n.isReplica(n.gridKey(bench, space)) {
		return
	}
	if _, ok := n.srv.Lab().PeekGrid(bench, space); ok {
		return // already warm; skip the decode entirely
	}
	g, err := readGridJSON(body)
	if err != nil {
		return // not a grid body (error payload raced in); nothing to seed
	}
	if n.srv.Lab().SeedGrid(bench, space, g) {
		n.met.replicaSeeds.Add(1)
	}
}

// isReplica reports whether this node is a designated non-owner replica
// for key.
func (n *Node) isReplica(key string) bool {
	for _, id := range n.ring.Replicas(key, n.cfg.Replicas)[1:] {
		if id == n.self {
			return true
		}
	}
	return false
}

// serveStaleFallback answers from the warmest replica copy available —
// this node's own cache first, then cached-only probes of the other
// replicas in ring order — marked X-MCDVFS-Stale: maybe. Reports whether
// a response was written.
func (n *Node) serveStaleFallback(ctx context.Context, w http.ResponseWriter, key, bench, space string) bool {
	if g, ok := n.srv.Lab().PeekGrid(bench, space); ok {
		n.met.staleFallbacks.Add(1)
		w.Header().Set(HeaderNode, n.self)
		w.Header().Set(HeaderStale, "maybe")
		writeJSON(w, http.StatusOK, g)
		return true
	}
	for _, id := range n.ring.Replicas(key, n.ring.Len())[1:] {
		if id == n.self {
			continue
		}
		resp, err := n.forwardCachedOnly(ctx, id, bench, space)
		if err != nil || resp.status != http.StatusOK {
			continue
		}
		n.met.staleFallbacks.Add(1)
		for _, h := range []string{"Content-Type", HeaderNode} {
			if v := resp.header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.Header().Set(HeaderStale, "maybe")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(resp.body) // best effort: the replica response is already final
		return true
	}
	return false
}

// forwardCachedOnly asks a peer for its cached copy of a grid — never a
// collection.
func (n *Node) forwardCachedOnly(ctx context.Context, id, bench, space string) (*proxyResponse, error) {
	body, err := json.Marshal(serve.GridRequest{Benchmark: bench, Space: space})
	if err != nil {
		return nil, err
	}
	fctx, cancel := context.WithTimeout(ctx, n.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, n.peerURL(id)+"/v1/grid", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderForwarded, n.self)
	req.Header.Set(HeaderCachedOnly, "1")
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	//lint:allow errflow read-only response body; a close error after a full read carries no data loss
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &proxyResponse{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// awaitOwnerFlight implements the proxy side of peer-aware singleflight:
// if the owner currently publishes key in its in-flight list, poll until
// the flight ends (the result is then in the owner's cache) and report
// true — the caller should re-ask the owner. Reports false when no flight
// is visible, the owner is unreachable, or the caller's context ends.
func (n *Node) awaitOwnerFlight(ctx context.Context, owner, key string) bool {
	listed, err := n.ownerInflight(ctx, owner, key)
	if err != nil || !listed {
		return false
	}
	n.met.inflightWaits.Add(1)
	t := time.NewTicker(n.cfg.InflightPoll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
		}
		listed, err = n.ownerInflight(ctx, owner, key)
		if err != nil {
			return false
		}
		if !listed {
			return true
		}
	}
}

// InflightResponse is the JSON body of GET /v1/cluster/inflight.
type InflightResponse struct {
	Node string   `json:"node"`
	Keys []string `json:"keys"`
}

// ownerInflight reads a peer's published in-flight keys and reports
// whether key is among them.
func (n *Node) ownerInflight(ctx context.Context, owner, key string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.peerURL(owner)+"/v1/cluster/inflight", nil)
	if err != nil {
		return false, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return false, err
	}
	//lint:allow errflow read-only response body; decode errors surface through the Decoder below
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("cluster: %s inflight returned %d", owner, resp.StatusCode)
	}
	var out InflightResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return false, err
	}
	for _, k := range out.Keys {
		if k == key {
			return true, nil
		}
	}
	return false, nil
}

// handleInflight publishes this node's in-flight keys.
func (n *Node) handleInflight(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, InflightResponse{Node: n.self, Keys: n.inflight.snapshot()})
}

// RingResponse is the JSON body of GET /v1/cluster/ring.
type RingResponse struct {
	Self     string   `json:"self"`
	Nodes    []string `json:"nodes"`
	Replicas int      `json:"replicas"`
	VNodes   int      `json:"vnodes"`
	Draining bool     `json:"draining"`
}

// handleRing describes this node's view of the ring.
func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, RingResponse{
		Self:     n.self,
		Nodes:    n.ring.Nodes(),
		Replicas: n.cfg.Replicas,
		VNodes:   n.ring.vnodes,
		Draining: n.draining.Load(),
	})
}

// handleMetrics serves the embedded daemon's exposition with the cluster
// counters appended — one scrape shows both layers.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	n.srv.Handler().ServeHTTP(w, r)
	n.met.write(w, n.inflight.len(), n.ring.Len())
}

// BeginDrain starts phase one of the drain: newly proxied ring writes are
// refused with the draining hint (so peers fail over) and the embedded
// daemon's health check flips to 503. In-flight work, including proxied
// collections already past the router, continues.
func (n *Node) BeginDrain() {
	if n.draining.CompareAndSwap(false, true) {
		n.srv.BeginDrain()
	}
}

// Draining reports whether the drain has begun.
func (n *Node) Draining() bool { return n.draining.Load() }

// Run serves the node on addr until ctx is cancelled, then drains in two
// phases: first the node deregisters from the ring's write path — it
// keeps answering for DrainHint, refusing newly proxied writes with the
// draining hint so routers fail over — then the listener closes and
// in-flight requests get up to drain to finish. A nil error is a clean
// drain.
func (n *Node) Run(ctx context.Context, addr string, drain time.Duration) error {
	srv := &http.Server{Addr: addr, Handler: n.Handler()}
	errCh := make(chan error, 1)
	//lint:allow spawnescape http.Server is internally synchronized; Shutdown after ListenAndServe is its documented protocol
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return fmt.Errorf("cluster: %w", err)
	case <-ctx.Done():
	}
	n.BeginDrain()
	// Phase one: stay reachable while peers observe the hint. The timer
	// must survive the cancellation that triggered the drain.
	hint := time.NewTimer(n.cfg.DrainHint)
	defer hint.Stop()
	select {
	case <-hint.C:
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fmt.Errorf("cluster: %w", err)
		}
	}
	// Phase two: the embedded daemon's connection drain.
	shutCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), drain)
	defer cancel()
	return srv.Shutdown(shutCtx)
}
