package cluster

// Concurrent stress for the clusterMetrics counter set: many writers
// bumping every counter while /metrics-style renders run in parallel.
// Under `make loadtest-cluster` this executes with -race, so a plain
// read sneaking into write() or a torn counter shows up as a race
// report; without -race it still pins the snapshot semantics — every
// mid-flight render is internally sane and the final render is exact.

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"mcdvfs/internal/serve"
)

// counterNames maps exposition names to bump functions, covering the
// full counter set so a newly added counter that misses atomic access
// fails here instead of in production.
func metricsCounterOps(m *clusterMetrics) map[string]func() {
	return map[string]func(){
		"mcdvfsd_cluster_proxied_total":          func() { m.proxied.Add(1) },
		"mcdvfsd_cluster_forwarded_served_total": func() { m.forwardedServed.Add(1) },
		"mcdvfsd_cluster_proxy_errors_total":     func() { m.proxyErrors.Add(1) },
		"mcdvfsd_cluster_inflight_waits_total":   func() { m.inflightWaits.Add(1) },
		"mcdvfsd_cluster_stale_fallbacks_total":  func() { m.staleFallbacks.Add(1) },
		"mcdvfsd_cluster_replica_seeds_total":    func() { m.replicaSeeds.Add(1) },
		"mcdvfsd_cluster_drain_refusals_total":   func() { m.drainRefusals.Add(1) },
		"mcdvfsd_cluster_drain_failovers_total":  func() { m.drainFailovers.Add(1) },
	}
}

func TestClusterMetricsConcurrentRender(t *testing.T) {
	const (
		writers = 32
		bumps   = 200
	)
	var m clusterMetrics
	ops := metricsCounterOps(&m)

	done := make(chan struct{})
	var renders sync.WaitGroup
	renders.Add(1)
	//lint:allow spawnescape renderer only reads the atomic counters; done+Wait order the shutdown
	go func() {
		defer renders.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			// Render into Discard: the point is racing Load()s against
			// the writers, not the bytes.
			m.write(io.Discard, 1, 3)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		//lint:allow spawnescape workers only call atomic Add on the shared counters; wg.Wait orders the final read
		go func() {
			defer wg.Done()
			for n := 0; n < bumps; n++ {
				for _, bump := range ops {
					bump()
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	renders.Wait()

	var buf bytes.Buffer
	m.write(&buf, 7, 3)
	got, err := serve.ParseMetrics(&buf)
	if err != nil {
		t.Fatalf("ParseMetrics: %v", err)
	}
	for name := range ops {
		if got[name] != writers*bumps {
			t.Errorf("%s = %d after the join, want %d", name, got[name], writers*bumps)
		}
	}
	if got["mcdvfsd_cluster_inflight_keys"] != 7 || got["mcdvfsd_cluster_nodes"] != 3 {
		t.Errorf("gauges = %d/%d, want 7/3", got["mcdvfsd_cluster_inflight_keys"], got["mcdvfsd_cluster_nodes"])
	}
}

// TestClusterMetricsMonotonicUnderWriters interleaves full renders with
// the writer storm and requires every observed counter value to be
// monotonically non-decreasing and never past the final total — the
// observable contract of per-counter atomic snapshots (the render is a
// per-counter snapshot, not a cross-counter transaction).
func TestClusterMetricsMonotonicUnderWriters(t *testing.T) {
	const (
		writers = 32
		bumps   = 100
		samples = 50
	)
	var m clusterMetrics
	ops := metricsCounterOps(&m)

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		//lint:allow spawnescape workers only call atomic Add on the shared counters; wg.Wait orders the final read
		go func() {
			defer wg.Done()
			for n := 0; n < bumps; n++ {
				for _, bump := range ops {
					bump()
				}
			}
		}()
	}

	last := make(map[string]int64)
	for s := 0; s < samples; s++ {
		var buf bytes.Buffer
		m.write(&buf, 0, 0)
		got, err := serve.ParseMetrics(&buf)
		if err != nil {
			t.Fatalf("ParseMetrics (sample %d): %v", s, err)
		}
		for name := range ops {
			v := got[name]
			if v < last[name] {
				t.Fatalf("%s went backwards mid-flight: %d then %d", name, last[name], v)
			}
			if v > writers*bumps {
				t.Fatalf("%s = %d mid-flight, beyond the possible total %d", name, v, writers*bumps)
			}
			last[name] = v
		}
	}
	wg.Wait()

	var buf bytes.Buffer
	m.write(&buf, 0, 0)
	got, err := serve.ParseMetrics(&buf)
	if err != nil {
		t.Fatalf("ParseMetrics (final): %v", err)
	}
	for name := range ops {
		if got[name] != writers*bumps {
			t.Errorf("%s = %d after the join, want %d", name, got[name], writers*bumps)
		}
	}
}
