package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRingGoldenOwnership pins the ring function itself: the same IDs and
// vnode count must route the same keys to the same owners on every node
// of every build, forever — ownership drift would strand every node's
// cache and split singleflight across the cluster. The table was
// generated once from the 18-benchmark registry keyspace at
// DefaultVirtualNodes; a failure here means the hash or point layout
// changed, which is a routing-compatibility break, not a refactor.
func TestRingGoldenOwnership(t *testing.T) {
	r, err := NewRing([]string{"node0", "node1", "node2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		"astar|coarse":      "node2",
		"astar|fine":        "node0",
		"bzip2|coarse":      "node0",
		"bzip2|fine":        "node0",
		"calculix|coarse":   "node2",
		"calculix|fine":     "node0",
		"gcc|coarse":        "node2",
		"gcc|fine":          "node2",
		"gemsfdtd|coarse":   "node2",
		"gemsfdtd|fine":     "node2",
		"gobmk|coarse":      "node2",
		"gobmk|fine":        "node2",
		"h264ref|coarse":    "node2",
		"h264ref|fine":      "node1",
		"hmmer|coarse":      "node2",
		"hmmer|fine":        "node2",
		"lbm|coarse":        "node2",
		"lbm|fine":          "node0",
		"leslie3d|coarse":   "node1",
		"leslie3d|fine":     "node1",
		"libquantum|coarse": "node1",
		"libquantum|fine":   "node2",
		"mcf|coarse":        "node2",
		"mcf|fine":          "node1",
		"milc|coarse":       "node2",
		"milc|fine":         "node0",
		"namd|coarse":       "node0",
		"namd|fine":         "node0",
		"omnetpp|coarse":    "node2",
		"omnetpp|fine":      "node0",
		"povray|coarse":     "node2",
		"povray|fine":       "node0",
		"sjeng|coarse":      "node1",
		"sjeng|fine":        "node0",
		"soplex|coarse":     "node2",
		"soplex|fine":       "node1",
	}
	for key, want := range golden {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%q) = %q, want %q", key, got, want)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("NewRing(nil) succeeded, want error")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("NewRing with empty ID succeeded, want error")
	}
	r, err := NewRing([]string{"b", "a", "b"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Nodes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Nodes() = %v, want deduplicated sorted [a b]", got)
	}
	if !r.Contains("a") || r.Contains("c") {
		t.Error("Contains is wrong")
	}
}

// TestRingKeyMovementOnJoin checks the property consistent hashing exists
// for: adding a node moves only the keys the new node takes, and that
// share is close to 1/new-size — it never reshuffles keys between
// surviving nodes.
func TestRingKeyMovementOnJoin(t *testing.T) {
	ids := []string{"node0", "node1", "node2"}
	before, err := NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(append(ids, "node3"), 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const keys = 10000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("bench%d|coarse|%016x", i, rng.Uint64())
		was, now := before.Owner(key), after.Owner(key)
		if was == now {
			continue
		}
		if now != "node3" {
			t.Fatalf("key %q moved %s -> %s: only the joining node may gain keys", key, was, now)
		}
		moved++
	}
	// The joiner should take about a quarter of the keyspace; allow a wide
	// band since 256 vnodes still carry a few percent imbalance.
	if frac := float64(moved) / keys; frac < 0.15 || frac > 0.35 {
		t.Errorf("join moved %.1f%% of keys, want roughly 25%%", 100*frac)
	}
}

// TestRingKeyMovementOnLeave is the inverse: removing a node reassigns
// only that node's keys.
func TestRingKeyMovementOnLeave(t *testing.T) {
	before, err := NewRing([]string{"node0", "node1", "node2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"node0", "node2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("bench%d|fine|%016x", i, rng.Uint64())
		was, now := before.Owner(key), after.Owner(key)
		if was != "node1" && was != now {
			t.Fatalf("key %q moved %s -> %s although its owner stayed in the ring", key, was, now)
		}
		if was == "node1" && now == "node1" {
			t.Fatalf("key %q still owned by the removed node", key)
		}
	}
}

// TestRingReplicas checks the replica walk: owner first, all distinct,
// clamped to the cluster, and stable under repetition.
func TestRingReplicas(t *testing.T) {
	r, err := NewRing([]string{"node0", "node1", "node2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		reps := r.Replicas(key, 2)
		if len(reps) != 2 {
			t.Fatalf("Replicas(%q, 2) = %v, want 2 nodes", key, reps)
		}
		if reps[0] != r.Owner(key) {
			t.Fatalf("Replicas(%q)[0] = %q, want owner %q", key, reps[0], r.Owner(key))
		}
		if reps[0] == reps[1] {
			t.Fatalf("Replicas(%q) = %v, want distinct nodes", key, reps)
		}
		all := r.Replicas(key, 99)
		if len(all) != 3 {
			t.Fatalf("Replicas(%q, 99) = %v, want the whole cluster", key, all)
		}
		seen := map[string]bool{}
		for _, id := range all {
			if seen[id] {
				t.Fatalf("Replicas(%q, 99) = %v repeats %q", key, all, id)
			}
			seen[id] = true
		}
	}
}
