package cluster

// TestHarness stands up an in-process N-node cluster over
// httptest.Servers. Node IDs are stable logical names ("node0",
// "node1", ...) rather than the listeners' random URLs, so ring
// ownership — and therefore every test's routing — is identical run to
// run; the peer map translates IDs to the ephemeral URLs.
//
// Construction has a chicken-and-egg shape: every node needs the full
// ID→URL peer map, but a listener's URL only exists once its server is
// up. The harness resolves it by starting each listener behind a
// swappable handler that answers 503 until the real node is installed.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"

	"mcdvfs/internal/serve"
)

// swapHandler is an http.Handler whose target can be installed after the
// listener is already serving.
type swapHandler struct {
	h atomic.Pointer[http.Handler]
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := s.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "cluster: node not ready", http.StatusServiceUnavailable)
}

// HarnessConfig shapes a test cluster.
type HarnessConfig struct {
	// Nodes is the cluster size; <= 0 selects 3.
	Nodes int
	// Replicas, VirtualNodes, ProxyTimeout, InflightPoll, and DrainHint
	// are applied to every node's Config (zero values select the node
	// defaults).
	Replicas     int
	VirtualNodes int
	// Serve seeds every node's embedded daemon config. Each node gets its
	// own copy; CollectSpan is overwritten by the node.
	Serve serve.Config
	// Mutate, when set, edits node i's assembled Config before NewNode —
	// the hook for per-node tweaks like a tiny ProxyTimeout on one proxy.
	Mutate func(i int, cfg *Config)
}

// TestHarness is a running in-process cluster.
type TestHarness struct {
	nodes   []*Node
	servers []*httptest.Server
	urls    map[string]string // logical ID -> listener URL
}

// NewTestHarness starts the cluster. Callers own Close.
func NewTestHarness(cfg HarnessConfig) (*TestHarness, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	h := &TestHarness{urls: make(map[string]string, cfg.Nodes)}
	swaps := make([]*swapHandler, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		h.servers = append(h.servers, ts)
		h.urls[nodeID(i)] = ts.URL
	}
	for i := 0; i < cfg.Nodes; i++ {
		peers := make(map[string]string, cfg.Nodes)
		for id, url := range h.urls {
			peers[id] = url
		}
		ncfg := Config{
			Self:         nodeID(i),
			Peers:        peers,
			Replicas:     cfg.Replicas,
			VirtualNodes: cfg.VirtualNodes,
			Serve:        cfg.Serve,
		}
		if cfg.Mutate != nil {
			cfg.Mutate(i, &ncfg)
		}
		n, err := NewNode(ncfg)
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("cluster: harness node %d: %w", i, err)
		}
		h.nodes = append(h.nodes, n)
		handler := n.Handler()
		swaps[i].h.Store(&handler)
	}
	return h, nil
}

func nodeID(i int) string { return fmt.Sprintf("node%d", i) }

// Close shuts every listener down.
func (h *TestHarness) Close() {
	for _, ts := range h.servers {
		ts.Close()
	}
}

// Len is the cluster size.
func (h *TestHarness) Len() int { return len(h.nodes) }

// Node returns node i.
func (h *TestHarness) Node(i int) *Node { return h.nodes[i] }

// URL returns node i's base URL.
func (h *TestHarness) URL(i int) string { return h.servers[i].URL }

// URLs returns every node's base URL in node order.
func (h *TestHarness) URLs() []string {
	out := make([]string, len(h.servers))
	for i, ts := range h.servers {
		out[i] = ts.URL
	}
	return out
}

// NodeFor returns the index of the node owning key's benchmark/space on
// the harness ring (every node shares one ring, so node 0's view is the
// cluster's).
func (h *TestHarness) NodeFor(bench, space string) int {
	owner := h.nodes[0].ring.Owner(h.nodes[0].gridKey(bench, space))
	for i := range h.nodes {
		if h.nodes[i].self == owner {
			return i
		}
	}
	return -1
}
