package cluster

// Cluster-layer observability: the node's own routing counters (appended
// to the embedded daemon's /metrics exposition) and the cluster-wide
// aggregation endpoint, GET /v1/cluster/metrics, which scrapes every
// peer's /metrics, sums the shared counter set, and reports the per-node
// breakdown — one scrape shows whether coalescing is absorbing demand
// across the whole ring.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"mcdvfs/internal/serve"
)

// clusterMetrics is the node's routing counter set, exported under
// mcdvfsd_cluster_* next to the daemon's own counters.
type clusterMetrics struct {
	proxied         atomic.Int64 // requests this node forwarded to a key's owner
	forwardedServed atomic.Int64 // forwarded requests this node served as owner (or loop-guard target)
	proxyErrors     atomic.Int64 // forwards that failed at the transport layer or timed out
	inflightWaits   atomic.Int64 // times a proxy waited on an owner-published in-flight key
	staleFallbacks  atomic.Int64 // responses served from a warm replica, marked stale
	replicaSeeds    atomic.Int64 // grids this node stored as a designated replica
	drainRefusals   atomic.Int64 // proxied ring writes refused because this node is draining
	drainFailovers  atomic.Int64 // proxied requests this node re-routed past a draining owner
}

// write renders the exposition lines. Gauges come from the node.
func (m *clusterMetrics) write(w io.Writer, inflightKeys, ringNodes int) {
	counter := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	gauge := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, v)
	}
	counter("mcdvfsd_cluster_proxied_total", m.proxied.Load())
	counter("mcdvfsd_cluster_forwarded_served_total", m.forwardedServed.Load())
	counter("mcdvfsd_cluster_proxy_errors_total", m.proxyErrors.Load())
	counter("mcdvfsd_cluster_inflight_waits_total", m.inflightWaits.Load())
	counter("mcdvfsd_cluster_stale_fallbacks_total", m.staleFallbacks.Load())
	counter("mcdvfsd_cluster_replica_seeds_total", m.replicaSeeds.Load())
	counter("mcdvfsd_cluster_drain_refusals_total", m.drainRefusals.Load())
	counter("mcdvfsd_cluster_drain_failovers_total", m.drainFailovers.Load())
	gauge("mcdvfsd_cluster_inflight_keys", int64(inflightKeys))
	gauge("mcdvfsd_cluster_nodes", int64(ringNodes))
}

// ClusterMetricsResponse is the JSON body of GET /v1/cluster/metrics.
type ClusterMetricsResponse struct {
	// Nodes maps node ID to that node's full counter set.
	Nodes map[string]map[string]int64 `json:"nodes"`
	// Total sums every counter observed on any node. Gauges sum too —
	// e.g. cluster-wide in-flight requests.
	Total map[string]int64 `json:"total"`
	// Errors maps unreachable node IDs to the scrape failure. A partial
	// aggregation is still served; the caller sees exactly which nodes
	// are dark.
	Errors map[string]string `json:"errors,omitempty"`
}

// handleClusterMetrics scrapes every ring member's /metrics concurrently
// and serves the summed view with per-node breakdown.
func (n *Node) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	ids := n.ring.Nodes()
	type scrape struct {
		id  string
		m   map[string]int64
		err error
	}
	results := make([]scrape, len(ids))
	// The request context is resolved once here rather than inside each
	// goroutine: ctx is a synchronized-by-type capture, while r escaping
	// into every scrape goroutine is opaque to the spawn audit.
	ctx := r.Context()
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		//lint:allow spawnescape each goroutine writes only its own results index; wg.Wait orders the reads
		go func(i int, id string) {
			defer wg.Done()
			m, err := n.scrapePeer(ctx, id)
			results[i] = scrape{id: id, m: m, err: err}
		}(i, id)
	}
	wg.Wait()

	resp := ClusterMetricsResponse{
		Nodes: make(map[string]map[string]int64),
		Total: make(map[string]int64),
	}
	for _, s := range results {
		if s.err != nil {
			if resp.Errors == nil {
				resp.Errors = make(map[string]string)
			}
			resp.Errors[s.id] = s.err.Error()
			continue
		}
		resp.Nodes[s.id] = s.m
		names := make([]string, 0, len(s.m))
		for name := range s.m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			resp.Total[name] += s.m[name]
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// scrapePeer fetches and parses one ring member's /metrics.
func (n *Node) scrapePeer(ctx context.Context, id string) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.peerURL(id)+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	//lint:allow errflow read-only response body; parse errors surface through ParseMetrics
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s /metrics returned %d", id, resp.StatusCode)
	}
	return serve.ParseMetrics(resp.Body)
}
