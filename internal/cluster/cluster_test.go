package cluster

// In-process cluster suite over the TestHarness. The contention-sensitive
// cases are deterministic the same way the serve suite's are: admission
// pools are filled by hand (Server.AcquireCollectSlot), flights are
// observed through the published in-flight list rather than sleeps, and
// outcomes are asserted through the same /metrics counters production
// monitoring reads.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mcdvfs/internal/serve"
	"mcdvfs/internal/trace"
	"mcdvfs/internal/workload"
)

// post sends one JSON request to url+path with optional extra headers.
func post(t *testing.T, url, path string, v any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, val := range hdr {
		req.Header.Set(k, val)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s%s: %v", url, path, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatalf("GET %s%s: %v", url, path, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// metric scrapes one counter from a node's /metrics.
func metric(t *testing.T, url, name string) int64 {
	t.Helper()
	resp, data := get(t, url, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v int64
			fmt.Sscanf(fields[1], "%d", &v)
			return v
		}
	}
	return 0
}

// sumMetric sums one counter across every harness node.
func sumMetric(t *testing.T, h *TestHarness, name string) int64 {
	t.Helper()
	var total int64
	for i := 0; i < h.Len(); i++ {
		total += metric(t, h.URL(i), name)
	}
	return total
}

// benchesOwnedBy returns registry benchmarks whose coarse key the given
// harness node owns.
func benchesOwnedBy(h *TestHarness, idx int) []string {
	var out []string
	for _, b := range workload.Names() {
		if h.NodeFor(b, "coarse") == idx {
			out = append(out, b)
		}
	}
	return out
}

// waitFor polls cond until true or the deadline, without asserting — the
// caller decides what a timeout means.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// TestClusterRouting checks the routing plumbing end to end: every node
// answers /v1/cluster/ring with the same membership, a request for an
// owned key is served in place, and a request landing on a non-owner
// comes back stamped with the owner's ID.
func TestClusterRouting(t *testing.T) {
	h, err := NewTestHarness(HarnessConfig{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	for i := 0; i < 3; i++ {
		resp, data := get(t, h.URL(i), "/v1/cluster/ring")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d ring status %d", i, resp.StatusCode)
		}
		var ring RingResponse
		if err := json.Unmarshal(data, &ring); err != nil {
			t.Fatal(err)
		}
		if len(ring.Nodes) != 3 || ring.Self != nodeID(i) || ring.Draining {
			t.Errorf("node %d ring = %+v", i, ring)
		}
	}

	const bench = "milc"
	ownerIdx := h.NodeFor(bench, "coarse")
	if ownerIdx < 0 {
		t.Fatal("no owner found")
	}
	proxyIdx := (ownerIdx + 1) % 3
	resp, data := post(t, h.URL(proxyIdx), "/v1/grid", serve.GridRequest{Benchmark: bench}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied grid status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(HeaderNode); got != nodeID(ownerIdx) {
		t.Errorf("served by %q, want owner %q", got, nodeID(ownerIdx))
	}
	if _, err := trace.ReadJSON(bytes.NewReader(data)); err != nil {
		t.Errorf("proxied grid body invalid: %v", err)
	}
	if got := metric(t, h.URL(proxyIdx), "mcdvfsd_cluster_proxied_total"); got != 1 {
		t.Errorf("proxied_total = %d, want 1", got)
	}
	if got := metric(t, h.URL(ownerIdx), "mcdvfsd_cluster_forwarded_served_total"); got != 1 {
		t.Errorf("forwarded_served_total = %d, want 1", got)
	}

	// A second request from the same proxy must not proxy again for a
	// locally owned key: send one the proxy owns.
	ownBench := benchesOwnedBy(h, proxyIdx)
	if len(ownBench) == 0 {
		t.Fatal("proxy node owns no benchmark")
	}
	resp, data = post(t, h.URL(proxyIdx), "/v1/grid", serve.GridRequest{Benchmark: ownBench[0]}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("local grid status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(HeaderNode); got != nodeID(proxyIdx) {
		t.Errorf("owned key served by %q, want local %q", got, nodeID(proxyIdx))
	}
}

// TestClusterCoalescing64 is the tentpole acceptance case: 64 concurrent
// clients spread across 3 nodes all demanding the same grid must cost the
// cluster exactly one collection — routing concentrates every caller on
// the owner, whose singleflight coalesces them.
func TestClusterCoalescing64(t *testing.T) {
	h, err := NewTestHarness(HarnessConfig{
		Nodes: 3,
		// This case pins coalescing, not timeout recovery: under the race
		// detector, streaming 64 copies of the grid out of one process can
		// outlast the default proxy timeout, and a timed-out forward would
		// legitimately fall back — so give forwards all the time they need.
		Mutate: func(i int, cfg *Config) { cfg.ProxyTimeout = 2 * time.Minute },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const bench = "milc"
	const clients = 64
	var wg sync.WaitGroup
	codes := make([]int, clients)
	servedBy := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := post(t, h.URL(i%3), "/v1/grid", serve.GridRequest{Benchmark: bench}, nil)
			codes[i] = resp.StatusCode
			servedBy[i] = resp.Header.Get(HeaderNode)
		}(i)
	}
	wg.Wait()

	owner := nodeID(h.NodeFor(bench, "coarse"))
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if servedBy[i] != owner {
			t.Errorf("client %d served by %q, want owner %q", i, servedBy[i], owner)
		}
	}
	if got := sumMetric(t, h, "mcdvfsd_grid_collections_total"); got != 1 {
		t.Errorf("cluster-wide collections = %d, want exactly 1 for %d identical requests", got, clients)
	}
	if got := sumMetric(t, h, "mcdvfsd_grid_requests_total"); got != clients {
		t.Errorf("cluster-wide grid requests = %d, want %d", got, clients)
	}
}

// TestClusterMetricsAggregation checks GET /v1/cluster/metrics: every
// node appears, totals are the column sums of the per-node breakdown, and
// a dark node degrades to a partial aggregation with the failure named.
func TestClusterMetricsAggregation(t *testing.T) {
	h, err := NewTestHarness(HarnessConfig{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Generate a little cross-node traffic first.
	for _, bench := range []string{"milc", "gcc", "astar"} {
		resp, data := post(t, h.URL(0), "/v1/grid", serve.GridRequest{Benchmark: bench}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("grid %s status %d: %s", bench, resp.StatusCode, data)
		}
	}

	resp, data := get(t, h.URL(1), "/v1/cluster/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster metrics status %d", resp.StatusCode)
	}
	var agg ClusterMetricsResponse
	if err := json.Unmarshal(data, &agg); err != nil {
		t.Fatal(err)
	}
	if len(agg.Nodes) != 3 || len(agg.Errors) != 0 {
		t.Fatalf("aggregation nodes=%d errors=%v, want 3 nodes and no errors", len(agg.Nodes), agg.Errors)
	}
	for _, name := range []string{"mcdvfsd_grid_collections_total", "mcdvfsd_cluster_proxied_total"} {
		var sum int64
		for _, m := range agg.Nodes {
			sum += m[name]
		}
		if agg.Total[name] != sum {
			t.Errorf("Total[%s] = %d, want per-node sum %d", name, agg.Total[name], sum)
		}
	}
	if agg.Total["mcdvfsd_grid_collections_total"] != 3 {
		t.Errorf("collections total = %d, want 3 (one per benchmark)", agg.Total["mcdvfsd_grid_collections_total"])
	}

	// Kill one node; the aggregation must degrade, not fail.
	h.servers[2].Close()
	resp, data = get(t, h.URL(0), "/v1/cluster/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial cluster metrics status %d", resp.StatusCode)
	}
	agg = ClusterMetricsResponse{}
	if err := json.Unmarshal(data, &agg); err != nil {
		t.Fatal(err)
	}
	if len(agg.Nodes) != 2 {
		t.Errorf("partial aggregation has %d nodes, want 2", len(agg.Nodes))
	}
	if _, ok := agg.Errors[nodeID(2)]; !ok {
		t.Errorf("dark node missing from Errors: %v", agg.Errors)
	}
}

// TestCachedOnlyProbeNeverCollects pins the warm-replica probe contract:
// a cached-only request against a cold node refuses instead of
// collecting. A probe that could trigger a collection would let owner
// saturation fan work out to every replica — the exact failure mode the
// ring exists to prevent.
func TestCachedOnlyProbeNeverCollects(t *testing.T) {
	h, err := NewTestHarness(HarnessConfig{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const bench = "milc"
	ownerIdx := h.NodeFor(bench, "coarse")
	resp, data := post(t, h.URL(ownerIdx), "/v1/grid", serve.GridRequest{Benchmark: bench},
		map[string]string{HeaderForwarded: "node9", HeaderCachedOnly: "1"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold cached-only probe status %d (%s), want 404", resp.StatusCode, data)
	}
	if got := sumMetric(t, h, "mcdvfsd_grid_collections_total"); got != 0 {
		t.Errorf("collections = %d after cached-only probe, want 0", got)
	}
}

// TestWarmReplicaStaleFallback is the owner-saturation acceptance case: a
// replica holding a seeded copy answers for a shedding owner, marked
// stale; a key with no warm copy relays the shed untouched.
func TestWarmReplicaStaleFallback(t *testing.T) {
	h, err := NewTestHarness(HarnessConfig{
		Nodes:    3,
		Replicas: 2,
		Serve:    serve.Config{PoolSize: 1, QueueDepth: -1, RetryAfter: 7 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const bench = "milc"
	ownerIdx := h.NodeFor(bench, "coarse")
	ownerNode := h.Node(ownerIdx)
	key := ownerNode.gridKey(bench, "coarse")
	reps := ownerNode.ring.Replicas(key, 2)
	var repIdx, proxyIdx = -1, -1
	for i := 0; i < 3; i++ {
		switch nodeID(i) {
		case reps[0]:
		case reps[1]:
			repIdx = i
		default:
			proxyIdx = i
		}
	}
	if repIdx < 0 || proxyIdx < 0 {
		t.Fatalf("degenerate replica layout: %v", reps)
	}

	// Warm the replica organically: a proxied 200 through it seeds its
	// local cache.
	resp, data := post(t, h.URL(repIdx), "/v1/grid", serve.GridRequest{Benchmark: bench}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d: %s", resp.StatusCode, data)
	}
	if !waitFor(t, 2*time.Second, func() bool {
		return metric(t, h.URL(repIdx), "mcdvfsd_cluster_replica_seeds_total") == 1
	}) {
		t.Fatal("replica never seeded its copy")
	}

	// Make the owner need a collection again, then saturate it.
	ownerNode.Server().Lab().Forget(bench)
	release, err := ownerNode.Server().AcquireCollectSlot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// Through a third node: the owner sheds, no flight is published, so
	// the router serves the replica's warm copy marked stale.
	resp, data = post(t, h.URL(proxyIdx), "/v1/grid", serve.GridRequest{Benchmark: bench}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(HeaderStale); got != "maybe" {
		t.Errorf("stale header %q, want maybe", got)
	}
	if got := resp.Header.Get(HeaderNode); got != nodeID(repIdx) {
		t.Errorf("fallback served by %q, want replica %q", got, nodeID(repIdx))
	}
	if _, err := trace.ReadJSON(bytes.NewReader(data)); err != nil {
		t.Errorf("fallback grid invalid: %v", err)
	}
	if got := metric(t, h.URL(proxyIdx), "mcdvfsd_cluster_stale_fallbacks_total"); got != 1 {
		t.Errorf("stale_fallbacks_total = %d, want 1", got)
	}

	// A different key owned by the same saturated node has no warm copy
	// anywhere: the shed relays through, Retry-After intact.
	others := benchesOwnedBy(h, ownerIdx)
	var cold string
	for _, b := range others {
		if b != bench {
			cold = b
			break
		}
	}
	if cold == "" {
		t.Skip("owner owns only one benchmark")
	}
	resp, data = post(t, h.URL(proxyIdx), "/v1/grid", serve.GridRequest{Benchmark: cold}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("cold shed status %d (%s), want 429", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("relayed Retry-After %q, want 7", got)
	}
}

// TestProxyWaitsOnOwnerInflight pins the peer-aware singleflight edge: a
// proxy whose forward times out while the owner's collection is still
// running must wait for that flight and re-ask — never re-collect.
func TestProxyWaitsOnOwnerInflight(t *testing.T) {
	h, err := NewTestHarness(HarnessConfig{
		Nodes: 3,
		Serve: serve.Config{PoolSize: 1},
		// The tiny proxy timeout forces the forward to expire while the
		// owner's slot is held — the flight itself is blocked on the pool,
		// so any finite timeout fires deterministically. It still has to
		// leave room for the retry to stream the finished grid back, which
		// under the race detector takes real time.
		Mutate: func(i int, cfg *Config) {
			cfg.ProxyTimeout = time.Second
			cfg.InflightPoll = 5 * time.Millisecond
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const bench = "milc"
	ownerIdx := h.NodeFor(bench, "coarse")
	ownerNode := h.Node(ownerIdx)
	proxyIdx := (ownerIdx + 1) % 3
	key := ownerNode.gridKey(bench, "coarse")

	// Hold the owner's only slot, then start a flight that queues on it.
	release, err := ownerNode.Server().AcquireCollectSlot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	flightDone := make(chan int, 1)
	go func() {
		resp, _ := post(t, h.URL(ownerIdx), "/v1/grid", serve.GridRequest{Benchmark: bench}, nil)
		flightDone <- resp.StatusCode
	}()
	if !waitFor(t, 5*time.Second, func() bool {
		for _, k := range ownerNode.inflight.snapshot() {
			if k == key {
				return true
			}
		}
		return false
	}) {
		release()
		t.Fatal("owner never published the flight")
	}

	// The proxied request joins the stalled flight, times out at 150ms,
	// sees the published key, and waits. Release the slot once the wait is
	// observable; the retry must then hit the owner's warm cache.
	proxyDone := make(chan struct{})
	var resp *http.Response
	var respBody []byte
	go func() {
		defer close(proxyDone)
		resp, respBody = post(t, h.URL(proxyIdx), "/v1/grid", serve.GridRequest{Benchmark: bench}, nil)
	}()
	if !waitFor(t, 5*time.Second, func() bool {
		return h.Node(proxyIdx).met.inflightWaits.Load() == 1
	}) {
		release()
		t.Fatal("proxy never entered the in-flight wait")
	}
	release()

	select {
	case <-proxyDone:
	case <-time.After(10 * time.Second):
		t.Fatal("proxied request never completed")
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied status %d, want 200 after in-flight wait: %s", resp.StatusCode, respBody)
	}
	if code := <-flightDone; code != http.StatusOK {
		t.Fatalf("direct flight status %d", code)
	}
	if got := sumMetric(t, h, "mcdvfsd_grid_collections_total"); got != 1 {
		t.Errorf("collections = %d, want 1 — the waiting proxy must not re-collect", got)
	}
}

// TestDrainRefusalAndFailover is the graceful-drain acceptance case: a
// draining node keeps serving its in-flight proxied collection but
// refuses new proxied ring writes, and the refusing hint makes the router
// fail over to the next replica.
func TestDrainRefusalAndFailover(t *testing.T) {
	h, err := NewTestHarness(HarnessConfig{
		Nodes: 3,
		Serve: serve.Config{PoolSize: 1, QueueDepth: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Two benchmarks owned by the same node: one in flight when the drain
	// begins, one arriving after.
	var ownerIdx int
	var owned []string
	for i := 0; i < 3; i++ {
		if owned = benchesOwnedBy(h, i); len(owned) >= 2 {
			ownerIdx = i
			break
		}
	}
	if len(owned) < 2 {
		t.Fatal("no node owns two benchmarks")
	}
	ownerNode := h.Node(ownerIdx)
	proxyIdx := (ownerIdx + 1) % 3
	inflightBench, lateBench := owned[0], owned[1]

	release, err := ownerNode.Server().AcquireCollectSlot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	inflightDone := make(chan *http.Response, 1)
	go func() {
		resp, _ := post(t, h.URL(proxyIdx), "/v1/grid", serve.GridRequest{Benchmark: inflightBench}, nil)
		inflightDone <- resp
	}()
	key := ownerNode.gridKey(inflightBench, "coarse")
	if !waitFor(t, 5*time.Second, func() bool {
		for _, k := range ownerNode.inflight.snapshot() {
			if k == key {
				return true
			}
		}
		return false
	}) {
		release()
		t.Fatal("proxied flight never started on the owner")
	}

	ownerNode.BeginDrain()
	if !ownerNode.Draining() {
		t.Fatal("BeginDrain did not mark the node draining")
	}

	// A proxied write arriving now must be refused with the hint and fail
	// over to a replica, which serves it (collecting locally if needed).
	resp, data := post(t, h.URL(proxyIdx), "/v1/grid", serve.GridRequest{Benchmark: lateBench}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(HeaderNode); got == nodeID(ownerIdx) {
		t.Errorf("failover served by the draining owner")
	}
	if got := metric(t, h.URL(ownerIdx), "mcdvfsd_cluster_drain_refusals_total"); got != 1 {
		t.Errorf("drain_refusals_total = %d, want 1", got)
	}
	if got := metric(t, h.URL(proxyIdx), "mcdvfsd_cluster_drain_failovers_total"); got != 1 {
		t.Errorf("drain_failovers_total = %d, want 1", got)
	}

	// The collection already in flight on the draining owner still
	// completes for its proxied caller.
	release()
	select {
	case resp := <-inflightDone:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-flight proxied collection status %d after drain, want 200", resp.StatusCode)
		}
		if got := resp.Header.Get(HeaderNode); got != nodeID(ownerIdx) {
			t.Errorf("in-flight collection served by %q, want draining owner %q", got, nodeID(ownerIdx))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight proxied collection never completed")
	}
}

// TestClusterLoadMultiTarget drives the mcdvfsload path end to end
// against the harness: multi-target random policy, cluster-wide counter
// deltas, per-node breakdown.
func TestClusterLoadMultiTarget(t *testing.T) {
	h, err := NewTestHarness(HarnessConfig{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	report, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		Targets:  h.URLs(),
		Policy:   serve.PolicyRandom,
		Clients:  8,
		Requests: 64,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests != 64 {
		t.Errorf("requests = %d, want 64", report.Requests)
	}
	if report.Status5xx != 0 || report.TransportErrors != 0 {
		t.Errorf("5xx=%d transport=%d, want clean run\n%s", report.Status5xx, report.TransportErrors, report)
	}
	if len(report.ScrapeWarnings) != 0 {
		t.Errorf("scrape warnings: %v", report.ScrapeWarnings)
	}
	var nodeSum int64
	for _, v := range report.NodeGridCollections {
		nodeSum += v
	}
	if nodeSum != report.GridCollections {
		t.Errorf("per-node collections sum %d != cluster total %d", nodeSum, report.GridCollections)
	}
	if report.GridRequests > 0 && report.GridCacheHits+report.GridCollections+report.GridDiskLoads != report.GridRequests {
		t.Errorf("grid accounting: %d hits + %d collections + %d disk != %d requests",
			report.GridCacheHits, report.GridCollections, report.GridDiskLoads, report.GridRequests)
	}

	if _, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		Targets: h.URLs(),
		Policy:  "bogus",
	}); err == nil {
		t.Error("bogus policy accepted, want error")
	}
}
