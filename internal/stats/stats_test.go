package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownData(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 || s.N != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v, %v; want 2, 4", s.Q1, s.Q3)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 7 || s.Q1 != 7 || s.Median != 7 || s.Q3 != 7 || s.Max != 7 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := Summarize([]float64{1, math.Inf(1)}); err == nil {
		t.Error("Inf accepted")
	}
}

func TestSummarizeInts(t *testing.T) {
	s, err := SummarizeInts([]int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 4 || s.Mean != 4 {
		t.Errorf("summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range q accepted")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("zero accepted")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestHistogram(t *testing.T) {
	bins, err := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// [0,1): {0, 0.5}; [1,2]: {1, 1.5, 2}.
	if bins[0] != 2 || bins[1] != 3 {
		t.Errorf("bins = %v, want [2 3]", bins)
	}
	if _, err := Histogram([]float64{5}, 0, 2, 2); err == nil {
		t.Error("out-of-range value accepted")
	}
	if _, err := Histogram(nil, 0, 2, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := Histogram(nil, 2, 2, 1); err == nil {
		t.Error("empty range accepted")
	}
}

// Property: the five-number summary is ordered min <= q1 <= med <= q3 <= max
// and the mean lies within [min, max].
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			if !math.IsNaN(r) && !math.IsInf(r, 0) {
				xs = append(xs, math.Mod(r, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 &&
			s.Q3 <= s.Max && s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
