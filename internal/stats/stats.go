// Package stats provides the small statistical summaries the paper's
// figures need: five-number box-plot summaries, means, and quantiles.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is the five-number summary used for box plots (Figure 9), plus
// the mean and count.
type Summary struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// Summarize computes the five-number summary of xs. It returns an error on
// an empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("stats: empty input")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Summary{}, fmt.Errorf("stats: non-finite value %v", x)
		}
		sum += x
	}
	return Summary{
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
		N:      len(sorted),
	}, nil
}

// SummarizeInts is Summarize for integer data such as region lengths.
func SummarizeInts(xs []int) (Summary, error) {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Quantile returns the q-quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: empty input")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// quantileSorted interpolates the q-quantile of an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean; zero for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values. It returns an
// error if any value is non-positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: empty input")
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: non-positive value %v in geometric mean", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Histogram counts xs into nbins equal-width bins over [min, max]. Values
// at max land in the last bin.
func Histogram(xs []float64, min, max float64, nbins int) ([]int, error) {
	if nbins <= 0 {
		return nil, fmt.Errorf("stats: non-positive bin count %d", nbins)
	}
	if max <= min {
		return nil, fmt.Errorf("stats: empty range [%v, %v]", min, max)
	}
	bins := make([]int, nbins)
	width := (max - min) / float64(nbins)
	for _, x := range xs {
		if x < min || x > max {
			return nil, fmt.Errorf("stats: value %v outside [%v, %v]", x, min, max)
		}
		b := int((x - min) / width)
		if b == nbins {
			b--
		}
		bins[b]++
	}
	return bins, nil
}
