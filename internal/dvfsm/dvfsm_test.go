package dvfsm

import (
	"math"
	"testing"

	"mcdvfs/internal/freq"
)

func sequencer(t *testing.T) *Sequencer {
	t.Helper()
	s, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidation(t *testing.T) {
	mut := func(f func(*Params)) Params {
		p := DefaultParams()
		f(&p)
		return p
	}
	bad := []Params{
		mut(func(p *Params) { p.SlewUVPerUS = 0 }),
		mut(func(p *Params) { p.PLLLockNS = -1 }),
		mut(func(p *Params) { p.MemDrainNS = -1 }),
		mut(func(p *Params) { p.CPUOPPs = nil }),
		mut(func(p *Params) { p.StallPowerW = -1 }),
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestNoopTransition(t *testing.T) {
	s := sequencer(t)
	st := freq.Setting{CPU: 500, Mem: 400}
	tr, err := s.Plan(st, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) != 0 || tr.TotalNS() != 0 {
		t.Errorf("no-op transition has steps: %+v", tr)
	}
}

func TestRaiseSequencesVoltageFirst(t *testing.T) {
	s := sequencer(t)
	tr, err := s.Plan(freq.Setting{CPU: 500, Mem: 400}, freq.Setting{CPU: 1000, Mem: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) != 2 {
		t.Fatalf("steps: %+v", tr.Steps)
	}
	if tr.Steps[0].Name != "vdd-ramp-up" || tr.Steps[1].Name != "pll-relock" {
		t.Errorf("raise order wrong: %+v", tr.Steps)
	}
}

func TestLowerSequencesFrequencyFirst(t *testing.T) {
	s := sequencer(t)
	tr, err := s.Plan(freq.Setting{CPU: 1000, Mem: 400}, freq.Setting{CPU: 500, Mem: 400})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steps[0].Name != "pll-relock" || tr.Steps[1].Name != "vdd-ramp-down" {
		t.Errorf("lower order wrong: %+v", tr.Steps)
	}
}

func TestRampTimeProportionalToVoltageDelta(t *testing.T) {
	s := sequencer(t)
	small, err := s.Plan(freq.Setting{CPU: 500, Mem: 400}, freq.Setting{CPU: 600, Mem: 400})
	if err != nil {
		t.Fatal(err)
	}
	large, err := s.Plan(freq.Setting{CPU: 100, Mem: 400}, freq.Setting{CPU: 1000, Mem: 400})
	if err != nil {
		t.Fatal(err)
	}
	ramp := func(tr Transition) float64 {
		for _, st := range tr.Steps {
			if st.Name == "vdd-ramp-up" {
				return st.NS
			}
		}
		return 0
	}
	// 100->1000 MHz spans 9x the voltage delta of 500->600.
	if r := ramp(large) / ramp(small); math.Abs(r-9) > 0.01 {
		t.Errorf("ramp ratio = %v, want 9", r)
	}
}

func TestMemoryTransitionHasNoVoltageRamp(t *testing.T) {
	s := sequencer(t)
	tr, err := s.Plan(freq.Setting{CPU: 500, Mem: 200}, freq.Setting{CPU: 500, Mem: 800})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range tr.Steps {
		if st.Name == "vdd-ramp-up" || st.Name == "vdd-ramp-down" {
			t.Errorf("memory-only transition ramped voltage: %+v", tr.Steps)
		}
	}
	want := DefaultParams().MemDrainNS + DefaultParams().PLLLockNS + DefaultParams().MemRetrainNS
	if math.Abs(tr.TotalNS()-want) > 1e-9 {
		t.Errorf("memory transition %v ns, want %v", tr.TotalNS(), want)
	}
}

func TestDomainsOverlap(t *testing.T) {
	// Changing both components costs the max of the two sequences, not
	// the sum: independent clock domains transition concurrently.
	s := sequencer(t)
	both, err := s.Plan(freq.Setting{CPU: 500, Mem: 200}, freq.Setting{CPU: 1000, Mem: 800})
	if err != nil {
		t.Fatal(err)
	}
	cpuOnly, _ := s.Plan(freq.Setting{CPU: 500, Mem: 200}, freq.Setting{CPU: 1000, Mem: 200})
	memOnly, _ := s.Plan(freq.Setting{CPU: 500, Mem: 200}, freq.Setting{CPU: 500, Mem: 800})
	want := math.Max(cpuOnly.TotalNS(), memOnly.TotalNS())
	if math.Abs(both.TotalNS()-want) > 1e-9 {
		t.Errorf("both-domain transition %v ns, want max(%v, %v)",
			both.TotalNS(), cpuOnly.TotalNS(), memOnly.TotalNS())
	}
}

func TestCommercialTransitionsTensOfMicroseconds(t *testing.T) {
	// The paper: "time taken by PLLs to change voltage and frequency in
	// commercial processors is in the order of 10s of microseconds".
	s := sequencer(t)
	ns, _, err := s.Cost(freq.Setting{CPU: 300, Mem: 400}, freq.Setting{CPU: 900, Mem: 400})
	if err != nil {
		t.Fatal(err)
	}
	if ns < 10_000 || ns > 200_000 {
		t.Errorf("commercial CPU transition %v ns, want 10s of µs", ns)
	}
}

func TestFastParamsNanosecondScale(t *testing.T) {
	s, err := New(FastParams())
	if err != nil {
		t.Fatal(err)
	}
	ns, _, err := s.Cost(freq.Setting{CPU: 300, Mem: 400}, freq.Setting{CPU: 900, Mem: 400})
	if err != nil {
		t.Fatal(err)
	}
	if ns > 1_000 {
		t.Errorf("on-chip-regulator transition %v ns, want sub-µs scale", ns)
	}
}

func TestCostEnergy(t *testing.T) {
	s := sequencer(t)
	ns, j, err := s.Cost(freq.Setting{CPU: 500, Mem: 200}, freq.Setting{CPU: 1000, Mem: 800})
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultParams().StallPowerW * ns * 1e-9
	if math.Abs(j-want) > 1e-15 {
		t.Errorf("energy %v, want %v", j, want)
	}
}

func TestPlanRejectsOutOfRange(t *testing.T) {
	s := sequencer(t)
	if _, err := s.Plan(freq.Setting{CPU: 50, Mem: 200}, freq.Setting{CPU: 500, Mem: 200}); err == nil {
		t.Error("out-of-range CPU accepted")
	}
}
