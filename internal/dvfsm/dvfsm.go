// Package dvfsm models the DVFS controller hardware the paper adds to
// gem5 (Figure 1): the sequencing and latency of actual frequency/voltage
// transitions.
//
// A CPU DVFS transition is a two-step sequence with an ordering constraint:
//
//   - raising frequency: the regulator must ramp the voltage UP first
//     (the core cannot run fast at low voltage), then the PLL relocks;
//   - lowering frequency: the PLL relocks DOWN first, then the voltage
//     ramps down (running slow at high voltage is safe, just wasteful).
//
// The voltage ramp time is the voltage delta over the regulator's slew
// rate; the PLL relock is a fixed lock time. Memory DFS transitions pay
// the controller drain + relock + retraining but no voltage ramp (LPDDR3
// rails are fixed). The paper cites "10s of microseconds" for commercial
// PLL transitions and points at nanosecond-scale on-chip regulators
// (Kim et al.) as the future; both are expressible as Params.
package dvfsm

import (
	"fmt"
	"math"

	"mcdvfs/internal/freq"
)

// Params describes the transition hardware.
type Params struct {
	// SlewUVPerUS is the voltage regulator slew rate in microvolts per
	// microsecond (typical buck converters: ~5000 µV/µs).
	SlewUVPerUS float64
	// PLLLockNS is the PLL relock time after a frequency change.
	PLLLockNS float64
	// MemDrainNS is the memory-controller quiesce time before a memory
	// clock change (in-flight requests must drain).
	MemDrainNS float64
	// MemRetrainNS is the DLL/interface retraining time after a memory
	// clock change.
	MemRetrainNS float64
	// CPUOPPs maps CPU frequencies to voltages for ramp computation.
	CPUOPPs *freq.OPPTable
	// StallPowerW is the power burned while the component is stalled
	// mid-transition, used for transition energy.
	StallPowerW float64
}

// DefaultParams returns commercial-grade transition hardware matching the
// paper's "10s of microseconds" PLL observation.
func DefaultParams() Params {
	return Params{
		SlewUVPerUS:  5000,
		PLLLockNS:    20_000,
		MemDrainNS:   10_000,
		MemRetrainNS: 25_000,
		CPUOPPs:      freq.DefaultCPUOPPs(),
		StallPowerW:  0.5,
	}
}

// FastParams returns next-generation on-chip-regulator hardware
// (nanosecond-scale DVFS, the paper's reference to Kim et al.).
func FastParams() Params {
	p := DefaultParams()
	p.SlewUVPerUS = 2_000_000 // integrated regulator: ~2 V/µs
	p.PLLLockNS = 100
	p.MemDrainNS = 500
	p.MemRetrainNS = 1_000
	return p
}

// Sequencer computes transition costs.
type Sequencer struct {
	p Params
}

// New validates params and builds a sequencer.
func New(p Params) (*Sequencer, error) {
	switch {
	case p.SlewUVPerUS <= 0:
		return nil, fmt.Errorf("dvfsm: non-positive slew rate %v", p.SlewUVPerUS)
	case p.PLLLockNS < 0 || p.MemDrainNS < 0 || p.MemRetrainNS < 0:
		return nil, fmt.Errorf("dvfsm: negative transition latency")
	case p.CPUOPPs == nil:
		return nil, fmt.Errorf("dvfsm: missing CPU OPP table")
	case p.StallPowerW < 0:
		return nil, fmt.Errorf("dvfsm: negative stall power")
	}
	return &Sequencer{p: p}, nil
}

// MustNew is New for static configuration.
func MustNew(p Params) *Sequencer {
	s, err := New(p)
	if err != nil {
		panic(err)
	}
	return s
}

// Step is one phase of a transition sequence.
type Step struct {
	Name string
	NS   float64
}

// Transition is a fully sequenced setting change.
type Transition struct {
	From, To freq.Setting
	Steps    []Step
}

// TotalNS returns the transition's total stall time. CPU and memory
// sequences overlap (independent domains), so the total is the longer of
// the two component sequences.
func (t Transition) TotalNS() float64 {
	var cpuNS, memNS float64
	for _, s := range t.Steps {
		if s.Name == "mem-drain" || s.Name == "mem-relock" || s.Name == "mem-retrain" {
			memNS += s.NS
		} else {
			cpuNS += s.NS
		}
	}
	return math.Max(cpuNS, memNS)
}

// Plan sequences a transition between two settings. A no-op change
// returns an empty transition.
func (s *Sequencer) Plan(from, to freq.Setting) (Transition, error) {
	tr := Transition{From: from, To: to}
	if from.CPU != to.CPU { //lint:allow floateq ladder frequencies are exact discrete values; no-op transitions must detect exactly
		vFrom, err := s.p.CPUOPPs.VoltageAt(from.CPU)
		if err != nil {
			return Transition{}, fmt.Errorf("dvfsm: %w", err)
		}
		vTo, err := s.p.CPUOPPs.VoltageAt(to.CPU)
		if err != nil {
			return Transition{}, fmt.Errorf("dvfsm: %w", err)
		}
		rampNS := math.Abs(float64(vTo-vFrom)) * 1e6 / s.p.SlewUVPerUS * 1e3
		if to.CPU > from.CPU {
			// Voltage first, then frequency.
			tr.Steps = append(tr.Steps,
				Step{Name: "vdd-ramp-up", NS: rampNS},
				Step{Name: "pll-relock", NS: s.p.PLLLockNS},
			)
		} else {
			// Frequency first, then voltage.
			tr.Steps = append(tr.Steps,
				Step{Name: "pll-relock", NS: s.p.PLLLockNS},
				Step{Name: "vdd-ramp-down", NS: rampNS},
			)
		}
	}
	if from.Mem != to.Mem { //lint:allow floateq ladder frequencies are exact discrete values; no-op transitions must detect exactly
		tr.Steps = append(tr.Steps,
			Step{Name: "mem-drain", NS: s.p.MemDrainNS},
			Step{Name: "mem-relock", NS: s.p.PLLLockNS},
			Step{Name: "mem-retrain", NS: s.p.MemRetrainNS},
		)
	}
	return tr, nil
}

// Cost returns the transition's stall time and energy.
func (s *Sequencer) Cost(from, to freq.Setting) (ns, joules float64, err error) {
	tr, err := s.Plan(from, to)
	if err != nil {
		return 0, 0, err
	}
	ns = tr.TotalNS()
	return ns, s.p.StallPowerW * ns * 1e-9, nil
}
