package analysis

import "testing"

// TestSuffixUnit pins the camel-boundary rule: unit suffixes only match on
// a case flip, digit, or underscore boundary, so ordinary words never read
// as units.
func TestSuffixUnit(t *testing.T) {
	cases := []struct {
		name, unit string
	}{
		// Real repository identifiers.
		{"TimeNS", "ns"},
		{"durationNS", "ns"},
		{"TWRns", "ns"},
		{"AccessPerNS", "1/ns"}, // a rate, not a duration
		{"EnergyJ", "J"},
		{"CPUEnergyJ", "J"},
		{"PeakDynamicW", "W"},
		{"BackgroundW", "W"},
		{"maxMHz", "MHz"},
		{"clock_hz", ""}, // lowercase suffix after lowercase: no boundary
		{"SlewUVPerUS", "us"},
		// Whole-name matches.
		{"ns", "ns"},
		{"MHz", "MHz"},
		{"Volts", "V"},
		// Words that must never read as units.
		{"Trans", ""},
		{"Params", ""},
		{"columns", ""},
		{"CSV", ""},
		{"Div", ""},
		{"RMS", ""},
		{"Exec", ""},
		{"status", ""},
	}
	for _, c := range cases {
		if got := suffixUnit(c.name); got != c.unit {
			t.Errorf("suffixUnit(%q) = %q, want %q", c.name, got, c.unit)
		}
	}
}

// TestSuiteNamesStable pins the check names: they are the -disable and
// //lint:allow vocabulary, so renaming one silently orphans every waiver.
func TestSuiteNamesStable(t *testing.T) {
	want := []string{"determinism", "units", "floateq", "ctx", "lockcopy"}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d checks, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("check %d named %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Applies == nil || a.Run == nil {
			t.Errorf("check %q is missing Doc, Applies, or Run", a.Name)
		}
	}
}
