package analysis

import "testing"

// TestSuffixUnit pins the camel-boundary rule: unit suffixes only match on
// a case flip, digit, or underscore boundary, so ordinary words never read
// as units.
func TestSuffixUnit(t *testing.T) {
	cases := []struct {
		name, unit string
	}{
		// Real repository identifiers.
		{"TimeNS", "ns"},
		{"durationNS", "ns"},
		{"TWRns", "ns"},
		{"AccessPerNS", "1/ns"}, // a rate, not a duration
		{"EnergyJ", "J"},
		{"CPUEnergyJ", "J"},
		{"PeakDynamicW", "W"},
		{"BackgroundW", "W"},
		{"maxMHz", "MHz"},
		{"clock_hz", ""}, // lowercase suffix after lowercase: no boundary
		{"SlewUVPerUS", "us"},
		// Whole-name matches.
		{"ns", "ns"},
		{"MHz", "MHz"},
		{"Volts", "V"},
		// Words that must never read as units.
		{"Trans", ""},
		{"Params", ""},
		{"columns", ""},
		{"CSV", ""},
		{"Div", ""},
		{"RMS", ""},
		{"Exec", ""},
		{"status", ""},
	}
	for _, c := range cases {
		if got := suffixUnit(c.name); got != c.unit {
			t.Errorf("suffixUnit(%q) = %q, want %q", c.name, got, c.unit)
		}
	}
}

// TestSuiteNamesStable pins the check names: they are the -disable and
// //lint:allow vocabulary, so renaming one silently orphans every waiver.
func TestSuiteNamesStable(t *testing.T) {
	want := []string{"determinism", "units", "floateq", "ctx", "lockcopy", "goleak", "lockorder", "errflow", "rangecheck", "nilflow", "hotpath", "owned",
		"guardedby", "atomicmix", "spawnescape", "contract"}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d checks, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("check %d named %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Applies == nil {
			t.Errorf("check %q is missing Doc or Applies", a.Name)
		}
		if a.Run == nil && a.RunModule == nil {
			t.Errorf("check %q has neither Run nor RunModule", a.Name)
		}
	}
}

// TestUnitsPropagationCatchesSuffixless is the old-miss/new-catch proof for
// the propagation layers: the identifier the fixture's Propagated function
// passes to WaitNS is a bare "f" — suffix matching alone resolves it to no
// unit at all — yet the golden file (unitfix.golden:70) pins the GHz→ns
// mismatch at that call site. The unit the checker reports can only have
// arrived through the local env and the callee summary.
func TestUnitsPropagationCatchesSuffixless(t *testing.T) {
	if got := suffixUnit("f"); got != "" {
		t.Fatalf("suffixUnit(%q) = %q; the fixture's propagation case would be trivial", "f", got)
	}
	diags, err := Run(Options{
		Patterns: []string{"./testdata/src/unitfix"},
		ScopeAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Check == "units" && d.Line == 70 {
			found = true
		}
	}
	if !found {
		t.Errorf("no units diagnostic at unitfix.go:70 — interprocedural propagation regressed")
	}
}
