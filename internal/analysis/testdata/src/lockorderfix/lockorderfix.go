// Package lockorderfix exercises the lockorder check: mutexes acquired in
// both orders somewhere in the module form an ABBA deadlock, reported once
// per pair with both acquisition sites.
package lockorderfix

import "sync"

var (
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
	d sync.Mutex
	e sync.Mutex
	f sync.Mutex
)

// LockAB acquires a then b: one half of the cycle.
func LockAB() {
	a.Lock()
	defer a.Unlock()
	b.Lock()
	defer b.Unlock()
}

// LockBA acquires b then a: with LockAB this is the ABBA pair, reported
// here (the later of the two sites names the earlier one).
func LockBA() {
	b.Lock()
	defer b.Unlock()
	a.Lock()
	defer a.Unlock()
}

// lockF is a helper whose summary acquires f.
func lockF() {
	f.Lock()
	defer f.Unlock()
}

// TransitiveEF holds e across a call that acquires f: the e-before-f edge
// comes from the callee's summary, not a literal Lock in this body.
func TransitiveEF() {
	e.Lock()
	defer e.Unlock()
	lockF()
}

// DirectFE completes the interprocedural cycle: reported.
func DirectFE() {
	f.Lock()
	defer f.Unlock()
	e.Lock()
	defer e.Unlock()
}

// LockCD and WaivedShutdown form a cycle too, but the reversal is a
// deliberate single-threaded teardown path and carries its waiver.
func LockCD() {
	c.Lock()
	defer c.Unlock()
	d.Lock()
	defer d.Unlock()
}

func WaivedShutdown() {
	d.Lock()
	defer d.Unlock()
	//lint:allow lockorder teardown runs single-threaded after the pool drains
	c.Lock()
	defer c.Unlock()
}

// Sequential releases before the next acquisition: no edge, clean.
func Sequential() {
	a.Lock()
	a.Unlock()
	b.Lock()
	b.Unlock()
}

// BranchLocal returns while holding only the branch's lock; the held set
// must not leak past the return into the b.Lock below: clean.
func BranchLocal(cond bool) {
	if cond {
		b.Lock()
		defer b.Unlock()
		return
	}
	a.Lock()
	a.Unlock()
}
