// Package guardedfix exercises the guardedby check: majority-evidence
// mutex inference over struct fields. counter shows the basic 3-of-4
// inference with one unguarded access; gauge shows a write under RLock;
// table shows accesses counted as guarded through the caller-held summary
// (bump is only ever called with the lock held) plus a waived cold-path
// read; relay shows the clean cases — construction-time accesses, split
// evidence with no majority, and a mutex-free struct.
package guardedfix

import "sync"

// counter: n is guarded by mu on three of four accesses.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) reset() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
}

// skipsGuard is the minority access: reported with the inferred guard.
func (c *counter) skipsGuard() int {
	return c.n
}

// newCounter's accesses are construction-time (local base) and not
// evidence either way.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// gauge: every access holds mu, but badBump writes under the shared mode.
type gauge struct {
	mu  sync.RWMutex
	val int
}

func (g *gauge) set(v int) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

func (g *gauge) read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

// badBump is reported: a write while only read-holding the guard.
func (g *gauge) badBump() {
	g.mu.RLock()
	g.val++
	g.mu.RUnlock()
}

// table: bump never locks, but both its call sites hold mu, so its access
// counts as guarded through the caller-held summary.
type table struct {
	mu    sync.Mutex
	items map[string]int
}

func (t *table) put(k string, v int) {
	t.mu.Lock()
	t.items[k] = v
	t.bump(k, 0)
	t.mu.Unlock()
}

func (t *table) del(k string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.items, k)
}

func (t *table) bump(k string, v int) {
	t.items[k] += v
}

// size is the unguarded minority access: reported.
func (t *table) size() int {
	return len(t.items)
}

// snapshot is unguarded too, but waived: the suppression must hold the
// diagnostic back without disturbing the inference.
func (t *table) snapshot() map[string]int {
	//lint:allow guardedby startup-only read before the table is shared
	return t.items
}

// relay: evidence splits one-and-one between two accesses, so no guard
// reaches the majority bar and nothing is reported.
type relay struct {
	mu   sync.Mutex
	hops int
}

func (r *relay) locked() {
	r.mu.Lock()
	r.hops++
	r.mu.Unlock()
}

func (r *relay) unlocked() int {
	return r.hops
}

// bare has no mutex at all: its fields are never tracked.
type bare struct {
	n int
}

func (b *bare) touch() { b.n++ }
