// Package contractfix exercises the contract check: //vet:requires /
// //vet:ensures / //vet:invariant annotations proven by the interval
// interpreter. Positive cases violate an obligation outright or leave it
// unproven; clean cases show the refinements — requires seeding, branch
// guards, invariant field facts, the evidence rule for top arguments —
// that discharge the proof; malformed annotations are diagnosed rather
// than silently ignored.
package contractfix

// Clamp is clean: the guard proves the ensures on both return paths —
// the first returns the seeded lower bound, the second is refined by the
// failed comparison.
//
//vet:requires lo >= 0
//vet:ensures ret >= 0
func Clamp(x, lo float64) float64 {
	if x < lo {
		return lo
	}
	return x
}

// Leak is reported: the requires bounds x below by zero, so x - 1 still
// admits [-1, 0) and the strict ensures stays unproven.
//
//vet:requires x >= 0
//vet:ensures ret > 0
func Leak(x float64) float64 {
	return x - 1
}

// Negated violates its ensures outright: the returned literal is provably
// negative on the only path.
//
//vet:ensures ret >= 0
func Negated() float64 {
	return -1
}

// Burn is clean: the W suffix seeds powerW non-negative and the requires
// covers the duration, so the product proves the ensures.
//
//vet:requires durationNS >= 0
//vet:ensures ret >= 0
func Burn(powerW, durationNS float64) float64 {
	return powerW * durationNS * 1e-9
}

// Calls is reported twice: the literal provably violates Burn's requires,
// and the clamped dt is known only as (-inf, 5] — evidence without proof.
func Calls(dt float64) float64 {
	if dt > 5 {
		dt = 5
	}
	e := Burn(1.5, -1)
	e += Burn(1.5, dt)
	return e
}

// CallTop is clean by design: a top argument carries no evidence, and the
// call-site check reports only what the intervals can actually say.
func CallTop(d float64) float64 {
	return Burn(1.5, d)
}

// Waived is suppressed: the waiver names the sentinel convention.
func Waived() float64 {
	return Clamp(3, -1) //lint:allow contract the -1 is an out-of-band sentinel this fixture pretends the callee maps to zero
}

// Gauge carries a field invariant its mutating methods must re-prove.
//
//vet:invariant level >= 0 && level <= 1
type Gauge struct {
	level float64
}

// Fill is clean: the clamps re-establish both invariant bounds before
// exit.
func (g *Gauge) Fill(amount float64) {
	g.level += amount
	if g.level > 1 {
		g.level = 1
	}
	if g.level < 0 {
		g.level = 0
	}
}

// Drain is reported: the subtraction can push level below zero and
// nothing re-proves the floor.
func (g *Gauge) Drain(amount float64) {
	g.level -= amount
}

// Poison is reported: the written value provably violates the ceiling.
func (g *Gauge) Poison() {
	g.level = 2
}

// Hz is a scalar named type whose contract constrains the receiver.
type Hz float64

// Period is clean: the requires makes the receiver a positive divisor and
// the NonZero bit carries the sign through the division.
//
//vet:requires h > 0
//vet:ensures ret > 0
func (h Hz) Period() float64 {
	return 1 / float64(h)
}

// UseHz is reported: the zero-valued receiver provably violates Period's
// requires.
func UseHz() float64 {
	var h Hz
	return h.Period()
}

// BadExpr is reported as malformed: two comparison operators in one
// conjunct.
//
//vet:requires x > 0 < 1
func BadExpr(x float64) float64 {
	return x
}

// BadRoot is reported as malformed: the operand names nothing in the
// function's scope.
//
//vet:requires nosuch > 0
func BadRoot(x float64) float64 {
	return x
}

// Misplaced is reported: invariants annotate struct types, not functions.
//
//vet:invariant x > 0
func Misplaced(x float64) float64 {
	return x
}

// Shifted is reported: requires/ensures annotate functions, not types.
//
//vet:requires x > 0
type Shifted struct {
	x float64
}

// Scalar is reported: invariants apply only to struct types.
//
//vet:invariant v > 0
type Scalar float64

//vet:frobnicate x > 0
func UnknownVerb(x float64) float64 {
	return x
}
