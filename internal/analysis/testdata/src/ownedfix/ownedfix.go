// Package ownedfix exercises the owned check: values declared on a
// //vet:owned line are worker-private, and every way one can leave its
// creating goroutine is represented here — captured by a second goroutine,
// handed to a go call, sent on a channel, stored into a shared struct, a
// package variable, or a composite literal, and returned — alongside the
// sanctioned escapes: a //vet:transfer handoff, a //lint:allow waiver, and
// a value that is created inside the goroutine that uses it.
package ownedfix

import "sync"

// runner stands in for the per-worker simulator state the discipline guards.
type runner struct {
	cells []float64
	sum   float64
}

func (r *runner) step(v float64) { r.sum += v }

// registry is the shared structure the violations store into.
type registry struct {
	byName map[string]*runner
	last   *runner
}

// current is the package-level sink for the global-store case.
var current *runner

// capturedByGoroutine is reported: the owned runner is used inside a
// goroutine other than its creator's. Unexported (as are the other
// spawners) so the ctx check's exported-spawner rule stays out of this
// fixture's golden; the WaitGroup is declared before the annotated line so
// the directive's two-line window cannot reach it.
func capturedByGoroutine(vals []float64) float64 {
	var wg sync.WaitGroup
	r := &runner{cells: make([]float64, 0, 8)} //vet:owned
	wg.Add(1)
	go func() {
		for _, v := range vals {
			r.step(v)
		}
		wg.Done()
	}()
	wg.Wait()
	return r.sum
}

// handedToGoroutine is reported: the owned runner is an argument of the go
// call itself.
func handedToGoroutine(vals []float64) {
	var wg sync.WaitGroup
	r := &runner{} //vet:owned
	wg.Add(1)
	go func(w *runner) {
		for _, v := range vals {
			w.step(v)
		}
		wg.Done()
	}(r)
	wg.Wait()
}

// workerOwned is clean: the runner is declared inside the spawned goroutine,
// so the creator and the user are the same goroutine.
func workerOwned(vals []float64, out chan<- float64) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		r := &runner{} //vet:owned
		for _, v := range vals {
			r.step(v)
		}
		out <- r.sum // derived scalar, not the owned value: no transfer needed
		wg.Done()
	}()
	wg.Wait()
}

// StoredShared is reported: parking the owned runner in a shared struct
// makes it reachable from every goroutine holding the registry.
func StoredShared(reg *registry) {
	r := &runner{} //vet:owned
	reg.last = r
}

// StoredByKey is reported: a map store is a shared-structure store.
func StoredByKey(reg *registry, name string) {
	r := &runner{} //vet:owned
	reg.byName[name] = r
}

// StoredGlobal is reported: a package variable is visible to everyone.
func StoredGlobal() {
	r := &runner{} //vet:owned
	current = r
}

// SentOnChannel is reported: a send is a handoff to whichever goroutine
// receives.
func SentOnChannel(ch chan *runner) {
	r := &runner{} //vet:owned
	ch <- r
}

// InLiteral is reported: embedding the owned runner in a composite literal
// publishes it with the literal.
func InLiteral() registry {
	r := &runner{} //vet:owned
	return registry{last: r}
}

// Returned is reported: returning the owned value abandons ownership without
// saying so.
func Returned() *runner {
	r := &runner{} //vet:owned
	return r
}

// Transferred is clean: the send carries //vet:transfer, the documented
// ownership handoff.
func Transferred(ch chan *runner) {
	r := &runner{} //vet:owned
	ch <- r        //vet:transfer pool refill: receiver becomes the owner
}

// Waived is clean in the filtered output: the return is a real finding
// absorbed by a reasoned waiver.
func Waived() *runner {
	r := &runner{} //vet:owned
	return r       //lint:allow owned constructor escape is the documented API shape here
}

// Local is clean: synchronous calls and local mutation stay on the creating
// goroutine.
func Local(vals []float64) float64 {
	r := &runner{} //vet:owned
	for _, v := range vals {
		r.step(v)
	}
	return r.sum
}
