// Package unitfix is a units-check fixture: quantities whose unit lives in
// the type name or the identifier suffix, mixed correctly and incorrectly.
package unitfix

// MHz and Hz are distinct frequency units, as in internal/freq.
type MHz float64

// Hz is the base frequency unit.
type Hz float64

// AddFreqs mixes the two frequency types additively after stripping both
// to float64 — the names still disagree. want: units hit.
func AddFreqs(clockMHz, busHz float64) float64 {
	return clockMHz + busHz // want units: MHz + Hz
}

// EnergyRate assigns joules to a watts name. want: units hit.
func EnergyRate(energyJ float64) float64 {
	powerW := energyJ // want units: J assigned to W
	return powerW
}

// Sample pairs a duration with an energy.
type Sample struct {
	TimeNS  float64
	EnergyJ float64
}

// BadSample fills a nanosecond field from a joule value. want: units hit.
func BadSample(energyJ float64) Sample {
	return Sample{
		TimeNS:  energyJ, // want units: field TimeNS set from J
		EnergyJ: energyJ,
	}
}

// ScaleLatency multiplies a latency by a dimensionless fraction and adds
// two like-united terms: clean.
func ScaleLatency(baseNS, extraNS, frac float64) float64 {
	return baseNS*frac + extraNS
}

// Convert strips units explicitly before combining: clean — the cast is
// the sanctioned escape hatch.
func Convert(f MHz) float64 {
	return float64(f) * 1e6
}

// WaivedMix carries a reasoned waiver: suppressed.
func WaivedMix(aMHz, bHz float64) float64 {
	//lint:allow units fixture demonstrates a reasoned waiver
	return aMHz + bHz
}

// CPUConf exposes a core clock whose unit lives only in the getter's name,
// the shape the propagation layers exist for.
type CPUConf struct{ clock float64 }

// GHz returns the core clock in gigahertz.
func (c CPUConf) GHz() float64 { return c.clock }

// WaitNS stands in for a sink whose parameter name carries the unit.
func WaitNS(dNS float64) float64 { return dNS }

// Propagated is the old-miss/new-catch case: f has no unit suffix, so
// suffix matching alone sees nothing, but its definition makes it GHz and
// WaitNS wants nanoseconds. want: units hit at the call argument.
func Propagated(c CPUConf) float64 {
	f := c.GHz()
	return WaitNS(f) // want units: f (GHz) passed to dNS
}

// BadPeriodNS promises nanoseconds by name and returns a frequency.
// want: units hit at the return.
func BadPeriodNS(c CPUConf) float64 {
	f := c.GHz()
	return f // want units: returning f (GHz) where result is ns
}

// DerivedPeriod divides through the propagated frequency, forming a derived
// unit the checker leaves alone: clean.
func DerivedPeriod(c CPUConf) float64 {
	f := c.GHz()
	return 1.0 / f
}

// WaivedPropagation waives the interprocedural finding with a reason:
// suppressed.
func WaivedPropagation(c CPUConf) float64 {
	f := c.GHz()
	//lint:allow units fixture waives a propagated finding
	return WaitNS(f)
}
