// Package unitfix is a units-check fixture: quantities whose unit lives in
// the type name or the identifier suffix, mixed correctly and incorrectly.
package unitfix

// MHz and Hz are distinct frequency units, as in internal/freq.
type MHz float64

// Hz is the base frequency unit.
type Hz float64

// AddFreqs mixes the two frequency types additively after stripping both
// to float64 — the names still disagree. want: units hit.
func AddFreqs(clockMHz, busHz float64) float64 {
	return clockMHz + busHz // want units: MHz + Hz
}

// EnergyRate assigns joules to a watts name. want: units hit.
func EnergyRate(energyJ float64) float64 {
	powerW := energyJ // want units: J assigned to W
	return powerW
}

// Sample pairs a duration with an energy.
type Sample struct {
	TimeNS  float64
	EnergyJ float64
}

// BadSample fills a nanosecond field from a joule value. want: units hit.
func BadSample(energyJ float64) Sample {
	return Sample{
		TimeNS:  energyJ, // want units: field TimeNS set from J
		EnergyJ: energyJ,
	}
}

// ScaleLatency multiplies a latency by a dimensionless fraction and adds
// two like-united terms: clean.
func ScaleLatency(baseNS, extraNS, frac float64) float64 {
	return baseNS*frac + extraNS
}

// Convert strips units explicitly before combining: clean — the cast is
// the sanctioned escape hatch.
func Convert(f MHz) float64 {
	return float64(f) * 1e6
}

// WaivedMix carries a reasoned waiver: suppressed.
func WaivedMix(aMHz, bHz float64) float64 {
	//lint:allow units fixture demonstrates a reasoned waiver
	return aMHz + bHz
}
