// Package hotpathfix exercises the hotpath check: every allocation class the
// prover flags inside a //vet:hotpath closure — interface boxing at
// assignments, call arguments, returns, and composite literals; escaping
// &T{} and slice/map literals; make; unproven appends against the proven
// in-place idiom; map writes and string concatenation; capturing closures,
// defers in loops, go statements; dynamic and untrusted extern calls — plus
// the exemptions: cold error paths, locally confined pointers, and static
// helpers reached transitively with root attribution.
package hotpathfix

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

type point struct{ x, y float64 }

type item struct{ v any }

type counter struct{ n int }

func (c *counter) inc() { c.n++ }

// sink consumes variadic interface arguments; its own body is clean.
func sink(vals ...any) {}

// release is a static helper for the defer case; clean.
func release(p *point) {}

// escaped is the package-level sink that makes EscapePtr's pointer escape.
var escaped *point

// BoxOnAssign is reported once: the store of n into the interface variable
// boxes; returning the already-boxed value does not.
//
//vet:hotpath
func BoxOnAssign(n int) any {
	var out any
	out = n // reported: interface boxing at assignment
	return out
}

// BoxAtCall is reported: the variadic call materializes its argument slice
// and boxes both floats.
//
//vet:hotpath
func BoxAtCall(a, b float64) {
	sink(a, b)
}

// BoxInLit is reported: the struct literal boxes n into its any field.
//
//vet:hotpath
func BoxInLit(n int) item {
	return item{v: n}
}

// EscapePtr is reported: the composite literal's address is stored into a
// package variable, so the allocation escapes.
//
//vet:hotpath
func EscapePtr() {
	p := &point{x: 1}
	escaped = p
}

// ConfinedPtr is clean: every use of p is a field access, so the pointer
// never leaves the frame and the literal stays on the stack.
//
//vet:hotpath
func ConfinedPtr() float64 {
	p := &point{x: 2}
	p.y = 3
	return p.x + p.y
}

// MakeScratch is reported: construction belongs in the constructor, not the
// hot loop.
//
//vet:hotpath
func MakeScratch(n int) int {
	buf := make([]int, n)
	return len(buf)
}

// SliceLit is reported: the literal allocates its backing array.
//
//vet:hotpath
func SliceLit(a, b float64) float64 {
	pair := []float64{a, b}
	return pair[0] + pair[1]
}

// AppendGrow is reported: the parameter carries no capacity fact, so the
// append cannot be proven in place.
//
//vet:hotpath
func AppendGrow(xs []int, v int) []int {
	return append(xs, v)
}

// AppendProven: the waived make seeds len 0 / cap 2, and both appends are
// then provably in place — no append findings.
//
//vet:hotpath
func AppendProven() int {
	buf := make([]int, 0, 2) //lint:allow hotpath scratch construction kept local so the append proof below has facts
	buf = append(buf, 1)
	buf = append(buf, 2)
	return len(buf)
}

// AppendRefill: the len<cap guard is relationally exactly the in-place
// condition for a one-element append, so the arena refill idiom proves
// clean even after loop widening erases the make's finite capacity.
//
//vet:hotpath
func AppendRefill(vals []int) int {
	buf := make([]int, 0, 4) //lint:allow hotpath arena constructed once per call for the refill proof
	for _, v := range vals {
		if len(buf) < cap(buf) {
			buf = append(buf, v)
		}
	}
	return len(buf)
}

// Label is reported three times: the concat allocates, and both map-write
// forms — assignment and increment — may allocate on insert.
//
//vet:hotpath
func Label(counts, hits map[string]int, name, suffix string) {
	key := name + suffix
	counts[key] = counts[key] + 1
	hits[key]++
}

// CaptureClosure is reported: the literal closes over n.
//
//vet:hotpath
func CaptureClosure(n int) func() int {
	f := func() int { return n }
	return f
}

// StaticClosure is clean: a literal capturing nothing compiles to a static
// function value.
//
//vet:hotpath
func StaticClosure() func() int {
	return func() int { return 42 }
}

// DeferInLoop is reported: each iteration heap-allocates a defer record.
//
//vet:hotpath
func DeferInLoop(ms []*point) {
	for _, m := range ms {
		defer release(m)
	}
}

// spawnJoined is reported for the go statement and the capturing closure;
// the WaitGroup methods themselves are trusted. Unexported so the ctx
// check's exported-spawner rule stays out of this fixture's golden.
//
//vet:hotpath
func spawnJoined(n int) int {
	var wg sync.WaitGroup
	wg.Add(1)
	total := 0
	go func() {
		total = n
		wg.Done()
	}()
	wg.Wait()
	return total
}

// Dynamic is reported: a call through a function value cannot be proven
// allocation-free.
//
//vet:hotpath
func Dynamic(f func() int) int {
	return f()
}

// Extern is reported: strings.ToUpper is outside the trusted allowlist.
//
//vet:hotpath
func Extern(s string) string {
	return strings.ToUpper(s)
}

// MethodValue is reported: binding the receiver allocates.
//
//vet:hotpath
func MethodValue(c *counter) func() {
	return c.inc
}

// helper is not annotated; it is scanned because Root's closure reaches it,
// and its boxing is attributed to the root.
func helper(n int) any {
	return n // reported: boxing, hot path via Root
}

// Root is clean itself: helper() already returns an interface.
//
//vet:hotpath
func Root(n int) any {
	return helper(n)
}

// ColdError is clean: fmt.Errorf, its variadic slice, and the boxing of n
// all sit inside the error return the hot loop never takes.
//
//vet:hotpath
func ColdError(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("hotpathfix: negative count %d", n)
	}
	return n * 2, nil
}

// ColdPrelude is clean: the concat feeds a path that only exits through the
// error return, so every-path analysis marks it cold.
//
//vet:hotpath
func ColdPrelude(n int, why string) (int, error) {
	if n < 0 {
		msg := "hotpathfix: " + why
		return 0, errors.New(msg)
	}
	return n, nil
}

// WaivedBox: the variadic call and its boxings are absorbed by one reasoned
// waiver.
//
//vet:hotpath
func WaivedBox(n int) {
	sink("count", n) //lint:allow hotpath one-time startup report, not per-cell work
}

// NotAnnotated allocates freely and is reached by nothing annotated: clean.
func NotAnnotated() []int {
	return append(make([]int, 0), 1, 2, 3)
}
