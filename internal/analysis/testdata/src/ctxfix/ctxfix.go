// Package ctxfix is a ctx-check fixture: exported entry points that spawn
// goroutines or sweep the frequency grid with and without a context.
package ctxfix

import (
	"context"

	"mcdvfs/internal/freq"
)

// Spawn launches a goroutine without a context. want: ctx hit.
func Spawn(done chan struct{}) {
	go func() { close(done) }()
}

// SpawnContext launches a goroutine with a context: clean.
func SpawnContext(ctx context.Context, done chan struct{}) {
	go func() {
		select {
		case <-ctx.Done():
		default:
		}
		close(done)
	}()
}

// Sweep ranges the grid axis without a context. want: ctx hit.
func Sweep(settings []freq.Setting) int {
	n := 0
	for range settings {
		n++
	}
	return n
}

// SweepContext ranges the grid axis with a context: clean.
func SweepContext(ctx context.Context, settings []freq.Setting) int {
	n := 0
	for range settings {
		if ctx.Err() != nil {
			break
		}
		n++
	}
	return n
}

// SweepIndirect is exported but only measures: clean — the discipline
// binds grid sweeps and goroutine spawns, not every settings use.
func SweepIndirect(settings []freq.Setting) int {
	return len(settings)
}

// WaivedSweep carries a reasoned waiver: suppressed.
//
//lint:allow ctx fixture demonstrates a reasoned waiver
func WaivedSweep(settings []freq.Setting) int {
	n := 0
	for range settings {
		n++
	}
	return n
}
