package ctxfix

// HTTP-handler cases for the ctx check: a function receiving a
// *net/http.Request must thread r.Context() into the work it starts, not
// mint a fresh root context.

import (
	"context"
	"net/http"
)

// HandleLeaky roots its work in context.Background. want: ctx hit.
func HandleLeaky(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background()
	_ = ctx
}

// HandleTODO defers the decision with context.TODO. want: ctx hit.
func HandleTODO(w http.ResponseWriter, r *http.Request) {
	work(context.TODO())
}

// HandleThreaded derives from the request: clean.
func HandleThreaded(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	work(ctx)
}

// helperLeaky is not itself a handler signature-wise, but it receives the
// request, so the same rule applies. want: ctx hit (unexported is not
// exempt).
func helperLeaky(r *http.Request) {
	work(context.Background())
}

// LiteralLeaky registers a closure handler that mints a root context.
// want: ctx hit inside the literal.
func LiteralLeaky(mux *http.ServeMux) {
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		work(context.Background())
	})
}

// NotAHandler has no request parameter; a root context is fine here (it IS
// the root). clean.
func NotAHandler() {
	work(context.Background())
}

// WaivedHandler carries a reasoned waiver at the call site: suppressed.
func WaivedHandler(w http.ResponseWriter, r *http.Request) {
	//lint:allow ctx fixture demonstrates a reasoned handler waiver
	work(context.Background())
}

func work(ctx context.Context) { _ = ctx }
