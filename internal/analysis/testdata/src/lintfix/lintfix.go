// Package lintfix is a fixture for the directive grammar itself: malformed
// //lint:allow comments are diagnosed, never silently honored.
package lintfix

// A directive naming an unknown check. want: lint hit.
//
//lint:allow nosuchcheck this check does not exist

// A directive with no reason. want: lint hit.
//
//lint:allow floateq

// A directive with no check name at all. want: lint hit.
//
//lint:allow

// A well-formed waiver with nothing left to suppress: the comparison it
// excused was fixed without deleting the directive. want: stale lint hit.
//
//lint:allow floateq this comparison was fixed long ago
const Fixed = 1.0

// Value exists so the package has a declaration.
const Value = 1
