// Package lintfix is a fixture for the directive grammar itself: malformed
// //lint:allow comments are diagnosed, never silently honored.
package lintfix

// A directive naming an unknown check. want: lint hit.
//
//lint:allow nosuchcheck this check does not exist

// A directive with no reason. want: lint hit.
//
//lint:allow floateq

// A directive with no check name at all. want: lint hit.
//
//lint:allow

// Value exists so the package has a declaration.
const Value = 1
