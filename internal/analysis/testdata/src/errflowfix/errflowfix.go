// Package errflowfix exercises the errflow check: every error result must
// be checked, returned, or visibly discarded with _ =.
package errflowfix

import (
	"fmt"
	"os"
	"strings"
)

func work() error { return nil }

// Dropped discards the error implicitly: reported.
func Dropped() {
	work()
}

// DeferDropped drops a deferred call's error: reported.
func DeferDropped(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
}

// Stale assigns a fresh error and never reads it again — the function
// returns the earlier success path instead: reported at the assignment.
func Stale(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write([]byte("x"))
	return f.Close()
}

// Waived: a best-effort call carries its reason.
func Waived() {
	//lint:allow errflow best-effort cache warm; a miss only costs latency
	work()
}

// Discarded makes the drop visible: clean.
func Discarded() {
	_ = work()
}

// Checked branches on the error: clean.
func Checked() error {
	if err := work(); err != nil {
		return err
	}
	return nil
}

// Returned hands the error to the caller: clean.
func Returned() error {
	return work()
}

// Printed: the fmt print family is exempt by idiom: clean.
func Printed() {
	fmt.Println("status")
}

// Build: strings.Builder writes are documented to never fail: clean.
func Build() string {
	var b strings.Builder
	b.WriteString("x")
	return b.String()
}

// NamedResult assigns to a named error result, which is live at every
// return by construction: clean.
func NamedResult() (err error) {
	err = work()
	return
}
