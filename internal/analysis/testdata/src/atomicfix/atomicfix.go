// Package atomicfix exercises the atomicmix check: variables accessed both
// through sync/atomic and through plain loads/stores. stats mixes the
// function form (atomic.AddInt64) with a plain read and mixes wrapper
// methods (atomic.Int64) with a plain overwrite; total is the
// package-variable case. The clean cases: construction-time writes,
// package init, address-of a wrapper (sharing, not tearing), and fields
// that are consistently atomic or consistently plain.
package atomicfix

import "sync/atomic"

type stats struct {
	hits  int64        // mixed: atomic adds, plain read in report
	drops atomic.Int64 // mixed: methods, plain overwrite in clear
	plain int64        // consistently plain: never reported
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
	s.drops.Add(1)
	s.plain++
}

// report's read of hits is the torn read: reported.
func (s *stats) report() int64 {
	return s.hits + s.drops.Load() + s.plain
}

// clear overwrites the wrapper without going through Store: reported.
func (s *stats) clear() {
	s.drops = atomic.Int64{}
}

// share passes the wrapper's address on — that is how atomics are shared,
// not a tear.
func (s *stats) share() *atomic.Int64 {
	return &s.drops
}

// peek is a second torn read, waived: the suppression must hold exactly
// this line back while report stays flagged.
func (s *stats) peek() int64 {
	//lint:allow atomicmix debug-only read; a torn value is acceptable here
	return s.hits
}

// newStats writes hits before the value is shared: construction-time
// accesses are not evidence.
func newStats() *stats {
	s := &stats{}
	s.hits = 0
	return s
}

// total is the package-level case: atomic adds plus one plain read.
var total int64

func addTotal(n int64) {
	atomic.AddInt64(&total, n)
}

// readTotal is reported.
func readTotal() int64 {
	return total
}

// ticks is only ever touched atomically after init; the init write is
// single-threaded and excluded.
var ticks int64

func init() {
	ticks = 0
}

func tick() {
	atomic.AddInt64(&ticks, 1)
}
