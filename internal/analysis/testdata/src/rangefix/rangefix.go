// Package rangefix exercises the rangecheck interval analysis: divisions
// whose divisor provably admits zero, negative physical quantities flowing
// into unit-carrying parameters, and indices provably outside a table. The
// domain runs on evidence — every positive case below hands it a literal,
// a branch merge, or a length fact; the clean cases show the refinements
// (guards, short-circuits, the NonZero bit) that discharge the proof.
package rangefix

// Weight is reported: w is the merge of {0, 4}, so the divisor's range
// [0, 4] contains zero on the slow path.
func Weight(fast bool) float64 {
	w := 0.0
	if fast {
		w = 4
	}
	return 100 / w
}

// GuardedWeight is clean: the guard refines w to (0, 4] before dividing.
func GuardedWeight(fast bool) float64 {
	w := 0.0
	if fast {
		w = 4
	}
	if w > 0 {
		return 100 / w
	}
	return 0
}

// MixedSign is clean: the hull of {-2, 3} straddles zero, but the NonZero
// bit survives the join — neither branch value is zero.
func MixedSign(neg bool) int {
	n := 3
	if neg {
		n = -2
	}
	return 100 / n
}

// ShortCircuit is clean: the right operand of && runs under d != 0.
func ShortCircuit(fast bool) bool {
	d := 0
	if fast {
		d = 8
	}
	return d != 0 && 16/d > 1
}

// Remainder is reported: the modulus buckets is the merge of {0, 16}.
func Remainder(wide bool, k int) int {
	buckets := 0
	if wide {
		buckets = 16
	}
	return k % buckets
}

// Burn consumes a non-negative physical quantity.
func Burn(energyJ float64) float64 {
	return energyJ * 2
}

// NegativeEnergy is reported: the folded constant -5 flows into Burn's
// J-suffixed parameter.
func NegativeEnergy() float64 {
	return Burn(3 - 8)
}

// PositiveEnergy is clean: the argument is non-negative.
func PositiveEnergy() float64 {
	return Burn(8 - 3)
}

// TableOver is reported: idx is exactly 5, but the table holds 4 entries.
func TableOver() float64 {
	table := make([]float64, 4)
	idx := 5
	return table[idx]
}

// TableUnder is reported: the index is negative on every path.
func TableUnder(table []float64) float64 {
	idx := -1
	return table[idx]
}

// LoopIndex is clean: a range-derived index stays within [0, len-1].
func LoopIndex(xs []float64) float64 {
	total := 0.0
	for i := range xs {
		total += xs[i]
	}
	return total
}

// Waived carries a reasoned waiver on the zero-capable division.
func Waived(fast bool) float64 {
	w := 0.0
	if fast {
		w = 2
	}
	return 50 / w //lint:allow rangecheck fixture demonstrates waiver uptake on a known-unreachable zero
}
