// Package determfix is a determinism-check fixture: wall-clock reads,
// global math/rand, and map-ordered emission, next to their sanctioned
// replacements.
package determfix

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock. want: determinism hit.
func Stamp() int64 {
	return time.Now().UnixNano() // want determinism: time.Now
}

// Roll uses the process-global source. want: determinism hit.
func Roll() int {
	return rand.Intn(6) // want determinism: global math/rand
}

// SeededRoll constructs an explicitly seeded generator: clean.
func SeededRoll() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6)
}

// WaivedStamp carries a reasoned waiver: suppressed.
func WaivedStamp() int64 {
	//lint:allow determinism fixture demonstrates a reasoned waiver
	return time.Now().UnixNano()
}

// DumpOrdered prints while ranging a map. want: determinism hit.
func DumpOrdered(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want determinism: map-ordered output
	}
}

// DumpSorted collects, sorts, then prints: clean.
func DumpSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// jitter hides entropy one call down: the purity summary marks it impure
// and names the source. want: determinism hit (direct).
func jitter() int {
	return rand.Intn(3)
}

// Tick never touches entropy itself, but calls jitter. want: determinism
// hit at the call site, pointing at jitter's math/rand.
func Tick(base int) int {
	return base + jitter()
}

// SeededTick calls only the seeded generator path: clean.
func SeededTick(base int) int {
	return base + SeededRoll()
}
