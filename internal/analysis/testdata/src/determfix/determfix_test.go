package determfix

// Test-file coverage fixture: the determinism check screens _test.go files
// of opted-in packages purely syntactically.

import (
	mrand "math/rand"
	"testing"
	"time"
)

func TestWallClock(t *testing.T) {
	start := time.Now() // want determinism: time.Now in a test
	_ = start
	_ = time.Since(start) // want determinism: time.Since in a test
	// Timeouts stay legal: a bounded wait is not a measurement.
	select {
	case <-time.After(time.Millisecond):
	}
}

func TestGlobalRand(t *testing.T) {
	_ = mrand.Float64() // want determinism: aliased global math/rand
	r := mrand.New(mrand.NewSource(1))
	_ = r.Float64() // seeded: clean
}

func TestWaived(t *testing.T) {
	//lint:allow determinism fixture demonstrates a waiver in a test file
	_ = time.Now()
}
