// Package stalenewcheck exercises the staleness scan against a check name
// that only just entered the suite: the waiver below names hotpath, the
// waived line gives hotpath nothing to absorb, and the driver must call the
// waiver stale the first time the new check covers this file — but must
// not when the check is disabled, since a skipped check produces no
// liveness evidence either way.
package stalenewcheck

// double is allocation-free and not on any annotated hot path; the waiver
// is dead weight from the moment the check exists.
func double(n int) int {
	return n * 2 //lint:allow hotpath speculative waiver with nothing to suppress
}
