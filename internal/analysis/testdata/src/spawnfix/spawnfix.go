// Package spawnfix exercises the spawnescape check: every go statement's
// captured variables are classified confined / guarded / atomic /
// read-only / racy-unknown, and only racy-unknown is reported. The
// positives: a capture written in the goroutine while the launcher keeps
// using it, a loop-shared accumulator, an address handed to a dynamic
// callee, and an argument that escapes through a goroutine-spawning
// callee. The clean cases: confined handoffs, guarded and self-locking
// captures, atomic wrappers, and per-iteration loop variables. All
// spawners are unexported (the ctx check's exported-spawner rule) and
// every goroutine's completion signal is consumed (the goleak contract).
package spawnfix

import (
	"sync"
	"sync/atomic"
)

// launcherRace: n is written by the goroutine and read by the launcher
// after the spawn. The WaitGroup does order them, but that is exactly the
// invariant-true shape the check asks to be confined, guarded, or waived.
func launcherRace() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		n++
		wg.Done()
	}()
	wg.Wait()
	return n
}

// loopRace: sum is declared outside the loop, so every spawned goroutine
// shares it; the per-iteration value v is copied through the parameter and
// is each goroutine's own.
func loopRace(vals []int) int {
	sum := 0
	var wg sync.WaitGroup
	for _, v := range vals {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			sum += v
		}(v)
	}
	wg.Wait()
	return sum
}

// dynamicSpawn: &n escapes into a callee the analysis cannot see, and the
// launcher still reads n afterwards.
func dynamicSpawn(f func(*int)) int {
	n := 0
	done := make(chan struct{})
	go func() {
		f(&n)
		close(done)
	}()
	<-done
	return n
}

// waived: the index-per-goroutine pattern, suppressed with a reason.
func waived() []int {
	res := make([]int, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		//lint:allow spawnescape each goroutine writes its own index; wg.Wait orders the read
		go func(i int) {
			defer wg.Done()
			res[i] = i
		}(i)
	}
	wg.Wait()
	return res
}

// confined: buf lives entirely inside the goroutine after the spawn —
// ownership transferred, nothing reported.
func confined(vals []int) <-chan int {
	out := make(chan int, 1)
	buf := 0
	go func() {
		for _, v := range vals {
			buf += v
		}
		out <- buf
	}()
	return out
}

// box carries its own guard; the goroutine and the launcher both hold it.
type box struct {
	mu sync.Mutex
	v  int
}

func (b *box) add(n int) {
	b.mu.Lock()
	b.v += n
	b.mu.Unlock()
}

// guardedCapture: every access to b.v — inside the goroutines and after
// the join — holds the inferred guard, so the shared capture is clean.
func guardedCapture(b *box) int {
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.mu.Lock()
			b.v++
			b.mu.Unlock()
		}()
	}
	wg.Wait()
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}

// selfLocking: the spawned method acquires the struct's own mutex, so the
// receiver capture is synchronized even though the launcher keeps calling.
func selfLocking(b *box) {
	done := make(chan struct{})
	go func() {
		b.add(1)
		close(done)
	}()
	b.add(2)
	<-done
}

// atomicCapture: the counter's type carries its own discipline.
func atomicCapture() int64 {
	var c atomic.Int64
	done := make(chan struct{})
	go func() {
		c.Add(1)
		close(done)
	}()
	<-done
	return c.Load()
}

// point is the payload for the spawning-callee case.
type point struct {
	x int
}

// spawnHelper hands its argument to a goroutine: p becomes a spawning
// parameter, and call sites are audited like go statements. Inside the
// helper the capture is confined (no use after the spawn).
func spawnHelper(p *point, done chan struct{}) {
	go func() {
		p.x = 1
		close(done)
	}()
}

// viaHelper: p escaped through spawnHelper and the caller writes it right
// after — reported at the call site.
func viaHelper() int {
	p := &point{}
	done := make(chan struct{})
	spawnHelper(p, done)
	p.x = 2
	<-done
	return p.x
}
