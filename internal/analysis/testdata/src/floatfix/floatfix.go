// Package floatfix is a floateq-check fixture.
package floatfix

// Volts is a named float, as freq.Volts is.
type Volts float64

// Point carries float fields, as freq.Setting does.
type Point struct{ X, Y float64 }

// Equal compares floats exactly. want: floateq hit.
func Equal(a, b float64) bool {
	return a == b // want floateq: a == b
}

// NamedEqual compares named floats exactly. want: floateq hit.
func NamedEqual(a, b Volts) bool {
	return a != b // want floateq: named float !=
}

// StructEqual compares float-bearing structs. want: floateq hit.
func StructEqual(a, b Point) bool {
	return a == b // want floateq: struct with float fields
}

// IsNaN uses the portable self-comparison probe: clean.
func IsNaN(x float64) bool {
	return x != x
}

// IntEqual compares integers: clean.
func IntEqual(a, b int) bool {
	return a == b
}

// WaivedEqual carries a reasoned waiver: suppressed.
func WaivedEqual(a, b float64) bool {
	//lint:allow floateq fixture demonstrates a reasoned waiver
	return a == b
}
