// Package goleakfix exercises the goleak check: every goroutine launched in
// the long-running packages needs a visible termination contract — a
// WaitGroup joined on every path, a channel the launcher drains, a bounded
// local buffer, or a context bound inside the body.
package goleakfix

import (
	"context"
	"sync"
)

// leaky launches a goroutine with no join of any kind: reported.
func leaky() {
	go func() {
		_ = 1 + 1
	}()
}

// skippedWait signals Done but the fast path returns before Wait, so the
// join can be skipped: reported.
func skippedWait(fast bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	if fast {
		return
	}
	wg.Wait()
}

// dynamic launches through a function value; the body is invisible to the
// analysis: reported.
func dynamic(f func()) {
	go f()
}

// waived: a deliberately process-lifetime goroutine carries its reason.
func waived() {
	//lint:allow goleak metrics flusher is process-lifetime by design
	go func() {
		_ = 2 * 2
	}()
}

// joined waits on every path from the launch: clean.
func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// worker signals through its parameter; the evidence maps back to the
// launcher's argument.
func worker(wg *sync.WaitGroup) {
	defer wg.Done()
}

// joinedNamed launches a named callee and joins it: clean.
func joinedNamed() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

// Handoff sends exactly once on a locally made buffered channel: the send
// can never block, so a conditional receive is fine (the errCh-under-select
// pattern): clean.
func Handoff(ctx context.Context) error {
	errCh := make(chan error, 1)
	go func() {
		errCh <- nil
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CtxBound ties the goroutine's lifetime to a context: clean.
func CtxBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// externalChan sends on a caller-owned channel; the consumer lives
// elsewhere, so this launcher is not the one leaking: clean.
func externalChan(out chan<- int) {
	go func() {
		out <- 1
	}()
}
