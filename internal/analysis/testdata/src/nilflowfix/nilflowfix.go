// Package nilflowfix exercises the nilflow check: nil map writes and nil
// dereferences the lattice can actually witness — a declaration without a
// make, an initializer that runs on only one path — plus the
// interprocedural demand summaries that map a callee's unguarded
// dereference back to the call site that feeds it nil.
package nilflowfix

// Config is a pointer target for the dereference cases.
type Config struct {
	Name string
}

// NilMapWrite is reported: the map is declared but never made, so the
// write panics on every path.
func NilMapWrite() {
	var idx map[string]int
	idx["a"] = 1
}

// SomePath is reported: the map is made on the fast path only, and the
// write sits past the merge.
func SomePath(fast bool) {
	var idx map[string]int
	if fast {
		idx = make(map[string]int)
	}
	idx["a"] = 1
}

// Made is clean: make dominates the write.
func Made() map[string]int {
	m := make(map[string]int)
	m["a"] = 1
	return m
}

// NilDeref is reported: c stays nil on the else path and the field read
// dereferences it past the merge.
func NilDeref(use bool) string {
	var c *Config
	if use {
		c = &Config{Name: "x"}
	}
	return c.Name
}

// GuardedLocal is clean: the dereference runs only under the non-nil arm.
func GuardedLocal(use bool) string {
	var c *Config
	if use {
		c = &Config{Name: "x"}
	}
	if c != nil {
		return c.Name
	}
	return ""
}

// ShortCircuit is clean: the right operand of || runs under c != nil.
func ShortCircuit(use bool) bool {
	var c *Config
	if use {
		c = &Config{Name: "x"}
	}
	return c == nil || c.Name == ""
}

// NilFunc is reported: fn is assigned on one path only and called past
// the merge.
func NilFunc(skip bool) int {
	var fn func() int
	if !skip {
		fn = func() int { return 3 }
	}
	return fn()
}

// register writes into its parameter without a guard: callers owe it a
// non-nil map, and the demand summary records the write site.
func register(m map[string]int, k string) {
	m[k] = 1
}

// NilArg is reported at the call site: a definitely-nil map flows into
// register's demanding parameter.
func NilArg() {
	var m map[string]int
	register(m, "a")
}

// registerSafe guards before writing: no demand.
func registerSafe(m map[string]int, k string) {
	if m == nil {
		return
	}
	m[k] = 1
}

// NilArgSafe is clean: registerSafe tolerates nil.
func NilArgSafe() {
	var m map[string]int
	registerSafe(m, "a")
}

// Waived carries a reasoned waiver on the nil write.
func Waived() {
	var m map[string]int
	m["x"] = 1 //lint:allow nilflow fixture demonstrates waiver uptake on an intentional nil write
}
