// Package lockfix is a lockcopy-check fixture.
package lockfix

import "sync"

// Guarded embeds a mutex, as the Lab and the grid-cache shards do.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// ByValue receives the lock by value. want: lockcopy hit (parameter).
func ByValue(g Guarded) int {
	return g.n
}

// ByPointer shares the lock: clean.
func ByPointer(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Copy duplicates an existing guarded value. want: lockcopy hit
// (assignment).
func Copy(g *Guarded) int {
	local := *g
	return local.n
}

// Fresh initializes from a composite literal: clean — there is no prior
// lock state to fork.
func Fresh() *Guarded {
	g := Guarded{n: 1}
	return &g
}

// RangeCopy iterates elements by value. want: lockcopy hit (range).
func RangeCopy(gs []Guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}

// RangeIndex iterates by index: clean.
func RangeIndex(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

// WaivedCopy carries a reasoned waiver: suppressed.
func WaivedCopy(g *Guarded) int {
	//lint:allow lockcopy fixture demonstrates a reasoned waiver
	local := *g
	return local.n
}
