package analysis

import (
	"bytes"
	"strings"
	"testing"
)

func baselineDiag(file, check, msg string, line int) Diagnostic {
	return Diagnostic{File: file, Line: line, Col: 1, Check: check, Message: msg}
}

// TestBaselineRoundTrip pins the contract: old findings are absorbed even
// when they move lines, new findings and duplicated findings surface.
func TestBaselineRoundTrip(t *testing.T) {
	old := []Diagnostic{
		baselineDiag("a.go", "guardedby", "field T.n unguarded", 10),
		baselineDiag("a.go", "atomicmix", "field T.c torn", 20),
		baselineDiag("b.go", "spawnescape", "capture of x racy", 5),
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, old); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}

	head := []Diagnostic{
		// Same finding, moved 7 lines: absorbed.
		baselineDiag("a.go", "guardedby", "field T.n unguarded", 17),
		// Same message, second occurrence in the same file: NEW.
		baselineDiag("a.go", "guardedby", "field T.n unguarded", 40),
		// Same message, different file: NEW.
		baselineDiag("c.go", "atomicmix", "field T.c torn", 20),
		// Unchanged: absorbed.
		baselineDiag("b.go", "spawnescape", "capture of x racy", 5),
		// Brand new: NEW.
		baselineDiag("b.go", "goleak", "fire-and-forget", 9),
	}
	got := b.Filter(head)
	if len(got) != 3 {
		t.Fatalf("Filter kept %d findings, want 3: %v", len(got), got)
	}
	if got[0].Line != 40 || got[1].File != "c.go" || got[2].Check != "goleak" {
		t.Errorf("Filter kept the wrong findings: %v", got)
	}
}

// TestBaselineAbsorbsContract pins that the multiset key covers the
// contract check: a moved proof-obligation finding is absorbed, while a
// second occurrence of the same obligation in the same file surfaces.
func TestBaselineAbsorbsContract(t *testing.T) {
	msg := `cannot prove requires "durationNS >= 0" of EnergyJ: argument t has range (-inf, +inf)`
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, []Diagnostic{baselineDiag("sim.go", "contract", msg, 300)}); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	head := []Diagnostic{
		baselineDiag("sim.go", "contract", msg, 310), // moved: absorbed
		baselineDiag("sim.go", "contract", msg, 340), // second occurrence: NEW
	}
	got := b.Filter(head)
	if len(got) != 1 || got[0].Line != 340 {
		t.Errorf("Filter kept %v, want only the line-340 occurrence", got)
	}
}

// TestBaselineFileStable pins the serialized form: sorted, so consecutive
// writes of the same findings are byte-identical.
func TestBaselineFileStable(t *testing.T) {
	diags := []Diagnostic{
		baselineDiag("z.go", "units", "mhz vs hz", 3),
		baselineDiag("a.go", "floateq", "exact compare", 8),
		baselineDiag("a.go", "floateq", "exact compare", 9),
	}
	var b1, b2 bytes.Buffer
	if err := WriteBaseline(&b1, diags); err != nil {
		t.Fatal(err)
	}
	rev := []Diagnostic{diags[2], diags[1], diags[0]}
	if err := WriteBaseline(&b2, rev); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("baseline serialization depends on input order:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	if !strings.Contains(b1.String(), `"count": 2`) {
		t.Errorf("duplicate finding not count-collapsed:\n%s", b1.String())
	}
}

// TestBaselineRejectsGarbage: a malformed file is an error, not an empty
// baseline that would silently fail every finding as new.
func TestBaselineRejectsGarbage(t *testing.T) {
	if _, err := ReadBaseline(strings.NewReader("not json")); err == nil {
		t.Fatal("ReadBaseline accepted garbage")
	}
}
