package analysis

// determinism: the collection pipeline's contract is that a parallel sweep
// is byte-identical to the serial reference, and every figure regenerated
// from the same inputs is identical. That only holds if the simulation,
// trace, DRAM, and core-analysis paths contain no hidden entropy:
//
//   - no time.Now — wall-clock reads make output depend on when it ran;
//   - no global math/rand — the process-wide source is shared, racy under
//     the worker pool, and seeded differently per run. internal/rng's
//     explicitly-seeded SplitMix64 is the only sanctioned randomness;
//   - no emitting output while ranging over a map — Go randomizes map
//     iteration order per run, so printing or writing inside such a loop
//     produces run-dependent bytes.
//
// The check also covers the _test.go files of internal/trace and
// internal/experiments (AST-only): those suites assert race-ordering
// properties of the parallel engine and the singleflight cache, and
// wall-clock measurement there can mask the very reordering bugs the tests
// exist to catch.

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// determinismPkgs are the import paths whose non-test code must be entropy
// free.
var determinismPkgs = map[string]bool{
	"mcdvfs/internal/sim":   true,
	"mcdvfs/internal/trace": true,
	"mcdvfs/internal/dram":  true,
	"mcdvfs/internal/core":  true,
}

// determinismTestPkgs additionally have their _test.go files screened.
var determinismTestPkgs = map[string]bool{
	"mcdvfs/internal/trace":       true,
	"mcdvfs/internal/experiments": true,
}

// seededRandCtors are the math/rand(/v2) names that do not touch the global
// source: constructing an explicitly seeded generator is deterministic.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, "Source": true, "Rand": true,
}

// emissionFuncs are fmt functions whose call inside a map-range loop makes
// output depend on iteration order.
var emissionFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Append": true, "Appendf": true, "Appendln": true,
}

// DeterminismAnalyzer builds the determinism check.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name:         "determinism",
		Doc:          "forbid time.Now, global math/rand, and map-ordered output in replay-critical packages",
		Applies:      func(path string) bool { return determinismPkgs[path] },
		AnalyzeTests: func(path string) bool { return determinismTestPkgs[path] },
		Run:          runDeterminism,
	}
}

func runDeterminism(pass *Pass) {
	if pass.IncludeSrc {
		for _, f := range pass.Pkg.Syntax {
			determinismFile(pass, f)
		}
	}
	if pass.IncludeTests {
		for _, f := range pass.Pkg.TestSyntax {
			determinismTestFile(pass, f)
		}
	}
}

// determinismFile screens one type-checked file.
func determinismFile(pass *Pass, f *ast.File) {
	info := pass.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkgNameOf(info, id)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if n.Sel.Name == "Now" {
					pass.Reportf(n.Pos(), "time.Now makes replay-critical output depend on wall clock; thread explicit timestamps or durations instead")
				}
			case "math/rand", "math/rand/v2":
				if !seededRandCtors[n.Sel.Name] {
					pass.Reportf(n.Pos(), "global math/rand source is shared, racy, and run-seeded; use internal/rng (explicitly seeded SplitMix64)")
				}
			}
		case *ast.RangeStmt:
			if n.X == nil {
				return true
			}
			tv, ok := info.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			if !isMapType(tv.Type) {
				return true
			}
			if call, what := findEmission(pass, n.Body); call != nil {
				pass.Reportf(call.Pos(), "%s inside a map-range loop emits map-ordered output (Go randomizes iteration order); collect and sort keys first", what)
			}
		}
		return true
	})
}

// findEmission looks for the first order-sensitive emission inside a
// map-range body: a call to one of fmt's print family, or a method call
// whose name starts with Write or Print (buffers, writers, loggers).
func findEmission(pass *Pass, body ast.Node) (*ast.CallExpr, string) {
	var hit *ast.CallExpr
	var what string
	ast.Inspect(body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pkgNameOf(pass.Pkg.Info, id); ok {
				if pn.Imported().Path() == "fmt" && emissionFuncs[sel.Sel.Name] {
					hit, what = call, "fmt."+sel.Sel.Name
				}
				return true
			}
		}
		// A method call: only Write*/Print* names count as emission.
		name := sel.Sel.Name
		if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print") {
			hit, what = call, name
		}
		return true
	})
	return hit, what
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// determinismTestFile screens a _test.go file with imports resolved purely
// syntactically (test files are not type-checked).
func determinismTestFile(pass *Pass, f *ast.File) {
	// Map each local import name to its path.
	imports := make(map[string]string)
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		imports[name] = path
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch imports[id.Name] {
		case "time":
			// time.Since is time.Now in disguise; both are wall-clock
			// measurements. Timeouts (After, Sleep, NewTimer) stay legal —
			// a bounded wait is not a measurement.
			if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
				pass.Reportf(sel.Pos(), "time.%s in a concurrency test measures wall clock and can mask race-ordering bugs; assert through channel timeouts (select + time.After) instead", sel.Sel.Name)
			}
		case "math/rand", "math/rand/v2":
			if !seededRandCtors[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "global math/rand in tests makes failures irreproducible; use internal/rng with a fixed seed")
			}
		}
		return true
	})
}
