package analysis

// determinism: the collection pipeline's contract is that a parallel sweep
// is byte-identical to the serial reference, and every figure regenerated
// from the same inputs is identical. That only holds if the simulation,
// trace, DRAM, and core-analysis paths contain no hidden entropy:
//
//   - no time.Now — wall-clock reads make output depend on when it ran;
//   - no global math/rand — the process-wide source is shared, racy under
//     the worker pool, and seeded differently per run. internal/rng's
//     explicitly-seeded SplitMix64 is the only sanctioned randomness;
//   - no emitting output while ranging over a map — Go randomizes map
//     iteration order per run, so printing or writing inside such a loop
//     produces run-dependent bytes.
//
// The check also covers the _test.go files of internal/trace and
// internal/experiments (AST-only): those suites assert race-ordering
// properties of the parallel engine and the singleflight cache, and
// wall-clock measurement there can mask the very reordering bugs the tests
// exist to catch.
//
// The check is interprocedural: Prepare computes a purity summary for every
// function in the module — a function is pure iff its own body touches no
// entropy source and all of its statically resolvable callees are pure —
// and Run flags calls from replay-critical packages into impure helpers
// that live outside them, naming the ultimate entropy source. The direct
// per-expression findings (positions and messages) are unchanged, so
// existing waivers stay valid; helpers inside the replay-critical packages
// are not double-reported at their call sites because they already carry
// their own direct finding.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"mcdvfs/internal/analysis/flow"
)

// determinismPkgs are the import paths whose non-test code must be entropy
// free.
var determinismPkgs = map[string]bool{
	"mcdvfs/internal/sim":   true,
	"mcdvfs/internal/trace": true,
	"mcdvfs/internal/dram":  true,
	"mcdvfs/internal/core":  true,
}

// determinismTestPkgs additionally have their _test.go files screened.
var determinismTestPkgs = map[string]bool{
	"mcdvfs/internal/trace":       true,
	"mcdvfs/internal/experiments": true,
}

// seededRandCtors are the math/rand(/v2) names that do not touch the global
// source: constructing an explicitly seeded generator is deterministic.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, "Source": true, "Rand": true,
}

// emissionFuncs are fmt functions whose call inside a map-range loop makes
// output depend on iteration order.
var emissionFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Append": true, "Appendf": true, "Appendln": true,
}

// impureSource names the ultimate entropy source a function reaches, with
// its location rendered basename:line so messages stay path-independent.
type impureSource struct {
	desc string // "time.Now (engine.go:42)", "math/rand (jitter.go:9)"
}

// determState carries the purity summaries from Prepare into the passes.
type determState struct {
	impure map[*types.Func]impureSource
}

// DeterminismAnalyzer builds the determinism check.
func DeterminismAnalyzer() *Analyzer {
	st := &determState{}
	return &Analyzer{
		Name:         "determinism",
		Doc:          "forbid time.Now, global math/rand, and map-ordered output in replay-critical packages, including through calls into impure helpers",
		Applies:      func(path string) bool { return determinismPkgs[path] },
		AnalyzeTests: func(path string) bool { return determinismTestPkgs[path] },
		Prepare:      st.prepare,
		Run:          st.run,
	}
}

// prepare computes purity: a function is impure if its own body reads an
// entropy source, or (to a fixpoint) if any statically resolvable callee
// is impure. The root source propagates so call-site diagnostics can name
// it directly instead of pointing one hop down a helper chain.
func (st *determState) prepare(prog *flow.Program) {
	st.impure = make(map[*types.Func]impureSource)
	for _, fn := range prog.Funcs() {
		if desc, pos, ok := directEntropy(fn.Pkg.Info, fn.Decl); ok {
			st.impure[fn.Obj] = impureSource{desc: desc + " (" + relPos(prog.Fset, pos) + ")"}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs() {
			if _, done := st.impure[fn.Obj]; done {
				continue
			}
			info := fn.Pkg.Info
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := flow.CalleeObj(info, call)
				if callee == nil {
					return true
				}
				if src, bad := st.impure[callee]; bad {
					if _, done := st.impure[fn.Obj]; !done {
						st.impure[fn.Obj] = src
						changed = true
					}
				}
				return true
			})
		}
	}
}

// directEntropy reports the first entropy source read directly by fd's body.
func directEntropy(info *types.Info, fd *ast.FuncDecl) (string, token.Pos, bool) {
	var desc string
	var pos token.Pos
	if fd.Body == nil {
		return "", token.NoPos, false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pkgNameOf(info, id)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "time":
			if sel.Sel.Name == "Now" {
				desc, pos = "time.Now", sel.Pos()
			}
		case "math/rand", "math/rand/v2":
			if !seededRandCtors[sel.Sel.Name] {
				desc, pos = "global math/rand", sel.Pos()
			}
		}
		return true
	})
	return desc, pos, desc != ""
}

// relPos renders a position as basename:line.
func relPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

func (st *determState) run(pass *Pass) {
	if pass.IncludeSrc {
		for _, f := range pass.Pkg.Syntax {
			st.determinismFile(pass, f)
		}
	}
	if pass.IncludeTests {
		for _, f := range pass.Pkg.TestSyntax {
			determinismTestFile(pass, f)
		}
	}
}

// determinismFile screens one type-checked file.
func (st *determState) determinismFile(pass *Pass, f *ast.File) {
	info := pass.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkgNameOf(info, id)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if n.Sel.Name == "Now" {
					pass.Reportf(n.Pos(), "time.Now makes replay-critical output depend on wall clock; thread explicit timestamps or durations instead")
				}
			case "math/rand", "math/rand/v2":
				if !seededRandCtors[n.Sel.Name] {
					pass.Reportf(n.Pos(), "global math/rand source is shared, racy, and run-seeded; use internal/rng (explicitly seeded SplitMix64)")
				}
			}
		case *ast.CallExpr:
			st.checkImpureCall(pass, n)
		case *ast.RangeStmt:
			if n.X == nil {
				return true
			}
			tv, ok := info.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			if !isMapType(tv.Type) {
				return true
			}
			if call, what := findEmission(pass, n.Body); call != nil {
				pass.Reportf(call.Pos(), "%s inside a map-range loop emits map-ordered output (Go randomizes iteration order); collect and sort keys first", what)
			}
		}
		return true
	})
}

// checkImpureCall flags a call from a replay-critical package into an
// impure helper declared outside the replay-critical set. Helpers inside
// the set are skipped: they carry their own direct finding, and reporting
// the call too would say the same thing twice.
func (st *determState) checkImpureCall(pass *Pass, call *ast.CallExpr) {
	callee := flow.CalleeObj(pass.Pkg.Info, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	src, ok := st.impure[callee]
	if !ok || determinismPkgs[callee.Pkg().Path()] {
		return
	}
	pass.Reportf(call.Pos(), "call to %s reaches hidden entropy — %s; replay-critical output must not depend on it", callee.Name(), src.desc)
}

// findEmission looks for the first order-sensitive emission inside a
// map-range body: a call to one of fmt's print family, or a method call
// whose name starts with Write or Print (buffers, writers, loggers).
func findEmission(pass *Pass, body ast.Node) (*ast.CallExpr, string) {
	var hit *ast.CallExpr
	var what string
	ast.Inspect(body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pkgNameOf(pass.Pkg.Info, id); ok {
				if pn.Imported().Path() == "fmt" && emissionFuncs[sel.Sel.Name] {
					hit, what = call, "fmt."+sel.Sel.Name
				}
				return true
			}
		}
		// A method call: only Write*/Print* names count as emission.
		name := sel.Sel.Name
		if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print") {
			hit, what = call, name
		}
		return true
	})
	return hit, what
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// determinismTestFile screens a _test.go file with imports resolved purely
// syntactically (test files are not type-checked).
func determinismTestFile(pass *Pass, f *ast.File) {
	// Map each local import name to its path.
	imports := make(map[string]string)
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		imports[name] = path
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch imports[id.Name] {
		case "time":
			// time.Since is time.Now in disguise; both are wall-clock
			// measurements. Timeouts (After, Sleep, NewTimer) stay legal —
			// a bounded wait is not a measurement.
			if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
				pass.Reportf(sel.Pos(), "time.%s in a concurrency test measures wall clock and can mask race-ordering bugs; assert through channel timeouts (select + time.After) instead", sel.Sel.Name)
			}
		case "math/rand", "math/rand/v2":
			if !seededRandCtors[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "global math/rand in tests makes failures irreproducible; use internal/rng with a fixed seed")
			}
		}
		return true
	})
}
