package analysis

// The driver: load → scope → run → suppress → sort. cmd/mcdvfsvet is a thin
// flag-parsing shell over Run; tests call Run directly with ScopeAll to
// point every check at fixture packages.

import (
	"fmt"
	"go/ast"
	"path/filepath"
)

// Options configures one driver run.
type Options struct {
	// Patterns are package patterns: directories, or "dir/..." recursive
	// walks. Empty defaults to "./...".
	Patterns []string
	// Dir anchors module discovery and relative patterns; "" means the
	// current directory.
	Dir string
	// Disable names checks to skip.
	Disable map[string]bool
	// ScopeAll ignores every check's package scoping and test opt-in,
	// running everything everywhere. Fixture tests use it so a check can be
	// pointed at testdata packages whose import paths its scope would never
	// match.
	ScopeAll bool
}

// Run executes the suite and returns the surviving diagnostics in stable
// order. A non-nil error means the run itself failed (unparsable source,
// type errors, bad pattern) — distinct from "found violations".
func Run(opts Options) ([]Diagnostic, error) {
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Relative patterns resolve against opts.Dir, not the process cwd.
	resolved := make([]string, len(patterns))
	for i, p := range patterns {
		if filepath.IsAbs(p) {
			resolved[i] = p
		} else {
			resolved[i] = filepath.Join(dir, p)
		}
	}
	dirs, err := loader.Expand(resolved)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", opts.Patterns)
	}

	suite := Suite()
	known := map[string]bool{LintCheckName: true}
	for _, a := range suite {
		known[a.Name] = true
	}

	var diags []Diagnostic
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d)
		if err != nil {
			return nil, err
		}
		allFiles := append(append([]*ast.File(nil), pkg.Syntax...), pkg.TestSyntax...)
		sup, bad := collectSuppressions(pkg.Fset, allFiles, known)
		if !opts.Disable[LintCheckName] {
			diags = append(diags, bad...)
		}
		for _, a := range suite {
			if opts.Disable[a.Name] {
				continue
			}
			src := opts.ScopeAll || a.Applies(pkg.Path)
			tests := opts.ScopeAll || (a.AnalyzeTests != nil && a.AnalyzeTests(pkg.Path))
			if !src && !tests {
				continue
			}
			pass := &Pass{
				Pkg:          pkg,
				IncludeSrc:   src,
				IncludeTests: tests,
			}
			var found []Diagnostic
			pass.report = func(d Diagnostic) {
				d.Check = a.Name
				found = append(found, d)
			}
			a.Run(pass)
			diags = append(diags, sup.filter(found)...)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// RelTo rewrites diagnostic file paths relative to base where possible, for
// stable human-readable and golden output.
func RelTo(diags []Diagnostic, base string) {
	for i := range diags {
		if rel, err := filepath.Rel(base, diags[i].File); err == nil && !filepath.IsAbs(rel) {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
}
