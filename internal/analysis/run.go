package analysis

// The driver: expand → load (parallel) → prepare → run (parallel) → module
// passes → suppress → sort. cmd/mcdvfsvet is a thin flag-parsing shell over
// Run; tests call Run directly with ScopeAll to point every check at fixture
// packages.
//
// Parallelism shape: package loading fans out over a bounded worker pool
// (the loader's per-path flights dedup shared dependencies), then the
// per-package analyzer passes fan out the same way. Everything that orders
// output — suppression filtering, staleness, sorting — stays serial, so two
// runs over the same tree produce byte-identical reports regardless of
// worker count. That property is load-bearing: CI diffs mcdvfsvet -json
// output between branches.

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"mcdvfs/internal/analysis/flow"
)

// Options configures one driver run.
type Options struct {
	// Patterns are package patterns: directories, or "dir/..." recursive
	// walks. Empty defaults to "./...".
	Patterns []string
	// Dir anchors module discovery and relative patterns; "" means the
	// current directory.
	Dir string
	// Disable names checks to skip.
	Disable map[string]bool
	// ScopeAll ignores every check's package scoping and test opt-in,
	// running everything everywhere. Fixture tests use it so a check can be
	// pointed at testdata packages whose import paths its scope would never
	// match.
	ScopeAll bool
	// Workers bounds the load/check worker pool; <=0 means GOMAXPROCS.
	Workers int
}

// Run executes the suite and returns the surviving diagnostics in stable
// order. A non-nil error means the run itself failed (unparsable source,
// type errors, bad pattern) — distinct from "found violations".
func Run(opts Options) ([]Diagnostic, error) {
	res, err := execute(opts)
	if err != nil {
		return nil, err
	}
	return res.diags, nil
}

// ListWaivers executes the suite and returns every //lint:allow directive in
// the matched packages, with staleness computed against the run's raw
// diagnostics. All checks are force-enabled: a waiver's liveness is only
// meaningful if its check actually ran.
func ListWaivers(opts Options) ([]Waiver, error) {
	opts.Disable = nil
	res, err := execute(opts)
	if err != nil {
		return nil, err
	}
	return res.waivers, nil
}

// result is one run's full outcome.
type result struct {
	diags   []Diagnostic
	waivers []Waiver
}

func execute(opts Options) (*result, error) {
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Relative patterns resolve against opts.Dir, not the process cwd.
	resolved := make([]string, len(patterns))
	for i, p := range patterns {
		if filepath.IsAbs(p) {
			resolved[i] = p
		} else {
			resolved[i] = filepath.Join(dir, p)
		}
	}
	dirs, err := loader.Expand(resolved)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", opts.Patterns)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Load every matched package in parallel. Results keep dirs order; the
	// first error (in that order) wins, so failures are as deterministic as
	// successes.
	pkgs := make([]*Package, len(dirs))
	loadErrs := make([]error, len(dirs))
	forEach(len(dirs), workers, func(i int) {
		pkgs[i], loadErrs[i] = loader.LoadDir(dirs[i])
	})
	for _, err := range loadErrs {
		if err != nil {
			return nil, err
		}
	}

	// The Program spans every module package the loader saw — the matched
	// ones plus their transitive module dependencies — so call-graph
	// summaries cross package boundaries even when only one package is in
	// the pattern.
	var fpkgs []*flow.Package
	for _, p := range loader.Loaded() {
		fpkgs = append(fpkgs, &flow.Package{Path: p.Path, Files: p.Syntax, Types: p.Types, Info: p.Info})
	}
	prog := flow.NewProgram(loader.Fset, fpkgs)

	suite := Suite()
	known := map[string]bool{LintCheckName: true}
	for _, a := range suite {
		known[a.Name] = true
	}

	// Suppressions merge across packages (keys carry filenames, so the merge
	// is collision-free); waivers and malformed-directive reports accumulate
	// in package order.
	sup := make(suppressions)
	var waivers []Waiver
	var lintDiags []Diagnostic
	for _, pkg := range pkgs {
		allFiles := append(append([]*ast.File(nil), pkg.Syntax...), pkg.TestSyntax...)
		s, w, bad := collectSuppressions(pkg.Fset, allFiles, known)
		for k := range s {
			sup[k] = true
		}
		waivers = append(waivers, w...)
		lintDiags = append(lintDiags, bad...)
	}

	// Prepare hooks run serially, before any pass: summaries they compute
	// are read concurrently afterwards.
	for _, a := range suite {
		if a.Prepare != nil && !opts.Disable[a.Name] {
			a.Prepare(prog)
		}
	}

	// covered records which checks ran over which files, the precondition
	// for calling one of that file's waivers stale.
	covered := map[string]map[string]bool{}
	var coveredMu sync.Mutex
	markCovered := func(check string, files []*ast.File, fset *token.FileSet) {
		coveredMu.Lock()
		defer coveredMu.Unlock()
		for _, f := range files {
			name := fset.Position(f.Pos()).Filename
			if covered[name] == nil {
				covered[name] = map[string]bool{}
			}
			covered[name][check] = true
		}
	}

	// Per-package passes fan out; raw diagnostics land in per-(package,
	// analyzer) buckets so the serial filtering below sees a deterministic
	// stream.
	raw := make([][][]Diagnostic, len(pkgs))
	forEach(len(pkgs), workers, func(i int) {
		pkg := pkgs[i]
		raw[i] = make([][]Diagnostic, len(suite))
		for ai, a := range suite {
			if a.Run == nil || opts.Disable[a.Name] {
				continue
			}
			src := opts.ScopeAll || a.Applies(pkg.Path)
			tests := opts.ScopeAll || (a.AnalyzeTests != nil && a.AnalyzeTests(pkg.Path))
			if !src && !tests {
				continue
			}
			if src {
				markCovered(a.Name, pkg.Syntax, pkg.Fset)
			}
			if tests {
				markCovered(a.Name, pkg.TestSyntax, pkg.Fset)
			}
			pass := &Pass{
				Pkg:          pkg,
				Prog:         prog,
				IncludeSrc:   src,
				IncludeTests: tests,
			}
			pass.report = func(d Diagnostic) {
				d.Check = a.Name
				raw[i][ai] = append(raw[i][ai], d)
			}
			a.Run(pass)
		}
	})

	// Module passes run serially after every per-package pass: they see the
	// fully built Program and all in-scope packages at once.
	moduleRaw := make([][]Diagnostic, len(suite))
	for ai, a := range suite {
		if a.RunModule == nil || opts.Disable[a.Name] {
			continue
		}
		var scoped []*Package
		for _, pkg := range pkgs {
			if opts.ScopeAll || a.Applies(pkg.Path) {
				scoped = append(scoped, pkg)
				markCovered(a.Name, pkg.Syntax, pkg.Fset)
			}
		}
		if len(scoped) == 0 {
			continue
		}
		mp := &ModulePass{Prog: prog, Pkgs: scoped}
		mp.report = func(d Diagnostic) {
			d.Check = a.Name
			moduleRaw[ai] = append(moduleRaw[ai], d)
		}
		a.RunModule(mp)
	}

	// Serial filtering: waived diagnostics drop out and mark their keys
	// used; everything else survives.
	used := map[allowKey]bool{}
	var diags []Diagnostic
	for i := range raw {
		for _, ds := range raw[i] {
			diags = append(diags, sup.filter(ds, used)...)
		}
	}
	for _, ds := range moduleRaw {
		diags = append(diags, sup.filter(ds, used)...)
	}

	// Staleness: a waiver whose check ran over its file but absorbed nothing
	// is dead weight. The lint pseudo-check itself is exempt (its
	// diagnostics — including these — are produced after filtering, so
	// liveness would be self-referential).
	for i := range waivers {
		w := &waivers[i]
		if w.Check == LintCheckName || opts.Disable[w.Check] {
			continue
		}
		if !covered[w.File][w.Check] {
			continue
		}
		if used[allowKey{w.File, w.Line, w.Check}] || used[allowKey{w.File, w.Line + 1, w.Check}] {
			continue
		}
		w.Stale = true
		lintDiags = append(lintDiags, Diagnostic{
			File: w.File, Line: w.Line, Col: w.Col,
			Check:   LintCheckName,
			Message: fmt.Sprintf("stale lint:allow %s waiver: no %s finding on this or the next line", w.Check, w.Check),
		})
	}
	if !opts.Disable[LintCheckName] {
		diags = append(diags, sup.filter(lintDiags, used)...)
	}

	SortDiagnostics(diags)
	sort.Slice(waivers, func(i, j int) bool {
		a, b := waivers[i], waivers[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Check < b.Check
	})
	return &result{diags: diags, waivers: waivers}, nil
}

// forEach runs fn(0..n-1) over a bounded worker pool.
func forEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// RelTo rewrites diagnostic file paths relative to base where possible, for
// stable human-readable and golden output.
func RelTo(diags []Diagnostic, base string) {
	for i := range diags {
		if rel, err := filepath.Rel(base, diags[i].File); err == nil && !filepath.IsAbs(rel) {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
}

// RelWaiversTo does the same for waiver listings.
func RelWaiversTo(ws []Waiver, base string) {
	for i := range ws {
		if rel, err := filepath.Rel(base, ws[i].File); err == nil && !filepath.IsAbs(rel) {
			ws[i].File = filepath.ToSlash(rel)
		}
	}
}
