package analysis

// Package loading without x/tools: a module-aware loader that resolves
// intra-module import paths by walking the repository and everything else
// (the standard library) through go/importer's source importer. The loader
// exists so the analyzer suite can type-check the whole module offline with
// zero dependencies beyond the Go toolchain's own source tree.
//
// The loader is safe for concurrent LoadDir calls: each import path is
// type-checked exactly once behind a per-path flight, concurrent requests
// for the same path wait on the winner, and a waits-for walk turns the
// mutual-import deadlock (only reachable from already-illegal Go) into an
// error instead of a hang. The standard-library source importer is not
// documented concurrency-safe, so it sits behind its own mutex — stdlib
// type-checking serializes, module packages and the analyzer passes over
// them parallelize.

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Loader loads and type-checks packages of a single module.
type Loader struct {
	Fset    *token.FileSet
	modPath string
	modRoot string

	mu      sync.Mutex
	flights map[string]*pkgFlight // import path -> load in progress or done
}

// The standard library never changes while a process runs, and go/importer's
// source importer re-type-checks it from scratch per instance — by far the
// most expensive part of a cold run (a full std walk dwarfs the module's own
// type-check). One process-wide importer serves every Loader, so repeated
// Run calls — the fixture tests, an editor loop, the benchmark — pay for the
// stdlib exactly once. It owns a private FileSet: stdlib object positions
// resolve only against that set, which is safe because diagnostics and lock
// sites only ever point into module syntax. The source importer is not
// documented concurrency-safe, so all access serializes behind stdImportMu —
// stdlib type-checking serializes, module packages and the analyzer passes
// over them parallelize.
var (
	stdImportMu   sync.Mutex
	stdImportFset = token.NewFileSet()
	stdImporter   = importer.ForCompiler(stdImportFset, "source", nil)
)

// pkgFlight is one package's load: done closes when pkg/err are final.
// waitingOn names the import path this flight's owner is currently blocked
// on, for deadlock detection across flights.
type pkgFlight struct {
	done      chan struct{}
	pkg       *Package
	err       error
	waitingOn string
}

// NewLoader builds a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:    token.NewFileSet(),
		modPath: modPath,
		modRoot: root,
		flights: make(map[string]*pkgFlight),
	}, nil
}

// ModuleRoot returns the directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// Loaded returns every successfully loaded module package, sorted by import
// path — the set the flow.Program indexes, including transitive
// dependencies of the requested patterns.
func (l *Loader) Loaded() []*Package {
	l.mu.Lock()
	defer l.mu.Unlock()
	var pkgs []*Package
	for _, f := range l.flights {
		select {
		case <-f.done:
			if f.err == nil {
				pkgs = append(pkgs, f.pkg)
			}
		default:
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs
}

// findModule walks up from dir to the enclosing go.mod and reads its module
// path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", errors.New("analysis: no go.mod found; run from inside the module")
		}
		dir = parent
	}
}

// chainImporter implements types.Importer for one package under check,
// threading the chain of in-progress import paths so same-goroutine cycles
// are detected directly.
type chainImporter struct {
	l     *Loader
	chain []string
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l := c.l
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.load(path, filepath.Join(l.modRoot, rel), c.chain)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	stdImportMu.Lock()
	defer stdImportMu.Unlock()
	return stdImporter.Import(path)
}

// LoadDir loads and type-checks the package in dir (non-test files), parsing
// its _test.go files syntax-only alongside. Results are cached by import
// path, so shared dependencies type-check once no matter how many goroutines
// ask.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.dirImportPath(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, dir, nil)
}

// load returns the package for an import path, joining an in-flight load or
// owning a new one. chain holds the import paths the calling flight is in
// the middle of loading, for cycle detection.
func (l *Loader) load(path, dir string, chain []string) (*Package, error) {
	for _, p := range chain {
		if p == path {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
	}
	l.mu.Lock()
	if f, ok := l.flights[path]; ok {
		// Another flight owns this path. Before waiting, walk the waits-for
		// chain: if it leads back to a path we are loading, two flights are
		// waiting on each other through a (necessarily illegal) mutual
		// import — fail instead of deadlocking.
		if len(chain) > 0 {
			owner := chain[len(chain)-1]
			for hop, seen := path, map[string]bool{}; hop != "" && !seen[hop]; {
				seen[hop] = true
				for _, p := range chain {
					if hop == p {
						l.mu.Unlock()
						return nil, fmt.Errorf("analysis: import cycle through %s", path)
					}
				}
				next, ok := l.flights[hop]
				if !ok {
					break
				}
				hop = next.waitingOn
				_ = owner
			}
			if of, ok := l.flights[owner]; ok {
				of.waitingOn = path
				defer func() {
					l.mu.Lock()
					of.waitingOn = ""
					l.mu.Unlock()
				}()
			}
		}
		l.mu.Unlock()
		<-f.done
		return f.pkg, f.err
	}
	f := &pkgFlight{done: make(chan struct{})}
	l.flights[path] = f
	l.mu.Unlock()

	f.pkg, f.err = l.loadFresh(path, dir, append(chain, path))
	close(f.done)
	return f.pkg, f.err
}

// loadFresh parses and type-checks one package; the caller owns its flight.
func (l *Loader) loadFresh(path, dir string, chain []string) (*Package, error) {
	srcs, tests, err := splitGoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	parse := func(names []string) ([]*ast.File, error) {
		files := make([]*ast.File, 0, len(names))
		for _, name := range names {
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	syntax, err := parse(srcs)
	if err != nil {
		return nil, err
	}
	testSyntax, err := parse(tests)
	if err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &chainImporter{l: l, chain: chain},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, syntax, info)
	if len(typeErrs) > 0 {
		const max = 5
		if len(typeErrs) > max {
			typeErrs = append(typeErrs[:max], fmt.Errorf("... and %d more", len(typeErrs)-max))
		}
		return nil, fmt.Errorf("analysis: type-checking %s failed: %w", path, errors.Join(typeErrs...))
	}

	return &Package{
		Path:       path,
		Dir:        dir,
		Fset:       l.Fset,
		Syntax:     syntax,
		TestSyntax: testSyntax,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// dirImportPath maps a directory inside the module to its import path.
func (l *Loader) dirImportPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// splitGoFiles lists dir's Go files split into sources and tests, sorted so
// parse order (and therefore diagnostic order) is deterministic.
func splitGoFiles(dir string) (srcs, tests []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			tests = append(tests, name)
		} else {
			srcs = append(srcs, name)
		}
	}
	sort.Strings(srcs)
	sort.Strings(tests)
	return srcs, tests, nil
}

// Expand resolves command-line patterns to package directories. "./..."
// (or "dir/...") walks recursively; other patterns name single directories.
// testdata, vendor, and hidden directories are skipped, matching the go
// tool's convention — analyzer fixtures under testdata never load here.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = filepath.Clean(strings.TrimSuffix(base, "/"))
		if base == "" {
			base = "."
		}
		abs, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != abs && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			srcs, _, err := splitGoFiles(p)
			if err != nil {
				return err
			}
			if len(srcs) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}
