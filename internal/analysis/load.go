package analysis

// Package loading without x/tools: a module-aware loader that resolves
// intra-module import paths by walking the repository and everything else
// (the standard library) through go/importer's source importer. The loader
// exists so the analyzer suite can type-check the whole module offline with
// zero dependencies beyond the Go toolchain's own source tree.

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader loads and type-checks packages of a single module.
type Loader struct {
	Fset    *token.FileSet
	modPath string
	modRoot string
	std     types.Importer
	pkgs    map[string]*Package // import path -> loaded package
	loading map[string]bool     // cycle detection
}

// NewLoader builds a loader for the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modPath: modPath,
		modRoot: root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// ModuleRoot returns the directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// findModule walks up from dir to the enclosing go.mod and reads its module
// path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", errors.New("analysis: no go.mod found; run from inside the module")
		}
		dir = parent
	}
}

// Import implements types.Importer so packages under load can resolve their
// own dependencies: module-internal paths load recursively, everything else
// defers to the source importer over GOROOT.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadPath loads a module-internal import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	return l.LoadDir(filepath.Join(l.modRoot, rel))
}

// LoadDir loads and type-checks the package in dir (non-test files), parsing
// its _test.go files syntax-only alongside. Results are cached by import
// path, so shared dependencies type-check once.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.dirImportPath(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	srcs, tests, err := splitGoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	parse := func(names []string) ([]*ast.File, error) {
		files := make([]*ast.File, 0, len(names))
		for _, name := range names {
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	syntax, err := parse(srcs)
	if err != nil {
		return nil, err
	}
	testSyntax, err := parse(tests)
	if err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, syntax, info)
	if len(typeErrs) > 0 {
		const max = 5
		if len(typeErrs) > max {
			typeErrs = append(typeErrs[:max], fmt.Errorf("... and %d more", len(typeErrs)-max))
		}
		return nil, fmt.Errorf("analysis: type-checking %s failed: %w", path, errors.Join(typeErrs...))
	}

	pkg := &Package{
		Path:       path,
		Dir:        dir,
		Fset:       l.Fset,
		Syntax:     syntax,
		TestSyntax: testSyntax,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// dirImportPath maps a directory inside the module to its import path.
func (l *Loader) dirImportPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.modRoot)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// splitGoFiles lists dir's Go files split into sources and tests, sorted so
// parse order (and therefore diagnostic order) is deterministic.
func splitGoFiles(dir string) (srcs, tests []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			tests = append(tests, name)
		} else {
			srcs = append(srcs, name)
		}
	}
	sort.Strings(srcs)
	sort.Strings(tests)
	return srcs, tests, nil
}

// Expand resolves command-line patterns to package directories. "./..."
// (or "dir/...") walks recursively; other patterns name single directories.
// testdata, vendor, and hidden directories are skipped, matching the go
// tool's convention — analyzer fixtures under testdata never load here.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = filepath.Clean(strings.TrimSuffix(base, "/"))
		if base == "" {
			base = "."
		}
		abs, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != abs && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			srcs, _, err := splitGoFiles(p)
			if err != nil {
				return err
			}
			if len(srcs) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}
