package analysis

// Inline suppressions. A finding is intentional sometimes — freq.MHz's
// String method really does want an exact trunc comparison — and the right
// response is a visible, reasoned waiver at the site, not a weaker check.
//
//	//lint:allow <check> <reason>
//
// suppresses diagnostics of <check> on the directive's own line (trailing
// comment) and on the line directly below (standalone comment). The reason
// is mandatory: a waiver that cannot say why it exists is a bug report.
// Malformed or unknown-check directives are themselves diagnosed under the
// pseudo-check "lint", so typos cannot silently disable enforcement.

import (
	"go/ast"
	"go/token"
	"strings"
)

const allowPrefix = "//lint:allow"

// LintCheckName is the pseudo-check that reports malformed directives.
const LintCheckName = "lint"

type allowKey struct {
	file  string
	line  int
	check string
}

// suppressions indexes //lint:allow directives by (file, line, check).
type suppressions map[allowKey]bool

// collectSuppressions scans every comment of the given files. known maps
// valid check names; violations of the directive grammar are appended as
// "lint" diagnostics.
func collectSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var bad []Diagnostic
	report := func(pos token.Position, msg string) {
		bad = append(bad, Diagnostic{
			Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Check: LintCheckName, Message: msg,
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(pos, "lint:allow directive missing a check name")
					continue
				}
				check := fields[0]
				if !known[check] {
					report(pos, "lint:allow names unknown check \""+check+"\"")
					continue
				}
				if len(fields) < 2 {
					report(pos, "lint:allow "+check+" needs a reason — say why the finding is intentional")
					continue
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					sup[allowKey{pos.Filename, line, check}] = true
				}
			}
		}
	}
	return sup, bad
}

// filter drops diagnostics waived by a matching directive.
func (s suppressions) filter(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for _, d := range ds {
		if s[allowKey{d.File, d.Line, d.Check}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
