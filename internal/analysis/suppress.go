package analysis

// Inline suppressions. A finding is intentional sometimes — freq.MHz's
// String method really does want an exact trunc comparison — and the right
// response is a visible, reasoned waiver at the site, not a weaker check.
//
//	//lint:allow <check> <reason>
//
// suppresses diagnostics of <check> on the directive's own line (trailing
// comment) and on the line directly below (standalone comment). The reason
// is mandatory: a waiver that cannot say why it exists is a bug report.
// Malformed or unknown-check directives are themselves diagnosed under the
// pseudo-check "lint", so typos cannot silently disable enforcement.
//
// Every well-formed directive also becomes a Waiver record. The driver
// tracks which waivers actually absorbed a raw diagnostic during the run;
// the rest are stale — the code they excused has been fixed or moved — and
// are reported under "lint" so dead waivers cannot quietly accumulate.

import (
	"go/ast"
	"go/token"
	"strings"
)

const allowPrefix = "//lint:allow"

// LintCheckName is the pseudo-check that reports malformed directives and
// stale waivers.
const LintCheckName = "lint"

// Waiver is one well-formed //lint:allow directive, as listed by
// mcdvfsvet -waivers.
type Waiver struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Col    int    `json:"col"`
	Check  string `json:"check"`
	Reason string `json:"reason"`
	// Stale is set by the driver when no raw diagnostic of Check landed in
	// the waiver's two-line window during a run that had Check enabled over
	// this file.
	Stale bool `json:"stale"`
}

type allowKey struct {
	file  string
	line  int
	check string
}

// suppressions indexes //lint:allow directives by (file, line, check).
type suppressions map[allowKey]bool

// collectSuppressions scans every comment of the given files. known maps
// valid check names; violations of the directive grammar are appended as
// "lint" diagnostics, and every accepted directive is returned as a Waiver.
func collectSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) (suppressions, []Waiver, []Diagnostic) {
	sup := make(suppressions)
	var waivers []Waiver
	var bad []Diagnostic
	report := func(pos token.Position, msg string) {
		bad = append(bad, Diagnostic{
			Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Check: LintCheckName, Message: msg,
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(pos, "lint:allow directive missing a check name")
					continue
				}
				check := fields[0]
				if !known[check] {
					report(pos, "lint:allow names unknown check \""+check+"\"")
					continue
				}
				if len(fields) < 2 {
					report(pos, "lint:allow "+check+" needs a reason — say why the finding is intentional")
					continue
				}
				waivers = append(waivers, Waiver{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Check:  check,
					Reason: strings.Join(fields[1:], " "),
				})
				for _, line := range []int{pos.Line, pos.Line + 1} {
					sup[allowKey{pos.Filename, line, check}] = true
				}
			}
		}
	}
	return sup, waivers, bad
}

// filter drops diagnostics waived by a matching directive, marking each
// consumed key in used (the driver's staleness evidence). used may be nil.
func (s suppressions) filter(ds []Diagnostic, used map[allowKey]bool) []Diagnostic {
	out := ds[:0]
	for _, d := range ds {
		key := allowKey{d.File, d.Line, d.Check}
		if s[key] {
			if used != nil {
				used[key] = true
			}
			continue
		}
		out = append(out, d)
	}
	return out
}
