package analysis

// Edge cases of the //lint:allow grammar and its two-line window, exercised
// directly against collectSuppressions/filter on synthetic sources: the
// window semantics are a contract (a waiver reaches its own line and the
// line below, never further), and these tests pin the corners the fixture
// goldens do not reach.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestWaiverAboveMultilineStatement(t *testing.T) {
	// The waiver sits directly above a statement that spans lines 6-9. A
	// diagnostic at the statement's first line (where checks report calls
	// and comparisons) is inside the window; one at a continuation line is
	// not — the window is two lines, not "the whole statement".
	src := `package p

func f(a, b float64) bool {
	var eq bool
	//lint:allow floateq exact sentinel comparison
	eq = a ==
		b
	return eq
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "edge.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	known := map[string]bool{"floateq": true}
	sup, waivers, bad := collectSuppressions(fset, []*ast.File{f}, known)
	if len(bad) != 0 {
		t.Fatalf("unexpected lint diagnostics: %v", bad)
	}
	if len(waivers) != 1 || waivers[0].Check != "floateq" {
		t.Fatalf("waivers = %v, want one floateq", waivers)
	}
	firstLine := Diagnostic{File: "edge.go", Line: 6, Check: "floateq", Message: "x"}
	contLine := Diagnostic{File: "edge.go", Line: 7, Check: "floateq", Message: "x"}
	got := sup.filter([]Diagnostic{firstLine, contLine}, nil)
	if len(got) != 1 || got[0].Line != 7 {
		t.Errorf("filter kept %v; want only the continuation-line diagnostic (line 7)", got)
	}
}

func TestTwoWaiversDifferentChecksOneLine(t *testing.T) {
	// A standalone directive above the statement and a trailing directive on
	// the statement both cover the same code line, for different checks.
	src := `package p

func f(a, b float64) error {
	//lint:allow floateq exact sentinel comparison
	_ = a == b //lint:allow errflow best-effort probe
	return nil
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "edge.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	known := map[string]bool{"floateq": true, "errflow": true}
	sup, waivers, bad := collectSuppressions(fset, []*ast.File{f}, known)
	if len(bad) != 0 {
		t.Fatalf("unexpected lint diagnostics: %v", bad)
	}
	if len(waivers) != 2 {
		t.Fatalf("got %d waivers, want 2: %v", len(waivers), waivers)
	}
	ds := []Diagnostic{
		{File: "edge.go", Line: 5, Check: "floateq", Message: "x"},
		{File: "edge.go", Line: 5, Check: "errflow", Message: "y"},
		{File: "edge.go", Line: 5, Check: "ctx", Message: "z"}, // no waiver for ctx
	}
	used := map[allowKey]bool{}
	got := sup.filter(ds, used)
	if len(got) != 1 || got[0].Check != "ctx" {
		t.Errorf("filter kept %v; want only the unwaived ctx diagnostic", got)
	}
	if len(used) != 2 {
		t.Errorf("used = %v; want both waiver keys marked consumed", used)
	}
}

func TestMalformedReasonVariants(t *testing.T) {
	// Reason grammar corners: missing reason, whitespace-only reason, and a
	// near-miss prefix that is not our directive at all.
	src := `package p

//lint:allow floateq
//lint:allow floateq
//lint:allowance is a different word entirely
const V = 1
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "edge.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	known := map[string]bool{"floateq": true}
	sup, waivers, bad := collectSuppressions(fset, []*ast.File{f}, known)
	if len(waivers) != 0 {
		t.Errorf("malformed directives produced waivers: %v", waivers)
	}
	if len(sup) != 0 {
		t.Errorf("malformed directives suppress: %v", sup)
	}
	if len(bad) != 2 {
		t.Fatalf("got %d lint diagnostics, want 2 (the //lint:allowance line is not ours): %v", len(bad), bad)
	}
	for _, d := range bad {
		if d.Check != LintCheckName {
			t.Errorf("diagnostic %v not under the lint pseudo-check", d)
		}
		if !strings.Contains(d.Message, "reason") {
			t.Errorf("diagnostic %q does not explain the missing reason", d.Message)
		}
	}
}

func TestStaleWaiverForNewlyAddedCheck(t *testing.T) {
	// A waiver can predate the check it names: hotpath entered the suite
	// after //lint:allow grew its vocabulary from the suite's check list, so
	// a speculative (or left-behind) hotpath waiver becomes evaluable the
	// moment the new check first covers its file — and must go stale then,
	// not be grandfathered.
	opts := Options{Patterns: []string{"./testdata/src/stalenewcheck"}, ScopeAll: true}
	diags, err := Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	stale := false
	for _, d := range diags {
		if d.Check == LintCheckName && strings.Contains(d.Message, "stale lint:allow hotpath") {
			stale = true
		}
	}
	if !stale {
		t.Errorf("hotpath waiver with nothing to absorb not reported stale; diagnostics: %v", diags)
	}

	// Disabling the newly added check removes the evidence, not the waiver:
	// staleness must not be claimed for a check that did not run.
	disabled := opts
	disabled.Disable = map[string]bool{"hotpath": true}
	diags, err = Run(disabled)
	if err != nil {
		t.Fatalf("Run(disable hotpath): %v", err)
	}
	for _, d := range diags {
		if d.Check == LintCheckName && strings.Contains(d.Message, "stale") {
			t.Errorf("waiver called stale while its check was disabled: %v", d)
		}
	}

	// The -waivers inventory force-enables every check (liveness is only
	// meaningful if the check ran), so it marks the waiver stale even when
	// the caller's options disable the new check.
	ws, err := ListWaivers(opts)
	if err != nil {
		t.Fatalf("ListWaivers: %v", err)
	}
	if len(ws) != 1 || ws[0].Check != "hotpath" || !ws[0].Stale {
		t.Errorf("inventory = %+v; want the single hotpath waiver marked stale", ws)
	}
	if ws, err = ListWaivers(disabled); err != nil {
		t.Fatalf("ListWaivers(disable hotpath): %v", err)
	}
	if len(ws) != 1 || !ws[0].Stale {
		t.Errorf("inventory under -disable = %+v; want staleness still computed (ListWaivers force-enables checks)", ws)
	}
}

func TestWaiverInsideFixturePackage(t *testing.T) {
	// Fixture packages are analyzed with ScopeAll like any other source; a
	// waiver inside one must suppress there too — the goleakfix fixture
	// carries a waived go statement that must not surface, while the
	// unwaived launches on other lines still do.
	diags, err := Run(Options{
		Patterns: []string{"./testdata/src/goleakfix"},
		ScopeAll: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sawGoleak := false
	for _, d := range diags {
		if d.Check != "goleak" {
			continue
		}
		sawGoleak = true
		if d.Line == 42 {
			t.Errorf("waived goroutine launch reported anyway: %v", d)
		}
	}
	if !sawGoleak {
		t.Fatalf("fixture produced no goleak diagnostics at all; positive cases are broken")
	}
}
