package analysis

// guardedby infers, per struct, which mutex guards which fields — from the
// code's own majority behaviour — and flags the minority accesses that skip
// the guard. The inference needs no annotations: if four of five accesses
// to Node.peers happen with Node.mu provably held (a must-analysis over the
// CFG: flow.LockStatesOf), mu is the guard, and the fifth access is the
// finding. Accesses reached through module-static callees count too: a
// method whose every in-module call site holds mu inherits mu as
// caller-held, the same summary style the PR 4 flow checks use.
//
// The evidence model (DESIGN.md §7.4):
//
//   - Evidence comes only from the concurrency-bearing runtime packages
//     (internal/serve, cluster, trace, cache) — the scope where a mutex on
//     a struct means something.
//   - A field is guardable unless its type is itself a synchronizer:
//     sync.* and sync/atomic types and channels carry their own discipline
//     (atomicmix owns the atomic side).
//   - Accesses through a base value declared in the enclosing function body
//     are construction-time and excluded (the owned check's philosophy: a
//     value is single-threaded until published).
//   - Accesses inside nested function literals are analyzed as independent
//     units with an empty entry lock state: when a closure runs, the
//     launcher's locks are not (provably) held.
//   - The guard is inferred when at least two accesses hold one mutex of
//     the owning struct and they outnumber the accesses that do not.
//
// Two diagnostic classes: an unguarded access to an inferred-guarded field
// (witnessed by the enclosing function — the path from its entry reaches
// the access without the guard), and a write under RLock (a shared hold
// cannot order concurrent writers).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mcdvfs/internal/analysis/flow"
)

// concurrencyScope is the package set the three PR 9 concurrency checks
// (guardedby, atomicmix, spawnescape) cover: the runtime system, where
// shared mutable state lives. Fixture packages opt in by import-path
// convention so the golden tests exercise the same Applies gate.
var concurrencyScope = []string{
	"mcdvfs/internal/serve",
	"mcdvfs/internal/cluster",
	"mcdvfs/internal/trace",
	"mcdvfs/internal/cache",
}

func concurrencyApplies(pkgPath string) bool {
	for _, p := range concurrencyScope {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	// Fixture packages for the concurrency checks (guardedfix, atomicfix,
	// spawnfix) are single-segment paths like the other fixtures.
	switch pkgPath {
	case "guardedfix", "atomicfix", "spawnfix":
		return true
	}
	return false
}

// GuardedByAnalyzer returns the mutex-guard inference check.
func GuardedByAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "guardedby",
		Doc:       "infer per-struct mutex guards from majority access evidence; flag minority unguarded accesses and writes under RLock",
		Applies:   concurrencyApplies,
		RunModule: runGuardedBy,
	}
}

// ---------------------------------------------------------------------------
// The guard model, shared between guardedby (which reports on it) and
// spawnescape (which consults the inferred guards and the lock summaries).

// fieldAccess is one evidence point: a syntactic access to a guardable
// struct field inside one analysis unit.
type fieldAccess struct {
	field *types.Var   // the accessed field object
	pos   token.Pos    // position of the selector
	write bool         // assigned, inc/dec'd, or address-taken
	held  flow.HeldSet // locks provably held locally at the access (may be empty, never nil)
	fn    *flow.Func   // enclosing declared function; nil when the unit is a nested literal
	local bool         // base value declared in the unit body (construction-time)
}

// structInfo describes one struct type in scope that owns at least one
// mutex field.
type structInfo struct {
	named   *types.Named
	mutexes []*types.Var // mutex-typed fields in declaration order
}

// heldCallSite is one static call site feeding the caller-held summary.
type heldCallSite struct {
	held    flow.HeldSet // locally held at the site (empty for defer/go)
	caller  *flow.Func   // nil when the site is inside a function literal
	underGo bool         // `go f(...)`: the callee runs without the caller's locks
}

type guardModel struct {
	prog *flow.Program

	// owners maps every guardable field to its owning struct (only structs
	// with at least one mutex field are registered).
	owners map[*types.Var]*structInfo
	// structs indexes the same structInfos by their named type.
	structs map[*types.Named]*structInfo
	// accesses collects evidence per guardable field.
	accesses map[*types.Var][]fieldAccess
	// callerHeld is the converged summary: locks held at every module-static
	// call site of the function (nil entry = no call-site evidence = empty).
	callerHeld map[*flow.Func]flow.HeldSet
	// guards is the inference result: field -> its majority mutex.
	guards map[*types.Var]*types.Var
	// guardStats records the (guarded, total) evidence counts behind guards.
	guardStats map[*types.Var][2]int
	// acquires is the transitive lock-acquisition summary per function
	// (locks Locked or RLocked by the function or any static callee) —
	// spawnescape uses it to treat self-locking method calls as guarded.
	acquires map[*flow.Func]map[*types.Var]bool
	// writesRecvField reports whether a function plainly writes any field
	// of its receiver outside every acquired lock — spawnescape's signal
	// that handing the receiver to a goroutine is not read-only.
	writesRecvField map[*flow.Func]bool
}

// guardModelCache memoizes the model per loaded Program so guardedby and
// spawnescape (identical scope, serial module passes) build it once.
var (
	guardModelMu    sync.Mutex
	guardModelCache = map[*flow.Program]*guardModel{}
)

func guardModelOf(mp *ModulePass) *guardModel {
	guardModelMu.Lock()
	defer guardModelMu.Unlock()
	if m, ok := guardModelCache[mp.Prog]; ok {
		return m
	}
	m := buildGuardModel(mp)
	guardModelCache[mp.Prog] = m
	return m
}

func buildGuardModel(mp *ModulePass) *guardModel {
	m := &guardModel{
		prog:            mp.Prog,
		owners:          map[*types.Var]*structInfo{},
		structs:         map[*types.Named]*structInfo{},
		accesses:        map[*types.Var][]fieldAccess{},
		callerHeld:      map[*flow.Func]flow.HeldSet{},
		guards:          map[*types.Var]*types.Var{},
		guardStats:      map[*types.Var][2]int{},
		acquires:        map[*flow.Func]map[*types.Var]bool{},
		writesRecvField: map[*flow.Func]bool{},
	}
	inScope := map[*Package]bool{}
	for _, pkg := range mp.Pkgs {
		inScope[pkg] = true
		m.indexStructs(pkg)
	}

	// Walk every function of every in-scope package: collect field-access
	// evidence, call sites for the caller-held summary, and direct lock
	// acquisitions for the transitive summary.
	sites := map[*flow.Func][]heldCallSite{}
	callEdges := map[*flow.Func][]*flow.Func{} // caller -> static callees
	directAcq := map[*flow.Func]map[*types.Var]bool{}
	for _, fn := range mp.Prog.Funcs() {
		pkg := m.scopedPkg(mp, fn)
		if pkg == nil {
			continue
		}
		m.scanFunc(fn, pkg, sites, callEdges, directAcq)
	}

	m.solveCallerHeld(sites)
	m.solveAcquires(callEdges, directAcq)
	m.inferGuards()
	return m
}

// scopedPkg maps a flow.Func back to the in-scope analysis package, or nil.
func (m *guardModel) scopedPkg(mp *ModulePass, fn *flow.Func) *Package {
	for _, pkg := range mp.Pkgs {
		if pkg.Types == fn.Pkg.Types {
			return pkg
		}
	}
	return nil
}

// indexStructs registers every named struct type of pkg that owns a mutex
// field, mapping its guardable fields to the structInfo.
func (m *guardModel) indexStructs(pkg *Package) {
	scope := pkg.Types.Scope()
	names := scope.Names() // already sorted
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		info := &structInfo{named: named}
		var guardable []*types.Var
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isMutexType(f.Type()) {
				info.mutexes = append(info.mutexes, f)
				continue
			}
			if isSelfSyncType(f.Type()) {
				continue // carries its own discipline
			}
			guardable = append(guardable, f)
		}
		if len(info.mutexes) == 0 {
			continue
		}
		m.structs[named] = info
		for _, f := range guardable {
			m.owners[f] = info
		}
	}
}

// scanFunc analyzes one declared function and its nested literals, each as
// an independent unit with its own CFG and lock states.
func (m *guardModel) scanFunc(fn *flow.Func, pkg *Package, sites map[*flow.Func][]heldCallSite, callEdges map[*flow.Func][]*flow.Func, directAcq map[*flow.Func]map[*types.Var]bool) {
	units := []ast.Node{fn.Decl}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			units = append(units, lit)
		}
		return true
	})
	for _, unit := range units {
		var cfg *flow.CFG
		if unit == ast.Node(fn.Decl) {
			cfg = fn.CFG()
		} else {
			cfg = flow.New(unit)
		}
		m.scanUnit(fn, unit, cfg, pkg, sites, callEdges, directAcq)
	}
}

func (m *guardModel) scanUnit(fn *flow.Func, unit ast.Node, cfg *flow.CFG, pkg *Package, sites map[*flow.Func][]heldCallSite, callEdges map[*flow.Func][]*flow.Func, directAcq map[*flow.Func]map[*types.Var]bool) {
	info := pkg.Info
	ls := flow.LockStatesOf(cfg, info)
	body := flow.FuncBody(unit)
	isLit := unit != ast.Node(fn.Decl)

	// Write targets: every expression on the spine of an assignment LHS, an
	// inc/dec target, or an address-taken operand.
	writes := map[ast.Node]bool{}
	// Calls directly under a `go` statement.
	goCalls := map[*ast.CallExpr]bool{}
	walkUnit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWriteSpine(lhs, writes)
			}
		case *ast.IncDecStmt:
			markWriteSpine(n.X, writes)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markWriteSpine(n.X, writes)
			}
		case *ast.GoStmt:
			goCalls[n.Call] = true
		}
	})

	var accessFn *flow.Func
	if !isLit {
		accessFn = fn
	}
	walkUnit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			fv, ok := info.Uses[n.Sel].(*types.Var)
			if !ok || !fv.IsField() {
				return
			}
			if _, tracked := m.owners[fv]; !tracked {
				return
			}
			held := ls.HeldAt(n)
			if held == nil {
				return // defer subtree or unreachable: no fact here
			}
			m.accesses[fv] = append(m.accesses[fv], fieldAccess{
				field: fv,
				pos:   n.Sel.Pos(),
				write: writes[n],
				held:  held,
				fn:    accessFn,
				local: baseIsLocal(info, n, body),
			})
		case *ast.CallExpr:
			if x, op, ok := flow.MutexOp(info, n); ok {
				if op == "Lock" || op == "RLock" {
					if v := flow.LockClassOf(info, x); v != nil && !isLit {
						if directAcq[fn] == nil {
							directAcq[fn] = map[*types.Var]bool{}
						}
						directAcq[fn][v] = true
					}
				}
				return
			}
			callee := m.prog.Callee(info, n)
			if callee == nil {
				return
			}
			held := heldClone(ls.HeldAt(n)) // nil (defer subtree) clones to empty
			sites[callee] = append(sites[callee], heldCallSite{
				held:    held,
				caller:  accessFn,
				underGo: goCalls[n],
			})
			if !isLit {
				callEdges[fn] = append(callEdges[fn], callee)
			}
		}
	})

	if !isLit {
		m.scanRecvWrites(fn, info, body, writes, ls)
	}
}

// scanRecvWrites records whether fn plainly writes a field of its receiver:
// the spawnescape signal that the method mutates shared state. Writes made
// with a struct mutex held do not count (they are guarded, not plain).
func (m *guardModel) scanRecvWrites(fn *flow.Func, info *types.Info, body *ast.BlockStmt, writes map[ast.Node]bool, ls *flow.LockStates) {
	recv := receiverVar(fn)
	if recv == nil {
		return
	}
	walkUnit(body, func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !writes[sel] {
			return
		}
		fv, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok || !fv.IsField() || isSelfSyncType(fv.Type()) {
			return
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); !ok || info.Uses[id] != recv {
			return
		}
		if len(ls.HeldAt(sel)) == 0 {
			m.writesRecvField[fn] = true
		}
	})
}

// solveCallerHeld runs the caller-held fixpoint: for each function, the
// intersection over its module-static call sites of (locally held at the
// site ∪ caller-held of the calling function). `go` sites contribute the
// empty set, sites inside function literals only their local state.
// Functions whose every site transitively lacks a base case stay ⊤ and are
// treated as empty (they are never actually entered).
func (m *guardModel) solveCallerHeld(sites map[*flow.Func][]heldCallSite) {
	order := m.prog.Funcs()
	for changed := true; changed; {
		changed = false
		for _, f := range order {
			ss, ok := sites[f]
			if !ok {
				continue // no sites: summary stays empty (nil)
			}
			var nh flow.HeldSet // ⊤ until a site contributes
			top := false
			for _, s := range ss {
				if s.underGo {
					nh = flow.HeldSet{}
					break
				}
				contrib := heldClone(s.held)
				if s.caller != nil {
					if ch, ok := m.callerHeld[s.caller]; ok {
						heldUnion(contrib, ch)
					} else if _, hasSites := sites[s.caller]; hasSites {
						top = true
						continue // caller still ⊤: site contributes ⊤, identity
					}
				}
				nh = heldMeet(nh, contrib)
			}
			if nh == nil {
				if !top {
					nh = flow.HeldSet{}
				} else {
					continue // all sites ⊤: stay unresolved this round
				}
			}
			if old, ok := m.callerHeld[f]; !ok || !heldEq(nh, old) {
				m.callerHeld[f] = nh
				changed = true
			}
		}
	}
}

// solveAcquires propagates direct lock acquisitions over static call edges
// to a transitive per-function summary.
func (m *guardModel) solveAcquires(callEdges map[*flow.Func][]*flow.Func, directAcq map[*flow.Func]map[*types.Var]bool) {
	for f, acq := range directAcq {
		cp := map[*types.Var]bool{}
		for v := range acq {
			cp[v] = true
		}
		m.acquires[f] = cp
	}
	for changed := true; changed; {
		changed = false
		for _, f := range m.prog.Funcs() {
			for _, callee := range callEdges[f] {
				for v := range m.acquires[callee] {
					if m.acquires[f] == nil {
						m.acquires[f] = map[*types.Var]bool{}
					}
					if !m.acquires[f][v] {
						m.acquires[f][v] = true
						changed = true
					}
				}
			}
		}
	}
}

// effectiveHeld is the lock set credited to an access: locally held plus
// the caller-held summary of the enclosing declared function.
func (m *guardModel) effectiveHeld(a fieldAccess) flow.HeldSet {
	eh := heldClone(a.held)
	if a.fn != nil {
		heldUnion(eh, m.callerHeld[a.fn])
	}
	return eh
}

// inferGuards decides, per field, whether the majority of its accesses hold
// one mutex of the owning struct.
func (m *guardModel) inferGuards() {
	for fv, owner := range m.owners {
		var evidence []fieldAccess
		for _, a := range m.accesses[fv] {
			if !a.local {
				evidence = append(evidence, a)
			}
		}
		if len(evidence) < 2 {
			continue
		}
		var best *types.Var
		bestCount := 0
		for _, mu := range owner.mutexes { // declaration order: stable ties
			count := 0
			for _, a := range evidence {
				if m.effectiveHeld(a).Has(mu) {
					count++
				}
			}
			if count > bestCount {
				best, bestCount = mu, count
			}
		}
		if best == nil || bestCount < 2 || bestCount <= len(evidence)-bestCount {
			continue
		}
		m.guards[fv] = best
		m.guardStats[fv] = [2]int{bestCount, len(evidence)}
	}
}

// ---------------------------------------------------------------------------
// The reporting pass.

func runGuardedBy(mp *ModulePass) {
	m := guardModelOf(mp)

	// Deterministic field order: by (filename, offset) of the field decl.
	fields := make([]*types.Var, 0, len(m.guards))
	for fv := range m.guards {
		fields = append(fields, fv)
	}
	pos := func(p token.Pos) token.Position { return mp.Prog.Fset.Position(p) }
	sort.Slice(fields, func(i, j int) bool {
		a, b := pos(fields[i].Pos()), pos(fields[j].Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})

	for _, fv := range fields {
		guard := m.guards[fv]
		stats := m.guardStats[fv]
		owner := m.owners[fv].named.Obj().Name()
		for _, a := range m.accesses[fv] {
			if a.local {
				continue
			}
			eh := m.effectiveHeld(a)
			switch {
			case !eh.Has(guard):
				mp.Reportf(a.pos,
					"field %s.%s is guarded by %s (held on %d/%d accesses), but this access in %s is unguarded: no %s.Lock/RLock on the path from the function entry, and no module-static caller holds it",
					owner, fv.Name(), guard.Name(), stats[0], stats[1],
					accessSiteName(a), guard.Name())
			case a.write && eh[guard] == flow.LockRead:
				mp.Reportf(a.pos,
					"write to %s.%s in %s holds only %s.RLock: a shared hold cannot order concurrent writers; use %s.Lock",
					owner, fv.Name(), accessSiteName(a), guard.Name(), guard.Name())
			}
		}
	}
}

// accessSiteName names the unit an access sits in, for the witness text.
func accessSiteName(a fieldAccess) string {
	if a.fn == nil {
		return "a function literal"
	}
	return funcDisplayName(a.fn)
}

// funcDisplayName renders "(*T).Method" / "T.Method" / "Func".
func funcDisplayName(f *flow.Func) string {
	sig, ok := f.Obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return f.Obj.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		if n, ok := p.Elem().(*types.Named); ok {
			return fmt.Sprintf("(*%s).%s", n.Obj().Name(), f.Obj.Name())
		}
	}
	if n, ok := t.(*types.Named); ok {
		return fmt.Sprintf("%s.%s", n.Obj().Name(), f.Obj.Name())
	}
	return f.Obj.Name()
}

// ---------------------------------------------------------------------------
// Shared structural helpers.

// walkUnit visits every node of a unit body except nested function literals
// (they are independent units).
func walkUnit(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			visit(n)
			return false
		}
		visit(n)
		return true
	})
}

// markWriteSpine marks the chain of expressions an assignment writes
// through: s.items[k] = v writes the map held in s.items, *s.p = v writes
// through the pointer field. Index expressions mark only the container.
func markWriteSpine(e ast.Expr, writes map[ast.Node]bool) {
	for {
		writes[e] = true
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return
		}
	}
}

// baseIsLocal reports whether the root identifier of a selector chain is a
// variable declared inside body — the construction-time pattern guardedby
// and atomicmix exclude from evidence.
func baseIsLocal(info *types.Info, sel *ast.SelectorExpr, body *ast.BlockStmt) bool {
	root := rootIdentOf(sel.X)
	if root == nil {
		return false
	}
	v, ok := info.Uses[root].(*types.Var)
	if !ok {
		if v, ok = info.Defs[root].(*types.Var); !ok {
			return false
		}
	}
	return v.Pos() >= body.Pos() && v.Pos() <= body.End()
}

// rootIdentOf unwraps a selector/index/deref chain to its base identifier,
// or nil when the base is a call or other non-variable expression.
func rootIdentOf(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func receiverVar(f *flow.Func) *types.Var {
	sig, ok := f.Obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv()
}

// isMutexType reports whether t (or its pointee) is sync.Mutex/sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamedIn(t, "sync", "Mutex") || isNamedIn(t, "sync", "RWMutex")
}

// isSelfSyncType reports whether t carries its own synchronization
// discipline: channels, anything from sync or sync/atomic (behind at most
// one pointer).
func isSelfSyncType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

func isNamedIn(t types.Type, pkg, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkg && obj.Name() == name
}

// ---------------------------------------------------------------------------
// HeldSet arithmetic (flow.HeldSet is a plain map type).

func heldClone(h flow.HeldSet) flow.HeldSet {
	out := make(flow.HeldSet, len(h))
	for v, mode := range h {
		out[v] = mode
	}
	return out
}

// heldUnion adds b into a; the stronger mode wins.
func heldUnion(a, b flow.HeldSet) {
	for v, mode := range b {
		if a[v] != flow.LockWrite {
			a[v] = mode
		}
	}
}

// heldMeet intersects (nil = ⊤ identity); the weaker mode wins.
func heldMeet(a, b flow.HeldSet) flow.HeldSet {
	if a == nil {
		return heldClone(b)
	}
	out := flow.HeldSet{}
	for v, ma := range a {
		if mb, ok := b[v]; ok {
			if ma == flow.LockRead || mb == flow.LockRead {
				out[v] = flow.LockRead
			} else {
				out[v] = flow.LockWrite
			}
		}
	}
	return out
}

func heldEq(a, b flow.HeldSet) bool {
	if len(a) != len(b) {
		return false
	}
	for v, m := range a {
		if b[v] != m {
			return false
		}
	}
	return true
}

// site renders a position as base-file:line for diagnostic text.
func fsetSite(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
