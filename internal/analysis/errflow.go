package analysis

// errflow: an error that is produced and then ignored is the cheapest bug
// this codebase can ship — a CSV writer that silently lost its flush error
// once produced a truncated sample stream that the determinism harness then
// faithfully reproduced. The check enforces that every error result is
// checked, returned, or *visibly* discarded:
//
//   - a call statement (or deferred call) whose result set includes an
//     error, with the results dropped on the floor, is reported — writing
//     `_ = f()` instead is the sanctioned discard, one character of
//     intentionality;
//   - an error assigned to a variable that no path ever reads again is
//     reported at the definition, using the flow package's def-use chains —
//     this is what catches `_, err = f()` followed by a return of the stale
//     success path.
//
// Exemptions keep the check honest rather than noisy: the fmt print family
// and strings.Builder/bytes.Buffer writes are documented to be infallible
// or universally dropped; assignments to a named error result are live at
// every return by construction.

import (
	"go/ast"
	"go/types"
	"strings"

	"mcdvfs/internal/analysis/flow"
)

// ErrFlowAnalyzer builds the errflow check.
func ErrFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name:    "errflow",
		Doc:     "error results must be checked, returned, or explicitly discarded with _ =",
		Applies: func(path string) bool { return strings.HasPrefix(path, "mcdvfs") },
		Run:     runErrFlow,
	}
}

func runErrFlow(pass *Pass) {
	if !pass.IncludeSrc {
		return
	}
	e := &errflowChecker{pass: pass}
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				e.checkFunc(fd)
			}
		}
	}
}

type errflowChecker struct {
	pass *Pass
}

// checkFunc analyzes one function node, then recurses into nested literals,
// each with its own CFG and def-use scope.
func (e *errflowChecker) checkFunc(fn ast.Node) {
	body := flow.FuncBody(fn)
	var nested []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			nested = append(nested, lit)
			return false
		}
		e.checkDropped(n)
		return true
	})
	e.checkUnusedDefs(fn)
	for _, lit := range nested {
		e.checkFunc(lit)
	}
}

// checkDropped flags statements that evaluate an error-returning call and
// discard every result implicitly.
func (e *errflowChecker) checkDropped(n ast.Node) {
	var call *ast.CallExpr
	switch n := n.(type) {
	case *ast.ExprStmt:
		call, _ = n.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		call = n.Call
	case *ast.GoStmt:
		// The goroutine's own body is analyzed as a function; the launch
		// expression itself returns nothing.
		return
	}
	if call == nil || !e.returnsError(call) || e.exempt(call) {
		return
	}
	what := "call"
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		what = "deferred call"
	}
	e.pass.Reportf(call.Pos(), "%s %s returns an error that is silently dropped; handle it or discard with _ =",
		what, render(call.Fun))
}

// returnsError reports whether the call's result set includes an error.
func (e *errflowChecker) returnsError(call *ast.CallExpr) bool {
	tv, ok := e.pass.Pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if t.At(i).Type().String() == "error" {
				return true
			}
		}
		return false
	default:
		return t.String() == "error"
	}
}

// exempt lists the callees whose dropped error is idiom, not negligence:
// the fmt print family (universally unchecked), and Builder/Buffer writes
// (documented to never fail).
func (e *errflowChecker) exempt(call *ast.CallExpr) bool {
	info := e.pass.Pkg.Info
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Println / fmt.Fprintf / ...
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, isPkg := pkgNameOf(info, id); isPkg && pn.Imported().Path() == "fmt" {
			return strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")
		}
	}
	// (*strings.Builder) and (*bytes.Buffer) methods never return a non-nil
	// error by contract, and hash.Hash documents that Write never fails.
	if s, ok := info.Selections[sel]; ok {
		recv := s.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		switch recv.String() {
		case "strings.Builder", "bytes.Buffer",
			"hash.Hash", "hash.Hash32", "hash.Hash64":
			return true
		}
	}
	return false
}

// checkUnusedDefs reports error definitions that no path ever reads.
func (e *errflowChecker) checkUnusedDefs(fn ast.Node) {
	info := e.pass.Pkg.Info
	du := flow.BuildDefUse(flow.New(fn), info)
	named := namedResultVars(fn, info)
	for _, d := range du.Defs {
		if d.Ident == nil || d.Obj.Type().String() != "error" || named[d.Obj] {
			continue
		}
		// Only definitions that carry a fresh value are interesting; err =
		// nil resets and declarations without a value are bookkeeping.
		if !defCarriesCall(d) {
			continue
		}
		if len(du.UsedBy[d]) == 0 {
			e.pass.Reportf(d.Pos, "error assigned to %s is never checked on any path; return it, branch on it, or assign to _",
				d.Obj.Name())
		}
	}
}

// namedResultVars collects a function's named results: assigning to one is
// meaningful at every return, so their defs are exempt from the unused rule.
func namedResultVars(fn ast.Node, info *types.Info) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ft := flow.FuncType(fn)
	if ft.Results == nil {
		return out
	}
	for _, f := range ft.Results.List {
		for _, name := range f.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && v != nil {
				out[v] = true
			}
		}
	}
	return out
}

// defCarriesCall reports whether the definition's statement evaluates a
// call on its right-hand side — the shapes `err := f()`, `v, err := f()`,
// and `_, err = f()`.
func defCarriesCall(d *flow.Def) bool {
	as, ok := d.Node.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, rhs := range as.Rhs {
		if _, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			return true
		}
	}
	return false
}
