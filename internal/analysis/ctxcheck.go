package analysis

// ctx: PR 1 established the CollectContext pattern — any exported entry
// point that fans work out over goroutines, or that sweeps the frequency
// grid (the expensive operation in this system: a fine sweep is 496
// settings × every sample of a benchmark), must accept a context.Context
// so callers can bound it. An exported function that spawns goroutines or
// loops over []freq.Setting without taking a context is an API that cannot
// be cancelled, and every future caller inherits that defect.
//
// PR 3 (mcdvfsd) adds the serving-side corollary: a function handling a
// *net/http.Request must derive its work from r.Context(), never mint a
// fresh root with context.Background() or context.TODO(). A handler that
// roots its collection in Background keeps burning a pool slot after the
// client hangs up — exactly the leak the daemon's admission control
// exists to prevent.

import (
	"go/ast"
	"go/types"
)

// CtxAnalyzer builds the ctx check.
func CtxAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctx",
		Doc:  "exported functions that spawn goroutines or sweep grid settings must accept context.Context",
		Applies: func(path string) bool {
			return pathHasPrefix(path, "mcdvfs/internal")
		},
		Run: runCtx,
	}
}

func pathHasPrefix(path, prefix string) bool {
	return path == prefix || (len(path) > len(prefix) && path[:len(prefix)+1] == prefix+"/")
}

func runCtx(pass *Pass) {
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasRequestParam(pass, fd.Type) {
				reportRootContexts(pass, fd.Name.Name, fd.Body)
			}
			if !fd.Name.IsExported() || hasCtxParam(pass, fd) {
				continue
			}
			spawns, sweeps := bodyBehaviour(pass, fd.Body)
			switch {
			case spawns:
				pass.Reportf(fd.Name.Pos(), "exported %s spawns goroutines but takes no context.Context; callers cannot cancel it (see trace.CollectContext)", fd.Name.Name)
			case sweeps:
				pass.Reportf(fd.Name.Pos(), "exported %s sweeps grid settings but takes no context.Context; a fine-space sweep is the system's longest operation (see trace.CollectContext)", fd.Name.Name)
			}
		}
		// HTTP handlers are often function literals (mux closures); hold
		// them to the same rule.
		ast.Inspect(f, func(n ast.Node) bool {
			fl, ok := n.(*ast.FuncLit)
			if !ok || !hasRequestParam(pass, fl.Type) {
				return true
			}
			reportRootContexts(pass, "handler literal", fl.Body)
			return true
		})
	}
}

// hasRequestParam reports whether the signature takes a *net/http.Request —
// the shape that marks a function as an HTTP handler (or a helper a handler
// delegates its request to).
func hasRequestParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.Pkg.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		ptr, ok := tv.Type.(*types.Pointer)
		if !ok {
			continue
		}
		if isNamedType(ptr.Elem(), "net/http", "Request") {
			return true
		}
	}
	return false
}

// reportRootContexts flags context.Background() and context.TODO() calls in
// a request-handling body: the request already carries the context to use.
func reportRootContexts(pass *Pass, where string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// A nested handler literal is visited (and reported) on its own.
		if fl, ok := n.(*ast.FuncLit); ok && hasRequestParam(pass, fl.Type) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pkgNameOf(pass.Pkg.Info, id)
		if !ok || pn.Imported().Path() != "context" {
			return true
		}
		if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
			pass.Reportf(call.Pos(), "%s handles a *http.Request but roots work in context.%s; thread r.Context() so a client disconnect cancels the collection it owns", where, sel.Sel.Name)
		}
		return true
	})
}

// hasCtxParam reports whether any parameter's type is context.Context.
func hasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.Pkg.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if isNamedType(tv.Type, "context", "Context") {
			return true
		}
	}
	return false
}

// bodyBehaviour scans a function body for goroutine launches and for range
// loops over []freq.Setting (the grid axis). Nested function literals
// count: spawning from a closure is still spawning.
func bodyBehaviour(pass *Pass, body *ast.BlockStmt) (spawns, sweeps bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawns = true
		case *ast.RangeStmt:
			tv, ok := pass.Pkg.Info.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			if sl, ok := tv.Type.Underlying().(*types.Slice); ok {
				if isNamedType(sl.Elem(), "mcdvfs/internal/freq", "Setting") {
					sweeps = true
				}
			}
		}
		return true
	})
	return spawns, sweeps
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
