package analysis

// ctx: PR 1 established the CollectContext pattern — any exported entry
// point that fans work out over goroutines, or that sweeps the frequency
// grid (the expensive operation in this system: a fine sweep is 496
// settings × every sample of a benchmark), must accept a context.Context
// so callers can bound it. An exported function that spawns goroutines or
// loops over []freq.Setting without taking a context is an API that cannot
// be cancelled, and every future caller inherits that defect.

import (
	"go/ast"
	"go/types"
)

// CtxAnalyzer builds the ctx check.
func CtxAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctx",
		Doc:  "exported functions that spawn goroutines or sweep grid settings must accept context.Context",
		Applies: func(path string) bool {
			return pathHasPrefix(path, "mcdvfs/internal")
		},
		Run: runCtx,
	}
}

func pathHasPrefix(path, prefix string) bool {
	return path == prefix || (len(path) > len(prefix) && path[:len(prefix)+1] == prefix+"/")
}

func runCtx(pass *Pass) {
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if hasCtxParam(pass, fd) {
				continue
			}
			spawns, sweeps := bodyBehaviour(pass, fd.Body)
			switch {
			case spawns:
				pass.Reportf(fd.Name.Pos(), "exported %s spawns goroutines but takes no context.Context; callers cannot cancel it (see trace.CollectContext)", fd.Name.Name)
			case sweeps:
				pass.Reportf(fd.Name.Pos(), "exported %s sweeps grid settings but takes no context.Context; a fine-space sweep is the system's longest operation (see trace.CollectContext)", fd.Name.Name)
			}
		}
	}
}

// hasCtxParam reports whether any parameter's type is context.Context.
func hasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.Pkg.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if isNamedType(tv.Type, "context", "Context") {
			return true
		}
	}
	return false
}

// bodyBehaviour scans a function body for goroutine launches and for range
// loops over []freq.Setting (the grid axis). Nested function literals
// count: spawning from a closure is still spawning.
func bodyBehaviour(pass *Pass, body *ast.BlockStmt) (spawns, sweeps bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawns = true
		case *ast.RangeStmt:
			tv, ok := pass.Pkg.Info.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			if sl, ok := tv.Type.Underlying().(*types.Slice); ok {
				if isNamedType(sl.Elem(), "mcdvfs/internal/freq", "Setting") {
					sweeps = true
				}
			}
		}
		return true
	})
	return spawns, sweeps
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
