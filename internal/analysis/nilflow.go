package analysis

// nilflow: nil-ness abstract interpretation (internal/analysis/absint) over
// per-function CFGs, plus goleak-style interprocedural evidence mapping.
//
// Intra-function, the check reports the classic Go crash shapes when the
// domain holds actual evidence of nil — a declared-but-never-made map, a
// pointer assigned nil on some path and dereferenced past the merge:
//
//	var idx map[string]int      // IsNil
//	if fast { idx = make(...) } // NonNil on one path
//	idx[k] = v                  // Maybe at the merge: nil on some path
//
// The lattice join is evidence-preserving on purpose: Unknown⊔IsNil is
// Maybe (nil on one path is a fact worth keeping), while Unknown⊔NonNil
// stays Unknown (no finding material). No evidence, no finding.
//
// Interprocedurally, Prepare computes a demand summary per function: each
// nilable parameter is seeded IsNil and the body is re-analyzed; if the
// parameter reaches a dereference or map write still nil — no guard, no
// reassignment on that path — the function demands a non-nil argument at
// that position. Run then flags call sites that pass a definitely-nil
// argument into a demanding parameter, pointing at the callee's crash site
// the same way goleak maps callee evidence through call arguments.
import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"mcdvfs/internal/analysis/absint"
	"mcdvfs/internal/analysis/flow"
)

// nilflowApplies scopes the check module-wide except the analysis tooling
// itself (whose fixtures are deliberately full of crash shapes).
func nilflowApplies(path string) bool {
	return strings.HasPrefix(path, "mcdvfs") &&
		!strings.HasPrefix(path, "mcdvfs/internal/analysis")
}

// nilDemand records that a function dereferences one of its parameters on
// a path where the parameter can still be nil.
type nilDemand struct {
	param   int       // index into the declared (non-receiver) parameters
	name    string    // parameter name, for diagnostics
	what    string    // site description: "writes to it as a map", ...
	pos     token.Pos // crash site in the callee
	nparams int       // arity guard for call-site matching
}

type nilflowState struct {
	demands map[*types.Func][]nilDemand
	fset    *token.FileSet
}

// NilFlowAnalyzer builds the nilflow analyzer.
func NilFlowAnalyzer() *Analyzer {
	st := &nilflowState{}
	return &Analyzer{
		Name:    "nilflow",
		Doc:     "nil-ness dataflow: nil map writes, nil dereferences reachable on some path, and nil arguments to parameters the callee dereferences",
		Applies: nilflowApplies,
		Prepare: st.prepare,
		Run:     st.run,
	}
}

func (st *nilflowState) prepare(prog *flow.Program) {
	st.fset = prog.Fset
	st.demands = make(map[*types.Func][]nilDemand)
	for _, fn := range prog.Funcs() {
		if ds := st.demandsOf(fn); len(ds) > 0 {
			st.demands[fn.Obj] = ds
		}
	}
}

// demandsOf re-analyzes fn with every nilable parameter seeded IsNil and
// records the first unguarded crash site per parameter.
func (st *nilflowState) demandsOf(fn *flow.Func) []nilDemand {
	info := fn.Pkg.Info
	params := declParams(info, fn.Decl)
	if len(params) == 0 {
		return nil
	}
	seeded := make(map[*types.Var]bool, len(params))
	for _, p := range params {
		if p != nil && Nilable(p.Type()) {
			seeded[p] = true
		}
	}
	if len(seeded) == 0 {
		return nil
	}
	ev := &absint.NilEval{
		Info: info,
		VarSeed: func(v *types.Var) (absint.Nilness, bool) {
			if seeded[v] {
				return absint.NilIsNil, true
			}
			return absint.NilUnknown, false
		},
	}
	var out []nilDemand
	have := make(map[int]bool)
	st.walkSites(fn.CFG(), ev, func(target ast.Expr, what string, pos token.Pos, fact absint.Nilness) {
		if fact != absint.NilIsNil {
			return
		}
		// Slice indexing is always preceded by a bounds check against len,
		// which a nil slice never passes; it is not demand evidence.
		if what == "indexes it as a slice" {
			return
		}
		v, ok := identVar(info, target)
		if !ok || !seeded[v] {
			return
		}
		for i, p := range params {
			if p == v && !have[i] {
				have[i] = true
				out = append(out, nilDemand{
					param: i, name: v.Name(), what: what, pos: pos,
					nparams: len(params),
				})
			}
		}
	})
	return out
}

// declParams returns the declared (non-receiver) parameter objects in order.
func declParams(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed: position holder only
			continue
		}
		for _, name := range field.Names {
			v, _ := info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

// Nilable re-exported for the analyzer layer.
func Nilable(t types.Type) bool { return absint.Nilable(t) }

// walkSites runs the nil-ness fixpoint over cfg and invokes visit at every
// potential crash site with the target's fact immediately before the
// operation, refined across short-circuit operators.
func (st *nilflowState) walkSites(cfg *flow.CFG, ev *absint.NilEval, visit func(target ast.Expr, what string, pos token.Pos, fact absint.Nilness)) {
	it := ev.Interp()
	envs := it.Analyze(cfg, absint.NewEnv[absint.Nilness]())
	for _, blk := range cfg.Blocks {
		entry := envs[blk]
		if entry == nil {
			continue
		}
		it.Walk(blk, entry, func(n ast.Node, env *absint.Env[absint.Nilness]) {
			nilSites(it, ev, flow.HeaderExpr(n), env, func(target ast.Expr, what string, at *absint.Env[absint.Nilness]) {
				visit(target, what, target.Pos(), ev.Expr(target, at))
			})
		})
	}
}

// nilSites enumerates the expressions inside n whose nil-ness decides a
// runtime panic — map-write bases, pointer-field bases, unary dereferences,
// slice-index bases, and called function values — handing each to visit
// along with the short-circuit-refined environment at that point.
func nilSites(it *absint.Interp[absint.Nilness], ev *absint.NilEval, n ast.Node, env *absint.Env[absint.Nilness], visit func(target ast.Expr, what string, env *absint.Env[absint.Nilness])) {
	if n == nil {
		return
	}
	info := ev.Info
	mapWrites := map[ast.Expr]bool{}
	absint.CondWalk(it, n, env, func(m ast.Node, env *absint.Env[absint.Nilness]) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if _, isMap := typeOf(info, ix.X).(*types.Map); isMap {
					mapWrites[ix] = true
					visit(ix.X, "writes to it as a map", env)
				}
			}
		case *ast.IndexExpr:
			if mapWrites[m] {
				return true // base already visited as a map write
			}
			switch typeOf(info, m.X).(type) {
			case *types.Slice:
				visit(m.X, "indexes it as a slice", env)
			}
		case *ast.StarExpr:
			if _, isPtr := typeOf(info, m.X).(*types.Pointer); isPtr {
				visit(m.X, "dereferences it", env)
			}
		case *ast.SelectorExpr:
			sel, ok := info.Selections[m]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if _, isPtr := typeOf(info, m.X).(*types.Pointer); isPtr {
				visit(m.X, "dereferences it", env)
			}
		case *ast.CallExpr:
			fun := ast.Unparen(m.Fun)
			if id, ok := fun.(*ast.Ident); ok {
				if v, okv := info.Uses[id].(*types.Var); okv {
					if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
						visit(fun, "calls it as a function", env)
					}
				}
			}
		}
		return true
	})
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}

// identVar resolves e to the variable it names, if it is a plain ident.
func identVar(info *types.Info, e ast.Expr) (*types.Var, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := info.Uses[id].(*types.Var)
	return v, ok
}

func (st *nilflowState) run(pass *Pass) {
	if !pass.IncludeSrc {
		return
	}
	info := pass.Pkg.Info
	ev := &absint.NilEval{Info: info}
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st.checkFunc(pass, ev, fd)
		}
	}
}

func (st *nilflowState) checkFunc(pass *Pass, ev *absint.NilEval, fd *ast.FuncDecl) {
	var cfg *flow.CFG
	if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
		if fn := pass.Prog.FuncOf(obj); fn != nil {
			cfg = fn.CFG()
		}
	}
	if cfg == nil {
		cfg = flow.New(fd)
	}
	it := ev.Interp()
	envs := it.Analyze(cfg, absint.NewEnv[absint.Nilness]())
	for _, blk := range cfg.Blocks {
		entry := envs[blk]
		if entry == nil {
			continue
		}
		it.Walk(blk, entry, func(n ast.Node, env *absint.Env[absint.Nilness]) {
			node := flow.HeaderExpr(n)
			nilSites(it, ev, node, env, func(target ast.Expr, what string, at *absint.Env[absint.Nilness]) {
				st.reportSite(pass, target, what, ev.Expr(target, at))
			})
			st.checkCallDemands(pass, it, ev, node, env)
		})
	}
}

// reportSite emits the intra-function findings. Unknown is silent: the
// domain only speaks when some path actually carried nil.
func (st *nilflowState) reportSite(pass *Pass, target ast.Expr, what string, fact absint.Nilness) {
	// Indexing a nil slice is only reported on definite nil: the index is
	// bounds-checked against len first, and length-guarded loops over
	// maybe-nil slices (the standard build-then-sort shape) never reach the
	// index when the slice is nil. The interval domain owns bounds.
	if what == "indexes it as a slice" && fact != absint.NilIsNil {
		return
	}
	switch fact {
	case absint.NilIsNil:
		pass.Reportf(target.Pos(), "%s is nil here and this %s; this panics on every path",
			render(target), recast(what))
	case absint.NilMaybe:
		pass.Reportf(target.Pos(), "%s is nil on some path to this point and this %s; guard or initialize it first",
			render(target), recast(what))
	}
}

// recast rewrites the callee-demand phrasing ("writes to it as a map") into
// site phrasing ("write writes to it as a map" reads badly at the site).
func recast(what string) string {
	switch what {
	case "writes to it as a map":
		return "statement writes to it as a map"
	case "indexes it as a slice":
		return "expression indexes it as a slice"
	case "dereferences it":
		return "expression dereferences it"
	case "calls it as a function":
		return "expression calls it as a function"
	}
	return "expression uses it"
}

// checkCallDemands maps callee demand summaries through call arguments:
// a definitely-nil argument bound to a parameter the callee dereferences
// is reported at the call site, with the callee's crash site named.
func (st *nilflowState) checkCallDemands(pass *Pass, it *absint.Interp[absint.Nilness], ev *absint.NilEval, n ast.Node, env *absint.Env[absint.Nilness]) {
	if n == nil {
		return
	}
	absint.CondWalk(it, n, env, func(m ast.Node, env *absint.Env[absint.Nilness]) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || call.Ellipsis.IsValid() {
			return true
		}
		obj := flow.CalleeObj(pass.Pkg.Info, call)
		if obj == nil {
			return true
		}
		for _, d := range st.demands[obj] {
			if d.nparams != len(call.Args) || d.param >= len(call.Args) {
				continue // arity mismatch (method expression, variadic): skip
			}
			arg := call.Args[d.param]
			if ev.Expr(arg, env) != absint.NilIsNil {
				continue
			}
			pass.Reportf(arg.Pos(), "nil %s passed to %s, which %s at %s without a guard",
				d.name, obj.Name(), d.what, st.sitePos(d.pos))
		}
		return true
	})
}

// sitePos renders a callee crash site compactly (basename:line) so fixture
// goldens stay path-independent.
func (st *nilflowState) sitePos(pos token.Pos) string {
	p := st.fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + itoa(p.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
