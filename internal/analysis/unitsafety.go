package analysis

// units: the power and memory models move quantities between five physical
// domains — frequency (MHz vs Hz), time (ns vs s), energy (J), power (W),
// voltage (V) — and the repository's convention is to carry the unit in the
// type name (freq.MHz, freq.Volts) or the identifier suffix (TimeNS,
// EnergyJ, PeakDynamicW, AccessPerNS). Mixing suffixes additively is how a
// reproduction silently diverges from the paper: an Hz slipped into an MHz
// formula is a factor-of-10⁶ error that still type-checks, still runs, and
// still draws a plausible figure.
//
// The check performs a lightweight dimensional analysis over expressions:
//
//   - an expression's unit comes from its named type, its identifier or
//     field suffix, or the called function's name suffix;
//   - explicit conversions (float64(f)) strip the unit — a cast is a
//     visible statement of intent;
//   - multiplying or dividing two united quantities yields a derived,
//     untracked unit; multiplying by a dimensionless factor preserves the
//     unit; dividing same by same cancels to dimensionless;
//   - addition, subtraction, comparison, and assignment between two
//     *different* known units is reported.
//
// Dimensionless ratios (activity factors, hit rates, write fractions) carry
// no unit on purpose, so scaling a latency by a fraction never trips the
// check.
//
// On top of the expression rules sit three propagation layers, built on the
// flow package's module-wide function index:
//
//   - summaries: every declared function in the module gets a syntactic unit
//     signature — parameter units from the parameter's named type or name
//     suffix, result units from the result type, result name, or (single
//     result) the function's own name suffix. dev.RowHitNS is nanoseconds by
//     name from any calling package.
//   - local env: inside one function, a suffix-less variable defined from a
//     united expression inherits that unit (f := cfg.CPU.GHz() makes f
//     gigahertz), so long as every definition of the variable agrees; a
//     variable defined with two different units infers nothing rather than
//     guessing. The inference is one sweep, not a fixpoint — a chain of two
//     unsuffixed copies goes untracked, which errs on silence, never on a
//     false mismatch.
//   - call and return checks: arguments are checked against the callee
//     summary's parameter units, and return statements against the enclosing
//     function's result units. This is what catches the cross-boundary bug:
//     the GHz value built in experiments and consumed by a *NS parameter in
//     sim never shared a file, let alone a line.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mcdvfs/internal/analysis/flow"
)

var unitPkgs = map[string]bool{
	"mcdvfs/internal/freq":     true,
	"mcdvfs/internal/cpupower": true,
	"mcdvfs/internal/memctrl":  true,
	"mcdvfs/internal/stats":    true,
	"mcdvfs/internal/sim":      true,
	"mcdvfs/internal/dram":     true,
}

// unitSuffix maps a camel-case name suffix to its canonical unit. Order
// matters: longest suffixes first, so TimeNS resolves before NS could
// shadow it and AccessPerNS is a rate, not a duration. Scale prefixes are
// distinct units — mJ added to J is exactly the bug being hunted.
type unitSuffix struct{ text, unit string }

var unitSuffixes = []unitSuffix{
	{"PerNS", "1/ns"}, {"PerSec", "1/s"}, {"PerCycle", "1/cycle"},
	{"Nanos", "ns"}, {"Micros", "us"}, {"Millis", "ms"},
	{"Seconds", "s"}, {"Secs", "s"}, {"Sec", "s"},
	{"MHz", "MHz"}, {"GHz", "GHz"}, {"KHz", "kHz"}, {"Hz", "Hz"},
	{"NS", "ns"}, {"Ns", "ns"}, {"ns", "ns"},
	{"US", "us"}, {"Us", "us"},
	{"MS", "ms"}, {"Ms", "ms"},
	{"Joules", "J"}, {"Watts", "W"}, {"Volts", "V"},
	{"MJ", "MJ"}, {"KJ", "kJ"},
	{"mJ", "mJ"}, {"uJ", "uJ"}, {"nJ", "nJ"}, {"pJ", "pJ"},
	{"mW", "mW"}, {"uW", "uW"}, {"KW", "kW"},
	{"mV", "mV"}, {"uV", "uV"},
	{"MiB", "MiB"}, {"KiB", "KiB"}, {"GiB", "GiB"}, {"Bytes", "B"},
	{"J", "J"}, {"W", "W"}, {"V", "V"},
}

// suffixUnit resolves a name to a unit. A suffix only matches on a camel or
// snake boundary (an uppercase suffix after a lowercase rune, or vice
// versa), so "Trans" never reads as nanoseconds and "CSV" never as volts. A
// whole-name case-insensitive match ("ns", "mhz") also counts.
func suffixUnit(name string) string {
	for _, su := range unitSuffixes {
		if strings.EqualFold(name, su.text) {
			return su.unit
		}
		if !strings.HasSuffix(name, su.text) || len(name) <= len(su.text) {
			continue
		}
		prev := rune(name[len(name)-len(su.text)-1])
		first := rune(su.text[0])
		boundary := prev == '_' || (prev >= '0' && prev <= '9') ||
			(isUpperASCII(first) && isLowerASCII(prev)) ||
			(isLowerASCII(first) && isUpperASCII(prev))
		if boundary {
			return su.unit
		}
	}
	return ""
}

func isUpperASCII(r rune) bool { return r >= 'A' && r <= 'Z' }
func isLowerASCII(r rune) bool { return r >= 'a' && r <= 'z' }

// typeUnit reads a unit from a named type (freq.MHz, freq.Volts).
func typeUnit(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return suffixUnit(named.Obj().Name())
}

// unitSummary is one function's syntactic unit signature.
type unitSummary struct {
	params   []string // unit per parameter, "" = untracked
	pnames   []string // parameter names, for diagnostics
	variadic bool
	results  []string // unit per result, "" = untracked
}

// unitState carries the Prepare-computed summaries into the concurrent
// per-package passes. Written once in prepare, read-only afterwards.
type unitState struct {
	summaries map[*types.Func]*unitSummary
}

// UnitSafetyAnalyzer builds the units check.
func UnitSafetyAnalyzer() *Analyzer {
	st := &unitState{}
	return &Analyzer{
		Name:    "units",
		Doc:     "flag unit mixing (MHz vs Hz, J vs W, ...) in expressions, assignments, calls, and returns, with propagation through locals and call boundaries",
		Applies: func(path string) bool { return unitPkgs[path] },
		Prepare: st.prepare,
		Run:     st.run,
	}
}

// prepare summarizes every declared function in the module in one pass over
// the Program's index.
func (st *unitState) prepare(prog *flow.Program) {
	st.summaries = make(map[*types.Func]*unitSummary, len(prog.Funcs()))
	for _, fn := range prog.Funcs() {
		sum := summarize(fn.Pkg.Info, fn.Decl.Type, fn.Decl.Name.Name)
		if sum != nil {
			st.summaries[fn.Obj] = sum
		}
	}
}

// summarize builds the unit signature of one function type. fallbackName is
// the function's own name, consulted for a lone anonymous result. Returns
// nil when no position carries a unit — most functions, kept out of the map.
func summarize(info *types.Info, ft *ast.FuncType, fallbackName string) *unitSummary {
	sum := &unitSummary{}
	any := false
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			_, variadic := f.Type.(*ast.Ellipsis)
			sum.variadic = sum.variadic || variadic
			tu := ""
			if tv, ok := info.Types[f.Type]; ok && tv.Type != nil {
				tu = typeUnit(tv.Type)
			}
			names := f.Names
			if len(names) == 0 {
				sum.params = append(sum.params, tu)
				sum.pnames = append(sum.pnames, "_")
				any = any || tu != ""
				continue
			}
			for _, name := range names {
				unit := tu
				if unit == "" {
					unit = suffixUnit(name.Name)
				}
				sum.params = append(sum.params, unit)
				sum.pnames = append(sum.pnames, name.Name)
				any = any || unit != ""
			}
		}
	}
	sum.results = resultUnits(info, ft, fallbackName)
	for _, r := range sum.results {
		any = any || r != ""
	}
	if !any {
		return nil
	}
	return sum
}

// resultUnits resolves the unit of each result position: result type, then
// result name, then the function's own name for the single value result.
// The name fallback covers both `func RowHitNS() float64` and the
// (value, error) accessor shape — BackgroundPowerW's float64 is watts even
// though an error rides along.
func resultUnits(info *types.Info, ft *ast.FuncType, fallbackName string) []string {
	if ft.Results == nil {
		return nil
	}
	var units []string
	var nonErr []int // indices of results that are not type error
	add := func(unit string, typ ast.Expr) {
		isErr := false
		if tv, ok := info.Types[typ]; ok && tv.Type != nil {
			isErr = tv.Type.String() == "error"
		}
		if !isErr {
			nonErr = append(nonErr, len(units))
		}
		units = append(units, unit)
	}
	for _, f := range ft.Results.List {
		tu := ""
		if tv, ok := info.Types[f.Type]; ok && tv.Type != nil {
			tu = typeUnit(tv.Type)
		}
		if len(f.Names) == 0 {
			add(tu, f.Type)
			continue
		}
		for _, name := range f.Names {
			unit := tu
			if unit == "" {
				unit = suffixUnit(name.Name)
			}
			add(unit, f.Type)
		}
	}
	if len(nonErr) == 1 && units[nonErr[0]] == "" && fallbackName != "" {
		units[nonErr[0]] = suffixUnit(fallbackName)
	}
	return units
}

func (st *unitState) run(pass *Pass) {
	u := &unitChecker{pass: pass, summaries: st.summaries}
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				u.env = buildUnitEnv(pass.Pkg.Info, fd.Body, u)
				u.curResults = resultUnits(pass.Pkg.Info, fd.Type, fd.Name.Name)
				ast.Inspect(fd, u.visit)
				u.env, u.curResults = nil, nil
				continue
			}
			ast.Inspect(decl, u.visit)
		}
	}
}

// buildUnitEnv infers units for suffix-less locals from their definitions.
// A variable whose definitions disagree is removed — no inference beats a
// wrong one. The sweep repeats, each round reading only the previous
// round's env, until the env stabilizes (or a small cap): chains like
// bg := m.BackgroundPowerW(f); e := bg * durationNS resolve in order-
// independent fashion, and e correctly infers nothing once bg is known to
// be watts (W·ns is a derived unit the checker does not track).
func buildUnitEnv(info *types.Info, body *ast.BlockStmt, u *unitChecker) map[*types.Var]string {
	var env map[*types.Var]string
	for range [4]int{} {
		u.env = env
		next := sweepUnitEnv(info, body, u)
		if envEqual(env, next) {
			break
		}
		env = next
	}
	u.env = nil
	return env
}

func envEqual(a, b map[*types.Var]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// sweepUnitEnv is one inference round; unitOf lookups inside it see only the
// env installed by the caller.
func sweepUnitEnv(info *types.Info, body *ast.BlockStmt, u *unitChecker) map[*types.Var]string {
	env := map[*types.Var]string{}
	conflict := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.DEFINE && as.Tok != token.ASSIGN) {
			return true
		}
		// A tuple-call define (bg, err := m.BackgroundPowerW(f)) maps each
		// LHS to the callee summary's result units.
		if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := flow.CalleeObj(info, call)
			if obj == nil {
				return true
			}
			sum := u.summaries[obj]
			if sum == nil || len(sum.results) != len(as.Lhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" || sum.results[i] == "" {
					continue
				}
				obj := localVarOf(info, id)
				if obj == nil || typeUnit(obj.Type()) != "" || suffixUnit(id.Name) != "" {
					continue
				}
				if prev, ok := env[obj]; ok && prev != sum.results[i] {
					conflict[obj] = true
					continue
				}
				env[obj] = sum.results[i]
			}
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := localVarOf(info, id)
			if obj == nil {
				continue
			}
			// A variable that already carries a unit by type or name needs no
			// inference; the mismatch checks handle it directly.
			if typeUnit(obj.Type()) != "" || suffixUnit(id.Name) != "" {
				continue
			}
			unit := u.unitOf(as.Rhs[i])
			if unit == "" {
				continue
			}
			if prev, ok := env[obj]; ok && prev != unit {
				conflict[obj] = true
				continue
			}
			env[obj] = unit
		}
		return true
	})
	for v := range conflict {
		delete(env, v)
	}
	return env
}

// localVarOf resolves an assignment LHS identifier to a function-local
// variable, defining or plain.
func localVarOf(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok && v != nil && !v.IsField() {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok && v != nil && !v.IsField() && v.Parent() != v.Pkg().Scope() {
		return v
	}
	return nil
}

type unitChecker struct {
	pass      *Pass
	summaries map[*types.Func]*unitSummary
	// env maps suffix-less locals of the current function to inferred units.
	env map[*types.Var]string
	// curResults are the enclosing function's result units, for returns.
	curResults []string
}

func (u *unitChecker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		// A literal's returns answer to its own signature, not the enclosing
		// function's; walk the body with swapped result context. The env
		// stays — closures read captured locals.
		saved := u.curResults
		u.curResults = resultUnits(u.pass.Pkg.Info, n.Type, "")
		ast.Inspect(n.Body, u.visit)
		u.curResults = saved
		return false
	case *ast.ReturnStmt:
		u.checkReturn(n)
	case *ast.CallExpr:
		u.checkCall(n)
	case *ast.BinaryExpr:
		switch n.Op {
		case token.ADD, token.SUB,
			token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			lu, ru := u.unitOf(n.X), u.unitOf(n.Y)
			if lu != "" && ru != "" && lu != ru {
				u.pass.Reportf(n.OpPos, "unit mismatch: %s (%s) %s %s (%s); convert explicitly before combining",
					render(n.X), lu, n.Op, render(n.Y), ru)
			}
		}
	case *ast.AssignStmt:
		if n.Tok == token.MUL_ASSIGN || n.Tok == token.QUO_ASSIGN {
			break // scaling in place forms a derived unit; not additive
		}
		if len(n.Lhs) != len(n.Rhs) {
			break
		}
		for i, lhs := range n.Lhs {
			lu, ru := u.unitOf(lhs), u.unitOf(n.Rhs[i])
			if lu != "" && ru != "" && lu != ru {
				u.pass.Reportf(n.Rhs[i].Pos(), "unit mismatch: assigning %s (%s) to %s (%s)",
					render(n.Rhs[i]), ru, render(lhs), lu)
			}
		}
	case *ast.CompositeLit:
		tv, ok := u.pass.Pkg.Info.Types[n]
		if !ok || tv.Type == nil {
			break
		}
		if _, isStruct := tv.Type.Underlying().(*types.Struct); !isStruct {
			break
		}
		for _, elt := range n.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			lu := u.fieldUnit(key)
			ru := u.unitOf(kv.Value)
			if lu != "" && ru != "" && lu != ru {
				u.pass.Reportf(kv.Value.Pos(), "unit mismatch: field %s (%s) set from %s (%s)",
					key.Name, lu, render(kv.Value), ru)
			}
		}
	}
	return true
}

// checkCall compares each argument's unit against the callee summary's
// parameter unit. Only statically resolved module functions have summaries;
// dynamic calls and stdlib calls check nothing.
func (u *unitChecker) checkCall(call *ast.CallExpr) {
	obj := flow.CalleeObj(u.pass.Pkg.Info, call)
	if obj == nil {
		return
	}
	sum := u.summaries[obj]
	if sum == nil || call.Ellipsis.IsValid() {
		return
	}
	n := len(sum.params)
	if sum.variadic {
		n-- // the variadic tail fans out over one summary slot; skip it
	}
	if len(call.Args) < n {
		n = len(call.Args)
	}
	for i := 0; i < n; i++ {
		pu := sum.params[i]
		if pu == "" {
			continue
		}
		au := u.unitOf(call.Args[i])
		if au != "" && au != pu {
			u.pass.Reportf(call.Args[i].Pos(),
				"unit mismatch: %s (%s) passed to parameter %s of %s, which expects %s",
				render(call.Args[i]), au, sum.pnames[i], obj.Name(), pu)
		}
	}
}

// checkReturn compares returned expressions against the enclosing
// function's result units.
func (u *unitChecker) checkReturn(ret *ast.ReturnStmt) {
	if len(ret.Results) == 0 || len(ret.Results) != len(u.curResults) {
		return
	}
	for i, e := range ret.Results {
		want := u.curResults[i]
		if want == "" {
			continue
		}
		got := u.unitOf(e)
		if got != "" && got != want {
			u.pass.Reportf(e.Pos(), "unit mismatch: returning %s (%s) where the result is %s",
				render(e), got, want)
		}
	}
}

// fieldUnit resolves the unit of a struct field from its type, then its
// name.
func (u *unitChecker) fieldUnit(key *ast.Ident) string {
	if obj, ok := u.pass.Pkg.Info.Uses[key]; ok {
		if unit := typeUnit(obj.Type()); unit != "" {
			return unit
		}
	}
	return suffixUnit(key.Name)
}

// unitOf infers the unit of an expression, or "" when dimensionless or
// unknown.
func (u *unitChecker) unitOf(e ast.Expr) string {
	info := u.pass.Pkg.Info
	switch e := e.(type) {
	case *ast.ParenExpr:
		return u.unitOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return u.unitOf(e.X)
		}
		return ""
	case *ast.Ident:
		if tv, ok := info.Types[e]; ok && tv.Type != nil {
			if unit := typeUnit(tv.Type); unit != "" {
				return unit
			}
		}
		if unit := suffixUnit(e.Name); unit != "" {
			return unit
		}
		// Last resort: the local-inference env (f := cfg.CPU.GHz() makes a
		// suffix-less f gigahertz for the rest of the function).
		if u.env != nil {
			if v, ok := info.Uses[e].(*types.Var); ok {
				return u.env[v]
			}
			if v, ok := info.Defs[e].(*types.Var); ok {
				return u.env[v]
			}
		}
		return ""
	case *ast.SelectorExpr:
		if tv, ok := info.Types[e]; ok && tv.Type != nil {
			if unit := typeUnit(tv.Type); unit != "" {
				return unit
			}
		}
		return suffixUnit(e.Sel.Name)
	case *ast.IndexExpr:
		// times[i] carries timesNS's unit; element types carry their own.
		if tv, ok := info.Types[e]; ok && tv.Type != nil {
			if unit := typeUnit(tv.Type); unit != "" {
				return unit
			}
		}
		return u.unitOf(e.X)
	case *ast.CallExpr:
		return u.callUnit(e)
	case *ast.BinaryExpr:
		lu, ru := u.unitOf(e.X), u.unitOf(e.Y)
		switch e.Op {
		case token.ADD, token.SUB:
			if lu != "" {
				return lu
			}
			return ru
		case token.MUL:
			// A dimensionless factor preserves the unit; two united factors
			// form a derived unit this checker does not track.
			if lu != "" && ru != "" {
				return ""
			}
			if lu != "" {
				return lu
			}
			return ru
		case token.QUO:
			// unit/dimensionless keeps the unit; everything else derives.
			if lu != "" && ru == "" {
				return lu
			}
			return ""
		}
		return ""
	case *ast.BasicLit:
		return ""
	}
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return typeUnit(tv.Type)
	}
	return ""
}

// callUnit infers the unit of a call: conversions take the target type's
// unit (and a unitless target strips the unit — the cast is the explicit
// escape hatch), function calls take the result type's unit or the
// function's name suffix (dev.RowHitNS(f) is nanoseconds by name).
func (u *unitChecker) callUnit(call *ast.CallExpr) string {
	info := u.pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return typeUnit(tv.Type)
	}
	if tv, ok := info.Types[call]; ok && tv.Type != nil {
		if unit := typeUnit(tv.Type); unit != "" {
			return unit
		}
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return suffixUnit(fn.Name)
	case *ast.SelectorExpr:
		// Skip package-qualified stdlib calls (math.Floor has no "r" unit);
		// only method names carry repository unit conventions.
		if id, ok := fn.X.(*ast.Ident); ok {
			if _, isPkg := pkgNameOf(info, id); isPkg {
				return ""
			}
		}
		return suffixUnit(fn.Sel.Name)
	}
	return ""
}

// render prints a compact source form of e for diagnostics.
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return render(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return render(e.X) + "[...]"
	case *ast.ParenExpr:
		return "(" + render(e.X) + ")"
	case *ast.BasicLit:
		return e.Value
	case *ast.UnaryExpr:
		return e.Op.String() + render(e.X)
	case *ast.StarExpr:
		return "*" + render(e.X)
	case *ast.BinaryExpr:
		return render(e.X) + " " + e.Op.String() + " " + render(e.Y)
	}
	return "expression"
}
