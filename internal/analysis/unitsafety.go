package analysis

// units: the power and memory models move quantities between five physical
// domains — frequency (MHz vs Hz), time (ns vs s), energy (J), power (W),
// voltage (V) — and the repository's convention is to carry the unit in the
// type name (freq.MHz, freq.Volts) or the identifier suffix (TimeNS,
// EnergyJ, PeakDynamicW, AccessPerNS). Mixing suffixes additively is how a
// reproduction silently diverges from the paper: an Hz slipped into an MHz
// formula is a factor-of-10⁶ error that still type-checks, still runs, and
// still draws a plausible figure.
//
// The check performs a lightweight dimensional analysis over expressions:
//
//   - an expression's unit comes from its named type, its identifier or
//     field suffix, or the called function's name suffix;
//   - explicit conversions (float64(f)) strip the unit — a cast is a
//     visible statement of intent;
//   - multiplying or dividing two united quantities yields a derived,
//     untracked unit; multiplying by a dimensionless factor preserves the
//     unit; dividing same by same cancels to dimensionless;
//   - addition, subtraction, comparison, and assignment between two
//     *different* known units is reported.
//
// Dimensionless ratios (activity factors, hit rates, write fractions) carry
// no unit on purpose, so scaling a latency by a fraction never trips the
// check.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var unitPkgs = map[string]bool{
	"mcdvfs/internal/freq":     true,
	"mcdvfs/internal/cpupower": true,
	"mcdvfs/internal/memctrl":  true,
	"mcdvfs/internal/stats":    true,
	"mcdvfs/internal/sim":      true,
	"mcdvfs/internal/dram":     true,
}

// unitSuffix maps a camel-case name suffix to its canonical unit. Order
// matters: longest suffixes first, so TimeNS resolves before NS could
// shadow it and AccessPerNS is a rate, not a duration. Scale prefixes are
// distinct units — mJ added to J is exactly the bug being hunted.
type unitSuffix struct{ text, unit string }

var unitSuffixes = []unitSuffix{
	{"PerNS", "1/ns"}, {"PerSec", "1/s"}, {"PerCycle", "1/cycle"},
	{"Nanos", "ns"}, {"Micros", "us"}, {"Millis", "ms"},
	{"Seconds", "s"}, {"Secs", "s"}, {"Sec", "s"},
	{"MHz", "MHz"}, {"GHz", "GHz"}, {"KHz", "kHz"}, {"Hz", "Hz"},
	{"NS", "ns"}, {"Ns", "ns"}, {"ns", "ns"},
	{"US", "us"}, {"Us", "us"},
	{"MS", "ms"}, {"Ms", "ms"},
	{"Joules", "J"}, {"Watts", "W"}, {"Volts", "V"},
	{"MJ", "MJ"}, {"KJ", "kJ"},
	{"mJ", "mJ"}, {"uJ", "uJ"}, {"nJ", "nJ"}, {"pJ", "pJ"},
	{"mW", "mW"}, {"uW", "uW"}, {"KW", "kW"},
	{"mV", "mV"}, {"uV", "uV"},
	{"MiB", "MiB"}, {"KiB", "KiB"}, {"GiB", "GiB"}, {"Bytes", "B"},
	{"J", "J"}, {"W", "W"}, {"V", "V"},
}

// suffixUnit resolves a name to a unit. A suffix only matches on a camel or
// snake boundary (an uppercase suffix after a lowercase rune, or vice
// versa), so "Trans" never reads as nanoseconds and "CSV" never as volts. A
// whole-name case-insensitive match ("ns", "mhz") also counts.
func suffixUnit(name string) string {
	for _, su := range unitSuffixes {
		if strings.EqualFold(name, su.text) {
			return su.unit
		}
		if !strings.HasSuffix(name, su.text) || len(name) <= len(su.text) {
			continue
		}
		prev := rune(name[len(name)-len(su.text)-1])
		first := rune(su.text[0])
		boundary := prev == '_' || (prev >= '0' && prev <= '9') ||
			(isUpperASCII(first) && isLowerASCII(prev)) ||
			(isLowerASCII(first) && isUpperASCII(prev))
		if boundary {
			return su.unit
		}
	}
	return ""
}

func isUpperASCII(r rune) bool { return r >= 'A' && r <= 'Z' }
func isLowerASCII(r rune) bool { return r >= 'a' && r <= 'z' }

// typeUnit reads a unit from a named type (freq.MHz, freq.Volts).
func typeUnit(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return suffixUnit(named.Obj().Name())
}

// UnitSafetyAnalyzer builds the units check.
func UnitSafetyAnalyzer() *Analyzer {
	return &Analyzer{
		Name:    "units",
		Doc:     "flag additive mixing or assignment across different declared unit suffixes (MHz vs Hz, J vs W, ...)",
		Applies: func(path string) bool { return unitPkgs[path] },
		Run:     runUnitSafety,
	}
}

func runUnitSafety(pass *Pass) {
	u := &unitChecker{pass: pass}
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, u.visit)
	}
}

type unitChecker struct {
	pass *Pass
}

func (u *unitChecker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.BinaryExpr:
		switch n.Op {
		case token.ADD, token.SUB,
			token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			lu, ru := u.unitOf(n.X), u.unitOf(n.Y)
			if lu != "" && ru != "" && lu != ru {
				u.pass.Reportf(n.OpPos, "unit mismatch: %s (%s) %s %s (%s); convert explicitly before combining",
					render(n.X), lu, n.Op, render(n.Y), ru)
			}
		}
	case *ast.AssignStmt:
		if n.Tok == token.MUL_ASSIGN || n.Tok == token.QUO_ASSIGN {
			break // scaling in place forms a derived unit; not additive
		}
		if len(n.Lhs) != len(n.Rhs) {
			break
		}
		for i, lhs := range n.Lhs {
			lu, ru := u.unitOf(lhs), u.unitOf(n.Rhs[i])
			if lu != "" && ru != "" && lu != ru {
				u.pass.Reportf(n.Rhs[i].Pos(), "unit mismatch: assigning %s (%s) to %s (%s)",
					render(n.Rhs[i]), ru, render(lhs), lu)
			}
		}
	case *ast.CompositeLit:
		tv, ok := u.pass.Pkg.Info.Types[n]
		if !ok || tv.Type == nil {
			break
		}
		if _, isStruct := tv.Type.Underlying().(*types.Struct); !isStruct {
			break
		}
		for _, elt := range n.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			lu := u.fieldUnit(key)
			ru := u.unitOf(kv.Value)
			if lu != "" && ru != "" && lu != ru {
				u.pass.Reportf(kv.Value.Pos(), "unit mismatch: field %s (%s) set from %s (%s)",
					key.Name, lu, render(kv.Value), ru)
			}
		}
	}
	return true
}

// fieldUnit resolves the unit of a struct field from its type, then its
// name.
func (u *unitChecker) fieldUnit(key *ast.Ident) string {
	if obj, ok := u.pass.Pkg.Info.Uses[key]; ok {
		if unit := typeUnit(obj.Type()); unit != "" {
			return unit
		}
	}
	return suffixUnit(key.Name)
}

// unitOf infers the unit of an expression, or "" when dimensionless or
// unknown.
func (u *unitChecker) unitOf(e ast.Expr) string {
	info := u.pass.Pkg.Info
	switch e := e.(type) {
	case *ast.ParenExpr:
		return u.unitOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return u.unitOf(e.X)
		}
		return ""
	case *ast.Ident:
		if tv, ok := info.Types[e]; ok && tv.Type != nil {
			if unit := typeUnit(tv.Type); unit != "" {
				return unit
			}
		}
		return suffixUnit(e.Name)
	case *ast.SelectorExpr:
		if tv, ok := info.Types[e]; ok && tv.Type != nil {
			if unit := typeUnit(tv.Type); unit != "" {
				return unit
			}
		}
		return suffixUnit(e.Sel.Name)
	case *ast.IndexExpr:
		// times[i] carries timesNS's unit; element types carry their own.
		if tv, ok := info.Types[e]; ok && tv.Type != nil {
			if unit := typeUnit(tv.Type); unit != "" {
				return unit
			}
		}
		return u.unitOf(e.X)
	case *ast.CallExpr:
		return u.callUnit(e)
	case *ast.BinaryExpr:
		lu, ru := u.unitOf(e.X), u.unitOf(e.Y)
		switch e.Op {
		case token.ADD, token.SUB:
			if lu != "" {
				return lu
			}
			return ru
		case token.MUL:
			// A dimensionless factor preserves the unit; two united factors
			// form a derived unit this checker does not track.
			if lu != "" && ru != "" {
				return ""
			}
			if lu != "" {
				return lu
			}
			return ru
		case token.QUO:
			// unit/dimensionless keeps the unit; everything else derives.
			if lu != "" && ru == "" {
				return lu
			}
			return ""
		}
		return ""
	case *ast.BasicLit:
		return ""
	}
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return typeUnit(tv.Type)
	}
	return ""
}

// callUnit infers the unit of a call: conversions take the target type's
// unit (and a unitless target strips the unit — the cast is the explicit
// escape hatch), function calls take the result type's unit or the
// function's name suffix (dev.RowHitNS(f) is nanoseconds by name).
func (u *unitChecker) callUnit(call *ast.CallExpr) string {
	info := u.pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return typeUnit(tv.Type)
	}
	if tv, ok := info.Types[call]; ok && tv.Type != nil {
		if unit := typeUnit(tv.Type); unit != "" {
			return unit
		}
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return suffixUnit(fn.Name)
	case *ast.SelectorExpr:
		// Skip package-qualified stdlib calls (math.Floor has no "r" unit);
		// only method names carry repository unit conventions.
		if id, ok := fn.X.(*ast.Ident); ok {
			if _, isPkg := pkgNameOf(info, id); isPkg {
				return ""
			}
		}
		return suffixUnit(fn.Sel.Name)
	}
	return ""
}

// render prints a compact source form of e for diagnostics.
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return render(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return render(e.X) + "[...]"
	case *ast.ParenExpr:
		return "(" + render(e.X) + ")"
	case *ast.BasicLit:
		return e.Value
	case *ast.UnaryExpr:
		return e.Op.String() + render(e.X)
	case *ast.StarExpr:
		return "*" + render(e.X)
	case *ast.BinaryExpr:
		return render(e.X) + " " + e.Op.String() + " " + render(e.Y)
	}
	return "expression"
}
