package analysis

// floateq: == and != on floating-point operands. Almost every quantity in
// this repository is a float64 — times, energies, frequencies, CPIs — and
// almost every float in it is the result of arithmetic, so exact equality
// is either a latent bug (two mathematically equal formulas disagree in the
// last ulp and a figure silently loses a point) or a deliberate
// exact-representation test (freq.MHz's String method checks f ==
// trunc(f)). The check flags every occurrence; deliberate ones carry a
// //lint:allow floateq waiver stating why exactness is sound there.
//
// Comparing structs whose fields include floats (freq.Setting) is the same
// operation in disguise and is flagged too: grid-identity checks that
// really want bit-exact replay equality say so with a waiver.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer builds the floateq check.
func FloatEqAnalyzer() *Analyzer {
	return &Analyzer{
		Name:    "floateq",
		Doc:     "flag ==/!= on floating-point operands (and float-bearing structs) outside explicit waivers",
		Applies: func(string) bool { return true },
		Run:     runFloatEq,
	}
}

func runFloatEq(pass *Pass) {
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			t := operandType(pass, be.X)
			if t == nil {
				t = operandType(pass, be.Y)
			}
			if t == nil {
				return true
			}
			// x != x is the portable NaN probe; exempt it.
			if render(be.X) == render(be.Y) {
				return true
			}
			switch kind := floatKind(t); kind {
			case floatDirect:
				pass.Reportf(be.OpPos, "float equality: %s %s %s; compare with an epsilon or waive with a reason",
					render(be.X), be.Op, render(be.Y))
			case floatInStruct:
				pass.Reportf(be.OpPos, "struct equality over float fields: %s %s %s (type %s); exact float comparison in disguise",
					render(be.X), be.Op, render(be.Y), t.String())
			}
			return true
		})
	}
}

// operandType returns the type of e if known and non-nil.
func operandType(pass *Pass, e ast.Expr) types.Type {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

type floatClass int

const (
	notFloat floatClass = iota
	floatDirect
	floatInStruct
)

// floatKind classifies a type: a floating basic kind (possibly behind a
// named type), a struct or array transitively holding one, or neither.
func floatKind(t types.Type) floatClass {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Float32, types.Float64, types.Complex64, types.Complex128,
			types.UntypedFloat, types.UntypedComplex:
			return floatDirect
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if floatKind(u.Field(i).Type()) != notFloat {
				return floatInStruct
			}
		}
	case *types.Array:
		if floatKind(u.Elem()) != notFloat {
			return floatInStruct
		}
	}
	return notFloat
}
