package absint

// The interval domain: every numeric fact is a closed range [Lo, Hi] with an
// orthogonal NonZero bit ("provably never zero" survives joins that widen the
// range across zero, which is exactly the fact a division guard establishes).
//
// The domain runs on EVIDENCE semantics. Known=false is top — "no idea" —
// and a check built on it must stay silent there. Facts only exist when the
// source gives them: a literal, a len() (always ≥ 0), a physics seed fed in
// by the caller (a MHz-suffixed field inherits the module's operating-point
// range), a callee summary, or a branch refinement. That asymmetry is the
// difference between a range checker with a handful of true findings and one
// that drowns the suite in "might be zero" noise.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"strconv"
	"strings"

	"mcdvfs/internal/analysis/flow"
)

// Interval is one numeric fact. The zero value is top (Known=false).
type Interval struct {
	Lo, Hi  float64
	NonZero bool
	Known   bool
}

var inf = math.Inf(1)

// Top is the no-information value.
func Top() Interval { return Interval{} }

// Exact is the singleton interval [v, v].
func Exact(v float64) Interval {
	return Interval{Lo: v, Hi: v, NonZero: v != 0, Known: true} //lint:allow floateq interval bounds are exact rationals from source literals, not computed floats
}

// Range is the interval [lo, hi] (use math.Inf for open ends).
func Range(lo, hi float64) Interval {
	return Interval{Lo: lo, Hi: hi, Known: true}.norm()
}

// norm re-derives NonZero from bounds that exclude zero.
func (iv Interval) norm() Interval {
	if iv.Known && (iv.Lo > 0 || iv.Hi < 0) {
		iv.NonZero = true
	}
	return iv
}

// ContainsZero reports whether the fact admits zero — the division-by-zero
// trigger. Top never triggers (no evidence).
func (iv Interval) ContainsZero() bool {
	return iv.Known && !iv.NonZero && iv.Lo <= 0 && iv.Hi >= 0
}

// DefinitelyNegative reports a fact whose every value is < 0.
func (iv Interval) DefinitelyNegative() bool { return iv.Known && iv.Hi < 0 }

// MayBeNegative reports a fact that admits a value < 0.
func (iv Interval) MayBeNegative() bool { return iv.Known && iv.Lo < 0 }

// String renders the fact for diagnostics: "[0, 3200]", "[1, +inf)", "top".
func (iv Interval) String() string {
	if !iv.Known {
		return "top"
	}
	var b strings.Builder
	if math.IsInf(iv.Lo, -1) {
		b.WriteString("(-inf, ")
	} else {
		b.WriteString("[" + trimFloat(iv.Lo) + ", ")
	}
	if math.IsInf(iv.Hi, 1) {
		b.WriteString("+inf)")
	} else {
		b.WriteString(trimFloat(iv.Hi) + "]")
	}
	if iv.NonZero && iv.Lo <= 0 && iv.Hi >= 0 {
		b.WriteString("\\{0}")
	}
	return b.String()
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', 6, 64)
	return s
}

// IntervalLattice implements Lattice[Interval].
type IntervalLattice struct{}

// Join is the convex hull; joining with top is top, and NonZero survives only
// when both sides carry it.
func (IntervalLattice) Join(a, b Interval) Interval {
	if !a.Known || !b.Known {
		return Top()
	}
	return Interval{
		Lo: math.Min(a.Lo, b.Lo), Hi: math.Max(a.Hi, b.Hi),
		NonZero: a.NonZero && b.NonZero, Known: true,
	}.norm()
}

// Widen jumps any growing bound straight to infinity, so loop-head chains
// stabilize in one step per direction.
func (IntervalLattice) Widen(prev, next Interval) Interval {
	if !prev.Known || !next.Known {
		return Top()
	}
	w := prev
	if next.Lo < prev.Lo {
		w.Lo = math.Inf(-1)
	}
	if next.Hi > prev.Hi {
		w.Hi = inf
	}
	w.NonZero = prev.NonZero && next.NonZero
	return w.norm()
}

// Narrow pulls a widened infinite bound back to the recomputed one and keeps
// every finite bound (narrowing must never grow the interval).
func (IntervalLattice) Narrow(prev, next Interval) Interval {
	if !prev.Known {
		return next
	}
	if !next.Known {
		return prev
	}
	n := prev
	if math.IsInf(prev.Lo, -1) {
		n.Lo = next.Lo
	}
	if math.IsInf(prev.Hi, 1) {
		n.Hi = next.Hi
	}
	n.NonZero = prev.NonZero || next.NonZero
	return n.norm()
}

func (IntervalLattice) Equal(a, b Interval) bool { return a == b } //lint:allow floateq lattice equality is definitionally exact; an epsilon would break fixpoint termination

// IntervalEval evaluates expressions and drives transfer/refinement for the
// interval domain. The three hooks are how physics knowledge gets in without
// this package importing the model packages:
//
//   - VarSeed: a fact for an otherwise-unknown variable (a parameter named
//     freqMHz seeds the operating-point range);
//   - PathSeed: same for a selector path (m.dev.TRFCNs seeds [0, +inf));
//   - Call: a result interval for a statically-resolved call (the summary
//     table computed in an analyzer's Prepare hook).
type IntervalEval struct {
	Info     *types.Info
	VarSeed  func(v *types.Var) (Interval, bool)
	PathSeed func(sel *ast.SelectorExpr) (Interval, bool)
	Call     func(call *ast.CallExpr) (Interval, bool)
	// CallEnv is consulted before Call and additionally sees the current
	// environment, so a hook can propagate argument facts through a callee
	// (monotone math functions, contract summaries seeded by requires).
	CallEnv func(call *ast.CallExpr, env *Env[Interval]) (Interval, bool)
	// CallTuple resolves a multi-result call on the right of a tuple
	// assignment to per-result intervals, so annotated callees publish
	// facts for every result instead of clobbering each target to top.
	// The returned slice must have length n; unknown entries leave the
	// corresponding target untracked.
	CallTuple func(call *ast.CallExpr, n int) ([]Interval, bool)
}

// Interp wraps the evaluator as a fixpoint driver.
func (ev *IntervalEval) Interp() *Interp[Interval] {
	return &Interp[Interval]{
		Lat:      IntervalLattice{},
		Transfer: ev.Transfer,
		Refine:   ev.Refine,
	}
}

// Expr evaluates e to an interval under env.
func (ev *IntervalEval) Expr(e ast.Expr, env *Env[Interval]) Interval {
	if e == nil {
		return Top()
	}
	if tv, ok := ev.Info.Types[e]; ok && tv.Value != nil {
		if f, ok := constFloat(tv.Value); ok {
			return Exact(f)
		}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ev.Expr(e.X, env)
	case *ast.Ident:
		if v, ok := objVar(ev.Info, e); ok {
			if iv, ok := env.Var(v); ok {
				return iv
			}
			if ev.VarSeed != nil {
				if iv, ok := ev.VarSeed(v); ok {
					return iv.norm()
				}
			}
		}
		return Top()
	case *ast.SelectorExpr:
		if path, _, ok := PathOf(ev.Info, e); ok {
			if iv, ok := env.Path(path); ok {
				return iv
			}
		}
		if ev.PathSeed != nil {
			if iv, ok := ev.PathSeed(e); ok {
				return iv.norm()
			}
		}
		return Top()
	case *ast.CallExpr:
		return ev.callExpr(e, env)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.SUB:
			return negIv(ev.Expr(e.X, env))
		case token.ADD:
			return ev.Expr(e.X, env)
		}
		return Top()
	case *ast.BinaryExpr:
		x, y := ev.Expr(e.X, env), ev.Expr(e.Y, env)
		switch e.Op {
		case token.ADD:
			return addIv(x, y)
		case token.SUB:
			return subIv(x, y)
		case token.MUL:
			return mulIv(x, y)
		case token.QUO:
			return divIv(x, y, ev.isInt(e))
		case token.REM:
			return modIv(x, y)
		}
		return Top()
	}
	return Top()
}

// callExpr evaluates conversions, the len/cap/min/max builtins, and — through
// the Call hook — summarized module functions.
func (ev *IntervalEval) callExpr(call *ast.CallExpr, env *Env[Interval]) Interval {
	if tv, ok := ev.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return convertIv(ev.Expr(call.Args[0], env), tv.Type)
	}
	switch builtinName(ev.Info, call) {
	case "len", "cap":
		if len(call.Args) == 1 {
			if path, ok := lenKey(ev.Info, call); ok {
				if iv, ok := env.Path(path); ok {
					return iv
				}
				// cap without its own fact is still bounded below by any
				// length fact: cap(x) >= len(x) always.
				if strings.HasPrefix(path, "cap(") {
					if iv, ok := env.Path("len(" + strings.TrimPrefix(path, "cap(")); ok && iv.Known {
						return Range(iv.Lo, inf)
					}
				}
			}
			if n, ok := staticLen(ev.Info, call.Args[0]); ok {
				return Exact(float64(n))
			}
		}
		return Range(0, inf)
	case "min", "max":
		isMin := builtinName(ev.Info, call) == "min"
		out := ev.Expr(call.Args[0], env)
		for _, a := range call.Args[1:] {
			iv := ev.Expr(a, env)
			if !out.Known || !iv.Known {
				return Top()
			}
			if isMin {
				out = Range(math.Min(out.Lo, iv.Lo), math.Min(out.Hi, iv.Hi))
			} else {
				out = Range(math.Max(out.Lo, iv.Lo), math.Max(out.Hi, iv.Hi))
			}
		}
		return out
	case "":
		if ev.CallEnv != nil {
			if iv, ok := ev.CallEnv(call, env); ok {
				return iv.norm()
			}
		}
		if ev.Call != nil {
			if iv, ok := ev.Call(call); ok {
				return iv.norm()
			}
		}
	}
	return Top()
}

// Transfer applies one CFG node's effect to env in place.
func (ev *IntervalEval) Transfer(n ast.Node, env *Env[Interval]) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		ev.assign(n, env)
	case *ast.IncDecStmt:
		cur := ev.Expr(n.X, env)
		delta := Exact(1)
		if n.Tok == token.DEC {
			delta = Exact(-1)
		}
		ev.sideEffects(n, env)
		ev.write(n.X, addIv(cur, delta), contFacts{}, env)
	case *ast.DeclStmt:
		ev.declare(n, env)
	case *ast.RangeStmt:
		ev.rangeHead(n, env)
	default:
		ev.sideEffects(n, env)
	}
}

// assign handles =, :=, and the arithmetic op-assigns. RHS values are read
// under the pre-state, call side effects clobber, then LHS facts are written.
func (ev *IntervalEval) assign(as *ast.AssignStmt, env *Env[Interval]) {
	switch as.Tok {
	case token.DEFINE, token.ASSIGN:
		if len(as.Lhs) == len(as.Rhs) {
			vals := make([]Interval, len(as.Rhs))
			conts := make([]contFacts, len(as.Rhs))
			for i, r := range as.Rhs {
				vals[i] = ev.Expr(r, env)
				conts[i] = ev.contOf(r, env)
			}
			ev.sideEffects(as, env)
			for i, l := range as.Lhs {
				ev.write(l, vals[i], conts[i], env)
			}
			return
		}
		// Tuple assignment from a call or comma-ok: results untracked
		// unless the CallTuple hook can summarize the callee per-result.
		ev.sideEffects(as, env)
		if ev.CallTuple != nil && len(as.Rhs) == 1 {
			if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok {
				if ivs, ok := ev.CallTuple(call, len(as.Lhs)); ok && len(ivs) == len(as.Lhs) {
					for i, l := range as.Lhs {
						ev.write(l, ivs[i], contFacts{}, env)
					}
					return
				}
			}
		}
		for _, l := range as.Lhs {
			ev.write(l, Top(), contFacts{}, env)
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		cur := ev.Expr(as.Lhs[0], env)
		rhs := ev.Expr(as.Rhs[0], env)
		var nv Interval
		switch as.Tok {
		case token.ADD_ASSIGN:
			nv = addIv(cur, rhs)
		case token.SUB_ASSIGN:
			nv = subIv(cur, rhs)
		case token.MUL_ASSIGN:
			nv = mulIv(cur, rhs)
		case token.QUO_ASSIGN:
			nv = divIv(cur, rhs, ev.isInt(as.Lhs[0]))
		case token.REM_ASSIGN:
			nv = modIv(cur, rhs)
		}
		ev.sideEffects(as, env)
		ev.write(as.Lhs[0], nv, contFacts{}, env)
	default:
		// Bit-op assigns and anything exotic: clobber the target.
		ev.sideEffects(as, env)
		for _, l := range as.Lhs {
			ev.write(l, Top(), contFacts{}, env)
		}
	}
}

// declare handles var declarations: explicit initializers evaluate like an
// assignment, and bare numeric declarations pin the zero value (var n int is
// exactly [0, 0], the fact that makes an unguarded 1/n reportable).
func (ev *IntervalEval) declare(d *ast.DeclStmt, env *Env[Interval]) {
	gd, ok := d.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	ev.sideEffects(d, env)
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			v, ok := objVar(ev.Info, name)
			if !ok {
				continue
			}
			if i < len(vs.Values) {
				iv := ev.Expr(vs.Values[i], env)
				ev.write(name, iv, ev.contOf(vs.Values[i], env), env)
				continue
			}
			if len(vs.Values) > 0 {
				continue // tuple-valued var decl: untracked
			}
			if basic, ok := v.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsNumeric != 0 {
				env.Vars[v] = Exact(0)
			}
			switch v.Type().Underlying().(type) {
			case *types.Slice:
				env.Paths["len("+name.Name+")"] = Exact(0)
				env.Paths["cap("+name.Name+")"] = Exact(0)
			case *types.Map:
				env.Paths["len("+name.Name+")"] = Exact(0)
			}
		}
	}
}

// rangeHead models the loop header: X is evaluated, the key variable is
// redefined into [0, len-1] for sequences, and the value variable loses any
// stale fact.
func (ev *IntervalEval) rangeHead(r *ast.RangeStmt, env *Env[Interval]) {
	ev.sideEffectsExpr(r.X, env)
	seq := false
	if tv, ok := ev.Info.Types[r.X]; ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
			// slices, arrays (and pointers to them), strings: integer keys
			seq = true
		}
		if basic, ok := tv.Type.Underlying().(*types.Basic); ok {
			// range over an integer (go1.22): key in [0, n-1]
			seq = basic.Info()&types.IsInteger != 0 || basic.Info()&types.IsString != 0
		}
	}
	if id, ok := r.Key.(*ast.Ident); ok && id.Name != "_" {
		if v, ok := objVar(ev.Info, id); ok {
			if seq {
				hi := inf
				if ln, ok := ev.lenOf(r.X, env); ok && ln.Known && !math.IsInf(ln.Hi, 1) {
					hi = math.Max(ln.Hi-1, 0)
				} else if tv, ok := ev.Info.Types[r.X]; ok {
					if n, ok := arrayLen(tv.Type); ok {
						hi = math.Max(float64(n)-1, 0)
					}
				}
				env.Vars[v] = Range(0, hi)
			} else {
				delete(env.Vars, v)
			}
			invalidateRoot(env, id.Name)
		}
	}
	if id, ok := r.Value.(*ast.Ident); ok && id.Name != "_" {
		ev.write(id, Top(), contFacts{}, env)
	}
}

// contFacts carries the container facts (length, capacity) of an RHS value
// being written; each side is valid only when its OK bit is set.
type contFacts struct {
	len, cap     Interval
	lenOK, capOK bool
}

// contOf bundles lenOf and capOf for a value about to be stored.
func (ev *IntervalEval) contOf(e ast.Expr, env *Env[Interval]) contFacts {
	var cf contFacts
	cf.len, cf.lenOK = ev.lenOf(e, env)
	cf.cap, cf.capOK = ev.capOf(e, env)
	return cf
}

// write stores a fact at an assignable destination, invalidating whatever the
// store makes stale. cf carries length/capacity facts for container-valued
// RHS (make, composite literal, append).
func (ev *IntervalEval) write(lhs ast.Expr, val Interval, cf contFacts, env *Env[Interval]) {
	switch l := lhs.(type) {
	case *ast.ParenExpr:
		ev.write(l.X, val, cf, env)
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		invalidateRoot(env, l.Name)
		v, ok := objVar(ev.Info, l)
		if !ok {
			return
		}
		if val.Known {
			env.Vars[v] = val
		} else {
			delete(env.Vars, v)
		}
		writeContFacts(env, l.Name, cf)
	case *ast.SelectorExpr:
		path, _, ok := PathOf(ev.Info, l)
		if !ok {
			// Unrenderable base (method call result, index): give up on all
			// dotted facts — something reachable changed.
			invalidateDotted(env)
			return
		}
		invalidatePrefix(env, path)
		if val.Known {
			env.Paths[path] = val
		}
		writeContFacts(env, path, cf)
	case *ast.IndexExpr:
		// Element writes don't change lengths and elements are untracked.
	case *ast.StarExpr:
		// A store through a pointer may alias any field anywhere.
		invalidateDotted(env)
	}
}

func writeContFacts(env *Env[Interval], path string, cf contFacts) {
	if cf.lenOK && cf.len.Known {
		env.Paths["len("+path+")"] = cf.len
	}
	if cf.capOK && cf.cap.Known {
		env.Paths["cap("+path+")"] = cf.cap
	}
}

// lenOf produces a length fact for container-valued expressions: append
// arithmetic, make sizes, composite literals, fixed arrays, aliases.
// LenOf exposes the length fact the evaluator holds for e, if any, so
// checks can compare indices against container sizes.
func (ev *IntervalEval) LenOf(e ast.Expr, env *Env[Interval]) (Interval, bool) {
	return ev.lenOf(e, env)
}

func (ev *IntervalEval) lenOf(e ast.Expr, env *Env[Interval]) (Interval, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ev.lenOf(e.X, env)
	case *ast.Ident, *ast.SelectorExpr:
		if path, _, ok := PathOf(ev.Info, e); ok {
			if iv, ok := env.Path("len(" + path + ")"); ok {
				return iv, true
			}
		}
		if tv, ok := ev.Info.Types[e]; ok {
			if n, ok := arrayLen(tv.Type); ok {
				return Exact(float64(n)), true
			}
		}
		return Top(), false
	case *ast.CompositeLit:
		tv, ok := ev.Info.Types[e]
		if !ok {
			return Top(), false
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Map:
			for _, elt := range e.Elts {
				if _, keyed := elt.(*ast.KeyValueExpr); keyed {
					if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
						return Top(), false // keyed slice elements set arbitrary indices
					}
				}
			}
			return Exact(float64(len(e.Elts))), true
		}
		if n, ok := arrayLen(tv.Type); ok {
			return Exact(float64(n)), true
		}
		return Top(), false
	case *ast.CallExpr:
		switch builtinName(ev.Info, e) {
		case "make":
			if len(e.Args) >= 2 {
				return ev.Expr(e.Args[1], env), true
			}
			if len(e.Args) == 1 { // make(map[K]V) / make(chan T)
				return Exact(0), true
			}
		case "append":
			if len(e.Args) == 0 {
				return Top(), false
			}
			base, ok := ev.lenOf(e.Args[0], env)
			if !ok {
				base = Range(0, inf)
			}
			if e.Ellipsis.IsValid() {
				return addIv(base, Range(0, inf)), true
			}
			return addIv(base, Exact(float64(len(e.Args)-1))), true
		}
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			if tv, ok := ev.Info.Types[e]; ok && tv.Value != nil {
				if s := constant.StringVal(tv.Value); true {
					return Exact(float64(len(s))), true
				}
			}
		}
	}
	return Top(), false
}

// CapOf exposes the capacity fact the evaluator holds for e, if any, so
// checks can prove appends grow in place (len + k <= cap).
func (ev *IntervalEval) CapOf(e ast.Expr, env *Env[Interval]) (Interval, bool) {
	return ev.capOf(e, env)
}

// capOf produces a capacity fact for container-valued expressions. It
// mirrors lenOf where capacities are determined: make sizes seed it, a slice
// literal's capacity equals its length, and append never shrinks capacity.
func (ev *IntervalEval) capOf(e ast.Expr, env *Env[Interval]) (Interval, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ev.capOf(e.X, env)
	case *ast.Ident, *ast.SelectorExpr:
		if path, _, ok := PathOf(ev.Info, e); ok {
			if iv, ok := env.Path("cap(" + path + ")"); ok {
				return iv, true
			}
		}
		if tv, ok := ev.Info.Types[e]; ok {
			if n, ok := arrayLen(tv.Type); ok {
				return Exact(float64(n)), true
			}
		}
		return Top(), false
	case *ast.CompositeLit:
		tv, ok := ev.Info.Types[e]
		if !ok {
			return Top(), false
		}
		if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
			if ln, ok := ev.lenOf(e, env); ok {
				return ln, true
			}
			return Top(), false
		}
		if n, ok := arrayLen(tv.Type); ok {
			return Exact(float64(n)), true
		}
		return Top(), false
	case *ast.CallExpr:
		switch builtinName(ev.Info, e) {
		case "make":
			if _, isMap := typeUnder(ev.Info, e).(*types.Map); isMap {
				return Top(), false // maps have no capacity fact
			}
			if len(e.Args) >= 3 {
				return ev.Expr(e.Args[2], env), true
			}
			if len(e.Args) == 2 {
				return ev.Expr(e.Args[1], env), true
			}
			if len(e.Args) == 1 { // make(chan T): unbuffered
				return Exact(0), true
			}
		case "append":
			if len(e.Args) == 0 {
				return Top(), false
			}
			// In place or reallocated, append never returns a smaller
			// capacity than its base.
			if base, ok := ev.capOf(e.Args[0], env); ok && base.Known {
				return Range(base.Lo, inf), true
			}
		}
	}
	return Top(), false
}

func typeUnder(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}

// sideEffects clobbers facts a node's calls or escapes could change: any
// non-builtin call invalidates every dotted path (callees may mutate fields
// through pointers), taking a variable's address or mutating it inside a
// closure drops its fact, and &x kills len(x) (the callee can grow it).
func (ev *IntervalEval) sideEffects(n ast.Node, env *Env[Interval]) {
	ev.sideEffectsExpr(flow.HeaderExpr(n), env)
}

func (ev *IntervalEval) sideEffectsExpr(n ast.Node, env *Env[Interval]) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if isOpaqueCall(ev.Info, m) {
				invalidateDotted(env)
			}
			return true
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				if path, root, ok := PathOf(ev.Info, m.X); ok {
					invalidateRoot(env, rootName(path))
					if root != nil {
						delete(env.Vars, root)
					}
				}
			}
			return true
		case *ast.FuncLit:
			// Assignments inside the literal may run at any later point;
			// captured targets lose their facts now.
			ast.Inspect(m.Body, func(k ast.Node) bool {
				switch k := k.(type) {
				case *ast.AssignStmt:
					for _, l := range k.Lhs {
						ev.dropCaptured(l, env)
					}
				case *ast.IncDecStmt:
					ev.dropCaptured(k.X, env)
				}
				return true
			})
			return false
		}
		return true
	})
}

func (ev *IntervalEval) dropCaptured(l ast.Expr, env *Env[Interval]) {
	if path, root, ok := PathOf(ev.Info, l); ok {
		invalidateRoot(env, rootName(path))
		if root != nil {
			delete(env.Vars, root)
		}
	}
}

// Refine narrows env down a branch edge. cond is the block's condition,
// taken its outcome on this edge.
func (ev *IntervalEval) Refine(cond ast.Expr, taken bool, env *Env[Interval]) {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		ev.Refine(c.X, taken, env)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			ev.Refine(c.X, !taken, env)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if taken { // both conjuncts hold
				ev.Refine(c.X, true, env)
				ev.Refine(c.Y, true, env)
			}
		case token.LOR:
			if !taken { // both disjuncts fail
				ev.Refine(c.X, false, env)
				ev.Refine(c.Y, false, env)
			}
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			op := c.Op
			if !taken {
				op = negateCmp(op)
			}
			rv := ev.Expr(c.Y, env)
			lv := ev.Expr(c.X, env)
			ev.constrain(c.X, op, rv, env)
			ev.constrain(c.Y, swapCmp(op), lv, env)
		}
	}
}

// constrain intersects the fact slot behind e with the comparison `e op
// bound`.
func (ev *IntervalEval) constrain(e ast.Expr, op token.Token, bound Interval, env *Env[Interval]) {
	e = unparen(e)
	v, path, ok := ev.factSlot(e)
	if !ok {
		return
	}
	cur := ev.Expr(e, env)
	if !cur.Known {
		cur = Range(math.Inf(-1), inf)
		if _, isLen := e.(*ast.CallExpr); isLen {
			cur = Range(0, inf) // len/cap are never negative
		}
	}
	nv := applyCmp(cur, op, bound, ev.isInt(e))
	if !nv.Known {
		return
	}
	if v != nil {
		env.Vars[v] = nv
	} else {
		env.Paths[path] = nv
	}
}

// factSlot maps a guardable expression to its storage: a variable, or a
// rendered path for selectors and len()/cap() calls.
func (ev *IntervalEval) factSlot(e ast.Expr) (v *types.Var, path string, ok bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := objVar(ev.Info, e); ok {
			return v, "", true
		}
	case *ast.SelectorExpr:
		if path, _, ok := PathOf(ev.Info, e); ok {
			return nil, path, true
		}
	case *ast.CallExpr:
		if path, ok := lenKey(ev.Info, e); ok {
			return nil, path, true
		}
	}
	return nil, "", false
}

// ApplyCmp exposes the comparison-intersection primitive for checks that
// seed environments from declarative facts (the contract check turns each
// `//vet:requires x > 0` conjunct into ApplyCmp over an unconstrained slot).
func ApplyCmp(cur Interval, op token.Token, bound Interval, integer bool) Interval {
	return applyCmp(cur, op, bound, integer)
}

// applyCmp intersects cur with `x op bound`, with integer endpoint
// tightening (x < n is x <= n-1 for ints).
func applyCmp(cur Interval, op token.Token, bound Interval, integer bool) Interval {
	eps := 0.0
	if integer {
		eps = 1
	}
	out := cur
	switch op {
	case token.EQL:
		if !bound.Known {
			return cur
		}
		out.Lo = math.Max(out.Lo, bound.Lo)
		out.Hi = math.Min(out.Hi, bound.Hi)
		out.NonZero = out.NonZero || bound.NonZero
	case token.NEQ:
		if bound.Known && bound.Lo == 0 && bound.Hi == 0 { //lint:allow floateq exact-zero bound test implements the x != 0 refinement
			out.NonZero = true
		}
		if integer && bound.Known && bound.Lo == bound.Hi { //lint:allow floateq singleton-bound test on exact literal bounds
			if out.Lo == bound.Lo { //lint:allow floateq endpoint tightening compares exact integer bounds
				out.Lo++
			}
			if out.Hi == bound.Hi { //lint:allow floateq endpoint tightening compares exact integer bounds
				out.Hi--
			}
		}
	case token.LSS:
		if bound.Known && !math.IsInf(bound.Hi, 1) {
			out.Hi = math.Min(out.Hi, bound.Hi-eps)
		}
		if bound.Known && bound.Hi <= 0 && eps == 0 { //lint:allow floateq eps is exactly 0 or 1 by construction
			out.NonZero = true // x < y <= 0 means x < 0 even when bounds can't say
		}
	case token.LEQ:
		if bound.Known {
			out.Hi = math.Min(out.Hi, bound.Hi)
		}
	case token.GTR:
		if bound.Known && !math.IsInf(bound.Lo, -1) {
			out.Lo = math.Max(out.Lo, bound.Lo+eps)
		}
		if bound.Known && bound.Lo >= 0 && eps == 0 { //lint:allow floateq eps is exactly 0 or 1 by construction
			out.NonZero = true // x > y >= 0 means x > 0
		}
	case token.GEQ:
		if bound.Known {
			out.Lo = math.Max(out.Lo, bound.Lo)
		}
	default:
		return cur
	}
	if out.Lo > out.Hi {
		// Infeasible edge: collapse to a point so downstream reads stay sane.
		out.Hi = out.Lo
	}
	return out.norm()
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	}
	return token.ILLEGAL
}

func swapCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op // ==, != are symmetric
}

// ---- interval arithmetic ----

func negIv(a Interval) Interval {
	if !a.Known {
		return Top()
	}
	return Interval{Lo: -a.Hi, Hi: -a.Lo, NonZero: a.NonZero, Known: true}.norm()
}

func addIv(a, b Interval) Interval {
	if !a.Known || !b.Known {
		return Top()
	}
	return Range(a.Lo+b.Lo, a.Hi+b.Hi)
}

func subIv(a, b Interval) Interval {
	if !a.Known || !b.Known {
		return Top()
	}
	return Range(a.Lo-b.Hi, a.Hi-b.Lo)
}

// mulBound multiplies one pair of bounds, defining 0 * inf as 0 (the product
// interval is built from attainable finite values; infinities only mark
// unboundedness).
func mulBound(a, b float64) float64 {
	if a == 0 || b == 0 { //lint:allow floateq exact-zero operand makes 0*inf well-defined as 0
		return 0
	}
	return a * b
}

func mulIv(a, b Interval) Interval {
	if !a.Known || !b.Known {
		return Top()
	}
	p1, p2 := mulBound(a.Lo, b.Lo), mulBound(a.Lo, b.Hi)
	p3, p4 := mulBound(a.Hi, b.Lo), mulBound(a.Hi, b.Hi)
	out := Range(math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		math.Max(math.Max(p1, p2), math.Max(p3, p4)))
	out.NonZero = a.NonZero && b.NonZero
	return out.norm()
}

func divIv(a, b Interval, integer bool) Interval {
	if !a.Known || !b.Known {
		return Top()
	}
	// A divisor interval that straddles zero makes the quotient unbounded —
	// unless the NonZero bit excludes zero itself, in which case the sign of
	// the result is still determined when the divisor is sign-definite:
	// a >= 0 over b in (0, hi] stays >= 0 (unbounded above), and mirrored
	// for the other sign combinations. That is exactly the fact an
	// `//vet:ensures ret > 0` on a reciprocal needs.
	if b.Lo <= 0 && b.Hi >= 0 {
		if !b.NonZero {
			return Top()
		}
		nz := a.NonZero && !integer // 1/2 == 0: integer quotients reach zero
		switch {
		case b.Lo >= 0 && a.Lo >= 0: // b in (0, hi], a >= 0
			return Interval{Lo: 0, Hi: inf, NonZero: nz, Known: true}.norm()
		case b.Lo >= 0 && a.Hi <= 0: // b in (0, hi], a <= 0
			return Interval{Lo: math.Inf(-1), Hi: 0, NonZero: nz, Known: true}.norm()
		case b.Hi <= 0 && a.Lo >= 0: // b in [lo, 0), a >= 0
			return Interval{Lo: math.Inf(-1), Hi: 0, NonZero: nz, Known: true}.norm()
		case b.Hi <= 0 && a.Hi <= 0: // b in [lo, 0), a <= 0
			return Interval{Lo: 0, Hi: inf, NonZero: nz, Known: true}.norm()
		}
		return Top()
	}
	q := func(x, y float64) float64 {
		if math.IsInf(y, 0) {
			if math.IsInf(x, 0) {
				return 0 // inf/inf contributes nothing extremal
			}
			return 0
		}
		r := x / y
		if integer {
			return math.Trunc(r)
		}
		return r
	}
	p1, p2 := q(a.Lo, b.Lo), q(a.Lo, b.Hi)
	p3, p4 := q(a.Hi, b.Lo), q(a.Hi, b.Hi)
	out := Range(math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		math.Max(math.Max(p1, p2), math.Max(p3, p4)))
	if integer {
		out.NonZero = false // 1/2 == 0: integer division reaches zero
		out = out.norm()
	} else {
		out.NonZero = a.NonZero
		out = out.norm()
	}
	return out
}

// modIv: |a % b| < |b| with the sign of a (Go semantics).
func modIv(a, b Interval) Interval {
	if !b.Known || !b.NonZero {
		return Top()
	}
	m := math.Max(math.Abs(b.Lo), math.Abs(b.Hi)) - 1
	if m < 0 || math.IsInf(m, 1) {
		return Top()
	}
	lo := -m
	if a.Known && a.Lo >= 0 {
		lo = 0
	}
	return Range(lo, m)
}

// convertIv approximates a numeric conversion: integer targets truncate
// (which can create zero from (0,1) — NonZero is re-derived, never copied).
func convertIv(a Interval, target types.Type) Interval {
	basic, ok := target.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsNumeric == 0 || !a.Known {
		return Top()
	}
	if basic.Info()&types.IsInteger != 0 {
		lo, hi := a.Lo, a.Hi
		if !math.IsInf(lo, -1) {
			lo = math.Floor(lo)
		}
		if !math.IsInf(hi, 1) {
			hi = math.Ceil(hi)
		}
		out := Interval{Lo: lo, Hi: hi, Known: true}
		return out.norm()
	}
	return a
}

// ---- helpers ----

func constFloat(v constant.Value) (float64, bool) {
	switch v.Kind() {
	case constant.Int, constant.Float:
		f, _ := constant.Float64Val(constant.ToFloat(v))
		return f, true
	}
	return 0, false
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// isOpaqueCall reports calls whose side effects we cannot see: everything
// except builtins and type conversions.
func isOpaqueCall(info *types.Info, call *ast.CallExpr) bool {
	if builtinName(info, call) != "" {
		return false
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return false
	}
	return true
}

// lenKey renders a len/cap call over a path-able argument as a fact key.
// len and cap are distinct slots: a make(.., n, c) seeds both, and a guard
// on one must not be read back as the other.
func lenKey(info *types.Info, call *ast.CallExpr) (string, bool) {
	name := builtinName(info, call)
	if (name != "len" && name != "cap") || len(call.Args) != 1 {
		return "", false
	}
	path, _, ok := PathOf(info, call.Args[0])
	if !ok {
		return "", false
	}
	return name + "(" + path + ")", true
}

// staticLen resolves len of fixed-size arrays from the type alone.
func staticLen(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok {
		return 0, false
	}
	return arrayLen(tv.Type)
}

func arrayLen(t types.Type) (int64, bool) {
	if t == nil {
		return 0, false
	}
	switch u := t.Underlying().(type) {
	case *types.Array:
		return u.Len(), true
	case *types.Pointer:
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			return arr.Len(), true
		}
	}
	return 0, false
}

func (ev *IntervalEval) isInt(e ast.Expr) bool {
	tv, ok := ev.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// bareKey strips a len(...) or cap(...) wrapper off a fact key, leaving the
// underlying path.
func bareKey(k string) string {
	if strings.HasPrefix(k, "len(") || strings.HasPrefix(k, "cap(") {
		return strings.TrimSuffix(k[4:], ")")
	}
	return k
}

// rootName extracts the root identifier of a fact key: "m.dev.TRFCNs",
// "len(m.dev.Rows)", and "cap(m.dev.Rows)" all root at "m".
func rootName(path string) string {
	path = bareKey(path)
	if i := strings.IndexByte(path, '.'); i >= 0 {
		return path[:i]
	}
	return path
}

// invalidateRoot drops every path fact rooted at name (by name: shadowed
// variables over-invalidate, which errs toward silence).
func invalidateRoot(env *Env[Interval], name string) {
	for k := range env.Paths {
		if rootName(k) == name {
			delete(env.Paths, k)
		}
	}
}

// invalidatePrefix drops path and everything nested under it, plus its
// len/cap facts.
func invalidatePrefix(env *Env[Interval], path string) {
	for k := range env.Paths {
		bare := bareKey(k)
		if bare == path || strings.HasPrefix(bare, path+".") {
			delete(env.Paths, k)
		}
	}
}

// invalidateDotted drops every field-path fact but keeps len()/cap() facts of
// plain locals: a callee cannot change the length a caller-held slice header
// sees.
func invalidateDotted(env *Env[Interval]) {
	for k := range env.Paths {
		if strings.Contains(bareKey(k), ".") {
			delete(env.Paths, k)
		}
	}
}
