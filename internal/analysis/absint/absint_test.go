package absint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"math"
	"testing"

	"mcdvfs/internal/analysis/flow"
)

// load typechecks one synthetic file and returns its functions by name.
func load(t *testing.T, src string) (*types.Info, map[string]*ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "absfix.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("absfix", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	fns := map[string]*ast.FuncDecl{}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			fns[fd.Name.Name] = fd
		}
	}
	return info, fns
}

// atExit runs the interval analysis on fn and returns the entry env of the
// exit block (the state after every return path joined — good enough for
// asserting facts that hold on all paths reaching the end).
func intervalAt(t *testing.T, info *types.Info, fn *ast.FuncDecl, name string) (map[*flow.Block]*Env[Interval], *flow.CFG, *IntervalEval) {
	t.Helper()
	ev := &IntervalEval{Info: info}
	cfg := flow.New(fn)
	envs := ev.Interp().Analyze(cfg, NewEnv[Interval]())
	_ = name
	return envs, cfg, ev
}

// factOf finds the interval of the named variable at the entry of the first
// block whose Kind matches kind.
func factOf(t *testing.T, info *types.Info, envs map[*flow.Block]*Env[Interval], cfg *flow.CFG, kind, name string) Interval {
	t.Helper()
	for _, blk := range cfg.Blocks {
		if blk.Kind != kind {
			continue
		}
		env := envs[blk]
		if env == nil {
			t.Fatalf("no env at %s", kind)
		}
		for v, iv := range env.Vars {
			if v.Name() == name {
				return iv
			}
		}
		return Top()
	}
	t.Fatalf("no block of kind %s", kind)
	return Top()
}

func TestIntervalConstantsAndArith(t *testing.T) {
	info, fns := load(t, `package absfix
func F() int {
	a := 3
	b := a * 4
	c := b - 2
	return c
}`)
	envs, cfg, _ := intervalAt(t, info, fns["F"], "F")
	got := factOf(t, info, envs, cfg, "exit", "c")
	if got != Exact(10) {
		t.Errorf("c = %v, want [10, 10]", got)
	}
}

func TestIntervalBranchRefinement(t *testing.T) {
	info, fns := load(t, `package absfix
func F(n int) int {
	if n <= 0 {
		return 0
	}
	x := n
	return x
}`)
	envs, cfg, _ := intervalAt(t, info, fns["F"], "F")
	// In the block after the guard (if.done), n must be >= 1 and NonZero.
	got := factOf(t, info, envs, cfg, "if.done", "n")
	if !got.Known || got.Lo != 1 || !got.NonZero {
		t.Errorf("after guard n = %v, want [1, +inf) nonzero", got)
	}
}

func TestIntervalNeqZeroRefinement(t *testing.T) {
	info, fns := load(t, `package absfix
func F(t float64) float64 {
	if t != 0 {
		return 1 / t
	}
	return 0
}`)
	envs, cfg, ev := intervalAt(t, info, fns["F"], "F")
	for _, blk := range cfg.Blocks {
		if blk.Kind != "if.then" {
			continue
		}
		env := envs[blk]
		for v, iv := range env.Vars {
			if v.Name() == "t" && !iv.NonZero {
				t.Errorf("in then-branch t = %v, want nonzero", iv)
			}
		}
	}
	_ = ev
}

func TestIntervalLoopWidensAndNarrows(t *testing.T) {
	info, fns := load(t, `package absfix
func F(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}`)
	envs, cfg, _ := intervalAt(t, info, fns["F"], "F")
	// At the loop head, i starts at 0 and grows: widening pushes Hi to +inf
	// but Lo must stay 0 (the loop never decrements).
	got := factOf(t, info, envs, cfg, "for.head", "i")
	if !got.Known || got.Lo != 0 {
		t.Errorf("at loop head i = %v, want Lo = 0", got)
	}
	// In the body, the i < n refinement caps nothing absolute (n unknown)
	// but i stays >= 0.
	body := factOf(t, info, envs, cfg, "for.body", "i")
	if !body.Known || body.Lo != 0 {
		t.Errorf("in body i = %v, want Lo = 0", body)
	}
}

func TestIntervalLenGuard(t *testing.T) {
	info, fns := load(t, `package absfix
func F(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}`)
	ev := &IntervalEval{Info: info}
	cfg := flow.New(fns["F"])
	envs := ev.Interp().Analyze(cfg, NewEnv[Interval]())
	// Below the guard the fact len(xs) >= 1 must hold; find the division and
	// check its divisor evaluates nonzero.
	var checked bool
	for _, blk := range cfg.Blocks {
		entry := envs[blk]
		if entry == nil {
			continue
		}
		ev.Interp().Walk(blk, entry, func(n ast.Node, env *Env[Interval]) {
			ast.Inspect(flow.HeaderExpr(n), func(m ast.Node) bool {
				if be, ok := m.(*ast.BinaryExpr); ok && be.Op == token.QUO {
					iv := ev.Expr(be.Y, env)
					if !iv.NonZero {
						t.Errorf("divisor %v not proven nonzero below len guard", iv)
					}
					checked = true
				}
				return true
			})
		})
	}
	if !checked {
		t.Fatal("no division found in fixture")
	}
}

func TestIntervalMakeLen(t *testing.T) {
	info, fns := load(t, `package absfix
func F() int {
	xs := make([]int, 8)
	ys := []string{"a", "b", "c"}
	return len(xs) + len(ys)
}`)
	ev := &IntervalEval{Info: info}
	cfg := flow.New(fns["F"])
	envs := ev.Interp().Analyze(cfg, NewEnv[Interval]())
	exit := envs[cfg.Exit]
	if exit == nil {
		t.Fatal("no exit env")
	}
	if iv, ok := exit.Path("len(xs)"); !ok || iv != Exact(8) {
		t.Errorf("len(xs) = %v (ok=%v), want [8, 8]", iv, ok)
	}
	if iv, ok := exit.Path("len(ys)"); !ok || iv != Exact(3) {
		t.Errorf("len(ys) = %v (ok=%v), want [3, 3]", iv, ok)
	}
}

func TestIntervalDivByZeroSpansTop(t *testing.T) {
	lat := IntervalLattice{}
	q := divIv(Exact(10), Range(-1, 1), false)
	if q.Known {
		t.Errorf("10 / [-1,1] = %v, want top", q)
	}
	// Join with top is top: no evidence survives an unknown path.
	if j := lat.Join(Exact(1), Top()); j.Known {
		t.Errorf("join with top = %v, want top", j)
	}
	// NonZero survives a join whose hull straddles zero: {-2} ∪ {3} never
	// contains 0 even though [-2, 3] does.
	nz := lat.Join(Exact(-2), Exact(3))
	if !nz.Known || !nz.NonZero {
		t.Errorf("[-2,-2] join [3,3] = %v, want nonzero preserved", nz)
	}
	if nz.ContainsZero() {
		t.Errorf("%v reports ContainsZero despite the NonZero bit", nz)
	}
	// But a zero-admitting side poisons the bit.
	z := lat.Join(Exact(0), Exact(3))
	if z.NonZero || !z.ContainsZero() {
		t.Errorf("[0,0] join [3,3] = %v, want zero admitted", z)
	}
}

func TestIntervalWidenNarrow(t *testing.T) {
	lat := IntervalLattice{}
	w := lat.Widen(Range(0, 1), Range(0, 2))
	if !w.Known || w.Lo != 0 || !math.IsInf(w.Hi, 1) {
		t.Errorf("widen = %v, want [0, +inf)", w)
	}
	n := lat.Narrow(w, Range(0, 9))
	if n != Range(0, 9) {
		t.Errorf("narrow = %v, want [0, 9]", n)
	}
	// Narrowing never grows a finite bound.
	n2 := lat.Narrow(Range(0, 5), Range(0, 100))
	if n2.Hi != 5 {
		t.Errorf("narrow grew the bound: %v", n2)
	}
}

func TestIntervalIntConversionKillsNonZero(t *testing.T) {
	iv := convertIv(Interval{Lo: 0.2, Hi: 0.8, NonZero: true, Known: true}, types.Typ[types.Int])
	if iv.NonZero {
		t.Errorf("int(0.2..0.8) = %v, must not be nonzero (truncates to 0)", iv)
	}
	if !iv.Known || iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("int(0.2..0.8) = %v, want [0, 1]", iv)
	}
}

func TestIntervalCallSummaryHook(t *testing.T) {
	info, fns := load(t, `package absfix
func ladder() int
func F() int {
	f := ladder()
	return 100 / f
}`)
	ev := &IntervalEval{
		Info: info,
		Call: func(call *ast.CallExpr) (Interval, bool) {
			return Range(800, 3200), true
		},
	}
	cfg := flow.New(fns["F"])
	envs := ev.Interp().Analyze(cfg, NewEnv[Interval]())
	exit := envs[cfg.Exit]
	found := false
	for v, iv := range exit.Vars {
		if v.Name() == "f" {
			found = true
			if iv != Range(800, 3200) {
				t.Errorf("f = %v, want [800, 3200]", iv)
			}
			if !iv.NonZero {
				t.Errorf("f = %v should be nonzero", iv)
			}
		}
	}
	if !found {
		t.Error("call summary did not seed f")
	}
}

func TestIntervalCallClobbersFields(t *testing.T) {
	info, fns := load(t, `package absfix
type S struct{ N int }
func (s *S) Bump()
func F(s *S) int {
	s.N = 5
	s.Bump()
	return s.N
}`)
	ev := &IntervalEval{Info: info}
	cfg := flow.New(fns["F"])
	envs := ev.Interp().Analyze(cfg, NewEnv[Interval]())
	exit := envs[cfg.Exit]
	if iv, ok := exit.Path("s.N"); ok {
		t.Errorf("s.N = %v survived an opaque method call, want clobbered", iv)
	}
}

// ---- nil-ness ----

func TestNilnessDeclAndMake(t *testing.T) {
	info, fns := load(t, `package absfix
func F() map[string]int {
	var m map[string]int
	m = make(map[string]int)
	return m
}`)
	ev := &NilEval{Info: info}
	cfg := flow.New(fns["F"])
	envs := ev.Interp().Analyze(cfg, NewEnv[Nilness]())
	exit := envs[cfg.Exit]
	for v, n := range exit.Vars {
		if v.Name() == "m" && n != NilNonNil {
			t.Errorf("m after make = %v, want non-nil", n)
		}
	}

	// Walk to the point between the declaration and the make: m must be nil.
	entry := envs[cfg.Entry]
	sawNil := false
	ev.Interp().Walk(cfg.Entry, entry, func(n ast.Node, env *Env[Nilness]) {
		if _, ok := n.(*ast.AssignStmt); ok {
			for v, f := range env.Vars {
				if v.Name() == "m" && f == NilIsNil {
					sawNil = true
				}
			}
		}
	})
	if !sawNil {
		t.Error("m not IsNil between var decl and make")
	}
}

func TestNilnessJoinPreservesEvidence(t *testing.T) {
	lat := NilLattice{}
	if got := lat.Join(NilUnknown, NilIsNil); got != NilMaybe {
		t.Errorf("unknown join nil = %v, want maybe (evidence preserved)", got)
	}
	if got := lat.Join(NilUnknown, NilNonNil); got != NilUnknown {
		t.Errorf("unknown join non-nil = %v, want unknown", got)
	}
	if got := lat.Join(NilIsNil, NilNonNil); got != NilMaybe {
		t.Errorf("nil join non-nil = %v, want maybe", got)
	}
}

func TestNilnessBranchRefinement(t *testing.T) {
	info, fns := load(t, `package absfix
func F(p *int) int {
	if p == nil {
		return 0
	}
	return *p
}`)
	ev := &NilEval{Info: info}
	cfg := flow.New(fns["F"])
	envs := ev.Interp().Analyze(cfg, NewEnv[Nilness]())
	for _, blk := range cfg.Blocks {
		env := envs[blk]
		if env == nil {
			continue
		}
		for v, n := range env.Vars {
			if v.Name() != "p" {
				continue
			}
			switch blk.Kind {
			case "if.then":
				if n != NilIsNil {
					t.Errorf("in then-branch p = %v, want nil", n)
				}
			case "if.done":
				if n != NilNonNil {
					t.Errorf("below guard p = %v, want non-nil", n)
				}
			}
		}
	}
}

func TestNilnessMergeSomePath(t *testing.T) {
	info, fns := load(t, `package absfix
func F(ok bool) map[string]int {
	var m map[string]int
	if ok {
		m = make(map[string]int)
	}
	return m
}`)
	ev := &NilEval{Info: info}
	cfg := flow.New(fns["F"])
	envs := ev.Interp().Analyze(cfg, NewEnv[Nilness]())
	exit := envs[cfg.Exit]
	found := false
	for v, n := range exit.Vars {
		if v.Name() == "m" {
			found = true
			if n != NilMaybe {
				t.Errorf("m at merge = %v, want maybe-nil (nil on the !ok path)", n)
			}
		}
	}
	if !found {
		t.Error("no fact for m at exit")
	}
}

func TestPathOf(t *testing.T) {
	info, fns := load(t, `package absfix
type Inner struct{ V int }
type Outer struct{ In Inner }
func F(o Outer) int {
	return o.In.V
}`)
	var sel *ast.SelectorExpr
	ast.Inspect(fns["F"], func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectorExpr); ok && sel == nil {
			sel = s
		}
		return true
	})
	path, root, ok := PathOf(info, sel)
	if !ok || path != "o.In.V" || root == nil || root.Name() != "o" {
		t.Errorf("PathOf = %q root %v ok %v, want o.In.V rooted at o", path, root, ok)
	}
	if rootName("len(o.In.Xs)") != "o" {
		t.Errorf("rootName(len(o.In.Xs)) = %q, want o", rootName("len(o.In.Xs)"))
	}
}
