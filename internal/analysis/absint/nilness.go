package absint

// The nil-ness domain tracks whether a map, pointer, slice, func, chan, or
// interface value can be nil at a program point. Like the interval domain it
// runs on evidence: NilUnknown is top and produces no findings; a fact only
// becomes NilIsNil or NilMaybe when the source shows a nil flowing in — a
// declared-but-never-made map, a literal nil assignment, a branch that
// tested x == nil and took the true edge.
//
// The join is deliberately evidence-preserving on one axis: joining IsNil
// with Unknown gives Maybe, not Unknown. One path demonstrably carries nil;
// forgetting that at the merge is how the classic "nil map write after the
// early-return initializer" escapes per-path checkers. Joining NonNil with
// Unknown stays Unknown — "initialized on one path" is not evidence about
// the other.

import (
	"go/ast"
	"go/token"
	"go/types"

	"mcdvfs/internal/analysis/flow"
)

// Nilness is one nil-ness fact.
type Nilness uint8

const (
	// NilUnknown is top: no evidence either way.
	NilUnknown Nilness = iota
	// NilMaybe: at least one path carries nil, at least one may not.
	NilMaybe
	// NilIsNil: nil on every path seen so far.
	NilIsNil
	// NilNonNil: provably non-nil (allocated, refined by a guard).
	NilNonNil
)

func (n Nilness) String() string {
	switch n {
	case NilMaybe:
		return "maybe-nil"
	case NilIsNil:
		return "nil"
	case NilNonNil:
		return "non-nil"
	}
	return "unknown"
}

// MayBeNil reports facts that should trigger a nil-flow finding at a
// dereference or map write: definite nil or nil-on-some-path.
func (n Nilness) MayBeNil() bool { return n == NilIsNil || n == NilMaybe }

// NilLattice implements Lattice[Nilness]. The domain is finite, so widening
// is join and narrowing adopts the recomputed value.
type NilLattice struct{}

func (NilLattice) Join(a, b Nilness) Nilness {
	if a == b {
		return a
	}
	switch {
	case a == NilUnknown && b == NilNonNil, a == NilNonNil && b == NilUnknown:
		return NilUnknown
	case a == NilIsNil || b == NilIsNil, a == NilMaybe || b == NilMaybe:
		return NilMaybe
	}
	return NilUnknown
}

func (l NilLattice) Widen(prev, next Nilness) Nilness { return l.Join(prev, next) }
func (NilLattice) Narrow(prev, next Nilness) Nilness  { return next }
func (NilLattice) Equal(a, b Nilness) bool            { return a == b }

// NilEval evaluates expressions and drives transfer/refinement for the
// nil-ness domain. Call lets the caller supply summaries for statically
// resolved calls (constructors that always return non-nil, passthroughs that
// return a nil parameter); VarSeed covers parameters whose callers are known
// to pass nil.
type NilEval struct {
	Info    *types.Info
	VarSeed func(v *types.Var) (Nilness, bool)
	Call    func(call *ast.CallExpr) (Nilness, bool)
}

// Interp wraps the evaluator as a fixpoint driver.
func (ev *NilEval) Interp() *Interp[Nilness] {
	return &Interp[Nilness]{
		Lat:      NilLattice{},
		Transfer: ev.Transfer,
		Refine:   ev.Refine,
	}
}

// Nilable reports whether t can hold nil at all.
func Nilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Map, *types.Pointer, *types.Slice, *types.Signature,
		*types.Chan, *types.Interface:
		return true
	}
	return false
}

// Expr evaluates e's nil-ness under env.
func (ev *NilEval) Expr(e ast.Expr, env *Env[Nilness]) Nilness {
	if e == nil {
		return NilUnknown
	}
	if tv, ok := ev.Info.Types[e]; ok && tv.IsNil() {
		return NilIsNil
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ev.Expr(e.X, env)
	case *ast.Ident:
		if v, ok := objVar(ev.Info, e); ok {
			if n, ok := env.Var(v); ok {
				return n
			}
			if ev.VarSeed != nil {
				if n, ok := ev.VarSeed(v); ok {
					return n
				}
			}
		}
		return NilUnknown
	case *ast.SelectorExpr:
		if path, _, ok := PathOf(ev.Info, e); ok {
			if n, ok := env.Path(path); ok {
				return n
			}
		}
		return NilUnknown
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return NilNonNil // &x is always a valid pointer
		}
		return NilUnknown
	case *ast.CompositeLit, *ast.FuncLit:
		return NilNonNil
	case *ast.CallExpr:
		return ev.callExpr(e, env)
	case *ast.SliceExpr:
		// s[i:j] of a non-nil slice stays non-nil; of unknown stays unknown.
		return ev.Expr(e.X, env)
	}
	return NilUnknown
}

func (ev *NilEval) callExpr(call *ast.CallExpr, env *Env[Nilness]) Nilness {
	switch builtinName(ev.Info, call) {
	case "make", "new":
		return NilNonNil
	case "append":
		// append with elements always allocates or keeps a non-nil base; a
		// bare append(x) preserves x.
		if len(call.Args) > 1 || call.Ellipsis.IsValid() {
			return NilNonNil
		}
		if len(call.Args) == 1 {
			return ev.Expr(call.Args[0], env)
		}
		return NilUnknown
	case "":
		// Conversions preserve nil-ness of the operand for nilable targets.
		if tv, ok := ev.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			return ev.Expr(call.Args[0], env)
		}
		if ev.Call != nil {
			if n, ok := ev.Call(call); ok {
				return n
			}
		}
	}
	return NilUnknown
}

// Transfer applies one CFG node's effect to env in place.
func (ev *NilEval) Transfer(n ast.Node, env *Env[Nilness]) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		ev.assign(n, env)
	case *ast.DeclStmt:
		ev.declare(n, env)
	case *ast.RangeStmt:
		// Key/value are redefined per iteration with untracked element
		// values; ranging itself proves nothing about X (range over a nil
		// slice or map is legal and empty).
		ev.clobberEsc(n, env)
		if id, ok := n.Key.(*ast.Ident); ok {
			ev.writeIdent(id, NilUnknown, env)
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			ev.writeIdent(id, NilUnknown, env)
		}
	default:
		ev.clobberEsc(n, env)
	}
}

func (ev *NilEval) assign(as *ast.AssignStmt, env *Env[Nilness]) {
	if as.Tok != token.DEFINE && as.Tok != token.ASSIGN {
		return // op-assigns are numeric; nothing nilable
	}
	if len(as.Lhs) == len(as.Rhs) {
		vals := make([]Nilness, len(as.Rhs))
		for i, r := range as.Rhs {
			vals[i] = ev.Expr(r, env)
		}
		ev.clobberEsc(as, env)
		for i, l := range as.Lhs {
			ev.write(l, vals[i], env)
		}
		return
	}
	// Tuple assignment. The comma-ok map read (v, ok := m[k]) and the
	// two-value type assertion produce untracked values; calls consult the
	// summary hook only for single results, so clobber here.
	ev.clobberEsc(as, env)
	for _, l := range as.Lhs {
		ev.write(l, NilUnknown, env)
	}
}

// declare seeds the classic finding: `var m map[K]V` (no initializer) is
// definitely nil, and a later m[k] = v panics.
func (ev *NilEval) declare(d *ast.DeclStmt, env *Env[Nilness]) {
	gd, ok := d.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	ev.clobberEsc(d, env)
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			if i < len(vs.Values) {
				ev.writeIdent(name, ev.Expr(vs.Values[i], env), env)
				continue
			}
			if len(vs.Values) > 0 {
				continue
			}
			v, ok := objVar(ev.Info, name)
			if ok && Nilable(v.Type()) {
				env.Vars[v] = NilIsNil
			}
		}
	}
}

// write stores a fact at an assignable destination.
func (ev *NilEval) write(lhs ast.Expr, val Nilness, env *Env[Nilness]) {
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		ev.writeIdent(l, val, env)
	case *ast.SelectorExpr:
		path, _, ok := PathOf(ev.Info, l)
		if !ok {
			return
		}
		nilInvalidatePrefix(env, path)
		if val != NilUnknown {
			env.Paths[path] = val
		}
	case *ast.StarExpr:
		nilInvalidateDotted(env)
	}
}

func (ev *NilEval) writeIdent(id *ast.Ident, val Nilness, env *Env[Nilness]) {
	if id.Name == "_" {
		return
	}
	v, ok := objVar(ev.Info, id)
	if !ok {
		return
	}
	nilInvalidateRoot(env, id.Name)
	if val != NilUnknown {
		env.Vars[v] = val
	} else {
		delete(env.Vars, v)
	}
}

// clobberEsc drops facts that calls or escapes can change, mirroring the
// interval domain's rules: opaque calls kill dotted paths, &x and closure
// mutation kill the variable's own fact.
func (ev *NilEval) clobberEsc(n ast.Node, env *Env[Nilness]) {
	header := flow.HeaderExpr(n)
	if header == nil {
		return
	}
	ast.Inspect(header, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if isOpaqueCall(ev.Info, m) {
				nilInvalidateDotted(env)
			}
			return true
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				if path, root, ok := PathOf(ev.Info, m.X); ok {
					nilInvalidateRoot(env, rootName(path))
					if root != nil {
						delete(env.Vars, root)
					}
				}
			}
			return true
		case *ast.FuncLit:
			ast.Inspect(m.Body, func(k ast.Node) bool {
				if as, ok := k.(*ast.AssignStmt); ok {
					for _, l := range as.Lhs {
						if path, root, ok := PathOf(ev.Info, l); ok {
							nilInvalidateRoot(env, rootName(path))
							if root != nil {
								delete(env.Vars, root)
							}
						}
					}
				}
				return true
			})
			return false
		}
		return true
	})
}

// Refine narrows env down a branch edge on x == nil / x != nil tests.
func (ev *NilEval) Refine(cond ast.Expr, taken bool, env *Env[Nilness]) {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		ev.Refine(c.X, taken, env)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			ev.Refine(c.X, !taken, env)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if taken {
				ev.Refine(c.X, true, env)
				ev.Refine(c.Y, true, env)
			}
		case token.LOR:
			if !taken {
				ev.Refine(c.X, false, env)
				ev.Refine(c.Y, false, env)
			}
		case token.EQL, token.NEQ:
			isNil := (c.Op == token.EQL) == taken
			target := c.X
			other := c.Y
			if tv, ok := ev.Info.Types[c.X]; ok && tv.IsNil() {
				target, other = c.Y, c.X
			}
			if tv, ok := ev.Info.Types[other]; !ok || !tv.IsNil() {
				return // not a nil comparison
			}
			ev.store(target, isNil, env)
		}
	}
}

func (ev *NilEval) store(e ast.Expr, isNil bool, env *Env[Nilness]) {
	val := NilNonNil
	if isNil {
		val = NilIsNil
	}
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if v, ok := objVar(ev.Info, e); ok {
			env.Vars[v] = val
		}
	case *ast.SelectorExpr:
		if path, _, ok := PathOf(ev.Info, e); ok {
			env.Paths[path] = val
		}
	}
}

func nilInvalidateRoot(env *Env[Nilness], name string) {
	for k := range env.Paths {
		if rootName(k) == name {
			delete(env.Paths, k)
		}
	}
}

func nilInvalidatePrefix(env *Env[Nilness], path string) {
	for k := range env.Paths {
		if k == path || len(k) > len(path) && k[:len(path)] == path && k[len(path)] == '.' {
			delete(env.Paths, k)
		}
	}
}

func nilInvalidateDotted(env *Env[Nilness]) {
	for k := range env.Paths {
		for i := 0; i < len(k); i++ {
			if k[i] == '.' {
				delete(env.Paths, k)
				break
			}
		}
	}
}
