// Package absint is the abstract-interpretation layer of mcdvfsvet: a
// generic join-semilattice fixpoint engine over the flow package's
// per-function CFGs, plus the two concrete domains the suite ships —
// intervals (interval.go) and nil-ness (nilness.go).
//
// The engine is deliberately classical. Abstract states are environments
// mapping variables (and a few tracked l-value paths like "s.Requests" or
// "len(xs)") to domain values; blocks are processed over a worklist in
// reverse postorder; the heads of natural loops — found via the flow
// package's dominator tree — are widening points, so every analysis
// terminates regardless of how the domain's chains behave; a bounded
// narrowing pass afterwards claws back the precision widening gave up (the
// standard [0,+inf] back to [0,len-1] recovery). Branch refinement hooks into
// the CFG's typed edges: when a block ends in a condition, the engine hands
// the domain the condition plus the edge's truth before joining into the
// successor, which is how "if insts == 0 { return }" proves the divisor
// nonzero below the guard.
//
// Interprocedural transfer mirrors the units check: callers compute
// per-function summaries (result ranges, parameter demands) in an analyzer's
// Prepare hook and feed them back through the domain's evaluation callbacks.
// The engine itself never resolves a call — it stays usable for any domain.
//
// Everything is stdlib-only (go/ast, go/types), like the rest of the suite.
package absint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mcdvfs/internal/analysis/flow"
)

// Lattice is a join-semilattice with widening and narrowing over values V.
// Join must be an upper bound; Widen must additionally guarantee that any
// ascending chain of repeated widenings stabilizes; Narrow(prev, next)
// refines prev toward next without dropping below the true fixpoint.
type Lattice[V any] interface {
	Join(a, b V) V
	Widen(prev, next V) V
	Narrow(prev, next V) V
	Equal(a, b V) bool
}

// Env is one abstract state: named facts over function-local variables and
// over rendered l-value paths ("m.dev.TREFIns", "len(points)"). A key that is
// absent carries no information — domains treat it as their top.
type Env[V any] struct {
	Vars  map[*types.Var]V
	Paths map[string]V
}

// NewEnv returns an empty environment.
func NewEnv[V any]() *Env[V] {
	return &Env[V]{Vars: map[*types.Var]V{}, Paths: map[string]V{}}
}

// Clone deep-copies the environment's maps (values are copied as values;
// domains use immutable value types).
func (e *Env[V]) Clone() *Env[V] {
	c := &Env[V]{Vars: make(map[*types.Var]V, len(e.Vars)), Paths: make(map[string]V, len(e.Paths))}
	for k, v := range e.Vars {
		c.Vars[k] = v
	}
	for k, v := range e.Paths {
		c.Paths[k] = v
	}
	return c
}

// Var returns the fact for v, reporting whether one exists.
func (e *Env[V]) Var(v *types.Var) (V, bool) {
	val, ok := e.Vars[v]
	return val, ok
}

// Path returns the fact for a rendered path, reporting whether one exists.
func (e *Env[V]) Path(p string) (V, bool) {
	val, ok := e.Paths[p]
	return val, ok
}

// joinInto merges src into dst under lat, keeping only keys present in both
// (a key absent on one side is top, and join with top is top). combine is
// lat.Join, lat.Widen, or lat.Narrow. Returns whether dst changed.
func joinInto[V any](lat Lattice[V], dst, src *Env[V], combine func(a, b V) V) bool {
	changed := false
	for k, dv := range dst.Vars {
		sv, ok := src.Vars[k]
		if !ok {
			delete(dst.Vars, k)
			changed = true
			continue
		}
		nv := combine(dv, sv)
		if !lat.Equal(nv, dv) {
			dst.Vars[k] = nv
			changed = true
		}
	}
	for k, dv := range dst.Paths {
		sv, ok := src.Paths[k]
		if !ok {
			delete(dst.Paths, k)
			changed = true
			continue
		}
		nv := combine(dv, sv)
		if !lat.Equal(nv, dv) {
			dst.Paths[k] = nv
			changed = true
		}
	}
	return changed
}

// Interp drives one domain over one CFG. Transfer applies a CFG node's
// effect to the environment in place. Refine (optional) applies a branch
// condition's outcome to the environment flowing down a true/false edge.
type Interp[V any] struct {
	Lat      Lattice[V]
	Transfer func(n ast.Node, env *Env[V])
	Refine   func(cond ast.Expr, taken bool, env *Env[V])
}

// narrowRounds bounds the descending sequence after stabilization. Two
// rounds recover the common patterns (a widened loop counter clamped back by
// its exit test); deeper recovery is not worth unbounded iteration.
const narrowRounds = 2

// Analyze runs the fixpoint and returns the environment at each block's
// entry. The entry block starts from entryEnv (seeded parameters); the
// caller keeps ownership of entryEnv and may not mutate it afterwards.
func (it *Interp[V]) Analyze(cfg *flow.CFG, entryEnv *Env[V]) map[*flow.Block]*Env[V] {
	heads := cfg.LoopHeads()

	// Reverse postorder gives the worklist a processing priority that visits
	// loop bodies before re-visiting their heads.
	rpo := rpoOrder(cfg)
	prio := make(map[*flow.Block]int, len(rpo))
	for i, blk := range rpo {
		prio[blk] = i
	}

	in := map[*flow.Block]*Env[V]{cfg.Entry: entryEnv.Clone()}
	work := map[*flow.Block]bool{cfg.Entry: true}
	pop := func() *flow.Block {
		best, bestP := (*flow.Block)(nil), int(^uint(0)>>1)
		for blk := range work {
			if p, ok := prio[blk]; ok && p < bestP {
				best, bestP = blk, p
			}
		}
		if best != nil {
			delete(work, best)
		}
		return best
	}

	flowEdge := func(blk *flow.Block, out *Env[V], widen bool) {
		for i, succ := range blk.Succs {
			edgeEnv := out.Clone()
			if it.Refine != nil && blk.Cond != nil {
				switch blk.SuccKinds[i] {
				case flow.EdgeTrue:
					it.Refine(blk.Cond, true, edgeEnv)
				case flow.EdgeFalse:
					it.Refine(blk.Cond, false, edgeEnv)
				}
			}
			prev, seen := in[succ]
			if !seen {
				in[succ] = edgeEnv
				work[succ] = true
				continue
			}
			combine := it.Lat.Join
			if widen && heads[succ] {
				combine = it.Lat.Widen
			}
			if joinInto(it.Lat, prev, edgeEnv, combine) {
				work[succ] = true
			}
		}
	}

	for {
		blk := pop()
		if blk == nil {
			break
		}
		out := in[blk].Clone()
		for _, n := range blk.Nodes {
			it.Transfer(n, out)
		}
		flowEdge(blk, out, true)
	}

	// Descending (narrowing) rounds: recompute every block's input from its
	// predecessors' refined outputs, narrowing at the widening points.
	for round := 0; round < narrowRounds; round++ {
		changed := false
		for _, blk := range rpo {
			if blk == cfg.Entry {
				continue
			}
			var merged *Env[V]
			for _, p := range blk.Preds {
				pin, ok := in[p]
				if !ok {
					continue
				}
				out := pin.Clone()
				for _, n := range p.Nodes {
					it.Transfer(n, out)
				}
				if it.Refine != nil && p.Cond != nil {
					for i, s := range p.Succs {
						if s != blk {
							continue
						}
						switch p.SuccKinds[i] {
						case flow.EdgeTrue:
							it.Refine(p.Cond, true, out)
						case flow.EdgeFalse:
							it.Refine(p.Cond, false, out)
						}
						break
					}
				}
				if merged == nil {
					merged = out
				} else {
					joinInto(it.Lat, merged, out, it.Lat.Join)
				}
			}
			if merged == nil {
				continue
			}
			prev, ok := in[blk]
			if !ok {
				continue
			}
			next := prev.Clone()
			if heads[blk] {
				// Narrow only keeps refinements; it never widens back up.
				narrowEnv(it.Lat, next, merged)
			} else {
				replaceEnv(next, merged)
			}
			if !envEqual(it.Lat, prev, next) {
				in[blk] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return in
}

// narrowEnv applies lat.Narrow pointwise; keys only present in merged are
// adopted (they are refinements discovered on the descending pass).
func narrowEnv[V any](lat Lattice[V], dst, merged *Env[V]) {
	for k, dv := range dst.Vars {
		if mv, ok := merged.Vars[k]; ok {
			dst.Vars[k] = lat.Narrow(dv, mv)
		}
	}
	for k, mv := range merged.Vars {
		if _, ok := dst.Vars[k]; !ok {
			dst.Vars[k] = mv
		}
	}
	for k, dv := range dst.Paths {
		if mv, ok := merged.Paths[k]; ok {
			dst.Paths[k] = lat.Narrow(dv, mv)
		}
	}
	for k, mv := range merged.Paths {
		if _, ok := dst.Paths[k]; !ok {
			dst.Paths[k] = mv
		}
	}
}

// replaceEnv overwrites dst with merged's facts.
func replaceEnv[V any](dst, merged *Env[V]) {
	dst.Vars = make(map[*types.Var]V, len(merged.Vars))
	for k, v := range merged.Vars {
		dst.Vars[k] = v
	}
	dst.Paths = make(map[string]V, len(merged.Paths))
	for k, v := range merged.Paths {
		dst.Paths[k] = v
	}
}

func envEqual[V any](lat Lattice[V], a, b *Env[V]) bool {
	if len(a.Vars) != len(b.Vars) || len(a.Paths) != len(b.Paths) {
		return false
	}
	for k, av := range a.Vars {
		bv, ok := b.Vars[k]
		if !ok || !lat.Equal(av, bv) {
			return false
		}
	}
	for k, av := range a.Paths {
		bv, ok := b.Paths[k]
		if !ok || !lat.Equal(av, bv) {
			return false
		}
	}
	return true
}

// Walk replays one block from its fixpoint entry state, calling visit with
// the environment in force immediately BEFORE each node's transfer. This is
// how checks read the state at a division or a map write.
func (it *Interp[V]) Walk(blk *flow.Block, entry *Env[V], visit func(n ast.Node, env *Env[V])) {
	env := entry.Clone()
	for _, n := range blk.Nodes {
		visit(n, env)
		it.Transfer(n, env)
	}
}

// CondWalk visits every node inside n with the environment in force at
// that point, cloning and refining across short-circuit operators: the
// right operand of && is visited under the left operand assumed true, the
// right operand of || under the left assumed false. Without this, a site
// like `p == nil || use(p.F)` reads p's unrefined merge state and reports
// a dereference the short-circuit makes unreachable. Function literals are
// never descended into — their bodies run under their own state, not the
// enclosing function's. visit returning false skips the node's subtree.
func CondWalk[V any](it *Interp[V], n ast.Node, env *Env[V], visit func(n ast.Node, env *Env[V]) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case nil:
			return false
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			if m.Op == token.LAND || m.Op == token.LOR {
				if !visit(m, env) {
					return false
				}
				CondWalk(it, m.X, env, visit)
				renv := env.Clone()
				if it.Refine != nil {
					it.Refine(m.X, m.Op == token.LAND, renv)
				}
				CondWalk(it, m.Y, renv, visit)
				return false
			}
		}
		return visit(m, env)
	})
}

// rpoOrder returns the blocks reachable from the entry in reverse postorder.
func rpoOrder(cfg *flow.CFG) []*flow.Block {
	var order []*flow.Block
	seen := make([]bool, len(cfg.Blocks))
	var walk func(*flow.Block)
	walk = func(blk *flow.Block) {
		seen[blk.Index] = true
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				walk(s)
			}
		}
		order = append(order, blk)
	}
	walk(cfg.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// PathOf renders an l-value as a stable dotted path ("m.dev.TREFIns"),
// returning the root variable so facts can be invalidated when the root is
// reassigned or escapes into a call. ok is false for anything that is not a
// chain of field selections over a variable.
func PathOf(info *types.Info, e ast.Expr) (path string, root *types.Var, ok bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return PathOf(info, e.X)
	case *ast.Ident:
		v, isVar := objVar(info, e)
		if !isVar {
			return "", nil, false
		}
		return e.Name, v, true
	case *ast.SelectorExpr:
		base, root, ok := PathOf(info, e.X)
		if !ok {
			return "", nil, false
		}
		return base + "." + e.Sel.Name, root, true
	}
	return "", nil, false
}

func objVar(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Uses[id].(*types.Var); ok && v != nil {
		return v, true
	}
	if v, ok := info.Defs[id].(*types.Var); ok && v != nil {
		return v, true
	}
	return nil, false
}

// SortedVarNames is a test/debug helper: the names of all tracked vars in a
// deterministic order.
func (e *Env[V]) SortedVarNames() []string {
	names := make([]string, 0, len(e.Vars))
	for v := range e.Vars {
		names = append(names, v.Name())
	}
	sort.Strings(names)
	return names
}
