package analysis

// spawnescape generalizes the PR 7 owned check from annotated values to an
// automatic audit of every goroutine spawn: for each `go` statement — and
// each call into a module-static function that hands an argument to a
// goroutine ("spawning callee") — classify every variable that escapes into
// the new goroutine, and report the ones no discipline accounts for.
//
// The classification lattice (DESIGN.md §7.4):
//
//	confined      sole spawn, no launcher use after the spawn point on any
//	              CFG path (defers included) — ownership transferred
//	synchronized  the variable's type carries its own discipline (channel,
//	              sync.*, sync/atomic, context.Context), or every unguarded
//	              use goes through one: channel ops, mutex/WaitGroup
//	              methods, atomic calls, field accesses with the guardedby-
//	              inferred mutex provably held, or module-static method
//	              calls that acquire a mutex of the receiver's struct
//	read-only     shared but only plainly read on both sides
//	racy-unknown  everything else — reported
//
// Conservatisms, chosen to make "racy-unknown" mean something: a call to a
// method the module cannot see (interface, out-of-module type) counts as a
// plain write, because an opaque callee may mutate its receiver; a spawn
// target that is not a function literal is opaque the same way unless its
// receiver summary proves it only reads. Receiver self-spawns
// (`go p.work()`) do not audit p itself: an object launching its own
// method manages its own fields, which is guardedby/atomicmix territory.
// Loop spawns sharing a variable declared outside the loop are racy when
// the goroutine writes it; per-iteration variables (including Go 1.22
// range variables) are each goroutine's own.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mcdvfs/internal/analysis/flow"
)

// SpawnEscapeAnalyzer returns the goroutine spawn-site escape audit.
func SpawnEscapeAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "spawnescape",
		Doc:       "audit every go statement and goroutine-spawning callee: report captured variables that are neither confined, guarded, atomic, nor read-only",
		Applies:   concurrencyApplies,
		RunModule: runSpawnEscape,
	}
}

func runSpawnEscape(mp *ModulePass) {
	se := &spawnEscape{
		mp:          mp,
		m:           guardModelOf(mp),
		spawnParams: map[*flow.Func]map[int]bool{},
	}
	se.solveSpawnParams()
	for _, fn := range mp.Prog.Funcs() {
		pkg := se.m.scopedPkg(mp, fn)
		if pkg == nil {
			continue
		}
		se.auditFunc(fn, pkg)
	}
}

type spawnEscape struct {
	mp *ModulePass
	m  *guardModel
	// spawnParams marks, per function, the parameter indices whose value
	// escapes into a goroutine inside the function (transitively through
	// module-static calls). The receiver is deliberately excluded: self-
	// spawning objects manage their own fields.
	spawnParams map[*flow.Func]map[int]bool
}

type spawnUseKind int

const (
	useSync spawnUseKind = iota
	useRead
	useWrite
)

// ---------------------------------------------------------------------------
// Spawning-callee summary.

// solveSpawnParams computes the escaping-parameter fixpoint.
func (se *spawnEscape) solveSpawnParams() {
	for changed := true; changed; {
		changed = false
		for _, fn := range se.mp.Prog.Funcs() {
			pkg := se.m.scopedPkg(se.mp, fn)
			if pkg == nil {
				continue
			}
			if se.scanSpawnParams(fn, pkg) {
				changed = true
			}
		}
	}
}

func paramIndex(fn *flow.Func, v *types.Var) (int, bool) {
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return i, true
		}
	}
	return 0, false
}

func (se *spawnEscape) scanSpawnParams(fn *flow.Func, pkg *Package) bool {
	info := pkg.Info
	escaped := map[*types.Var]bool{}
	mark := func(e ast.Expr) {
		if root := rootIdentOf(e); root != nil {
			if v, ok := info.Uses[root].(*types.Var); ok {
				escaped[v] = true
			}
		}
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if v, ok := info.Uses[id].(*types.Var); ok {
							escaped[v] = true
						}
					}
					return true
				})
			}
			for _, arg := range n.Call.Args {
				mark(arg)
			}
			if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok {
				mark(sel.X)
			}
		case *ast.CallExpr:
			callee := se.mp.Prog.Callee(info, n)
			if callee == nil {
				return true
			}
			for j, arg := range n.Args {
				if !se.spawnParams[callee][j] {
					continue
				}
				mark(arg)
			}
		}
		return true
	})

	changed := false
	for v := range escaped {
		j, ok := paramIndex(fn, v)
		if !ok {
			continue
		}
		if se.spawnParams[fn] == nil {
			se.spawnParams[fn] = map[int]bool{}
		}
		if !se.spawnParams[fn][j] {
			se.spawnParams[fn][j] = true
			changed = true
		}
	}
	return changed
}

// ---------------------------------------------------------------------------
// The audit.

// spawnSite is one audited (spawn, variable) pair.
type spawnSite struct {
	pos token.Pos
	v   *types.Var
	// goUses are the goroutine-side uses (nil for opaque targets).
	goUses []spawnUseKind
	opaque bool // goroutine side invisible: assume reads and writes
	// goDesc names the opaque target for the message.
	goDesc     string
	loopShared bool
}

func (se *spawnEscape) auditFunc(fn *flow.Func, pkg *Package) {
	units := []ast.Node{fn.Decl}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			units = append(units, lit)
		}
		return true
	})
	for _, unit := range units {
		var cfg *flow.CFG
		if unit == ast.Node(fn.Decl) {
			cfg = fn.CFG()
		} else {
			cfg = flow.New(unit)
		}
		se.auditUnit(fn, unit, cfg, pkg)
	}
}

func (se *spawnEscape) auditUnit(fn *flow.Func, unit ast.Node, cfg *flow.CFG, pkg *Package) {
	info := pkg.Info
	body := flow.FuncBody(unit)
	ls := flow.LockStatesOf(cfg, info)
	parents := buildParents(body)
	writes := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWriteSpine(lhs, writes)
			}
		case *ast.IncDecStmt:
			markWriteSpine(n.X, writes)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markWriteSpine(n.X, writes)
			}
		}
		return true
	})

	// funcScoped reports whether v is a variable of the enclosing function
	// (param, receiver, or local) — the capture universe. Package variables
	// and fields have their own checks.
	funcScoped := func(v *types.Var) bool {
		return v != nil && !v.IsField() &&
			(v.Pkg() == nil || v.Parent() != v.Pkg().Scope()) &&
			v.Pos() >= fn.Decl.Pos() && v.Pos() <= fn.Decl.End()
	}

	var sites []spawnSite
	walkUnit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			sites = append(sites, se.auditGo(fn, unit, info, ls, parents, writes, n, funcScoped)...)
		case *ast.CallExpr:
			if _, isGo := parents[n].(*ast.GoStmt); isGo {
				return
			}
			callee := se.mp.Prog.Callee(info, n)
			if callee == nil || len(se.spawnParams[callee]) == 0 {
				return
			}
			for j, arg := range n.Args {
				if !se.spawnParams[callee][j] {
					continue
				}
				v := rootVarOf(info, arg)
				if !funcScoped(v) || !referenceCarrying(v.Type()) || typeSynchronized(v.Type()) {
					continue
				}
				sites = append(sites, spawnSite{
					pos: n.Pos(), v: v, opaque: true,
					goDesc:     funcDisplayName(callee),
					loopShared: loopShared(parents, n, v),
				})
			}
		}
	})

	// Sibling-goroutine sharing: a variable captured by more than one spawn
	// in the unit is concurrently visible even when no single spawn leaves
	// launcher uses behind.
	captureCount := map[*types.Var]int{}
	for _, s := range sites {
		captureCount[s.v]++
	}

	for _, s := range sites {
		se.decide(fn, cfg, info, ls, parents, writes, s, captureCount[s.v] > 1)
	}
}

// auditGo expands one go statement into its audited (spawn, variable) pairs.
func (se *spawnEscape) auditGo(fn *flow.Func, unit ast.Node, info *types.Info, ls *flow.LockStates, parents map[ast.Node]ast.Node, writes map[ast.Node]bool, g *ast.GoStmt, funcScoped func(*types.Var) bool) []spawnSite {
	var sites []spawnSite
	add := func(s spawnSite) {
		if s.v == nil || !funcScoped(s.v) || typeSynchronized(s.v.Type()) {
			return
		}
		s.pos = g.Pos()
		s.loopShared = loopShared(parents, g, s.v)
		sites = append(sites, s)
	}

	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		// Free variables: used in the literal, declared outside it.
		seen := map[*types.Var]bool{}
		var free []*types.Var
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || seen[v] {
				return true
			}
			if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
				return true // the literal's own param or local
			}
			seen[v] = true
			free = append(free, v)
			return true
		})
		sort.Slice(free, func(i, j int) bool { return free[i].Pos() < free[j].Pos() })
		litLS := flow.LockStatesOf(flow.New(lit), info)
		litParents := buildParents(lit.Body)
		for _, v := range free {
			add(spawnSite{v: v, goUses: se.usesIn(info, lit.Body, litParents, litLS, writes, v)})
		}
		// Arguments passed into the literal bind to its parameters: the
		// goroutine-side uses are the parameter's.
		for j, arg := range g.Call.Args {
			v := rootVarOf(info, arg)
			if v == nil || !referenceCarrying(v.Type()) {
				continue
			}
			pv := litParamVar(info, lit, j)
			var uses []spawnUseKind
			if pv != nil {
				uses = se.usesIn(info, lit.Body, litParents, litLS, writes, pv)
			}
			add(spawnSite{v: v, goUses: uses, opaque: pv == nil, goDesc: "a goroutine"})
		}
		return sites
	}

	// go f(args) / go obj.Method(args): the spawned body is elsewhere.
	callee := se.mp.Prog.Callee(info, g.Call)
	desc := "a dynamic callee"
	if callee != nil {
		desc = funcDisplayName(callee)
	} else if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
		desc = sel.Sel.Name
	} else if id, ok := ast.Unparen(g.Call.Fun).(*ast.Ident); ok {
		desc = id.Name
	}
	for _, arg := range g.Call.Args {
		v := rootVarOf(info, arg)
		if v == nil || !referenceCarrying(v.Type()) {
			continue
		}
		add(spawnSite{v: v, opaque: true, goDesc: desc})
	}
	if sel, ok := ast.Unparen(g.Call.Fun).(*ast.SelectorExpr); ok {
		v := rootVarOf(info, sel.X)
		if v != nil && v != receiverVar(fn) { // self-spawn: the object's own discipline
			if callee != nil {
				// The receiver's goroutine-side behaviour is the method's
				// summary: self-locking or read-only methods are safe.
				switch {
				case se.m.writesRecvField[callee]:
					add(spawnSite{v: v, opaque: true, goDesc: desc})
				default:
					add(spawnSite{v: v, goUses: []spawnUseKind{useRead}, goDesc: desc})
				}
			} else {
				add(spawnSite{v: v, opaque: true, goDesc: desc})
			}
		}
	}
	return sites
}

// usesIn classifies every use of v inside root.
func (se *spawnEscape) usesIn(info *types.Info, root ast.Node, parents map[ast.Node]ast.Node, ls *flow.LockStates, writes map[ast.Node]bool, v *types.Var) []spawnUseKind {
	var uses []spawnUseKind
	ast.Inspect(root, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != v {
			return true
		}
		uses = append(uses, se.classifyUse(info, parents, ls, writes, id, v))
		return true
	})
	return uses
}

// decide applies the classification lattice to one audited site and reports
// racy-unknown results.
func (se *spawnEscape) decide(fn *flow.Func, cfg *flow.CFG, info *types.Info, ls *flow.LockStates, parents map[ast.Node]ast.Node, writes map[ast.Node]bool, s spawnSite, multiSpawn bool) {
	goWrites, goReads := false, false
	if s.opaque {
		goWrites, goReads = true, true
	}
	for _, u := range s.goUses {
		switch u {
		case useWrite:
			goWrites = true
		case useRead:
			goReads = true
		}
	}

	// Launcher-side uses after the spawn point (defers included).
	var post []spawnUseKind
	var postPos token.Pos
	for _, n := range nodesAfter(cfg, se.spawnAnchor(parents, s.pos)) {
		ast.Inspect(n, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok || info.Uses[id] != s.v {
				return true
			}
			k := se.classifyUse(info, parents, ls, writes, id, s.v)
			if k != useSync {
				post = append(post, k)
				if postPos == token.NoPos || id.Pos() < postPos {
					postPos = id.Pos()
				}
			}
			return true
		})
	}
	postWrites := false
	for _, k := range post {
		if k == useWrite {
			postWrites = true
		}
	}

	confined := len(post) == 0 && !multiSpawn && !s.loopShared
	if confined {
		return // ownership transferred (or every residual use synchronized)
	}
	fset := se.mp.Prog.Fset

	var detail string
	switch {
	case s.opaque && (len(post) > 0 || multiSpawn || s.loopShared):
		detail = fmt.Sprintf("escapes to %s, which this analysis cannot see into", s.goDesc)
	case goWrites:
		detail = "written inside the goroutine without synchronization"
	case postWrites && goReads:
		detail = fmt.Sprintf("read inside the goroutine but written by the launcher after the spawn (%s)", fsetSite(fset, postPos))
	default:
		return // read-only or synchronized sharing
	}

	var concurrent string
	switch {
	case s.loopShared:
		concurrent = "shared across loop-spawned goroutines"
	case multiSpawn:
		concurrent = "captured by more than one goroutine here"
	case len(post) > 0:
		concurrent = fmt.Sprintf("still used by the launcher after the spawn (%s)", fsetSite(fset, postPos))
	default:
		return // opaque or writing goroutine, but nobody else looks: confined
	}

	se.mp.Reportf(s.pos,
		"goroutine capture of %s in %s is racy-unknown: %s, %s; confine it to one side, guard it with the struct mutex, or use sync/atomic",
		s.v.Name(), funcDisplayName(fn), detail, concurrent)
}

// spawnAnchor finds the statement node holding the spawn position, so
// nodesAfter can locate it in the CFG. For go statements the position IS
// the statement; for spawning-callee call sites the call's statement.
func (se *spawnEscape) spawnAnchor(parents map[ast.Node]ast.Node, pos token.Pos) ast.Node {
	for n := range parents {
		if n.Pos() == pos {
			if _, ok := n.(*ast.GoStmt); ok {
				return n
			}
		}
	}
	for n := range parents {
		if n.Pos() == pos {
			if _, ok := n.(*ast.CallExpr); ok {
				return n
			}
		}
	}
	return nil
}

// classifyUse decides what one identifier occurrence of v means: an access
// through a synchronizer, a plain read, or a plain write.
func (se *spawnEscape) classifyUse(info *types.Info, parents map[ast.Node]ast.Node, ls *flow.LockStates, writes map[ast.Node]bool, id *ast.Ident, v *types.Var) spawnUseKind {
	// Climb the access spine: selectors, indexes, derefs, address-of.
	var lastField *types.Var
	var lastFieldNode ast.Node
	wrote := writes[id]
	cur := ast.Node(id)
climb:
	for {
		p := parents[cur]
		if p == nil {
			break
		}
		switch pp := p.(type) {
		case *ast.ParenExpr:
			cur = p
		case *ast.StarExpr:
			cur = p
		case *ast.IndexExpr:
			if pp.X != cur {
				break climb
			}
			cur = p
		case *ast.UnaryExpr:
			if pp.Op != token.AND {
				break climb
			}
			cur = p
		case *ast.SelectorExpr:
			if pp.X != cur {
				break climb
			}
			if fv, ok := info.Uses[pp.Sel].(*types.Var); ok && fv.IsField() {
				lastField, lastFieldNode = fv, p
				cur = p
			} else {
				// Method selector: resolved against the call below.
				cur = p
				break climb
			}
		default:
			break climb
		}
		if writes[cur] {
			wrote = true
		}
	}

	// Method call on the spine?
	if sel, ok := cur.(*ast.SelectorExpr); ok {
		if call, ok := parents[sel].(*ast.CallExpr); ok && call.Fun == ast.Node(sel) {
			if _, _, ok := flow.MutexOp(info, call); ok {
				return useSync
			}
			if recvIsAtomicWrapper(info, sel.X) || recvInSyncPkg(info, sel.X) {
				return useSync
			}
			if callee := se.mp.Prog.Callee(info, call); callee != nil {
				if se.calleeAcquiresMutexOf(callee, v) {
					return useSync
				}
				if se.m.writesRecvField[callee] {
					return useWrite
				}
				return useRead
			}
			return useWrite // opaque method may mutate its receiver
		}
	}

	// A field access whose own type synchronizes (chan, sync, atomic).
	if lastField != nil && isSelfSyncType(lastField.Type()) {
		return useSync
	}
	// A field access with its inferred guard provably held here.
	if lastField != nil {
		if guard := se.m.guards[lastField]; guard != nil {
			if held := ls.HeldAt(lastFieldNode); held.Has(guard) {
				return useSync
			}
		}
	}
	// The &v argument of a sync/atomic package call.
	if un, ok := parents[cur].(*ast.UnaryExpr); ok && un.Op == token.AND {
		cur = un
	}
	if call, ok := parents[cur].(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if pkgID, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := pkgNameOf(info, pkgID); ok && pn.Imported().Path() == "sync/atomic" {
					return useSync
				}
			}
		}
	}

	if wrote {
		return useWrite
	}
	return useRead
}

// calleeAcquiresMutexOf reports whether callee (transitively) acquires a
// mutex field of v's struct type — the self-locking method pattern.
func (se *spawnEscape) calleeAcquiresMutexOf(callee *flow.Func, v *types.Var) bool {
	acq := se.m.acquires[callee]
	if len(acq) == 0 {
		return false
	}
	t := v.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	si := se.m.structs[named]
	if si == nil {
		return false
	}
	for _, mu := range si.mutexes {
		if acq[mu] {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Structural helpers.

// buildParents maps every node under root to its parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// nodesAfter returns every CFG node that can execute after target: the rest
// of its block, every node of every reachable successor block (loop
// back-edges included), and all deferred statements.
func nodesAfter(c *flow.CFG, target ast.Node) []ast.Node {
	if target == nil {
		return nil
	}
	var blk *flow.Block
	idx := -1
	for _, b := range c.Blocks {
		for i, n := range b.Nodes {
			if n == target || contains(n, target) {
				blk, idx = b, i
				break
			}
		}
		if blk != nil {
			break
		}
	}
	if blk == nil {
		return nil
	}
	var out []ast.Node
	out = append(out, blk.Nodes[idx+1:]...)
	seen := map[*flow.Block]bool{}
	queue := append([]*flow.Block{}, blk.Succs...)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		for _, n := range b.Nodes {
			if n != target {
				out = append(out, n)
			}
		}
		queue = append(queue, b.Succs...)
	}
	return out
}

// loopShared reports whether n sits inside a loop that v is declared
// outside of: every iteration's goroutine sees the same variable.
func loopShared(parents map[ast.Node]ast.Node, n ast.Node, v *types.Var) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if v.Pos() < p.Pos() || v.Pos() > p.End() {
				return true
			}
		case *ast.FuncLit:
			return false // the loop would belong to an outer unit
		}
	}
	return false
}

// rootVarOf resolves the base variable of an expression chain, or nil.
func rootVarOf(info *types.Info, e ast.Expr) *types.Var {
	root := rootIdentOf(e)
	if root == nil {
		return nil
	}
	v, _ := info.Uses[root].(*types.Var)
	return v
}

// litParamVar returns the j-th declared parameter object of a literal.
func litParamVar(info *types.Info, lit *ast.FuncLit, j int) *types.Var {
	if lit.Type.Params == nil {
		return nil
	}
	i := 0
	for _, f := range lit.Type.Params.List {
		for _, name := range f.Names {
			if i == j {
				v, _ := info.Defs[name].(*types.Var)
				return v
			}
			i++
		}
		if len(f.Names) == 0 {
			i++
		}
	}
	return nil
}

// referenceCarrying reports whether passing a value of type t aliases
// mutable state: pointers, maps, slices, and non-context interfaces.
// Channels and sync types are handled by typeSynchronized; plain values
// (ints, strings, structs of them) are copied.
func referenceCarrying(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice:
		return true
	case *types.Interface:
		return !isNamedIn(t, "context", "Context")
	}
	return false
}

// typeSynchronized reports whether t's values carry their own concurrency
// discipline: channels, sync and sync/atomic types, context.Context.
func typeSynchronized(t types.Type) bool {
	if isSelfSyncType(t) {
		return true
	}
	return isNamedIn(t, "context", "Context")
}

// recvInSyncPkg reports whether e's (possibly pointed-to) type is declared
// in package sync — WaitGroup.Done, Once.Do, Cond.Signal are all
// synchronization, not data access.
func recvInSyncPkg(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync"
}
