package analysis

// atomicmix flags variables accessed both through sync/atomic and through
// plain loads/stores — the torn-read bug class one refactor away whenever a
// counter is "mostly atomic": a plain `m.count++` next to
// `atomic.AddInt64(&m.count, 1)` is a data race the race detector only
// catches if a test happens to interleave them, and a plain read of an
// atomic.Int64 value (copying the struct) bypasses the Load barrier
// entirely.
//
// Two access grammars are recognized as atomic:
//
//   - function form: sync/atomic package calls taking the variable's
//     address (atomic.AddInt64(&m.count, 1), atomic.LoadUint32(&flag), ...)
//   - method form: method calls on a variable whose type is a sync/atomic
//     wrapper (atomic.Int64, atomic.Bool, atomic.Pointer[T], ...), and
//     passing such a variable's address (the idiomatic way to share it)
//
// Everything else that reads or writes the variable is a plain access. For
// wrapper-typed variables a plain access is a copy: assigning or passing
// the struct by value, which go vet's copylocks also dislikes — here it is
// reported as a torn read because the copy bypasses Load. Construction-time
// accesses (base value declared in the enclosing body), package `init`
// functions, and package-level initializer expressions are excluded: a
// variable is single-threaded until published.
//
// Scope: fields of structs in the runtime packages and their package-level
// variables (internal/serve, cluster, trace, cache).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMixAnalyzer returns the atomic/plain mixed-access check.
func AtomicMixAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "atomicmix",
		Doc:       "flag fields and package variables accessed both through sync/atomic and through plain loads/stores",
		Applies:   concurrencyApplies,
		RunModule: runAtomicMix,
	}
}

// accessKind distinguishes the evidence classes per variable.
type atomicAccess struct {
	pos    token.Pos
	atomic bool
}

func runAtomicMix(mp *ModulePass) {
	// Per tracked variable (struct field or package-level var of an
	// in-scope package): the classified access list.
	accesses := map[*types.Var][]atomicAccess{}
	scoped := map[*types.Package]bool{}
	for _, pkg := range mp.Pkgs {
		scoped[pkg.Types] = true
	}
	tracked := func(v *types.Var) bool {
		if v == nil || v.Pkg() == nil || !scoped[v.Pkg()] {
			return false
		}
		if v.IsField() {
			return true
		}
		// Package-level variable: declared directly in the package scope.
		return v.Parent() == v.Pkg().Scope()
	}

	for _, pkg := range mp.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fd.Name.Name == "init" && fd.Recv == nil {
					continue // package initialization is single-threaded
				}
				scanAtomicAccesses(info, fd.Body, tracked, accesses)
			}
		}
	}

	// Report every plain access to a variable that also has atomic
	// accesses, citing the first atomic site as the precedent.
	vars := make([]*types.Var, 0, len(accesses))
	for v := range accesses {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool {
		a, b := mp.Prog.Fset.Position(vars[i].Pos()), mp.Prog.Fset.Position(vars[j].Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, v := range vars {
		var atomicSites, plainSites []atomicAccess
		for _, a := range accesses[v] {
			if a.atomic {
				atomicSites = append(atomicSites, a)
			} else {
				plainSites = append(plainSites, a)
			}
		}
		if len(atomicSites) == 0 || len(plainSites) == 0 {
			continue
		}
		first := atomicSites[0]
		for _, a := range atomicSites[1:] {
			pa, pb := mp.Prog.Fset.Position(a.pos), mp.Prog.Fset.Position(first.pos)
			if pa.Filename < pb.Filename || (pa.Filename == pb.Filename && pa.Offset < pb.Offset) {
				first = a
			}
		}
		kind := "package variable"
		name := v.Name()
		if v.IsField() {
			kind = "field"
			if owner := fieldOwnerName(v); owner != "" {
				name = owner + "." + v.Name()
			}
		}
		for _, p := range plainSites {
			mp.Reportf(p.pos,
				"%s %s is accessed atomically (e.g. %s) but plainly here: mixed atomic/plain access tears — use the atomic API on every access",
				kind, name, fsetSite(mp.Prog.Fset, first.pos))
		}
	}
}

// scanAtomicAccesses classifies every access to a tracked variable in one
// function body. Nested literals are walked too (same single-threaded-
// until-published exclusions apply via the enclosing body).
func scanAtomicAccesses(info *types.Info, body *ast.BlockStmt, tracked func(*types.Var) bool, accesses map[*types.Var][]atomicAccess) {
	// consumed marks expression nodes already claimed by an atomic grammar
	// (the &x argument of atomic.AddInt64, the receiver of a wrapper method
	// call), so the generic walk below does not double-count them as plain.
	consumed := map[ast.Node]bool{}
	record := func(e ast.Expr, isAtomic bool) {
		v := trackedVarOf(info, e, tracked)
		if v == nil {
			return
		}
		if baseOfAccessIsLocal(info, e, body) {
			return
		}
		accesses[v] = append(accesses[v], atomicAccess{pos: e.Pos(), atomic: isAtomic})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Function form: atomic.AddInt64(&v, 1) and friends.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := pkgNameOf(info, id); ok && pn.Imported().Path() == "sync/atomic" {
					for _, arg := range call.Args {
						if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
							markConsumed(un, consumed)
							record(un.X, true)
						}
					}
					return true
				}
			}
			// Method form: v.Load() / v.Store(x) / v.Add(1) on a sync/atomic
			// wrapper type.
			if recvIsAtomicWrapper(info, sel.X) {
				if s, ok := info.Selections[sel]; ok {
					if _, isFunc := s.Obj().(*types.Func); isFunc {
						markConsumed(sel.X, consumed)
						record(sel.X, true)
					}
				}
			}
		}
		return true
	})

	// Address-of a wrapper is sharing, not tearing: &m.count handed to a
	// helper still goes through the atomic API at the use site.
	ast.Inspect(body, func(n ast.Node) bool {
		if un, ok := n.(*ast.UnaryExpr); ok && un.Op == token.AND {
			if recvIsAtomicWrapper(info, un.X) {
				markConsumed(un, consumed)
			}
		}
		return true
	})

	// Generic walk: every remaining use of a tracked variable is plain.
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil || consumed[n] {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() && tracked(v) {
				record(e, false)
			}
			// Do not descend into Sel; the base may itself be tracked.
			ast.Inspect(e.X, walk)
			return false
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() && tracked(v) {
				record(e, false)
			}
			return false
		case *ast.KeyValueExpr:
			// Struct-literal keys are field names, not accesses.
			if _, ok := e.Key.(*ast.Ident); ok {
				ast.Inspect(e.Value, walk)
				return false
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

func markConsumed(n ast.Node, consumed map[ast.Node]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m != nil {
			consumed[m] = true
		}
		return true
	})
}

// trackedVarOf resolves an access expression (field selector or identifier)
// to its tracked variable, or nil.
func trackedVarOf(info *types.Info, e ast.Expr, tracked func(*types.Var) bool) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() && tracked(v) {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() && tracked(v) {
			return v
		}
	}
	return nil
}

// baseOfAccessIsLocal extends baseIsLocal to bare identifiers (a local
// shadowing never reaches here because tracked() filtered to fields and
// package vars; for a field selector the constructor exclusion applies).
func baseOfAccessIsLocal(info *types.Info, e ast.Expr, body *ast.BlockStmt) bool {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		return baseIsLocal(info, sel, body)
	}
	return false
}

// recvIsAtomicWrapper reports whether e's type (behind a pointer) is a
// named type from sync/atomic (Int64, Bool, Pointer[T], Value, ...).
func recvIsAtomicWrapper(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}

// fieldOwnerName finds the struct type name a field belongs to, best-effort
// (empty when the owner is unnamed).
func fieldOwnerName(v *types.Var) string {
	if v.Pkg() == nil {
		return ""
	}
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return ""
}
