// Package analysis is mcdvfs's in-tree static-analysis suite, built only on
// the standard library's go/ast, go/parser, and go/types (no x/tools — the
// repository stays a zero-dependency offline build).
//
// The paper's methodology rests on two properties that ordinary tests cannot
// economically guard: every sample stream must be bit-reproducible (the
// parallel collection engine is verified byte-identical to the serial
// reference, which is only meaningful if no nondeterminism leaks into the
// sim/trace/dram/core paths), and every power/latency formula must be
// unit-consistent (MHz vs Hz, joules vs watts — the same failure class the
// SysScale and gem5 DRAM power-down models guard against with validated
// cross-domain calibration). This package turns those review-folklore
// invariants into machine-checked gates; see DESIGN.md §7 for the catalogue.
//
// A check is an Analyzer: a named pass over one type-checked package.
// The driver in run.go loads packages (load.go), applies the per-check
// package scopes, filters diagnostics through //lint:allow suppressions
// (suppress.go), and renders text or JSON for cmd/mcdvfsvet.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mcdvfs/internal/analysis/flow"
)

// Diagnostic is one finding, positioned and attributed to its check.
type Diagnostic struct {
	// Pos locates the finding. Valid diagnostics always carry a position.
	Pos token.Position `json:"-"`
	// File, Line, Col flatten Pos for -json output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Check names the analyzer that produced the finding.
	Check string `json:"check"`
	// Message states the violated invariant, concretely.
	Message string `json:"message"`
}

// String renders the go-tool-style "file:line:col: [check] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Package is one loaded, type-checked package as the checks see it.
type Package struct {
	// Path is the import path ("mcdvfs/internal/sim").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset positions every file below.
	Fset *token.FileSet
	// Syntax holds the parsed non-test files, sorted by filename.
	Syntax []*ast.File
	// TestSyntax holds the parsed _test.go files, syntax only: test files
	// are not type-checked (they may form a separate external test package)
	// so checks that opt in via AnalyzeTests work purely on the AST.
	TestSyntax []*ast.File
	// Types and Info are the go/types results for Syntax.
	Types *types.Package
	Info  *types.Info
}

// Pass is one (analyzer, package) execution. Checks report findings through
// Reportf; the driver owns collection, suppression, and ordering.
type Pass struct {
	Pkg *Package
	// Prog indexes every function of every loaded module package — the
	// substrate for interprocedural checks. It is shared, read-mostly (CFGs
	// and def-use chains build lazily behind sync.Once), and safe to use from
	// concurrent passes.
	Prog *flow.Program
	// IncludeSrc and IncludeTests tell the check which file sets are in
	// scope for this package: the driver resolves Applies/AnalyzeTests (a
	// check can cover a package's tests without covering its sources, as
	// determinism does for internal/experiments).
	IncludeSrc   bool
	IncludeTests bool
	report       func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePass is one analyzer's module-wide execution: after every
// per-package pass, analyzers that need cross-package state in one place
// (lockorder's acquisition graph spans Lab, the LRU, and the serve pool)
// run once over all in-scope packages.
type ModulePass struct {
	// Prog indexes the whole loaded module.
	Prog *flow.Program
	// Pkgs are the packages in scope for this analyzer, in load order.
	Pkgs   []*Package
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	p.report(Diagnostic{
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check.
type Analyzer struct {
	// Name is the identifier used by -disable and //lint:allow.
	Name string
	// Doc is a one-line description for -list.
	Doc string
	// Applies reports whether the check runs on the package with the given
	// import path. The driver consults it unless ScopeAll is set.
	Applies func(pkgPath string) bool
	// AnalyzeTests reports whether the check also wants the package's
	// _test.go files (AST only) for the given import path.
	AnalyzeTests func(pkgPath string) bool
	// Prepare, if set, runs once before any pass, with the whole-module
	// Program — the place to compute call-graph summaries. It runs serially;
	// whatever it stores must be read-only afterwards, because Run executes
	// concurrently across packages.
	Prepare func(prog *flow.Program)
	// Run executes the check against one package. Optional for analyzers
	// that only need the module-wide pass.
	Run func(pass *Pass)
	// RunModule, if set, executes once over every in-scope package after the
	// per-package passes. It runs serially.
	RunModule func(pass *ModulePass)
}

// Suite returns every analyzer in the canonical order. The order is part of
// the golden-test contract: diagnostics are reported per check, then by
// position.
func Suite() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		UnitSafetyAnalyzer(),
		FloatEqAnalyzer(),
		CtxAnalyzer(),
		LockCopyAnalyzer(),
		GoLeakAnalyzer(),
		LockOrderAnalyzer(),
		ErrFlowAnalyzer(),
		RangeCheckAnalyzer(),
		NilFlowAnalyzer(),
		HotPathAnalyzer(),
		OwnedAnalyzer(),
		GuardedByAnalyzer(),
		AtomicMixAnalyzer(),
		SpawnEscapeAnalyzer(),
		ContractAnalyzer(),
	}
}

// SortDiagnostics orders diagnostics by file, line, column, then check, the
// stable order every consumer (text output, JSON, golden files) relies on.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}

// pkgNameOf resolves the *types.PkgName an identifier refers to, if the
// identifier names an imported package (e.g. the "time" in time.Now).
func pkgNameOf(info *types.Info, id *ast.Ident) (*types.PkgName, bool) {
	obj, ok := info.Uses[id]
	if !ok {
		return nil, false
	}
	pn, ok := obj.(*types.PkgName)
	return pn, ok
}
