package analysis

// The owned check: the concurrency model's ownership discipline, made
// machine-checked. The collection engine's workers each own a private
// sim.Runner — the whole reason the columnar arena needs no locks — and that
// privacy is a convention a refactor can silently break: capture the Runner
// in a second goroutine, stash it in a shared struct, and the race detector
// may or may not catch it depending on scheduling.
//
// A value declared on a line annotated //vet:owned is worker-private: every
// use must stay in the goroutine that created it. The check flags uses that
// hand the value to another goroutine (a `go` launch capturing it, a channel
// send), park it where other goroutines can reach it (a store through a
// selector/index/pointer, a package variable, a composite literal), or
// return it. Deliberate handoffs carry //vet:transfer on the escaping line,
// which documents the ownership transfer the way //lint:allow documents a
// waived finding.
//
// Synchronous calls passing the value down the stack are fine — the callee
// runs on the creator's goroutine. Local aliasing (x := owned) is not
// tracked; the check guards the annotated name, not the points-to set.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const (
	ownedMark    = "//vet:owned"
	transferMark = "//vet:transfer"
)

// OwnedAnalyzer builds the owned check.
func OwnedAnalyzer() *Analyzer {
	return &Analyzer{
		Name:    "owned",
		Doc:     "values marked //vet:owned must not leave their creating goroutine without //vet:transfer",
		Applies: hotpathApplies,
		Run:     runOwned,
	}
}

func runOwned(pass *Pass) {
	if !pass.IncludeSrc {
		return
	}
	for _, file := range pass.Pkg.Syntax {
		ownedLines, transferLines := ownedDirectives(pass.Pkg.Fset, file)
		if len(ownedLines) == 0 {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkOwnedFunc(pass, fd, ownedLines, transferLines)
		}
	}
}

// ownedDirectives collects the line numbers carrying each directive. A
// directive governs its own line and, when it stands alone, the next one.
func ownedDirectives(fset *token.FileSet, file *ast.File) (owned, transfer map[int]bool) {
	owned, transfer = map[int]bool{}, map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			line := fset.Position(c.Pos()).Line
			switch {
			case text == ownedMark || strings.HasPrefix(text, ownedMark+" "):
				owned[line] = true
			case text == transferMark || strings.HasPrefix(text, transferMark+" "):
				transfer[line] = true
			}
		}
	}
	return owned, transfer
}

// ownedVar is one annotated value with its declaration site.
type ownedVar struct {
	v    *types.Var
	decl ast.Node // the declaring statement
}

func checkOwnedFunc(pass *Pass, fd *ast.FuncDecl, ownedLines, transferLines map[int]bool) {
	info := pass.Pkg.Info
	fset := pass.Pkg.Fset

	// Parent links for classification walks.
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	onLine := func(lines map[int]bool, n ast.Node) bool {
		l := fset.Position(n.Pos()).Line
		return lines[l] || lines[l-1]
	}

	// Collect annotated declarations: short variable declarations and var
	// statements whose line (or preceding line) carries //vet:owned.
	var vars []ownedVar
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || !onLine(ownedLines, n) {
				return true
			}
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
					if v, ok := info.Defs[id].(*types.Var); ok {
						vars = append(vars, ownedVar{v: v, decl: n})
					}
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR || !onLine(ownedLines, n) {
				return true
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						if id.Name == "_" {
							continue
						}
						if v, ok := info.Defs[id].(*types.Var); ok {
							vars = append(vars, ownedVar{v: v, decl: n})
						}
					}
				}
			}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}

	transferred := func(use ast.Node) bool {
		// The directive sits on the escaping statement (or the line above);
		// climb from the use to its statement.
		for n := use; n != nil; n = parents[n] {
			if _, ok := n.(ast.Stmt); ok {
				return onLine(transferLines, n)
			}
		}
		return false
	}

	for _, ov := range vars {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || info.Uses[id] != ov.v {
				return true
			}
			kind := classifyOwnedUse(info, parents, ov, id)
			if kind == "" || transferred(id) {
				return true
			}
			pass.Reportf(id.Pos(), "owned value %s %s (missing //vet:transfer)", ov.v.Name(), kind)
			return true
		})
	}
}

// classifyOwnedUse returns a violation description for the use, or "" when
// the use stays inside the creator's goroutine and frame.
func classifyOwnedUse(info *types.Info, parents map[ast.Node]ast.Node, ov ownedVar, use *ast.Ident) string {
	// Crossing into a goroutine the declaration does not belong to: the use
	// sits under a go statement (directly as an argument, or inside a
	// go-launched function literal) whose launch is outside the declaring
	// literal's body.
	for n := ast.Node(use); n != nil; n = parents[n] {
		if lit, ok := n.(*ast.FuncLit); ok {
			if contains(lit, ov.decl) {
				break // reached the creator's own frame: stop climbing
			}
			if call, ok := parents[lit].(*ast.CallExpr); ok && call.Fun == lit {
				if _, ok := parents[call].(*ast.GoStmt); ok {
					return "is captured by a goroutine other than its creator's"
				}
			}
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := parents[call].(*ast.GoStmt); ok && containsExpr(call.Args, use) {
				return "is handed to a new goroutine"
			}
		}
	}

	// The value (or its address) escaping through a store, send, composite
	// literal, or return. &owned counts the same as owned.
	top := ast.Node(use)
	if u, ok := parents[top].(*ast.UnaryExpr); ok && u.Op == token.AND {
		top = u
	}
	switch p := parents[top].(type) {
	case *ast.SendStmt:
		if p.Value == top {
			return "is sent on a channel"
		}
	case *ast.AssignStmt:
		for i, r := range p.Rhs {
			if r != top {
				continue
			}
			if i < len(p.Lhs) {
				switch l := ast.Unparen(p.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					return "is stored into a shared structure"
				case *ast.Ident:
					if v, ok := info.Uses[l].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
						return "is stored into a package variable"
					}
				}
			}
		}
	case *ast.KeyValueExpr:
		if _, ok := parents[p].(*ast.CompositeLit); ok && p.Value == top {
			return "is stored into a composite literal"
		}
	case *ast.CompositeLit:
		return "is stored into a composite literal"
	case *ast.ReturnStmt:
		return "is returned from its creator"
	}
	return ""
}

// containsExpr reports whether target appears in (or under) any of exprs.
func containsExpr(exprs []ast.Expr, target ast.Node) bool {
	for _, e := range exprs {
		if contains(e, target) {
			return true
		}
	}
	return false
}

// contains reports whether inner's span sits within outer's subtree.
func contains(outer, inner ast.Node) bool {
	if outer == nil || inner == nil {
		return false
	}
	return inner.Pos() >= outer.Pos() && inner.End() <= outer.End()
}
